// Empirical checks of the paper's formal results on randomized workloads:
//
//  * Theorem 5.2 (unique maximal matching): when Matching Criteria 1-3 and
//    the acyclic-labels condition hold, the maximal matching is unique — so
//    the order-independent Algorithm Match and the LCS-accelerated
//    FastMatch must produce the *same* matching.
//  * Lemma 5.1: a larger matching (superset) never yields a costlier
//    conforming script.
//  * Lemma C.3: under Criterion 3, an internal node has at most one
//    partner satisfying the threshold constraint.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/edit_script_gen.h"
#include "core/fast_match.h"
#include "core/match.h"
#include "gen/doc_gen.h"
#include "gen/edit_sim.h"
#include "tree/schema.h"

namespace treediff {
namespace {

/// A duplicate-free document workload: large vocabulary, low skew, long
/// sentences, no duplicate injection — Matching Criterion 3 holds with
/// overwhelming probability.
struct CleanWorkload {
  std::shared_ptr<LabelTable> labels = std::make_shared<LabelTable>();
  Vocabulary vocab{20000, 0.5};
  Tree t1{nullptr};
  Tree t2{nullptr};

  CleanWorkload(int sections, int edits, uint64_t seed) {
    Rng rng(seed);
    DocGenParams params;
    params.sections = sections;
    params.min_words_per_sentence = 8;
    params.max_words_per_sentence = 18;
    t1 = GenerateDocument(params, vocab, &rng, labels);
    SimulatedVersion v = SimulateNewVersion(t1, edits, {}, vocab, &rng);
    t2 = std::move(v.new_tree);
  }
};

class UniqueMaximalMatchingTest
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(UniqueMaximalMatchingTest, MatchAndFastMatchAgree) {
  const auto [sections, edits, seed] = GetParam();
  CleanWorkload w(sections, edits, seed);
  WordLcsComparator cmp1, cmp2;
  CriteriaEvaluator eval1(w.t1, w.t2, &cmp1, {});
  CriteriaEvaluator eval2(w.t1, w.t2, &cmp2, {});
  Matching fast = ComputeFastMatch(w.t1, w.t2, eval1);
  Matching slow = ComputeMatch(w.t1, w.t2, eval2);
  EXPECT_EQ(fast.Pairs(), slow.Pairs())
      << "Theorem 5.2: with Criteria 1-3 holding, the maximal matching is "
         "unique, so algorithm order must not matter (seed "
      << seed << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UniqueMaximalMatchingTest,
    ::testing::Values(std::make_tuple(2, 3, 201ull),
                      std::make_tuple(3, 6, 202ull),
                      std::make_tuple(4, 10, 203ull),
                      std::make_tuple(5, 15, 204ull),
                      std::make_tuple(6, 20, 205ull),
                      std::make_tuple(3, 30, 206ull)));

TEST(Lemma51Test, SupersetMatchingNeverCostsMore) {
  // Build a matching, generate its script cost; then remove one leaf pair
  // (making a strict subset) and verify the cost does not decrease.
  CleanWorkload w(3, 10, 301);
  WordLcsComparator cmp;
  CriteriaEvaluator eval(w.t1, w.t2, &cmp, {});
  Matching full = ComputeFastMatch(w.t1, w.t2, eval);
  auto full_script = GenerateEditScript(w.t1, w.t2, full, &cmp);
  ASSERT_TRUE(full_script.ok());

  // Drop each of several matched leaf pairs in turn.
  int tested = 0;
  for (auto [x, y] : full.Pairs()) {
    if (!w.t1.IsLeaf(x) || x == w.t1.root()) continue;
    if (tested >= 8) break;
    ++tested;
    Matching subset = full;
    subset.Remove(x, y);
    auto subset_script = GenerateEditScript(w.t1, w.t2, subset, &cmp);
    ASSERT_TRUE(subset_script.ok());
    EXPECT_GE(subset_script->script.TotalCost() + 1e-9,
              full_script->script.TotalCost())
        << "Lemma 5.1: removing pair (" << x << "," << y
        << ") must not make the script cheaper";
  }
  EXPECT_GT(tested, 0);
}

TEST(LemmaC3Test, AtMostOnePartnerSatisfiesThreshold) {
  // With the acyclic-labels condition and Criterion 3 holding, every
  // internal T1 node has at most one T2 candidate over the threshold.
  CleanWorkload w(3, 8, 401);
  LabelSchema schema = MakeDocumentSchema(w.labels.get());
  ASSERT_TRUE(schema.CheckAcyclic(w.t1).ok());
  ASSERT_TRUE(schema.CheckAcyclic(w.t2).ok());

  WordLcsComparator cmp;
  CriteriaEvaluator eval(w.t1, w.t2, &cmp, {.internal_threshold_t = 0.6});
  Matching m = ComputeFastMatch(w.t1, w.t2, eval);

  for (NodeId x : w.t1.PreOrder()) {
    if (w.t1.IsLeaf(x)) continue;
    int over_threshold = 0;
    for (NodeId y : w.t2.PreOrder()) {
      if (w.t2.IsLeaf(y) || w.t2.label(y) != w.t1.label(x)) continue;
      if (eval.InternalEqual(x, y, m)) ++over_threshold;
    }
    EXPECT_LE(over_threshold, 1)
        << "Lemma C.3 violated for internal node " << x;
  }
}

TEST(TheoremC2Test, ScriptIsNoLongerThanDeleteAllInsertAll) {
  // Sanity bound: a minimum conforming script can never exceed the trivial
  // rewrite-everything script.
  for (uint64_t seed : {501ull, 502ull, 503ull}) {
    CleanWorkload w(3, 25, seed);
    WordLcsComparator cmp;
    CriteriaEvaluator eval(w.t1, w.t2, &cmp, {});
    Matching m = ComputeFastMatch(w.t1, w.t2, eval);
    auto result = GenerateEditScript(w.t1, w.t2, m, &cmp);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->script.TotalCost(),
              static_cast<double>(w.t1.size() + w.t2.size()));
  }
}

}  // namespace
}  // namespace treediff
