#include "core/post_process.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/fast_match.h"
#include "tree/builder.h"

namespace treediff {
namespace {

struct Fixture {
  std::shared_ptr<LabelTable> labels = std::make_shared<LabelTable>();
  WordLcsComparator cmp;

  Tree Parse(const std::string& s) { return *ParseSexpr(s, labels); }
};

TEST(PostProcessTest, RepairsDuplicateInducedCrossMatch) {
  Fixture f;
  // Two identical sentences ("dup dup dup") violate Matching Criterion 3.
  // Force the bad cross-match by hand: T1's P1 copy matched to T2's P2 copy.
  Tree t1 = f.Parse(
      "(D (P (S \"dup one two\") (S \"anchor a b c\")) "
      "(P (S \"dup one two\") (S \"other x y z\")))");
  Tree t2 = f.Parse(
      "(D (P (S \"dup one two\") (S \"anchor a b c\")) "
      "(P (S \"dup one two\") (S \"other x y z\")))");
  NodeId p1a = t1.children(t1.root())[0];
  NodeId p1b = t1.children(t1.root())[1];
  NodeId p2a = t2.children(t2.root())[0];
  NodeId p2b = t2.children(t2.root())[1];

  Matching m(t1.id_bound(), t2.id_bound());
  m.Add(t1.root(), t2.root());
  m.Add(p1a, p2a);
  m.Add(p1b, p2b);
  m.Add(t1.children(p1a)[1], t2.children(p2a)[1]);  // anchors.
  m.Add(t1.children(p1b)[1], t2.children(p2b)[1]);
  // The bad pair: P1's dup matched into P2, and vice versa.
  m.Add(t1.children(p1a)[0], t2.children(p2b)[0]);
  m.Add(t1.children(p1b)[0], t2.children(p2a)[0]);

  CriteriaEvaluator eval(t1, t2, &f.cmp, {});
  const size_t fixed = PostProcessMatching(t1, t2, eval, &m);
  EXPECT_GE(fixed, 1u);
  // After repair both dups match within their own paragraphs.
  EXPECT_EQ(m.PartnerOfT1(t1.children(p1a)[0]), t2.children(p2a)[0]);
  EXPECT_EQ(m.PartnerOfT1(t1.children(p1b)[0]), t2.children(p2b)[0]);
}

TEST(PostProcessTest, NoChangeOnCleanMatching) {
  Fixture f;
  Tree t1 = f.Parse("(D (P (S \"aa bb\") (S \"cc dd\")))");
  Tree t2 = f.Parse("(D (P (S \"aa bb\") (S \"cc dd\")))");
  CriteriaEvaluator eval(t1, t2, &f.cmp, {});
  Matching m = ComputeFastMatch(t1, t2, eval);
  const size_t before = m.size();
  EXPECT_EQ(PostProcessMatching(t1, t2, eval, &m), 0u);
  EXPECT_EQ(m.size(), before);
}

TEST(PostProcessTest, DoesNotStealMatchedTargets) {
  Fixture f;
  // c is matched across parents, but the only same-label child of y is
  // already matched: post-processing must leave everything alone.
  Tree t1 = f.Parse("(D (P (S \"s s s\")) (P (S \"t t t\")))");
  Tree t2 = f.Parse("(D (P (S \"s s s\")) (P (S \"t t t\")))");
  NodeId p1a = t1.children(t1.root())[0];
  NodeId p1b = t1.children(t1.root())[1];
  NodeId p2a = t2.children(t2.root())[0];
  NodeId p2b = t2.children(t2.root())[1];
  Matching m(t1.id_bound(), t2.id_bound());
  m.Add(t1.root(), t2.root());
  m.Add(p1a, p2a);
  m.Add(p1b, p2b);
  m.Add(t1.children(p1a)[0], t2.children(p2a)[0]);
  // Cross-match: t's sentence to... construct a cross where target occupied.
  m.Add(t1.children(p1b)[0], t2.children(p2b)[0]);
  CriteriaEvaluator eval(t1, t2, &f.cmp, {});
  EXPECT_EQ(PostProcessMatching(t1, t2, eval, &m), 0u);
  EXPECT_EQ(m.PartnerOfT1(t1.children(p1a)[0]), t2.children(p2a)[0]);
}

TEST(PostProcessTest, RespectsThresholdF) {
  Fixture f;
  // The candidate sibling under y is too dissimilar: no repair.
  Tree t1 = f.Parse("(D (P (S \"alpha beta gamma\")) (P (S \"k k k\")))");
  Tree t2 = f.Parse(
      "(D (P (S \"completely different words\")) (P (S \"k k k\") "
      "(S \"alpha beta gamma\")))");
  NodeId p1a = t1.children(t1.root())[0];
  NodeId p1b = t1.children(t1.root())[1];
  NodeId p2a = t2.children(t2.root())[0];
  NodeId p2b = t2.children(t2.root())[1];
  Matching m(t1.id_bound(), t2.id_bound());
  m.Add(t1.root(), t2.root());
  m.Add(p1a, p2a);
  m.Add(p1b, p2b);
  // alpha-sentence matched across parents into p2b.
  m.Add(t1.children(p1a)[0], t2.children(p2b)[1]);
  CriteriaEvaluator eval(t1, t2, &f.cmp, {.leaf_threshold_f = 0.5});
  // The only unmatched child of p2a is "completely different words":
  // compare > f, so nothing changes.
  EXPECT_EQ(PostProcessMatching(t1, t2, eval, &m), 0u);
  EXPECT_EQ(m.PartnerOfT1(t1.children(p1a)[0]), t2.children(p2b)[1]);
}

}  // namespace
}  // namespace treediff
