#include "tree/schema.h"

#include <gtest/gtest.h>

#include <memory>

#include "tree/builder.h"

namespace treediff {
namespace {

TEST(LabelSchemaTest, RankLookup) {
  LabelTable labels;
  LabelSchema schema;
  LabelId a = labels.Intern("a");
  schema.SetRank(a, 3);
  EXPECT_EQ(schema.Rank(a), 3);
  EXPECT_EQ(schema.Rank(labels.Intern("unknown")), -1);
}

TEST(LabelSchemaTest, LabelsByRankAscending) {
  LabelTable labels;
  LabelSchema schema = MakeDocumentSchema(&labels);
  std::vector<LabelId> order = schema.LabelsByRank();
  ASSERT_EQ(order.size(), 8u);  // Incl. the "codeblock" leaf label.
  EXPECT_EQ(schema.Rank(order.front()), 0);  // sentence or codeblock.
  EXPECT_EQ(labels.Name(order.back()), "document");
}

TEST(LabelSchemaTest, DocumentTreeSatisfiesAcyclicity) {
  auto labels = std::make_shared<LabelTable>();
  LabelSchema schema = MakeDocumentSchema(labels.get());
  auto tree = ParseSexpr(
      "(document (section \"h\" (paragraph (sentence \"a.\")) "
      "(list (item (paragraph (sentence \"b.\"))))))",
      labels);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(schema.CheckAcyclic(*tree).ok());
}

TEST(LabelSchemaTest, DetectsRankViolation) {
  auto labels = std::make_shared<LabelTable>();
  LabelSchema schema = MakeDocumentSchema(labels.get());
  // A section under a paragraph inverts the ordering.
  auto tree =
      ParseSexpr("(document (paragraph (section \"h\")))", labels);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(schema.CheckAcyclic(*tree).code(), Code::kFailedPrecondition);
}

TEST(LabelSchemaTest, DetectsEqualRankEdge) {
  auto labels = std::make_shared<LabelTable>();
  LabelSchema schema = MakeDocumentSchema(labels.get());
  // list inside list: equal ranks violate the strict ordering; the paper
  // merges list kinds precisely so nesting is governed by item in between.
  auto tree = ParseSexpr("(document (section \"h\" (list (list))))", labels);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(schema.CheckAcyclic(*tree).code(), Code::kFailedPrecondition);
}

TEST(LabelSchemaTest, UnknownLabelFailsCheck) {
  auto labels = std::make_shared<LabelTable>();
  LabelSchema schema = MakeDocumentSchema(labels.get());
  auto tree = ParseSexpr("(document (mystery))", labels);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(schema.CheckAcyclic(*tree).code(), Code::kFailedPrecondition);
}

TEST(LabelSchemaTest, EmptyTreePasses) {
  LabelTable labels;
  LabelSchema schema = MakeDocumentSchema(&labels);
  Tree empty;
  EXPECT_TRUE(schema.CheckAcyclic(empty).ok());
}

}  // namespace
}  // namespace treediff
