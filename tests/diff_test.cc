#include "core/diff.h"

#include <gtest/gtest.h>

#include <memory>

#include "tree/builder.h"

namespace treediff {
namespace {

struct Fixture {
  std::shared_ptr<LabelTable> labels = std::make_shared<LabelTable>();

  Tree Parse(const std::string& s) { return *ParseSexpr(s, labels); }
};

TEST(DiffTreesTest, IdenticalTreesEmptyScript) {
  Fixture f;
  Tree t1 = f.Parse("(D (P (S \"hello world now\")))");
  Tree t2 = f.Parse("(D (P (S \"hello world now\")))");
  auto result = DiffTrees(t1, t2);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->script.empty());
  EXPECT_DOUBLE_EQ(result->stats.script_cost, 0.0);
  EXPECT_EQ(result->stats.unweighted_edit_distance, 0u);
  EXPECT_EQ(result->matching.size(), 3u);
}

TEST(DiffTreesTest, EndToEndMixedEdits) {
  Fixture f;
  Tree t1 = f.Parse(
      "(D (P (S \"the quick brown fox\") (S \"jumped over dogs\") "
      "(S \"stable line one\")) (P (S \"stable line two\") "
      "(S \"stable line three\")))");
  Tree t2 = f.Parse(
      "(D (P (S \"the quick brown wolf\") (S \"stable line one\")) "
      "(P (S \"stable line two\") (S \"stable line three\") "
      "(S \"totally fresh sentence\")))");
  auto result = DiffTrees(t1, t2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.updates, 1u);  // fox -> wolf.
  EXPECT_EQ(result->stats.deletes, 1u);  // "jumped over dogs".
  EXPECT_EQ(result->stats.inserts, 1u);  // fresh sentence.
  // Verify by replay.
  Tree replay = t1.Clone();
  ASSERT_TRUE(result->script.ApplyTo(&replay).ok());
  EXPECT_TRUE(Tree::Isomorphic(replay, t2));
}

TEST(DiffTreesTest, StatsCountersPopulated) {
  Fixture f;
  Tree t1 = f.Parse("(D (P (S \"a b c\") (S \"d e f\")))");
  Tree t2 = f.Parse("(D (P (S \"a b c\") (S \"x y z\")))");
  auto result = DiffTrees(t1, t2);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.compare_calls, 0u);
  EXPECT_GT(result->stats.partner_checks, 0u);
  EXPECT_GE(result->stats.match_seconds, 0.0);
  EXPECT_GE(result->stats.script_seconds, 0.0);
  EXPECT_EQ(result->stats.inserts + result->stats.deletes +
                result->stats.updates + result->stats.moves,
            result->stats.unweighted_edit_distance);
}

TEST(DiffTreesTest, MatchVsFastMatchProduceEquivalentScripts) {
  Fixture f;
  Tree t1 = f.Parse(
      "(D (P (S \"one one one\") (S \"two two two\")) "
      "(P (S \"three three three\")))");
  Tree t2 = f.Parse(
      "(D (P (S \"one one one\")) "
      "(P (S \"three three three\") (S \"two two two\")))");
  DiffOptions fast;
  fast.use_fast_match = true;
  DiffOptions slow;
  slow.use_fast_match = false;
  auto r1 = DiffTrees(t1, t2, fast);
  auto r2 = DiffTrees(t1, t2, slow);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r1->stats.script_cost, r2->stats.script_cost);
}

TEST(DiffTreesTest, CustomComparatorIsUsed) {
  Fixture f;
  Tree t1 = f.Parse("(D (S \"abc\"))");
  Tree t2 = f.Parse("(D (S \"abd\"))");
  ExactComparator exact;
  DiffOptions options;
  options.comparator = &exact;
  auto result = DiffTrees(t1, t2, options);
  ASSERT_TRUE(result.ok());
  // Exact comparator: distance 2 > f, so the leaves cannot match; the
  // script deletes and re-inserts instead of updating.
  EXPECT_EQ(result->stats.updates, 0u);
  EXPECT_EQ(result->stats.inserts, 1u);
  EXPECT_EQ(result->stats.deletes, 1u);
  EXPECT_GT(exact.calls(), 0u);
}

TEST(DiffTreesTest, ThresholdValidation) {
  Fixture f;
  Tree t1 = f.Parse("(D (S \"a\"))");
  Tree t2 = f.Parse("(D (S \"a\"))");
  DiffOptions bad_f;
  bad_f.leaf_threshold_f = 1.5;
  EXPECT_EQ(DiffTrees(t1, t2, bad_f).status().code(),
            Code::kInvalidArgument);
  DiffOptions bad_t;
  bad_t.internal_threshold_t = 0.3;
  EXPECT_EQ(DiffTrees(t1, t2, bad_t).status().code(),
            Code::kInvalidArgument);
}

TEST(DiffTreesTest, RejectsEmptyAndMismatchedTables) {
  Fixture f;
  Tree t1 = f.Parse("(D (S \"a\"))");
  Tree empty(f.labels);
  EXPECT_EQ(DiffTrees(t1, empty).status().code(), Code::kInvalidArgument);
  Tree other = *ParseSexpr("(D (S \"a\"))");  // Own label table.
  EXPECT_EQ(DiffTrees(t1, other).status().code(), Code::kInvalidArgument);
}

TEST(DiffTreesTest, WeightedDistanceTracksSubtreeMoves) {
  Fixture f;
  // Each section keeps 4 of its leaves in place (ratio 4/6 > 0.6), so both
  // sections stay matched and the paragraph move is detected as one MOV of
  // a two-leaf subtree.
  Tree t1 = f.Parse(
      "(D (Sec (S \"a1 a1\") (S \"a2 a2\") (S \"a3 a3\") (S \"a4 a4\") "
      "(P (S \"m1 m1 m1\") (S \"m2 m2 m2\"))) "
      "(Sec (S \"b1 b1\") (S \"b2 b2\") (S \"b3 b3\") (S \"b4 b4\")))");
  Tree t2 = f.Parse(
      "(D (Sec (S \"a1 a1\") (S \"a2 a2\") (S \"a3 a3\") (S \"a4 a4\")) "
      "(Sec (S \"b1 b1\") (S \"b2 b2\") (S \"b3 b3\") (S \"b4 b4\") "
      "(P (S \"m1 m1 m1\") (S \"m2 m2 m2\"))))");
  auto result = DiffTrees(t1, t2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.moves, 1u);
  EXPECT_EQ(result->stats.weighted_edit_distance, 2u);
  EXPECT_EQ(result->stats.unweighted_edit_distance, 1u);
}

TEST(DiffTreesTest, RootsForcedWhenCriteriaFail) {
  Fixture f;
  // Documents that share nothing: the criteria match no internal nodes, but
  // document roots are matched anyway so a script still exists.
  Tree t1 = f.Parse("(D (P (S \"aaa bbb ccc\")))");
  Tree t2 = f.Parse("(D (P (S \"xxx yyy zzz\")))");
  auto result = DiffTrees(t1, t2);
  ASSERT_TRUE(result.ok());
  Tree replay = t1.Clone();
  ASSERT_TRUE(result->script.ApplyTo(&replay).ok());
  EXPECT_TRUE(Tree::Isomorphic(replay, t2));
}

}  // namespace
}  // namespace treediff
