#include "core/edit_script.h"

#include <gtest/gtest.h>

#include <memory>

#include "tree/builder.h"

namespace treediff {
namespace {

TEST(EditOpTest, Factories) {
  EditOp ins = EditOp::Insert(5, 2, "v", 1, 3);
  EXPECT_EQ(ins.kind, EditOpKind::kInsert);
  EXPECT_EQ(ins.node, 5);
  EXPECT_EQ(ins.label, 2);
  EXPECT_EQ(ins.value, "v");
  EXPECT_EQ(ins.parent, 1);
  EXPECT_EQ(ins.position, 3);
  EXPECT_DOUBLE_EQ(ins.cost, 1.0);

  EditOp del = EditOp::Delete(7);
  EXPECT_EQ(del.kind, EditOpKind::kDelete);
  EXPECT_EQ(del.node, 7);

  EditOp upd = EditOp::Update(3, "new", 0.25);
  EXPECT_EQ(upd.kind, EditOpKind::kUpdate);
  EXPECT_DOUBLE_EQ(upd.cost, 0.25);

  EditOp mov = EditOp::Move(2, 8, 1);
  EXPECT_EQ(mov.kind, EditOpKind::kMove);
  EXPECT_EQ(mov.parent, 8);
}

TEST(EditOpTest, ToStringFormats) {
  LabelTable labels;
  LabelId s = labels.Intern("S");
  EXPECT_EQ(EditOp::Insert(11, s, "foo", 1, 4).ToString(labels),
            "INS((11, S, \"foo\"), 1, 4)");
  EXPECT_EQ(EditOp::Delete(2).ToString(labels), "DEL(2)");
  EXPECT_EQ(EditOp::Update(9, "baz", 1.0).ToString(labels),
            "UPD(9, \"baz\")");
  EXPECT_EQ(EditOp::Move(5, 11, 1).ToString(labels), "MOV(5, 11, 1)");
}

TEST(EditScriptTest, CountsAndCost) {
  EditScript script;
  script.Append(EditOp::Insert(1, 0, "", 0, 1));
  script.Append(EditOp::Delete(2));
  script.Append(EditOp::Update(3, "v", 0.5));
  script.Append(EditOp::Move(4, 0, 1));
  EXPECT_EQ(script.size(), 4u);
  EXPECT_EQ(script.num_inserts(), 1u);
  EXPECT_EQ(script.num_deletes(), 1u);
  EXPECT_EQ(script.num_updates(), 1u);
  EXPECT_EQ(script.num_moves(), 1u);
  EXPECT_DOUBLE_EQ(script.TotalCost(), 3.5);
}

/// Example 3.1 of the paper: applying
///   INS((11, Sec, foo), 1, 4), MOV(5, 11, 1), DEL(2), UPD(9, baz)
/// to the Figure 3 tree. We rebuild the same shape with our dense ids.
class Example31Test : public ::testing::Test {
 protected:
  Example31Test() : tree_(std::make_shared<LabelTable>()) {
    // Paper ids -> our ids: 1->d, 2->a, 5->b, 6->x, 7->y, 9->c ...
    d_ = tree_.AddRoot("Doc");
    a_ = tree_.AddChild(d_, "S", "leaf-a");   // paper node 2 (deleted).
    b_ = tree_.AddChild(d_, "Sec");           // paper node 5 (moved).
    x_ = tree_.AddChild(b_, "S", "a");        // paper node 6.
    y_ = tree_.AddChild(b_, "S", "b");        // paper node 7.
    c_ = tree_.AddChild(d_, "S", "bar");      // paper node 9 (updated).
  }

  Tree tree_;
  NodeId d_, a_, b_, x_, y_, c_;
};

TEST_F(Example31Test, ApplySequenceTransformsTree) {
  EditScript script;
  LabelId sec = tree_.InternLabel("Sec");
  // The new node gets the next dense id (6 nodes exist: ids 0..5 -> new 6).
  script.Append(EditOp::Insert(6, sec, "foo", d_, 4));
  script.Append(EditOp::Move(b_, 6, 1));
  script.Append(EditOp::Delete(a_));
  script.Append(EditOp::Update(c_, "baz", 1.0));

  ASSERT_TRUE(script.ApplyTo(&tree_).ok());
  EXPECT_TRUE(tree_.Validate().ok());
  EXPECT_EQ(tree_.ToDebugString(),
            "(Doc (S \"baz\") (Sec \"foo\" (Sec (S \"a\") (S \"b\"))))");
}

TEST_F(Example31Test, ApplyFailsOnWrongInsertId) {
  EditScript script;
  script.Append(EditOp::Insert(99, tree_.InternLabel("Sec"), "foo", d_, 4));
  EXPECT_EQ(script.ApplyTo(&tree_).code(), Code::kFailedPrecondition);
}

TEST_F(Example31Test, ApplyFailsOnIllegalOp) {
  EditScript script;
  script.Append(EditOp::Delete(b_));  // b has children.
  EXPECT_EQ(script.ApplyTo(&tree_).code(), Code::kFailedPrecondition);
}

TEST_F(Example31Test, ScriptToStringOnePerLine) {
  EditScript script;
  script.Append(EditOp::Delete(a_));
  script.Append(EditOp::Update(c_, "z", 1.0));
  const std::string s = script.ToString(tree_.labels());
  EXPECT_EQ(s, "DEL(1)\nUPD(5, \"z\")\n");
}

}  // namespace
}  // namespace treediff
