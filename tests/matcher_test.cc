#include "core/matcher.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "core/diff.h"
#include "core/fast_match.h"
#include "core/keyed_match.h"
#include "tree/builder.h"
#include "util/budget.h"

namespace treediff {
namespace {

Tree Parse(const char* sexpr, std::shared_ptr<LabelTable> labels) {
  auto tree = ParseSexpr(sexpr, labels);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(*tree);
}

class MatcherTest : public ::testing::Test {
 protected:
  MatcherTest()
      : labels_(std::make_shared<LabelTable>()),
        t1_(Parse("(D (P (S \"alpha beta\") (S \"gamma\")) "
                  "(P (S \"delta\") (S \"epsilon zeta\")))",
                  labels_)),
        t2_(Parse("(D (P (S \"alpha beta\") (S \"gamma prime\")) "
                  "(P (S \"epsilon zeta\") (S \"eta\")))",
                  labels_)) {}

  std::shared_ptr<LabelTable> labels_;
  Tree t1_;
  Tree t2_;
};

TEST_F(MatcherTest, RegistryCoversEveryRungWithMatchingIdentity) {
  for (DiffRung rung :
       {DiffRung::kOptimalZs, DiffRung::kFastMatch,
        DiffRung::kKeyedStructural, DiffRung::kTopLevelReplace}) {
    const Matcher& m = MatcherForRung(rung);
    EXPECT_EQ(m.rung(), rung);
    EXPECT_STREQ(m.name(), DiffRungName(rung));
    // Singletons: repeated lookups return the same instance.
    EXPECT_EQ(&MatcherForRung(rung), &m);
  }
}

TEST_F(MatcherTest, EveryRungProducesAMatchingUnbudgeted) {
  DiffOptions options;
  DiffContext ctx(t1_, t2_, options);
  for (DiffRung rung :
       {DiffRung::kOptimalZs, DiffRung::kFastMatch,
        DiffRung::kKeyedStructural, DiffRung::kTopLevelReplace}) {
    MatchResult result =
        MatcherForRung(rung).Run(ctx, Matching(t1_.id_bound(), t2_.id_bound()));
    ASSERT_TRUE(result.matching.has_value()) << DiffRungName(rung);
    // Every matcher's pairs are label-legal (the edit model never relabels).
    for (const auto& [x, y] : result.matching->Pairs()) {
      EXPECT_EQ(t1_.label(x), t2_.label(y));
    }
  }
}

TEST_F(MatcherTest, CriteriaMatcherAgreesWithDirectFastMatch) {
  DiffOptions options;
  DiffContext ctx(t1_, t2_, options);
  MatchResult via_registry = MatcherForRung(DiffRung::kFastMatch)
                                 .Run(ctx, Matching(t1_.id_bound(), t2_.id_bound()));
  ASSERT_TRUE(via_registry.matching.has_value());
  Matching direct = ComputeFastMatch(t1_, t2_, ctx.evaluator(),
                                     options.schema, options.fallback_limit_k);
  EXPECT_EQ(via_registry.matching->Pairs(), direct.Pairs());
}

TEST_F(MatcherTest, StructuralMatcherAgreesWithDirectCall) {
  DiffOptions options;
  DiffContext ctx(t1_, t2_, options);
  MatchResult via_registry =
      MatcherForRung(DiffRung::kKeyedStructural)
          .Run(ctx, Matching(t1_.id_bound(), t2_.id_bound()));
  ASSERT_TRUE(via_registry.matching.has_value());
  EXPECT_EQ(via_registry.matching->Pairs(),
            ComputeStructuralMatch(t1_, t2_).Pairs());
}

TEST_F(MatcherTest, ZsMatcherDeclinesWhenTheTableCannotFit) {
  Budget budget;
  budget.set_arena_cap_bytes(16);  // Far below the (n1+1)*(n2+1) DP table.
  DiffOptions options;
  options.budget = &budget;
  DiffContext ctx(t1_, t2_, options);
  MatchResult result = MatcherForRung(DiffRung::kOptimalZs)
                           .Run(ctx, Matching(t1_.id_bound(), t2_.id_bound()));
  EXPECT_FALSE(result.matching.has_value());
}

TEST_F(MatcherTest, CriteriaMatcherDeclinesOnExhaustedBudget) {
  Budget budget;
  budget.set_node_cap(1);
  DiffOptions options;
  options.budget = &budget;
  DiffContext ctx(t1_, t2_, options);
  // Exhaust the budget up front; the matcher must decline, not return a
  // partial matching.
  while (budget.ChargeNodes(1)) {
  }
  ASSERT_TRUE(budget.exhausted());
  MatchResult result = MatcherForRung(DiffRung::kFastMatch)
                           .Run(ctx, Matching(t1_.id_bound(), t2_.id_bound()));
  EXPECT_FALSE(result.matching.has_value());
}

TEST_F(MatcherTest, TopLevelMatcherPairsOnlyEqualLabeledRoots) {
  DiffOptions options;
  DiffContext ctx(t1_, t2_, options);
  MatchResult result =
      MatcherForRung(DiffRung::kTopLevelReplace)
          .Run(ctx, Matching(t1_.id_bound(), t2_.id_bound()));
  ASSERT_TRUE(result.matching.has_value());
  ASSERT_EQ(result.matching->Pairs().size(), 1u);
  EXPECT_EQ(result.matching->PartnerOfT2(t2_.root()), t1_.root());

  Tree other = Parse("(X (S \"alpha\"))", labels_);
  EXPECT_TRUE(RootOnlyMatching(t1_, other).Pairs().empty());
}

TEST_F(MatcherTest, DiffContextSharesOneIndexPerTree) {
  DiffOptions options;
  DiffContext ctx(t1_, t2_, options);
  // The context's indexes are attached to the trees, so every stage that
  // asks the tree for its index gets the shared one.
  EXPECT_EQ(t1_.attached_index(), &ctx.index1());
  EXPECT_EQ(t2_.attached_index(), &ctx.index2());
  EXPECT_EQ(&ctx.evaluator().index1(), &ctx.index1());
  EXPECT_EQ(&ctx.evaluator().index2(), &ctx.index2());
  EXPECT_EQ(ctx.index1().PreOrder(), t1_.PreOrder());
}

TEST_F(MatcherTest, LadderEndToEndMatchesSeedSemantics) {
  // Unbudgeted DiffTrees starting at kFastMatch lands on kFastMatch.
  auto plain = DiffTrees(t1_, t2_);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->report.rung, DiffRung::kFastMatch);
  EXPECT_FALSE(plain->report.degraded);

  // Starting at kOptimalZs with no budget runs ZS.
  DiffOptions zs;
  zs.start_rung = DiffRung::kOptimalZs;
  auto optimal = DiffTrees(t1_, t2_, zs);
  ASSERT_TRUE(optimal.ok());
  EXPECT_EQ(optimal->report.rung, DiffRung::kOptimalZs);

  // A hostile budget degrades below the requested rung but still succeeds.
  Budget budget;
  budget.set_comparison_cap(1);
  DiffOptions strangled;
  strangled.budget = &budget;
  auto degraded = DiffTrees(t1_, t2_, strangled);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded->report.degraded);
  EXPECT_GT(static_cast<int>(degraded->report.rung),
            static_cast<int>(DiffRung::kFastMatch));
}

TEST_F(MatcherTest, ReportCarriesTokenizeCacheCounters) {
  auto result = DiffTrees(t1_, t2_);
  ASSERT_TRUE(result.ok());
  // The default WordLcsComparator tokenizes at least the unequal leaf pairs.
  EXPECT_GT(result->report.tokenize_cache_hits +
                result->report.tokenize_cache_misses,
            0u);
}

}  // namespace
}  // namespace treediff
