#include "lcs/lcs.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace treediff {
namespace {

std::vector<char> Chars(const std::string& s) {
  return {s.begin(), s.end()};
}

size_t MyersLen(const std::string& a, const std::string& b) {
  return MyersLcs(static_cast<int>(a.size()), static_cast<int>(b.size()),
                  [&](int i, int j) {
                    return a[static_cast<size_t>(i)] ==
                           b[static_cast<size_t>(j)];
                  })
      .size();
}

size_t DpLen(const std::string& a, const std::string& b) {
  return DpLcs(static_cast<int>(a.size()), static_cast<int>(b.size()),
               [&](int i, int j) {
                 return a[static_cast<size_t>(i)] ==
                        b[static_cast<size_t>(j)];
               })
      .size();
}

TEST(LcsTest, EmptySequences) {
  EXPECT_EQ(MyersLen("", ""), 0u);
  EXPECT_EQ(MyersLen("abc", ""), 0u);
  EXPECT_EQ(MyersLen("", "abc"), 0u);
  EXPECT_EQ(DpLen("", "abc"), 0u);
}

TEST(LcsTest, IdenticalSequences) {
  EXPECT_EQ(MyersLen("abcdef", "abcdef"), 6u);
  EXPECT_EQ(DpLen("abcdef", "abcdef"), 6u);
}

TEST(LcsTest, ClassicExample) {
  // LCS(ABCABBA, CBABAC) = 4 (e.g. CABA), the example from Myers' paper.
  EXPECT_EQ(MyersLen("ABCABBA", "CBABAC"), 4u);
  EXPECT_EQ(DpLen("ABCABBA", "CBABAC"), 4u);
}

TEST(LcsTest, DisjointSequences) {
  EXPECT_EQ(MyersLen("aaa", "bbb"), 0u);
  EXPECT_EQ(DpLen("aaa", "bbb"), 0u);
}

TEST(LcsTest, PairsAreStrictlyIncreasingAndEqual) {
  const std::string a = "ABCABBA", b = "CBABAC";
  auto pairs = MyersLcs(static_cast<int>(a.size()),
                        static_cast<int>(b.size()), [&](int i, int j) {
                          return a[static_cast<size_t>(i)] ==
                                 b[static_cast<size_t>(j)];
                        });
  int last_a = -1, last_b = -1;
  for (const LcsPair& p : pairs) {
    EXPECT_GT(p.a_index, last_a);
    EXPECT_GT(p.b_index, last_b);
    EXPECT_EQ(a[static_cast<size_t>(p.a_index)],
              b[static_cast<size_t>(p.b_index)]);
    last_a = p.a_index;
    last_b = p.b_index;
  }
}

TEST(LcsTest, SingleElementMatch) {
  EXPECT_EQ(MyersLen("x", "x"), 1u);
  EXPECT_EQ(MyersLen("x", "y"), 0u);
}

TEST(LcsTest, PrefixAndSuffix) {
  EXPECT_EQ(MyersLen("abc", "abcdef"), 3u);
  EXPECT_EQ(MyersLen("def", "abcdef"), 3u);
  EXPECT_EQ(MyersLen("abcdef", "abc"), 3u);
}

TEST(LcsTest, LcsOfVectorsConvenience) {
  std::vector<int> a = {1, 2, 3, 4, 5};
  std::vector<int> b = {2, 4, 5, 6};
  auto pairs = LcsOfVectors(a, b);
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], (LcsPair{1, 0}));
  EXPECT_EQ(pairs[1], (LcsPair{3, 1}));
  EXPECT_EQ(pairs[2], (LcsPair{4, 2}));
  EXPECT_EQ(LcsLength(a, b), 3u);
}

TEST(LcsTest, DispatcherMatchesBothImplementations) {
  const std::string a = "the quick brown fox jumps";
  const std::string b = "the brown dog jumps high";
  auto va = Chars(a);
  auto vb = Chars(b);
  EXPECT_EQ(LcsOfVectors(va, vb).size(), MyersLen(a, b));
  EXPECT_EQ(LcsOfVectors(va, vb).size(), DpLen(a, b));
}

TEST(LcsTest, NonTransitiveEqualityIsAccepted) {
  // equal(i, j) = |a[i] - b[j]| <= 1 is not transitive; LCS must still
  // return a valid common subsequence under the predicate (this mirrors the
  // paper's compare(x, y) <= f leaf criterion).
  std::vector<int> a = {1, 5, 9};
  std::vector<int> b = {2, 5, 8};
  auto pairs = Lcs(3, 3, [&](int i, int j) {
    return std::abs(a[static_cast<size_t>(i)] - b[static_cast<size_t>(j)]) <=
           1;
  });
  EXPECT_EQ(pairs.size(), 3u);
}

TEST(LcsTest, LargeInputTriggersMyersPath) {
  // Above the DP cutoff (64): two nearly identical long sequences.
  std::string a(500, 'x'), b(500, 'x');
  b[100] = 'y';
  b[400] = 'z';
  EXPECT_EQ(LcsOfVectors(Chars(a), Chars(b)).size(), 498u);
}

}  // namespace
}  // namespace treediff
