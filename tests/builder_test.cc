#include "tree/builder.h"

#include <gtest/gtest.h>

#include <memory>

namespace treediff {
namespace {

TEST(ParseSexprTest, SingleNode) {
  auto tree = ParseSexpr("(D)");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 1u);
  EXPECT_EQ(tree->label_name(tree->root()), "D");
  EXPECT_EQ(tree->value(tree->root()), "");
}

TEST(ParseSexprTest, NodeWithValue) {
  auto tree = ParseSexpr("(S \"hello world\")");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->value(tree->root()), "hello world");
}

TEST(ParseSexprTest, EscapedQuotesAndBackslashes) {
  auto tree = ParseSexpr(R"((S "say \"hi\" and \\"))");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->value(tree->root()), "say \"hi\" and \\");
}

TEST(ParseSexprTest, NestedStructureRoundTrips) {
  const std::string text = "(D (P (S \"a\") (S \"b\")) (P (S \"c\")))";
  auto tree = ParseSexpr(text);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->ToDebugString(), text);
  EXPECT_EQ(tree->size(), 6u);
  EXPECT_TRUE(tree->Validate().ok());
}

TEST(ParseSexprTest, WhitespaceIsFlexible) {
  auto tree = ParseSexpr("  ( D\n  (P   (S \"a\"))\t)  ");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->ToDebugString(), "(D (P (S \"a\")))");
}

TEST(ParseSexprTest, InternalNodeWithValue) {
  auto tree = ParseSexpr("(section \"Intro\" (paragraph (sentence \"x.\")))");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->value(tree->root()), "Intro");
  EXPECT_EQ(tree->children(tree->root()).size(), 1u);
}

TEST(ParseSexprTest, SharedLabelTable) {
  auto labels = std::make_shared<LabelTable>();
  auto t1 = ParseSexpr("(D (S \"a\"))", labels);
  auto t2 = ParseSexpr("(D (S \"b\"))", labels);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t1->label_table().get(), t2->label_table().get());
  EXPECT_EQ(t1->label(t1->root()), t2->label(t2->root()));
}

TEST(ParseSexprTest, ErrorOnMissingParen) {
  EXPECT_EQ(ParseSexpr("(D (P)").status().code(), Code::kParseError);
}

TEST(ParseSexprTest, ErrorOnTrailingGarbage) {
  EXPECT_EQ(ParseSexpr("(D) extra").status().code(), Code::kParseError);
}

TEST(ParseSexprTest, ErrorOnMissingLabel) {
  EXPECT_EQ(ParseSexpr("()").status().code(), Code::kParseError);
  EXPECT_EQ(ParseSexpr("(\"value-only\")").status().code(),
            Code::kParseError);
}

TEST(ParseSexprTest, ErrorOnEmptyInput) {
  EXPECT_EQ(ParseSexpr("").status().code(), Code::kParseError);
  EXPECT_EQ(ParseSexpr("   ").status().code(), Code::kParseError);
}

TEST(ParseSexprTest, ErrorOnUnterminatedString) {
  EXPECT_EQ(ParseSexpr("(S \"unterminated)").status().code(),
            Code::kParseError);
}

TEST(ParseSexprTest, DeepNesting) {
  std::string text;
  for (int i = 0; i < 50; ++i) text += "(N ";
  text += "(L \"x\")";
  for (int i = 0; i < 50; ++i) text += ")";
  auto tree = ParseSexpr(text);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 51u);
  EXPECT_EQ(tree->Height(), 50);
}

}  // namespace
}  // namespace treediff
