#include "core/keyed_match.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/edit_script_gen.h"
#include "tree/builder.h"

namespace treediff {
namespace {

struct Fixture {
  std::shared_ptr<LabelTable> labels = std::make_shared<LabelTable>();
  WordLcsComparator cmp;

  Tree Parse(const std::string& s) { return *ParseSexpr(s, labels); }
};

TEST(ValuePrefixKeyTest, ExtractsKeyToken) {
  Fixture f;
  Tree t = f.Parse(
      "(D (R \"key=778899 pillar at x=3 y=4\") (R \"no key here\") "
      "(R \"key=12\"))");
  auto kids = t.children(t.root());
  EXPECT_EQ(ValuePrefixKey(t, kids[0]), std::optional<std::string>("778899"));
  EXPECT_EQ(ValuePrefixKey(t, kids[1]), std::nullopt);
  EXPECT_EQ(ValuePrefixKey(t, kids[2]), std::optional<std::string>("12"));
  EXPECT_EQ(ValuePrefixKey(t, t.root()), std::nullopt);
}

TEST(KeyedMatchTest, MatchesByKeyAcrossPositionsAndValues) {
  Fixture f;
  // Records reordered AND updated: keys still pair them up directly.
  Tree t1 = f.Parse(
      "(D (R \"key=a height 10\") (R \"key=b height 20\") "
      "(R \"key=c height 30\"))");
  Tree t2 = f.Parse(
      "(D (R \"key=c height 31\") (R \"key=a height 10\") "
      "(R \"key=b height 99\"))");
  Matching m = ComputeKeyedMatch(t1, t2, ValuePrefixKey);
  EXPECT_EQ(m.size(), 3u);
  auto k1 = t1.children(t1.root());
  auto k2 = t2.children(t2.root());
  EXPECT_EQ(m.PartnerOfT1(k1[0]), k2[1]);  // key=a.
  EXPECT_EQ(m.PartnerOfT1(k1[1]), k2[2]);  // key=b.
  EXPECT_EQ(m.PartnerOfT1(k1[2]), k2[0]);  // key=c.
}

TEST(KeyedMatchTest, ZeroCompareCalls) {
  Fixture f;
  Tree t1 = f.Parse("(D (R \"key=a v1\") (R \"key=b v2\"))");
  Tree t2 = f.Parse("(D (R \"key=b v2x\") (R \"key=a v1\"))");
  Matching m = ComputeKeyedMatch(t1, t2, ValuePrefixKey);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(f.cmp.calls(), 0u);  // The whole point of the fast path.
}

TEST(KeyedMatchTest, DuplicateKeysVoided) {
  Fixture f;
  Tree t1 = f.Parse("(D (R \"key=dup a\") (R \"key=dup b\"))");
  Tree t2 = f.Parse("(D (R \"key=dup a\"))");
  Matching m = ComputeKeyedMatch(t1, t2, ValuePrefixKey);
  EXPECT_EQ(m.size(), 0u);  // Uniqueness guarantee void on the T1 side.
}

TEST(KeyedMatchTest, LabelsPartitionKeySpaces) {
  Fixture f;
  // Same key under different labels: no cross-label match.
  Tree t1 = f.Parse("(D (A \"key=7 x\"))");
  Tree t2 = f.Parse("(D (B \"key=7 x\"))");
  Matching m = ComputeKeyedMatch(t1, t2, ValuePrefixKey);
  EXPECT_EQ(m.size(), 0u);
}

TEST(KeyedMatchTest, VanishedKeysStayUnmatched) {
  Fixture f;
  Tree t1 = f.Parse("(D (R \"key=gone old\"))");
  Tree t2 = f.Parse("(D (R \"key=new fresh\"))");
  Matching m = ComputeKeyedMatch(t1, t2, ValuePrefixKey);
  EXPECT_EQ(m.size(), 0u);
}

TEST(HybridMatchTest, KeyedPlusValueBasedRemainder) {
  Fixture f;
  // Keyed records plus keyless prose: the hybrid matches records by key
  // (even heavily updated ones the value criteria would reject) and prose
  // by value.
  Tree t1 = f.Parse(
      "(D (R \"key=p1 completely original content\") "
      "(P (S \"shared prose sentence\")))");
  Tree t2 = f.Parse(
      "(D (R \"key=p1 entirely different text now\") "
      "(P (S \"shared prose sentence\")))");
  CriteriaEvaluator eval(t1, t2, &f.cmp, {});
  Matching m = ComputeHybridMatch(t1, t2, ValuePrefixKey, eval);
  // R by key, S by value, P by common leaves, D by common leaves.
  EXPECT_EQ(m.size(), 4u);
  EXPECT_EQ(m.PartnerOfT1(t1.children(t1.root())[0]),
            t2.children(t2.root())[0]);
}

TEST(HybridMatchTest, FeedsEditScriptGeneration) {
  Fixture f;
  Tree t1 = f.Parse(
      "(D (R \"key=a alpha\") (R \"key=b beta\") (P (S \"x y z\")))");
  Tree t2 = f.Parse(
      "(D (R \"key=b BETA updated\") (P (S \"x y z\")) (R \"key=a alpha\"))");
  CriteriaEvaluator eval(t1, t2, &f.cmp, {});
  Matching m = ComputeHybridMatch(t1, t2, ValuePrefixKey, eval);
  auto result = GenerateEditScript(t1, t2, m, &f.cmp);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(Tree::Isomorphic(result->transformed, t2));
  // The keyed record's rewrite is an update, not delete+insert.
  EXPECT_EQ(result->script.num_updates(), 1u);
  EXPECT_EQ(result->script.num_deletes(), 0u);
}

TEST(HybridMatchTest, LeafInternalKindsRespected) {
  Fixture f;
  // A keyed internal node vs a keyed leaf with the same key: must not pair.
  Tree t1 = f.Parse("(D (R \"key=k\" (S \"child\")))");
  Tree t2 = f.Parse("(D (R \"key=k\"))");
  Matching m = ComputeKeyedMatch(t1, t2, ValuePrefixKey);
  EXPECT_EQ(m.size(), 0u);
}

}  // namespace
}  // namespace treediff
