// Property tests: Myers' O(ND) LCS must agree with the reference DP on
// random inputs across alphabet sizes and length regimes, and its output
// must always be a valid common subsequence.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "lcs/lcs.h"
#include "util/random.h"

namespace treediff {
namespace {

std::vector<int> RandomSeq(Rng* rng, int len, int alphabet) {
  std::vector<int> v(static_cast<size_t>(len));
  for (auto& x : v) x = static_cast<int>(rng->Uniform(
      static_cast<uint64_t>(alphabet)));
  return v;
}

void CheckValidCommonSubsequence(const std::vector<int>& a,
                                 const std::vector<int>& b,
                                 const std::vector<LcsPair>& pairs) {
  int last_a = -1, last_b = -1;
  for (const LcsPair& p : pairs) {
    ASSERT_GE(p.a_index, 0);
    ASSERT_LT(p.a_index, static_cast<int>(a.size()));
    ASSERT_GE(p.b_index, 0);
    ASSERT_LT(p.b_index, static_cast<int>(b.size()));
    ASSERT_GT(p.a_index, last_a) << "a indices must strictly increase";
    ASSERT_GT(p.b_index, last_b) << "b indices must strictly increase";
    ASSERT_EQ(a[static_cast<size_t>(p.a_index)],
              b[static_cast<size_t>(p.b_index)]);
    last_a = p.a_index;
    last_b = p.b_index;
  }
}

class LcsPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LcsPropertyTest, MyersMatchesDpAndIsValid) {
  const auto [max_len, alphabet, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 7919 + 13);
  for (int iter = 0; iter < 40; ++iter) {
    const int n = static_cast<int>(rng.Uniform(
        static_cast<uint64_t>(max_len) + 1));
    const int m = static_cast<int>(rng.Uniform(
        static_cast<uint64_t>(max_len) + 1));
    std::vector<int> a = RandomSeq(&rng, n, alphabet);
    std::vector<int> b = RandomSeq(&rng, m, alphabet);
    auto equal = [&](int i, int j) {
      return a[static_cast<size_t>(i)] == b[static_cast<size_t>(j)];
    };
    auto myers = MyersLcs(n, m, equal);
    auto dp = DpLcs(n, m, equal);
    ASSERT_EQ(myers.size(), dp.size())
        << "n=" << n << " m=" << m << " alphabet=" << alphabet;
    CheckValidCommonSubsequence(a, b, myers);
    CheckValidCommonSubsequence(a, b, dp);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LcsPropertyTest,
    ::testing::Values(std::make_tuple(8, 2, 1), std::make_tuple(8, 4, 2),
                      std::make_tuple(30, 2, 3), std::make_tuple(30, 6, 4),
                      std::make_tuple(100, 3, 5), std::make_tuple(100, 26, 6),
                      std::make_tuple(250, 2, 7),
                      std::make_tuple(250, 50, 8)));

TEST(LcsArbitraryPredicateTest, MyersMatchesDpOnRandomBooleanMatrices) {
  // Myers' algorithm is a shortest path on the edit graph, where diagonal
  // edges exist wherever equal(i, j) holds — no transitivity or symmetry of
  // the predicate is required. Verify against the DP on completely random
  // equality matrices (the most adversarial predicate possible).
  Rng rng(4242);
  for (int iter = 0; iter < 30; ++iter) {
    const int n = 1 + static_cast<int>(rng.Uniform(25));
    const int m = 1 + static_cast<int>(rng.Uniform(25));
    const double density = 0.1 + rng.NextDouble() * 0.6;
    std::vector<std::vector<char>> matrix(
        static_cast<size_t>(n), std::vector<char>(static_cast<size_t>(m)));
    for (auto& row : matrix) {
      for (auto& cell : row) cell = rng.Bernoulli(density) ? 1 : 0;
    }
    auto equal = [&](int i, int j) {
      return matrix[static_cast<size_t>(i)][static_cast<size_t>(j)] != 0;
    };
    auto myers = MyersLcs(n, m, equal);
    auto dp = DpLcs(n, m, equal);
    ASSERT_EQ(myers.size(), dp.size())
        << "n=" << n << " m=" << m << " density=" << density;
    // Both must be valid under the matrix.
    int la = -1, lb = -1;
    for (const LcsPair& p : myers) {
      ASSERT_TRUE(equal(p.a_index, p.b_index));
      ASSERT_GT(p.a_index, la);
      ASSERT_GT(p.b_index, lb);
      la = p.a_index;
      lb = p.b_index;
    }
  }
}

TEST(LcsSimilarSequencesTest, NearIdenticalLongSequences) {
  // The regime FastMatch exploits: large N, small D.
  Rng rng(42);
  std::vector<int> a = RandomSeq(&rng, 2000, 1000);
  std::vector<int> b = a;
  for (int i = 0; i < 10; ++i) {
    b[rng.Uniform(b.size())] = static_cast<int>(rng.Uniform(1000)) + 2000;
  }
  auto equal = [&](int i, int j) {
    return a[static_cast<size_t>(i)] == b[static_cast<size_t>(j)];
  };
  auto myers = MyersLcs(2000, 2000, equal);
  auto dp = DpLcs(2000, 2000, equal);
  EXPECT_EQ(myers.size(), dp.size());
  EXPECT_GE(myers.size(), 1990u);
  CheckValidCommonSubsequence(a, b, myers);
}

}  // namespace
}  // namespace treediff
