#include "doc/sentence.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace treediff {
namespace {

TEST(SplitSentencesTest, EmptyAndBlank) {
  EXPECT_TRUE(SplitSentences("").empty());
  EXPECT_TRUE(SplitSentences("   \n ").empty());
}

TEST(SplitSentencesTest, SingleSentence) {
  EXPECT_EQ(SplitSentences("Hello world."),
            (std::vector<std::string>{"Hello world."}));
}

TEST(SplitSentencesTest, MultipleSentences) {
  EXPECT_EQ(SplitSentences("One here. Two here! Three here?"),
            (std::vector<std::string>{"One here.", "Two here!",
                                      "Three here?"}));
}

TEST(SplitSentencesTest, NoTerminatorKeepsTail) {
  EXPECT_EQ(SplitSentences("First one. trailing fragment"),
            (std::vector<std::string>{"First one.", "trailing fragment"}));
}

TEST(SplitSentencesTest, CollapsesInternalWhitespace) {
  EXPECT_EQ(SplitSentences("Spread  over\nlines. Next   one."),
            (std::vector<std::string>{"Spread over lines.", "Next one."}));
}

TEST(SplitSentencesTest, AbbreviationsDoNotSplit) {
  EXPECT_EQ(SplitSentences("See Fig. 3 for details. Next sentence."),
            (std::vector<std::string>{"See Fig. 3 for details.",
                                      "Next sentence."}));
  EXPECT_EQ(SplitSentences("Use LCS, e.g. Myers, here. Done."),
            (std::vector<std::string>{"Use LCS, e.g. Myers, here.",
                                      "Done."}));
}

TEST(SplitSentencesTest, InitialsDoNotSplit) {
  EXPECT_EQ(SplitSentences("Written by S. Chawathe at Stanford. The end."),
            (std::vector<std::string>{"Written by S. Chawathe at Stanford.",
                                      "The end."}));
}

TEST(SplitSentencesTest, DecimalsDoNotSplit) {
  EXPECT_EQ(SplitSentences("Pi is 3.14 about. Next."),
            (std::vector<std::string>{"Pi is 3.14 about.", "Next."}));
}

TEST(SplitSentencesTest, EllipsisAndMultipleTerminators) {
  EXPECT_EQ(SplitSentences("Wait... Really?! Yes."),
            (std::vector<std::string>{"Wait...", "Really?!", "Yes."}));
}

TEST(SplitSentencesTest, ClosingQuoteAndParenStayAttached) {
  EXPECT_EQ(SplitSentences("He said \"stop.\" Then left. (Truly.) End."),
            (std::vector<std::string>{"He said \"stop.\"", "Then left.",
                                      "(Truly.)", "End."}));
}

TEST(SplitSentencesTest, TerminatorAtVeryEndAbbreviationStillSplits) {
  // A final "etc." ends the paragraph; it must not be swallowed.
  auto got = SplitSentences("Lists itemize, enumerate, etc.");
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "Lists itemize, enumerate, etc.");
}

}  // namespace
}  // namespace treediff
