// The pruned-matching byte-identity discipline (ISSUE 7): the share-map
// pre-pass (ShareMode::kIndexed) and its index-free reference twin
// (ShareMode::kReference) must settle the exact same pairs and produce
// byte-identical edit scripts — kIndexed additionally skips settled
// interiors during generation, so identity here pins down the share-map
// candidate search AND the generator's interior-skipping at once. Seeded
// randomized workloads are adversarial on purpose: duplicate sentences
// (near-collision labels/values) and move-heavy edit mixes.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/compare.h"
#include "core/diff.h"
#include "core/script_io.h"
#include "core/share_map.h"
#include "gen/doc_gen.h"
#include "gen/edit_sim.h"
#include "tree/builder.h"
#include "tree/tree_index.h"

namespace treediff {
namespace {

Tree Parse(const char* sexpr, std::shared_ptr<LabelTable> labels) {
  auto tree = ParseSexpr(sexpr, labels);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(*tree);
}

StatusOr<DiffResult> DiffWith(const Tree& t1, const Tree& t2,
                              ShareMode mode) {
  DiffOptions options;
  options.share_mode = mode;
  return DiffTrees(t1, t2, options);
}

/// A move-heavy mix: half the edits relocate subtrees, which is where the
/// settled-region bookkeeping can go wrong (moved twins, re-ordered
/// siblings, settled subtrees moving as a unit).
EditMix MoveHeavyMix() {
  EditMix mix;
  mix.update_sentence = 0.25;
  mix.insert_sentence = 0.10;
  mix.delete_sentence = 0.10;
  mix.move_sentence = 0.25;
  mix.move_paragraph = 0.15;
  mix.insert_paragraph = 0.05;
  mix.delete_paragraph = 0.05;
  mix.move_section = 0.05;
  return mix;
}

TEST(PruneIdentityTest, IndexedAndReferenceAgreeAcrossSixtyFourSeeds) {
  Vocabulary vocab(300, 1.0);
  size_t seeds_with_pruning = 0;
  size_t total_lookups = 0;
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    Rng rng(seed);
    DocGenParams params;
    params.sections = 3 + static_cast<int>(seed % 3);
    // Duplicate sentences make distinct subtrees agree on label, size, leaf
    // count, and often root value — the near-collision workload the
    // verification step exists for.
    params.duplicate_sentence_probability = 0.3;
    auto labels = std::make_shared<LabelTable>();
    Tree t1 = GenerateDocument(params, vocab, &rng, labels);
    SimulatedVersion v = SimulateNewVersion(
        t1, 1 + static_cast<int>(seed % 8), MoveHeavyMix(), vocab, &rng);
    const Tree& t2 = v.new_tree;

    auto reference = DiffWith(t1, t2, ShareMode::kReference);
    auto indexed = DiffWith(t1, t2, ShareMode::kIndexed);
    ASSERT_TRUE(reference.ok())
        << "seed " << seed << ": " << reference.status().ToString();
    ASSERT_TRUE(indexed.ok())
        << "seed " << seed << ": " << indexed.status().ToString();

    // Same settled pairs, same final matching, byte-identical script.
    EXPECT_EQ(reference->report.prune_settled_subtrees,
              indexed->report.prune_settled_subtrees)
        << "seed " << seed;
    EXPECT_EQ(reference->report.prune_settled_nodes,
              indexed->report.prune_settled_nodes)
        << "seed " << seed;
    EXPECT_EQ(reference->matching.Pairs(), indexed->matching.Pairs())
        << "seed " << seed;
    const std::string ref_script =
        FormatEditScript(reference->script, t1.labels());
    const std::string idx_script =
        FormatEditScript(indexed->script, t1.labels());
    EXPECT_EQ(ref_script, idx_script) << "seed " << seed;

    // Both paths still produce a correct transformation.
    Tree replay = t1.Clone();
    const Status applied = indexed->script.ApplyTo(&replay);
    ASSERT_TRUE(applied.ok()) << "seed " << seed << ": " << applied.ToString();
    EXPECT_TRUE(Tree::Isomorphic(replay, t2)) << "seed " << seed;

    if (indexed->report.prune_settled_subtrees > 0) ++seeds_with_pruning;
    total_lookups += indexed->report.share_lookups;
  }
  // The sweep must actually exercise the pre-pass, not vacuously pass.
  EXPECT_GT(seeds_with_pruning, 32u);
  EXPECT_GT(total_lookups, 0u);
}

TEST(PruneIdentityTest, OffModeStillProducesCorrectScripts) {
  // kOff is the legacy pipeline; the pruned modes make no byte-identity
  // claim against it (FastMatch may pair interchangeable duplicates
  // differently), but all three must transform correctly and agree on the
  // script's *cost-relevant* outcome for edit-free inputs: zero operations.
  Vocabulary vocab(200, 1.0);
  Rng rng(99);
  DocGenParams params;
  params.sections = 3;
  auto labels = std::make_shared<LabelTable>();
  Tree t1 = GenerateDocument(params, vocab, &rng, labels);
  Tree t2 = RebuildFresh(t1);
  for (ShareMode mode :
       {ShareMode::kOff, ShareMode::kReference, ShareMode::kIndexed}) {
    auto result = DiffWith(t1, t2, mode);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->script.size(), 0u)
        << "mode " << static_cast<int>(mode);
  }
}

TEST(PruneIdentityTest, PrunedRunsReportTheirCounters) {
  auto labels = std::make_shared<LabelTable>();
  Tree t1 = Parse("(D (P (S \"alpha beta\") (S \"gamma\")) "
                  "(P (S \"delta\") (S \"epsilon\")))",
                  labels);
  Tree t2 = Parse("(D (P (S \"alpha beta\") (S \"gamma\")) "
                  "(P (S \"delta\") (S \"CHANGED\")))",
                  labels);
  auto off = DiffWith(t1, t2, ShareMode::kOff);
  auto indexed = DiffWith(t1, t2, ShareMode::kIndexed);
  ASSERT_TRUE(off.ok());
  ASSERT_TRUE(indexed.ok());
  // kOff never runs the pre-pass.
  EXPECT_EQ(off->report.share_lookups, 0u);
  EXPECT_EQ(off->report.prune_settled_subtrees, 0u);
  // The identical first paragraph is settled wholesale.
  EXPECT_GT(indexed->report.share_lookups, 0u);
  EXPECT_GE(indexed->report.prune_settled_subtrees, 1u);
  EXPECT_GE(indexed->report.prune_settled_nodes, 3u);
  EXPECT_FALSE(indexed->report.matching_reused);
  // And the scripts agree here too (a single updated leaf is unambiguous).
  EXPECT_EQ(FormatEditScript(off->script, t1.labels()),
            FormatEditScript(indexed->script, t1.labels()));
}

TEST(ShareMapTest, VerificationRejectsPlantedCollisions) {
  auto labels = std::make_shared<LabelTable>();
  Tree t1 = Parse("(D (P (S \"aa\")) (P (S \"bb\")))", labels);
  Tree t2 = Parse("(D (P (S \"aa\")) (P (S \"cc\")))", labels);
  TreeIndex i1(t1);
  TreeIndex i2(t2);
  ShareMap map = ShareMap::Build(i2);

  // t1's second paragraph (P (S "bb")) has no twin in t2. Plant t2's
  // (P (S "cc")) into its fingerprint bucket — a deliberate collision — and
  // verify the byte-wise comparison rejects it, which is the invariant that
  // makes fingerprint collisions harmless.
  const NodeId pb = t1.children(t1.root())[1];
  const NodeId pc = t2.children(t2.root())[1];
  const uint64_t fp = i1.SubtreeHash(pb);
  ASSERT_EQ(map.Candidates(fp), nullptr);  // No honest candidate exists.
  map.AddForTest(fp, pc);
  const std::vector<NodeId>* candidates = map.Candidates(fp);
  ASSERT_NE(candidates, nullptr);
  ASSERT_EQ(candidates->size(), 1u);
  EXPECT_FALSE(SubtreesIdentical(t1, pb, t2, (*candidates)[0]));

  // The honest candidate for the first paragraph verifies.
  const NodeId pa1 = t1.children(t1.root())[0];
  const NodeId pa2 = t2.children(t2.root())[0];
  const std::vector<NodeId>* honest = map.Candidates(i1.SubtreeHash(pa1));
  ASSERT_NE(honest, nullptr);
  EXPECT_TRUE(SubtreesIdentical(t1, pa1, t2, pa2));
}

TEST(ShareMapTest, StructuralAndLiteralHashesSplitCleanly) {
  auto labels = std::make_shared<LabelTable>();
  // Same shape and labels, different values: structural hashes agree,
  // literal (and hence combined) hashes differ.
  Tree a = Parse("(D (P (S \"one\")))", labels);
  Tree b = Parse("(D (P (S \"two\")))", labels);
  TreeIndex ia(a);
  TreeIndex ib(b);
  EXPECT_EQ(ia.StructuralHash(a.root()), ib.StructuralHash(b.root()));
  EXPECT_NE(ia.LiteralHash(a.root()), ib.LiteralHash(b.root()));
  EXPECT_NE(ia.SubtreeHash(a.root()), ib.SubtreeHash(b.root()));
  // Identical documents agree on all three.
  Tree c = Parse("(D (P (S \"one\")))", labels);
  TreeIndex ic(c);
  EXPECT_EQ(ia.StructuralHash(a.root()), ic.StructuralHash(c.root()));
  EXPECT_EQ(ia.LiteralHash(a.root()), ic.LiteralHash(c.root()));
  EXPECT_EQ(ia.SubtreeHash(a.root()), ic.SubtreeHash(c.root()));
}

TEST(ComparatorStatsTest, ReportCountsAreScopedToTheRunNotTheComparator) {
  auto labels = std::make_shared<LabelTable>();
  Tree t1 = Parse("(D (P (S \"alpha beta gamma\") (S \"delta epsilon\")))",
                  labels);
  Tree t2 = Parse("(D (P (S \"alpha beta prime\") (S \"delta zeta\")))",
                  labels);
  WordLcsComparator cmp;
  DiffOptions options;
  options.comparator = &cmp;

  auto first = DiffTrees(t1, t2, options);
  ASSERT_TRUE(first.ok());
  auto second = DiffTrees(t1, t2, options);
  ASSERT_TRUE(second.ok());

  // The comparator is shared, so its cache accumulates across runs; each
  // report must carry only its own run's traffic. Before the baseline
  // snapshot the second report double-counted the first run's hits.
  const ValueComparator::CacheStats cumulative = cmp.cache_stats();
  EXPECT_EQ(first->report.tokenize_cache_hits +
                first->report.tokenize_cache_misses +
                second->report.tokenize_cache_hits +
                second->report.tokenize_cache_misses,
            cumulative.tokenize_hits + cumulative.tokenize_misses);
  // The first run actually tokenized; the second run's pair-distance memo
  // short-circuits tokenization entirely, so its per-run traffic is small
  // (possibly zero) and in particular NOT the first run's totals — which is
  // exactly what the pre-baseline bug reported.
  EXPECT_GT(first->report.tokenize_cache_misses, 0u);
  EXPECT_EQ(second->report.tokenize_cache_misses, 0u);
}

TEST(ReuseMatchingTest, ReusedMatchingSkipsPhaseOneAndMatchesByteForByte) {
  auto labels = std::make_shared<LabelTable>();
  Tree t1 = Parse("(D (P (S \"alpha beta\") (S \"gamma\")) "
                  "(P (S \"delta\")))",
                  labels);
  Tree t2 = Parse("(D (P (S \"alpha beta\") (S \"gamma prime\")) "
                  "(P (S \"delta\") (S \"new\")))",
                  labels);
  auto fresh = DiffTrees(t1, t2, {});
  ASSERT_TRUE(fresh.ok());

  DiffOptions reuse;
  reuse.reuse_matching = &fresh->matching;
  auto replay = DiffTrees(t1, t2, reuse);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->report.matching_reused);
  EXPECT_EQ(replay->matching.Pairs(), fresh->matching.Pairs());
  EXPECT_EQ(FormatEditScript(replay->script, t1.labels()),
            FormatEditScript(fresh->script, t1.labels()));
}

}  // namespace
}  // namespace treediff
