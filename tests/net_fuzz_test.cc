// Frame-decoder fuzz tests: the decoder sits directly on untrusted network
// bytes, so it must never crash, hang, or over-allocate no matter what
// arrives — random soup, truncated frames, bit-flipped valid frames,
// hostile length fields, garbage tenant ids. Deterministic seeds keep
// failures reproducible (repo fuzz-lite idiom, cf. parser_fuzz_test.cc).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/wire.h"
#include "util/random.h"

namespace treediff {
namespace net {
namespace {

constexpr size_t kSmallMax = 4096;  // Tight cap exercises the reject path.

/// Drives the decoder over `bytes` in random-sized chunks, asserting the
/// buffered-bytes invariant after every step: the decoder may hold at most
/// one undecoded frame (cap + prefix) plus the bytes of the current append
/// burst — a hostile length field must not translate into allocation.
void DrainAll(FrameDecoder* decoder, const std::string& bytes, Rng* rng,
              size_t max_frame) {
  size_t offset = 0;
  while (offset < bytes.size()) {
    const size_t chunk =
        std::min<size_t>(1 + rng->Uniform(512), bytes.size() - offset);
    decoder->Append(bytes.data() + offset, chunk);
    offset += chunk;
    for (int spins = 0; spins < 10000; ++spins) {
      WireRequest request;
      Status error = Status::Ok();
      const DecodeResult r = decoder->NextRequest(&request, &error);
      if (r == DecodeResult::kNeedMore || r == DecodeResult::kError) break;
    }
    ASSERT_LE(decoder->buffered_bytes(),
              kLenPrefixBytes + max_frame + chunk + 512);
  }
}

TEST(NetFuzzTest, RandomByteSoupNeverCrashes) {
  Rng rng(2026);
  for (int iter = 0; iter < 50; ++iter) {
    FrameDecoder decoder(kSmallMax);
    std::string soup;
    const size_t len = 256 + rng.Uniform(8192);
    soup.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      soup.push_back(static_cast<char>(rng.Uniform(256)));
    }
    DrainAll(&decoder, soup, &rng, kSmallMax);
  }
}

TEST(NetFuzzTest, TruncatedValidFramesNeverCrash) {
  Rng rng(7);
  WireRequest request;
  request.opcode = Opcode::kDiff;
  request.tenant = "tenant";
  request.old_doc = std::string(300, 'x');
  request.new_doc = std::string(300, 'y');
  const std::string full = EncodeRequest(request);
  for (size_t cut = 0; cut < full.size(); cut += 7) {
    FrameDecoder decoder;
    const std::string prefix = full.substr(0, cut);
    decoder.Append(prefix.data(), prefix.size());
    WireRequest out;
    Status error = Status::Ok();
    EXPECT_EQ(decoder.NextRequest(&out, &error), DecodeResult::kNeedMore);
    // Completing the frame later must still decode it.
    const std::string rest = full.substr(cut);
    decoder.Append(rest.data(), rest.size());
    EXPECT_EQ(decoder.NextRequest(&out, &error), DecodeResult::kFrame);
    EXPECT_EQ(out.old_doc, request.old_doc);
    (void)rng;
  }
}

TEST(NetFuzzTest, BitFlippedValidFramesNeverCrashOrDesync) {
  Rng rng(31337);
  WireRequest request;
  request.opcode = Opcode::kVdiff;
  request.tenant = "fuzz";
  request.doc_id = "some-document-id";
  request.from_version = 1;
  request.to_version = 2;
  const std::string clean = EncodeRequest(request);

  for (int iter = 0; iter < 400; ++iter) {
    std::string bytes = clean;
    // Flip 1–4 random bits in the PAYLOAD. (Length-prefix corruption is a
    // different contract — it desyncs the stream by design and is covered
    // by HostileLengthsNeverAllocate; with the outer length intact, a bad
    // frame must be consumed exactly and the stream must stay in sync.)
    const int flips = 1 + static_cast<int>(rng.Uniform(4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos =
          kLenPrefixBytes + rng.Uniform(bytes.size() - kLenPrefixBytes);
      bytes[pos] = static_cast<char>(
          static_cast<unsigned char>(bytes[pos]) ^ (1u << rng.Uniform(8)));
    }
    FrameDecoder decoder(kSmallMax);
    decoder.Append(bytes.data(), bytes.size());
    WireRequest out;
    Status error = Status::Ok();
    const DecodeResult r = decoder.NextRequest(&out, &error);
    ASSERT_LE(decoder.buffered_bytes(), bytes.size());
    if (r == DecodeResult::kBadFrame) {
      // Consumed per-frame: a healthy frame appended after must decode.
      decoder.Append(clean.data(), clean.size());
      EXPECT_EQ(decoder.NextRequest(&out, &error), DecodeResult::kFrame);
    }
  }
}

TEST(NetFuzzTest, HostileLengthsNeverAllocate) {
  Rng rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    FrameDecoder decoder(kSmallMax);
    // A length field chosen to be maximally annoying.
    const uint32_t len = static_cast<uint32_t>(rng.Next());
    char prefix[4];
    for (int i = 0; i < 4; ++i) {
      prefix[i] = static_cast<char>((len >> (8 * i)) & 0xFF);
    }
    decoder.Append(prefix, sizeof prefix);
    WireRequest out;
    Status error = Status::Ok();
    const DecodeResult r = decoder.NextRequest(&out, &error);
    if (len == 0 || len > kSmallMax) {
      EXPECT_EQ(r, DecodeResult::kError);
      // The guarantee under attack: nothing was buffered for the bogus
      // frame, no matter how large the declared length.
      EXPECT_EQ(decoder.buffered_bytes(), 0u);
    } else {
      EXPECT_EQ(r, DecodeResult::kNeedMore);
    }
  }
}

TEST(NetFuzzTest, GarbageTenantIdsAreContained) {
  Rng rng(555);
  for (int iter = 0; iter < 200; ++iter) {
    // Hand-build a frame with a random tenant_len byte and random tenant
    // bytes; lengths made self-consistent so only the tenant rule decides.
    const uint8_t tenant_len = static_cast<uint8_t>(rng.Uniform(256));
    std::string payload;
    payload.push_back(static_cast<char>(Opcode::kPing));
    payload.push_back(0);  // format
    payload.push_back(0);  // flags
    payload.push_back(static_cast<char>(tenant_len));
    payload.append(12, '\0');  // request_id + deadline_ms
    for (unsigned i = 0; i < tenant_len; ++i) {
      payload.push_back(static_cast<char>(rng.Uniform(256)));
    }
    std::string frame;
    const uint32_t len = static_cast<uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i) {
      frame.push_back(static_cast<char>((len >> (8 * i)) & 0xFF));
    }
    frame += payload;

    FrameDecoder decoder(kSmallMax);
    decoder.Append(frame.data(), frame.size());
    WireRequest out;
    Status error = Status::Ok();
    const DecodeResult r = decoder.NextRequest(&out, &error);
    if (tenant_len <= kMaxTenantLen) {
      EXPECT_EQ(r, DecodeResult::kFrame);
      EXPECT_EQ(out.tenant.size(), tenant_len);
    } else {
      EXPECT_EQ(r, DecodeResult::kBadFrame);
    }
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
}

TEST(NetFuzzTest, InterleavedGoodAndEvilFramesKeepSync) {
  Rng rng(4242);
  WireRequest good;
  good.opcode = Opcode::kDiff;
  good.tenant = "t";
  good.old_doc = "(D (P (S \"a\")))";
  good.new_doc = "(D (P (S \"b\")))";
  const std::string clean = EncodeRequest(good);

  for (int iter = 0; iter < 50; ++iter) {
    FrameDecoder decoder(kSmallMax);
    std::string stream;
    int expected_good = 0;
    for (int f = 0; f < 20; ++f) {
      if (rng.Uniform(2) == 0) {
        stream += clean;
        ++expected_good;
      } else {
        // An evil-but-in-sync frame: valid outer length, corrupt body.
        std::string evil = clean;
        evil[kLenPrefixBytes] = static_cast<char>(200 + rng.Uniform(56));
        stream += evil;
      }
    }
    int decoded_good = 0;
    decoder.Append(stream.data(), stream.size());
    for (;;) {
      WireRequest out;
      Status error = Status::Ok();
      const DecodeResult r = decoder.NextRequest(&out, &error);
      if (r == DecodeResult::kNeedMore) break;
      ASSERT_NE(r, DecodeResult::kError);
      if (r == DecodeResult::kFrame) ++decoded_good;
    }
    // Per-frame containment: every good frame survived its evil neighbors.
    EXPECT_EQ(decoded_good, expected_good);
  }
}

}  // namespace
}  // namespace net
}  // namespace treediff
