#include "core/cost_model.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/diff.h"
#include "core/edit_script_gen.h"
#include "tree/builder.h"

namespace treediff {
namespace {

struct Fixture {
  std::shared_ptr<LabelTable> labels = std::make_shared<LabelTable>();

  Tree Parse(const std::string& s) { return *ParseSexpr(s, labels); }

  Matching MatchByValue(const Tree& t1, const Tree& t2) {
    Matching m(t1.id_bound(), t2.id_bound());
    for (NodeId x : t1.PreOrder()) {
      for (NodeId y : t2.PreOrder()) {
        if (!m.HasT2(y) && t1.label(x) == t2.label(y) &&
            t1.value(x) == t2.value(y)) {
          m.Add(x, y);
          break;
        }
      }
    }
    return m;
  }
};

TEST(CostModelTest, UnitModelMatchesDefault) {
  Fixture f;
  Tree t1 = f.Parse("(D (S \"a\") (S \"b\"))");
  Tree t2 = f.Parse("(D (S \"a\") (S \"c\"))");
  Matching m = f.MatchByValue(t1, t2);
  UnitCostModel unit;
  auto with = GenerateEditScript(t1, t2, m, nullptr, true, &unit);
  auto without = GenerateEditScript(t1, t2, m, nullptr, true, nullptr);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_DOUBLE_EQ(with->script.TotalCost(), without->script.TotalCost());
}

TEST(CostModelTest, PerLabelCostsApplied) {
  Fixture f;
  // "b" (label S) deleted, "c" inserted, "m" subtree (label P) moved.
  Tree t1 = f.Parse(
      "(D (P (S \"m\")) (S \"anchor1\") (S \"anchor2\") (S \"b\"))");
  Tree t2 = f.Parse(
      "(D (S \"anchor1\") (S \"anchor2\") (S \"c\") (P (S \"m\")))");
  Matching m = f.MatchByValue(t1, t2);

  PerLabelCostModel model;
  model.SetCosts(f.labels->Intern("S"), {.insert = 3.0, .remove = 5.0,
                                         .move = 1.0});
  model.SetCosts(f.labels->Intern("P"), {.insert = 1.0, .remove = 1.0,
                                         .move = 7.0});
  auto result = GenerateEditScript(t1, t2, m, nullptr, true, &model);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->script.num_inserts(), 1u);
  ASSERT_EQ(result->script.num_deletes(), 1u);
  // With the paragraph's move priced at 7, the weighted alignment keeps the
  // paragraph put and moves the two cheap sentences instead.
  ASSERT_EQ(result->script.num_moves(), 2u);
  double ins = 0, del = 0, mov_total = 0;
  for (const EditOp& op : result->script.ops()) {
    switch (op.kind) {
      case EditOpKind::kInsert:
        ins = op.cost;
        break;
      case EditOpKind::kDelete:
        del = op.cost;
        break;
      case EditOpKind::kMove:
        mov_total += op.cost;
        EXPECT_DOUBLE_EQ(op.cost, 1.0);  // Sentence moves.
        break;
      default:
        break;
    }
  }
  EXPECT_DOUBLE_EQ(ins, 3.0);       // Inserted sentence.
  EXPECT_DOUBLE_EQ(del, 5.0);       // Deleted sentence.
  EXPECT_DOUBLE_EQ(mov_total, 2.0);  // Two sentence moves beat one 7.0 move.
  EXPECT_DOUBLE_EQ(result->script.TotalCost(), 10.0);
  EXPECT_TRUE(Tree::Isomorphic(result->transformed, t2));
}

TEST(CostModelTest, UnlistedLabelsUseDefault) {
  Fixture f;
  Tree t1 = f.Parse("(D (Q \"x\"))");
  Tree t2 = f.Parse("(D)");
  Matching m = f.MatchByValue(t1, t2);
  PerLabelCostModel model({.insert = 1.0, .remove = 2.5, .move = 1.0});
  auto result = GenerateEditScript(t1, t2, m, nullptr, true, &model);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->script.size(), 1u);
  EXPECT_DOUBLE_EQ(result->script.ops()[0].cost, 2.5);
}

TEST(CostModelTest, DiffOptionsPlumbing) {
  Fixture f;
  Tree t1 = f.Parse("(D (S \"keep me here\") (S \"doomed words gone\"))");
  Tree t2 = f.Parse("(D (S \"keep me here\"))");
  PerLabelCostModel model({.insert = 1.0, .remove = 10.0, .move = 1.0});
  DiffOptions options;
  options.cost_model = &model;
  auto diff = DiffTrees(t1, t2, options);
  ASSERT_TRUE(diff.ok());
  EXPECT_DOUBLE_EQ(diff->stats.script_cost, 10.0);
}

TEST(CostModelTest, OperationsUnchangedOnlyPricesDiffer) {
  Fixture f;
  Tree t1 = f.Parse("(D (S \"a\") (S \"b\") (S \"c\"))");
  Tree t2 = f.Parse("(D (S \"c\") (S \"a\") (S \"b\"))");
  Matching m = f.MatchByValue(t1, t2);
  PerLabelCostModel pricey({.insert = 9.0, .remove = 9.0, .move = 9.0});
  auto cheap = GenerateEditScript(t1, t2, f.MatchByValue(t1, t2));
  auto costly = GenerateEditScript(t1, t2, m, nullptr, true, &pricey);
  ASSERT_TRUE(cheap.ok());
  ASSERT_TRUE(costly.ok());
  EXPECT_EQ(cheap->script.size(), costly->script.size());
  EXPECT_DOUBLE_EQ(costly->script.TotalCost(),
                   cheap->script.TotalCost() * 9.0);
}

TEST(CostModelTest, WeightedAlignmentKeepsHeavyChildPut) {
  // [H a b c] -> [a b c H]: the count-minimal alignment moves H once; with
  // H's move priced at 100, the cost-minimal alignment keeps H put and
  // moves a, b, c instead (heaviest-common-subsequence AlignChildren).
  Fixture f;
  Tree t1 = f.Parse("(D (H \"h\") (S \"a\") (S \"b\") (S \"c\"))");
  Tree t2 = f.Parse("(D (S \"a\") (S \"b\") (S \"c\") (H \"h\"))");
  Matching m = f.MatchByValue(t1, t2);

  auto unit = GenerateEditScript(t1, t2, m);
  ASSERT_TRUE(unit.ok());
  EXPECT_EQ(unit->intra_parent_moves, 1u);  // Lemma C.1 count minimum.

  PerLabelCostModel model;
  model.SetCosts(f.labels->Intern("H"),
                 {.insert = 1.0, .remove = 1.0, .move = 100.0});
  auto weighted = GenerateEditScript(t1, t2, m, nullptr, true, &model);
  ASSERT_TRUE(weighted.ok());
  EXPECT_EQ(weighted->intra_parent_moves, 3u);  // a, b, c move; H stays.
  EXPECT_DOUBLE_EQ(weighted->script.TotalCost(), 3.0);
  EXPECT_TRUE(Tree::Isomorphic(weighted->transformed, t2));
}

TEST(CostModelTest, WeightedAlignmentMatchesUnitWhenCostsUniform) {
  Fixture f;
  Tree t1 = f.Parse("(D (S \"1\") (S \"2\") (S \"3\") (S \"4\") (S \"5\"))");
  Tree t2 = f.Parse("(D (S \"4\") (S \"1\") (S \"5\") (S \"2\") (S \"3\"))");
  Matching m = f.MatchByValue(t1, t2);
  UnitCostModel unit_model;
  auto weighted = GenerateEditScript(t1, t2, m, nullptr, true, &unit_model);
  auto plain = GenerateEditScript(t1, t2, m);
  ASSERT_TRUE(weighted.ok());
  ASSERT_TRUE(plain.ok());
  // With uniform weights the heaviest subsequence is a longest one: same
  // move count (the specific kept set may differ among ties).
  EXPECT_EQ(weighted->intra_parent_moves, plain->intra_parent_moves);
  EXPECT_TRUE(Tree::Isomorphic(weighted->transformed, t2));
}

}  // namespace
}  // namespace treediff
