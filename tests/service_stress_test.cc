// Concurrency stress for the DiffService, meant to run under
// ThreadSanitizer (the service-tsan CI job): 8 worker threads and 8 client
// threads push >1000 mixed requests — repeated documents (cache hits),
// unique documents (cache misses + concurrent inserts), and stored-version
// diffs — and every response's edit script must be byte-identical to the
// one a single-threaded service produces for the same request.
//
// Determinism caveat encoded here: label ids are assigned in interning
// order, and the matcher's output depends on them, so both services get the
// same label vocabulary pre-interned in the same order before any parsing.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/diff_service.h"

namespace treediff {
namespace {

constexpr int kWorkers = 8;
constexpr int kClients = 8;
constexpr int kRequestsPerClient = 140;  // 8 * 140 = 1120 requests.
constexpr int kUniquePairs = 40;
constexpr int kStoreVersions = 5;

void PreInternLabels(LabelTable& table) {
  table.Intern("D");
  table.Intern("P");
  table.Intern("S");
}

std::string OldDoc(int i) {
  return "(D (P (S \"alpha " + std::to_string(i) +
         " one two three\") (S \"beta common tail\")) "
         "(P (S \"gamma shared base\") (S \"delta " +
         std::to_string(i * 7) + " body\")))";
}

std::string NewDoc(int i) {
  // Update + insert + (for odd i) a move of the second paragraph's head.
  std::string doc = "(D (P (S \"alpha " + std::to_string(i) +
                    " one two CHANGED\") (S \"beta common tail\")";
  if (i % 2 == 1) doc += " (S \"gamma shared base\")";
  doc += ") (P ";
  if (i % 2 == 0) doc += "(S \"gamma shared base\") ";
  doc += "(S \"delta " + std::to_string(i * 7) +
         " body\") (S \"epsilon inserted " + std::to_string(i) + "\")))";
  return doc;
}

std::string VersionDoc(int v) {
  std::string doc = "(D";
  for (int p = 0; p <= v; ++p) {
    doc += " (P (S \"version paragraph " + std::to_string(p) + " text\"))";
  }
  doc += ")";
  return doc;
}

struct RequestSpec {
  bool stored = false;
  int pair = 0;  // Inline: index into the doc pairs.
  int from = 0;  // Stored: version numbers.
  int to = 0;
};

RequestSpec SpecFor(int client, int round) {
  // Deterministic mix: ~1/7 stored-version requests, the rest inline over
  // kUniquePairs documents (so each pair recurs ~25x -> heavy cache reuse,
  // but the first touches race their inserts).
  const int seq = client * kRequestsPerClient + round;
  RequestSpec spec;
  if (seq % 7 == 3) {
    spec.stored = true;
    spec.from = seq % kStoreVersions;
    spec.to = (seq / 2 + 1) % kStoreVersions;
  } else {
    spec.pair = (seq * 13 + client) % kUniquePairs;
  }
  return spec;
}

DiffRequest MakeRequest(const RequestSpec& spec) {
  DiffRequest request;
  if (spec.stored) {
    request.doc_id = "versioned";
    request.from_version = spec.from;
    request.to_version = spec.to;
  } else {
    request.old_doc = OldDoc(spec.pair);
    request.new_doc = NewDoc(spec.pair);
  }
  return request;
}

void SetUpStore(DiffService& service) {
  ASSERT_TRUE(service.CreateStore("versioned", VersionDoc(0)).ok());
  for (int v = 1; v < kStoreVersions; ++v) {
    ASSERT_TRUE(service.CommitVersion("versioned", VersionDoc(v)).ok());
  }
}

TEST(ServiceStressTest, ConcurrentScriptsMatchSingleThreadedByteForByte) {
  // Reference: a single-threaded service answers every distinct request.
  DiffServiceOptions reference_options;
  reference_options.num_threads = 1;
  reference_options.queue_capacity = 4096;
  DiffService reference(reference_options);
  PreInternLabels(*reference.label_table());
  SetUpStore(reference);

  std::map<std::pair<int, int>, std::string> expected_inline;
  std::map<std::pair<int, int>, std::string> expected_stored;
  for (int i = 0; i < kUniquePairs; ++i) {
    DiffResponse r = reference.SubmitSync(MakeRequest({false, i, 0, 0}));
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    expected_inline[{i, 0}] = r.script;
  }
  for (int from = 0; from < kStoreVersions; ++from) {
    for (int to = 0; to < kStoreVersions; ++to) {
      DiffResponse r = reference.SubmitSync(MakeRequest({true, 0, from, to}));
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      expected_stored[{from, to}] = r.script;
    }
  }

  // System under test: 8 workers, 8 client threads, no budgets (a budget
  // would make degradation timing-dependent and the comparison meaningless).
  DiffServiceOptions options;
  options.num_threads = kWorkers;
  options.queue_capacity = 4096;
  options.degrade_queue_fraction = 2.0;  // Keep every request on kFastMatch.
  DiffService service(options);
  PreInternLabels(*service.label_table());
  SetUpStore(service);

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::atomic<int> completed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      // Half the clients go through futures in batches (tests pipelining),
      // half synchronously.
      if (c % 2 == 0) {
        for (int round = 0; round < kRequestsPerClient; ++round) {
          const RequestSpec spec = SpecFor(c, round);
          DiffResponse r = service.SubmitSync(MakeRequest(spec));
          if (!r.status.ok()) {
            failures.fetch_add(1);
            continue;
          }
          const std::string& want =
              spec.stored ? expected_stored[{spec.from, spec.to}]
                          : expected_inline[{spec.pair, 0}];
          if (r.script != want) mismatches.fetch_add(1);
          completed.fetch_add(1);
        }
      } else {
        std::vector<std::pair<RequestSpec, std::future<DiffResponse>>> batch;
        for (int round = 0; round < kRequestsPerClient; ++round) {
          const RequestSpec spec = SpecFor(c, round);
          batch.emplace_back(spec, service.Submit(MakeRequest(spec)));
          if (batch.size() == 16 || round == kRequestsPerClient - 1) {
            for (auto& [s, f] : batch) {
              DiffResponse r = f.get();
              if (!r.status.ok()) {
                failures.fetch_add(1);
                continue;
              }
              const std::string& want =
                  s.stored ? expected_stored[{s.from, s.to}]
                           : expected_inline[{s.pair, 0}];
              if (r.script != want) mismatches.fetch_add(1);
              completed.fetch_add(1);
            }
            batch.clear();
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(completed.load(), kClients * kRequestsPerClient);
  EXPECT_GE(completed.load(), 1000);

  // The cache must have been genuinely exercised from both sides.
  const TreeCache::Stats stats = service.cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_EQ(service.metrics().counter("diff_responses_error_total")->Value(),
            0u);
}

TEST(ServiceStressTest, DegradationUnderPressureStaysCorrect) {
  // Aggressive shedding config: tiny queue, instant degradation. Nothing
  // here checks script bytes (degraded rungs differ by design) — this is a
  // TSan target for the admission-control paths, and every future must
  // still complete with either a script or a clean shed status.
  DiffServiceOptions options;
  options.num_threads = 4;
  options.queue_capacity = 8;
  options.degrade_queue_fraction = 0.25;
  DiffService service(options);
  PreInternLabels(*service.label_table());

  std::atomic<int> served{0};
  std::atomic<int> shed{0};
  std::atomic<int> degraded{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < 50; ++round) {
        const int i = (c * 50 + round) % kUniquePairs;
        DiffRequest request;
        request.old_doc = OldDoc(i);
        request.new_doc = NewDoc(i);
        DiffResponse r = service.SubmitSync(std::move(request));
        if (r.status.ok()) {
          served.fetch_add(1);
          if (r.shed_degraded) degraded.fetch_add(1);
        } else if (r.status.code() == Code::kResourceExhausted) {
          shed.fetch_add(1);
        } else {
          ADD_FAILURE() << r.status.ToString();
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(served.load() + shed.load(), 8 * 50);
  EXPECT_GT(served.load(), 0);
}

}  // namespace
}  // namespace treediff
