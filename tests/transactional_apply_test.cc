#include "core/edit_script.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/diff.h"
#include "tree/builder.h"

namespace treediff {
namespace {

struct Fixture {
  std::shared_ptr<LabelTable> labels = std::make_shared<LabelTable>();

  Tree Parse(const std::string& s) { return *ParseSexpr(s, labels); }

  LabelId Label(const std::string& name) { return labels->Intern(name); }
};

// A script whose tail references a nonexistent parent: the ops before it
// succeed, then the failure must roll everything back.
TEST(TransactionalApplyTest, MidScriptFailureRestoresTreeExactly) {
  Fixture f;
  Tree tree = f.Parse("(D (P (S \"one\") (S \"two\")) (P (S \"three\")))");
  const std::string before = tree.ToDebugString();
  const size_t before_bound = tree.id_bound();

  EditScript script;
  // Two valid ops (the fresh insert will be allocated id 6 = id_bound)...
  script.Append(EditOp::Update(2, "rewritten", 1.0));
  script.Append(EditOp::Insert(6, f.Label("S"), "fresh", 1, 3));
  // ...then one referencing a parent id far out of range.
  script.Append(EditOp::Insert(7, f.Label("S"), "doomed", 9999, 1));

  Status st = script.ApplyTo(&tree);
  ASSERT_FALSE(st.ok());
  // The failing op index and rollback are named in the message.
  EXPECT_NE(st.message().find("op 2"), std::string::npos);
  EXPECT_NE(st.message().find("rolled back"), std::string::npos);
  // Byte-identical pre-apply state, including the id space.
  EXPECT_EQ(tree.ToDebugString(), before);
  EXPECT_EQ(tree.id_bound(), before_bound);
}

TEST(TransactionalApplyTest, FailedUpdateRollsBackEarlierOps) {
  Fixture f;
  Tree tree = f.Parse("(D (P (S \"alpha\") (S \"beta\")))");
  const std::string before = tree.ToDebugString();

  EditScript script;
  script.Append(EditOp::Update(2, "changed alpha", 1.0));
  script.Append(EditOp::Delete(3));
  script.Append(EditOp::Update(3, "dead node", 1.0));  // 3 was just deleted.

  Status st = script.ApplyTo(&tree);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(tree.ToDebugString(), before);
}

TEST(TransactionalApplyTest, FailedMoveRollsBackEarlierOps) {
  Fixture f;
  Tree tree = f.Parse("(D (P (S \"a\")) (P (S \"b\")))");
  const std::string before = tree.ToDebugString();

  EditScript script;
  script.Append(EditOp::Move(4, 1, 1));  // Valid: move (S b) under the
                                         // first paragraph.
  script.Append(EditOp::Move(0, 1, 1));  // Invalid: the root cannot move.
  Status st = script.ApplyTo(&tree);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(tree.ToDebugString(), before);
}

TEST(TransactionalApplyTest, RootDeleteFailureRollsBack) {
  Fixture f;
  // Deleting leaves until the tree is empty, then one bad op: the rollback
  // has to revive a deleted root (parent == kInvalidNode inverse).
  Tree tree = f.Parse("(D)");
  const std::string before = tree.ToDebugString();

  EditScript script;
  script.Append(EditOp::Delete(0));                        // Deletes the root.
  script.Append(EditOp::Update(0, "poke the dead", 1.0));  // Fails.

  Status st = script.ApplyTo(&tree);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(tree.ToDebugString(), before);
  EXPECT_EQ(tree.root(), NodeId{0});
}

TEST(TransactionalApplyTest, BudgetExhaustionMidApplyRollsBack) {
  Fixture f;
  Tree tree = f.Parse("(D (P (S \"one\") (S \"two\") (S \"three\")))");
  const std::string before = tree.ToDebugString();

  EditScript script;
  script.Append(EditOp::Update(2, "x", 1.0));
  script.Append(EditOp::Update(3, "y", 1.0));
  script.Append(EditOp::Update(4, "z", 1.0));

  Budget budget;
  budget.set_node_cap(2);  // Third op exceeds the cap.
  Status st = script.ApplyTo(&tree, &budget);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(IsExhaustion(st.code()));
  EXPECT_EQ(tree.ToDebugString(), before);
}

TEST(TransactionalApplyTest, SuccessfulApplyIsUnchangedByUndoMachinery) {
  Fixture f;
  Tree t1 = f.Parse(
      "(D (P (S \"the quick brown fox\") (S \"jumped over dogs\")) "
      "(P (S \"stable line\")))");
  Tree t2 = f.Parse(
      "(D (P (S \"the quick brown wolf\")) "
      "(P (S \"stable line\") (S \"new material here\")))");
  auto result = DiffTrees(t1, t2);
  ASSERT_TRUE(result.ok());
  Tree replay = t1.Clone();
  ASSERT_TRUE(result->script.ApplyTo(&replay).ok());
  EXPECT_TRUE(Tree::Isomorphic(replay, t2));
}

TEST(TransactionalApplyTest, InsertRollbackPopsMintedIds) {
  Fixture f;
  Tree tree = f.Parse("(D (P (S \"one\")))");
  const size_t before_bound = tree.id_bound();

  EditScript script;
  script.Append(EditOp::Insert(3, f.Label("S"), "a", 1, 2));
  script.Append(EditOp::Insert(4, f.Label("S"), "b", 1, 3));
  script.Append(EditOp::Move(0, 2, 1));  // The root cannot move: fails.

  Status st = script.ApplyTo(&tree);
  ASSERT_FALSE(st.ok());
  // The two minted leaf ids are popped again, not left as dead slots.
  EXPECT_EQ(tree.id_bound(), before_bound);
}

TEST(TransactionalApplyTest, FailureStatusNamesTheOp) {
  Fixture f;
  Tree tree = f.Parse("(D (P (S \"one\")))");
  EditScript script;
  script.Append(EditOp::Delete(1));  // P still has a child: not a leaf.
  Status st = script.ApplyTo(&tree);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("op 0"), std::string::npos);
  EXPECT_NE(st.message().find("DEL"), std::string::npos);
}

}  // namespace
}  // namespace treediff
