#include "core/matching.h"

#include <gtest/gtest.h>

namespace treediff {
namespace {

TEST(MatchingTest, EmptyMatching) {
  Matching m(5, 5);
  EXPECT_EQ(m.size(), 0u);
  EXPECT_FALSE(m.HasT1(0));
  EXPECT_FALSE(m.HasT2(4));
  EXPECT_EQ(m.PartnerOfT1(3), kInvalidNode);
  EXPECT_EQ(m.PartnerOfT2(3), kInvalidNode);
}

TEST(MatchingTest, AddAndLookupBothDirections) {
  Matching m(4, 4);
  m.Add(1, 2);
  m.Add(0, 3);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.PartnerOfT1(1), 2);
  EXPECT_EQ(m.PartnerOfT2(2), 1);
  EXPECT_EQ(m.PartnerOfT1(0), 3);
  EXPECT_EQ(m.PartnerOfT2(3), 0);
  EXPECT_TRUE(m.Contains(1, 2));
  EXPECT_FALSE(m.Contains(1, 3));
  EXPECT_FALSE(m.Contains(2, 2));
}

TEST(MatchingTest, RemoveRestoresUnmatchedState) {
  Matching m(3, 3);
  m.Add(1, 1);
  m.Remove(1, 1);
  EXPECT_EQ(m.size(), 0u);
  EXPECT_FALSE(m.HasT1(1));
  EXPECT_FALSE(m.HasT2(1));
  m.Add(1, 2);  // Re-adding after removal is legal.
  EXPECT_TRUE(m.Contains(1, 2));
}

TEST(MatchingTest, OutOfRangeLookupsAreInvalidNotFatal) {
  Matching m(2, 2);
  EXPECT_EQ(m.PartnerOfT1(-1), kInvalidNode);
  EXPECT_EQ(m.PartnerOfT1(99), kInvalidNode);
  EXPECT_EQ(m.PartnerOfT2(99), kInvalidNode);
}

TEST(MatchingTest, EnsureT1BoundGrows) {
  Matching m(2, 8);
  m.EnsureT1Bound(6);
  m.Add(5, 7);
  EXPECT_EQ(m.PartnerOfT1(5), 7);
  m.EnsureT1Bound(3);  // Shrinking requests are ignored.
  EXPECT_EQ(m.PartnerOfT1(5), 7);
}

TEST(MatchingTest, PairsAscendingByT1) {
  Matching m(6, 6);
  m.Add(4, 0);
  m.Add(1, 5);
  m.Add(2, 2);
  auto pairs = m.Pairs();
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], (std::pair<NodeId, NodeId>{1, 5}));
  EXPECT_EQ(pairs[1], (std::pair<NodeId, NodeId>{2, 2}));
  EXPECT_EQ(pairs[2], (std::pair<NodeId, NodeId>{4, 0}));
}

}  // namespace
}  // namespace treediff
