// The TreeIndex invariant the pipeline leans on: after ANY sequence of Tree
// mutations — including a transactional ApplyTo that rolls back halfway — an
// attached, incrementally patched index is indistinguishable from an index
// built from scratch over the final tree.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "core/diff.h"
#include "core/edit_script.h"
#include "tree/builder.h"
#include "tree/tree.h"
#include "tree/tree_index.h"

namespace treediff {
namespace {

Tree Parse(const char* sexpr, std::shared_ptr<LabelTable> labels) {
  auto tree = ParseSexpr(sexpr, labels);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(*tree);
}

/// Asserts that `patched` (attached to `t`, mutated along with it) agrees
/// with a freshly built index on every tier and every node slot.
void ExpectMatchesFreshRebuild(const Tree& t, const TreeIndex& patched) {
  TreeIndex fresh(t);
  EXPECT_EQ(patched.PreOrder(), fresh.PreOrder());
  EXPECT_EQ(patched.PostOrder(), fresh.PostOrder());
  EXPECT_EQ(patched.BfsOrder(), fresh.BfsOrder());
  EXPECT_EQ(patched.Leaves(), fresh.Leaves());
  EXPECT_EQ(patched.LeafChains(), fresh.LeafChains());
  EXPECT_EQ(patched.InternalChains(), fresh.InternalChains());
  for (NodeId x = 0; x < static_cast<NodeId>(t.id_bound()); ++x) {
    EXPECT_EQ(patched.Depth(x), fresh.Depth(x)) << "depth of " << x;
    EXPECT_EQ(patched.SubtreeSize(x), fresh.SubtreeSize(x)) << "size of " << x;
    EXPECT_EQ(patched.LeafCount(x), fresh.LeafCount(x)) << "leaves of " << x;
    EXPECT_EQ(patched.ChildIndex(x), fresh.ChildIndex(x)) << "pos of " << x;
    EXPECT_EQ(patched.ValueHash(x), fresh.ValueHash(x)) << "vhash of " << x;
    EXPECT_EQ(patched.SubtreeHash(x), fresh.SubtreeHash(x)) << "fp of " << x;
    if (t.Alive(x)) {
      EXPECT_EQ(patched.PostOrderPos(x), fresh.PostOrderPos(x)) << x;
    }
  }
  for (NodeId a : t.PreOrder()) {
    for (NodeId b : t.PreOrder()) {
      EXPECT_EQ(patched.Contains(a, b), fresh.Contains(a, b))
          << a << " vs " << b;
    }
  }
}

class IndexConsistencyTest : public ::testing::Test {
 protected:
  IndexConsistencyTest()
      : labels_(std::make_shared<LabelTable>()),
        t_(Parse("(D (P (S \"one two\") (S \"three\")) "
                 "(P (S \"four\") (F (S \"five six\") (S \"seven\"))) "
                 "(P (S \"eight\")))",
                 labels_)) {}

  std::shared_ptr<LabelTable> labels_;
  Tree t_;
};

TEST_F(IndexConsistencyTest, InsertLeaf) {
  TreeIndex index(t_);
  NodeId p = t_.children(t_.root())[1];
  ASSERT_TRUE(t_.InsertLeaf(t_.InternLabel("S"), "new leaf", p, 2).ok());
  ExpectMatchesFreshRebuild(t_, index);
  // Insert under a node that was a leaf (its leaf count flips 1 -> 1 via
  // child, exercising the path-up repair).
  NodeId leaf = t_.children(t_.children(t_.root())[0])[0];
  ASSERT_TRUE(t_.InsertLeaf(t_.InternLabel("S"), "nested", leaf, 1).ok());
  ExpectMatchesFreshRebuild(t_, index);
}

TEST_F(IndexConsistencyTest, DeleteAndReviveLeaf) {
  TreeIndex index(t_);
  NodeId p0 = t_.children(t_.root())[0];
  NodeId victim = t_.children(p0)[1];
  ASSERT_TRUE(t_.DeleteLeaf(victim).ok());
  ExpectMatchesFreshRebuild(t_, index);
  ASSERT_TRUE(t_.ReviveLeaf(victim, p0, 1).ok());
  ExpectMatchesFreshRebuild(t_, index);
}

TEST_F(IndexConsistencyTest, UpdateValueRefreshesHashesOnly) {
  TreeIndex index(t_);
  NodeId leaf = t_.children(t_.children(t_.root())[2])[0];
  ASSERT_TRUE(t_.UpdateValue(leaf, "eight revised").ok());
  EXPECT_EQ(index.ValueHash(leaf), HashValueBytes("eight revised"));
  ExpectMatchesFreshRebuild(t_, index);
}

TEST_F(IndexConsistencyTest, MoveSubtreeAcrossParents) {
  TreeIndex index(t_);
  NodeId from = t_.children(t_.root())[1];
  NodeId sub = t_.children(from)[1];  // The (F ...) subtree.
  NodeId to = t_.children(t_.root())[2];
  ASSERT_TRUE(t_.MoveSubtree(sub, to, 1).ok());
  ExpectMatchesFreshRebuild(t_, index);
}

TEST_F(IndexConsistencyTest, MoveSubtreeWithinParentReorders) {
  TreeIndex index(t_);
  NodeId p = t_.children(t_.root())[1];
  NodeId first = t_.children(p)[0];
  ASSERT_TRUE(t_.MoveSubtree(first, p, 2).ok());
  ExpectMatchesFreshRebuild(t_, index);
}

TEST_F(IndexConsistencyTest, MoveDeepensAndShallowsDepths) {
  TreeIndex index(t_);
  NodeId shallow = t_.children(t_.root())[2];            // depth 1
  NodeId deep_parent = t_.children(t_.children(t_.root())[1])[1];  // (F ...)
  ASSERT_TRUE(t_.MoveSubtree(shallow, deep_parent, 3).ok());
  ExpectMatchesFreshRebuild(t_, index);
  ASSERT_TRUE(t_.MoveSubtree(shallow, t_.root(), 1).ok());
  ExpectMatchesFreshRebuild(t_, index);
}

TEST_F(IndexConsistencyTest, TruncateDeadTail) {
  TreeIndex index(t_);
  const size_t bound = t_.id_bound();
  auto added = t_.InsertLeaf(t_.InternLabel("S"), "temp", t_.root(), 1);
  ASSERT_TRUE(added.ok());
  ASSERT_TRUE(t_.DeleteLeaf(*added).ok());
  ASSERT_TRUE(t_.TruncateDeadTail(bound).ok());
  EXPECT_EQ(t_.id_bound(), bound);
  ExpectMatchesFreshRebuild(t_, index);
}

TEST_F(IndexConsistencyTest, WrapRootIsABulkChange) {
  TreeIndex index(t_);
  t_.WrapRoot(t_.InternLabel("R"));
  ExpectMatchesFreshRebuild(t_, index);
}

TEST_F(IndexConsistencyTest, CopyAssignmentInvalidatesInPlace) {
  TreeIndex index(t_);
  Tree other = Parse("(D (P (S \"replacement\")))", labels_);
  t_ = other;
  EXPECT_EQ(t_.attached_index(), &index);  // Still attached...
  ExpectMatchesFreshRebuild(t_, index);    // ...and consistent.
}

TEST_F(IndexConsistencyTest, RootRevivalAfterDeletingDownToNothing) {
  Tree small = Parse("(S \"only\")", labels_);
  TreeIndex index(small);
  const NodeId r = small.root();
  ASSERT_TRUE(small.DeleteLeaf(r).ok());
  EXPECT_EQ(small.size(), 0u);
  ASSERT_TRUE(small.ReviveLeaf(r, kInvalidNode, 1).ok());
  ExpectMatchesFreshRebuild(small, index);
}

TEST_F(IndexConsistencyTest, FullEditScriptApplication) {
  Tree t2 = Parse("(D (P (S \"four\") (S \"three\")) "
                  "(P (F (S \"seven\") (S \"five six\") (S \"brand new\"))) "
                  "(Q (S \"eight\")) (P (S \"tail\")))",
                  labels_);
  auto diff = DiffTrees(t_, t2);
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  Tree work = t_.Clone();
  TreeIndex index(work);
  ASSERT_TRUE(diff->script.ApplyTo(&work).ok());
  ASSERT_TRUE(Tree::Isomorphic(work, t2));
  ExpectMatchesFreshRebuild(work, index);
}

TEST_F(IndexConsistencyTest, RollbackOnMidScriptFailure) {
  Tree t2 = Parse("(D (P (S \"one two\")) (P (S \"four\") "
                  "(F (S \"seven\"))) (P (S \"eight\") (S \"nine\")))",
                  labels_);
  auto diff = DiffTrees(t_, t2);
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  ASSERT_GT(diff->script.size(), 0u);

  // A real prefix followed by a doomed op: ApplyTo mutates the tree through
  // the prefix, hits the bad op, and must roll everything back through the
  // undo log — with the index tracking both directions.
  EditScript poisoned;
  for (const EditOp& op : diff->script.ops()) poisoned.Append(op);
  poisoned.Append(EditOp::Delete(static_cast<NodeId>(t_.id_bound()) + 512));

  Tree work = t_.Clone();
  TreeIndex index(work);
  const size_t bound_before = work.id_bound();
  EXPECT_FALSE(poisoned.ApplyTo(&work).ok());
  EXPECT_EQ(work.id_bound(), bound_before);
  ASSERT_TRUE(Tree::Isomorphic(work, t_));
  ExpectMatchesFreshRebuild(work, index);

  // The rolled-back tree still applies the clean script correctly.
  ASSERT_TRUE(diff->script.ApplyTo(&work).ok());
  ASSERT_TRUE(Tree::Isomorphic(work, t2));
  ExpectMatchesFreshRebuild(work, index);
}

TEST_F(IndexConsistencyTest, LongRandomishMutationSequence) {
  TreeIndex index(t_);
  const LabelId s = t_.InternLabel("S");
  // A deterministic mix of every mutation kind, checking consistency after
  // each step so a regression pinpoints the offending hook.
  for (int round = 0; round < 4; ++round) {
    NodeId p = t_.children(t_.root())[static_cast<size_t>(round) % 3];
    auto ins = t_.InsertLeaf(s, "r" + std::to_string(round), p, 1);
    ASSERT_TRUE(ins.ok());
    ExpectMatchesFreshRebuild(t_, index);
    ASSERT_TRUE(t_.UpdateValue(*ins, "r" + std::to_string(round) + "'").ok());
    ExpectMatchesFreshRebuild(t_, index);
    ASSERT_TRUE(
        t_.MoveSubtree(*ins, t_.root(),
                       static_cast<int>(t_.children(t_.root()).size()) + 1)
            .ok());
    ExpectMatchesFreshRebuild(t_, index);
    ASSERT_TRUE(t_.DeleteLeaf(*ins).ok());
    ExpectMatchesFreshRebuild(t_, index);
  }
}

}  // namespace
}  // namespace treediff
