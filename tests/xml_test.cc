#include "doc/xml.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/diff.h"
#include "util/random.h"

namespace treediff {
namespace {

NodeId Child(const Tree& t, NodeId x, size_t i) { return t.children(x)[i]; }

TEST(XmlParseTest, SimpleElementTree) {
  auto tree = ParseXml("<a><b>hello</b><c/></a>");
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->label_name(tree->root()), "a");
  ASSERT_EQ(tree->children(tree->root()).size(), 2u);
  NodeId b = Child(*tree, tree->root(), 0);
  EXPECT_EQ(tree->label_name(b), "b");
  EXPECT_EQ(tree->label_name(Child(*tree, b, 0)), "#text");
  EXPECT_EQ(tree->value(Child(*tree, b, 0)), "hello");
  EXPECT_EQ(tree->label_name(Child(*tree, tree->root(), 1)), "c");
  EXPECT_TRUE(tree->Validate().ok());
}

TEST(XmlParseTest, AttributesBecomeLeaves) {
  auto tree = ParseXml("<item id=\"42\" class='x y'>text</item>");
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ(tree->children(tree->root()).size(), 3u);
  NodeId id = Child(*tree, tree->root(), 0);
  EXPECT_EQ(tree->label_name(id), "@id");
  EXPECT_EQ(tree->value(id), "42");
  NodeId cls = Child(*tree, tree->root(), 1);
  EXPECT_EQ(tree->label_name(cls), "@class");
  EXPECT_EQ(tree->value(cls), "x y");
}

TEST(XmlParseTest, AttributesCanBeDropped) {
  XmlParseOptions options;
  options.keep_attributes = false;
  auto tree = ParseXml("<item id=\"42\">text</item>", nullptr, options);
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ(tree->children(tree->root()).size(), 1u);
  EXPECT_EQ(tree->label_name(Child(*tree, tree->root(), 0)), "#text");
}

TEST(XmlParseTest, EntitiesDecoded) {
  auto tree = ParseXml("<t a=\"&quot;q&quot;\">&lt;tag&gt; &amp; &#65;</t>");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->value(Child(*tree, tree->root(), 0)), "\"q\"");
  EXPECT_EQ(tree->value(Child(*tree, tree->root(), 1)), "<tag> & A");
}

TEST(XmlParseTest, HexCharRef) {
  auto tree = ParseXml("<t>&#x41;&#x42;</t>");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->value(Child(*tree, tree->root(), 0)), "AB");
}

TEST(XmlParseTest, CommentsPiDoctypeSkipped) {
  auto tree = ParseXml(
      "<?xml version=\"1.0\"?><!DOCTYPE a><!-- c --><a><!-- inner -->x"
      "<?pi data?></a>");
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ(tree->children(tree->root()).size(), 1u);
  EXPECT_EQ(tree->value(Child(*tree, tree->root(), 0)), "x");
}

TEST(XmlParseTest, CdataIsLiteralText) {
  auto tree = ParseXml("<t><![CDATA[a < b & c]]></t>");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->value(Child(*tree, tree->root(), 0)), "a < b & c");
}

TEST(XmlParseTest, SentenceSplittingOption) {
  XmlParseOptions options;
  options.split_sentences = true;
  auto tree = ParseXml("<p>First one. Second one.</p>", nullptr, options);
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ(tree->children(tree->root()).size(), 2u);
  EXPECT_EQ(tree->value(Child(*tree, tree->root(), 0)), "First one.");
  EXPECT_EQ(tree->value(Child(*tree, tree->root(), 1)), "Second one.");
}

TEST(XmlParseTest, WhitespaceOnlyTextDropped) {
  auto tree = ParseXml("<a>\n  <b/>\n  <c/>\n</a>");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->children(tree->root()).size(), 2u);
}

TEST(XmlParseTest, Errors) {
  EXPECT_EQ(ParseXml("").status().code(), Code::kParseError);
  EXPECT_EQ(ParseXml("plain text").status().code(), Code::kParseError);
  EXPECT_EQ(ParseXml("<a>").status().code(), Code::kParseError);
  EXPECT_EQ(ParseXml("<a></b>").status().code(), Code::kParseError);
  EXPECT_EQ(ParseXml("<a><b></a></b>").status().code(), Code::kParseError);
  EXPECT_EQ(ParseXml("<a x=1/>").status().code(), Code::kParseError);
  EXPECT_EQ(ParseXml("<a x=\"1/>").status().code(), Code::kParseError);
  EXPECT_EQ(ParseXml("<a/><b/>").status().code(), Code::kParseError);
}

TEST(XmlParseTest, RoundTripThroughRenderXml) {
  const char* doc =
      "<library><book isbn=\"1\"><title>Tree Matching</title>"
      "<author>S. Chawathe</author></book>"
      "<book isbn=\"2\"><title>Edit Scripts</title></book></library>";
  auto tree = ParseXml(doc);
  ASSERT_TRUE(tree.ok());
  const std::string rendered = RenderXml(*tree);
  auto reparsed = ParseXml(rendered, tree->label_table());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_TRUE(Tree::Isomorphic(*tree, *reparsed));
}

TEST(XmlParseTest, RenderEscapesSpecials) {
  auto labels = std::make_shared<LabelTable>();
  Tree t(labels);
  NodeId r = t.AddRoot("e");
  t.AddChild(r, "@a", "x \"y\" & z");
  t.AddChild(r, "#text", "1 < 2 & 3 > 2");
  const std::string xml = RenderXml(t);
  EXPECT_NE(xml.find("a=\"x &quot;y&quot; &amp; z\""), std::string::npos);
  EXPECT_NE(xml.find("1 &lt; 2 &amp; 3 &gt; 2"), std::string::npos);
}

TEST(XmlDiffTest, EndToEndDetectsChanges) {
  auto labels = std::make_shared<LabelTable>();
  auto t1 = ParseXml(
      "<catalog><entry id=\"a\"><name>alpha item</name>"
      "<price>10</price></entry>"
      "<entry id=\"b\"><name>beta item</name><price>20</price></entry>"
      "</catalog>",
      labels);
  auto t2 = ParseXml(
      "<catalog><entry id=\"b\"><name>beta item</name><price>25</price>"
      "</entry>"
      "<entry id=\"a\"><name>alpha item</name><price>10</price></entry>"
      "</catalog>",
      labels);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  DiffOptions options;
  options.complete_context = true;
  options.internal_threshold_t = 0.5;
  auto diff = DiffTrees(*t1, *t2, options);
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  Tree replay = t1->Clone();
  ASSERT_TRUE(diff->script.ApplyTo(&replay).ok());
  EXPECT_TRUE(Tree::Isomorphic(replay, *t2));
  // Reordered entries should be a move, the price change an update.
  EXPECT_GE(diff->stats.moves, 1u);
  EXPECT_GE(diff->stats.updates, 1u);
}

TEST(XmlDiffTest, MarkupAnnotatesStatus) {
  auto labels = std::make_shared<LabelTable>();
  // Context completion zips leftover opts in order; the t1-only <legacy>
  // element (a label with no counterpart) stays deleted, t2's surplus opt
  // stays inserted, and the threads value change becomes an update.
  auto t1 = ParseXml(
      "<cfg><opt name=\"threads\">4</opt><opt name=\"color\">red</opt>"
      "<opt name=\"debug\">off</opt><legacy>gone</legacy></cfg>",
      labels);
  auto t2 = ParseXml(
      "<cfg><opt name=\"threads\">8</opt><opt name=\"color\">red</opt>"
      "<opt name=\"debug\">off</opt><opt name=\"extra\">y</opt></cfg>",
      labels);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  DiffOptions options;
  options.complete_context = true;
  options.internal_threshold_t = 0.5;
  auto diff = DiffTrees(*t1, *t2, options);
  ASSERT_TRUE(diff.ok());
  auto delta = BuildDeltaTree(*t1, *t2, *diff);
  ASSERT_TRUE(delta.ok());
  const std::string xml = RenderXmlMarkup(*delta, *labels);
  EXPECT_NE(xml.find("td:status=\"updated\""), std::string::npos);
  EXPECT_NE(xml.find("td:status=\"inserted\""), std::string::npos);
  EXPECT_NE(xml.find("td:status=\"deleted\""), std::string::npos);
}

TEST(XmlFuzzTest, SurvivesRandomInput) {
  Rng rng(111);
  for (int iter = 0; iter < 80; ++iter) {
    std::string input;
    static const char* kPieces[] = {"<a>", "</a>", "<b x=\"1\">", "</b>",
                                    "<c/>", "text ", "&amp;", "&#x41;",
                                    "<!-- c -->", "<![CDATA[x]]>", "<",
                                    ">", "\"", "=", "plain"};
    const size_t tokens = 2 + rng.Uniform(40);
    for (size_t i = 0; i < tokens; ++i) {
      input += kPieces[rng.Uniform(std::size(kPieces))];
    }
    auto tree = ParseXml(input);
    if (tree.ok()) {
      EXPECT_TRUE(tree->Validate().ok());
    }
  }
}

}  // namespace
}  // namespace treediff
