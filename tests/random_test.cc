#include "util/random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace treediff {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(10), 10u);
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformInRangeInclusive) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(ZipfTest, UniformWhenSkewZero) {
  Rng rng(19);
  ZipfSampler zipf(4, 0.0);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  Rng rng(23);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[10] * 3);
  EXPECT_GT(counts[0], counts[99] * 10);
}

TEST(ZipfTest, SingleElement) {
  Rng rng(29);
  ZipfSampler zipf(1, 1.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
}

}  // namespace
}  // namespace treediff
