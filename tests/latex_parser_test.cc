#include "doc/latex_parser.h"

#include <gtest/gtest.h>

#include <memory>

#include "tree/schema.h"

namespace treediff {
namespace {

NodeId Child(const Tree& t, NodeId x, size_t i) { return t.children(x)[i]; }

TEST(LatexParserTest, PlainParagraphs) {
  auto tree = ParseLatex("First sentence. Second sentence.\n\nNew para.");
  ASSERT_TRUE(tree.ok());
  NodeId doc = tree->root();
  EXPECT_EQ(tree->label_name(doc), "document");
  ASSERT_EQ(tree->children(doc).size(), 2u);
  NodeId p1 = Child(*tree, doc, 0);
  EXPECT_EQ(tree->label_name(p1), "paragraph");
  ASSERT_EQ(tree->children(p1).size(), 2u);
  EXPECT_EQ(tree->value(Child(*tree, p1, 0)), "First sentence.");
  EXPECT_EQ(tree->value(Child(*tree, p1, 1)), "Second sentence.");
  NodeId p2 = Child(*tree, doc, 1);
  EXPECT_EQ(tree->value(Child(*tree, p2, 0)), "New para.");
}

TEST(LatexParserTest, SectionsCaptureHeadings) {
  auto tree = ParseLatex(
      "\\section{First things first}\nBody text here.\n"
      "\\section{Another way}\nMore body.");
  ASSERT_TRUE(tree.ok());
  NodeId doc = tree->root();
  ASSERT_EQ(tree->children(doc).size(), 2u);
  NodeId s1 = Child(*tree, doc, 0);
  EXPECT_EQ(tree->label_name(s1), "section");
  EXPECT_EQ(tree->value(s1), "First things first");
  EXPECT_EQ(tree->label_name(Child(*tree, s1, 0)), "paragraph");
}

TEST(LatexParserTest, SubsectionsNestUnderSections) {
  auto tree = ParseLatex(
      "\\section{S}\nIntro.\n\\subsection{Sub}\nDetail text.");
  ASSERT_TRUE(tree.ok());
  NodeId sec = Child(*tree, tree->root(), 0);
  ASSERT_EQ(tree->children(sec).size(), 2u);
  NodeId sub = Child(*tree, sec, 1);
  EXPECT_EQ(tree->label_name(sub), "subsection");
  EXPECT_EQ(tree->value(sub), "Sub");
}

TEST(LatexParserTest, AllListKindsMergeToListLabel) {
  for (const char* env : {"itemize", "enumerate", "description"}) {
    std::string text = std::string("\\begin{") + env +
                       "}\n\\item Alpha one.\n\\item Beta two.\n\\end{" +
                       env + "}";
    auto tree = ParseLatex(text);
    ASSERT_TRUE(tree.ok()) << env;
    NodeId list = Child(*tree, tree->root(), 0);
    EXPECT_EQ(tree->label_name(list), "list") << env;
    ASSERT_EQ(tree->children(list).size(), 2u) << env;
    NodeId item = Child(*tree, list, 0);
    EXPECT_EQ(tree->label_name(item), "item");
    NodeId para = Child(*tree, item, 0);
    EXPECT_EQ(tree->label_name(para), "paragraph");
    EXPECT_EQ(tree->value(Child(*tree, para, 0)), "Alpha one.");
  }
}

TEST(LatexParserTest, NestedLists) {
  auto tree = ParseLatex(
      "\\begin{itemize}\n\\item Outer.\n\\begin{enumerate}\n"
      "\\item Inner.\n\\end{enumerate}\n\\item Outer two.\n"
      "\\end{itemize}");
  ASSERT_TRUE(tree.ok());
  NodeId outer_list = Child(*tree, tree->root(), 0);
  EXPECT_EQ(tree->label_name(outer_list), "list");
  // First item holds "Outer." and the nested list.
  NodeId item1 = Child(*tree, outer_list, 0);
  ASSERT_EQ(tree->children(item1).size(), 2u);
  EXPECT_EQ(tree->label_name(Child(*tree, item1, 1)), "list");
}

TEST(LatexParserTest, CommentsStripped) {
  auto tree = ParseLatex("Keep this. % drop this\nAnd this.");
  ASSERT_TRUE(tree.ok());
  NodeId para = Child(*tree, tree->root(), 0);
  ASSERT_EQ(tree->children(para).size(), 2u);
  EXPECT_EQ(tree->value(Child(*tree, para, 0)), "Keep this.");
  EXPECT_EQ(tree->value(Child(*tree, para, 1)), "And this.");
}

TEST(LatexParserTest, EscapedPercentKept) {
  auto tree = ParseLatex("Growth of 5\\% yearly.");
  ASSERT_TRUE(tree.ok());
  NodeId para = Child(*tree, tree->root(), 0);
  EXPECT_EQ(tree->value(Child(*tree, para, 0)), "Growth of 5\\% yearly.");
}

TEST(LatexParserTest, PreambleSkipped) {
  auto tree = ParseLatex(
      "\\documentclass{article}\n\\usepackage{x}\n\\begin{document}\n"
      "Only this. \n\\end{document}\nIgnored trailing.");
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ(tree->children(tree->root()).size(), 1u);
  NodeId para = Child(*tree, tree->root(), 0);
  ASSERT_EQ(tree->children(para).size(), 1u);
  EXPECT_EQ(tree->value(Child(*tree, para, 0)), "Only this.");
}

TEST(LatexParserTest, InlineCommandsStayInProse) {
  auto tree = ParseLatex("This is \\emph{important} text.");
  ASSERT_TRUE(tree.ok());
  NodeId para = Child(*tree, tree->root(), 0);
  EXPECT_EQ(tree->value(Child(*tree, para, 0)),
            "This is \\emph{important} text.");
}

TEST(LatexParserTest, StarredSections) {
  auto tree = ParseLatex("\\section*{No number}\nText.");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->value(Child(*tree, tree->root(), 0)), "No number");
}

TEST(LatexParserTest, UnbalancedBracesError) {
  EXPECT_EQ(ParseLatex("\\section{oops").status().code(), Code::kParseError);
}

TEST(LatexParserTest, OutputSatisfiesDocumentSchema) {
  auto labels = std::make_shared<LabelTable>();
  auto tree = ParseLatex(
      "\\section{A}\nPara one. More.\n\n\\begin{itemize}\n\\item X.\n"
      "\\end{itemize}\n\\subsection{B}\nPara two.",
      labels);
  ASSERT_TRUE(tree.ok());
  LabelSchema schema = MakeDocumentSchema(labels.get());
  EXPECT_TRUE(schema.CheckAcyclic(*tree).ok());
  EXPECT_TRUE(tree->Validate().ok());
}

TEST(LatexParserTest, SharedLabelTableAcrossVersions) {
  auto labels = std::make_shared<LabelTable>();
  auto t1 = ParseLatex("One.", labels);
  auto t2 = ParseLatex("Two.", labels);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t1->label(t1->root()), t2->label(t2->root()));
}

TEST(LatexParserTest, MultiLineParagraphJoins) {
  auto tree = ParseLatex("A sentence\nspread over lines. Second.");
  ASSERT_TRUE(tree.ok());
  NodeId para = Child(*tree, tree->root(), 0);
  ASSERT_EQ(tree->children(para).size(), 2u);
  EXPECT_EQ(tree->value(Child(*tree, para, 0)),
            "A sentence spread over lines.");
}

}  // namespace
}  // namespace treediff
