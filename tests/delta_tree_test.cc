#include "core/delta_tree.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/diff.h"
#include "tree/builder.h"

namespace treediff {
namespace {

struct Fixture {
  std::shared_ptr<LabelTable> labels = std::make_shared<LabelTable>();

  Tree Parse(const std::string& s) { return *ParseSexpr(s, labels); }

  StatusOr<DeltaTree> Delta(const Tree& t1, const Tree& t2) {
    DiffOptions options;
    options.leaf_threshold_f = 0.5;
    auto diff = DiffTrees(t1, t2, options);
    if (!diff.ok()) return diff.status();
    return BuildDeltaTree(t1, t2, *diff);
  }
};

TEST(DeltaTreeTest, IdenticalTreesAllIdn) {
  Fixture f;
  Tree t1 = f.Parse("(D (P (S \"a a\") (S \"b b\")))");
  Tree t2 = f.Parse("(D (P (S \"a a\") (S \"b b\")))");
  auto dt = f.Delta(t1, t2);
  ASSERT_TRUE(dt.ok());
  EXPECT_EQ(dt->nodes().size(), 4u);
  EXPECT_EQ(dt->CountAnnotation(DeltaAnnotation::kIdentical), 4u);
  EXPECT_EQ(dt->move_count(), 0u);
}

TEST(DeltaTreeTest, InsertAnnotated) {
  Fixture f;
  // Three of four leaves stay (3/4 > t = 0.6), so the paragraph remains
  // matched and only the new sentence is annotated INS.
  Tree t1 = f.Parse(
      "(D (P (S \"one two three\") (S \"four five six\") "
      "(S \"seven eight nine\")))");
  Tree t2 = f.Parse(
      "(D (P (S \"one two three\") (S \"four five six\") "
      "(S \"seven eight nine\") (S \"brand new here\")))");
  auto dt = f.Delta(t1, t2);
  ASSERT_TRUE(dt.ok());
  EXPECT_EQ(dt->CountAnnotation(DeltaAnnotation::kInserted), 1u);
  // The inserted node carries the new value.
  for (const DeltaNode& n : dt->nodes()) {
    if (n.annotation == DeltaAnnotation::kInserted) {
      EXPECT_EQ(n.value, "brand new here");
      EXPECT_EQ(n.t1_node, kInvalidNode);
    }
  }
}

TEST(DeltaTreeTest, DeleteTombstoneAtOldPosition) {
  Fixture f;
  Tree t1 = f.Parse(
      "(D (P (S \"first one here\") (S \"doomed gone bye\") "
      "(S \"last one here\")))");
  Tree t2 = f.Parse("(D (P (S \"first one here\") (S \"last one here\")))");
  auto dt = f.Delta(t1, t2);
  ASSERT_TRUE(dt.ok());
  EXPECT_EQ(dt->CountAnnotation(DeltaAnnotation::kDeleted), 1u);
  // Tombstone sits between the two surviving sentences.
  const DeltaNode& para = dt->node(dt->node(dt->root()).children[0]);
  ASSERT_EQ(para.children.size(), 3u);
  EXPECT_EQ(dt->node(para.children[0]).annotation,
            DeltaAnnotation::kIdentical);
  EXPECT_EQ(dt->node(para.children[1]).annotation,
            DeltaAnnotation::kDeleted);
  EXPECT_EQ(dt->node(para.children[1]).value, "doomed gone bye");
  EXPECT_EQ(dt->node(para.children[2]).annotation,
            DeltaAnnotation::kIdentical);
}

TEST(DeltaTreeTest, DeletedSubtreeKeptWhole) {
  Fixture f;
  Tree t1 = f.Parse(
      "(D (P (S \"keep me now\")) (P (S \"dead one x\") (S \"dead two y\")))");
  Tree t2 = f.Parse("(D (P (S \"keep me now\")))");
  auto dt = f.Delta(t1, t2);
  ASSERT_TRUE(dt.ok());
  // Whole paragraph deleted: tombstone root DEL with two DEL children.
  EXPECT_EQ(dt->CountAnnotation(DeltaAnnotation::kDeleted), 3u);
  const DeltaNode& root = dt->node(dt->root());
  ASSERT_EQ(root.children.size(), 2u);
  const DeltaNode& dead_para = dt->node(root.children[1]);
  EXPECT_EQ(dead_para.annotation, DeltaAnnotation::kDeleted);
  EXPECT_EQ(dead_para.children.size(), 2u);
}

TEST(DeltaTreeTest, UpdateKeepsOldValue) {
  Fixture f;
  Tree t1 = f.Parse("(D (P (S \"alpha beta gamma delta\")))");
  Tree t2 = f.Parse("(D (P (S \"alpha beta gamma zeta\")))");
  auto dt = f.Delta(t1, t2);
  ASSERT_TRUE(dt.ok());
  EXPECT_EQ(dt->CountAnnotation(DeltaAnnotation::kUpdated), 1u);
  for (const DeltaNode& n : dt->nodes()) {
    if (n.annotation == DeltaAnnotation::kUpdated) {
      EXPECT_EQ(n.value, "alpha beta gamma zeta");
      EXPECT_EQ(n.old_value, "alpha beta gamma delta");
      EXPECT_TRUE(n.value_updated);
    }
  }
}

TEST(DeltaTreeTest, MovePairsTombstoneWithMarker) {
  Fixture f;
  // Paragraphs keep enough common sentences (2/3 > t = 0.6) to stay
  // matched, so the sentence move is detected as a move rather than a
  // delete/insert of paragraphs.
  Tree t1 = f.Parse(
      "(D (P (S \"mover goes far\") (S \"stay put one\") (S \"stay one b\")) "
      "(P (S \"stay put two\") (S \"stay two b\")))");
  Tree t2 = f.Parse(
      "(D (P (S \"stay put one\") (S \"stay one b\")) "
      "(P (S \"stay put two\") (S \"stay two b\") (S \"mover goes far\")))");
  auto dt = f.Delta(t1, t2);
  ASSERT_TRUE(dt.ok());
  EXPECT_EQ(dt->CountAnnotation(DeltaAnnotation::kMoved), 1u);
  EXPECT_EQ(dt->CountAnnotation(DeltaAnnotation::kMoveMarker), 1u);
  EXPECT_EQ(dt->move_count(), 1u);
  int tombstone_id = -2, marker_id = -3;
  for (const DeltaNode& n : dt->nodes()) {
    if (n.annotation == DeltaAnnotation::kMoved) tombstone_id = n.move_id;
    if (n.annotation == DeltaAnnotation::kMoveMarker) marker_id = n.move_id;
  }
  EXPECT_EQ(tombstone_id, marker_id);
  // Tombstone sits in the first paragraph (old position), marker in the
  // second (new position).
  const DeltaNode& root = dt->node(dt->root());
  const DeltaNode& p1 = dt->node(root.children[0]);
  EXPECT_EQ(dt->node(p1.children[0]).annotation, DeltaAnnotation::kMoved);
  const DeltaNode& p2 = dt->node(root.children[1]);
  EXPECT_EQ(dt->node(p2.children[2]).annotation,
            DeltaAnnotation::kMoveMarker);
}

TEST(DeltaTreeTest, MovedAndUpdatedMarkedForBoth) {
  Fixture f;
  Tree t1 = f.Parse(
      "(D (P (S \"alpha beta gamma delta\") (S \"stay here one\") "
      "(S \"stay one b\")) (P (S \"stay here two\") (S \"stay two b\")))");
  Tree t2 = f.Parse(
      "(D (P (S \"stay here one\") (S \"stay one b\")) "
      "(P (S \"stay here two\") (S \"stay two b\") "
      "(S \"alpha beta gamma zeta\")))");
  auto dt = f.Delta(t1, t2);
  ASSERT_TRUE(dt.ok());
  bool found = false;
  for (const DeltaNode& n : dt->nodes()) {
    if (n.annotation == DeltaAnnotation::kMoveMarker) {
      found = true;
      EXPECT_TRUE(n.value_updated);
      EXPECT_EQ(n.old_value, "alpha beta gamma delta");
      EXPECT_EQ(n.value, "alpha beta gamma zeta");
    }
  }
  EXPECT_TRUE(found);
}

TEST(DeltaTreeTest, AnnotationCountsMatchScript) {
  Fixture f;
  // P1 keeps 2/3 common leaves and P2 2/3, so both paragraphs stay matched
  // under t = 0.6; "d e f" moves, "m n o" is inserted, "x y z" is deleted.
  Tree t1 = f.Parse(
      "(D (P (S \"a b c\") (S \"d e f\") (S \"g h i\")) "
      "(P (S \"j k l\") (S \"p q r\") (S \"x y z\")))");
  Tree t2 = f.Parse(
      "(D (P (S \"a b c\") (S \"g h i\") (S \"m n o\")) "
      "(P (S \"j k l\") (S \"p q r\") (S \"d e f\")))");
  DiffOptions options;
  auto diff = DiffTrees(t1, t2, options);
  ASSERT_TRUE(diff.ok());
  auto dt = BuildDeltaTree(t1, t2, *diff);
  ASSERT_TRUE(dt.ok());
  EXPECT_EQ(dt->CountAnnotation(DeltaAnnotation::kInserted),
            diff->script.num_inserts());
  // Every delete op corresponds to a DEL node.
  EXPECT_EQ(dt->CountAnnotation(DeltaAnnotation::kDeleted),
            diff->script.num_deletes());
  // Every move op corresponds to one tombstone + one marker.
  EXPECT_EQ(dt->CountAnnotation(DeltaAnnotation::kMoved),
            diff->script.num_moves());
  EXPECT_EQ(dt->CountAnnotation(DeltaAnnotation::kMoveMarker),
            diff->script.num_moves());
  EXPECT_EQ(dt->CountAnnotation(DeltaAnnotation::kUpdated),
            diff->script.num_updates());
}

TEST(DeltaTreeTest, DebugStringShowsAnnotations) {
  Fixture f;
  Tree t1 = f.Parse("(D (S \"old text here\"))");
  Tree t2 = f.Parse("(D (S \"old text here\") (S \"new text here\"))");
  auto dt = f.Delta(t1, t2);
  ASSERT_TRUE(dt.ok());
  const std::string s = dt->ToDebugString(*f.labels);
  EXPECT_NE(s.find(":INS"), std::string::npos);
  EXPECT_EQ(s.find(":DEL"), std::string::npos);
}

TEST(DeltaTreeTest, EmptyTreesRejected) {
  Fixture f;
  Tree t1 = f.Parse("(D)");
  Tree empty(f.labels);
  EditScript script;
  Matching m(1, 0);
  EXPECT_EQ(BuildDeltaTree(t1, empty, m, script).status().code(),
            Code::kFailedPrecondition);
}

}  // namespace
}  // namespace treediff
