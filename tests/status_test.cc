#include "util/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

namespace treediff {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), Code::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(), Code::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), Code::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), Code::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), Code::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), Code::kInternal);
  EXPECT_EQ(Status::ParseError("x").code(), Code::kParseError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(), Code::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(), Code::kDeadlineExceeded);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
  EXPECT_FALSE(Status::Internal("boom").ok());
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status st = Status::InvalidArgument("k out of range");
  EXPECT_EQ(st.ToString(), "InvalidArgument: k out of range");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(CodeName(Code::kOk), "OK");
  EXPECT_STREQ(CodeName(Code::kParseError), "ParseError");
  EXPECT_STREQ(CodeName(Code::kResourceExhausted), "ResourceExhausted");
  EXPECT_STREQ(CodeName(Code::kDeadlineExceeded), "DeadlineExceeded");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("no such node");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), Code::kNotFound);
  EXPECT_EQ(v.status().message(), "no such node");
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

Status FailsIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Wrapper(int x) {
  TREEDIFF_RETURN_IF_ERROR(FailsIfNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(Wrapper(1).ok());
  EXPECT_EQ(Wrapper(-1).code(), Code::kInvalidArgument);
}

TEST(StatusTest, IgnoreErrorAcceptsAnyStatus) {
  // Status is [[nodiscard]]; IgnoreError() is the only sanctioned way to
  // drop one, and it must be callable on ok and error values alike.
  FailsIfNegative(1).IgnoreError();
  FailsIfNegative(-1).IgnoreError();
  StatusOr<int> bad = Status::Internal("boom");
  bad.IgnoreError();
  StatusOr<int> good = 3;
  good.IgnoreError();
  EXPECT_EQ(*good, 3);
}

TEST(StatusTest, CheckOkPassesThroughOkStatus) {
  // TREEDIFF_CHECK_OK asserts in debug builds and discards in release;
  // with an ok status it must be a no-op either way.
  TREEDIFF_CHECK_OK(FailsIfNegative(5));
  TREEDIFF_CHECK_OK(Status::Ok());
}

}  // namespace
}  // namespace treediff
