// Incremental serving (DiffServiceOptions::incremental): the share-map
// pre-pass prunes unchanged subtrees on every request, repeat requests over
// the same content fingerprints reuse the cached phase-1 matching, and
// adjacent stored-version diffs are answered straight from the commit log.
// Each layer must be an observable accelerant (hit flags, PRUNE metrics)
// and must serve byte-identical scripts to the cold path.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "service/diff_service.h"

namespace treediff {
namespace {

DiffRequest InlineRequest(const std::string& old_doc,
                          const std::string& new_doc) {
  DiffRequest request;
  request.format = DiffRequest::Format::kSexpr;
  request.old_doc = old_doc;
  request.new_doc = new_doc;
  return request;
}

const char kBase[] =
    "(D (P (S \"alpha beta gamma\") (S \"delta epsilon\")) "
    "(P (S \"zeta eta\") (S \"theta iota kappa\")) "
    "(P (S \"lambda mu\")))";
const char kEdited[] =
    "(D (P (S \"alpha beta gamma\") (S \"delta epsilon\")) "
    "(P (S \"zeta eta\") (S \"theta iota CHANGED\")) "
    "(P (S \"lambda mu\")))";

TEST(IncrementalServiceTest, PruningEngagesAndMatchesTheColdPath) {
  DiffServiceOptions plain;
  plain.num_threads = 2;
  DiffService cold(plain);
  const DiffResponse cold_response =
      cold.SubmitSync(InlineRequest(kBase, kEdited));
  ASSERT_TRUE(cold_response.status.ok()) << cold_response.status.ToString();
  EXPECT_EQ(cold_response.pruned_subtrees, 0u);  // incremental off: no prune

  DiffServiceOptions inc = plain;
  inc.incremental = true;
  DiffService warm(inc);
  const DiffResponse warm_response =
      warm.SubmitSync(InlineRequest(kBase, kEdited));
  ASSERT_TRUE(warm_response.status.ok()) << warm_response.status.ToString();
  // The two untouched paragraphs settle wholesale.
  EXPECT_GE(warm_response.pruned_subtrees, 2u);
  EXPECT_GT(warm_response.pruned_nodes, warm_response.pruned_subtrees);
  EXPECT_FALSE(warm_response.matching_cache_hit);  // First sighting.
  EXPECT_EQ(warm_response.operations, cold_response.operations);

  // Cumulative prune metrics are exported.
  EXPECT_GE(warm.metrics().counter("diff_prune_subtrees_total")->Value(),
            warm_response.pruned_subtrees);
  EXPECT_GE(warm.metrics().counter("diff_prune_nodes_total")->Value(),
            warm_response.pruned_nodes);
}

TEST(IncrementalServiceTest, RepeatRequestHitsTheMatchingCache) {
  DiffServiceOptions options;
  options.num_threads = 2;
  options.incremental = true;
  DiffService service(options);

  const DiffResponse first = service.SubmitSync(InlineRequest(kBase, kEdited));
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.matching_cache_hit);

  const DiffResponse second =
      service.SubmitSync(InlineRequest(kBase, kEdited));
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.matching_cache_hit);
  // Byte-identical serving: a reused matching must reproduce the script.
  EXPECT_EQ(second.script, first.script);
  EXPECT_EQ(second.operations, first.operations);
  EXPECT_EQ(service.metrics().counter("diff_match_cache_hits_total")->Value(),
            1u);
}

TEST(IncrementalServiceTest, BudgetedRequestsBypassTheMatchingCache) {
  DiffServiceOptions options;
  options.num_threads = 2;
  options.incremental = true;
  DiffService service(options);

  DiffRequest budgeted = InlineRequest(kBase, kEdited);
  budgeted.node_cap = 1u << 20;  // Generous, but budgeted is budgeted.
  const DiffResponse first = service.SubmitSync(budgeted);
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.matching_cache_hit);

  DiffRequest again = InlineRequest(kBase, kEdited);
  again.node_cap = 1u << 20;
  const DiffResponse second = service.SubmitSync(again);
  ASSERT_TRUE(second.status.ok());
  // A budgeted run may degrade, so its matching is neither stored nor
  // reused — correctness over cleverness.
  EXPECT_FALSE(second.matching_cache_hit);
  EXPECT_EQ(service.metrics().counter("diff_match_cache_hits_total")->Value(),
            0u);
}

TEST(IncrementalServiceTest, AdjacentVersionDiffServesFromTheChainLog) {
  DiffServiceOptions options;
  options.num_threads = 2;
  options.incremental = true;
  DiffService service(options);

  ASSERT_TRUE(service.CreateStore("doc", kBase).ok());
  const StatusOr<int> v1 = service.CommitVersion("doc", kEdited);
  ASSERT_TRUE(v1.ok());
  ASSERT_EQ(*v1, 1);

  // The authoritative answer, computed by the pipeline with the chain log
  // bypassed (incremental off).
  DiffServiceOptions plain;
  plain.num_threads = 2;
  DiffService cold(plain);
  ASSERT_TRUE(cold.CreateStore("doc", kBase).ok());
  ASSERT_TRUE(cold.CommitVersion("doc", kEdited).ok());
  DiffRequest request;
  request.doc_id = "doc";
  request.from_version = 0;
  request.to_version = 1;
  const DiffResponse pipeline = cold.SubmitSync(request);
  ASSERT_TRUE(pipeline.status.ok()) << pipeline.status.ToString();
  EXPECT_FALSE(pipeline.chain_log_hit);

  const DiffResponse logged = service.SubmitSync(request);
  ASSERT_TRUE(logged.status.ok()) << logged.status.ToString();
  EXPECT_TRUE(logged.chain_log_hit);
  // The stored delta IS the diff the pipeline computed at commit time.
  EXPECT_EQ(logged.script, pipeline.script);
  EXPECT_EQ(logged.operations, pipeline.operations);
  EXPECT_EQ(service.metrics().counter("diff_chain_log_hits_total")->Value(),
            1u);

  // Non-adjacent requests fall through to the pipeline.
  ASSERT_TRUE(service.CommitVersion("doc", kBase).ok());
  DiffRequest skip;
  skip.doc_id = "doc";
  skip.from_version = 0;
  skip.to_version = 2;
  const DiffResponse wide = service.SubmitSync(skip);
  ASSERT_TRUE(wide.status.ok()) << wide.status.ToString();
  EXPECT_FALSE(wide.chain_log_hit);
}

TEST(IncrementalServiceTest, ConcurrentIncrementalSubmitsStayConsistent) {
  DiffServiceOptions options;
  options.num_threads = 4;
  options.incremental = true;
  options.matching_cache_entries = 8;
  DiffService service(options);
  // Pin label ids so concurrent first-touch interning cannot reorder them.
  (void)service.SubmitSync(InlineRequest(kBase, kBase));

  ASSERT_TRUE(service.CreateStore("doc", kBase).ok());
  ASSERT_TRUE(service.CommitVersion("doc", kEdited).ok());

  const DiffResponse expected =
      service.SubmitSync(InlineRequest(kBase, kEdited));
  ASSERT_TRUE(expected.status.ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 16;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        DiffResponse r;
        if (i % 2 == 0) {
          r = service.SubmitSync(InlineRequest(kBase, kEdited));
          if (!r.status.ok() || r.script != expected.script) ++failures[t];
        } else {
          DiffRequest request;
          request.doc_id = "doc";
          request.from_version = 0;
          request.to_version = 1;
          r = service.SubmitSync(request);
          if (!r.status.ok() || !r.chain_log_hit) ++failures[t];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }
  // Every inline pair after the first should have hit the matching cache.
  EXPECT_GE(service.metrics().counter("diff_match_cache_hits_total")->Value(),
            static_cast<uint64_t>(kThreads * kPerThread / 2 - kThreads));
}

}  // namespace
}  // namespace treediff
