#include "util/budget.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/diff.h"
#include "gen/doc_gen.h"
#include "gen/edit_sim.h"
#include "tree/builder.h"

namespace treediff {
namespace {

// ---------------------------------------------------------------------------
// Budget unit tests.
// ---------------------------------------------------------------------------

TEST(BudgetTest, DefaultIsUnlimited) {
  Budget budget;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(budget.ChargeNodes());
    EXPECT_TRUE(budget.ChargeComparisons());
    EXPECT_TRUE(budget.Check());
  }
  EXPECT_FALSE(budget.exhausted());
  EXPECT_EQ(budget.nodes_visited(), 1000u);
  EXPECT_EQ(budget.comparisons(), 1000u);
}

TEST(BudgetTest, NodeCapTrips) {
  Budget budget;
  budget.set_node_cap(10);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(budget.ChargeNodes());
  EXPECT_FALSE(budget.ChargeNodes());
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.exhaustion_code(), Code::kResourceExhausted);
  // Counters keep accumulating after the trip.
  EXPECT_EQ(budget.nodes_visited(), 11u);
}

TEST(BudgetTest, ComparisonCapTrips) {
  Budget budget;
  budget.set_comparison_cap(5);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(budget.ChargeComparisons());
  EXPECT_FALSE(budget.ChargeComparisons());
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.exhaustion_code(), Code::kResourceExhausted);
  EXPECT_NE(budget.exhaustion_detail().find("comparison"), std::string::npos);
}

TEST(BudgetTest, ArenaCapTripsAndTracksPeak) {
  Budget budget;
  budget.set_arena_cap_bytes(1000);
  EXPECT_TRUE(budget.ChargeArena(600));
  budget.ReleaseArena(600);
  EXPECT_TRUE(budget.ChargeArena(900));
  EXPECT_EQ(budget.peak_arena_bytes(), 900u);
  EXPECT_FALSE(budget.ChargeArena(200));  // 900 + 200 > 1000.
  EXPECT_TRUE(budget.exhausted());
}

TEST(BudgetTest, DeadlineTrips) {
  Budget budget = Budget::Deadline(0.0);  // Already expired.
  EXPECT_FALSE(budget.CheckNow());
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.exhaustion_code(), Code::kDeadlineExceeded);
}

TEST(BudgetTest, ExhaustionIsStickyUntilRearm) {
  Budget budget;
  budget.set_node_cap(1);
  EXPECT_TRUE(budget.ChargeNodes());
  EXPECT_FALSE(budget.ChargeNodes());
  EXPECT_FALSE(budget.Check());
  EXPECT_FALSE(budget.ChargeComparisons());  // Sticky across probe kinds.
  budget.Rearm();
  EXPECT_FALSE(budget.exhausted());
  EXPECT_TRUE(budget.Check());
}

TEST(BudgetTest, CouldAffordConsultsExplicitCaps) {
  Budget budget;
  budget.set_node_cap(100).set_arena_cap_bytes(1 << 20);
  EXPECT_TRUE(budget.CouldAfford(50, 0, 1 << 10));
  EXPECT_FALSE(budget.CouldAfford(200, 0, 0));
  EXPECT_FALSE(budget.CouldAfford(0, 0, 2 << 20));
}

TEST(BudgetTest, ToStatusNamesTrippedLimit) {
  Budget budget;
  budget.set_node_cap(3);
  while (budget.ChargeNodes()) {
  }
  Status st = budget.ToStatus();
  EXPECT_EQ(st.code(), Code::kResourceExhausted);
  EXPECT_NE(st.message().find("node"), std::string::npos);
}

TEST(BudgetTest, NullSafeHelpers) {
  EXPECT_TRUE(BudgetOk(nullptr));
  EXPECT_TRUE(BudgetCheck(nullptr));
  EXPECT_TRUE(BudgetCheckNow(nullptr));
  EXPECT_TRUE(BudgetChargeNodes(nullptr));
  EXPECT_TRUE(BudgetChargeComparisons(nullptr));
  EXPECT_TRUE(BudgetChargeArena(nullptr, 100));
  BudgetReleaseArena(nullptr, 100);  // Must not crash.
}

TEST(BudgetTest, IsExhaustionClassifiesCodes) {
  EXPECT_TRUE(IsExhaustion(Code::kResourceExhausted));
  EXPECT_TRUE(IsExhaustion(Code::kDeadlineExceeded));
  EXPECT_FALSE(IsExhaustion(Code::kOk));
  EXPECT_FALSE(IsExhaustion(Code::kInvalidArgument));
}

// ---------------------------------------------------------------------------
// Degradation-ladder tests.
// ---------------------------------------------------------------------------

struct LadderFixture {
  std::shared_ptr<LabelTable> labels = std::make_shared<LabelTable>();
  Vocabulary vocab{300, 1.0};

  Tree Parse(const std::string& s) { return *ParseSexpr(s, labels); }

  // A moderately sized document pair with known edits.
  std::pair<Tree, Tree> DocumentPair(int sections, int edits) {
    Rng rng(42);
    DocGenParams params;
    params.sections = sections;
    Tree t1 = GenerateDocument(params, vocab, &rng, labels);
    SimulatedVersion v = SimulateNewVersion(t1, edits, {}, vocab, &rng);
    return {std::move(t1), std::move(v.new_tree)};
  }
};

TEST(DiffLadderTest, NoBudgetStaysOnRequestedRung) {
  LadderFixture f;
  auto [t1, t2] = f.DocumentPair(4, 10);
  auto result = DiffTrees(t1, t2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.rung, DiffRung::kFastMatch);
  EXPECT_FALSE(result->report.degraded);
  EXPECT_EQ(result->report.exhaustion_code, Code::kOk);
  // Estimated counters are still populated.
  EXPECT_GT(result->report.nodes_visited, 0u);
}

TEST(DiffLadderTest, AmpleBudgetDoesNotDegrade) {
  LadderFixture f;
  auto [t1, t2] = f.DocumentPair(4, 10);
  Budget budget;  // Unlimited, but counting.
  DiffOptions options;
  options.budget = &budget;
  auto result = DiffTrees(t1, t2, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.rung, DiffRung::kFastMatch);
  EXPECT_FALSE(result->report.degraded);
  EXPECT_GT(result->report.nodes_visited, 0u);
  EXPECT_GT(result->report.comparisons, 0u);
  EXPECT_GE(result->report.elapsed_seconds, 0.0);
}

TEST(DiffLadderTest, OptimalZsRungHonoredWhenAffordable) {
  LadderFixture f;
  Tree t1 = f.Parse("(D (P (S \"alpha beta\") (S \"gamma delta\")))");
  Tree t2 = f.Parse("(D (P (S \"alpha beta\") (S \"gamma epsilon\")))");
  DiffOptions options;
  options.start_rung = DiffRung::kOptimalZs;
  auto result = DiffTrees(t1, t2, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.rung, DiffRung::kOptimalZs);
  EXPECT_FALSE(result->report.degraded);
  Tree replay = t1.Clone();
  ASSERT_TRUE(result->script.ApplyTo(&replay).ok());
  EXPECT_TRUE(Tree::Isomorphic(replay, t2));
}

TEST(DiffLadderTest, ZsPreflightSkipsToFastMatchWhenTableTooBig) {
  LadderFixture f;
  auto [t1, t2] = f.DocumentPair(4, 5);
  Budget budget;
  // Arena cap far below the (n1+1)*(n2+1)*8 ZS table: the pre-flight skips
  // the ZS rung without burning the budget, and FastMatch runs normally.
  budget.set_arena_cap_bytes(64);
  DiffOptions options;
  options.budget = &budget;
  options.start_rung = DiffRung::kOptimalZs;
  auto result = DiffTrees(t1, t2, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.rung, DiffRung::kFastMatch);
  EXPECT_TRUE(result->report.degraded);
  Tree replay = t1.Clone();
  ASSERT_TRUE(result->script.ApplyTo(&replay).ok());
  EXPECT_TRUE(Tree::Isomorphic(replay, t2));
}

TEST(DiffLadderTest, ExpiredDeadlineFallsToStructuralRung) {
  LadderFixture f;
  auto [t1, t2] = f.DocumentPair(6, 20);
  Budget budget = Budget::Deadline(0.0);  // Expired before we start.
  DiffOptions options;
  options.budget = &budget;
  auto result = DiffTrees(t1, t2, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.rung, DiffRung::kKeyedStructural);
  EXPECT_TRUE(result->report.degraded);
  EXPECT_EQ(result->report.exhaustion_code, Code::kDeadlineExceeded);
  EXPECT_FALSE(result->report.exhaustion_detail.empty());
  // The degraded script still transforms t1 into t2.
  Tree replay = t1.Clone();
  ASSERT_TRUE(result->script.ApplyTo(&replay).ok());
  EXPECT_TRUE(Tree::Isomorphic(replay, t2));
}

TEST(DiffLadderTest, TinyComparisonCapFallsToStructuralRung) {
  LadderFixture f;
  auto [t1, t2] = f.DocumentPair(6, 20);
  Budget budget;
  budget.set_comparison_cap(3);
  DiffOptions options;
  options.budget = &budget;
  auto result = DiffTrees(t1, t2, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.rung, DiffRung::kKeyedStructural);
  EXPECT_TRUE(result->report.degraded);
  EXPECT_EQ(result->report.exhaustion_code, Code::kResourceExhausted);
  Tree replay = t1.Clone();
  ASSERT_TRUE(result->script.ApplyTo(&replay).ok());
  EXPECT_TRUE(Tree::Isomorphic(replay, t2));
}

TEST(DiffLadderTest, NodeCapTripsScriptGenFallsToTopLevelReplace) {
  LadderFixture f;
  auto [t1, t2] = f.DocumentPair(4, 10);
  // Matching charges ~2n node visits and generation ~2n more; a cap around
  // 3n lets matching finish but trips generation, which is the only path
  // down to the kTopLevelReplace rung.
  const size_t n = t1.size() + t2.size();
  Budget budget;
  budget.set_node_cap(n + n / 2);
  DiffOptions options;
  options.budget = &budget;
  auto result = DiffTrees(t1, t2, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->report.degraded);
  EXPECT_EQ(result->report.exhaustion_code, Code::kResourceExhausted);
  Tree replay = t1.Clone();
  ASSERT_TRUE(result->script.ApplyTo(&replay).ok());
  EXPECT_TRUE(Tree::Isomorphic(replay, t2));
}

TEST(DiffLadderTest, RequestedTopLevelReplaceIsBareReplace) {
  LadderFixture f;
  auto [t1, t2] = f.DocumentPair(3, 5);
  DiffOptions options;
  options.start_rung = DiffRung::kTopLevelReplace;
  auto result = DiffTrees(t1, t2, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.rung, DiffRung::kTopLevelReplace);
  EXPECT_FALSE(result->report.degraded);  // We asked for it.
  // Everything except the root is deleted and re-inserted.
  EXPECT_EQ(result->stats.deletes, t1.size() - 1);
  EXPECT_EQ(result->stats.inserts, t2.size() - 1);
  Tree replay = t1.Clone();
  ASSERT_TRUE(result->script.ApplyTo(&replay).ok());
  EXPECT_TRUE(Tree::Isomorphic(replay, t2));
}

TEST(DiffLadderTest, EveryRungNameIsPrintable) {
  EXPECT_STREQ(DiffRungName(DiffRung::kOptimalZs), "OptimalZs");
  EXPECT_STREQ(DiffRungName(DiffRung::kFastMatch), "FastMatch");
  EXPECT_STREQ(DiffRungName(DiffRung::kKeyedStructural), "KeyedStructural");
  EXPECT_STREQ(DiffRungName(DiffRung::kTopLevelReplace), "TopLevelReplace");
}

// The ISSUE acceptance scenario: a 1 ms deadline on a ~10k-node pair must
// come back OK, quickly, on a degraded rung, with an applying script.
TEST(DiffLadderTest, MillisecondDeadlineOnTenThousandNodePair) {
  LadderFixture f;
  Rng rng(7);
  DocGenParams params;
  params.sections = 60;  // ~5k nodes per tree.
  Tree t1 = GenerateDocument(params, f.vocab, &rng, f.labels);
  SimulatedVersion v = SimulateNewVersion(t1, 50, {}, f.vocab, &rng);
  Tree t2 = std::move(v.new_tree);

  Budget budget = Budget::Deadline(0.001);
  DiffOptions options;
  options.budget = &budget;
  auto result = DiffTrees(t1, t2, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->report.degraded);
  EXPECT_EQ(result->report.exhaustion_code, Code::kDeadlineExceeded);
  Tree replay = t1.Clone();
  ASSERT_TRUE(result->script.ApplyTo(&replay).ok());
  EXPECT_TRUE(Tree::Isomorphic(replay, t2));
}

}  // namespace
}  // namespace treediff
