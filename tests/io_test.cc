#include "util/io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "util/crc32c.h"
#include "util/fault_env.h"

namespace treediff {
namespace {

// ---------------------------------------------------------------------------
// CRC32C

TEST(Crc32cTest, KnownAnswers) {
  // The standard CRC-32C check value.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  // From the iSCSI specification test vectors: 32 zero bytes.
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
  std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones), 0x62A8AB43u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "hello, commit log";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32cExtend(0, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, Crc32c(data)) << "split at " << split;
  }
}

TEST(Crc32cTest, MaskRoundTripsAndDiffers) {
  for (uint32_t crc : {0u, 1u, 0xE3069283u, 0xFFFFFFFFu, 0xdeadbeefu}) {
    EXPECT_EQ(Crc32cUnmask(Crc32cMask(crc)), crc);
    EXPECT_NE(Crc32cMask(crc), crc);
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t good = Crc32c(data);
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<char>(1 << bit);
      EXPECT_NE(Crc32c(data), good) << "byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<char>(1 << bit);
    }
  }
}

// ---------------------------------------------------------------------------
// PosixEnv

TEST(PosixEnvTest, WriteReadRenameTruncate) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "treediff_io_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string tmp = (dir / "f.tmp").string();
  const std::string path = (dir / "f").string();

  Env* env = Env::Default();
  {
    auto file = env->NewWritableFile(tmp, /*truncate=*/true);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    ASSERT_TRUE((*file)->Append("hello ").ok());
    ASSERT_TRUE((*file)->Append("world").ok());
    ASSERT_TRUE((*file)->Sync().ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  EXPECT_TRUE(env->FileExists(tmp));
  EXPECT_FALSE(env->FileExists(path));
  ASSERT_TRUE(env->RenameFile(tmp, path).ok());
  EXPECT_FALSE(env->FileExists(tmp));
  ASSERT_TRUE(env->FileExists(path));

  {
    auto file = env->NewRandomAccessFile(path);
    ASSERT_TRUE(file.ok());
    auto size = (*file)->Size();
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(*size, 11u);
    auto all = (*file)->Read(0, 11);
    ASSERT_TRUE(all.ok());
    EXPECT_EQ(*all, "hello world");
    auto mid = (*file)->Read(6, 5);
    ASSERT_TRUE(mid.ok());
    EXPECT_EQ(*mid, "world");
    // Short read at EOF is not an error.
    auto past = (*file)->Read(6, 100);
    ASSERT_TRUE(past.ok());
    EXPECT_EQ(*past, "world");
    auto beyond = (*file)->Read(100, 4);
    ASSERT_TRUE(beyond.ok());
    EXPECT_EQ(*beyond, "");
  }

  // Append mode preserves existing content.
  {
    auto file = env->NewWritableFile(path, /*truncate=*/false);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("!").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  ASSERT_TRUE(env->TruncateFile(path, 5).ok());
  {
    auto file = env->NewRandomAccessFile(path);
    ASSERT_TRUE(file.ok());
    auto all = (*file)->Read(0, 100);
    ASSERT_TRUE(all.ok());
    EXPECT_EQ(*all, "hello");
  }
  ASSERT_TRUE(env->DeleteFile(path).ok());
  EXPECT_FALSE(env->FileExists(path));
  EXPECT_FALSE(env->NewRandomAccessFile(path).ok());
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// MemEnv

TEST(MemEnvTest, DropUnsyncedKeepsOnlySyncedPrefix) {
  MemEnv env;
  auto file = env.NewWritableFile("f", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("durable").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append(" volatile").ok());
  // No sync after the second append: a power loss loses it.
  env.DropUnsynced();
  auto bytes = env.FileBytes("f");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "durable");
}

TEST(MemEnvTest, RenameIsAtomicPublish) {
  MemEnv env;
  auto file = env.NewWritableFile("f.tmp", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("payload").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());
  ASSERT_TRUE(env.RenameFile("f.tmp", "f").ok());
  EXPECT_FALSE(env.FileExists("f.tmp"));
  ASSERT_TRUE(env.FileExists("f"));
  auto bytes = env.FileBytes("f");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "payload");
  EXPECT_FALSE(env.RenameFile("missing", "x").ok());
}

TEST(MemEnvTest, CorruptByteFlipsExactlyOneByte) {
  MemEnv env;
  auto file = env.NewWritableFile("f", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("abcd").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE(env.CorruptByte("f", 2, 0x01).ok());
  auto bytes = env.FileBytes("f");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "abbd");  // 'c' ^ 0x01 == 'b'
  EXPECT_FALSE(env.CorruptByte("f", 99, 0x01).ok());
  EXPECT_FALSE(env.CorruptByte("missing", 0, 0x01).ok());
}

TEST(MemEnvTest, TruncateAdjustsSyncedWatermark) {
  MemEnv env;
  auto file = env.NewWritableFile("f", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("0123456789").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE(env.TruncateFile("f", 4).ok());
  env.DropUnsynced();  // Nothing beyond the truncation point may resurface.
  auto bytes = env.FileBytes("f");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "0123");
}

TEST(MemEnvTest, RenameClobbersExistingDestination) {
  // rename(2) semantics: an existing destination is atomically replaced —
  // exactly what log rotation leans on when it swaps the fresh log over
  // the old path.
  MemEnv env;
  auto old_file = env.NewWritableFile("f", true);
  ASSERT_TRUE(old_file.ok());
  ASSERT_TRUE((*old_file)->Append("old contents").ok());
  ASSERT_TRUE((*old_file)->Sync().ok());
  ASSERT_TRUE((*old_file)->Close().ok());
  auto new_file = env.NewWritableFile("f.tmp", true);
  ASSERT_TRUE(new_file.ok());
  ASSERT_TRUE((*new_file)->Append("new").ok());
  ASSERT_TRUE((*new_file)->Sync().ok());
  ASSERT_TRUE((*new_file)->Close().ok());
  ASSERT_TRUE(env.RenameFile("f.tmp", "f").ok());
  EXPECT_FALSE(env.FileExists("f.tmp"));
  auto bytes = env.FileBytes("f");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "new");  // The destination was replaced, not appended.
}

TEST(MemEnvTest, TruncateBeyondEofZeroFillsUndurably) {
  // ftruncate(2) semantics: extending zero-fills, and the extension is
  // page cache until the next fsync — a power loss takes it back.
  MemEnv env;
  auto file = env.NewWritableFile("f", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("abc").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE(env.TruncateFile("f", 6).ok());
  auto bytes = env.FileBytes("f");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, std::string("abc\0\0\0", 6));
  env.DropUnsynced();
  bytes = env.FileBytes("f");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "abc");  // The unsynced extension did not survive.
}

TEST(MemEnvTest, CorruptByteReachesTheUnsyncedSuffix) {
  // Bit rot is not limited to durable bytes: dirty pages can rot too, and
  // whatever rots there still vanishes with the page cache.
  MemEnv env;
  auto file = env.NewWritableFile("f", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("sync").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append("dirt").ok());
  ASSERT_TRUE(env.CorruptByte("f", 5, 0x04).ok());  // 'i' ^ 0x04 == 'm'
  auto bytes = env.FileBytes("f");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "syncdmrt");
  env.DropUnsynced();
  bytes = env.FileBytes("f");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "sync");
}

// ---------------------------------------------------------------------------
// FaultInjectingEnv

TEST(FaultEnvTest, CrashAtByteTearsTheWrite) {
  MemEnv mem;
  FaultPlan plan;
  plan.crash_at_byte = 6;
  FaultInjectingEnv env(&mem, plan);
  auto file = env.NewWritableFile("f", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("0123").ok());
  EXPECT_FALSE(env.down());
  // This append crosses the threshold: only the prefix up to byte 6 lands.
  EXPECT_FALSE((*file)->Append("456789").ok());
  EXPECT_TRUE(env.down());
  auto bytes = mem.FileBytes("f");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "012345");
  // Down env rejects everything until restart.
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_FALSE(env.NewWritableFile("g", true).ok());
  env.ClearFault();
  EXPECT_TRUE(env.NewWritableFile("g", true).ok());
}

TEST(FaultEnvTest, FailSyncLeavesDataUndurable) {
  MemEnv mem;
  FaultPlan plan;
  plan.fail_sync_at = 2;
  FaultInjectingEnv env(&mem, plan);
  auto file = env.NewWritableFile("f", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("first").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append("second").ok());
  EXPECT_FALSE((*file)->Sync().ok());  // Injected failure.
  EXPECT_TRUE(env.down());
  EXPECT_EQ(env.sync_calls(), 2u);
  mem.DropUnsynced();
  auto bytes = mem.FileBytes("f");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "first");
}

TEST(FaultEnvTest, CrashDuringSyncIsAmbiguous) {
  MemEnv mem;
  FaultPlan plan;
  plan.crash_during_sync_at = 1;
  FaultInjectingEnv env(&mem, plan);
  auto file = env.NewWritableFile("f", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("data").ok());
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_TRUE(env.down());
  // The sync never completed: after the crash the bytes are gone.
  mem.DropUnsynced();
  auto bytes = mem.FileBytes("f");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "");
}

TEST(FaultEnvTest, CountsBytesAcrossFiles) {
  MemEnv mem;
  FaultInjectingEnv env(&mem);
  auto a = env.NewWritableFile("a", true);
  auto b = env.NewWritableFile("b", true);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE((*a)->Append("12345").ok());
  ASSERT_TRUE((*b)->Append("678").ok());
  EXPECT_EQ(env.bytes_written(), 8u);
}

}  // namespace
}  // namespace treediff
