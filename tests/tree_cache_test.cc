#include "service/tree_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "tree/builder.h"

namespace treediff {
namespace {

struct Fixture {
  std::shared_ptr<LabelTable> labels = std::make_shared<LabelTable>();
  Tree Parse(const std::string& s) { return *ParseSexpr(s, labels); }
};

TEST(TreeCacheTest, InsertThenLookupHits) {
  Fixture f;
  TreeCache cache({.capacity_bytes = 1u << 20, .shards = 4});
  const uint64_t key = TreeCache::FingerprintText("sexpr", "(D (S \"a\"))");
  EXPECT_EQ(cache.Lookup(key), nullptr);
  auto inserted = cache.Insert(key, f.Parse("(D (S \"a\"))"));
  ASSERT_NE(inserted, nullptr);
  auto found = cache.Lookup(key);
  EXPECT_EQ(found.get(), inserted.get());
  const TreeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(TreeCacheTest, EntriesArePublishedFrozenAndWarm) {
  Fixture f;
  TreeCache cache({.capacity_bytes = 1u << 20, .shards = 1});
  auto entry = cache.Insert(1, f.Parse("(D (P (S \"x\") (S \"y\")))"));
  EXPECT_TRUE(entry->tree.Frozen());
  EXPECT_TRUE(entry->index.attached());
  EXPECT_EQ(&entry->index.tree(), &entry->tree);
  // A clone of a frozen tree starts unfrozen (the generator's working-copy
  // path relies on this).
  Tree clone = entry->tree.Clone();
  EXPECT_FALSE(clone.Frozen());
  EXPECT_TRUE(clone.UpdateValue(clone.Leaves()[0], "edited").ok());
}

TEST(TreeCacheTest, DuplicateInsertFirstWins) {
  Fixture f;
  TreeCache cache({.capacity_bytes = 1u << 20, .shards = 2});
  auto first = cache.Insert(42, f.Parse("(D (S \"same\"))"));
  auto second = cache.Insert(42, f.Parse("(D (S \"same\"))"));
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(TreeCacheTest, EvictsLruButPinnedEntriesSurvive) {
  Fixture f;
  // Tiny budget: each parsed doc is a few hundred bytes, so a handful of
  // inserts must evict.
  TreeCache cache({.capacity_bytes = 2048, .shards = 1});
  auto pinned = cache.Insert(0, f.Parse("(D (S \"keep me pinned\"))"));
  for (uint64_t k = 1; k <= 16; ++k) {
    cache.Insert(k, f.Parse("(D (S \"filler number " + std::to_string(k) +
                            " with some padding text\"))"));
  }
  const TreeCache::Stats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LT(stats.entries, 17u);
  // The evicted entry is gone from the cache but the shared_ptr keeps the
  // tree alive and readable.
  EXPECT_EQ(cache.Lookup(0), nullptr);
  EXPECT_EQ(pinned->tree.value(pinned->tree.Leaves()[0]), "keep me pinned");
}

TEST(TreeCacheTest, NeverEvictsBelowOneEntryPerShard) {
  Fixture f;
  TreeCache cache({.capacity_bytes = 1, .shards = 1});  // Absurdly small.
  auto entry = cache.Insert(7, f.Parse("(D (S \"oversized for budget\"))"));
  ASSERT_NE(entry, nullptr);
  // The over-budget entry is still served (a single huge document must not
  // make the cache useless).
  EXPECT_NE(cache.Lookup(7), nullptr);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(TreeCacheTest, FingerprintsSeparateFormatsAndContents) {
  const uint64_t sexpr = TreeCache::FingerprintText("sexpr", "(D)");
  const uint64_t xml = TreeCache::FingerprintText("xml", "(D)");
  const uint64_t other = TreeCache::FingerprintText("sexpr", "(P)");
  EXPECT_NE(sexpr, xml);  // Same bytes, different parser -> different tree.
  EXPECT_NE(sexpr, other);
  EXPECT_EQ(sexpr, TreeCache::FingerprintText("sexpr", "(D)"));

  EXPECT_NE(TreeCache::FingerprintVersion("doc", 1),
            TreeCache::FingerprintVersion("doc", 2));
  EXPECT_NE(TreeCache::FingerprintVersion("doc", 1),
            TreeCache::FingerprintVersion("cod", 1));
}

TEST(TreeCacheTest, ConcurrentInsertAndLookupConverge) {
  Fixture f;
  TreeCache cache({.capacity_bytes = 4u << 20, .shards = 8});
  // Pre-parse in one thread: LabelTable interning order stays fixed.
  std::vector<std::string> docs;
  for (int i = 0; i < 16; ++i) {
    docs.push_back("(D (P (S \"doc " + std::to_string(i) + " text\")))");
  }
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 200; ++round) {
        const int i = (t + round) % 16;
        const uint64_t key = TreeCache::FingerprintText("sexpr", docs[i]);
        auto entry = cache.Lookup(key);
        if (entry == nullptr) {
          entry = cache.Insert(key, *ParseSexpr(docs[i], f.labels));
        }
        // Every thread must observe the same (frozen) content under a key.
        if (entry->tree.value(entry->tree.Leaves()[0]) !=
            "doc " + std::to_string(i) + " text") {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const TreeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 16u);
  EXPECT_GE(stats.hits, 8u * 200u - 16u * 8u);  // Most rounds hit.
}

}  // namespace
}  // namespace treediff
