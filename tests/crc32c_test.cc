#include "util/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "util/random.h"

namespace treediff {
namespace {

// The RFC 3720 check value: CRC-32C("123456789") = 0xE3069283.
TEST(Crc32cTest, KnownVectors) {
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  // 32 zero bytes (iSCSI test vector).
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
  // 32 bytes of 0xFF.
  const std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones), 0x62A8AB43u);
}

TEST(Crc32cTest, SoftwarePathMatchesKnownVectors) {
  EXPECT_EQ(internal::Crc32cExtendSoftware(0, "123456789", 9), 0xE3069283u);
}

// The dispatched path (hardware when the CPU has it) must agree with the
// portable tables on arbitrary buffers at every offset and length — this is
// the test that licenses writing a log on one machine and verifying it on
// another.
TEST(Crc32cTest, HardwareAgreesWithSoftware) {
  Rng rng(20260806);
  std::string buf(4096, '\0');
  for (char& c : buf) c = static_cast<char>(rng.Uniform(256));
  for (size_t len : {0u, 1u, 2u, 3u, 7u, 8u, 9u, 15u, 63u, 64u, 65u, 255u,
                     1024u, 4096u}) {
    for (size_t offset : {0u, 1u, 3u}) {
      if (offset + len > buf.size()) continue;
      const uint32_t sw =
          internal::Crc32cExtendSoftware(0, buf.data() + offset, len);
      const uint32_t dispatched = Crc32cExtend(0, buf.data() + offset, len);
      EXPECT_EQ(dispatched, sw) << "len=" << len << " offset=" << offset
                                << " hw=" << Crc32cHardwareEnabled();
    }
  }
}

// Extending incrementally over chunks must equal one shot over the
// concatenation, across the software/hardware boundary too.
TEST(Crc32cTest, IncrementalEqualsOneShot) {
  const std::string data =
      "The quick brown fox jumps over the lazy dog, repeatedly, until the "
      "checksum stabilizes across every chunking of the same bytes.";
  const uint32_t one_shot = Crc32c(data);
  for (size_t cut = 0; cut <= data.size(); cut += 7) {
    uint32_t crc = Crc32cExtend(0, data.data(), cut);
    crc = Crc32cExtend(crc, data.data() + cut, data.size() - cut);
    EXPECT_EQ(crc, one_shot) << "cut=" << cut;
  }
}

TEST(Crc32cTest, MaskRoundTrips) {
  for (uint32_t crc : {0u, 1u, 0xE3069283u, 0xFFFFFFFFu, 0x8A9136AAu}) {
    EXPECT_EQ(Crc32cUnmask(Crc32cMask(crc)), crc);
    EXPECT_NE(Crc32cMask(crc), crc);  // Masking must change the value.
  }
}

}  // namespace
}  // namespace treediff
