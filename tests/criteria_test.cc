#include "core/criteria.h"

#include <gtest/gtest.h>

#include <memory>

#include "tree/builder.h"

namespace treediff {
namespace {

class CriteriaTest : public ::testing::Test {
 protected:
  CriteriaTest() {
    labels_ = std::make_shared<LabelTable>();
    t1_ = *ParseSexpr(
        "(D (P (S \"alpha beta gamma delta\") (S \"one two three\")) "
        "(P (S \"unrelated sentence here\")))",
        labels_);
    t2_ = *ParseSexpr(
        "(D (P (S \"alpha beta gamma zeta\") (S \"one two three\")) "
        "(P (S \"something else entirely now\")))",
        labels_);
  }

  std::shared_ptr<LabelTable> labels_;
  Tree t1_{nullptr}, t2_{nullptr};
  WordLcsComparator cmp_;
};

TEST_F(CriteriaTest, LeafEqualRespectsThresholdF) {
  NodeId s1 = t1_.children(t1_.children(t1_.root())[0])[0];
  NodeId s2 = t2_.children(t2_.children(t2_.root())[0])[0];
  // Distance: 4+4 words, LCS 3 -> (8-6)/4 = 0.5.
  {
    CriteriaEvaluator eval(t1_, t2_, &cmp_, {.leaf_threshold_f = 0.5});
    EXPECT_TRUE(eval.LeafEqual(s1, s2));
  }
  {
    CriteriaEvaluator eval(t1_, t2_, &cmp_, {.leaf_threshold_f = 0.4});
    EXPECT_FALSE(eval.LeafEqual(s1, s2));
  }
}

TEST_F(CriteriaTest, LeafEqualRequiresSameLabel) {
  // Compare a sentence against the paragraph (different labels).
  NodeId s1 = t1_.children(t1_.children(t1_.root())[0])[0];
  NodeId p2 = t2_.children(t2_.root())[0];
  CriteriaEvaluator eval(t1_, t2_, &cmp_, {});
  EXPECT_FALSE(eval.LeafEqual(s1, p2));
}

TEST_F(CriteriaTest, CommonLeavesCountsMatchedDescendants) {
  CriteriaEvaluator eval(t1_, t2_, &cmp_, {});
  Matching m(t1_.id_bound(), t2_.id_bound());
  NodeId p1 = t1_.children(t1_.root())[0];
  NodeId p2 = t2_.children(t2_.root())[0];
  EXPECT_EQ(eval.CommonLeaves(p1, p2, m), 0);  // Nothing matched yet.
  m.Add(t1_.children(p1)[0], t2_.children(p2)[0]);
  m.Add(t1_.children(p1)[1], t2_.children(p2)[1]);
  EXPECT_EQ(eval.CommonLeaves(p1, p2, m), 2);
  // A leaf matched outside y's subtree does not count.
  Matching cross(t1_.id_bound(), t2_.id_bound());
  cross.Add(t1_.children(p1)[0],
            t2_.children(t2_.children(t2_.root())[1])[0]);
  EXPECT_EQ(eval.CommonLeaves(p1, p2, cross), 0);
}

TEST_F(CriteriaTest, InternalEqualThresholdT) {
  NodeId p1 = t1_.children(t1_.root())[0];
  NodeId p2 = t2_.children(t2_.root())[0];
  Matching m(t1_.id_bound(), t2_.id_bound());
  m.Add(t1_.children(p1)[0], t2_.children(p2)[0]);
  // 1 of 2 leaves matched: ratio 0.5, needs > t.
  {
    CriteriaEvaluator eval(t1_, t2_, &cmp_, {.internal_threshold_t = 0.6});
    EXPECT_FALSE(eval.InternalEqual(p1, p2, m));
  }
  m.Add(t1_.children(p1)[1], t2_.children(p2)[1]);
  {
    CriteriaEvaluator eval(t1_, t2_, &cmp_, {.internal_threshold_t = 0.6});
    EXPECT_TRUE(eval.InternalEqual(p1, p2, m));  // 2/2 = 1.0 > 0.6.
  }
}

TEST_F(CriteriaTest, InternalEqualUsesMaxOfSizes) {
  // D in t1 has 3 leaves, D in t2 has 3 leaves; match only both paragraphs'
  // first sentences via a partial matching and check the root ratio 1/3.
  Matching m(t1_.id_bound(), t2_.id_bound());
  NodeId p1 = t1_.children(t1_.root())[0];
  NodeId p2 = t2_.children(t2_.root())[0];
  m.Add(t1_.children(p1)[0], t2_.children(p2)[0]);
  CriteriaEvaluator eval(t1_, t2_, &cmp_, {.internal_threshold_t = 0.5});
  EXPECT_FALSE(eval.InternalEqual(t1_.root(), t2_.root(), m));  // 1/3.
  m.Add(t1_.children(p1)[1], t2_.children(p2)[1]);
  EXPECT_TRUE(eval.InternalEqual(t1_.root(), t2_.root(), m));  // 2/3 > 0.5.
}

TEST_F(CriteriaTest, LeafCountAccessors) {
  CriteriaEvaluator eval(t1_, t2_, &cmp_, {});
  EXPECT_EQ(eval.LeafCount1(t1_.root()), 3);
  EXPECT_EQ(eval.LeafCount2(t2_.root()), 3);
  EXPECT_EQ(eval.LeafCount1(t1_.children(t1_.root())[0]), 2);
}

TEST_F(CriteriaTest, PartnerCheckCounterAdvances) {
  CriteriaEvaluator eval(t1_, t2_, &cmp_, {});
  Matching m(t1_.id_bound(), t2_.id_bound());
  EXPECT_EQ(eval.partner_checks(), 0u);
  eval.CommonLeaves(t1_.root(), t2_.root(), m);
  EXPECT_EQ(eval.partner_checks(), 3u);  // One per leaf under x.
}

TEST_F(CriteriaTest, CompareCallCounterDelegatesToComparator) {
  CriteriaEvaluator eval(t1_, t2_, &cmp_, {});
  const size_t before = eval.compare_calls();
  NodeId s1 = t1_.children(t1_.children(t1_.root())[0])[0];
  NodeId s2 = t2_.children(t2_.children(t2_.root())[0])[0];
  eval.LeafEqual(s1, s2);
  EXPECT_EQ(eval.compare_calls(), before + 1);
}

}  // namespace
}  // namespace treediff
