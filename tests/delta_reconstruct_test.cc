// The Section 6 correctness property, strengthened: a delta tree is a
// lossless superimposition of both versions. ReconstructOldVersion and
// ReconstructNewVersion must recover trees isomorphic to t1 and t2 from the
// delta alone, on hand-written cases and random workloads.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/diff.h"
#include "gen/doc_gen.h"
#include "gen/edit_sim.h"
#include "tree/builder.h"

namespace treediff {
namespace {

struct Fixture {
  std::shared_ptr<LabelTable> labels = std::make_shared<LabelTable>();

  Tree Parse(const std::string& s) { return *ParseSexpr(s, labels); }

  void CheckRoundTrip(const Tree& t1, const Tree& t2) {
    auto diff = DiffTrees(t1, t2);
    ASSERT_TRUE(diff.ok()) << diff.status().ToString();
    auto delta = BuildDeltaTree(t1, t2, *diff);
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();
    auto old_again = ReconstructOldVersion(*delta, labels);
    ASSERT_TRUE(old_again.ok()) << old_again.status().ToString();
    EXPECT_TRUE(Tree::Isomorphic(*old_again, t1))
        << "old:   " << t1.ToDebugString() << "\nrecon: "
        << old_again->ToDebugString() << "\ndelta: "
        << delta->ToDebugString(*labels);
    auto new_again = ReconstructNewVersion(*delta, labels);
    ASSERT_TRUE(new_again.ok()) << new_again.status().ToString();
    EXPECT_TRUE(Tree::Isomorphic(*new_again, t2))
        << "new:   " << t2.ToDebugString() << "\nrecon: "
        << new_again->ToDebugString();
  }
};

TEST(DeltaReconstructTest, Identical) {
  Fixture f;
  Tree t1 = f.Parse("(D (P (S \"a a\") (S \"b b\")))");
  Tree t2 = f.Parse("(D (P (S \"a a\") (S \"b b\")))");
  f.CheckRoundTrip(t1, t2);
}

TEST(DeltaReconstructTest, InsertDeleteUpdate) {
  Fixture f;
  Tree t1 = f.Parse(
      "(D (P (S \"one two three\") (S \"doomed here now\") "
      "(S \"four five six\")))");
  Tree t2 = f.Parse(
      "(D (P (S \"one two three\") (S \"four five seven\") "
      "(S \"fresh insert here\")))");
  f.CheckRoundTrip(t1, t2);
}

TEST(DeltaReconstructTest, SentenceMove) {
  Fixture f;
  Tree t1 = f.Parse(
      "(D (P (S \"mover goes far\") (S \"stay a\") (S \"stay b\")) "
      "(P (S \"stay c\") (S \"stay d\")))");
  Tree t2 = f.Parse(
      "(D (P (S \"stay a\") (S \"stay b\")) "
      "(P (S \"stay c\") (S \"stay d\") (S \"mover goes far\")))");
  f.CheckRoundTrip(t1, t2);
}

TEST(DeltaReconstructTest, MovedSubtreeWithInternalEdits) {
  Fixture f;
  // A paragraph moves across sections AND gains/loses sentences: the old
  // subtree must be recovered from the marker's children plus tombstones.
  Tree t1 = f.Parse(
      "(D (Sec (S \"a1 a1\") (S \"a2 a2\") (S \"a3 a3\") (S \"a4 a4\") "
      "(P (S \"m1 m1 m1\") (S \"m2 m2 m2\") (S \"gone gone gone\"))) "
      "(Sec (S \"b1 b1\") (S \"b2 b2\") (S \"b3 b3\") (S \"b4 b4\")))");
  Tree t2 = f.Parse(
      "(D (Sec (S \"a1 a1\") (S \"a2 a2\") (S \"a3 a3\") (S \"a4 a4\")) "
      "(Sec (S \"b1 b1\") (S \"b2 b2\") (S \"b3 b3\") (S \"b4 b4\") "
      "(P (S \"m1 m1 m1\") (S \"m2 m2 m2\") (S \"added added\"))))");
  f.CheckRoundTrip(t1, t2);
}

TEST(DeltaReconstructTest, IntraParentReorder) {
  Fixture f;
  Tree t1 = f.Parse(
      "(D (S \"s1 s1\") (S \"s2 s2\") (S \"s3 s3\") (S \"s4 s4\"))");
  Tree t2 = f.Parse(
      "(D (S \"s3 s3\") (S \"s1 s1\") (S \"s2 s2\") (S \"s4 s4\"))");
  f.CheckRoundTrip(t1, t2);
}

TEST(DeltaReconstructTest, WholeSubtreeDeleted) {
  Fixture f;
  Tree t1 = f.Parse(
      "(D (P (S \"keep one two\")) (P (S \"dead a b\") (S \"dead c d\")))");
  Tree t2 = f.Parse("(D (P (S \"keep one two\")))");
  f.CheckRoundTrip(t1, t2);
}

TEST(DeltaReconstructTest, WholeSubtreeInserted) {
  Fixture f;
  Tree t1 = f.Parse("(D (P (S \"keep one two\")))");
  Tree t2 = f.Parse(
      "(D (P (S \"keep one two\")) (P (S \"new a b\") (S \"new c d\")))");
  f.CheckRoundTrip(t1, t2);
}

TEST(DeltaReconstructTest, EmptyDeltaRejected) {
  DeltaTree empty;
  auto labels = std::make_shared<LabelTable>();
  EXPECT_FALSE(ReconstructOldVersion(empty, labels).ok());
  EXPECT_FALSE(ReconstructNewVersion(empty, labels).ok());
}

class DeltaReconstructPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(DeltaReconstructPropertyTest, RandomWorkloadsRoundTrip) {
  const auto [sections, edits, seed] = GetParam();
  Vocabulary vocab(400, 1.0);
  Rng rng(seed);
  DocGenParams params;
  params.sections = sections;
  Fixture f;
  Tree t1 = GenerateDocument(params, vocab, &rng, f.labels);
  SimulatedVersion v = SimulateNewVersion(t1, edits, {}, vocab, &rng);
  f.CheckRoundTrip(t1, v.new_tree);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeltaReconstructPropertyTest,
    ::testing::Values(std::make_tuple(2, 2, 21ull),
                      std::make_tuple(3, 6, 22ull),
                      std::make_tuple(4, 10, 23ull),
                      std::make_tuple(5, 15, 24ull),
                      std::make_tuple(6, 25, 25ull),
                      std::make_tuple(3, 40, 26ull),
                      std::make_tuple(8, 20, 27ull),
                      std::make_tuple(2, 0, 28ull)));

}  // namespace
}  // namespace treediff
