// Additional facade coverage: threshold grids, context completion on
// documents, cross-format consistency, and error paths.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/diff.h"
#include "gen/doc_gen.h"
#include "gen/edit_sim.h"
#include "tree/builder.h"

namespace treediff {
namespace {

/// The pipeline's correctness invariants must hold for every legal
/// (f, t) threshold combination — thresholds shape the matching quality,
/// never the script's validity.
class ThresholdGridTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ThresholdGridTest, CorrectAcrossThresholds) {
  const auto [f_param, t_param] = GetParam();
  Vocabulary vocab(400, 1.0);
  Rng rng(901);
  DocGenParams params;
  params.sections = 3;
  auto labels = std::make_shared<LabelTable>();
  Tree t1 = GenerateDocument(params, vocab, &rng, labels);
  SimulatedVersion v = SimulateNewVersion(t1, 12, {}, vocab, &rng);

  DiffOptions options;
  options.leaf_threshold_f = f_param;
  options.internal_threshold_t = t_param;
  auto diff = DiffTrees(t1, v.new_tree, options);
  ASSERT_TRUE(diff.ok()) << "f=" << f_param << " t=" << t_param << ": "
                         << diff.status().ToString();
  Tree replay = t1.Clone();
  ASSERT_TRUE(diff->script.ApplyTo(&replay).ok());
  EXPECT_TRUE(Tree::Isomorphic(replay, v.new_tree))
      << "f=" << f_param << " t=" << t_param;

  auto delta = BuildDeltaTree(t1, v.new_tree, *diff);
  ASSERT_TRUE(delta.ok());
  auto old_again = ReconstructOldVersion(*delta, labels);
  ASSERT_TRUE(old_again.ok());
  EXPECT_TRUE(Tree::Isomorphic(*old_again, t1))
      << "f=" << f_param << " t=" << t_param;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ThresholdGridTest,
    ::testing::Combine(::testing::Values(0.0, 0.2, 0.5, 0.8, 1.0),
                       ::testing::Values(0.5, 0.6, 0.8, 1.0)));

TEST(DiffMoreTest, LooserLeafThresholdNeverRaisesCost) {
  // A larger f admits more leaf matches; by Lemma 5.1 the script should not
  // get costlier (deterministic workload, so this is a fixed check).
  Vocabulary vocab(400, 1.0);
  Rng rng(902);
  DocGenParams params;
  params.sections = 3;
  auto labels = std::make_shared<LabelTable>();
  Tree t1 = GenerateDocument(params, vocab, &rng, labels);
  EditMix mix;
  mix.update_word_churn = 0.3;  // Updates near the threshold boundary.
  SimulatedVersion v = SimulateNewVersion(t1, 15, mix, vocab, &rng);

  double prev = 1e100;
  for (double f_param : {0.1, 0.3, 0.5, 0.8}) {
    DiffOptions options;
    options.leaf_threshold_f = f_param;
    options.post_process = false;
    auto diff = DiffTrees(t1, v.new_tree, options);
    ASSERT_TRUE(diff.ok());
    EXPECT_LE(diff->stats.script_cost, prev + 1e-9) << "f=" << f_param;
    prev = diff->stats.script_cost;
  }
}

TEST(DiffMoreTest, ContextCompletionIsNoopOnCleanDocuments) {
  // When everything already matches under the criteria, the completion pass
  // must not change the outcome.
  Vocabulary vocab(600, 0.8);
  Rng rng(903);
  DocGenParams params;
  params.sections = 3;
  auto labels = std::make_shared<LabelTable>();
  Tree t1 = GenerateDocument(params, vocab, &rng, labels);
  SimulatedVersion v = SimulateNewVersion(t1, 5, {}, vocab, &rng);

  DiffOptions with;
  with.complete_context = true;
  DiffOptions without;
  without.complete_context = false;
  auto a = DiffTrees(t1, v.new_tree, with);
  auto b = DiffTrees(t1, v.new_tree, without);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Completion can only add pairs; on this workload it should add few and
  // never increase the cost.
  EXPECT_LE(a->stats.script_cost, b->stats.script_cost + 1e-9);
}

TEST(DiffMoreTest, ContextCompletionRescuesShortValues) {
  auto labels = std::make_shared<LabelTable>();
  Tree t1 = *ParseSexpr(
      "(db (row (cell \"1\") (cell \"2\")) (row (cell \"3\") (cell \"4\")))",
      labels);
  Tree t2 = *ParseSexpr(
      "(db (row (cell \"1\") (cell \"9\")) (row (cell \"3\") (cell \"4\")))",
      labels);
  DiffOptions options;
  options.complete_context = true;
  options.internal_threshold_t = 0.5;
  auto diff = DiffTrees(t1, t2, options);
  ASSERT_TRUE(diff.ok());
  // "2" -> "9" has compare distance 2 (single disjoint tokens); without
  // completion this is delete+insert, with it a single update.
  EXPECT_EQ(diff->stats.updates, 1u);
  EXPECT_EQ(diff->stats.inserts, 0u);
  EXPECT_EQ(diff->stats.deletes, 0u);
  EXPECT_GT(diff->stats.context_completed, 0u);
}

TEST(DiffMoreTest, StatsContextCountZeroWhenDisabled) {
  auto labels = std::make_shared<LabelTable>();
  Tree t1 = *ParseSexpr("(db (cell \"1\"))", labels);
  Tree t2 = *ParseSexpr("(db (cell \"2\"))", labels);
  auto diff = DiffTrees(t1, t2);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->stats.context_completed, 0u);
}

TEST(DiffMoreTest, RootLabelMismatchReportsCleanError) {
  auto labels = std::make_shared<LabelTable>();
  Tree t1 = *ParseSexpr("(alpha (S \"x\"))", labels);
  Tree t2 = *ParseSexpr("(beta (S \"x\"))", labels);
  auto diff = DiffTrees(t1, t2);
  ASSERT_FALSE(diff.ok());
  EXPECT_EQ(diff.status().code(), Code::kFailedPrecondition);
  EXPECT_NE(diff.status().message().find("WrapRoot"), std::string::npos);
}

TEST(DiffMoreTest, WrapRootWorkflowEndToEnd) {
  // The documented recipe for unmatchable roots: wrap both, then diff.
  auto labels = std::make_shared<LabelTable>();
  Tree t1 = *ParseSexpr("(alpha (S \"shared text here\"))", labels);
  Tree t2 = *ParseSexpr("(beta (S \"shared text here\"))", labels);
  LabelId wrapper = labels->Intern("__root__");
  t1.WrapRoot(wrapper);
  t2.WrapRoot(wrapper);
  auto diff = DiffTrees(t1, t2);
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  Tree replay = t1.Clone();
  ASSERT_TRUE(diff->script.ApplyTo(&replay).ok());
  EXPECT_TRUE(Tree::Isomorphic(replay, t2));
  // The shared sentence survives as a move, not delete+insert.
  EXPECT_EQ(diff->stats.moves, 1u);
}

TEST(DiffMoreTest, FullyDeterministicAcrossRuns) {
  // Same inputs must give byte-identical scripts and delta trees (no
  // unordered-container iteration order may leak into results).
  Vocabulary vocab(500, 1.0);
  Rng rng(904);
  DocGenParams params;
  params.sections = 4;
  params.duplicate_sentence_probability = 0.05;  // Exercise the repair path.
  auto labels = std::make_shared<LabelTable>();
  Tree t1 = GenerateDocument(params, vocab, &rng, labels);
  SimulatedVersion v = SimulateNewVersion(t1, 15, {}, vocab, &rng);

  DiffOptions options;
  options.complete_context = true;
  auto a = DiffTrees(t1, v.new_tree, options);
  auto b = DiffTrees(t1, v.new_tree, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->script.ToString(*labels), b->script.ToString(*labels));
  EXPECT_EQ(a->matching.Pairs(), b->matching.Pairs());
  auto da = BuildDeltaTree(t1, v.new_tree, *a);
  auto db = BuildDeltaTree(t1, v.new_tree, *b);
  ASSERT_TRUE(da.ok());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(da->ToDebugString(*labels), db->ToDebugString(*labels));
}

}  // namespace
}  // namespace treediff
