#include "core/match.h"

#include <gtest/gtest.h>

#include <memory>

#include "tree/builder.h"

namespace treediff {
namespace {

struct Fixture {
  std::shared_ptr<LabelTable> labels = std::make_shared<LabelTable>();
  WordLcsComparator cmp;

  Tree Parse(const std::string& s) { return *ParseSexpr(s, labels); }
};

TEST(MatchTest, IdenticalTreesMatchCompletely) {
  Fixture f;
  Tree t1 = f.Parse("(D (P (S \"a a a\") (S \"b b b\")) (P (S \"c c c\")))");
  Tree t2 = f.Parse("(D (P (S \"a a a\") (S \"b b b\")) (P (S \"c c c\")))");
  CriteriaEvaluator eval(t1, t2, &f.cmp, {});
  Matching m = ComputeMatch(t1, t2, eval);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_EQ(m.PartnerOfT1(t1.root()), t2.root());
}

TEST(MatchTest, CompletelyDifferentLeavesMatchNothing) {
  Fixture f;
  Tree t1 = f.Parse("(D (P (S \"aaa bbb ccc\")))");
  Tree t2 = f.Parse("(D (P (S \"xxx yyy zzz\")))");
  CriteriaEvaluator eval(t1, t2, &f.cmp,
                         {.leaf_threshold_f = 0.5, .internal_threshold_t = 0.6});
  Matching m = ComputeMatch(t1, t2, eval);
  // No leaf can match; hence no internal node reaches the threshold either.
  EXPECT_EQ(m.size(), 0u);
}

TEST(MatchTest, ApproximatelyEqualLeavesMatch) {
  Fixture f;
  Tree t1 = f.Parse("(D (P (S \"one two three four\")))");
  Tree t2 = f.Parse("(D (P (S \"one two three zzz\")))");
  CriteriaEvaluator eval(t1, t2, &f.cmp, {.leaf_threshold_f = 0.5});
  Matching m = ComputeMatch(t1, t2, eval);
  EXPECT_EQ(m.size(), 3u);  // Sentence, paragraph, document.
}

TEST(MatchTest, LabelMismatchPreventsMatch) {
  Fixture f;
  Tree t1 = f.Parse("(D (P (S \"same text\")))");
  Tree t2 = f.Parse("(D (Q (S \"same text\")))");
  CriteriaEvaluator eval(t1, t2, &f.cmp, {});
  Matching m = ComputeMatch(t1, t2, eval);
  // S and D match; P cannot match Q.
  EXPECT_EQ(m.size(), 2u);
  EXPECT_FALSE(m.HasT1(t1.children(t1.root())[0]));
}

TEST(MatchTest, InternalThresholdGovernsParagraphMatch) {
  Fixture f;
  // Two sentences, only one survives: ratio 1/2 not > t for any t >= 0.5.
  Tree t1 = f.Parse("(D (P (S \"alpha beta\") (S \"gamma delta\")))");
  Tree t2 = f.Parse("(D (P (S \"alpha beta\") (S \"omega psi\")))");
  CriteriaEvaluator eval(t1, t2, &f.cmp,
                         {.leaf_threshold_f = 0.5, .internal_threshold_t = 0.6});
  Matching m = ComputeMatch(t1, t2, eval);
  NodeId p1 = t1.children(t1.root())[0];
  EXPECT_FALSE(m.HasT1(p1));
  // The document also fails (same ratio); only the sentence pair matches.
  EXPECT_EQ(m.size(), 1u);
}

TEST(MatchTest, DuplicateLeavesMatchFirstCome) {
  Fixture f;
  Tree t1 = f.Parse("(D (P (S \"dup dup dup\") (S \"dup dup dup\")))");
  Tree t2 = f.Parse("(D (P (S \"dup dup dup\")))");
  CriteriaEvaluator eval(t1, t2, &f.cmp, {});
  Matching m = ComputeMatch(t1, t2, eval);
  // Matching stays one-to-one: exactly one of the duplicates matches.
  NodeId p1 = t1.children(t1.root())[0];
  int matched = (m.HasT1(t1.children(p1)[0]) ? 1 : 0) +
                (m.HasT1(t1.children(p1)[1]) ? 1 : 0);
  EXPECT_EQ(matched, 1);
}

TEST(MatchTest, MovedLeavesStillMatchAcrossParents) {
  Fixture f;
  Tree t1 = f.Parse(
      "(D (P (S \"first sentence here\")) (P (S \"second sentence here\")))");
  Tree t2 = f.Parse(
      "(D (P (S \"second sentence here\")) (P (S \"first sentence here\")))");
  CriteriaEvaluator eval(t1, t2, &f.cmp, {});
  Matching m = ComputeMatch(t1, t2, eval);
  EXPECT_EQ(m.size(), 5u);  // Every node of both 5-node trees is matched.
  // The first T1 sentence matches the sentence now under the second T2
  // paragraph.
  NodeId s1 = t1.children(t1.children(t1.root())[0])[0];
  NodeId expect = t2.children(t2.children(t2.root())[1])[0];
  EXPECT_EQ(m.PartnerOfT1(s1), expect);
}

TEST(MatchTest, MatchingIsOneToOne) {
  Fixture f;
  Tree t1 = f.Parse(
      "(D (P (S \"a b c\") (S \"a b c\") (S \"a b c\")) (P (S \"x y z\")))");
  Tree t2 = f.Parse("(D (P (S \"a b c\") (S \"x y z\")))");
  CriteriaEvaluator eval(t1, t2, &f.cmp, {});
  Matching m = ComputeMatch(t1, t2, eval);
  // Every T2 node has at most one partner and vice versa (Add asserts).
  for (auto [x, y] : m.Pairs()) {
    EXPECT_EQ(m.PartnerOfT2(y), x);
  }
}

}  // namespace
}  // namespace treediff
