#include "tree/tree_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "tree/builder.h"
#include "tree/tree.h"

namespace treediff {
namespace {

Tree Parse(const char* sexpr,
           std::shared_ptr<LabelTable> labels = nullptr) {
  if (labels == nullptr) labels = std::make_shared<LabelTable>();
  auto tree = ParseSexpr(sexpr, labels);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(*tree);
}

constexpr const char* kDoc =
    "(D (P (S \"the quick fox\") (S \"jumps\")) (P (S \"over\") (F (S "
    "\"the\") (S \"lazy dog\"))) (E))";

TEST(TreeIndexTest, OrdersMatchTreeTraversals) {
  Tree t = Parse(kDoc);
  TreeIndex index(t);
  EXPECT_EQ(index.PreOrder(), t.PreOrder());
  EXPECT_EQ(index.PostOrder(), t.PostOrder());
  EXPECT_EQ(index.BfsOrder(), t.BfsOrder());
  EXPECT_EQ(index.Leaves(), t.Leaves());
}

TEST(TreeIndexTest, ScalarsMatchTreeDerivedStructure) {
  Tree t = Parse(kDoc);
  TreeIndex index(t);
  const std::vector<int> depths = t.Depths();
  const std::vector<int> leaf_counts = t.LeafCounts();
  for (NodeId x = 0; x < static_cast<NodeId>(t.id_bound()); ++x) {
    EXPECT_EQ(index.Depth(x), depths[static_cast<size_t>(x)]) << x;
    EXPECT_EQ(index.LeafCount(x), leaf_counts[static_cast<size_t>(x)]) << x;
  }
  for (NodeId x : t.PreOrder()) {
    // SubtreeSize equals the number of preorder descendants (self included).
    int size = 0;
    for (NodeId y : t.PreOrder()) {
      if (t.IsAncestorOrSelf(x, y)) ++size;
    }
    EXPECT_EQ(index.SubtreeSize(x), size) << x;
    EXPECT_EQ(index.ValueHash(x), HashValueBytes(t.value(x))) << x;
    // ChildIndex agrees with a manual sibling scan.
    if (x == t.root()) {
      EXPECT_EQ(index.ChildIndex(x), -1);
    } else {
      const auto& sibs = t.children(t.parent(x));
      const auto it = std::find(sibs.begin(), sibs.end(), x);
      EXPECT_EQ(index.ChildIndex(x),
                static_cast<int>(std::distance(sibs.begin(), it)));
    }
  }
}

TEST(TreeIndexTest, ContainsMatchesIsAncestorOrSelf) {
  Tree t = Parse(kDoc);
  TreeIndex index(t);
  for (NodeId a : t.PreOrder()) {
    for (NodeId b : t.PreOrder()) {
      EXPECT_EQ(index.Contains(a, b), t.IsAncestorOrSelf(a, b))
          << a << " vs " << b;
    }
  }
}

TEST(TreeIndexTest, LeafRangesSliceTheLeafSequence) {
  Tree t = Parse(kDoc);
  TreeIndex index(t);
  const std::vector<NodeId>& leaves = index.Leaves();
  for (NodeId x : t.PreOrder()) {
    std::vector<NodeId> expected;
    for (NodeId w : t.Leaves()) {
      if (t.IsAncestorOrSelf(x, w)) expected.push_back(w);
    }
    const std::vector<NodeId> got(
        leaves.begin() + index.LeafRangeBegin(x),
        leaves.begin() + index.LeafRangeEnd(x));
    EXPECT_EQ(got, expected) << x;
  }
}

TEST(TreeIndexTest, ChainsAreDocumentOrderPerLabelAndKind) {
  Tree t = Parse(kDoc);
  TreeIndex index(t);
  std::map<LabelId, std::vector<NodeId>> leaf_chains, internal_chains;
  for (NodeId x : t.PreOrder()) {
    (t.IsLeaf(x) ? leaf_chains : internal_chains)[t.label(x)].push_back(x);
  }
  EXPECT_EQ(index.LeafChains(), leaf_chains);
  EXPECT_EQ(index.InternalChains(), internal_chains);
  // Missing labels yield empty chains.
  const LabelId unused = t.InternLabel("Zz");
  EXPECT_TRUE(index.LeafChain(unused).empty());
  EXPECT_TRUE(index.InternalChain(unused).empty());
}

TEST(TreeIndexTest, SubtreeHashesDistinguishContentAndAgreeOnTwins) {
  auto labels = std::make_shared<LabelTable>();
  Tree t = Parse("(D (P (S \"a\") (S \"b\")) (P (S \"a\") (S \"b\")) "
                 "(P (S \"a\") (S \"c\")))",
                 labels);
  TreeIndex index(t);
  const auto& kids = t.children(t.root());
  // Identical subtrees fingerprint identically; a one-leaf difference
  // changes the fingerprint all the way up.
  EXPECT_EQ(index.SubtreeHash(kids[0]), index.SubtreeHash(kids[1]));
  EXPECT_NE(index.SubtreeHash(kids[0]), index.SubtreeHash(kids[2]));
  // Fingerprints are cross-tree comparable (deterministic hash).
  Tree u = Parse("(P (S \"a\") (S \"b\"))", labels);
  TreeIndex uindex(u);
  EXPECT_EQ(uindex.SubtreeHash(u.root()), index.SubtreeHash(kids[0]));
}

TEST(TreeIndexTest, NodeValueHashWithAndWithoutIndex) {
  Tree t = Parse("(S \"some value\")");
  const uint64_t bare = NodeValueHash(t, t.root());
  {
    TreeIndex index(t);
    EXPECT_EQ(t.attached_index(), &index);
    EXPECT_EQ(NodeValueHash(t, t.root()), bare);
  }
  EXPECT_EQ(t.attached_index(), nullptr);
  EXPECT_EQ(NodeValueHash(t, t.root()), HashValueBytes("some value"));
}

TEST(TreeIndexTest, TreeChildIndexUsesAttachedIndex) {
  Tree t = Parse(kDoc);
  std::vector<int> bare;
  for (NodeId x : t.PreOrder()) bare.push_back(t.ChildIndex(x));
  TreeIndex index(t);
  std::vector<int> indexed;
  for (NodeId x : t.PreOrder()) indexed.push_back(t.ChildIndex(x));
  EXPECT_EQ(indexed, bare);
}

TEST(TreeIndexTest, DetachesWhenTreeIsMovedFrom) {
  Tree t = Parse(kDoc);
  TreeIndex index(t);
  ASSERT_TRUE(index.attached());
  Tree stolen = std::move(t);
  EXPECT_FALSE(index.attached());
  EXPECT_EQ(stolen.attached_index(), nullptr);
}

TEST(TreeIndexTest, CopiesDoNotCarryTheIndex) {
  Tree t = Parse(kDoc);
  TreeIndex index(t);
  Tree copy = t;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(copy.attached_index(), nullptr);
  EXPECT_EQ(t.attached_index(), &index);
}

TEST(TreeIndexTest, SingleNodeTree) {
  Tree t = Parse("(S \"x\")");
  TreeIndex index(t);
  EXPECT_EQ(index.Depth(t.root()), 0);
  EXPECT_EQ(index.SubtreeSize(t.root()), 1);
  EXPECT_EQ(index.LeafCount(t.root()), 1);
  EXPECT_EQ(index.ChildIndex(t.root()), -1);
  EXPECT_EQ(index.PreOrder(), std::vector<NodeId>{t.root()});
  EXPECT_EQ(index.Leaves(), std::vector<NodeId>{t.root()});
  EXPECT_TRUE(index.Contains(t.root(), t.root()));
}

}  // namespace
}  // namespace treediff
