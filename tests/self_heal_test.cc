// Self-healing of the durable VersionStore: transient I/O faults are
// retried (with rotation instead of a naive re-fsync), permanent faults
// poison the store until Repair() rotates it back to health, and Scrub()
// catches bit rot on the cold log before the next Open would.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "store/log.h"
#include "store/version_store.h"
#include "tree/builder.h"
#include "util/fault_env.h"
#include "util/metrics.h"

namespace treediff {
namespace {

std::string DocText(int v) {
  std::string s = "(D";
  for (int p = 0; p <= v; ++p) {
    s += " (P (S \"heal" + std::to_string(p) + " body words\"))";
  }
  s += ")";
  return s;
}

StoreOptions QuietOptions(Env* env) {
  StoreOptions store_options;
  store_options.env = env;
  store_options.checkpoint_interval = 3;
  store_options.sleep = [](double) {};  // No real waiting in tests.
  return store_options;
}

void CommitVersions(VersionStore* store, int first, int last) {
  for (int v = first; v <= last; ++v) {
    auto tree = ParseSexpr(DocText(v), store->label_table());
    ASSERT_TRUE(tree.ok());
    auto committed = store->Commit(*tree);
    ASSERT_TRUE(committed.ok())
        << "version " << v << ": " << committed.status().ToString();
    ASSERT_EQ(*committed, v);
  }
}

void ExpectAllVersionsIntact(const VersionStore& store) {
  for (int v = 0; v < store.VersionCount(); ++v) {
    auto tree = store.Materialize(v);
    ASSERT_TRUE(tree.ok()) << "version " << v << ": "
                           << tree.status().ToString();
    auto expected = ParseSexpr(DocText(v), store.label_table());
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(Tree::Isomorphic(*tree, *expected)) << "version " << v;
  }
}

/// Create's initial writes carry no retry loop (a failed Create has no
/// acked state to protect — the caller just re-runs it); the self-heal
/// machinery under test starts at the first Commit.
StatusOr<VersionStore> CreateWithRetries(Env* env) {
  StatusOr<VersionStore> store = Status::Internal("never tried");
  for (int i = 0; i < 64 && !store.ok(); ++i) {
    store = VersionStore::Create("h.log", *ParseSexpr(DocText(0)), {},
                                 QuietOptions(env));
  }
  return store;
}

TEST(SelfHealTest, TransientAppendFaultsRetriedToSuccess) {
  MemEnv mem;
  FaultPlan plan;
  plan.seed = 1;  // Picked so faults fire but stay inside the budget.
  plan.transient_append_p = 0.2;
  FaultInjectingEnv env(&mem, plan);
  auto store = CreateWithRetries(&env);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  CommitVersions(&*store, 1, 10);
  EXPECT_TRUE(store->io_status().ok());
  const auto faults = store->fault_counters();
  EXPECT_GT(faults.transient_retries, 0u);
  EXPECT_GT(faults.rotations, 0u);  // Retry never re-appends to a dirty
                                    // tail: it rotates first.
  EXPECT_GT(env.transient_faults(), 0u);
  ExpectAllVersionsIntact(*store);
}

TEST(SelfHealTest, TransientSyncFaultsHealedByRotationNotResync) {
  MemEnv mem;
  FaultPlan plan;
  plan.seed = 0;  // Picked so faults fire but stay inside the budget.
  plan.transient_sync_p = 0.25;
  FaultInjectingEnv env(&mem, plan);
  auto store = CreateWithRetries(&env);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  CommitVersions(&*store, 1, 10);
  EXPECT_TRUE(store->io_status().ok());
  // An fsync that reported failure may have dropped its pages: the store
  // must never have just re-fsynced the same file, so every recovered sync
  // failure shows up as a rotation.
  EXPECT_GT(store->fault_counters().rotations, 0u);
  ExpectAllVersionsIntact(*store);

  // The log left behind is a healthy store.
  store.value() = VersionStore(*ParseSexpr("(D)"));  // Close the writer.
  env.DisableTransientFaults();
  RecoveryReport report;
  auto reopened = VersionStore::Open("h.log", {}, QuietOptions(&env),
                                     &report);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->VersionCount(), 11);
  ExpectAllVersionsIntact(*reopened);
}

TEST(SelfHealTest, PermanentFaultPoisonsThenRepairRestoresService) {
  MemEnv mem;
  FaultPlan plan;
  plan.fail_sync_at = 4;  // The 4th fsync fails hard; the env goes down.
  FaultInjectingEnv env(&mem, plan);
  auto store = VersionStore::Create("h.log", *ParseSexpr(DocText(0)), {},
                                    QuietOptions(&env));
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  int committed = 0;
  Status failure = Status::Ok();
  for (int v = 1; v <= 8; ++v) {
    auto tree = ParseSexpr(DocText(v), store->label_table());
    ASSERT_TRUE(tree.ok());
    auto result = store->Commit(*tree);
    if (!result.ok()) {
      failure = result.status();
      break;
    }
    ++committed;
  }
  ASSERT_FALSE(failure.ok()) << "fault never fired";
  EXPECT_FALSE(store->io_status().ok());
  EXPECT_EQ(store->VersionCount(), committed + 1);

  // Poisoned: mutations fail fast, reads still serve.
  auto tree = ParseSexpr(DocText(committed + 1), store->label_table());
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(store->Commit(*tree).status().code(), Code::kFailedPrecondition);
  ExpectAllVersionsIntact(*store);

  // The medium comes back; Repair rotates to a fresh log and clears the
  // poison without losing any acknowledged commit.
  env.ClearFault();
  auto repaired = store->Repair();
  ASSERT_TRUE(repaired.ok()) << repaired.ToString();
  EXPECT_TRUE(store->io_status().ok());
  EXPECT_GT(store->fault_counters().rotations, 0u);
  CommitVersions(&*store, committed + 1, committed + 2);
  ExpectAllVersionsIntact(*store);
}

TEST(SelfHealTest, RepairOfNonDurableStoreFails) {
  VersionStore store(*ParseSexpr("(D (S \"x\"))"));
  EXPECT_EQ(store.Repair().code(), Code::kFailedPrecondition);
}

TEST(SelfHealTest, ScrubOfCleanLogFindsNothing) {
  MemEnv env;
  auto store = VersionStore::Create("h.log", *ParseSexpr(DocText(0)), {},
                                    QuietOptions(&env));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  CommitVersions(&*store, 1, 5);
  auto report = store->Scrub();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->corruption_found);
  EXPECT_FALSE(report->repaired);
  EXPECT_GT(report->bytes_verified, 0u);
  EXPECT_GT(report->records_verified, 0u);
  EXPECT_EQ(store->fault_counters().scrubs, 1u);
  EXPECT_EQ(store->fault_counters().scrub_corruption, 0u);
}

TEST(SelfHealTest, ScrubDetectsBitRotAndRepairsByRotation) {
  MemEnv env;
  auto store = VersionStore::Create("h.log", *ParseSexpr(DocText(0)), {},
                                    QuietOptions(&env));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  CommitVersions(&*store, 1, 5);

  // Flip one byte in the middle of the cold log (inside the second
  // record's payload — well before the tail).
  auto file = env.NewRandomAccessFile("h.log");
  ASSERT_TRUE(file.ok());
  auto scan = ScanLog(file->get());
  ASSERT_TRUE(scan.ok());
  ASSERT_GE(scan->records.size(), 2u);
  ASSERT_TRUE(env.CorruptByte("h.log",
                              scan->records[1].offset + kLogRecordHeaderSize,
                              0x20)
                  .ok());

  auto report = store->Scrub();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->corruption_found);
  EXPECT_TRUE(report->repaired);
  EXPECT_EQ(store->fault_counters().scrub_corruption, 1u);
  EXPECT_GT(store->fault_counters().rotations, 0u);

  // Nothing was lost: the in-memory state is the acknowledged state, and
  // the rotation rewrote it in full.
  ExpectAllVersionsIntact(*store);
  auto second = store->Scrub();
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->corruption_found);

  // The rewritten log recovers cleanly.
  store.value() = VersionStore(*ParseSexpr("(D)"));  // Close the writer.
  RecoveryReport recovery;
  auto reopened =
      VersionStore::Open("h.log", {}, QuietOptions(&env), &recovery);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(recovery.clean()) << recovery.ToString();
  EXPECT_EQ(reopened->VersionCount(), 6);
  ExpectAllVersionsIntact(*reopened);
}

TEST(SelfHealTest, EnospcPoisonsButLeavesStoreReadable) {
  MemEnv mem;
  FaultPlan plan;
  plan.disk_capacity_bytes = 2048;
  FaultInjectingEnv env(&mem, plan);
  auto store = VersionStore::Create("h.log", *ParseSexpr(DocText(0)), {},
                                    QuietOptions(&env));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  Status failure = Status::Ok();
  int committed = 0;
  for (int v = 1; v <= 40 && failure.ok(); ++v) {
    auto tree = ParseSexpr(DocText(v), store->label_table());
    ASSERT_TRUE(tree.ok());
    auto result = store->Commit(*tree);
    if (!result.ok()) {
      failure = result.status();
    } else {
      ++committed;
    }
  }
  ASSERT_FALSE(failure.ok()) << "disk never filled";
  // ENOSPC may first strike the best-effort checkpoint append, which rides
  // after an already-acked commit: then the *next* commit reports the
  // poison (kFailedPrecondition) rather than the disk-full error itself.
  // Either way the root cause is pinned in io_status.
  EXPECT_TRUE(failure.code() == Code::kResourceExhausted ||
              failure.code() == Code::kFailedPrecondition)
      << failure.ToString();
  EXPECT_FALSE(store->io_status().ok());
  EXPECT_EQ(store->io_status().code(), Code::kResourceExhausted);
  // Every acknowledged commit is still readable.
  EXPECT_EQ(store->VersionCount(), committed + 1);
  ExpectAllVersionsIntact(*store);
}

TEST(SelfHealTest, MetricsRegistryMirrorsFaultCounters) {
  MemEnv env;
  MetricsRegistry metrics;
  StoreOptions store_options = QuietOptions(&env);
  store_options.metrics = &metrics;
  auto store = VersionStore::Create("h.log", *ParseSexpr(DocText(0)), {},
                                    store_options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  CommitVersions(&*store, 1, 4);

  auto file = env.NewRandomAccessFile("h.log");
  ASSERT_TRUE(file.ok());
  auto scan = ScanLog(file->get());
  ASSERT_TRUE(scan.ok());
  ASSERT_GE(scan->records.size(), 2u);
  ASSERT_TRUE(env.CorruptByte("h.log",
                              scan->records[1].offset + kLogRecordHeaderSize,
                              0x08)
                  .ok());
  ASSERT_TRUE(store->Scrub().ok());

  EXPECT_EQ(metrics.counter("store_scrubs_total")->Value(), 1u);
  EXPECT_EQ(metrics.counter("store_scrub_corruption_total")->Value(), 1u);
  EXPECT_GE(metrics.counter("store_rotations_total")->Value(), 1u);
}

}  // namespace
}  // namespace treediff
