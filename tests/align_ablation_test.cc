// Lemma C.1 ablation: the LCS-based AlignChildren emits the minimum number
// of intra-parent moves; the greedy baseline remains correct but can be far
// worse on adversarial sibling orders.

#include <gtest/gtest.h>

#include <memory>

#include "core/edit_script_gen.h"
#include "gen/doc_gen.h"
#include "tree/builder.h"
#include "util/random.h"

namespace treediff {
namespace {

struct Fixture {
  std::shared_ptr<LabelTable> labels = std::make_shared<LabelTable>();

  Tree Parse(const std::string& s) { return *ParseSexpr(s, labels); }

  Matching MatchByValue(const Tree& t1, const Tree& t2) {
    Matching m(t1.id_bound(), t2.id_bound());
    for (NodeId x : t1.PreOrder()) {
      for (NodeId y : t2.PreOrder()) {
        if (!m.HasT2(y) && t1.label(x) == t2.label(y) &&
            t1.value(x) == t2.value(y)) {
          m.Add(x, y);
          break;
        }
      }
    }
    return m;
  }
};

TEST(AlignAblationTest, GreedyIsCorrectOnAdversarialOrder) {
  Fixture f;
  // [5 1 2 3 4]: the greedy chain keeps only "5" (everything after is
  // smaller), forcing 4 moves; the LCS keeps [1 2 3 4] and moves only "5".
  Tree t1 = f.Parse(
      "(D (S \"1\") (S \"2\") (S \"3\") (S \"4\") (S \"5\"))");
  Tree t2 = f.Parse(
      "(D (S \"5\") (S \"1\") (S \"2\") (S \"3\") (S \"4\"))");
  Matching m = f.MatchByValue(t1, t2);

  auto lcs = GenerateEditScript(t1, t2, m, nullptr, /*use_lcs_alignment=*/true);
  ASSERT_TRUE(lcs.ok());
  EXPECT_EQ(lcs->intra_parent_moves, 1u);
  EXPECT_TRUE(Tree::Isomorphic(lcs->transformed, t2));

  auto greedy =
      GenerateEditScript(t1, t2, m, nullptr, /*use_lcs_alignment=*/false);
  ASSERT_TRUE(greedy.ok());
  EXPECT_EQ(greedy->intra_parent_moves, 4u);
  EXPECT_TRUE(Tree::Isomorphic(greedy->transformed, t2));
}

TEST(AlignAblationTest, LcsNeverWorseOnRandomPermutations) {
  Fixture f;
  Rng rng(71);
  for (int iter = 0; iter < 25; ++iter) {
    const int n = 3 + static_cast<int>(rng.Uniform(10));
    std::vector<int> perm(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
    rng.Shuffle(&perm);

    std::string s1 = "(D", s2 = "(D";
    for (int i = 0; i < n; ++i) {
      s1 += " (S \"v" + std::to_string(i) + "\")";
      s2 += " (S \"v" + std::to_string(perm[static_cast<size_t>(i)]) + "\")";
    }
    s1 += ")";
    s2 += ")";
    Tree t1 = f.Parse(s1);
    Tree t2 = f.Parse(s2);
    Matching m = f.MatchByValue(t1, t2);

    auto lcs = GenerateEditScript(t1, t2, m, nullptr, true);
    auto greedy = GenerateEditScript(t1, t2, m, nullptr, false);
    ASSERT_TRUE(lcs.ok());
    ASSERT_TRUE(greedy.ok());
    EXPECT_LE(lcs->intra_parent_moves, greedy->intra_parent_moves)
        << s1 << " vs " << s2;
    EXPECT_TRUE(Tree::Isomorphic(lcs->transformed, t2));
    EXPECT_TRUE(Tree::Isomorphic(greedy->transformed, t2));
  }
}

TEST(AlignAblationTest, LcsMovesMatchPermutationLowerBound) {
  // For a pure sibling permutation, the minimum number of moves is
  // n - LIS... more precisely n - |LCS(identity, perm)| (Lemma C.1). Verify
  // on a case with a known longest increasing run.
  Fixture f;
  Tree t1 = f.Parse(
      "(D (S \"a\") (S \"b\") (S \"c\") (S \"d\") (S \"e\") (S \"f\"))");
  // Order: d e a b c f -> LCS with identity = a b c f (4) -> 2 moves.
  Tree t2 = f.Parse(
      "(D (S \"d\") (S \"e\") (S \"a\") (S \"b\") (S \"c\") (S \"f\"))");
  Matching m = f.MatchByValue(t1, t2);
  auto lcs = GenerateEditScript(t1, t2, m);
  ASSERT_TRUE(lcs.ok());
  EXPECT_EQ(lcs->intra_parent_moves, 2u);
}

TEST(AlignAblationTest, IdenticalOrderNeedsNoMovesEitherWay) {
  Fixture f;
  Tree t1 = f.Parse("(D (S \"a\") (S \"b\") (S \"c\"))");
  Tree t2 = f.Parse("(D (S \"a\") (S \"b\") (S \"c\"))");
  Matching m = f.MatchByValue(t1, t2);
  auto lcs = GenerateEditScript(t1, t2, m, nullptr, true);
  auto greedy = GenerateEditScript(t1, t2, m, nullptr, false);
  ASSERT_TRUE(lcs.ok());
  ASSERT_TRUE(greedy.ok());
  EXPECT_TRUE(lcs->script.empty());
  EXPECT_TRUE(greedy->script.empty());
}

}  // namespace
}  // namespace treediff
