#include "tree/tree.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace treediff {
namespace {

/// Builds the paper's Figure 3 initial tree:
///   1(D) -> 2(P) -> {6(S,"a"), 7(S,"b")} ; 3(S,"c") ; ... simplified here
/// For unit tests we use a small document-like tree.
class TreeTest : public ::testing::Test {
 protected:
  TreeTest() : tree_(std::make_shared<LabelTable>()) {
    d_ = tree_.AddRoot("D");
    p1_ = tree_.AddChild(d_, "P");
    p2_ = tree_.AddChild(d_, "P");
    s1_ = tree_.AddChild(p1_, "S", "a");
    s2_ = tree_.AddChild(p1_, "S", "b");
    s3_ = tree_.AddChild(p2_, "S", "c");
  }

  Tree tree_;
  NodeId d_ = kInvalidNode, p1_ = kInvalidNode, p2_ = kInvalidNode;
  NodeId s1_ = kInvalidNode, s2_ = kInvalidNode, s3_ = kInvalidNode;
};

TEST_F(TreeTest, BasicAccessors) {
  EXPECT_EQ(tree_.size(), 6u);
  EXPECT_EQ(tree_.root(), d_);
  EXPECT_EQ(tree_.parent(p1_), d_);
  EXPECT_EQ(tree_.parent(d_), kInvalidNode);
  EXPECT_EQ(tree_.value(s1_), "a");
  EXPECT_EQ(tree_.label_name(s1_), "S");
  EXPECT_TRUE(tree_.IsLeaf(s1_));
  EXPECT_FALSE(tree_.IsLeaf(p1_));
  EXPECT_EQ(tree_.children(p1_), (std::vector<NodeId>{s1_, s2_}));
  EXPECT_TRUE(tree_.Validate().ok());
}

TEST_F(TreeTest, ChildIndex) {
  EXPECT_EQ(tree_.ChildIndex(d_), -1);
  EXPECT_EQ(tree_.ChildIndex(p1_), 0);
  EXPECT_EQ(tree_.ChildIndex(p2_), 1);
  EXPECT_EQ(tree_.ChildIndex(s2_), 1);
}

TEST_F(TreeTest, AncestorOrSelf) {
  EXPECT_TRUE(tree_.IsAncestorOrSelf(d_, s3_));
  EXPECT_TRUE(tree_.IsAncestorOrSelf(s3_, s3_));
  EXPECT_FALSE(tree_.IsAncestorOrSelf(p1_, s3_));
  EXPECT_FALSE(tree_.IsAncestorOrSelf(s1_, p1_));
}

TEST_F(TreeTest, InsertLeafAtEveryPosition) {
  // Insert as 1st, middle, and last child.
  StatusOr<NodeId> front = tree_.InsertLeaf(tree_.InternLabel("S"), "x", p1_, 1);
  ASSERT_TRUE(front.ok());
  EXPECT_EQ(tree_.children(p1_), (std::vector<NodeId>{*front, s1_, s2_}));
  StatusOr<NodeId> back = tree_.InsertLeaf(tree_.InternLabel("S"), "y", p1_, 4);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(tree_.children(p1_).back(), *back);
  EXPECT_TRUE(tree_.Validate().ok());
}

TEST_F(TreeTest, InsertLeafRejectsBadPosition) {
  EXPECT_EQ(tree_.InsertLeaf(0, "v", p1_, 0).status().code(),
            Code::kOutOfRange);
  EXPECT_EQ(tree_.InsertLeaf(0, "v", p1_, 4).status().code(),
            Code::kOutOfRange);
}

TEST_F(TreeTest, DeleteLeafDetachesNode) {
  ASSERT_TRUE(tree_.DeleteLeaf(s2_).ok());
  EXPECT_FALSE(tree_.Alive(s2_));
  EXPECT_EQ(tree_.children(p1_), (std::vector<NodeId>{s1_}));
  EXPECT_EQ(tree_.size(), 5u);
  EXPECT_TRUE(tree_.Validate().ok());
}

TEST_F(TreeTest, DeleteInteriorNodeFails) {
  EXPECT_EQ(tree_.DeleteLeaf(p1_).code(), Code::kFailedPrecondition);
  EXPECT_EQ(tree_.DeleteLeaf(s2_).code(), Code::kOk);
  EXPECT_EQ(tree_.DeleteLeaf(s2_).code(), Code::kInvalidArgument);  // Dead.
}

TEST_F(TreeTest, DeleteRootLeaf) {
  Tree solo;
  NodeId r = solo.AddRoot("X");
  ASSERT_TRUE(solo.DeleteLeaf(r).ok());
  EXPECT_EQ(solo.root(), kInvalidNode);
  EXPECT_EQ(solo.size(), 0u);
  EXPECT_TRUE(solo.Validate().ok());
}

TEST_F(TreeTest, UpdateValue) {
  ASSERT_TRUE(tree_.UpdateValue(s1_, "new").ok());
  EXPECT_EQ(tree_.value(s1_), "new");
}

TEST_F(TreeTest, MoveSubtreeAcrossParents) {
  // Move s1 (with no children) from p1 to p2 as first child.
  ASSERT_TRUE(tree_.MoveSubtree(s1_, p2_, 1).ok());
  EXPECT_EQ(tree_.children(p1_), (std::vector<NodeId>{s2_}));
  EXPECT_EQ(tree_.children(p2_), (std::vector<NodeId>{s1_, s3_}));
  EXPECT_EQ(tree_.parent(s1_), p2_);
  EXPECT_TRUE(tree_.Validate().ok());
}

TEST_F(TreeTest, MoveSubtreeCarriesDescendants) {
  ASSERT_TRUE(tree_.MoveSubtree(p1_, p2_, 2).ok());
  EXPECT_EQ(tree_.children(p2_), (std::vector<NodeId>{s3_, p1_}));
  EXPECT_EQ(tree_.children(p1_), (std::vector<NodeId>{s1_, s2_}));
  EXPECT_EQ(tree_.parent(s1_), p1_);
  EXPECT_TRUE(tree_.Validate().ok());
}

TEST_F(TreeTest, MoveWithinSameParentCountsPositionAfterDetach) {
  // Children of d: [p1, p2]; move p1 to become the 2nd child (after detach
  // the list is [p2], so position 2 appends).
  ASSERT_TRUE(tree_.MoveSubtree(p1_, d_, 2).ok());
  EXPECT_EQ(tree_.children(d_), (std::vector<NodeId>{p2_, p1_}));
}

TEST_F(TreeTest, MoveRejectsRootAndCycles) {
  EXPECT_EQ(tree_.MoveSubtree(d_, p1_, 1).code(), Code::kInvalidArgument);
  EXPECT_EQ(tree_.MoveSubtree(p1_, s1_, 1).code(), Code::kInvalidArgument);
  EXPECT_EQ(tree_.MoveSubtree(p1_, p1_, 1).code(), Code::kInvalidArgument);
  EXPECT_TRUE(tree_.Validate().ok());
}

TEST_F(TreeTest, MoveRejectsBadPositionAndRestoresState) {
  EXPECT_EQ(tree_.MoveSubtree(s1_, p2_, 5).code(), Code::kOutOfRange);
  EXPECT_TRUE(tree_.Validate().ok());
  EXPECT_EQ(tree_.parent(s1_), p1_);
}

TEST_F(TreeTest, BfsOrderIsLevelOrder) {
  EXPECT_EQ(tree_.BfsOrder(),
            (std::vector<NodeId>{d_, p1_, p2_, s1_, s2_, s3_}));
}

TEST_F(TreeTest, PostOrderVisitsChildrenFirst) {
  EXPECT_EQ(tree_.PostOrder(),
            (std::vector<NodeId>{s1_, s2_, p1_, s3_, p2_, d_}));
}

TEST_F(TreeTest, PreOrderVisitsParentsFirst) {
  EXPECT_EQ(tree_.PreOrder(),
            (std::vector<NodeId>{d_, p1_, s1_, s2_, p2_, s3_}));
}

TEST_F(TreeTest, LeavesInDocumentOrder) {
  EXPECT_EQ(tree_.Leaves(), (std::vector<NodeId>{s1_, s2_, s3_}));
}

TEST_F(TreeTest, LeafCounts) {
  std::vector<int> counts = tree_.LeafCounts();
  EXPECT_EQ(counts[static_cast<size_t>(d_)], 3);
  EXPECT_EQ(counts[static_cast<size_t>(p1_)], 2);
  EXPECT_EQ(counts[static_cast<size_t>(p2_)], 1);
  EXPECT_EQ(counts[static_cast<size_t>(s1_)], 1);
}

TEST_F(TreeTest, DepthsAndHeight) {
  std::vector<int> depths = tree_.Depths();
  EXPECT_EQ(depths[static_cast<size_t>(d_)], 0);
  EXPECT_EQ(depths[static_cast<size_t>(p1_)], 1);
  EXPECT_EQ(depths[static_cast<size_t>(s3_)], 2);
  EXPECT_EQ(tree_.Height(), 2);
}

TEST_F(TreeTest, EulerIntervalsAnswerAncestry) {
  Tree::EulerIntervals e = tree_.ComputeEuler();
  EXPECT_TRUE(e.Contains(d_, s3_));
  EXPECT_TRUE(e.Contains(p1_, s1_));
  EXPECT_TRUE(e.Contains(s1_, s1_));
  EXPECT_FALSE(e.Contains(p1_, s3_));
  EXPECT_FALSE(e.Contains(s1_, p1_));
}

TEST_F(TreeTest, ClonePreservesIdsAndIsIndependent) {
  Tree copy = tree_.Clone();
  EXPECT_TRUE(Tree::Isomorphic(tree_, copy));
  EXPECT_EQ(copy.value(s1_), "a");
  ASSERT_TRUE(copy.UpdateValue(s1_, "changed").ok());
  EXPECT_EQ(tree_.value(s1_), "a");  // Original untouched.
}

TEST_F(TreeTest, IsomorphismIgnoresIdsButNotStructure) {
  Tree other(tree_.label_table());
  NodeId d = other.AddRoot("D");
  NodeId q1 = other.AddChild(d, "P");
  NodeId q2 = other.AddChild(d, "P");
  other.AddChild(q1, "S", "a");
  other.AddChild(q1, "S", "b");
  other.AddChild(q2, "S", "c");
  EXPECT_TRUE(Tree::Isomorphic(tree_, other));

  ASSERT_TRUE(other.UpdateValue(other.children(q2)[0], "zzz").ok());
  EXPECT_FALSE(Tree::Isomorphic(tree_, other));
}

TEST_F(TreeTest, IsomorphismDetectsChildOrder) {
  Tree other(tree_.label_table());
  NodeId d = other.AddRoot("D");
  NodeId q1 = other.AddChild(d, "P");
  NodeId q2 = other.AddChild(d, "P");
  other.AddChild(q1, "S", "b");  // Swapped order.
  other.AddChild(q1, "S", "a");
  other.AddChild(q2, "S", "c");
  EXPECT_FALSE(Tree::Isomorphic(tree_, other));
}

TEST_F(TreeTest, IsomorphismAcrossLabelTablesComparesNames) {
  Tree other;  // Own table.
  NodeId d = other.AddRoot("D");
  NodeId q1 = other.AddChild(d, "P");
  NodeId q2 = other.AddChild(d, "P");
  other.AddChild(q1, "S", "a");
  other.AddChild(q1, "S", "b");
  other.AddChild(q2, "S", "c");
  EXPECT_TRUE(Tree::Isomorphic(tree_, other));
}

TEST_F(TreeTest, WrapRootInsertsDummyAbove) {
  NodeId new_root = tree_.WrapRoot(tree_.InternLabel("ROOT"));
  EXPECT_EQ(tree_.root(), new_root);
  EXPECT_EQ(tree_.children(new_root), (std::vector<NodeId>{d_}));
  EXPECT_EQ(tree_.parent(d_), new_root);
  EXPECT_EQ(tree_.size(), 7u);
  EXPECT_TRUE(tree_.Validate().ok());
}

TEST_F(TreeTest, DebugString) {
  EXPECT_EQ(tree_.ToDebugString(),
            "(D (P (S \"a\") (S \"b\")) (P (S \"c\")))");
}

TEST(EmptyTreeTest, Behaviour) {
  Tree t;
  EXPECT_EQ(t.root(), kInvalidNode);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.BfsOrder().empty());
  EXPECT_TRUE(t.PostOrder().empty());
  EXPECT_EQ(t.Height(), -1);
  EXPECT_TRUE(t.Validate().ok());
  EXPECT_EQ(t.ToDebugString(), "()");
}

TEST(LabelTableTest, InternIsIdempotent) {
  LabelTable table;
  LabelId a = table.Intern("alpha");
  LabelId b = table.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Intern("alpha"), a);
  EXPECT_EQ(table.Name(a), "alpha");
  EXPECT_EQ(table.Find("beta"), b);
  EXPECT_EQ(table.Find("gamma"), kInvalidLabel);
  EXPECT_EQ(table.size(), 2u);
}

TEST(FrozenTreeTest, EditOperationsFailFast) {
  Tree t;
  NodeId r = t.AddRoot("D");
  NodeId a = t.AddChild(r, "S", "alpha");
  NodeId b = t.AddChild(r, "S", "beta");
  t.Freeze();
  EXPECT_TRUE(t.Frozen());

  EXPECT_EQ(t.UpdateValue(a, "changed").code(), Code::kFailedPrecondition);
  EXPECT_EQ(t.DeleteLeaf(b).code(), Code::kFailedPrecondition);
  // The tree is untouched.
  EXPECT_EQ(t.value(a), "alpha");
  EXPECT_EQ(t.size(), 3u);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(FrozenTreeTest, FreezeIsStickyAcrossMovesButNotCopies) {
  Tree t;
  NodeId r = t.AddRoot("D");
  t.AddChild(r, "S", "x");
  t.Freeze();

  // Copies and Clone()s start unfrozen: they are private snapshots (the
  // edit-script generator's working copy depends on this).
  Tree copy(t);
  EXPECT_FALSE(copy.Frozen());
  EXPECT_TRUE(copy.UpdateValue(copy.Leaves()[0], "edited").ok());
  Tree clone = t.Clone();
  EXPECT_FALSE(clone.Frozen());

  // Moves transfer the frozen contract with the storage.
  clone.Freeze();
  Tree moved(std::move(clone));
  EXPECT_TRUE(moved.Frozen());
  EXPECT_EQ(moved.UpdateValue(moved.Leaves()[0], "nope").code(),
            Code::kFailedPrecondition);
}

#if GTEST_HAS_DEATH_TEST
TEST(FrozenTreeDeathTest, StructuralConstructionAborts) {
  Tree t;
  NodeId r = t.AddRoot("D");
  t.Freeze();
  // AddChild has no Status channel; mutating a frozen (= possibly shared)
  // tree is a fail-fast abort, not a silent data race.
  EXPECT_DEATH(t.AddChild(r, "S", "boom"), "frozen");
}
#endif

TEST(TreeIdsTest, DeadSlotsRemainInIdBound) {
  Tree t;
  NodeId r = t.AddRoot("R");
  NodeId a = t.AddChild(r, "A", "1");
  ASSERT_TRUE(t.DeleteLeaf(a).ok());
  EXPECT_EQ(t.id_bound(), 2u);
  EXPECT_EQ(t.size(), 1u);
  // New node gets a fresh id; dead ids are never reused.
  NodeId b = t.AddChild(r, "A", "2");
  EXPECT_EQ(b, 2);
}

}  // namespace
}  // namespace treediff
