#include "store/three_way.h"

#include <gtest/gtest.h>

#include <memory>

#include "gen/doc_gen.h"
#include "gen/edit_sim.h"
#include "tree/builder.h"

namespace treediff {
namespace {

struct Fixture {
  std::shared_ptr<LabelTable> labels = std::make_shared<LabelTable>();

  Tree Parse(const std::string& s) { return *ParseSexpr(s, labels); }

  /// Collects all leaf values of a tree in document order.
  std::vector<std::string> LeafValues(const Tree& t) {
    std::vector<std::string> values;
    for (NodeId s : t.Leaves()) values.push_back(t.value(s));
    return values;
  }
};

TEST(ThreeWayTest, DisjointEditsMergeCleanly) {
  Fixture f;
  Tree base = f.Parse(
      "(D (P (S \"alpha one two\") (S \"beta three four\")) "
      "(P (S \"gamma five six\") (S \"delta seven eight\")))");
  // Ours edits the first paragraph, theirs the second.
  Tree ours = f.Parse(
      "(D (P (S \"alpha one CHANGED\") (S \"beta three four\")) "
      "(P (S \"gamma five six\") (S \"delta seven eight\")))");
  Tree theirs = f.Parse(
      "(D (P (S \"alpha one two\") (S \"beta three four\")) "
      "(P (S \"gamma five six\") (S \"delta seven eight\") "
      "(S \"epsilon nine ten\")))");

  auto merge = ThreeWayMerge(base, ours, theirs);
  ASSERT_TRUE(merge.ok()) << merge.status().ToString();
  EXPECT_TRUE(merge->conflicts.empty());
  auto values = f.LeafValues(merge->merged);
  EXPECT_NE(std::find(values.begin(), values.end(), "alpha one CHANGED"),
            values.end());
  EXPECT_NE(std::find(values.begin(), values.end(), "epsilon nine ten"),
            values.end());
  EXPECT_EQ(merge->merged.Leaves().size(), 5u);
}

TEST(ThreeWayTest, UpdateUpdateConflictOursWins) {
  Fixture f;
  Tree base = f.Parse(
      "(D (S \"shared base text here\") (S \"stable one two\"))");
  Tree ours = f.Parse(
      "(D (S \"shared OURS text here\") (S \"stable one two\"))");
  Tree theirs = f.Parse(
      "(D (S \"shared THEIRS text here\") (S \"stable one two\"))");
  auto merge = ThreeWayMerge(base, ours, theirs);
  ASSERT_TRUE(merge.ok());
  ASSERT_EQ(merge->conflicts.size(), 1u);
  EXPECT_EQ(merge->conflicts[0].kind, ConflictKind::kUpdateUpdate);
  auto values = f.LeafValues(merge->merged);
  EXPECT_EQ(values[0], "shared OURS text here");  // Ours wins.
}

TEST(ThreeWayTest, ConvergentEditsAreNotConflicts) {
  Fixture f;
  Tree base = f.Parse(
      "(D (S \"old value sits here\") (S \"keep me now\"))");
  Tree same = f.Parse(
      "(D (S \"new value sits here\") (S \"keep me now\"))");
  auto merge = ThreeWayMerge(base, same, same.Clone());
  ASSERT_TRUE(merge.ok());
  EXPECT_TRUE(merge->conflicts.empty());
  EXPECT_EQ(f.LeafValues(merge->merged)[0], "new value sits here");
  // The convergent update applied once, not twice.
  EXPECT_TRUE(Tree::Isomorphic(merge->merged, same));
}

TEST(ThreeWayTest, UpdateDeleteConflictDetected) {
  Fixture f;
  Tree base = f.Parse(
      "(D (S \"contested text lives here\") (S \"anchor a b\") "
      "(S \"anchor c d\"))");
  Tree ours = f.Parse(
      "(D (S \"contested text lives EDITED\") (S \"anchor a b\") "
      "(S \"anchor c d\"))");
  Tree theirs = f.Parse("(D (S \"anchor a b\") (S \"anchor c d\"))");
  auto merge = ThreeWayMerge(base, ours, theirs);
  ASSERT_TRUE(merge.ok());
  ASSERT_GE(merge->conflicts.size(), 1u);
  EXPECT_EQ(merge->conflicts[0].kind, ConflictKind::kUpdateDelete);
  // Ours wins: the edited sentence survives.
  auto values = f.LeafValues(merge->merged);
  EXPECT_NE(std::find(values.begin(), values.end(),
                      "contested text lives EDITED"),
            values.end());
}

TEST(ThreeWayTest, MoveMoveConflictDetected) {
  Fixture f;
  Tree base = f.Parse(
      "(D (P (S \"mover x y\") (S \"a1 a2\") (S \"a3 a4\")) "
      "(P (S \"b1 b2\") (S \"b3 b4\")) (P (S \"c1 c2\") (S \"c3 c4\")))");
  // Ours moves the sentence into P2; theirs into P3.
  Tree ours = f.Parse(
      "(D (P (S \"a1 a2\") (S \"a3 a4\")) "
      "(P (S \"b1 b2\") (S \"b3 b4\") (S \"mover x y\")) "
      "(P (S \"c1 c2\") (S \"c3 c4\")))");
  Tree theirs = f.Parse(
      "(D (P (S \"a1 a2\") (S \"a3 a4\")) (P (S \"b1 b2\") (S \"b3 b4\")) "
      "(P (S \"c1 c2\") (S \"c3 c4\") (S \"mover x y\")))");
  auto merge = ThreeWayMerge(base, ours, theirs);
  ASSERT_TRUE(merge.ok());
  ASSERT_GE(merge->conflicts.size(), 1u);
  EXPECT_EQ(merge->conflicts[0].kind, ConflictKind::kMoveMove);
  // Exactly one instance of the mover survives (ours' placement).
  auto values = f.LeafValues(merge->merged);
  EXPECT_EQ(std::count(values.begin(), values.end(), "mover x y"), 1);
}

TEST(ThreeWayTest, BothSidesInsertInDifferentPlaces) {
  Fixture f;
  Tree base = f.Parse(
      "(D (P (S \"p1 s1 x\") (S \"p1 s2 y\")) (P (S \"p2 s1 z\") "
      "(S \"p2 s2 w\")))");
  Tree ours = f.Parse(
      "(D (P (S \"p1 s1 x\") (S \"ours new here\") (S \"p1 s2 y\")) "
      "(P (S \"p2 s1 z\") (S \"p2 s2 w\")))");
  Tree theirs = f.Parse(
      "(D (P (S \"p1 s1 x\") (S \"p1 s2 y\")) (P (S \"p2 s1 z\") "
      "(S \"p2 s2 w\") (S \"theirs new here\")))");
  auto merge = ThreeWayMerge(base, ours, theirs);
  ASSERT_TRUE(merge.ok());
  EXPECT_TRUE(merge->conflicts.empty());
  auto values = f.LeafValues(merge->merged);
  EXPECT_EQ(values.size(), 6u);
  EXPECT_NE(std::find(values.begin(), values.end(), "ours new here"),
            values.end());
  EXPECT_NE(std::find(values.begin(), values.end(), "theirs new here"),
            values.end());
}

TEST(ThreeWayTest, TheirsEditInsideOursDeletedSubtree) {
  Fixture f;
  Tree base = f.Parse(
      "(D (P (S \"keep one two\") (S \"keep three four\")) "
      "(P (S \"doomed a b\") (S \"doomed c d\")))");
  // Ours deletes the second paragraph wholesale.
  Tree ours = f.Parse(
      "(D (P (S \"keep one two\") (S \"keep three four\")))");
  // Theirs inserts inside it.
  Tree theirs = f.Parse(
      "(D (P (S \"keep one two\") (S \"keep three four\")) "
      "(P (S \"doomed a b\") (S \"doomed c d\") (S \"late addition e\")))");
  auto merge = ThreeWayMerge(base, ours, theirs);
  ASSERT_TRUE(merge.ok());
  EXPECT_GE(merge->conflicts.size(), 1u);
  EXPECT_GE(merge->skipped_theirs, 1u);
  // The deletion won; the late addition has nowhere to go.
  auto values = f.LeafValues(merge->merged);
  EXPECT_EQ(std::find(values.begin(), values.end(), "late addition e"),
            values.end());
}

TEST(ThreeWayTest, UpdateUpdateConflictIsFullyReported) {
  Fixture f;
  Tree base = f.Parse(
      "(D (S \"contested words sit here\") (S \"anchor one two\"))");
  Tree ours = f.Parse(
      "(D (S \"contested words sit OURS\") (S \"anchor one two\"))");
  Tree theirs = f.Parse(
      "(D (S \"contested words sit THEIRS\") (S \"anchor one two\"))");
  auto merge = ThreeWayMerge(base, ours, theirs);
  ASSERT_TRUE(merge.ok());
  ASSERT_EQ(merge->conflicts.size(), 1u);
  const MergeConflict& conflict = merge->conflicts[0];
  EXPECT_EQ(conflict.kind, ConflictKind::kUpdateUpdate);
  // The conflict anchors at the contested base leaf, so a reviewer can find
  // it: the reported node must be a live leaf of the base holding the
  // contested value.
  ASSERT_NE(conflict.base_node, kInvalidNode);
  ASSERT_TRUE(base.Alive(conflict.base_node));
  EXPECT_EQ(base.value(conflict.base_node), "contested words sit here");
  EXPECT_FALSE(conflict.description.empty());
  EXPECT_STREQ(ConflictKindName(ConflictKind::kUpdateUpdate),
               "update/update");
}

TEST(ThreeWayTest, MoveIntoSubtreeTheOtherSideDeleted) {
  Fixture f;
  // Ours moves the sentence into the second paragraph; theirs deletes that
  // paragraph wholesale. Both cannot hold: the move's destination is gone.
  Tree base = f.Parse(
      "(D (P (S \"mover x y\") (S \"a1 a2\") (S \"a3 a4\")) "
      "(P (S \"doomed b1 b2\") (S \"doomed b3 b4\")))");
  Tree ours = f.Parse(
      "(D (P (S \"a1 a2\") (S \"a3 a4\")) "
      "(P (S \"doomed b1 b2\") (S \"doomed b3 b4\") (S \"mover x y\")))");
  Tree theirs = f.Parse(
      "(D (P (S \"mover x y\") (S \"a1 a2\") (S \"a3 a4\")))");
  auto merge = ThreeWayMerge(base, ours, theirs);
  ASSERT_TRUE(merge.ok()) << merge.status().ToString();
  EXPECT_TRUE(merge->merged.Validate().ok());
  // The clash must be surfaced, not silently resolved.
  ASSERT_GE(merge->conflicts.size(), 1u);
  bool saw_delete_conflict = false;
  for (const MergeConflict& c : merge->conflicts) {
    if (c.kind == ConflictKind::kMoveDelete ||
        c.kind == ConflictKind::kDeleteEdit ||
        c.kind == ConflictKind::kUpdateDelete) {
      saw_delete_conflict = true;
    }
  }
  EXPECT_TRUE(saw_delete_conflict);
  // Ours wins: the moved sentence survives, exactly once, in the merge.
  auto values = f.LeafValues(merge->merged);
  EXPECT_EQ(std::count(values.begin(), values.end(), "mover x y"), 1);
}

TEST(ThreeWayTest, EmptyBaseMergeTakesBothSidesInserts) {
  Fixture f;
  // The degenerate but real case: both sides grew a document from nothing
  // (a bare root). Everything is an insert; nothing can conflict.
  Tree base = f.Parse("(D)");
  Tree ours = f.Parse("(D (P (S \"ours grew this\")))");
  Tree theirs = f.Parse("(D (P (S \"theirs grew that\")))");
  auto merge = ThreeWayMerge(base, ours, theirs);
  ASSERT_TRUE(merge.ok()) << merge.status().ToString();
  EXPECT_TRUE(merge->conflicts.empty());
  EXPECT_TRUE(merge->merged.Validate().ok());
  auto values = f.LeafValues(merge->merged);
  EXPECT_NE(std::find(values.begin(), values.end(), "ours grew this"),
            values.end());
  EXPECT_NE(std::find(values.begin(), values.end(), "theirs grew that"),
            values.end());
  EXPECT_GT(merge->ops_from_ours, 0u);
  EXPECT_GT(merge->ops_from_theirs, 0u);
}

TEST(ThreeWayTest, IdenticalSidesAreANoopMerge) {
  Fixture f;
  Tree base = f.Parse("(D (S \"same a b\"))");
  auto merge = ThreeWayMerge(base, base.Clone(), base.Clone());
  ASSERT_TRUE(merge.ok());
  EXPECT_TRUE(merge->conflicts.empty());
  EXPECT_EQ(merge->ops_from_ours, 0u);
  EXPECT_EQ(merge->ops_from_theirs, 0u);
  EXPECT_TRUE(Tree::Isomorphic(merge->merged, base));
}

TEST(ThreeWayTest, RejectsForeignLabelTables) {
  Fixture f;
  Tree base = f.Parse("(D (S \"x\"))");
  Tree other = *ParseSexpr("(D (S \"x\"))");  // Own table.
  EXPECT_EQ(ThreeWayMerge(base, base.Clone(), other).status().code(),
            Code::kInvalidArgument);
}

TEST(ThreeWayTest, RandomDisjointSectionsAlwaysMergeClean) {
  // Ours edits only the first half of the sections, theirs only the second:
  // structurally disjoint concurrent work must merge without conflicts and
  // contain both sides' intended changes.
  auto labels = std::make_shared<LabelTable>();
  Vocabulary vocab(500, 1.0);
  Rng rng(1001);
  DocGenParams params;
  params.sections = 6;
  Tree base = GenerateDocument(params, vocab, &rng, labels);

  // Build "ours" by editing a clone restricted to sections 0-2 via targeted
  // sentence updates; "theirs" in sections 3-5.
  auto edit_half = [&](bool first_half) {
    Tree t = base.Clone();
    const auto sections = t.children(t.root());
    int edited = 0;
    for (size_t i = 0; i < sections.size(); ++i) {
      const bool in_half = first_half ? i < 3 : i >= 3;
      if (!in_half) continue;
      for (NodeId p : t.children(sections[i])) {
        if (t.IsLeaf(p) || t.children(p).empty()) continue;
        NodeId s = t.children(p)[0];
        if (!t.IsLeaf(s)) continue;
        std::string v = t.value(s);
        v += first_half ? " oursedit" : " theirsedit";
        EXPECT_TRUE(t.UpdateValue(s, v).ok());
        ++edited;
        break;  // One edit per section keeps sentences within f.
      }
    }
    EXPECT_GT(edited, 0);
    return t;
  };
  Tree ours = edit_half(true);
  Tree theirs = edit_half(false);

  auto merge = ThreeWayMerge(base, ours, theirs);
  ASSERT_TRUE(merge.ok()) << merge.status().ToString();
  EXPECT_TRUE(merge->conflicts.empty());
  size_t ours_edits = 0, theirs_edits = 0;
  for (NodeId s : merge->merged.Leaves()) {
    const std::string& v = merge->merged.value(s);
    if (v.find(" oursedit") != std::string::npos) ++ours_edits;
    if (v.find(" theirsedit") != std::string::npos) ++theirs_edits;
  }
  EXPECT_GT(ours_edits, 0u);
  EXPECT_GT(theirs_edits, 0u);
}

}  // namespace
}  // namespace treediff
