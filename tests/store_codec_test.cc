#include "store/codec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "gen/doc_gen.h"
#include "tree/builder.h"

namespace treediff {
namespace {

// ---------------------------------------------------------------------------
// Coding primitives

TEST(CodecPrimitivesTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeefu);
  PutFixed64(&buf, 0x0123456789abcdefull);
  ASSERT_EQ(buf.size(), 12u);
  EXPECT_EQ(DecodeFixed32(buf.data()), 0xdeadbeefu);
  EXPECT_EQ(DecodeFixed64(buf.data() + 4), 0x0123456789abcdefull);
  // Little-endian on the wire.
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0xefu);
}

TEST(CodecPrimitivesTest, VarintRoundTrip) {
  const uint64_t cases[] = {0,     1,          127,        128,
                            300,   16383,      16384,      (1ull << 32) - 1,
                            1ull << 32, ~0ull};
  for (uint64_t v : cases) {
    std::string buf;
    PutVarint64(&buf, v);
    std::string_view in = buf;
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(&in, &out)) << v;
    EXPECT_EQ(out, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(CodecPrimitivesTest, VarintRejectsTruncation) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::string_view in(buf.data(), cut);
    uint64_t out = 0;
    EXPECT_FALSE(GetVarint64(&in, &out)) << "cut at " << cut;
  }
}

TEST(CodecPrimitivesTest, VarintRejectsOverlongEncoding) {
  // Eleven continuation bytes can never terminate within 64 bits.
  std::string buf(11, '\x80');
  std::string_view in = buf;
  uint64_t out = 0;
  EXPECT_FALSE(GetVarint64(&in, &out));
}

TEST(CodecPrimitivesTest, LengthPrefixedRoundTripAndTruncation) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  std::string_view in = buf;
  std::string_view s;
  ASSERT_TRUE(GetLengthPrefixed(&in, &s));
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(GetLengthPrefixed(&in, &s));
  EXPECT_EQ(s, "");
  EXPECT_TRUE(in.empty());

  // A length that claims more bytes than remain is rejected.
  std::string bad;
  PutVarint64(&bad, 100);
  bad += "short";
  std::string_view bin = bad;
  EXPECT_FALSE(GetLengthPrefixed(&bin, &s));
}

// ---------------------------------------------------------------------------
// Tree codec

TEST(TreeCodecTest, RoundTripIsArenaExact) {
  auto labels = std::make_shared<LabelTable>();
  Tree tree = *ParseSexpr(
      "(D (P (S \"alpha beta\") (S \"gamma\")) (P (S \"delta\")))", labels);
  // Mutate so the arena has a dead slot and a hole in the id sequence:
  // arena-exactness is about exactly this state surviving the round trip.
  auto inserted = tree.InsertLeaf(tree.InternLabel("S"), "temp",
                                  tree.children(tree.root())[0], 1);
  ASSERT_TRUE(inserted.ok());
  ASSERT_TRUE(tree.DeleteLeaf(*inserted).ok());

  std::string encoded = EncodeTree(tree);
  auto decoded = DecodeTree(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  ASSERT_EQ(decoded->id_bound(), tree.id_bound());
  EXPECT_EQ(decoded->size(), tree.size());
  EXPECT_EQ(decoded->root(), tree.root());
  for (NodeId x = 0; x < static_cast<NodeId>(tree.id_bound()); ++x) {
    EXPECT_EQ(decoded->Alive(x), tree.Alive(x)) << "node " << x;
    EXPECT_EQ(decoded->value(x), tree.value(x)) << "node " << x;
    EXPECT_EQ(decoded->label_name(x), tree.label_name(x)) << "node " << x;
    EXPECT_EQ(decoded->parent(x), tree.parent(x)) << "node " << x;
    if (tree.Alive(x)) {
      EXPECT_EQ(decoded->children(x), tree.children(x)) << "node " << x;
    }
  }
  EXPECT_TRUE(Tree::Isomorphic(*decoded, tree));
}

TEST(TreeCodecTest, RoundTripSharedLabelTable) {
  auto labels = std::make_shared<LabelTable>();
  Tree tree = *ParseSexpr("(D (S \"x\"))", labels);
  std::string encoded = EncodeTree(tree);
  // Decoding into the *same* table must reuse label ids, so node-level label
  // ids stay comparable.
  auto decoded = DecodeTree(encoded, labels);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->label(decoded->root()), tree.label(tree.root()));
}

TEST(TreeCodecTest, RoundTripGeneratedDocument) {
  auto labels = std::make_shared<LabelTable>();
  Vocabulary vocab(300, 1.0);
  Rng rng(7);
  DocGenParams params;
  params.sections = 3;
  Tree doc = GenerateDocument(params, vocab, &rng, labels);
  auto decoded = DecodeTree(EncodeTree(doc));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(Tree::Isomorphic(*decoded, doc));
  EXPECT_TRUE(decoded->Validate().ok());
}

TEST(TreeCodecTest, RejectsEmptyAndBadVersion) {
  EXPECT_EQ(DecodeTree("").status().code(), Code::kParseError);
  std::string bad = EncodeTree(*ParseSexpr("(D (S \"x\"))"));
  bad[0] = 99;  // Unknown codec version.
  EXPECT_EQ(DecodeTree(bad).status().code(), Code::kParseError);
}

TEST(TreeCodecTest, RejectsEveryTruncation) {
  Tree tree = *ParseSexpr("(D (P (S \"one two\") (S \"three\")))");
  std::string encoded = EncodeTree(tree);
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    auto decoded = DecodeTree(std::string_view(encoded.data(), cut));
    EXPECT_FALSE(decoded.ok()) << "truncated at " << cut;
  }
}

TEST(TreeCodecTest, SingleByteCorruptionNeverCrashesOrInvalidates) {
  Tree tree = *ParseSexpr("(D (P (S \"one two\") (S \"three four\")))");
  std::string encoded = EncodeTree(tree);
  for (size_t byte = 0; byte < encoded.size(); ++byte) {
    for (uint8_t mask : {0x01, 0x10, 0x80}) {
      std::string mutated = encoded;
      mutated[byte] = static_cast<char>(mutated[byte] ^ mask);
      auto decoded = DecodeTree(mutated);
      // Some flips decode to a different but well-formed tree (e.g. a value
      // byte); what must never happen is a crash or an invalid Tree.
      if (decoded.ok()) {
        EXPECT_TRUE(decoded->Validate().ok())
            << "byte " << byte << " mask " << int(mask);
      }
    }
  }
}

TEST(TreeCodecTest, RejectsStructuralCorruption) {
  // Hand-built encodings that pass field-level checks but violate tree
  // invariants must be rejected by validation, not installed.
  auto encode_two_node_cycle = [] {
    std::string out;
    out.push_back(1);        // codec version
    std::string body;
    PutVarint64(&body, 2);   // id bound
    PutVarint64(&body, 1);   // root = node 0
    PutVarint64(&body, 1);   // one label
    PutLengthPrefixed(&body, "L");
    // Node 0: alive, label 1, parent = node 1 (cycle), child = 1.
    body.push_back(1);
    PutVarint64(&body, 1);
    PutLengthPrefixed(&body, "");
    PutVarint64(&body, 2);
    PutVarint64(&body, 1);
    PutVarint64(&body, 1);
    // Node 1: alive, label 1, parent = node 0, child = 0.
    body.push_back(1);
    PutVarint64(&body, 1);
    PutLengthPrefixed(&body, "");
    PutVarint64(&body, 1);
    PutVarint64(&body, 1);
    PutVarint64(&body, 0);
    return out + body;
  };
  EXPECT_EQ(DecodeTree(encode_two_node_cycle()).status().code(),
            Code::kParseError);
}

}  // namespace
}  // namespace treediff
