// Tests of the [WZS95]-style move recovery over Zhang-Shasha mappings
// (Section 2's "moves have been added to the [ZS89] algorithm in a
// post-processing step").

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/diff.h"
#include "gen/doc_gen.h"
#include "gen/edit_sim.h"
#include "tree/builder.h"
#include "zs/zhang_shasha.h"

namespace treediff {
namespace {

struct Fixture {
  std::shared_ptr<LabelTable> labels = std::make_shared<LabelTable>();

  Tree Parse(const std::string& s) { return *ParseSexpr(s, labels); }
};

TEST(ZsMovesTest, NoMovesOnIdenticalTrees) {
  Fixture f;
  Tree t1 = f.Parse("(D (P (S \"a\")))");
  Tree t2 = f.Parse("(D (P (S \"a\")))");
  ZsWithMovesResult r = ZhangShashaWithMoves(t1, t2);
  EXPECT_DOUBLE_EQ(r.base_distance, 0.0);
  EXPECT_DOUBLE_EQ(r.distance_with_moves, 0.0);
  EXPECT_TRUE(r.moves.empty());
}

TEST(ZsMovesTest, RecoversSingleLeafMove) {
  Fixture f;
  // ZS must delete+insert the relocated "x" (cost 2); the recovery re-prices
  // it as one move (cost 1).
  Tree t1 = f.Parse("(D (P (S \"x\") (S \"y\")) (P (S \"z\")))");
  Tree t2 = f.Parse("(D (P (S \"y\")) (P (S \"z\") (S \"x\")))");
  ZsWithMovesResult r = ZhangShashaWithMoves(t1, t2);
  EXPECT_DOUBLE_EQ(r.base_distance, 2.0);
  ASSERT_EQ(r.moves.size(), 1u);
  EXPECT_EQ(r.moves[0].subtree_size, 1u);
  EXPECT_DOUBLE_EQ(r.moves[0].savings, 1.0);
  EXPECT_DOUBLE_EQ(r.distance_with_moves, 1.0);
  // ZS may equivalently sacrifice "x" or "y"; either way the recovered
  // pair must be a value-identical leaf.
  EXPECT_EQ(t1.value(r.moves[0].from), t2.value(r.moves[0].to));
}

TEST(ZsMovesTest, RecoversSubtreeMoveWholesale) {
  Fixture f;
  // A 4-node paragraph relocates: ZS pays 8 (4 deletes + 4 inserts)...
  // unless the mapping keeps part of it; either way the recovery pairs the
  // maximal unmapped subtrees and the final cost drops below plain ZS.
  Tree t1 = f.Parse(
      "(D (Sec (S \"a1\") (S \"a2\") (S \"a3\") "
      "(P (S \"m1\") (S \"m2\") (S \"m3\"))) (Sec (S \"b1\") (S \"b2\")))");
  Tree t2 = f.Parse(
      "(D (Sec (S \"a1\") (S \"a2\") (S \"a3\")) "
      "(Sec (S \"b1\") (S \"b2\") (P (S \"m1\") (S \"m2\") (S \"m3\"))))");
  ZsWithMovesResult r = ZhangShashaWithMoves(t1, t2);
  EXPECT_GT(r.base_distance, r.distance_with_moves);
  ASSERT_GE(r.moves.size(), 1u);
  EXPECT_EQ(r.moves[0].subtree_size, 4u);
  EXPECT_DOUBLE_EQ(r.moves[0].savings, 7.0);  // 8 - 1.
}

TEST(ZsMovesTest, NonIsomorphicSubtreesNotPaired) {
  Fixture f;
  // The unmapped subtrees differ in a value, so no move is recovered (ZS
  // keeps the two k-leaves mapped and sacrifices the P-block, whose two
  // versions are not isomorphic).
  Tree t1 = f.Parse(
      "(D (P (S \"gone a\")) (S \"k1\") (S \"k2\"))");
  Tree t2 = f.Parse(
      "(D (S \"k1\") (S \"k2\") (P (S \"different b\")))");
  ZsWithMovesResult r = ZhangShashaWithMoves(t1, t2);
  EXPECT_TRUE(r.moves.empty());
  EXPECT_DOUBLE_EQ(r.base_distance, r.distance_with_moves);
}

TEST(ZsMovesTest, DuplicateSubtreesPairGreedilyOneToOne) {
  Fixture f;
  // Two identical subtrees move; each T1 instance pairs with a distinct T2
  // instance.
  Tree t1 = f.Parse(
      "(D (P (S \"dup\")) (P (S \"dup\")) (S \"k1\") (S \"k2\"))");
  Tree t2 = f.Parse(
      "(D (S \"k1\") (S \"k2\") (P (S \"dup\")) (P (S \"dup\")))");
  ZsWithMovesResult r = ZhangShashaWithMoves(t1, t2);
  // ZS may keep one instance mapped in place; at least one becomes a
  // recovered move, and never two moves to one target.
  std::set<NodeId> targets;
  for (const ZsMove& m : r.moves) {
    EXPECT_TRUE(targets.insert(m.to).second) << "duplicate move target";
  }
  EXPECT_LE(r.distance_with_moves, r.base_distance);
}

TEST(ZsMovesTest, ClosesGapTowardOurScripts) {
  // On a move-heavy workload, ZS+moves should land between plain ZS and
  // our MOV-native scripts.
  Fixture f;
  Vocabulary vocab(300, 1.0);
  Rng rng(81);
  DocGenParams params;
  params.sections = 3;
  Tree t1 = GenerateDocument(params, vocab, &rng, f.labels);
  EditMix movey;
  movey.update_sentence = 0.0;
  movey.insert_sentence = movey.delete_sentence = 0.1;
  movey.move_sentence = 0.4;
  movey.move_paragraph = 0.4;
  movey.insert_paragraph = movey.delete_paragraph = 0.0;
  movey.move_section = 0.0;
  SimulatedVersion v = SimulateNewVersion(t1, 10, movey, vocab, &rng);

  ZsWithMovesResult zs = ZhangShashaWithMoves(t1, v.new_tree);
  auto ours = DiffTrees(t1, v.new_tree);
  ASSERT_TRUE(ours.ok());
  EXPECT_LE(zs.distance_with_moves, zs.base_distance);
  // Our scripts exploit moves natively; ZS+recovery should not beat them
  // by much, and plain ZS should be the worst of the three on this mix.
  EXPECT_LT(zs.distance_with_moves + 1e-9, zs.base_distance + 1e-9);
}

}  // namespace
}  // namespace treediff
