// Additional mark-up coverage: list/item rendering, paragraph move labels,
// HTML move anchors, and the change report over a real document delta.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "core/delta_query.h"
#include "doc/ladiff.h"

namespace treediff {
namespace {

LaDiffResult RunLatex(const std::string& old_text,
                      const std::string& new_text, MarkupFormat format) {
  LaDiffOptions options;
  options.format = format;
  auto result = DiffLatexDocuments(old_text, new_text, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(*result);
}

TEST(MarkupListTest, ListsRenderAsItemize) {
  auto r = RunLatex(
      "\\begin{itemize}\\item Alpha one two.\\item Beta three four."
      "\\end{itemize}",
      "\\begin{itemize}\\item Alpha one two.\\item Beta three four."
      "\\end{itemize}",
      MarkupFormat::kLatex);
  EXPECT_NE(r.markup.find("\\begin{itemize}"), std::string::npos);
  EXPECT_NE(r.markup.find("\\end{itemize}"), std::string::npos);
  EXPECT_EQ(r.markup.find("marginpar"), std::string::npos);  // No changes.
}

TEST(MarkupListTest, InsertedItemGetsMarginNote) {
  auto r = RunLatex(
      "\\begin{itemize}\\item Alpha one two.\\item Beta three four."
      "\\end{itemize}",
      "\\begin{itemize}\\item Alpha one two.\\item Beta three four."
      "\\item Gamma five six.\\end{itemize}",
      MarkupFormat::kLatex);
  EXPECT_NE(r.markup.find("\\item \\marginpar{Inserted para}"),
            std::string::npos);
  EXPECT_NE(r.markup.find("\\textbf{Gamma five six.}"), std::string::npos);
}

TEST(MarkupParagraphMoveTest, OldPositionLabeledNewReferenced) {
  // A paragraph moves between sections that keep enough other content.
  // Each section keeps 4 of its 6 leaves (0.667 > t), so both sections
  // stay matched while the paragraph crosses between them.
  const char* old_doc =
      "\\section{A}\nStay a one. Stay a two.\n\nStay a three. Stay a four."
      "\n\nMover para sentence one. Mover para sentence two.\n\n"
      "\\section{B}\nStay b one. Stay b two.\n\nStay b three. Stay b four.";
  const char* new_doc =
      "\\section{A}\nStay a one. Stay a two.\n\nStay a three. Stay a four."
      "\n\n\\section{B}\nStay b one. Stay b two.\n\nStay b three. "
      "Stay b four.\n\nMover para sentence one. Mover para sentence two.";
  auto r = RunLatex(old_doc, new_doc, MarkupFormat::kLatex);
  EXPECT_NE(r.markup.find("P1: "), std::string::npos);  // Old position.
  EXPECT_NE(r.markup.find("\\marginpar{Moved from P1}"), std::string::npos);
}

TEST(MarkupHtmlMoveTest, AnchorsLinkSourceAndDestination) {
  const char* old_doc =
      "Mover sentence goes far. Anchor one stays. Anchor two stays.\n\n"
      "Target anchor a. Target anchor b.";
  const char* new_doc =
      "Anchor one stays. Anchor two stays.\n\n"
      "Target anchor a. Target anchor b. Mover sentence goes far.";
  auto r = RunLatex(old_doc, new_doc, MarkupFormat::kHtml);
  EXPECT_NE(r.markup.find("id=\"mov-S1\""), std::string::npos);
  EXPECT_NE(r.markup.find("href=\"#mov-S1\""), std::string::npos);
  EXPECT_NE(r.markup.find("class=\"mov-src\""), std::string::npos);
  EXPECT_NE(r.markup.find("class=\"mov-dst\""), std::string::npos);
}

TEST(MarkupHtmlTest, SectionsAndListsRender) {
  // Three of four leaves stay, so the section remains matched and renders
  // without an annotation.
  const char* old_doc =
      "\\section{Head}\nBody sentence one. Body sentence two. Body three.";
  const char* new_doc =
      "\\section{Head}\nBody sentence one. Body sentence two. Body three.\n"
      "\\begin{itemize}\\item New item text.\\end{itemize}";
  auto r = RunLatex(old_doc, new_doc, MarkupFormat::kHtml);
  EXPECT_NE(r.markup.find("<h1>Head</h1>"), std::string::npos);
  EXPECT_NE(r.markup.find("<ul>"), std::string::npos);
  EXPECT_NE(r.markup.find("<li>"), std::string::npos);
}

TEST(MarkupChangeReportTest, ReportOverDocumentDelta) {
  // Sections keep enough common sentences to stay matched, so the changed
  // regions are the individual sentences (the report elides unchanged
  // context and prints one line per maximal changed subtree).
  auto r = RunLatex(
      "\\section{One}\nKeep this first. Keep this too. Drop this second.\n"
      "\\section{Two}\nStays here fine. Also stays put.",
      "\\section{One}\nKeep this first. Keep this too.\n"
      "\\section{Two}\nStays here fine. Also stays put. "
      "Brand new addition.",
      MarkupFormat::kText);
  std::string report =
      RenderChangeReport(r.delta, r.old_tree.labels());
  EXPECT_NE(report.find("Drop this second."), std::string::npos);
  EXPECT_NE(report.find("Brand new addition."), std::string::npos);
  EXPECT_NE(report.find("DEL"), std::string::npos);
  EXPECT_NE(report.find("INS"), std::string::npos);
  // Paths descend through sections.
  EXPECT_NE(report.find("document[0]/section["), std::string::npos);
}

TEST(MarkupTextTest, MovePairsShareLabel) {
  auto r = RunLatex(
      "Mover sentence goes far. Anchor one stays. Anchor two stays.\n\n"
      "Target anchor a. Target anchor b.",
      "Anchor one stays. Anchor two stays.\n\n"
      "Target anchor a. Target anchor b. Mover sentence goes far.",
      MarkupFormat::kText);
  // Both the tombstone and the destination carry the same S1 label.
  const size_t first = r.markup.find("S1");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(r.markup.find("S1", first + 1), std::string::npos);
}

}  // namespace
}  // namespace treediff
