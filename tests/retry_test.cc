#include "util/retry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace treediff {
namespace {

TEST(RetryTest, IsTransientErrorIsExactlyUnavailable) {
  EXPECT_TRUE(IsTransientError(Status::Unavailable("flaky")));
  EXPECT_FALSE(IsTransientError(Status::Ok()));
  EXPECT_FALSE(IsTransientError(Status::DataLoss("gone")));
  EXPECT_FALSE(IsTransientError(Status::ResourceExhausted("disk full")));
  EXPECT_FALSE(IsTransientError(Status::InvalidArgument("bad")));
  EXPECT_FALSE(IsTransientError(Status::Internal("broken")));
}

TEST(RetryTest, FirstTrySuccessNeverSleeps) {
  std::vector<double> sleeps;
  Retryer retryer({}, [&](double s) { sleeps.push_back(s); });
  int calls = 0;
  Status s = retryer.Run([&] {
    ++calls;
    return Status::Ok();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retryer.attempts(), 1);
  EXPECT_TRUE(sleeps.empty());
  EXPECT_EQ(retryer.total_retries(), 0u);
}

TEST(RetryTest, TransientFailuresRetriedUntilSuccess) {
  std::vector<double> sleeps;
  Retryer retryer({}, [&](double s) { sleeps.push_back(s); });
  int calls = 0;
  Status s = retryer.Run([&] {
    return ++calls < 3 ? Status::Unavailable("flaky") : Status::Ok();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retryer.attempts(), 3);
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(retryer.total_retries(), 2u);
}

TEST(RetryTest, PermanentFailureNotRetried) {
  std::vector<double> sleeps;
  Retryer retryer({}, [&](double s) { sleeps.push_back(s); });
  int calls = 0;
  Status s = retryer.Run([&] {
    ++calls;
    return Status::DataLoss("permanent");
  });
  EXPECT_EQ(s.code(), Code::kDataLoss);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeps.empty());
}

TEST(RetryTest, BudgetBoundsAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  Retryer retryer(policy, [](double) {});
  int calls = 0;
  Status s = retryer.Run([&] {
    ++calls;
    return Status::Unavailable("always");
  });
  EXPECT_EQ(s.code(), Code::kUnavailable);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retryer.attempts(), 3);
}

TEST(RetryTest, AttemptBudgetBelowOneBehavesAsOne) {
  RetryPolicy policy;
  policy.max_attempts = 0;
  Retryer retryer(policy, [](double) {});
  int calls = 0;
  Status s = retryer.Run([&] {
    ++calls;
    return Status::Unavailable("always");
  });
  EXPECT_EQ(s.code(), Code::kUnavailable);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, BackoffStaysInsideJitteredEnvelope) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.010;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.050;
  policy.jitter_fraction = 0.5;
  policy.seed = 7;
  Retryer retryer(policy);
  for (int k = 1; k <= 8; ++k) {
    const double base =
        std::min(0.010 * static_cast<double>(1 << (k - 1)), 0.050);
    const double backoff = retryer.BackoffSeconds(k);
    EXPECT_GE(backoff, base * 0.5) << "retry " << k;
    EXPECT_LE(backoff, base * 1.5) << "retry " << k;
  }
}

TEST(RetryTest, BackoffScheduleIsDeterministicPerSeed) {
  RetryPolicy policy;
  policy.seed = 42;
  Retryer a(policy);
  Retryer b(policy);
  for (int k = 1; k <= 6; ++k) {
    EXPECT_DOUBLE_EQ(a.BackoffSeconds(k), b.BackoffSeconds(k)) << k;
  }
  policy.seed = 43;
  Retryer c(policy);
  bool any_different = false;
  Retryer a2({.seed = 42});
  for (int k = 1; k <= 6; ++k) {
    any_different |= a2.BackoffSeconds(k) != c.BackoffSeconds(k);
  }
  EXPECT_TRUE(any_different);
}

TEST(RetryTest, SleepsMatchBackoffStream) {
  // The sleeps Run performs are exactly the BackoffSeconds stream of an
  // identically seeded Retryer — the reproducibility the fault-injection
  // tests lean on.
  RetryPolicy policy;
  policy.seed = 99;
  std::vector<double> sleeps;
  Retryer running(policy, [&](double s) { sleeps.push_back(s); });
  int calls = 0;
  EXPECT_TRUE(running
                  .Run([&] {
                    return ++calls < 4 ? Status::Unavailable("flaky")
                                       : Status::Ok();
                  })
                  .ok());
  Retryer reference(policy);
  ASSERT_EQ(sleeps.size(), 3u);
  for (int k = 1; k <= 3; ++k) {
    EXPECT_DOUBLE_EQ(sleeps[static_cast<size_t>(k - 1)],
                     reference.BackoffSeconds(k))
        << k;
  }
}

}  // namespace
}  // namespace treediff
