// Salvage recovery (RecoveryMode::kSalvage): mid-log corruption costs the
// versions inside the damaged range, not every version after it. The scan
// resynchronizes on the next checksum-valid record, the version chain
// re-anchors on the next checkpoint, and the damaged original is
// quarantined by rotation. Also covers the hardened Open error paths and
// the golden-log format-compatibility fixture.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "store/log.h"
#include "store/version_store.h"
#include "tree/builder.h"
#include "util/fault_env.h"

namespace treediff {
namespace {

/// Version v of the test document: one paragraph per version so far, so
/// every delta is a clean insert and every version is distinguishable.
std::string DocText(int v) {
  std::string s = "(D";
  for (int p = 0; p <= v; ++p) {
    s += " (P (S \"para" + std::to_string(p) + " body words\"))";
  }
  s += ")";
  return s;
}

/// StoreOptions bound to `env` with everything else defaulted (spelled as
/// a helper because -Werror=missing-field-initializers rejects designated
/// initializers that skip fields).
StoreOptions MemOptions(Env* env) {
  StoreOptions store_options;
  store_options.env = env;
  return store_options;
}

/// Builds a durable store at `path` on `env` with versions 0..versions-1
/// (checkpoint every `checkpoint_interval` commits), then closes it.
void BuildStore(Env* env, const std::string& path, int versions,
                int checkpoint_interval) {
  StoreOptions store_options;
  store_options.env = env;
  store_options.checkpoint_interval = checkpoint_interval;
  auto store = VersionStore::Create(path, *ParseSexpr(DocText(0)), {},
                                    store_options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  for (int v = 1; v < versions; ++v) {
    auto tree = ParseSexpr(DocText(v), store->label_table());
    ASSERT_TRUE(tree.ok());
    auto committed = store->Commit(*tree);
    ASSERT_TRUE(committed.ok()) << committed.status().ToString();
    ASSERT_EQ(*committed, v);
  }
}

struct RecordLoc {
  LogRecordType type;
  uint64_t offset;  // Of the record header.
  uint64_t size;    // Header + payload.
};

/// Record layout of the log at `path`, via the same scanner recovery uses.
std::vector<RecordLoc> Records(Env* env, const std::string& path) {
  std::vector<RecordLoc> out;
  auto file = env->NewRandomAccessFile(path);
  if (!file.ok()) return out;
  auto scan = ScanLog(file->get());
  if (!scan.ok()) return out;
  for (const LogScanRecord& r : scan->records) {
    out.push_back({r.type, r.offset,
                   static_cast<uint64_t>(LogRecordHeaderSize(scan->format)) +
                       r.payload.size()});
  }
  return out;
}

/// The index in `records` of the n-th (0-based) record of `type`, or -1.
int NthOfType(const std::vector<RecordLoc>& records, LogRecordType type,
              int n) {
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].type == type && n-- == 0) return static_cast<int>(i);
  }
  return -1;
}

void ExpectVersionsIntact(const VersionStore& store,
                          const std::vector<int>& versions) {
  for (int v : versions) {
    EXPECT_TRUE(store.VersionAvailable(v)) << "version " << v;
    auto tree = store.Materialize(v);
    ASSERT_TRUE(tree.ok()) << "version " << v << ": "
                           << tree.status().ToString();
    auto expected = ParseSexpr(DocText(v), store.label_table());
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(Tree::Isomorphic(*tree, *expected)) << "version " << v;
  }
}

// ---------------------------------------------------------------------------
// Salvage past mid-log corruption.

TEST(SalvageRecoveryTest, MidLogCorruptionCostsOnlyTheDamagedRange) {
  MemEnv env;
  BuildStore(&env, "s.log", 7, 2);
  // Log: snapshot, d1, d2, cp2, d3, d4, cp4, d5, d6, cp6. Corrupt d3 (the
  // delta right after the first checkpoint): salvage resyncs on d4, which
  // is unusable inside the hole, and re-anchors on cp4.
  auto records = Records(&env, "s.log");
  const int target = NthOfType(records, LogRecordType::kDelta, 2);
  ASSERT_GE(target, 0);
  ASSERT_TRUE(
      env.CorruptByte("s.log", records[static_cast<size_t>(target)].offset +
                                   kLogRecordHeaderSize + 2,
                      0x40)
          .ok());

  // The conservative default still stops at the damage.
  {
    RecoveryReport report;
    auto truncated = VersionStore::Open("s.log", {}, MemOptions(&env), &report);
    ASSERT_TRUE(truncated.ok()) << truncated.status().ToString();
    EXPECT_EQ(truncated->VersionCount(), 3);
    EXPECT_EQ(report.checksum_failures, 1u);
    EXPECT_GT(report.bytes_truncated, 0u);
    EXPECT_FALSE(report.clean());
    // Reads only: reopening must not modify the file while another config
    // could still salvage it... except for the tail truncation, so rebuild
    // the damaged input for the salvage run below.
  }

  MemEnv env2;
  BuildStore(&env2, "s.log", 7, 2);
  ASSERT_TRUE(
      env2.CorruptByte("s.log", records[static_cast<size_t>(target)].offset +
                                    kLogRecordHeaderSize + 2,
                       0x40)
          .ok());
  StoreOptions salvage;
  salvage.env = &env2;
  salvage.recovery = RecoveryMode::kSalvage;
  RecoveryReport report;
  auto store = VersionStore::Open("s.log", {}, salvage, &report);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  // Versions before the damage and from the re-anchoring checkpoint on
  // are intact; version 3 fell in the hole.
  EXPECT_EQ(store->VersionCount(), 7);
  ExpectVersionsIntact(*store, {0, 1, 2, 4, 5, 6});
  EXPECT_FALSE(store->VersionAvailable(3));
  EXPECT_EQ(store->Materialize(3).status().code(), Code::kDataLoss);

  EXPECT_EQ(report.checksum_failures, 1u);
  EXPECT_GE(report.records_skipped, 1u);
  EXPECT_EQ(report.versions_lost, 1u);
  EXPECT_TRUE(report.rotated);
  EXPECT_FALSE(report.salvage_ranges.empty());
  EXPECT_FALSE(report.clean());

  // The damaged original was quarantined, not destroyed.
  bool quarantined = false;
  for (const std::string& f : env2.ListFiles()) {
    quarantined |= f.rfind("s.log.", 0) == 0;
  }
  EXPECT_TRUE(quarantined);
}

TEST(SalvageRecoveryTest, RewrittenLogReopensInDefaultMode) {
  MemEnv env;
  BuildStore(&env, "s.log", 7, 2);
  auto records = Records(&env, "s.log");
  const int target = NthOfType(records, LogRecordType::kDelta, 2);
  ASSERT_GE(target, 0);
  ASSERT_TRUE(
      env.CorruptByte("s.log", records[static_cast<size_t>(target)].offset +
                                   kLogRecordHeaderSize + 2,
                      0x40)
          .ok());
  StoreOptions salvage;
  salvage.env = &env;
  salvage.recovery = RecoveryMode::kSalvage;
  {
    auto store = VersionStore::Open("s.log", {}, salvage, nullptr);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
  }
  // Salvage rotated the log; the rewrite (with its re-anchoring jump
  // checkpoint) must reopen under the conservative default, holes intact.
  RecoveryReport report;
  auto reopened = VersionStore::Open("s.log", {}, MemOptions(&env), &report);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->VersionCount(), 7);
  ExpectVersionsIntact(*reopened, {0, 1, 2, 4, 5, 6});
  EXPECT_FALSE(reopened->VersionAvailable(3));
  EXPECT_EQ(report.bytes_truncated, 0u);
  EXPECT_EQ(report.checksum_failures, 0u);
  EXPECT_FALSE(report.rotated);
  EXPECT_EQ(report.versions_lost, 1u);  // The pre-existing hole persists.
}

TEST(SalvageRecoveryTest, CommitsContinueAfterSalvage) {
  MemEnv env;
  BuildStore(&env, "s.log", 7, 2);
  auto records = Records(&env, "s.log");
  const int target = NthOfType(records, LogRecordType::kDelta, 2);
  ASSERT_GE(target, 0);
  ASSERT_TRUE(
      env.CorruptByte("s.log", records[static_cast<size_t>(target)].offset +
                                   kLogRecordHeaderSize + 2,
                      0x40)
          .ok());
  StoreOptions salvage;
  salvage.env = &env;
  salvage.recovery = RecoveryMode::kSalvage;
  auto store = VersionStore::Open("s.log", {}, salvage, nullptr);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto next = ParseSexpr(DocText(7), store->label_table());
  ASSERT_TRUE(next.ok());
  auto committed = store->Commit(*next);
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  EXPECT_EQ(*committed, 7);
  ExpectVersionsIntact(*store, {7});
}

TEST(SalvageRecoveryTest, RollbackCannotCrossASalvageHole) {
  MemEnv env;
  BuildStore(&env, "s.log", 7, 2);
  auto records = Records(&env, "s.log");
  const int target = NthOfType(records, LogRecordType::kDelta, 2);
  ASSERT_GE(target, 0);
  ASSERT_TRUE(
      env.CorruptByte("s.log", records[static_cast<size_t>(target)].offset +
                                   kLogRecordHeaderSize + 2,
                      0x40)
          .ok());
  StoreOptions salvage;
  salvage.env = &env;
  salvage.recovery = RecoveryMode::kSalvage;
  auto store = VersionStore::Open("s.log", {}, salvage, nullptr);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  // 6 -> 5 -> 4 roll back fine; 4 is the re-anchor, and the version before
  // it lies across the hole.
  ASSERT_TRUE(store->RollbackHead().ok());
  ASSERT_TRUE(store->RollbackHead().ok());
  auto blocked = store->RollbackHead();
  EXPECT_EQ(blocked.status().code(), Code::kFailedPrecondition);
  EXPECT_NE(blocked.status().message().find("salvage hole"),
            std::string::npos);
  // The failed rollback left the store unchanged and serving.
  EXPECT_EQ(store->VersionCount(), 5);
  ExpectVersionsIntact(*store, {4});
}

TEST(SalvageRecoveryTest, HoleVersionsReportAbsentInfoAndDelta) {
  MemEnv env;
  BuildStore(&env, "s.log", 7, 2);
  auto records = Records(&env, "s.log");
  const int target = NthOfType(records, LogRecordType::kDelta, 2);
  ASSERT_GE(target, 0);
  ASSERT_TRUE(
      env.CorruptByte("s.log", records[static_cast<size_t>(target)].offset +
                                   kLogRecordHeaderSize + 2,
                      0x40)
          .ok());
  StoreOptions salvage;
  salvage.env = &env;
  salvage.recovery = RecoveryMode::kSalvage;
  auto store = VersionStore::Open("s.log", {}, salvage, nullptr);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  // The hole has no delta and no info; the re-anchor has a tree but no
  // surviving delta stats; versions after it have both.
  EXPECT_EQ(store->DeltaFor(3), nullptr);
  EXPECT_EQ(store->Info(3).nodes, 0u);
  EXPECT_EQ(store->DeltaFor(4), nullptr);
  EXPECT_EQ(store->Info(4).nodes, 0u);
  EXPECT_NE(store->DeltaFor(5), nullptr);
  EXPECT_GT(store->Info(5).nodes, 0u);
  EXPECT_GT(store->Storage().delta_bytes, 0u);
}

TEST(SalvageRecoveryTest, WithoutCheckpointsSalvageStopsAtTheDamage) {
  MemEnv env;
  BuildStore(&env, "s.log", 5, /*checkpoint_interval=*/0);
  auto records = Records(&env, "s.log");
  const int target = NthOfType(records, LogRecordType::kDelta, 1);
  ASSERT_GE(target, 0);
  ASSERT_TRUE(
      env.CorruptByte("s.log", records[static_cast<size_t>(target)].offset +
                                   kLogRecordHeaderSize + 2,
                      0x40)
          .ok());
  StoreOptions salvage;
  salvage.env = &env;
  salvage.recovery = RecoveryMode::kSalvage;
  RecoveryReport report;
  auto store = VersionStore::Open("s.log", {}, salvage, &report);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  // Nothing to re-anchor on: the records after the damage are parseable
  // but underivable, so only the prefix survives.
  EXPECT_EQ(store->VersionCount(), 2);
  ExpectVersionsIntact(*store, {0, 1});
  EXPECT_GE(report.records_skipped, 2u);
  EXPECT_TRUE(report.rotated);
}

// ---------------------------------------------------------------------------
// Hardened Open error paths.

TEST(OpenErrorPathTest, MissingFileIsNotFound) {
  MemEnv env;
  auto store = VersionStore::Open("nope.log", {}, MemOptions(&env));
  EXPECT_EQ(store.status().code(), Code::kNotFound);
}

TEST(OpenErrorPathTest, ZeroLengthFileIsDataLossNamingThePath) {
  MemEnv env;
  {
    auto file = env.NewWritableFile("empty.log", true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto store = VersionStore::Open("empty.log", {}, MemOptions(&env));
  EXPECT_EQ(store.status().code(), Code::kDataLoss);
  EXPECT_NE(store.status().message().find("zero-length"), std::string::npos);
  EXPECT_NE(store.status().message().find("empty.log"), std::string::npos);
}

TEST(OpenErrorPathTest, DirectoryPathIsInvalidArgument) {
  // The POSIX Env rejects directories up front instead of letting a read
  // of a directory fd surface as a confusing I/O error. "." always exists.
  auto store = VersionStore::Open(".");
  EXPECT_EQ(store.status().code(), Code::kInvalidArgument);
  EXPECT_NE(store.status().message().find("directory"), std::string::npos);
}

TEST(OpenErrorPathTest, BadMagicIsDataLossNamingThePath) {
  MemEnv env;
  {
    auto file = env.NewWritableFile("junk.log", true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("this is not a commit log at all").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto store = VersionStore::Open("junk.log", {}, MemOptions(&env));
  EXPECT_EQ(store.status().code(), Code::kDataLoss);
  EXPECT_NE(store.status().message().find("junk.log"), std::string::npos);
}

TEST(OpenErrorPathTest, MagicButNoBaseSnapshotIsDataLoss) {
  MemEnv env;
  {
    auto file = env.NewWritableFile("hdr.log", true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(
        (*file)->Append(std::string(kLogMagic, kLogMagicSize)).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto store = VersionStore::Open("hdr.log", {}, MemOptions(&env));
  EXPECT_EQ(store.status().code(), Code::kDataLoss);
  EXPECT_NE(store.status().message().find("base snapshot"),
            std::string::npos);
}

TEST(OpenErrorPathTest, FirstRecordOfWrongTypeIsDataLoss) {
  MemEnv env;
  {
    auto file = env.NewWritableFile("wrong.log", true);
    ASSERT_TRUE(file.ok());
    std::string payload;
    payload.push_back('\x05');  // varint version 5, no tree bytes
    ASSERT_TRUE(
        (*file)->Append(std::string(kLogMagic, kLogMagicSize)).ok());
    ASSERT_TRUE(
        (*file)
            ->Append(EncodeLogRecord(LogRecordType::kCheckpoint, payload))
            .ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto store = VersionStore::Open("wrong.log", {}, MemOptions(&env));
  EXPECT_EQ(store.status().code(), Code::kDataLoss);
  EXPECT_NE(store.status().message().find("base snapshot"),
            std::string::npos);
}

TEST(OpenErrorPathTest, CorruptBaseSnapshotIsDataLossEvenInSalvage) {
  MemEnv env;
  BuildStore(&env, "s.log", 3, 0);
  auto records = Records(&env, "s.log");
  ASSERT_FALSE(records.empty());
  ASSERT_EQ(records[0].type, LogRecordType::kSnapshot);
  ASSERT_TRUE(
      env.CorruptByte("s.log", records[0].offset + kLogRecordHeaderSize + 1,
                      0x10)
          .ok());
  StoreOptions salvage;
  salvage.env = &env;
  salvage.recovery = RecoveryMode::kSalvage;
  auto store = VersionStore::Open("s.log", {}, salvage);
  EXPECT_EQ(store.status().code(), Code::kDataLoss);
}

// ---------------------------------------------------------------------------
// RecoveryReport::ToString, including the salvage fields.

TEST(RecoveryReportTest, ToStringCleanRecovery) {
  RecoveryReport report;
  report.bytes_total = 100;
  report.records_scanned = 4;
  report.versions_recovered = 3;
  report.deltas_replayed = 2;
  report.checkpoint_version = -1;
  EXPECT_TRUE(report.clean());
  const std::string s = report.ToString();
  EXPECT_NE(s.find("recovered 3 version(s)"), std::string::npos);
  EXPECT_NE(s.find("head replayed from base (2 delta(s))"),
            std::string::npos);
  EXPECT_EQ(s.find("truncated"), std::string::npos);
  EXPECT_EQ(s.find("salvaged"), std::string::npos);
}

TEST(RecoveryReportTest, ToStringTruncationAndCheckpoint) {
  RecoveryReport report;
  report.bytes_total = 500;
  report.bytes_truncated = 17;
  report.torn_tail = true;
  report.records_scanned = 9;
  report.versions_recovered = 8;
  report.deltas_replayed = 1;
  report.checkpoint_version = 6;
  EXPECT_FALSE(report.clean());
  const std::string s = report.ToString();
  EXPECT_NE(s.find("head from checkpoint v6 + 1 delta(s)"),
            std::string::npos);
  EXPECT_NE(s.find("truncated 17 byte(s) (torn tail)"), std::string::npos);
}

TEST(RecoveryReportTest, ToStringSalvageFields) {
  RecoveryReport report;
  report.bytes_total = 900;
  report.records_scanned = 10;
  report.checksum_failures = 2;
  report.versions_recovered = 7;
  report.deltas_replayed = 2;
  report.checkpoint_version = 8;
  report.records_skipped = 3;
  report.versions_lost = 2;
  report.rotated = true;
  report.salvage_ranges = {{40, 61}, {200, 231}};
  EXPECT_FALSE(report.clean());
  const std::string s = report.ToString();
  EXPECT_NE(s.find("salvaged past 2 damaged range(s) [40-61, 200-231)"),
            std::string::npos);
  EXPECT_NE(s.find("skipped 3 record(s)"), std::string::npos);
  EXPECT_NE(s.find("lost 2 version(s)"), std::string::npos);
  EXPECT_NE(s.find("log rewritten (original quarantined)"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Golden log: a frozen on-disk image from the current format generation.
// If a format change ever breaks the ability to read logs written by
// earlier builds, this fails before any user's store does.

#ifndef TREEDIFF_TESTDATA_DIR
#define TREEDIFF_TESTDATA_DIR "tests/testdata"
#endif

StatusOr<std::string> ReadHexFixture(const std::string& name) {
  std::ifstream in(std::string(TREEDIFF_TESTDATA_DIR) + "/" + name);
  if (!in) return Status::NotFound("fixture not found: " + name);
  std::string bytes;
  int hi = -1;
  char c;
  while (in.get(c)) {
    int nibble;
    if (c >= '0' && c <= '9') {
      nibble = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      nibble = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      nibble = c - 'A' + 10;
    } else {
      continue;  // Whitespace / line breaks.
    }
    if (hi < 0) {
      hi = nibble;
    } else {
      bytes.push_back(static_cast<char>((hi << 4) | nibble));
      hi = -1;
    }
  }
  return bytes;
}

TEST(GoldenLogTest, FrozenV1LogRecoversExactly) {
  auto bytes = ReadHexFixture("golden_v1_log.hex");
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  MemEnv env;
  {
    auto file = env.NewWritableFile("golden.log", true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(*bytes).ok());
    ASSERT_TRUE((*file)->Sync().ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  RecoveryReport report;
  auto store = VersionStore::Open("golden.log", {}, MemOptions(&env), &report);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE(report.clean()) << report.ToString();
  // The fixture holds versions 0..4 of DocText with a checkpoint every 2
  // commits (see tests/testdata/README).
  EXPECT_EQ(store->VersionCount(), 5);
  ExpectVersionsIntact(*store, {0, 1, 2, 3, 4});
  // Recovery must not have modified the log: byte-identical round trip.
  auto after = env.FileBytes("golden.log");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *bytes);
}

/// Plants `bytes` as golden.log on `env`.
void PlantFixture(MemEnv* env, const std::string& bytes) {
  auto file = env->NewWritableFile("golden.log", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(bytes).ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());
}

TEST(GoldenLogTest, FrozenV1LogSalvagesPastMidLogDamage) {
  // Salvage must keep working on the frozen v1 image, not just on logs the
  // current build wrote itself. Corrupt a delta payload byte mid-log: the
  // damaged version falls in the hole, everything else survives.
  auto bytes = ReadHexFixture("golden_v1_log.hex");
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  MemEnv env;
  PlantFixture(&env, *bytes);
  auto records = Records(&env, "golden.log");
  // Fixture layout: snapshot, d1, d2, cp2, d3, d4, cp4. Hit d3.
  const int target = NthOfType(records, LogRecordType::kDelta, 2);
  ASSERT_GE(target, 0);
  ASSERT_TRUE(
      env.CorruptByte("golden.log",
                      records[static_cast<size_t>(target)].offset +
                          kLogRecordHeaderSize + 2,
                      0x40)
          .ok());
  StoreOptions salvage = MemOptions(&env);
  salvage.recovery = RecoveryMode::kSalvage;
  RecoveryReport report;
  auto store = VersionStore::Open("golden.log", {}, salvage, &report);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store->VersionCount(), 5);
  ExpectVersionsIntact(*store, {0, 1, 2, 4});
  EXPECT_FALSE(store->VersionAvailable(3));
  EXPECT_EQ(report.records_skipped, 1u);
}

TEST(GoldenLogTest, FrozenV1LogKeepsV1FramingAcrossAppends) {
  // Opening an old-format log must not silently upgrade it: new commits
  // append v1 frames to a v1 log (only rotation rewrites to the current
  // generation), so a store shared with an older build stays readable by
  // that build.
  auto bytes = ReadHexFixture("golden_v1_log.hex");
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  MemEnv env;
  PlantFixture(&env, *bytes);
  {
    auto store = VersionStore::Open("golden.log", {}, MemOptions(&env));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_EQ(store->log_format(), LogFormat::kV1);
    auto tree = ParseSexpr(DocText(5), store->label_table());
    ASSERT_TRUE(tree.ok());
    auto committed = store->Commit(*tree);
    ASSERT_TRUE(committed.ok()) << committed.status().ToString();
    EXPECT_EQ(*committed, 5);
    EXPECT_EQ(store->log_format(), LogFormat::kV1);
  }
  // The appended log still scans as v1 end to end and reopens cleanly.
  {
    auto file = env.NewRandomAccessFile("golden.log");
    ASSERT_TRUE(file.ok());
    auto scan = ScanLog(file->get());
    ASSERT_TRUE(scan.ok());
    EXPECT_EQ(scan->format, LogFormat::kV1);
  }
  RecoveryReport report;
  auto reopened = VersionStore::Open("golden.log", {}, MemOptions(&env),
                                     &report);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_EQ(reopened->VersionCount(), 6);
  ExpectVersionsIntact(*reopened, {0, 1, 2, 3, 4, 5});
}

TEST(GoldenLogTest, FrozenV2LogRecoversExactly) {
  // The current generation gets the same freeze: a v2 image written when
  // the epoch field landed must stay readable by every future build.
  auto bytes = ReadHexFixture("golden_v2_log.hex");
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  MemEnv env;
  PlantFixture(&env, *bytes);
  RecoveryReport report;
  auto store = VersionStore::Open("golden.log", {}, MemOptions(&env), &report);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_EQ(store->log_format(), LogFormat::kV2);
  EXPECT_EQ(store->VersionCount(), 5);
  EXPECT_EQ(store->epoch(), 0u);
  ExpectVersionsIntact(*store, {0, 1, 2, 3, 4});
  auto after = env.FileBytes("golden.log");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *bytes);
}

}  // namespace
}  // namespace treediff
