// Crash-recovery property test for the durable VersionStore.
//
// For every seed, a deterministic workload (random document versions from
// gen/edit_sim, plus a rollback) is committed to a store on an in-memory
// file system. The run is then repeated once per *fault point* — a torn
// write at each record boundary and inside each record, a failed fsync, and
// a power loss during fsync — and the store is killed at that point,
// "restarted" (unsynced bytes dropped), and reopened. The property: the
// recovered store serves exactly the acknowledged prefix of the workload —
// every surviving version materializes isomorphic to its snapshot, never a
// torn mix — and keeps accepting commits.
//
// Seeds: TREEDIFF_FAULT_SEEDS selects how many (default 4; CI runs 32).
// On failure, the post-crash log is dumped to TREEDIFF_FAULT_ARTIFACT_DIR
// (when set) so the exact byte state ships with the bug report.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gen/doc_gen.h"
#include "gen/edit_sim.h"
#include "store/log.h"
#include "store/version_store.h"
#include "tree/builder.h"
#include "util/fault_env.h"
#include "util/random.h"

namespace treediff {
namespace {

constexpr char kPath[] = "wal";

size_t SeedCount() {
  const char* env = std::getenv("TREEDIFF_FAULT_SEEDS");
  if (env == nullptr) return 4;
  long n = std::strtol(env, nullptr, 10);
  return n > 0 ? static_cast<size_t>(n) : 4;
}

/// One deterministic workload: a base document and the version trees the
/// driver will commit, all sharing one label table.
struct Workload {
  std::shared_ptr<LabelTable> labels;
  Tree base{nullptr};
  std::vector<Tree> versions;
};

enum class Op { kCommit, kRollback };

// Commit t0, t1, roll back, commit t2, t3: covers delta, rollback, and (with
// checkpoint_interval = 2) checkpoint records, including a checkpoint
// invalidated by the later rollback.
const std::vector<Op> kSchedule = {Op::kCommit, Op::kCommit, Op::kRollback,
                                   Op::kCommit, Op::kCommit};

Workload MakeWorkload(uint64_t seed) {
  Workload w;
  w.labels = std::make_shared<LabelTable>();
  Vocabulary vocab(200, 1.0);
  Rng rng(seed);
  DocGenParams params;
  params.sections = 2;
  w.base = GenerateDocument(params, vocab, &rng, w.labels);
  Tree current = w.base.Clone();
  for (size_t i = 0; i + 1 < kSchedule.size(); ++i) {  // 4 commits.
    SimulatedVersion next = SimulateNewVersion(current, 3, {}, vocab, &rng);
    w.versions.push_back(next.new_tree.Clone());
    current = std::move(next.new_tree);
  }
  return w;
}

StoreOptions Opts(Env* env) {
  StoreOptions o;
  o.env = env;
  o.checkpoint_interval = 2;
  return o;
}

/// Drives the workload against `env` until an operation fails (the injected
/// fault) or the schedule completes. Returns the number of acknowledged
/// operations; -1 if Create itself failed.
int Drive(Env* env, const Workload& w) {
  auto store = VersionStore::Create(kPath, w.base.Clone(), {}, Opts(env));
  if (!store.ok()) return -1;
  int acked = 0;
  size_t next_commit = 0;
  for (Op op : kSchedule) {
    bool ok = op == Op::kCommit ? store->Commit(w.versions[next_commit]).ok()
                                : store->RollbackHead().ok();
    if (op == Op::kCommit) ++next_commit;
    if (!ok) break;
    ++acked;
  }
  return acked;
}

/// The store states (as trees) after the first `acked` acknowledged ops.
std::vector<const Tree*> ExpectedChain(const Workload& w, int acked) {
  std::vector<const Tree*> chain = {&w.base};
  size_t next_commit = 0;
  for (int i = 0; i < acked; ++i) {
    if (kSchedule[static_cast<size_t>(i)] == Op::kCommit) {
      chain.push_back(&w.versions[next_commit++]);
    } else {
      chain.pop_back();
    }
  }
  return chain;
}

void DumpArtifact(MemEnv* mem, uint64_t seed, const std::string& fault) {
  const char* dir = std::getenv("TREEDIFF_FAULT_ARTIFACT_DIR");
  if (dir == nullptr) return;
  std::filesystem::create_directories(dir);
  auto bytes = mem->FileBytes(kPath);
  const std::string stem = std::string(dir) + "/seed" + std::to_string(seed) +
                           "_" + fault;
  if (bytes.ok()) {
    std::ofstream out(stem + ".log", std::ios::binary);
    out.write(bytes->data(), static_cast<std::streamsize>(bytes->size()));
  }
  std::ofstream desc(stem + ".txt");
  desc << "seed=" << seed << " fault=" << fault
       << " log_present=" << bytes.ok() << "\n";
}

/// Runs the workload with `plan`, crashes, restarts, reopens, and checks the
/// recovered store against the acknowledged prefix.
void CheckFaultPoint(const Workload& w, uint64_t seed, FaultPlan plan,
                     const std::string& fault_name) {
  const bool failed_before = ::testing::Test::HasFailure();
  MemEnv mem;
  FaultInjectingEnv env(&mem, plan);
  int acked = Drive(&env, w);
  // Restart: the machine comes back with only the synced bytes.
  mem.DropUnsynced();

  if (acked < 0) {
    // Create never acknowledged: the tmp-file + rename protocol must leave
    // no store at the path, so Open fails rather than seeing half a log.
    EXPECT_FALSE(mem.FileExists(kPath)) << fault_name;
    EXPECT_FALSE(VersionStore::Open(kPath, {}, Opts(&mem)).ok()) << fault_name;
  } else {
    std::vector<const Tree*> chain = ExpectedChain(w, acked);
    RecoveryReport report;
    auto store = VersionStore::Open(kPath, {}, Opts(&mem), &report);
    ASSERT_TRUE(store.ok()) << fault_name << ": " << store.status().ToString();
    EXPECT_EQ(static_cast<size_t>(store->VersionCount()), chain.size())
        << fault_name << ": " << report.ToString();
    for (int v = 0; v < store->VersionCount(); ++v) {
      auto tree = store->Materialize(v);
      ASSERT_TRUE(tree.ok()) << fault_name << " version " << v;
      EXPECT_TRUE(
          Tree::Isomorphic(*tree, *chain[static_cast<size_t>(v)]))
          << fault_name << ": version " << v
          << " is not the committed snapshot (" << report.ToString() << ")";
    }
    EXPECT_EQ(report.versions_recovered, chain.size()) << fault_name;

    // The recovered store must accept new commits (on its own recovered
    // label table).
    Tree head = *store->Materialize(store->VersionCount() - 1);
    Vocabulary vocab(200, 1.0);
    Rng rng(seed ^ 0x9E3779B97F4A7C15ull);
    SimulatedVersion next = SimulateNewVersion(head, 2, {}, vocab, &rng);
    EXPECT_TRUE(store->Commit(next.new_tree).ok()) << fault_name;
  }
  if (::testing::Test::HasFailure() && !failed_before) {
    DumpArtifact(&mem, seed, fault_name);
  }
}

TEST(CrashRecoveryPropertyTest, EveryFaultPointRecoversExactly) {
  const size_t seeds = SeedCount();
  for (size_t i = 0; i < seeds; ++i) {
    const uint64_t seed = 0xC0FFEE + i * 7919;
    Workload w = MakeWorkload(seed);

    // Fault-free baseline: learn the byte layout and sync count, and verify
    // the workload itself is sound.
    MemEnv baseline_mem;
    FaultInjectingEnv baseline_env(&baseline_mem);
    ASSERT_EQ(Drive(&baseline_env, w),
              static_cast<int>(kSchedule.size()))
        << "seed " << seed;
    const uint64_t total_bytes = baseline_env.bytes_written();
    const uint64_t total_syncs = baseline_env.sync_calls();
    auto file = baseline_mem.NewRandomAccessFile(kPath);
    ASSERT_TRUE(file.ok());
    auto scan = ScanLog(file->get());
    ASSERT_TRUE(scan.ok()) << scan.status().ToString();
    ASSERT_GE(scan->records.size(), kSchedule.size());

    // Byte-level fault points: each record boundary +/- 1, the middle of
    // each record, and the extremes of the stream.
    std::set<uint64_t> byte_points = {0, kLogMagicSize, total_bytes - 1,
                                      total_bytes};
    for (const LogScanRecord& rec : scan->records) {
      const uint64_t end = rec.offset + LogRecordHeaderSize(scan->format) +
                           rec.payload.size();
      byte_points.insert(rec.offset - 1);
      byte_points.insert(rec.offset);
      byte_points.insert(rec.offset + 1);
      byte_points.insert(rec.offset + (end - rec.offset) / 2);
    }
    for (uint64_t point : byte_points) {
      if (point > total_bytes) continue;
      FaultPlan plan;
      plan.crash_at_byte = point;
      CheckFaultPoint(w, seed, plan,
                      "crash_at_byte_" + std::to_string(point));
    }

    // Sync-level fault points: every fsync both fails visibly and is
    // interrupted by a crash.
    for (uint64_t k = 1; k <= total_syncs; ++k) {
      FaultPlan fail;
      fail.fail_sync_at = k;
      CheckFaultPoint(w, seed, fail, "fail_sync_" + std::to_string(k));
      FaultPlan crash;
      crash.crash_during_sync_at = k;
      CheckFaultPoint(w, seed, crash,
                      "crash_during_sync_" + std::to_string(k));
    }
  }
}

TEST(CrashRecoveryPropertyTest, RandomCorruptionNeverYieldsTornState) {
  // Beyond clean crashes: flip random bytes in a sealed log. Open must
  // either refuse or recover a consistent prefix — every served version
  // must be one of the committed snapshots.
  const uint64_t seed = 0xBADC0DE;
  Workload w = MakeWorkload(seed);
  MemEnv pristine;
  {
    FaultInjectingEnv env(&pristine);
    ASSERT_EQ(Drive(&env, w), static_cast<int>(kSchedule.size()));
  }
  auto bytes = pristine.FileBytes(kPath);
  ASSERT_TRUE(bytes.ok());
  const std::vector<const Tree*> full_chain =
      ExpectedChain(w, static_cast<int>(kSchedule.size()));

  Rng rng(seed);
  for (int trial = 0; trial < 200; ++trial) {
    MemEnv mem;
    {
      auto file = mem.NewWritableFile(kPath, true);
      ASSERT_TRUE(file.ok());
      ASSERT_TRUE((*file)->Append(*bytes).ok());
      ASSERT_TRUE((*file)->Sync().ok());
    }
    const int flips = 1 + static_cast<int>(rng.Uniform(3));
    for (int f = 0; f < flips; ++f) {
      uint64_t offset = rng.Uniform(bytes->size());
      uint8_t mask = static_cast<uint8_t>(1u << rng.Uniform(8));
      ASSERT_TRUE(mem.CorruptByte(kPath, offset, mask).ok());
    }
    RecoveryReport report;
    auto store = VersionStore::Open(kPath, {}, Opts(&mem), &report);
    if (!store.ok()) continue;  // Refusing a mangled log is always legal.
    // Whatever survived must be a prefix-consistent chain of real
    // snapshots (a flip inside a value can only be served if the checksum
    // missed it, which CRC32C makes effectively impossible for <= 3 flips).
    ASSERT_LE(static_cast<size_t>(store->VersionCount()), full_chain.size());
    for (int v = 0; v < store->VersionCount(); ++v) {
      auto tree = store->Materialize(v);
      ASSERT_TRUE(tree.ok()) << "trial " << trial << " version " << v;
      EXPECT_TRUE(tree->Validate().ok()) << "trial " << trial;
      // Every served version is some committed snapshot, never a torn mix.
      bool known = Tree::Isomorphic(*tree, w.base);
      for (const Tree& snap : w.versions) {
        known = known || Tree::Isomorphic(*tree, snap);
      }
      EXPECT_TRUE(known) << "trial " << trial << " version " << v
                         << " matches no committed snapshot";
    }
  }
}

}  // namespace
}  // namespace treediff
