#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

namespace treediff {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool({.num_threads = 4, .queue_capacity = 128});
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, TrySubmitReportsFullQueue) {
  // One worker blocked on a gate; capacity 2. The first task occupies the
  // worker, the next two fill the queue, the fourth must be rejected.
  ThreadPool pool({.num_threads = 1, .queue_capacity = 2});
  std::mutex mu;
  std::condition_variable cv;
  bool gate_open = false;
  bool worker_entered = false;

  ASSERT_TRUE(pool.TrySubmit([&] {
    std::unique_lock<std::mutex> lock(mu);
    worker_entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return gate_open; });
  }));
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return worker_entered; });
  }
  EXPECT_TRUE(pool.TrySubmit([] {}));
  EXPECT_TRUE(pool.TrySubmit([] {}));
  EXPECT_EQ(pool.QueueDepth(), 2u);
  EXPECT_FALSE(pool.TrySubmit([] {}));  // Full: shed.
  {
    std::lock_guard<std::mutex> lock(mu);
    gate_open = true;
  }
  cv.notify_all();
  pool.Shutdown();
  EXPECT_EQ(pool.QueueDepth(), 0u);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool({.num_threads = 2, .queue_capacity = 64});
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
    }
    // Destructor runs Shutdown: every accepted task must have run.
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool({.num_threads = 1, .queue_capacity = 4});
  pool.Shutdown();
  EXPECT_FALSE(pool.TrySubmit([] {}));
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, ClampsDegenerateOptions) {
  ThreadPool pool({.num_threads = 0, .queue_capacity = 0});
  EXPECT_EQ(pool.num_threads(), 1);
  EXPECT_EQ(pool.queue_capacity(), 1u);
  std::atomic<bool> ran{false};
  ASSERT_TRUE(pool.Submit([&ran] { ran = true; }));
  pool.Shutdown();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ConcurrentShutdownJoinsEachWorkerOnce) {
  // Regression test: two threads racing into Shutdown used to both walk
  // workers_ and could join the same std::thread twice (UB). Shutdown now
  // claims the worker vector under the lock, so exactly one caller joins.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool({.num_threads = 4, .queue_capacity = 16});
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
    }
    std::thread racer([&pool] { pool.Shutdown(); });
    pool.Shutdown();
    racer.join();
    EXPECT_EQ(ran.load(), 8);
    EXPECT_FALSE(pool.TrySubmit([] {}));
  }
}

TEST(ThreadPoolTest, ManyProducersManyConsumers) {
  ThreadPool pool({.num_threads = 8, .queue_capacity = 32});
  std::atomic<int> sum{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &sum] {
      for (int i = 0; i < 250; ++i) {
        // Blocking Submit: backpressure instead of loss.
        ASSERT_TRUE(pool.Submit([&sum] { sum.fetch_add(1); }));
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.Shutdown();
  EXPECT_EQ(sum.load(), 1000);
}

}  // namespace
}  // namespace treediff
