#include <gtest/gtest.h>

#include <string>

#include "doc/html_parser.h"
#include "doc/latex_parser.h"
#include "doc/markdown_parser.h"
#include "doc/parse_limits.h"
#include "doc/xml.h"

namespace treediff {
namespace {

std::string Repeat(const std::string& piece, int times) {
  std::string out;
  out.reserve(piece.size() * static_cast<size_t>(times));
  for (int i = 0; i < times; ++i) out += piece;
  return out;
}

// ---------------------------------------------------------------------------
// LaTeX.
// ---------------------------------------------------------------------------

TEST(ParserLimitsTest, LatexNestingWithinLimitParses) {
  std::string doc = Repeat("\\begin{itemize}\\item x ", 10) +
                    Repeat("\\end{itemize}", 10);
  auto tree = ParseLatex(doc);
  EXPECT_TRUE(tree.ok());
}

TEST(ParserLimitsTest, LatexDeepNestingTripsDefaultLimit) {
  std::string doc = Repeat("\\begin{itemize}\\item x ", 5000) +
                    Repeat("\\end{itemize}", 5000);
  auto tree = ParseLatex(doc);
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), Code::kResourceExhausted);
}

TEST(ParserLimitsTest, LatexCustomDepthLimit) {
  std::string doc = Repeat("\\begin{itemize}\\item x ", 5) +
                    Repeat("\\end{itemize}", 5);
  ParseLimits limits;
  limits.max_depth = 3;
  auto tree = ParseLatex(doc, nullptr, limits);
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), Code::kResourceExhausted);
  limits.max_depth = 8;
  EXPECT_TRUE(ParseLatex(doc, nullptr, limits).ok());
}

TEST(ParserLimitsTest, LatexExpiredDeadlineTrips) {
  Budget budget = Budget::Deadline(0.0);
  ParseLimits limits;
  limits.budget = &budget;
  auto tree = ParseLatex("\\section{One} some prose here.", nullptr, limits);
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), Code::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// HTML.
// ---------------------------------------------------------------------------

TEST(ParserLimitsTest, HtmlDeepListNestingTripsDefaultLimit) {
  std::string doc =
      Repeat("<ul><li>x", 5000) + Repeat("</li></ul>", 5000);
  auto tree = ParseHtml(doc);
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), Code::kResourceExhausted);
}

TEST(ParserLimitsTest, HtmlCustomDepthLimit) {
  std::string doc = Repeat("<ul><li>x", 5) + Repeat("</li></ul>", 5);
  ParseLimits limits;
  limits.max_depth = 3;
  auto tree = ParseHtml(doc, nullptr, limits);
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), Code::kResourceExhausted);
  limits.max_depth = 8;
  EXPECT_TRUE(ParseHtml(doc, nullptr, limits).ok());
}

TEST(ParserLimitsTest, HtmlNodeCapTrips) {
  Budget budget;
  budget.set_node_cap(3);
  ParseLimits limits;
  limits.budget = &budget;
  std::string doc = "<p>one</p><p>two</p><p>three</p><p>four</p><p>five</p>";
  auto tree = ParseHtml(doc, nullptr, limits);
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), Code::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Markdown (flat structure: only the budget applies).
// ---------------------------------------------------------------------------

TEST(ParserLimitsTest, MarkdownNodeCapTrips) {
  Budget budget;
  budget.set_node_cap(5);
  ParseLimits limits;
  limits.budget = &budget;
  std::string doc = Repeat("a line of prose\n", 100);
  auto tree = ParseMarkdown(doc, nullptr, limits);
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), Code::kResourceExhausted);
}

TEST(ParserLimitsTest, MarkdownUnbudgetedStillParses) {
  std::string doc = Repeat("a line of prose\n\n", 100);
  auto tree = ParseMarkdown(doc);
  ASSERT_TRUE(tree.ok());
  EXPECT_GT(tree->size(), 100u);
}

// ---------------------------------------------------------------------------
// XML (recursive parser: the depth cap guards the call stack).
// ---------------------------------------------------------------------------

TEST(ParserLimitsTest, XmlDeepNestingTripsDefaultLimit) {
  std::string doc = Repeat("<a>", 100000) + Repeat("</a>", 100000);
  auto tree = ParseXml(doc);
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), Code::kResourceExhausted);
}

TEST(ParserLimitsTest, XmlCustomDepthLimit) {
  std::string doc = Repeat("<a>", 10) + Repeat("</a>", 10);
  XmlParseOptions options;
  options.max_depth = 5;
  auto tree = ParseXml(doc, nullptr, options);
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), Code::kResourceExhausted);
  options.max_depth = 20;
  EXPECT_TRUE(ParseXml(doc, nullptr, options).ok());
}

TEST(ParserLimitsTest, XmlElementBudgetTrips) {
  Budget budget;
  budget.set_node_cap(3);
  XmlParseOptions options;
  options.budget = &budget;
  std::string doc = "<r><a/><b/><c/><d/><e/></r>";
  auto tree = ParseXml(doc, nullptr, options);
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), Code::kResourceExhausted);
}

TEST(ParserLimitsTest, XmlWithinLimitsParsesNormally) {
  std::string doc = Repeat("<a>", 200) + Repeat("</a>", 200);
  auto tree = ParseXml(doc);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 200u);
}

}  // namespace
}  // namespace treediff
