#include "store/log.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/fault_env.h"

namespace treediff {
namespace {

// Writes a fresh log file with the given records and returns its path.
void WriteLog(MemEnv* env, const std::string& path,
              const std::vector<std::pair<LogRecordType, std::string>>& recs) {
  auto file = env->NewWritableFile(path, true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(std::string(kLogMagic, kLogMagicSize)).ok());
  LogWriter writer(std::move(*file), kLogMagicSize);
  for (const auto& [type, payload] : recs) {
    ASSERT_TRUE(writer.AppendRecord(type, payload).ok());
  }
  ASSERT_TRUE(writer.Sync().ok());
  ASSERT_TRUE(writer.Close().ok());
}

StatusOr<LogScanResult> Scan(MemEnv* env, const std::string& path) {
  auto file = env->NewRandomAccessFile(path);
  if (!file.ok()) return file.status();
  return ScanLog(file->get());
}

TEST(LogTest, RoundTripRecords) {
  MemEnv env;
  WriteLog(&env, "log",
           {{LogRecordType::kSnapshot, "base tree bytes"},
            {LogRecordType::kDelta, "UPD(3, \"x\")\n"},
            {LogRecordType::kDelta, ""},  // Empty payloads are legal.
            {LogRecordType::kRollback, "\x02"}});
  auto scan = Scan(&env, "log");
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_EQ(scan->records.size(), 4u);
  EXPECT_TRUE(scan->records[0].type == LogRecordType::kSnapshot);
  EXPECT_EQ(scan->records[0].payload, "base tree bytes");
  EXPECT_EQ(scan->records[1].payload, "UPD(3, \"x\")\n");
  EXPECT_EQ(scan->records[2].payload, "");
  EXPECT_TRUE(scan->records[3].type == LogRecordType::kRollback);
  EXPECT_EQ(scan->checksum_failures, 0u);
  EXPECT_FALSE(scan->torn_tail);
  EXPECT_EQ(scan->durable_prefix, scan->file_size);
  // Record offsets are increasing and start right after the magic.
  EXPECT_EQ(scan->records[0].offset, kLogMagicSize);
  EXPECT_EQ(scan->records[1].offset,
            kLogMagicSize + kLogRecordHeaderSize + 15);
}

TEST(LogTest, EmptyLogScansClean) {
  MemEnv env;
  WriteLog(&env, "log", {});
  auto scan = Scan(&env, "log");
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->records.empty());
  EXPECT_FALSE(scan->torn_tail);
  EXPECT_EQ(scan->durable_prefix, kLogMagicSize);
}

TEST(LogTest, RejectsBadMagic) {
  MemEnv env;
  auto file = env.NewWritableFile("log", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("NOTALOG!extra").ok());
  ASSERT_TRUE((*file)->Close().ok());
  auto scan = Scan(&env, "log");
  EXPECT_EQ(scan.status().code(), Code::kParseError);
  // A file shorter than the magic is equally not a log.
  auto stub = env.NewWritableFile("stub", true);
  ASSERT_TRUE(stub.ok());
  ASSERT_TRUE((*stub)->Append("TDI").ok());
  ASSERT_TRUE((*stub)->Close().ok());
  EXPECT_EQ(Scan(&env, "stub").status().code(), Code::kParseError);
}

TEST(LogTest, EveryPrefixTruncationIsATornTailNotAnError) {
  MemEnv env;
  WriteLog(&env, "log",
           {{LogRecordType::kSnapshot, "0123456789"},
            {LogRecordType::kDelta, "abcdefgh"}});
  auto full = Scan(&env, "log");
  ASSERT_TRUE(full.ok());
  const uint64_t full_size = full->file_size;
  const uint64_t second_start = full->records[1].offset;

  for (uint64_t cut = kLogMagicSize; cut < full_size; ++cut) {
    MemEnv env2;
    WriteLog(&env2, "log",
             {{LogRecordType::kSnapshot, "0123456789"},
              {LogRecordType::kDelta, "abcdefgh"}});
    ASSERT_TRUE(env2.TruncateFile("log", cut).ok());
    auto scan = Scan(&env2, "log");
    ASSERT_TRUE(scan.ok()) << "cut at " << cut;
    // Whole records before the cut survive; the partial record is a torn
    // tail, never a checksum failure and never a hard error.
    size_t expected = cut >= second_start + kLogRecordHeaderSize + 8 ? 2u
                      : cut >= second_start                          ? 1u
                                                                     : 0u;
    if (cut == second_start || cut == kLogMagicSize) {
      // Clean record boundary: whole records only, no tail at all.
      EXPECT_FALSE(scan->torn_tail) << "cut at " << cut;
    } else {
      EXPECT_TRUE(scan->torn_tail) << "cut at " << cut;
    }
    EXPECT_EQ(scan->records.size(), expected) << "cut at " << cut;
    EXPECT_EQ(scan->checksum_failures, 0u) << "cut at " << cut;
    EXPECT_LE(scan->durable_prefix, cut);
  }
}

TEST(LogTest, FlippedBitAnywhereInBodyIsDetected) {
  // The acceptance criterion: a flipped bit in any record body must be
  // caught by the checksum (a flipped *length* byte may instead read as a
  // torn record — also rejected, tested separately).
  MemEnv env;
  WriteLog(&env, "log", {{LogRecordType::kDelta, "the record body"}});
  auto clean = Scan(&env, "log");
  ASSERT_TRUE(clean.ok());
  const uint64_t body_start = kLogMagicSize + kLogRecordHeaderSize;
  const uint64_t end = clean->file_size;

  for (uint64_t byte = body_start - 5; byte < end; ++byte) {
    // Covers the CRC field (last 4 header bytes), the type byte, and every
    // payload byte.
    for (uint8_t mask : {0x01, 0x80}) {
      MemEnv env2;
      WriteLog(&env2, "log", {{LogRecordType::kDelta, "the record body"}});
      ASSERT_TRUE(env2.CorruptByte("log", byte, mask).ok());
      auto scan = Scan(&env2, "log");
      ASSERT_TRUE(scan.ok());
      EXPECT_TRUE(scan->records.empty())
          << "corruption at byte " << byte << " not detected";
      EXPECT_EQ(scan->checksum_failures, 1u) << "byte " << byte;
      EXPECT_EQ(scan->durable_prefix, kLogMagicSize);
    }
  }
}

TEST(LogTest, FlippedLengthFieldRejectedAsTornOrChecksum) {
  MemEnv env;
  WriteLog(&env, "log", {{LogRecordType::kDelta, "0123456789"}});
  for (uint64_t byte = kLogMagicSize; byte < kLogMagicSize + 4; ++byte) {
    for (uint8_t mask : {0x01, 0x40, 0x80}) {
      MemEnv env2;
      WriteLog(&env2, "log", {{LogRecordType::kDelta, "0123456789"}});
      ASSERT_TRUE(env2.CorruptByte("log", byte, mask).ok());
      auto scan = Scan(&env2, "log");
      ASSERT_TRUE(scan.ok());
      // A larger length reads past the end (torn); a smaller one fails the
      // checksum over the shortened body. Both reject the record.
      EXPECT_TRUE(scan->records.empty()) << "byte " << byte;
      EXPECT_TRUE(scan->torn_tail || scan->checksum_failures == 1)
          << "byte " << byte;
    }
  }
}

TEST(LogTest, CorruptionStopsTheScanAtThatRecord) {
  MemEnv env;
  WriteLog(&env, "log",
           {{LogRecordType::kSnapshot, "first"},
            {LogRecordType::kDelta, "second"},
            {LogRecordType::kDelta, "third"}});
  auto clean = Scan(&env, "log");
  ASSERT_TRUE(clean.ok());
  // Corrupt the second record's payload: the first survives, the second and
  // everything after it (even though intact) is discarded — recovery must
  // never skip over a bad record.
  uint64_t target = clean->records[1].offset + kLogRecordHeaderSize;
  ASSERT_TRUE(env.CorruptByte("log", target, 0x04).ok());
  auto scan = Scan(&env, "log");
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0].payload, "first");
  EXPECT_EQ(scan->checksum_failures, 1u);
  EXPECT_EQ(scan->durable_prefix, clean->records[1].offset);
}

TEST(LogTest, ImplausibleLengthIsTornTail) {
  MemEnv env;
  WriteLog(&env, "log", {});
  auto file = env.NewWritableFile("log", false);
  ASSERT_TRUE(file.ok());
  std::string header;
  header.append(4, '\xff');  // Length 0xFFFFFFFF > kLogMaxRecordSize.
  header.append(4, '\x00');
  header.push_back(2);
  ASSERT_TRUE((*file)->Append(header).ok());
  ASSERT_TRUE((*file)->Close().ok());
  auto scan = Scan(&env, "log");
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_TRUE(scan->records.empty());
}

TEST(LogTest, WriterRefusesOversizedRecord) {
  MemEnv env;
  auto file = env.NewWritableFile("log", true);
  ASSERT_TRUE(file.ok());
  LogWriter writer(std::move(*file), 0);
  // Don't allocate 1 GiB: a string_view with a huge claimed size is enough
  // to exercise the size check, which fires before any dereference.
  std::string_view huge("x", 1);
  huge = std::string_view(huge.data(), kLogMaxRecordSize + 1ull);
  EXPECT_EQ(writer.AppendRecord(LogRecordType::kDelta, huge).code(),
            Code::kInvalidArgument);
}

}  // namespace
}  // namespace treediff
