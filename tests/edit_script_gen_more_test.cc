// Additional EditScript-generation coverage for order-sensitive paths: a
// moved node whose destination parent is itself freshly inserted, chains of
// moves, deep restructurings, and interactions between aligned and inserted
// siblings.

#include <gtest/gtest.h>

#include <memory>

#include "core/edit_script_gen.h"
#include "tree/builder.h"

namespace treediff {
namespace {

struct Fixture {
  std::shared_ptr<LabelTable> labels = std::make_shared<LabelTable>();

  Tree Parse(const std::string& s) { return *ParseSexpr(s, labels); }

  Matching MatchByValue(const Tree& t1, const Tree& t2) {
    Matching m(t1.id_bound(), t2.id_bound());
    for (NodeId x : t1.PreOrder()) {
      for (NodeId y : t2.PreOrder()) {
        if (!m.HasT2(y) && t1.label(x) == t2.label(y) &&
            t1.value(x) == t2.value(y)) {
          m.Add(x, y);
          break;
        }
      }
    }
    return m;
  }

  void CheckTransform(const Tree& t1, const Tree& t2) {
    auto result = GenerateEditScript(t1, t2, MatchByValue(t1, t2));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(Tree::Isomorphic(result->transformed, t2))
        << "script:\n" << result->script.ToString(t1.labels());
    Tree replay = t1.Clone();
    ASSERT_TRUE(result->script.ApplyTo(&replay).ok());
    EXPECT_TRUE(Tree::Isomorphic(replay, t2));
  }
};

TEST(EditScriptGenMoreTest, MoveUnderInsertedParent) {
  // The new paragraph does not exist in T1; the existing sentences must be
  // moved under it *after* it is inserted (the paper's ordering caveat:
  // "an insert may need to precede a move, if the moved node becomes the
  // child of the inserted node").
  Fixture f;
  Tree t1 = f.Parse("(D (S \"a\") (S \"b\"))");
  Tree t2 = f.Parse("(D (P (S \"a\") (S \"b\")))");
  auto result = GenerateEditScript(t1, t2, f.MatchByValue(t1, t2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->script.num_inserts(), 1u);  // The paragraph.
  EXPECT_EQ(result->script.num_moves(), 2u);    // Both sentences.
  // The insert must come before the moves in the script.
  bool seen_insert = false;
  for (const EditOp& op : result->script.ops()) {
    if (op.kind == EditOpKind::kInsert) seen_insert = true;
    if (op.kind == EditOpKind::kMove) {
      EXPECT_TRUE(seen_insert);
    }
  }
  EXPECT_TRUE(Tree::Isomorphic(result->transformed, t2));
}

TEST(EditScriptGenMoreTest, FlattenInteriorNode) {
  // The inverse: an interior node dissolves and its children climb up.
  Fixture f;
  Tree t1 = f.Parse("(D (P (S \"a\") (S \"b\")))");
  Tree t2 = f.Parse("(D (S \"a\") (S \"b\"))");
  auto result = GenerateEditScript(t1, t2, f.MatchByValue(t1, t2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->script.num_moves(), 2u);
  EXPECT_EQ(result->script.num_deletes(), 1u);  // The emptied paragraph.
  EXPECT_TRUE(Tree::Isomorphic(result->transformed, t2));
}

TEST(EditScriptGenMoreTest, DeepReparentChain) {
  // A node hops down a freshly built spine of inserted ancestors.
  Fixture f;
  Tree t1 = f.Parse("(D (S \"payload\"))");
  Tree t2 = f.Parse("(D (A (B (C (S \"payload\")))))");
  f.CheckTransform(t1, t2);
}

TEST(EditScriptGenMoreTest, RotateThreeSubtrees) {
  Fixture f;
  Tree t1 = f.Parse(
      "(D (P (S \"a1\") (S \"a2\")) (Q (S \"b1\") (S \"b2\")) "
      "(R (S \"c1\") (S \"c2\")))");
  Tree t2 = f.Parse(
      "(D (R (S \"c1\") (S \"c2\")) (P (S \"a1\") (S \"a2\")) "
      "(Q (S \"b1\") (S \"b2\")))");
  auto result = GenerateEditScript(t1, t2, f.MatchByValue(t1, t2));
  ASSERT_TRUE(result.ok());
  // A rotation is a single intra-parent move (LCS keeps P and Q).
  EXPECT_EQ(result->script.size(), 1u);
  EXPECT_EQ(result->intra_parent_moves, 1u);
  EXPECT_TRUE(Tree::Isomorphic(result->transformed, t2));
}

TEST(EditScriptGenMoreTest, SwapChildrenBetweenParents) {
  Fixture f;
  Tree t1 = f.Parse("(D (P (S \"x\") (S \"p\")) (Q (S \"y\") (S \"q\")))");
  Tree t2 = f.Parse("(D (P (S \"y\") (S \"p\")) (Q (S \"x\") (S \"q\")))");
  auto result = GenerateEditScript(t1, t2, f.MatchByValue(t1, t2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->script.num_moves(), 2u);
  EXPECT_EQ(result->inter_parent_moves, 2u);
  EXPECT_TRUE(Tree::Isomorphic(result->transformed, t2));
}

TEST(EditScriptGenMoreTest, InsertBetweenAlignedAndMovedSiblings) {
  Fixture f;
  Tree t1 = f.Parse("(D (S \"a\") (S \"c\") (S \"b\"))");
  // b moves before c AND a new node lands between them.
  Tree t2 = f.Parse("(D (S \"a\") (S \"b\") (S \"new\") (S \"c\"))");
  f.CheckTransform(t1, t2);
}

TEST(EditScriptGenMoreTest, EverythingChangesAtOnce) {
  Fixture f;
  Tree t1 = f.Parse(
      "(D (P (S \"k1\") (S \"gone1\")) (Q (S \"k2\") (S \"mv\")) "
      "(S \"gone2\"))");
  Tree t2 = f.Parse(
      "(D (Q (S \"k2\")) (P (S \"mv\") (S \"k1\") (S \"new1\")) "
      "(S \"new2\"))");
  f.CheckTransform(t1, t2);
}

TEST(EditScriptGenMoreTest, WorkingTreeIdsSurviveInterleavedOps) {
  // Ids in the script refer to the original tree even after moves shuffle
  // positions; verify by checking that every DEL's id carried the original
  // doomed value.
  Fixture f;
  Tree t1 = f.Parse(
      "(D (P (S \"keep1\") (S \"dead1\")) (P (S \"keep2\") (S \"dead2\")))");
  Tree t2 = f.Parse("(D (P (S \"keep2\")) (P (S \"keep1\")))");
  auto result = GenerateEditScript(t1, t2, f.MatchByValue(t1, t2));
  ASSERT_TRUE(result.ok());
  for (const EditOp& op : result->script.ops()) {
    if (op.kind == EditOpKind::kDelete && t1.IsLeaf(op.node)) {
      EXPECT_EQ(t1.value(op.node).substr(0, 4), "dead");
    }
  }
  EXPECT_TRUE(Tree::Isomorphic(result->transformed, t2));
}

}  // namespace
}  // namespace treediff
