#include "util/tokenize.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace treediff {
namespace {

using ::testing::Test;

TEST(SplitWordsTest, SplitsOnWhitespaceRuns) {
  EXPECT_EQ(SplitWords("a b  c\t d\n"),
            (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(SplitWordsTest, EmptyAndBlankInput) {
  EXPECT_TRUE(SplitWords("").empty());
  EXPECT_TRUE(SplitWords("   \n\t ").empty());
}

TEST(SplitWordsTest, KeepsPunctuationByDefault) {
  EXPECT_EQ(SplitWords("Hello, world."),
            (std::vector<std::string>{"Hello,", "world."}));
}

TEST(SplitWordsTest, StripPunctNormalizesCaseAndPunctuation) {
  EXPECT_EQ(SplitWords("Hello, World. (yes)", /*strip_punct=*/true),
            (std::vector<std::string>{"hello", "world", "yes"}));
}

TEST(SplitWordsTest, StripPunctDropsPurePunctuationTokens) {
  EXPECT_EQ(SplitWords("a -- b", /*strip_punct=*/true),
            (std::vector<std::string>{"a", "b"}));
}

TEST(TrimWhitespaceTest, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  abc \t"), "abc");
  EXPECT_EQ(TrimWhitespace("abc"), "abc");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
}

TEST(CollapseWhitespaceTest, CollapsesRunsAndNewlines) {
  EXPECT_EQ(CollapseWhitespace("a  b\nc\t\td"), "a b c d");
  EXPECT_EQ(CollapseWhitespace("  leading and trailing  "),
            "leading and trailing");
  EXPECT_EQ(CollapseWhitespace(""), "");
}

TEST(IsBlankTest, DetectsBlankStrings) {
  EXPECT_TRUE(IsBlank(""));
  EXPECT_TRUE(IsBlank(" \t\n"));
  EXPECT_FALSE(IsBlank(" x "));
}

TEST(JoinStringsTest, JoinsWithSeparator) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("\\section{x}", "\\section"));
  EXPECT_FALSE(StartsWith("sec", "section"));
  EXPECT_TRUE(EndsWith("file.tex", ".tex"));
  EXPECT_FALSE(EndsWith("x", ".tex"));
}

}  // namespace
}  // namespace treediff
