// Reproduces the Appendix A sample run of LaDiff: the old/new versions of
// the TeXbook excerpt (Figures 14 and 15) are embedded verbatim, and the
// detected changes are checked against the ones the paper's Figure 16
// displays (sentence and paragraph inserts, deletes, updates, and moves).

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "doc/appendix_a_data.h"
#include "doc/ladiff.h"

namespace treediff {
namespace {

class AppendixATest : public ::testing::Test {
 protected:
  AppendixATest() {
    auto result = DiffLatexDocuments(kAppendixAOldDocument,
                                     kAppendixANewDocument);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (result.ok()) {
      result_ = std::make_unique<LaDiffResult>(std::move(*result));
    }
  }

  std::unique_ptr<LaDiffResult> result_;
};

TEST_F(AppendixATest, ParsesBothVersions) {
  ASSERT_NE(result_, nullptr);
  // Old: 3 sections; new: 4 sections.
  EXPECT_EQ(result_->old_tree.children(result_->old_tree.root()).size(), 3u);
  EXPECT_EQ(result_->new_tree.children(result_->new_tree.root()).size(), 4u);
}

TEST_F(AppendixATest, ScriptTransformsOldIntoNew) {
  ASSERT_NE(result_, nullptr);
  Tree replay = result_->old_tree.Clone();
  ASSERT_TRUE(result_->diff.script.ApplyTo(&replay).ok());
  EXPECT_TRUE(Tree::Isomorphic(replay, result_->new_tree));
}

TEST_F(AppendixATest, DetectsTheDocumentedChangeMix) {
  ASSERT_NE(result_, nullptr);
  const DiffStats& stats = result_->diff.stats;
  // Figure 16 shows: moved sentences S1, S2; a moved paragraph; inserted
  // material (a whole section plus a sentence); a deleted sentence; and
  // updated sentences. The exact op counts depend on thresholds, but each
  // category must be detected.
  EXPECT_GE(stats.moves, 2u) << "sentence + paragraph moves expected";
  EXPECT_GE(stats.updates, 1u);
  EXPECT_GE(stats.inserts, 1u);
  EXPECT_GE(stats.deletes, 1u);
}

TEST_F(AppendixATest, MovedConclusionSentenceDetected) {
  ASSERT_NE(result_, nullptr);
  // S1 of Figure 16: the "TeX language described in this book" sentence
  // moves from the Conclusion to the first section (and is updated).
  bool found_marker = false;
  for (const DeltaNode& n : result_->delta.nodes()) {
    if (n.annotation == DeltaAnnotation::kMoveMarker &&
        n.value.find("language described in this book") !=
            std::string::npos) {
      found_marker = true;
    }
  }
  EXPECT_TRUE(found_marker);
}

TEST_F(AppendixATest, MarkupShowsTheConventions) {
  ASSERT_NE(result_, nullptr);
  const std::string& markup = result_->markup;
  EXPECT_NE(markup.find("Moved from"), std::string::npos);
  EXPECT_NE(markup.find("\\textbf{"), std::string::npos);   // Insert.
  EXPECT_NE(markup.find("{\\small"), std::string::npos);    // Delete/move.
  EXPECT_NE(markup.find("(ins)"), std::string::npos);       // New section.
}

TEST_F(AppendixATest, DeletedReliableInfoSentence) {
  ASSERT_NE(result_, nullptr);
  // "In general, the later chapters contain more reliable information..."
  // appears only in the old version: it must surface as DEL (it is in fact
  // re-inserted verbatim in the new section 2 context in Figure 16, shown
  // in small font there).
  bool found = false;
  for (const DeltaNode& n : result_->delta.nodes()) {
    if (n.value.find("later chapters contain more reliable") !=
        std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace treediff
