#include "store/version_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "gen/doc_gen.h"
#include "gen/edit_sim.h"
#include "tree/builder.h"
#include "util/budget.h"
#include "util/fault_env.h"

namespace treediff {
namespace {

TEST(VersionStoreTest, BaseOnlyStore) {
  auto labels = std::make_shared<LabelTable>();
  Tree base = *ParseSexpr("(D (S \"v0\"))", labels);
  VersionStore store(base.Clone());
  EXPECT_EQ(store.VersionCount(), 1);
  auto v0 = store.Materialize(0);
  ASSERT_TRUE(v0.ok());
  EXPECT_TRUE(Tree::Isomorphic(*v0, base));
}

TEST(VersionStoreTest, CommitAndMaterializeChain) {
  auto labels = std::make_shared<LabelTable>();
  Tree v0 = *ParseSexpr("(D (P (S \"one two three\")))", labels);
  Tree v1 = *ParseSexpr(
      "(D (P (S \"one two three\") (S \"four five six\")))", labels);
  Tree v2 = *ParseSexpr(
      "(D (P (S \"one two seven\") (S \"four five six\")))", labels);

  VersionStore store(v0.Clone());
  auto r1 = store.Commit(v1);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1, 1);
  auto r2 = store.Commit(v2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, 2);
  EXPECT_EQ(store.VersionCount(), 3);

  for (int v = 0; v < 3; ++v) {
    auto tree = store.Materialize(v);
    ASSERT_TRUE(tree.ok()) << "version " << v;
    const Tree& expected = v == 0 ? v0 : (v == 1 ? v1 : v2);
    EXPECT_TRUE(Tree::Isomorphic(*tree, expected)) << "version " << v;
  }
}

TEST(VersionStoreTest, InfoTracksPerVersionChanges) {
  auto labels = std::make_shared<LabelTable>();
  // The paragraph keeps 2/3 of its sentences, so it stays matched and the
  // delta is exactly one sentence delete.
  Tree v0 = *ParseSexpr(
      "(D (P (S \"aa bb cc\") (S \"dd ee ff\") (S \"gg hh ii\")))",
      labels);
  Tree v1 = *ParseSexpr(
      "(D (P (S \"aa bb cc\") (S \"gg hh ii\")))", labels);
  VersionStore store(v0.Clone());
  ASSERT_TRUE(store.Commit(v1).ok());
  EXPECT_EQ(store.Info(1).deletes, 1u);
  EXPECT_EQ(store.Info(1).inserts, 0u);
  EXPECT_EQ(store.Info(1).nodes, 4u);
  ASSERT_NE(store.DeltaFor(1), nullptr);
  EXPECT_EQ(store.DeltaFor(1)->num_deletes(), 1u);
}

TEST(VersionStoreTest, DeltaForBoundsChecked) {
  auto labels = std::make_shared<LabelTable>();
  Tree v0 = *ParseSexpr("(D (S \"a b\"))", labels);
  Tree v1 = *ParseSexpr("(D (S \"a c\"))", labels);
  VersionStore store(v0.Clone());
  // Version 0 is the base: it has no delta, and neither do versions that
  // do not exist.
  EXPECT_EQ(store.DeltaFor(0), nullptr);
  EXPECT_EQ(store.DeltaFor(1), nullptr);
  EXPECT_EQ(store.DeltaFor(-1), nullptr);
  ASSERT_TRUE(store.Commit(v1).ok());
  ASSERT_NE(store.DeltaFor(1), nullptr);
  EXPECT_EQ(store.DeltaFor(2), nullptr);
  EXPECT_EQ(store.DeltaFor(-1000000), nullptr);
}

TEST(VersionStoreTest, RejectsForeignLabelTable) {
  Tree base = *ParseSexpr("(D (S \"x\"))");
  Tree foreign = *ParseSexpr("(D (S \"x\"))");  // Own table.
  VersionStore store(base.Clone());
  EXPECT_EQ(store.Commit(foreign).status().code(), Code::kInvalidArgument);
}

TEST(VersionStoreTest, MaterializeRangeChecks) {
  Tree base = *ParseSexpr("(D (S \"x\"))");
  VersionStore store(base.Clone());
  EXPECT_EQ(store.Materialize(-1).status().code(), Code::kOutOfRange);
  EXPECT_EQ(store.Materialize(1).status().code(), Code::kOutOfRange);
}

TEST(VersionStoreTest, LongChainOnSimulatedHistory) {
  auto labels = std::make_shared<LabelTable>();
  Vocabulary vocab(500, 1.0);
  Rng rng(91);
  DocGenParams params;
  params.sections = 4;
  Tree current = GenerateDocument(params, vocab, &rng, labels);
  VersionStore store(current.Clone());

  std::vector<Tree> snapshots;
  snapshots.push_back(current.Clone());
  for (int epoch = 0; epoch < 8; ++epoch) {
    SimulatedVersion next = SimulateNewVersion(current, 6, {}, vocab, &rng);
    auto v = store.Commit(next.new_tree);
    ASSERT_TRUE(v.ok()) << "epoch " << epoch << ": "
                        << v.status().ToString();
    snapshots.push_back(next.new_tree.Clone());
    current = std::move(next.new_tree);
  }
  ASSERT_EQ(store.VersionCount(), 9);

  // Every historical version materializes exactly.
  for (int v = 0; v < store.VersionCount(); ++v) {
    auto tree = store.Materialize(v);
    ASSERT_TRUE(tree.ok()) << "version " << v;
    EXPECT_TRUE(Tree::Isomorphic(*tree, snapshots[static_cast<size_t>(v)]))
        << "version " << v;
  }
}

TEST(VersionStoreTest, DeltasCompressAgainstFullCopies) {
  auto labels = std::make_shared<LabelTable>();
  Vocabulary vocab(500, 1.0);
  Rng rng(92);
  DocGenParams params;
  params.sections = 6;
  Tree current = GenerateDocument(params, vocab, &rng, labels);
  VersionStore store(current.Clone());
  for (int epoch = 0; epoch < 5; ++epoch) {
    SimulatedVersion next = SimulateNewVersion(current, 4, {}, vocab, &rng);
    ASSERT_TRUE(store.Commit(next.new_tree).ok());
    current = std::move(next.new_tree);
  }
  VersionStore::StorageStats stats = store.Storage();
  EXPECT_GT(stats.delta_bytes, 0u);
  // Small deltas on a large document: scripts must be far smaller than
  // storing every version in full.
  EXPECT_GT(stats.CompressionRatio(), 5.0);
}

TEST(VersionStoreTest, RollbackHeadRestoresPreviousVersion) {
  auto labels = std::make_shared<LabelTable>();
  Tree v0 = *ParseSexpr("(D (P (S \"one two three\") (S \"four five\")))",
                        labels);
  Tree v1 = *ParseSexpr(
      "(D (P (S \"one two three\") (S \"four five\") (S \"six seven\")))",
      labels);
  Tree v2 = *ParseSexpr(
      "(D (P (S \"one two eight\") (S \"four five\") (S \"six seven\")))",
      labels);
  VersionStore store(v0.Clone());
  ASSERT_TRUE(store.Commit(v1).ok());
  ASSERT_TRUE(store.Commit(v2).ok());

  auto rolled = store.RollbackHead();
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();
  EXPECT_EQ(*rolled, 1);
  EXPECT_EQ(store.VersionCount(), 2);
  auto head = store.Materialize(1);
  ASSERT_TRUE(head.ok());
  EXPECT_TRUE(Tree::Isomorphic(*head, v1));

  // A new commit after rollback continues the chain cleanly.
  ASSERT_TRUE(store.Commit(v2).ok());
  auto head2 = store.Materialize(2);
  ASSERT_TRUE(head2.ok());
  EXPECT_TRUE(Tree::Isomorphic(*head2, v2));
}

TEST(VersionStoreTest, RollbackToBaseAndBeyondFails) {
  auto labels = std::make_shared<LabelTable>();
  Tree v0 = *ParseSexpr("(D (S \"x y z\"))", labels);
  Tree v1 = *ParseSexpr("(D (S \"x y w\"))", labels);
  VersionStore store(v0.Clone());
  ASSERT_TRUE(store.Commit(v1).ok());
  ASSERT_TRUE(store.RollbackHead().ok());
  auto head = store.Materialize(0);
  ASSERT_TRUE(head.ok());
  EXPECT_TRUE(Tree::Isomorphic(*head, v0));
  EXPECT_EQ(store.RollbackHead().status().code(),
            Code::kFailedPrecondition);
}

TEST(VersionStoreTest, RollbackThroughSimulatedHistory) {
  auto labels = std::make_shared<LabelTable>();
  Vocabulary vocab(400, 1.0);
  Rng rng(93);
  DocGenParams params;
  params.sections = 3;
  Tree current = GenerateDocument(params, vocab, &rng, labels);
  Tree original = current.Clone();
  VersionStore store(current.Clone());
  for (int round = 0; round < 6; ++round) {
    SimulatedVersion next = SimulateNewVersion(current, 5, {}, vocab, &rng);
    ASSERT_TRUE(store.Commit(next.new_tree).ok());
    current = std::move(next.new_tree);
  }
  // Roll all the way back.
  while (store.VersionCount() > 1) {
    ASSERT_TRUE(store.RollbackHead().ok());
  }
  auto head = store.Materialize(0);
  ASSERT_TRUE(head.ok());
  EXPECT_TRUE(Tree::Isomorphic(*head, original));
}

// ---------------------------------------------------------------------------
// Budget interaction: a degraded diff must still commit a consistent
// version, and no failure path may leave a half-committed head.

TEST(VersionStoreTest, CommitUnderExhaustedBudgetDegradesConsistently) {
  auto labels = std::make_shared<LabelTable>();
  Vocabulary vocab(300, 1.0);
  Rng rng(95);
  DocGenParams params;
  params.sections = 2;
  Tree current = GenerateDocument(params, vocab, &rng, labels);

  Budget budget;
  budget.set_node_cap(1);  // Trips immediately: every rung above the floor
                           // exhausts, so commits land on a degraded rung.
  DiffOptions options;
  options.budget = &budget;
  VersionStore store(current.Clone(), options);

  std::vector<Tree> snapshots;
  snapshots.push_back(current.Clone());
  for (int round = 0; round < 3; ++round) {
    SimulatedVersion next = SimulateNewVersion(current, 4, {}, vocab, &rng);
    auto v = store.Commit(next.new_tree);
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    EXPECT_EQ(*v, round + 1);
    snapshots.push_back(next.new_tree.Clone());
    current = std::move(next.new_tree);
  }
  // Degraded or not, every committed version must materialize exactly.
  for (int v = 0; v < store.VersionCount(); ++v) {
    auto tree = store.Materialize(v);
    ASSERT_TRUE(tree.ok()) << "version " << v;
    EXPECT_TRUE(Tree::Isomorphic(*tree, snapshots[static_cast<size_t>(v)]))
        << "version " << v;
  }
}

TEST(VersionStoreTest, RollbackHeadUnderExhaustedBudget) {
  auto labels = std::make_shared<LabelTable>();
  Tree v0 = *ParseSexpr("(D (P (S \"one two\") (S \"three four\")))", labels);
  Tree v1 = *ParseSexpr(
      "(D (P (S \"one two\") (S \"three four\") (S \"five six\")))", labels);
  Budget budget;
  DiffOptions options;
  options.budget = &budget;
  VersionStore store(v0.Clone(), options);
  ASSERT_TRUE(store.Commit(v1).ok());
  // Exhaust the budget after the commit: rollback must not be affected (it
  // replays stored scripts, it does not diff) and must leave a consistent
  // store.
  budget.set_node_cap(1);
  ASSERT_FALSE(budget.ChargeNodes(2));
  auto rolled = store.RollbackHead();
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();
  EXPECT_EQ(store.VersionCount(), 1);
  auto head = store.Materialize(0);
  ASSERT_TRUE(head.ok());
  EXPECT_TRUE(Tree::Isomorphic(*head, v0));
}

TEST(VersionStoreTest, FailedCommitLeavesStoreUnchanged) {
  auto labels = std::make_shared<LabelTable>();
  Tree v0 = *ParseSexpr("(D (S \"a b c\"))", labels);
  Tree v1 = *ParseSexpr("(D (S \"a b d\"))", labels);
  Tree v2 = *ParseSexpr("(D (S \"a e d\"))", labels);

  MemEnv mem;
  FaultPlan plan;
  plan.fail_sync_at = 3;  // #1 = Create, #2 = commit v1, #3 = commit v2.
  FaultInjectingEnv env(&mem, plan);
  StoreOptions store_options;
  store_options.env = &env;

  auto store = VersionStore::Create("store.log", v0.Clone(), {}, store_options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE(store->Commit(v1).ok());

  auto failed = store->Commit(v2);
  ASSERT_FALSE(failed.ok());
  // No half-committed head: the store still serves exactly v0..v1.
  EXPECT_EQ(store->VersionCount(), 2);
  auto head = store->Materialize(1);
  ASSERT_TRUE(head.ok());
  EXPECT_TRUE(Tree::Isomorphic(*head, v1));
  // Poisoned: mutations fail fast until the store is reopened.
  EXPECT_FALSE(store->io_status().ok());
  EXPECT_EQ(store->Commit(v2).status().code(), Code::kFailedPrecondition);
  EXPECT_EQ(store->RollbackHead().status().code(), Code::kFailedPrecondition);

  // Reopening recovers every acknowledged commit.
  env.ClearFault();
  mem.DropUnsynced();
  RecoveryReport report;
  auto reopened = VersionStore::Open("store.log", {}, store_options, &report);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->VersionCount(), 2);
  auto recovered = reopened->Materialize(1);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(Tree::Isomorphic(*recovered, v1));
  // Open recovers into a fresh label table; new commits must use it.
  Tree v2r = *ParseSexpr("(D (S \"a e d\"))", reopened->label_table());
  ASSERT_TRUE(reopened->Commit(v2r).ok());
  EXPECT_EQ(reopened->VersionCount(), 3);
}

TEST(VersionStoreTest, FailedRollbackLeavesStoreUnchanged) {
  auto labels = std::make_shared<LabelTable>();
  Tree v0 = *ParseSexpr("(D (S \"a b c\"))", labels);
  Tree v1 = *ParseSexpr("(D (S \"a b d\"))", labels);

  MemEnv mem;
  FaultPlan plan;
  plan.fail_sync_at = 3;  // #1 = Create, #2 = commit v1, #3 = rollback.
  FaultInjectingEnv env(&mem, plan);
  StoreOptions store_options;
  store_options.env = &env;

  auto store = VersionStore::Create("store.log", v0.Clone(), {}, store_options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Commit(v1).ok());

  auto rolled = store->RollbackHead();
  ASSERT_FALSE(rolled.ok());
  EXPECT_EQ(store->VersionCount(), 2);
  auto head = store->Materialize(1);
  ASSERT_TRUE(head.ok());
  EXPECT_TRUE(Tree::Isomorphic(*head, v1));  // The head was not rolled back.
}

// ---------------------------------------------------------------------------
// Durable mode: create / commit / reopen round trips.

TEST(VersionStoreTest, DurableRoundTripOnMemEnv) {
  auto labels = std::make_shared<LabelTable>();
  Vocabulary vocab(400, 1.0);
  Rng rng(96);
  DocGenParams params;
  params.sections = 3;
  Tree current = GenerateDocument(params, vocab, &rng, labels);

  MemEnv env;
  StoreOptions store_options;
  store_options.env = &env;
  store_options.checkpoint_interval = 2;

  std::vector<Tree> snapshots;
  snapshots.push_back(current.Clone());
  {
    auto store = VersionStore::Create("doc.log", current.Clone(), {},
                                      store_options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (int round = 0; round < 5; ++round) {
      SimulatedVersion next = SimulateNewVersion(current, 4, {}, vocab, &rng);
      ASSERT_TRUE(store->Commit(next.new_tree).ok());
      snapshots.push_back(next.new_tree.Clone());
      current = std::move(next.new_tree);
    }
  }  // Store dropped: only the log survives, as after a clean shutdown.

  RecoveryReport report;
  auto reopened = VersionStore::Open("doc.log", {}, store_options, &report);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_EQ(report.versions_recovered, 6u);
  // 5 commits with a checkpoint every 2: checkpoints at v2 and v4, so the
  // head is rebuilt from v4 plus one delta.
  EXPECT_EQ(report.checkpoint_version, 4);
  EXPECT_EQ(report.deltas_replayed, 1u);

  ASSERT_EQ(reopened->VersionCount(), 6);
  for (int v = 0; v < reopened->VersionCount(); ++v) {
    auto tree = reopened->Materialize(v);
    ASSERT_TRUE(tree.ok()) << "version " << v;
    EXPECT_TRUE(Tree::Isomorphic(*tree, snapshots[static_cast<size_t>(v)]))
        << "version " << v;
  }
  // Info survives recovery (from the delta record headers).
  for (int v = 1; v < reopened->VersionCount(); ++v) {
    EXPECT_EQ(reopened->Info(v).nodes,
              snapshots[static_cast<size_t>(v)].size());
  }

  // The reopened store keeps working: commit and rollback continue the log.
  // New versions must evolve from a tree on the recovered label table, so
  // start from the materialized head rather than the pre-crash snapshot.
  Tree recovered_head = *reopened->Materialize(5);
  SimulatedVersion next =
      SimulateNewVersion(recovered_head, 3, {}, vocab, &rng);
  ASSERT_TRUE(reopened->Commit(next.new_tree).ok());
  ASSERT_TRUE(reopened->RollbackHead().ok());
  auto head = reopened->Materialize(5);
  ASSERT_TRUE(head.ok());
  EXPECT_TRUE(Tree::Isomorphic(*head, snapshots[5]));
}

TEST(VersionStoreTest, DurableRollbackSurvivesReopen) {
  auto labels = std::make_shared<LabelTable>();
  Tree v0 = *ParseSexpr("(D (S \"one two\"))", labels);
  Tree v1 = *ParseSexpr("(D (S \"one three\"))", labels);
  Tree v2 = *ParseSexpr("(D (S \"four three\"))", labels);

  MemEnv env;
  StoreOptions store_options;
  store_options.env = &env;
  auto store = VersionStore::Create("s.log", v0.Clone(), {}, store_options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Commit(v1).ok());
  ASSERT_TRUE(store->Commit(v2).ok());
  ASSERT_TRUE(store->RollbackHead().ok());

  auto reopened = VersionStore::Open("s.log", {}, store_options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->VersionCount(), 2);
  auto head = reopened->Materialize(1);
  ASSERT_TRUE(head.ok());
  EXPECT_TRUE(Tree::Isomorphic(*head, v1));
}

TEST(VersionStoreTest, CreateRefusesExistingPath) {
  MemEnv env;
  StoreOptions store_options;
  store_options.env = &env;
  Tree base = *ParseSexpr("(D (S \"x\"))");
  ASSERT_TRUE(
      VersionStore::Create("dup.log", base.Clone(), {}, store_options).ok());
  EXPECT_EQ(
      VersionStore::Create("dup.log", base.Clone(), {}, store_options)
          .status()
          .code(),
      Code::kFailedPrecondition);
}

TEST(VersionStoreTest, DurableRoundTripOnPosixEnv) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "treediff_version_store_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "store.log").string();

  auto labels = std::make_shared<LabelTable>();
  Tree v0 = *ParseSexpr("(D (P (S \"alpha beta\") (S \"gamma delta\")))",
                        labels);
  Tree v1 = *ParseSexpr(
      "(D (P (S \"alpha beta\") (S \"gamma epsilon\")))", labels);
  {
    auto store = VersionStore::Create(path, v0.Clone());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE(store->Commit(v1).ok());
  }
  RecoveryReport report;
  auto reopened = VersionStore::Open(path, {}, {}, &report);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(report.clean()) << report.ToString();
  ASSERT_EQ(reopened->VersionCount(), 2);
  auto head = reopened->Materialize(1);
  ASSERT_TRUE(head.ok());
  EXPECT_TRUE(Tree::Isomorphic(*head, v1));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace treediff
