#include "store/version_store.h"

#include <gtest/gtest.h>

#include <memory>

#include "gen/doc_gen.h"
#include "gen/edit_sim.h"
#include "tree/builder.h"

namespace treediff {
namespace {

TEST(VersionStoreTest, BaseOnlyStore) {
  auto labels = std::make_shared<LabelTable>();
  Tree base = *ParseSexpr("(D (S \"v0\"))", labels);
  VersionStore store(base.Clone());
  EXPECT_EQ(store.VersionCount(), 1);
  auto v0 = store.Materialize(0);
  ASSERT_TRUE(v0.ok());
  EXPECT_TRUE(Tree::Isomorphic(*v0, base));
}

TEST(VersionStoreTest, CommitAndMaterializeChain) {
  auto labels = std::make_shared<LabelTable>();
  Tree v0 = *ParseSexpr("(D (P (S \"one two three\")))", labels);
  Tree v1 = *ParseSexpr(
      "(D (P (S \"one two three\") (S \"four five six\")))", labels);
  Tree v2 = *ParseSexpr(
      "(D (P (S \"one two seven\") (S \"four five six\")))", labels);

  VersionStore store(v0.Clone());
  auto r1 = store.Commit(v1);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1, 1);
  auto r2 = store.Commit(v2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, 2);
  EXPECT_EQ(store.VersionCount(), 3);

  for (int v = 0; v < 3; ++v) {
    auto tree = store.Materialize(v);
    ASSERT_TRUE(tree.ok()) << "version " << v;
    const Tree& expected = v == 0 ? v0 : (v == 1 ? v1 : v2);
    EXPECT_TRUE(Tree::Isomorphic(*tree, expected)) << "version " << v;
  }
}

TEST(VersionStoreTest, InfoTracksPerVersionChanges) {
  auto labels = std::make_shared<LabelTable>();
  // The paragraph keeps 2/3 of its sentences, so it stays matched and the
  // delta is exactly one sentence delete.
  Tree v0 = *ParseSexpr(
      "(D (P (S \"aa bb cc\") (S \"dd ee ff\") (S \"gg hh ii\")))",
      labels);
  Tree v1 = *ParseSexpr(
      "(D (P (S \"aa bb cc\") (S \"gg hh ii\")))", labels);
  VersionStore store(v0.Clone());
  ASSERT_TRUE(store.Commit(v1).ok());
  EXPECT_EQ(store.Info(1).deletes, 1u);
  EXPECT_EQ(store.Info(1).inserts, 0u);
  EXPECT_EQ(store.Info(1).nodes, 4u);
  EXPECT_EQ(store.DeltaFor(1).num_deletes(), 1u);
}

TEST(VersionStoreTest, RejectsForeignLabelTable) {
  Tree base = *ParseSexpr("(D (S \"x\"))");
  Tree foreign = *ParseSexpr("(D (S \"x\"))");  // Own table.
  VersionStore store(base.Clone());
  EXPECT_EQ(store.Commit(foreign).status().code(), Code::kInvalidArgument);
}

TEST(VersionStoreTest, MaterializeRangeChecks) {
  Tree base = *ParseSexpr("(D (S \"x\"))");
  VersionStore store(base.Clone());
  EXPECT_EQ(store.Materialize(-1).status().code(), Code::kOutOfRange);
  EXPECT_EQ(store.Materialize(1).status().code(), Code::kOutOfRange);
}

TEST(VersionStoreTest, LongChainOnSimulatedHistory) {
  auto labels = std::make_shared<LabelTable>();
  Vocabulary vocab(500, 1.0);
  Rng rng(91);
  DocGenParams params;
  params.sections = 4;
  Tree current = GenerateDocument(params, vocab, &rng, labels);
  VersionStore store(current.Clone());

  std::vector<Tree> snapshots;
  snapshots.push_back(current.Clone());
  for (int epoch = 0; epoch < 8; ++epoch) {
    SimulatedVersion next = SimulateNewVersion(current, 6, {}, vocab, &rng);
    auto v = store.Commit(next.new_tree);
    ASSERT_TRUE(v.ok()) << "epoch " << epoch << ": "
                        << v.status().ToString();
    snapshots.push_back(next.new_tree.Clone());
    current = std::move(next.new_tree);
  }
  ASSERT_EQ(store.VersionCount(), 9);

  // Every historical version materializes exactly.
  for (int v = 0; v < store.VersionCount(); ++v) {
    auto tree = store.Materialize(v);
    ASSERT_TRUE(tree.ok()) << "version " << v;
    EXPECT_TRUE(Tree::Isomorphic(*tree, snapshots[static_cast<size_t>(v)]))
        << "version " << v;
  }
}

TEST(VersionStoreTest, DeltasCompressAgainstFullCopies) {
  auto labels = std::make_shared<LabelTable>();
  Vocabulary vocab(500, 1.0);
  Rng rng(92);
  DocGenParams params;
  params.sections = 6;
  Tree current = GenerateDocument(params, vocab, &rng, labels);
  VersionStore store(current.Clone());
  for (int epoch = 0; epoch < 5; ++epoch) {
    SimulatedVersion next = SimulateNewVersion(current, 4, {}, vocab, &rng);
    ASSERT_TRUE(store.Commit(next.new_tree).ok());
    current = std::move(next.new_tree);
  }
  VersionStore::StorageStats stats = store.Storage();
  EXPECT_GT(stats.delta_bytes, 0u);
  // Small deltas on a large document: scripts must be far smaller than
  // storing every version in full.
  EXPECT_GT(stats.CompressionRatio(), 5.0);
}

TEST(VersionStoreTest, RollbackHeadRestoresPreviousVersion) {
  auto labels = std::make_shared<LabelTable>();
  Tree v0 = *ParseSexpr("(D (P (S \"one two three\") (S \"four five\")))",
                        labels);
  Tree v1 = *ParseSexpr(
      "(D (P (S \"one two three\") (S \"four five\") (S \"six seven\")))",
      labels);
  Tree v2 = *ParseSexpr(
      "(D (P (S \"one two eight\") (S \"four five\") (S \"six seven\")))",
      labels);
  VersionStore store(v0.Clone());
  ASSERT_TRUE(store.Commit(v1).ok());
  ASSERT_TRUE(store.Commit(v2).ok());

  auto rolled = store.RollbackHead();
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();
  EXPECT_EQ(*rolled, 1);
  EXPECT_EQ(store.VersionCount(), 2);
  auto head = store.Materialize(1);
  ASSERT_TRUE(head.ok());
  EXPECT_TRUE(Tree::Isomorphic(*head, v1));

  // A new commit after rollback continues the chain cleanly.
  ASSERT_TRUE(store.Commit(v2).ok());
  auto head2 = store.Materialize(2);
  ASSERT_TRUE(head2.ok());
  EXPECT_TRUE(Tree::Isomorphic(*head2, v2));
}

TEST(VersionStoreTest, RollbackToBaseAndBeyondFails) {
  auto labels = std::make_shared<LabelTable>();
  Tree v0 = *ParseSexpr("(D (S \"x y z\"))", labels);
  Tree v1 = *ParseSexpr("(D (S \"x y w\"))", labels);
  VersionStore store(v0.Clone());
  ASSERT_TRUE(store.Commit(v1).ok());
  ASSERT_TRUE(store.RollbackHead().ok());
  auto head = store.Materialize(0);
  ASSERT_TRUE(head.ok());
  EXPECT_TRUE(Tree::Isomorphic(*head, v0));
  EXPECT_EQ(store.RollbackHead().status().code(),
            Code::kFailedPrecondition);
}

TEST(VersionStoreTest, RollbackThroughSimulatedHistory) {
  auto labels = std::make_shared<LabelTable>();
  Vocabulary vocab(400, 1.0);
  Rng rng(93);
  DocGenParams params;
  params.sections = 3;
  Tree current = GenerateDocument(params, vocab, &rng, labels);
  Tree original = current.Clone();
  VersionStore store(current.Clone());
  for (int round = 0; round < 6; ++round) {
    SimulatedVersion next = SimulateNewVersion(current, 5, {}, vocab, &rng);
    ASSERT_TRUE(store.Commit(next.new_tree).ok());
    current = std::move(next.new_tree);
  }
  // Roll all the way back.
  while (store.VersionCount() > 1) {
    ASSERT_TRUE(store.RollbackHead().ok());
  }
  auto head = store.Materialize(0);
  ASSERT_TRUE(head.ok());
  EXPECT_TRUE(Tree::Isomorphic(*head, original));
}

}  // namespace
}  // namespace treediff
