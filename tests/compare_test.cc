#include "core/compare.h"

#include <gtest/gtest.h>

#include <memory>

#include "tree/builder.h"

namespace treediff {
namespace {

class CompareTest : public ::testing::Test {
 protected:
  CompareTest() {
    auto labels = std::make_shared<LabelTable>();
    t1_ = *ParseSexpr(
        "(D (S \"the quick brown fox\") (S \"identical text\") (S \"\"))",
        labels);
    t2_ = *ParseSexpr(
        "(D (S \"the slow brown fox\") (S \"identical text\") (S \"\") "
        "(S \"completely different words here\"))",
        labels);
    a1_ = t1_.children(t1_.root())[0];
    b1_ = t1_.children(t1_.root())[1];
    e1_ = t1_.children(t1_.root())[2];
    a2_ = t2_.children(t2_.root())[0];
    b2_ = t2_.children(t2_.root())[1];
    e2_ = t2_.children(t2_.root())[2];
    d2_ = t2_.children(t2_.root())[3];
  }

  Tree t1_{nullptr}, t2_{nullptr};
  NodeId a1_, b1_, e1_, a2_, b2_, e2_, d2_;
};

TEST_F(CompareTest, ExactComparatorZeroOrTwo) {
  ExactComparator cmp;
  EXPECT_DOUBLE_EQ(cmp.Compare(t1_, b1_, t2_, b2_), 0.0);
  EXPECT_DOUBLE_EQ(cmp.Compare(t1_, a1_, t2_, a2_), 2.0);
}

TEST_F(CompareTest, WordLcsIdenticalIsZero) {
  WordLcsComparator cmp;
  EXPECT_DOUBLE_EQ(cmp.Compare(t1_, b1_, t2_, b2_), 0.0);
}

TEST_F(CompareTest, WordLcsOneWordChanged) {
  WordLcsComparator cmp;
  // 4 words each, LCS = 3: (4 + 4 - 6) / 4 = 0.5.
  EXPECT_DOUBLE_EQ(cmp.Compare(t1_, a1_, t2_, a2_), 0.5);
}

TEST_F(CompareTest, WordLcsDisjointIsTwo) {
  WordLcsComparator cmp;
  // "the quick brown fox" vs "completely different words here": LCS 0,
  // sizes 4 and 4: (8 - 0) / 4 = 2.
  EXPECT_DOUBLE_EQ(cmp.Compare(t1_, a1_, t2_, d2_), 2.0);
}

TEST_F(CompareTest, WordLcsEmptyValues) {
  WordLcsComparator cmp;
  EXPECT_DOUBLE_EQ(cmp.Compare(t1_, e1_, t2_, e2_), 0.0);
  // Empty vs non-empty: (0 + 4 - 0) / 4 = 1... wait, max(0, 4) = 4, so 1.0.
  EXPECT_DOUBLE_EQ(cmp.Compare(t1_, e1_, t2_, d2_), 1.0);
}

TEST_F(CompareTest, ResultIsSymmetricInValues) {
  WordLcsComparator cmp;
  EXPECT_DOUBLE_EQ(cmp.Compare(t1_, a1_, t2_, a2_),
                   WordLcsDistance(t1_.value(a1_), t2_.value(a2_)));
  EXPECT_DOUBLE_EQ(WordLcsDistance("a b c", "b c d"),
                   WordLcsDistance("b c d", "a b c"));
}

TEST_F(CompareTest, CallCounterCounts) {
  WordLcsComparator cmp;
  EXPECT_EQ(cmp.calls(), 0u);
  cmp.Compare(t1_, a1_, t2_, a2_);
  cmp.Compare(t1_, b1_, t2_, b2_);
  EXPECT_EQ(cmp.calls(), 2u);
  cmp.ResetCalls();
  EXPECT_EQ(cmp.calls(), 0u);
}

TEST_F(CompareTest, RangeIsAlwaysZeroToTwo) {
  const char* samples[] = {"", "a", "a b c d e", "x y", "a b x y",
                           "one two three four five six"};
  for (const char* a : samples) {
    for (const char* b : samples) {
      const double d = WordLcsDistance(a, b);
      EXPECT_GE(d, 0.0) << a << " vs " << b;
      EXPECT_LE(d, 2.0) << a << " vs " << b;
    }
  }
}

TEST(WordLcsDistanceTest, NormalizationOption) {
  // Without normalization "The," != "the"; with it they match.
  EXPECT_GT(WordLcsDistance("The, end", "the end", false), 0.0);
  EXPECT_DOUBLE_EQ(WordLcsDistance("The, end", "the end", true), 0.0);
}

TEST(WordLcsDistanceTest, WordOrderMatters) {
  // LCS is order-sensitive: reversed word order scores poorly.
  EXPECT_GT(WordLcsDistance("a b c d", "d c b a"), 1.0);
}

TEST(WordLcsDistanceTest, MatchesPaperSentenceMetric) {
  // "computes the LCS of the words, then counts the number of words not in
  // the LCS": 5+5 words, 4 common -> (10-8)/5 = 0.4.
  EXPECT_DOUBLE_EQ(
      WordLcsDistance("one two three four five", "one two three four six"),
      0.4);
}

}  // namespace
}  // namespace treediff
