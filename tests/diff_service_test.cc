#include "service/diff_service.h"

#include "tree/builder.h"

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

namespace treediff {
namespace {

constexpr const char* kOld =
    "(D (P (S \"alpha one two\") (S \"beta three four\")) "
    "(P (S \"gamma five six\")))";
constexpr const char* kNew =
    "(D (P (S \"alpha one two\") (S \"beta three CHANGED\")) "
    "(P (S \"gamma five six\") (S \"delta seven eight\")))";

DiffServiceOptions Options(int threads, size_t queue = 256) {
  DiffServiceOptions options;
  options.num_threads = threads;
  options.queue_capacity = queue;
  return options;
}

DiffRequest InlineRequest(const std::string& old_doc,
                          const std::string& new_doc) {
  DiffRequest request;
  request.old_doc = old_doc;
  request.new_doc = new_doc;
  return request;
}

TEST(DiffServiceTest, ServesAnInlineDiff) {
  DiffService service(Options(2));
  DiffResponse response = service.SubmitSync(InlineRequest(kOld, kNew));
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_GT(response.operations, 0u);
  EXPECT_FALSE(response.script.empty());
  EXPECT_EQ(response.rung, DiffRung::kFastMatch);
  EXPECT_FALSE(response.degraded);
  EXPECT_GE(response.total_seconds, 0.0);
}

TEST(DiffServiceTest, IdenticalDocumentsGiveEmptyScript) {
  DiffService service(Options(1));
  DiffResponse response = service.SubmitSync(InlineRequest(kOld, kOld));
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.operations, 0u);
  EXPECT_TRUE(response.script.empty());
}

TEST(DiffServiceTest, RepeatedBaseHitsTheCache) {
  DiffService service(Options(2));
  DiffResponse first = service.SubmitSync(InlineRequest(kOld, kNew));
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.cache_hit_old);
  EXPECT_FALSE(first.cache_hit_new);

  DiffResponse second = service.SubmitSync(InlineRequest(kOld, kNew));
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit_old);
  EXPECT_TRUE(second.cache_hit_new);
  // Cache hit or miss, the script is the same bytes.
  EXPECT_EQ(second.script, first.script);

  const TreeCache::Stats stats = service.cache_stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST(DiffServiceTest, ParseErrorsSurfaceAsStatus) {
  DiffService service(Options(1));
  DiffResponse response =
      service.SubmitSync(InlineRequest("(D (S \"unterminated", kNew));
  EXPECT_EQ(response.status.code(), Code::kParseError);
}

TEST(DiffServiceTest, XmlFormatIsSupported) {
  DiffService service(Options(1));
  DiffRequest request;
  request.format = DiffRequest::Format::kXml;
  request.old_doc = "<doc><p>alpha one two</p></doc>";
  request.new_doc = "<doc><p>alpha one CHANGED</p></doc>";
  DiffResponse response = service.SubmitSync(std::move(request));
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_GT(response.operations, 0u);
}

TEST(DiffServiceTest, StoredVersionDiff) {
  DiffService service(Options(2));
  ASSERT_TRUE(service.CreateStore("doc", kOld).ok());
  const StatusOr<int> v1 = service.CommitVersion("doc", kNew);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_EQ(*v1, 1);

  DiffRequest request;
  request.doc_id = "doc";
  request.from_version = 0;
  request.to_version = 1;
  DiffResponse response = service.SubmitSync(std::move(request));
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_GT(response.operations, 0u);

  // Same versions again: both sides now come from the cache.
  DiffRequest again;
  again.doc_id = "doc";
  again.from_version = 0;
  again.to_version = 1;
  DiffResponse cached = service.SubmitSync(std::move(again));
  ASSERT_TRUE(cached.status.ok());
  EXPECT_TRUE(cached.cache_hit_old);
  EXPECT_TRUE(cached.cache_hit_new);
  EXPECT_EQ(cached.script, response.script);
}

TEST(DiffServiceTest, UnknownStoreAndBadVersionsAreErrors) {
  DiffService service(Options(1));
  DiffRequest request;
  request.doc_id = "ghost";
  request.from_version = 0;
  request.to_version = 0;
  EXPECT_EQ(service.SubmitSync(std::move(request)).status.code(),
            Code::kNotFound);

  ASSERT_TRUE(service.CreateStore("doc", kOld).ok());
  DiffRequest out_of_range;
  out_of_range.doc_id = "doc";
  out_of_range.from_version = 0;
  out_of_range.to_version = 5;
  EXPECT_EQ(service.SubmitSync(std::move(out_of_range)).status.code(),
            Code::kOutOfRange);

  EXPECT_EQ(service.CreateStore("doc", kOld).code(),
            Code::kFailedPrecondition);  // Duplicate doc_id.
  EXPECT_EQ(service.CommitVersion("ghost", kNew).status().code(),
            Code::kNotFound);
}

TEST(DiffServiceTest, AttachedStoreIsServed) {
  auto labels = std::make_shared<LabelTable>();
  VersionStore store(*ParseSexpr(kOld, labels));
  ASSERT_TRUE(store.Commit(*ParseSexpr(kNew, labels)).ok());

  DiffService service(Options(1));
  ASSERT_TRUE(service.AttachStore("ext", &store).ok());
  DiffRequest request;
  request.doc_id = "ext";
  request.from_version = 0;
  request.to_version = 1;
  DiffResponse response = service.SubmitSync(std::move(request));
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_GT(response.operations, 0u);
}

TEST(DiffServiceTest, DeadlineExhaustedRequestsAreShed) {
  // An impossible deadline: by the time the worker picks the request up,
  // the deadline has passed, so it is shed without running the pipeline.
  DiffService service(Options(1));
  DiffRequest request = InlineRequest(kOld, kNew);
  request.deadline_seconds = 1e-9;
  DiffResponse response = service.SubmitSync(std::move(request));
  EXPECT_FALSE(response.status.ok());
  EXPECT_TRUE(IsExhaustion(response.status.code()))
      << response.status.ToString();
  EXPECT_EQ(response.operations, 0u);
}

TEST(DiffServiceTest, TinyNodeCapDegradesDownTheLadder) {
  DiffService service(Options(1));
  DiffRequest request = InlineRequest(kOld, kNew);
  request.node_cap = 2;  // Far too small for FastMatch.
  DiffResponse response = service.SubmitSync(std::move(request));
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.degraded);
  EXPECT_GT(static_cast<int>(response.rung),
            static_cast<int>(DiffRung::kFastMatch));
}

TEST(DiffServiceTest, QueueFullRequestsAreShedImmediately) {
  // Workers=1 and capacity=1, with the worker pinned by a slow request:
  // flooding must produce at least one kResourceExhausted shed and the
  // shed counter must account for every one of them.
  DiffServiceOptions options;
  options.num_threads = 1;
  options.queue_capacity = 1;
  options.degrade_queue_fraction = 2.0;  // Isolate the full-queue layer.
  DiffService service(options);

  std::vector<std::future<DiffResponse>> futures;
  for (int i = 0; i < 64; ++i) {
    // Distinct docs so no request is a pure cache hit.
    std::string old_doc = "(D (P (S \"base text " + std::to_string(i) +
                          " alpha beta gamma\")))";
    std::string new_doc = "(D (P (S \"base text " + std::to_string(i) +
                          " alpha beta DELTA\")))";
    futures.push_back(service.Submit(InlineRequest(old_doc, new_doc)));
  }
  size_t ok = 0, shed = 0;
  for (auto& f : futures) {
    DiffResponse r = f.get();
    if (r.status.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(r.status.code(), Code::kResourceExhausted);
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, 64u);
  EXPECT_GT(ok, 0u);
  EXPECT_GT(shed, 0u);
  EXPECT_EQ(service.metrics().counter("diff_shed_queue_full_total")->Value(),
            shed);
}

TEST(DiffServiceTest, MetricsAccumulateAcrossRequests) {
  DiffService service(Options(2));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(service.SubmitSync(InlineRequest(kOld, kNew)).status.ok());
  }
  MetricsRegistry& m = service.metrics();
  EXPECT_EQ(m.counter("diff_requests_total")->Value(), 5u);
  EXPECT_EQ(m.counter("diff_responses_ok_total")->Value(), 5u);
  EXPECT_EQ(m.counter("diff_responses_error_total")->Value(), 0u);
  EXPECT_EQ(m.counter("diff_rung_total{rung=\"FastMatch\"}")->Value(), 5u);
  EXPECT_EQ(m.histogram("diff_e2e_seconds")->Count(), 5u);
  EXPECT_EQ(m.histogram("diff_queue_wait_seconds")->Count(), 5u);
  const std::string text = m.TextExposition();
  EXPECT_NE(text.find("diff_requests_total 5"), std::string::npos);
  EXPECT_NE(text.find("tree_cache_hits_total 8"), std::string::npos);
}

TEST(DiffServiceTest, ShutdownDrainsAndAnswersEveryFuture) {
  std::vector<std::future<DiffResponse>> futures;
  {
    DiffService service(Options(2, 64));
    for (int i = 0; i < 32; ++i) {
      futures.push_back(service.Submit(InlineRequest(kOld, kNew)));
    }
    service.Shutdown();
  }
  for (auto& f : futures) {
    DiffResponse r = f.get();  // Must not hang or throw broken_promise.
    EXPECT_TRUE(r.status.ok() ||
                r.status.code() == Code::kResourceExhausted);
  }
}

}  // namespace
}  // namespace treediff
