#include "util/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace treediff {
namespace {

TEST(StatAccumulatorTest, EmptyIsZero) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.StdDev(), 0.0);
  EXPECT_DOUBLE_EQ(acc.Percentile(50), 0.0);
}

TEST(StatAccumulatorTest, BasicMoments) {
  StatAccumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.Min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.Max(), 9.0);
  EXPECT_NEAR(acc.StdDev(), 2.138, 1e-3);  // Sample stddev.
}

TEST(StatAccumulatorTest, PercentileInterpolates) {
  StatAccumulator acc;
  for (double v : {10.0, 20.0, 30.0, 40.0}) acc.Add(v);
  EXPECT_DOUBLE_EQ(acc.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(acc.Percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(acc.Percentile(50), 25.0);
}

TEST(FitLineTest, PerfectLine) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {3, 5, 7, 9, 11};  // y = 2x + 1.
  LinearFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(FitLineTest, NoisyLineHasHighButImperfectR2) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + ((i % 2 == 0) ? 1.0 : -1.0));
  }
  LinearFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.01);
  EXPECT_GT(fit.r_squared, 0.99);
  EXPECT_LT(fit.r_squared, 1.0);
}

TEST(FitLineTest, DegenerateInputsReturnZeroFit) {
  EXPECT_DOUBLE_EQ(FitLine({}, {}).slope, 0.0);
  EXPECT_DOUBLE_EQ(FitLine({1}, {2}).slope, 0.0);
  EXPECT_DOUBLE_EQ(FitLine({1, 2}, {3}).slope, 0.0);       // Size mismatch.
  EXPECT_DOUBLE_EQ(FitLine({2, 2, 2}, {1, 2, 3}).slope, 0.0);  // Vertical.
}

TEST(FitLineTest, ConstantYGivesPerfectR2) {
  LinearFit fit = FitLine({1, 2, 3}, {5, 5, 5});
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

}  // namespace
}  // namespace treediff
