#include "util/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace treediff {
namespace {

TEST(MutexTest, CountsStayConsistentUnderContention) {
  Mutex mu;
  int count = 0;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock(&mu);
        ++count;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MutexLock lock(&mu);
  EXPECT_EQ(count, 4000);
}

TEST(MutexTest, TryLockFailsWhileHeldAndRecoversAfter) {
  Mutex mu;
  mu.Lock();
  std::atomic<bool> acquired{false};
  std::thread other([&] { acquired.store(mu.TryLock()); });
  other.join();
  EXPECT_FALSE(acquired.load());
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, CondVarWakesWaiterOnSignal) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = 0;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    observed = 1;
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.Signal();
  waiter.join();
  EXPECT_EQ(observed, 1);
}

TEST(MutexTest, CondVarSignalAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  std::atomic<int> woke{0};
  std::vector<std::thread> waiters;
  waiters.reserve(3);
  for (int t = 0; t < 3; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(&mu);
      woke.fetch_add(1);
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.SignalAll();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(woke.load(), 3);
}

TEST(SharedMutexTest, ReadersOverlapWritersExclude) {
  SharedMutex mu;
  int value = 0;

  // Two readers hold the shared lock at once: each waits until the other
  // has entered before leaving, which would deadlock if reads excluded
  // each other.
  std::atomic<int> readers_in{0};
  std::vector<std::thread> readers;
  readers.reserve(2);
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      ReaderMutexLock lock(&mu);
      readers_in.fetch_add(1);
      while (readers_in.load() < 2) std::this_thread::yield();
      EXPECT_EQ(value, 0);
    });
  }
  for (std::thread& t : readers) t.join();

  // Writers are mutually exclusive: interleaved increments would lose
  // updates if WriterMutexLock did not exclude other writers.
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        WriterMutexLock lock(&mu);
        ++value;
      }
    });
  }
  for (std::thread& t : writers) t.join();
  ReaderMutexLock lock(&mu);
  EXPECT_EQ(value, 2000);
}

}  // namespace
}  // namespace treediff
