// Control fixture for the negative-compile test: identical to
// nodiscard_violation.cc except the drop is spelled out with IgnoreError().
// Must COMPILE under the same flags — if it fails, the "violation fails to
// compile" half of the test is vacuous (e.g. a broken include path fails
// both fixtures).

#include "util/status.h"

namespace {

treediff::Status Fallible() { return treediff::Status::Internal("boom"); }

}  // namespace

int main() {
  Fallible().IgnoreError();
  treediff::StatusOr<int> maybe = 42;
  maybe.IgnoreError();
  return maybe.ok() ? 0 : 1;
}
