// Negative-compile fixture: a fallible call whose Status is dropped on the
// floor. Must FAIL to compile under -Werror=unused-result; if it ever
// starts compiling, the [[nodiscard]] enforcement has silently regressed.

#include "util/status.h"

namespace {

treediff::Status Fallible() { return treediff::Status::Internal("boom"); }

}  // namespace

int main() {
  Fallible();  // Dropped Status: the error this test exists to catch.
  return 0;
}
