// Control fixture for the thread-safety negative-compile test: the same
// guarded counter, with the discipline followed (RAII lock on the write
// path, REQUIRES on the helper). Must COMPILE under
//   -Wthread-safety -Werror=thread-safety-analysis
// so that tsa_violation.cc failing proves the analysis — not a broken
// include path — rejected the violation.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Guarded {
 public:
  void Bump() EXCLUDES(mu_) {
    treediff::MutexLock lock(&mu_);
    BumpLocked();
  }

  int Value() EXCLUDES(mu_) {
    treediff::MutexLock lock(&mu_);
    return value_;
  }

 private:
  void BumpLocked() REQUIRES(mu_) { ++value_; }

  treediff::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Bump();
  return g.Value() == 1 ? 0 : 1;
}
