// Negative-compile fixture: a GUARDED_BY member written without its mutex.
// Must FAIL to compile under Clang with
//   -Wthread-safety -Werror=thread-safety-analysis
// (the static-analysis CI configuration); if it ever starts compiling, the
// lock-discipline enforcement has silently regressed. Compilers without
// the analysis skip this fixture — the macros are no-ops there.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Guarded {
 public:
  // The violation: value_ is guarded by mu_, and Bump neither holds the
  // lock nor declares REQUIRES(mu_).
  void Bump() { ++value_; }

 private:
  treediff::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Bump();
  return 0;
}
