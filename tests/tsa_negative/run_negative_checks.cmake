# Negative-compile checks for the static-analysis enforcement
# (tests/tsa_negative_test). A lint that is supposed to reject bad code is
# itself untested until something proves it still rejects it, so this
# script compiles four fixtures and asserts the expected verdicts:
#
#   nodiscard_ok.cc          must compile  } under -Werror=unused-result
#   nodiscard_violation.cc   must NOT      } (any compiler)
#   tsa_ok.cc                must compile  } under -Wthread-safety
#   tsa_violation.cc         must NOT      } -Werror=thread-safety-analysis
#                                            (Clang only; skipped elsewhere)
#
# Each "must NOT compile" case is paired with a near-identical control that
# must compile, so a broken include path or flag typo cannot fake a pass.
#
# Invoked by ctest as:
#   cmake -DCXX=<compiler> -DSOURCE_DIR=<repo root> -DTSA_SUPPORTED=<bool>
#         -P run_negative_checks.cmake

if(NOT DEFINED CXX OR NOT DEFINED SOURCE_DIR)
  message(FATAL_ERROR "usage: cmake -DCXX=... -DSOURCE_DIR=... "
                      "[-DTSA_SUPPORTED=ON] -P run_negative_checks.cmake")
endif()

set(FIXTURES "${SOURCE_DIR}/tests/tsa_negative")
set(COMMON_FLAGS -std=c++20 -fsyntax-only "-I${SOURCE_DIR}/src")

# expect_verdict(<fixture.cc> <COMPILES|REJECTS> <flag...>)
function(expect_verdict fixture verdict)
  execute_process(
    COMMAND "${CXX}" ${COMMON_FLAGS} ${ARGN} "${FIXTURES}/${fixture}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(verdict STREQUAL "COMPILES" AND NOT rc EQUAL 0)
    message(FATAL_ERROR
        "${fixture} should compile under [${ARGN}] but was rejected "
        "(control fixture broken?):\n${err}")
  endif()
  if(verdict STREQUAL "REJECTS" AND rc EQUAL 0)
    message(FATAL_ERROR
        "${fixture} compiled under [${ARGN}] — the seeded violation was "
        "NOT rejected; the static-analysis enforcement has regressed")
  endif()
  message(STATUS "${fixture}: ${verdict} as expected")
endfunction()

# [[nodiscard]] Status enforcement: works on every supported compiler.
expect_verdict(nodiscard_ok.cc COMPILES -Werror=unused-result)
expect_verdict(nodiscard_violation.cc REJECTS -Werror=unused-result)

# Thread-safety analysis: Clang-only (the macros are no-ops elsewhere, so
# the violation fixture would — correctly — compile on GCC).
if(TSA_SUPPORTED)
  set(TSA_FLAGS -Wthread-safety -Wthread-safety-beta
                -Werror=thread-safety-analysis)
  expect_verdict(tsa_ok.cc COMPILES ${TSA_FLAGS})
  expect_verdict(tsa_violation.cc REJECTS ${TSA_FLAGS})
else()
  message(STATUS "compiler has no -Wthread-safety; TSA fixtures skipped")
endif()
