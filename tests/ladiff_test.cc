#include "doc/ladiff.h"

#include <gtest/gtest.h>

namespace treediff {
namespace {

TEST(LaDiffTest, EndToEndLatexPipeline) {
  const char* old_doc =
      "\\section{Intro}\n"
      "The system detects changes. It produces edit scripts.\n\n"
      "A second paragraph lives here. With two sentences.\n";
  const char* new_doc =
      "\\section{Intro}\n"
      "The system detects changes. It produces minimal edit scripts.\n\n"
      "A second paragraph lives here. With two sentences. And a third one.\n";
  auto result = DiffLatexDocuments(old_doc, new_doc);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->diff.stats.updates, 1u);
  EXPECT_EQ(result->diff.stats.inserts, 1u);
  EXPECT_EQ(result->diff.stats.deletes, 0u);
  EXPECT_FALSE(result->markup.empty());
  // The delta tree mirrors the new document plus tombstones.
  EXPECT_GT(result->delta.nodes().size(), result->new_tree.size() - 1);
}

TEST(LaDiffTest, ScriptTransformsOldIntoNew) {
  const char* old_doc = "Alpha beta gamma. Delta epsilon zeta.";
  const char* new_doc = "Delta epsilon zeta. Alpha beta gamma.";
  auto result = DiffLatexDocuments(old_doc, new_doc);
  ASSERT_TRUE(result.ok());
  Tree replay = result->old_tree.Clone();
  ASSERT_TRUE(result->diff.script.ApplyTo(&replay).ok());
  EXPECT_TRUE(Tree::Isomorphic(replay, result->new_tree));
  EXPECT_EQ(result->diff.stats.moves, 1u);  // One sentence reorder.
}

TEST(LaDiffTest, HtmlPipeline) {
  const char* old_doc =
      "<h1>Title</h1><p>Sentence one here. Sentence two here.</p>";
  const char* new_doc =
      "<h1>Title</h1><p>Sentence one here. Sentence two changed here.</p>";
  LaDiffOptions options;
  options.format = MarkupFormat::kHtml;
  auto result = DiffHtmlDocuments(old_doc, new_doc, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->diff.stats.updates, 1u);
  EXPECT_NE(result->markup.find("class=\"upd\""), std::string::npos);
}

TEST(LaDiffTest, IdenticalDocumentsNoOps) {
  const char* doc = "\\section{S}\nNothing changes in this text.";
  auto result = DiffLatexDocuments(doc, doc);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->diff.script.empty());
}

TEST(LaDiffTest, AllOutputFormatsRender) {
  const char* old_doc =
      "\\section{S}\nKeep this sentence here. Drop this other one. "
      "And keep this one too.";
  const char* new_doc =
      "\\section{S}\nKeep this sentence here. And keep this one too. "
      "Add a brand new line.";
  for (MarkupFormat format :
       {MarkupFormat::kLatex, MarkupFormat::kHtml, MarkupFormat::kText,
        MarkupFormat::kMarkdown}) {
    LaDiffOptions options;
    options.format = format;
    auto result = DiffLatexDocuments(old_doc, new_doc, options);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->markup.empty());
    // Every format must surface the inserted sentence somehow.
    EXPECT_NE(result->markup.find("Add a brand new line."),
              std::string::npos);
  }
}

TEST(LaDiffTest, ParseErrorsPropagate) {
  auto result = DiffLatexDocuments("\\section{broken", "fine text.");
  EXPECT_EQ(result.status().code(), Code::kParseError);
  auto result2 = DiffLatexDocuments("fine text.", "\\section{broken");
  EXPECT_EQ(result2.status().code(), Code::kParseError);
}

TEST(LaDiffTest, ThresholdOptionsForwarded) {
  // With a tiny f, the slightly-changed sentence cannot match: it becomes
  // delete+insert instead of an update.
  const char* old_doc = "The quick brown fox jumps over the lazy dog today.";
  const char* new_doc = "The quick brown wolf jumps over the lazy dog today.";
  LaDiffOptions strict;
  strict.diff.leaf_threshold_f = 0.05;
  auto result = DiffLatexDocuments(old_doc, new_doc, strict);
  ASSERT_TRUE(result.ok());
  // The sentence cannot match, which also unmatches its paragraph: the
  // script re-inserts both instead of updating.
  EXPECT_EQ(result->diff.stats.updates, 0u);
  EXPECT_GE(result->diff.stats.inserts, 1u);
  EXPECT_GE(result->diff.stats.deletes, 1u);

  LaDiffOptions lenient;
  lenient.diff.leaf_threshold_f = 0.5;
  auto result2 = DiffLatexDocuments(old_doc, new_doc, lenient);
  ASSERT_TRUE(result2.ok());
  EXPECT_EQ(result2->diff.stats.updates, 1u);
}

}  // namespace
}  // namespace treediff
