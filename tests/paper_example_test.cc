// End-to-end reproduction of the paper's running example (Figures 1, 4-6):
// matching, minimum conforming edit script (one align-phase move, one
// insert, one delete), and the resulting isomorphism.

#include <gtest/gtest.h>

#include <memory>

#include "core/diff.h"
#include "core/edit_script_gen.h"
#include "core/fast_match.h"
#include "tree/builder.h"

namespace treediff {
namespace {

class RunningExampleTest : public ::testing::Test {
 protected:
  RunningExampleTest() {
    labels_ = std::make_shared<LabelTable>();
    // T1 (Figure 1 left): D(P(a,f), P(b,c,d), P(e)).
    t1_ = *ParseSexpr(
        "(D (P (S \"a\") (S \"f\")) (P (S \"b\") (S \"c\") (S \"d\")) "
        "(P (S \"e\")))",
        labels_);
    // T2 (Figure 1 right): D(P(a), P(e), P(b,c,g,d)).
    t2_ = *ParseSexpr(
        "(D (P (S \"a\")) (P (S \"e\")) (P (S \"b\") (S \"c\") (S \"g\") "
        "(S \"d\")))",
        labels_);
  }

  Matching PaperMatching() {
    // The matching the dashed lines of Figure 1 depict.
    Matching m(t1_.id_bound(), t2_.id_bound());
    auto leaf1 = [&](const char* v) {
      for (NodeId s : t1_.Leaves()) {
        if (t1_.value(s) == v) return s;
      }
      return kInvalidNode;
    };
    auto leaf2 = [&](const char* v) {
      for (NodeId s : t2_.Leaves()) {
        if (t2_.value(s) == v) return s;
      }
      return kInvalidNode;
    };
    m.Add(t1_.root(), t2_.root());                              // (1, 11).
    m.Add(t1_.children(t1_.root())[0], t2_.children(t2_.root())[0]);  // 2,12
    m.Add(t1_.children(t1_.root())[1], t2_.children(t2_.root())[2]);  // 3,14
    m.Add(t1_.children(t1_.root())[2], t2_.children(t2_.root())[1]);  // 4,13
    for (const char* v : {"a", "b", "c", "d", "e"}) {
      m.Add(leaf1(v), leaf2(v));
    }
    return m;
  }

  std::shared_ptr<LabelTable> labels_;
  Tree t1_{nullptr}, t2_{nullptr};
};

TEST_F(RunningExampleTest, ScriptHasOneMoveOneInsertOneDelete) {
  auto result = GenerateEditScript(t1_, t2_, PaperMatching());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Figures 4-6: MOV(4,1,2) in the align phase, INS((21,S,g),3,3) in the
  // insert phase, no inter-parent moves, DEL(6) in the delete phase.
  EXPECT_EQ(result->script.num_moves(), 1u);
  EXPECT_EQ(result->intra_parent_moves, 1u);
  EXPECT_EQ(result->inter_parent_moves, 0u);
  EXPECT_EQ(result->script.num_inserts(), 1u);
  EXPECT_EQ(result->script.num_deletes(), 1u);
  EXPECT_EQ(result->script.num_updates(), 0u);
  EXPECT_DOUBLE_EQ(result->script.TotalCost(), 3.0);
  EXPECT_TRUE(Tree::Isomorphic(result->transformed, t2_));
}

TEST_F(RunningExampleTest, InsertLandsAtPosition3) {
  auto result = GenerateEditScript(t1_, t2_, PaperMatching());
  ASSERT_TRUE(result.ok());
  for (const EditOp& op : result->script.ops()) {
    if (op.kind == EditOpKind::kInsert) {
      EXPECT_EQ(op.value, "g");
      EXPECT_EQ(op.position, 3);  // INS((21, S, g), 3, 3).
      // Its parent is the partner of T2's P(b,c,g,d): T1's P(b,c,d).
      EXPECT_EQ(op.parent, t1_.children(t1_.root())[1]);
    }
  }
}

TEST_F(RunningExampleTest, DeleteRemovesNodeF) {
  auto result = GenerateEditScript(t1_, t2_, PaperMatching());
  ASSERT_TRUE(result.ok());
  for (const EditOp& op : result->script.ops()) {
    if (op.kind == EditOpKind::kDelete) {
      EXPECT_EQ(t1_.value(op.node), "f");  // Paper's node 6.
    }
  }
}

TEST_F(RunningExampleTest, FastMatchReproducesThePaperMatching) {
  ExactComparator exact;
  CriteriaEvaluator eval(
      t1_, t2_, &exact,
      {.leaf_threshold_f = 0.0, .internal_threshold_t = 0.45});
  Matching m = ComputeFastMatch(t1_, t2_, eval);
  Matching expected = PaperMatching();
  EXPECT_EQ(m.Pairs(), expected.Pairs());
}

TEST_F(RunningExampleTest, EndToEndPipelineOnExample) {
  ExactComparator exact;
  DiffOptions options;
  options.comparator = &exact;
  options.leaf_threshold_f = 0.0;
  options.internal_threshold_t = 0.5;  // P(a,f)~P(a) fails at exactly 1/2...
  auto result = DiffTrees(t1_, t2_, options);
  ASSERT_TRUE(result.ok());
  // Whatever the matching, the script must transform T1 into T2.
  Tree replay = t1_.Clone();
  ASSERT_TRUE(result->script.ApplyTo(&replay).ok());
  EXPECT_TRUE(Tree::Isomorphic(replay, t2_));
}

}  // namespace
}  // namespace treediff
