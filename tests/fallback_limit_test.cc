// The A(k) optimality/efficiency knob (the paper's Section 9 future-work
// item): bounding the fallback scan must cap comparisons, never break
// correctness, and degrade matching quality gracefully.

#include <gtest/gtest.h>

#include <memory>

#include "core/diff.h"
#include "core/fast_match.h"
#include "gen/doc_gen.h"
#include "gen/edit_sim.h"
#include "tree/builder.h"

namespace treediff {
namespace {

struct Fixture {
  std::shared_ptr<LabelTable> labels = std::make_shared<LabelTable>();
  WordLcsComparator cmp;

  Tree Parse(const std::string& s) { return *ParseSexpr(s, labels); }
};

TEST(FallbackLimitTest, UnlimitedEqualsDefault) {
  Fixture f;
  Tree t1 = f.Parse(
      "(D (P (S \"s one one\") (S \"s two two\") (S \"s three three\")))");
  Tree t2 = f.Parse(
      "(D (P (S \"s three three\") (S \"s one one\") (S \"s two two\")))");
  CriteriaEvaluator e1(t1, t2, &f.cmp, {});
  Matching unlimited = ComputeFastMatch(t1, t2, e1, nullptr, 0);
  CriteriaEvaluator e2(t1, t2, &f.cmp, {});
  Matching defaulted = ComputeFastMatch(t1, t2, e2);
  EXPECT_EQ(unlimited.Pairs(), defaulted.Pairs());
}

TEST(FallbackLimitTest, SmallKMissesFarMatches) {
  Fixture f;
  // "mover" is out of LCS order (the a/b/c run wins), so it falls to the
  // fallback scan — where two inserted decoys precede it among the
  // unmatched T2 candidates. With k = 1 the scan gives up at the first
  // decoy; unlimited reaches it.
  Tree t1 = f.Parse(
      "(D (S \"mover aaa bbb\") (S \"a a\") (S \"b b\") (S \"c c\"))");
  Tree t2 = f.Parse(
      "(D (S \"a a\") (S \"new1 one\") (S \"new2 two\") (S \"b b\") "
      "(S \"c c\") (S \"mover aaa bbb\"))");
  CriteriaEvaluator e_full(t1, t2, &f.cmp, {});
  Matching full = ComputeFastMatch(t1, t2, e_full, nullptr, 0);
  NodeId mover = t1.children(t1.root())[0];
  EXPECT_TRUE(full.HasT1(mover));

  CriteriaEvaluator e_k1(t1, t2, &f.cmp, {});
  Matching limited = ComputeFastMatch(t1, t2, e_k1, nullptr, 1);
  EXPECT_FALSE(limited.HasT1(mover));
  EXPECT_LE(limited.size(), full.size());
}

TEST(FallbackLimitTest, CorrectScriptEitherWay) {
  Fixture f;
  Vocabulary vocab(300, 1.0);
  Rng rng(61);
  DocGenParams params;
  params.sections = 3;
  Tree t1 = GenerateDocument(params, vocab, &rng, f.labels);
  SimulatedVersion v = SimulateNewVersion(t1, 15, {}, vocab, &rng);

  for (int k : {0, 1, 2, 8}) {
    DiffOptions options;
    options.fallback_limit_k = k;
    auto diff = DiffTrees(t1, v.new_tree, options);
    ASSERT_TRUE(diff.ok()) << "k=" << k;
    Tree replay = t1.Clone();
    ASSERT_TRUE(diff->script.ApplyTo(&replay).ok()) << "k=" << k;
    EXPECT_TRUE(Tree::Isomorphic(replay, v.new_tree)) << "k=" << k;
  }
}

TEST(FallbackLimitTest, CostDecreasesMonotonicallyInK) {
  // A larger window can only find more matches, so the script cost is
  // non-increasing in k (comparisons are non-decreasing).
  Fixture f;
  Vocabulary vocab(300, 1.0);
  Rng rng(62);
  DocGenParams params;
  params.sections = 4;
  Tree t1 = GenerateDocument(params, vocab, &rng, f.labels);
  EditMix shuffly;
  shuffly.update_sentence = 0.2;
  shuffly.move_sentence = 0.5;
  shuffly.insert_sentence = 0.15;
  shuffly.delete_sentence = 0.15;
  shuffly.move_paragraph = shuffly.insert_paragraph = 0.0;
  shuffly.delete_paragraph = shuffly.move_section = 0.0;
  SimulatedVersion v = SimulateNewVersion(t1, 20, shuffly, vocab, &rng);

  double prev_cost = 1e100;
  size_t prev_cmp = 0;
  for (int k : {1, 4, 16, 0}) {  // 0 = unlimited comes last.
    DiffOptions options;
    options.fallback_limit_k = k;
    options.post_process = false;  // Isolate the fallback effect.
    auto diff = DiffTrees(t1, v.new_tree, options);
    ASSERT_TRUE(diff.ok());
    EXPECT_LE(diff->stats.script_cost, prev_cost + 1e-9) << "k=" << k;
    EXPECT_GE(diff->stats.compare_calls, prev_cmp) << "k=" << k;
    prev_cost = diff->stats.script_cost;
    prev_cmp = diff->stats.compare_calls;
  }
}

}  // namespace
}  // namespace treediff
