// InvertScript: applying a script and then its inverse must restore the
// original tree EXACTLY — same node identities, labels, values, and child
// orders (deleted nodes are revived in their dead slots).

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/diff.h"
#include "core/edit_script.h"
#include "gen/doc_gen.h"
#include "gen/edit_sim.h"
#include "tree/builder.h"

namespace treediff {
namespace {

/// Exact equality including node identities (stronger than Isomorphic).
bool ExactlyEqual(const Tree& a, const Tree& b) {
  if (a.size() != b.size() || a.root() != b.root()) return false;
  for (NodeId x : a.PreOrder()) {
    if (!b.Alive(x)) return false;
    if (a.label(x) != b.label(x) || a.value(x) != b.value(x)) return false;
    if (a.parent(x) != b.parent(x)) return false;
    if (a.children(x) != b.children(x)) return false;
  }
  return true;
}

struct Fixture {
  std::shared_ptr<LabelTable> labels = std::make_shared<LabelTable>();

  Tree Parse(const std::string& s) { return *ParseSexpr(s, labels); }

  void CheckRoundTrip(const Tree& t1, const Tree& t2) {
    auto diff = DiffTrees(t1, t2);
    ASSERT_TRUE(diff.ok()) << diff.status().ToString();
    auto inverse = InvertScript(diff->script, t1);
    ASSERT_TRUE(inverse.ok()) << inverse.status().ToString();

    Tree work = t1.Clone();
    ASSERT_TRUE(diff->script.ApplyTo(&work).ok());
    EXPECT_TRUE(Tree::Isomorphic(work, t2));
    ASSERT_TRUE(inverse->ApplyTo(&work).ok())
        << "inverse:\n" << inverse->ToString(*labels);
    EXPECT_TRUE(ExactlyEqual(work, t1))
        << "forward:\n" << diff->script.ToString(*labels)
        << "inverse:\n" << inverse->ToString(*labels);
    EXPECT_TRUE(work.Validate().ok());
  }
};

TEST(InvertTest, EmptyScript) {
  Fixture f;
  Tree t = f.Parse("(D (S \"a\"))");
  EditScript empty;
  auto inverse = InvertScript(empty, t);
  ASSERT_TRUE(inverse.ok());
  EXPECT_TRUE(inverse->empty());
}

TEST(InvertTest, SingleOps) {
  Fixture f;
  // Update.
  f.CheckRoundTrip(f.Parse("(D (S \"old text here\"))"),
                   f.Parse("(D (S \"new text here\"))"));
  // Insert.
  f.CheckRoundTrip(f.Parse("(D (S \"a b c\"))"),
                   f.Parse("(D (S \"a b c\") (S \"fresh one two\"))"));
  // Delete.
  f.CheckRoundTrip(f.Parse("(D (S \"a b c\") (S \"doomed x y\"))"),
                   f.Parse("(D (S \"a b c\"))"));
  // Intra-parent move.
  f.CheckRoundTrip(f.Parse("(D (S \"a a\") (S \"b b\") (S \"c c\"))"),
                   f.Parse("(D (S \"c c\") (S \"a a\") (S \"b b\"))"));
}

TEST(InvertTest, InverseOfInverseIsForward) {
  Fixture f;
  Tree t1 = f.Parse("(D (S \"a b c\") (S \"d e f\"))");
  Tree t2 = f.Parse("(D (S \"d e f\") (S \"a b x\"))");
  auto diff = DiffTrees(t1, t2);
  ASSERT_TRUE(diff.ok());
  auto inverse = InvertScript(diff->script, t1);
  ASSERT_TRUE(inverse.ok());
  Tree after = t1.Clone();
  ASSERT_TRUE(diff->script.ApplyTo(&after).ok());
  auto forward_again = InvertScript(*inverse, after);
  ASSERT_TRUE(forward_again.ok());
  // Applying the double inverse to t1 lands on t2 again.
  Tree work = t1.Clone();
  ASSERT_TRUE(forward_again->ApplyTo(&work).ok());
  EXPECT_TRUE(Tree::Isomorphic(work, t2));
}

TEST(InvertTest, FailsOnInapplicableScript) {
  Fixture f;
  Tree t = f.Parse("(D (S \"a\"))");
  EditScript bogus;
  bogus.Append(EditOp::Delete(99));
  EXPECT_FALSE(InvertScript(bogus, t).ok());
}

class InvertPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(InvertPropertyTest, RandomWorkloadsRoundTripExactly) {
  const auto [sections, edits, seed] = GetParam();
  Vocabulary vocab(400, 1.0);
  Rng rng(seed);
  DocGenParams params;
  params.sections = sections;
  Fixture f;
  Tree t1 = GenerateDocument(params, vocab, &rng, f.labels);
  SimulatedVersion v = SimulateNewVersion(t1, edits, {}, vocab, &rng);
  f.CheckRoundTrip(t1, v.new_tree);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InvertPropertyTest,
    ::testing::Values(std::make_tuple(2, 3, 601ull),
                      std::make_tuple(3, 8, 602ull),
                      std::make_tuple(4, 15, 603ull),
                      std::make_tuple(5, 25, 604ull),
                      std::make_tuple(6, 40, 605ull),
                      std::make_tuple(3, 0, 606ull)));

TEST(InvertTest, RollbackThroughVersionChain) {
  // Undo an entire editing session by inverting each delta in reverse.
  Fixture f;
  Vocabulary vocab(300, 1.0);
  Rng rng(607);
  DocGenParams params;
  params.sections = 3;
  Tree original = GenerateDocument(params, vocab, &rng, f.labels);

  Tree current = original.Clone();
  std::vector<EditScript> inverses;
  for (int round = 0; round < 5; ++round) {
    SimulatedVersion v = SimulateNewVersion(current, 6, {}, vocab, &rng);
    auto diff = DiffTrees(current, v.new_tree);
    ASSERT_TRUE(diff.ok());
    auto inverse = InvertScript(diff->script, current);
    ASSERT_TRUE(inverse.ok());
    inverses.push_back(std::move(*inverse));
    ASSERT_TRUE(diff->script.ApplyTo(&current).ok());
  }
  // Roll everything back.
  for (auto it = inverses.rbegin(); it != inverses.rend(); ++it) {
    ASSERT_TRUE(it->ApplyTo(&current).ok());
  }
  EXPECT_TRUE(ExactlyEqual(current, original));
}

}  // namespace
}  // namespace treediff
