#include "core/delta_query.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/diff.h"
#include "tree/builder.h"

namespace treediff {
namespace {

class DeltaQueryTest : public ::testing::Test {
 protected:
  DeltaQueryTest() {
    labels_ = std::make_shared<LabelTable>();
    // Both paragraphs keep enough common sentences to stay matched; the
    // updated sentence stays within the f = 0.5 leaf threshold.
    Tree t1 = *ParseSexpr(
        "(D (P (S \"keep one two\") (S \"old text words here\") "
        "(S \"doomed gone bye\")) "
        "(P (S \"solo here now\") (S \"second solo line\")))",
        labels_);
    Tree t2 = *ParseSexpr(
        "(D (P (S \"keep one two\") (S \"old text words changed\")) "
        "(P (S \"solo here now\") (S \"second solo line\") "
        "(S \"fresh new sentence\")))",
        labels_);
    t1_ = std::make_unique<Tree>(std::move(t1));
    t2_ = std::make_unique<Tree>(std::move(t2));
    auto diff = DiffTrees(*t1_, *t2_);
    EXPECT_TRUE(diff.ok());
    auto delta = BuildDeltaTree(*t1_, *t2_, *diff);
    EXPECT_TRUE(delta.ok());
    delta_ = std::make_unique<DeltaTree>(std::move(*delta));
  }

  std::shared_ptr<LabelTable> labels_;
  std::unique_ptr<Tree> t1_, t2_;
  std::unique_ptr<DeltaTree> delta_;
};

TEST_F(DeltaQueryTest, SelectByAnnotation) {
  auto inserts = SelectChanges(*delta_, *labels_,
                               MaskOf(DeltaAnnotation::kInserted));
  ASSERT_EQ(inserts.size(), 1u);
  EXPECT_EQ(delta_->node(inserts[0].node).value, "fresh new sentence");

  auto deletes = SelectChanges(*delta_, *labels_,
                               MaskOf(DeltaAnnotation::kDeleted));
  ASSERT_EQ(deletes.size(), 1u);
  EXPECT_EQ(delta_->node(deletes[0].node).value, "doomed gone bye");

  auto updates = SelectChanges(*delta_, *labels_,
                               MaskOf(DeltaAnnotation::kUpdated));
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(delta_->node(updates[0].node).value,
            "old text words changed");
}

TEST_F(DeltaQueryTest, SelectAnyChangeSkipsIdentical) {
  auto all = SelectChanges(*delta_, *labels_, kAnyChange);
  EXPECT_EQ(all.size(), 3u);  // upd + del + ins.
}

TEST_F(DeltaQueryTest, SelectFiltersByLabel) {
  LabelId sentence = labels_->Find("S");
  ASSERT_NE(sentence, kInvalidLabel);
  auto hits = SelectChanges(*delta_, *labels_, kAnyChange, sentence);
  EXPECT_EQ(hits.size(), 3u);
  LabelId paragraph = labels_->Find("P");
  auto para_hits = SelectChanges(*delta_, *labels_, kAnyChange, paragraph);
  EXPECT_TRUE(para_hits.empty());  // Both paragraphs matched unchanged.
}

TEST_F(DeltaQueryTest, PathsHaveSiblingOrdinals) {
  auto inserts = SelectChanges(*delta_, *labels_,
                               MaskOf(DeltaAnnotation::kInserted));
  ASSERT_EQ(inserts.size(), 1u);
  EXPECT_EQ(inserts[0].path, "D[0]/P[1]/S[2]");
}

TEST_F(DeltaQueryTest, SummarizeWholeDelta) {
  ChangeSummary s = SummarizeSubtree(*delta_, delta_->root());
  EXPECT_EQ(s.inserted, 1u);
  EXPECT_EQ(s.deleted, 1u);
  EXPECT_EQ(s.updated, 1u);
  EXPECT_EQ(s.moved, 0u);
  EXPECT_EQ(s.total(), 3u);
}

TEST_F(DeltaQueryTest, SummarizeSubtreeIsLocal) {
  // The first paragraph holds only the update + delete.
  const int p0 = delta_->node(delta_->root()).children[0];
  ChangeSummary s = SummarizeSubtree(*delta_, p0);
  EXPECT_EQ(s.inserted, 0u);
  EXPECT_EQ(s.deleted, 1u);
  EXPECT_EQ(s.updated, 1u);
}

TEST_F(DeltaQueryTest, ChangeReportListsChangedRegionsOnly) {
  std::string report = RenderChangeReport(*delta_, *labels_);
  EXPECT_NE(report.find("fresh new sentence"), std::string::npos);
  EXPECT_NE(report.find("doomed gone bye"), std::string::npos);
  EXPECT_EQ(report.find("keep one two"), std::string::npos);  // Unchanged.
}

TEST_F(DeltaQueryTest, RulesFireOnMatchingChanges) {
  LabelId sentence = labels_->Find("S");
  std::vector<ActiveRule> rules;
  rules.push_back({"on-insert", MaskOf(DeltaAnnotation::kInserted),
                   sentence, nullptr});
  rules.push_back({"on-delete", MaskOf(DeltaAnnotation::kDeleted),
                   kInvalidLabel, nullptr});
  auto firings = EvaluateRules(*delta_, *labels_, rules);
  ASSERT_EQ(firings.size(), 2u);
  // Document order: the delete (first paragraph) precedes the insert.
  EXPECT_EQ(firings[0].rule->name, "on-delete");
  EXPECT_EQ(firings[1].rule->name, "on-insert");
}

TEST_F(DeltaQueryTest, RuleConditionsFilter) {
  std::vector<ActiveRule> rules;
  rules.push_back({"long-inserts", MaskOf(DeltaAnnotation::kInserted),
                   kInvalidLabel,
                   [](const DeltaNode& n) { return n.value.size() > 100; }});
  EXPECT_TRUE(EvaluateRules(*delta_, *labels_, rules).empty());
  rules[0].condition = [](const DeltaNode& n) {
    return n.value.find("fresh") != std::string::npos;
  };
  EXPECT_EQ(EvaluateRules(*delta_, *labels_, rules).size(), 1u);
}

TEST_F(DeltaQueryTest, MovedAndUpdatedCountsAsBoth) {
  // Build a delta with a moved+updated sentence and query by kUpdated.
  Tree t1 = *ParseSexpr(
      "(D (P (S \"alpha beta gamma delta\") (S \"stay here one\") "
      "(S \"stay one b\")) (P (S \"stay here two\") (S \"stay two b\")))",
      labels_);
  Tree t2 = *ParseSexpr(
      "(D (P (S \"stay here one\") (S \"stay one b\")) "
      "(P (S \"stay here two\") (S \"stay two b\") "
      "(S \"alpha beta gamma zeta\")))",
      labels_);
  auto diff = DiffTrees(t1, t2);
  ASSERT_TRUE(diff.ok());
  auto delta = BuildDeltaTree(t1, t2, *diff);
  ASSERT_TRUE(delta.ok());
  auto updated = SelectChanges(*delta, *labels_,
                               MaskOf(DeltaAnnotation::kUpdated));
  ASSERT_EQ(updated.size(), 1u);
  EXPECT_EQ(delta->node(updated[0].node).annotation,
            DeltaAnnotation::kMoveMarker);
  ChangeSummary s = SummarizeSubtree(*delta, delta->root());
  EXPECT_EQ(s.moved, 1u);
  EXPECT_EQ(s.updated, 1u);
}

TEST(DeltaQueryEmptyTest, EmptyDeltaYieldsNothing) {
  DeltaTree empty;
  LabelTable labels;
  EXPECT_TRUE(SelectChanges(empty, labels, kAnyChange).empty());
  EXPECT_TRUE(RenderChangeReport(empty, labels).empty());
  EXPECT_TRUE(EvaluateRules(empty, labels, {}).empty());
}

}  // namespace
}  // namespace treediff
