// Property tests for the end-to-end pipeline (FastMatch + EditScript) on
// randomized document workloads: the generated script must transform the old
// tree into a tree isomorphic to the new one, conform to the matching, and
// contain exactly the inserts/deletes/inter-parent moves the matching
// determines (Theorem C.2).

#include <gtest/gtest.h>

#include <tuple>

#include "core/diff.h"
#include "core/edit_script_gen.h"
#include "core/fast_match.h"
#include "gen/doc_gen.h"
#include "gen/edit_sim.h"

namespace treediff {
namespace {

class PipelinePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(PipelinePropertyTest, ScriptTransformsConformsAndIsMinimal) {
  const auto [sections, edits, seed] = GetParam();
  Vocabulary vocab(400, 1.0);
  Rng rng(seed);
  DocGenParams params;
  params.sections = sections;
  auto labels = std::make_shared<LabelTable>();
  Tree t1 = GenerateDocument(params, vocab, &rng, labels);
  SimulatedVersion v = SimulateNewVersion(t1, edits, {}, vocab, &rng);
  const Tree& t2 = v.new_tree;

  WordLcsComparator cmp;
  CriteriaEvaluator eval(t1, t2, &cmp, {});
  Matching m = ComputeFastMatch(t1, t2, eval);
  // Roots of documents always correspond.
  if (m.PartnerOfT2(t2.root()) != t1.root()) {
    if (m.HasT1(t1.root())) m.Remove(t1.root(), m.PartnerOfT1(t1.root()));
    if (m.HasT2(t2.root())) m.Remove(m.PartnerOfT2(t2.root()), t2.root());
    m.Add(t1.root(), t2.root());
  }

  auto result = GenerateEditScript(t1, t2, m, &cmp);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // 1. Transformation: the working tree is isomorphic to T2.
  EXPECT_TRUE(Tree::Isomorphic(result->transformed, t2));
  EXPECT_TRUE(result->transformed.Validate().ok());

  // 2. Replay: the script applies cleanly to a fresh clone.
  Tree replay = t1.Clone();
  ASSERT_TRUE(result->script.ApplyTo(&replay).ok());
  EXPECT_TRUE(Tree::Isomorphic(replay, t2));

  // 3. Conformance: no matched node is deleted; no insert claims a matched
  // T2 node.
  for (const EditOp& op : result->script.ops()) {
    if (op.kind == EditOpKind::kDelete) {
      EXPECT_FALSE(m.HasT1(op.node)) << "deleted a matched node";
    }
  }

  // 4. Determined op counts (Theorem C.2).
  size_t unmatched_t1 = 0, unmatched_t2 = 0, inter = 0;
  for (NodeId x : t1.PreOrder()) {
    if (!m.HasT1(x)) ++unmatched_t1;
  }
  for (NodeId y : t2.PreOrder()) {
    if (!m.HasT2(y)) ++unmatched_t2;
  }
  for (auto [x, y] : m.Pairs()) {
    const NodeId px = t1.parent(x), py = t2.parent(y);
    if (px == kInvalidNode || py == kInvalidNode) continue;
    if (m.PartnerOfT1(px) != py) ++inter;
  }
  EXPECT_EQ(result->script.num_inserts(), unmatched_t2);
  EXPECT_EQ(result->script.num_deletes(), unmatched_t1);
  EXPECT_EQ(result->inter_parent_moves, inter);

  // 5. The total matching covers every node of both final trees.
  EXPECT_EQ(result->total_matching.size(), t2.size());

  // 6. Updates only where values differ, and the update count is exactly
  // the number of matched pairs with differing values.
  size_t value_diffs = 0;
  for (auto [x, y] : m.Pairs()) {
    if (t1.value(x) != t2.value(y)) ++value_diffs;
  }
  EXPECT_EQ(result->script.num_updates(), value_diffs);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelinePropertyTest,
    ::testing::Values(std::make_tuple(2, 1, 1ull), std::make_tuple(2, 4, 2ull),
                      std::make_tuple(3, 8, 3ull),
                      std::make_tuple(4, 12, 4ull),
                      std::make_tuple(5, 20, 5ull),
                      std::make_tuple(6, 30, 6ull),
                      std::make_tuple(3, 0, 7ull),
                      std::make_tuple(8, 15, 8ull),
                      std::make_tuple(4, 40, 9ull),
                      std::make_tuple(6, 25, 10ull)));

TEST(PipelineStressTest, ManySmallRandomCases) {
  Vocabulary vocab(150, 1.0);
  for (uint64_t seed = 100; seed < 130; ++seed) {
    Rng rng(seed);
    DocGenParams params;
    params.sections = 2;
    params.min_paragraphs_per_section = 1;
    params.max_paragraphs_per_section = 3;
    params.min_sentences_per_paragraph = 1;
    params.max_sentences_per_paragraph = 3;
    auto labels = std::make_shared<LabelTable>();
    Tree t1 = GenerateDocument(params, vocab, &rng, labels);
    SimulatedVersion v = SimulateNewVersion(
        t1, static_cast<int>(rng.Uniform(6)), {}, vocab, &rng);

    DiffOptions options;
    auto result = DiffTrees(t1, v.new_tree, options);
    ASSERT_TRUE(result.ok()) << "seed " << seed << ": "
                             << result.status().ToString();
    Tree replay = t1.Clone();
    ASSERT_TRUE(result->script.ApplyTo(&replay).ok()) << "seed " << seed;
    EXPECT_TRUE(Tree::Isomorphic(replay, v.new_tree)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace treediff
