// Chaos harness: a DiffService serving concurrent commit and diff traffic
// on top of a fault-injecting filesystem, swept across seeds. Each seed
// gets its own fault plan (transient append/sync faults, mid-run media
// death, a full disk, scheduling jitter); after the run the "machine"
// loses power (DropUnsynced) and the log is recovered in salvage mode.
//
// The invariant under test is the store's whole durability contract at
// once: **every commit the service acknowledged is materializable and
// byte-equivalent after crash recovery**, no matter which faults fired or
// how the threads interleaved. A second drill on some seeds flips a byte
// in the cold log (before the last checkpoint) and checks that salvage
// bounds the damage: versions are either intact or reported lost with
// kDataLoss — never silently wrong.
//
// Seed count: TREEDIFF_CHAOS_SEEDS (default 10; CI runs 64, the scheduled
// job 256). Labeled `concurrency` and `chaos`, so the TSan job runs it.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "service/diff_service.h"
#include "store/log.h"
#include "store/version_store.h"
#include "tree/builder.h"
#include "util/fault_env.h"

namespace treediff {
namespace {

constexpr int kWriterCommits = 24;
constexpr int kReaderThreads = 2;
constexpr int kReaderIterations = 40;

int SeedCount() {
  const char* env = std::getenv("TREEDIFF_CHAOS_SEEDS");
  if (env == nullptr) return 10;
  const int n = std::atoi(env);
  return n > 0 ? n : 10;
}

std::string DocText(int v) {
  std::string s = "(D";
  for (int p = 0; p <= v; ++p) {
    s += " (P (S \"chaos" + std::to_string(p) + " para words here\"))";
  }
  s += ")";
  return s;
}

/// Seed 0 is the fault-free control; every other seed mixes transient
/// faults with (on some seeds) a terminal one. crash_at_byte is kept above
/// the store-creation footprint so every seed at least starts serving.
FaultPlan PlanForSeed(uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  if (seed == 0) return plan;
  plan.transient_append_p = 0.02 * static_cast<double>(seed % 4);
  plan.transient_sync_p = 0.015 * static_cast<double>((seed / 4) % 3);
  plan.op_delay_p = 0.05;
  plan.op_delay_seconds = 0.0002;
  if (seed % 5 == 2) {
    plan.crash_at_byte = 4000 + 700 * (seed % 7);
  }
  if (seed % 7 == 3) {
    plan.disk_capacity_bytes = 8000 + 500 * (seed % 11);
  }
  return plan;
}

StoreOptions ChaosStoreOptions(Env* env) {
  StoreOptions store_options;
  store_options.env = env;
  store_options.checkpoint_interval = 4;
  store_options.sleep = [](double) {};
  return store_options;
}

struct SweepTotals {
  uint64_t acked_verified = 0;
  uint64_t transient_faults = 0;
  uint64_t rotations = 0;
  int seeds_served = 0;
  int corruption_drills = 0;
};

void RunSeed(uint64_t seed, SweepTotals* totals) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  MemEnv mem;
  FaultInjectingEnv env(&mem, PlanForSeed(seed));

  StatusOr<VersionStore> store = Status::Internal("never tried");
  for (int i = 0; i < 64 && !store.ok(); ++i) {
    store = VersionStore::Create("c.log", *ParseSexpr(DocText(0)), {},
                                 ChaosStoreOptions(&env));
  }
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  // Acked versions, shared between the writer (appends) and the readers
  // (sample endpoints for VDIFFs).
  std::mutex acked_mu;
  std::vector<int> acked{0};
  uint64_t rotations_seen = 0;

  {
    DiffServiceOptions options;
    options.num_threads = 3;
    options.sleep = [](double) {};
    options.store_retry_attempts = 4;
    options.breaker_failure_threshold = 3;
    options.breaker_cooldown_seconds = 0.002;
    DiffService service(options);
    ASSERT_TRUE(service.AttachStore("doc", &*store).ok());

    std::thread writer([&] {
      for (int v = 1; v <= kWriterCommits; ++v) {
        StatusOr<int> version = service.CommitVersion("doc", DocText(v));
        if (version.ok()) {
          std::lock_guard<std::mutex> lock(acked_mu);
          acked.push_back(*version);
        }
        // Failures are expected on crashed / full-disk seeds; the writer
        // keeps submitting — the service must stay responsive either way.
      }
    });
    std::vector<std::thread> readers;
    for (int r = 0; r < kReaderThreads; ++r) {
      readers.emplace_back([&, r] {
        std::mt19937 rng(static_cast<uint32_t>(seed * 131 + r));
        for (int i = 0; i < kReaderIterations; ++i) {
          int from, to;
          {
            std::lock_guard<std::mutex> lock(acked_mu);
            from = acked[rng() % acked.size()];
            to = acked[rng() % acked.size()];
          }
          DiffRequest request;
          request.doc_id = "doc";
          request.from_version = from;
          request.to_version = to;
          DiffResponse response = service.SubmitSync(std::move(request));
          // kUnavailable (quarantine), kFailedPrecondition and friends are
          // legitimate on faulty seeds; a served diff must be a real one.
          if (response.status.ok() && from != to) {
            EXPECT_GE(response.operations, 0u);
          }
        }
      });
    }
    writer.join();
    for (std::thread& t : readers) t.join();
    service.Shutdown();
  }
  rotations_seen = store->fault_counters().rotations;
  store = Status::Internal("released");  // Close the writer handle.

  // Power loss: everything that was never fsync'd is gone.
  mem.DropUnsynced();

  // Recover on the bare medium (no more fault injection) in salvage mode.
  StoreOptions reopen_options = ChaosStoreOptions(&mem);
  reopen_options.recovery = RecoveryMode::kSalvage;
  RecoveryReport report;
  auto reopened = VersionStore::Open("c.log", {}, reopen_options, &report);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString() << "\n"
                             << report.ToString();

  // THE invariant: every acked commit survived, exactly.
  std::vector<int> acked_copy;
  {
    std::lock_guard<std::mutex> lock(acked_mu);
    acked_copy = acked;
  }
  for (int v : acked_copy) {
    ASSERT_LT(v, reopened->VersionCount())
        << "acked version " << v << " missing after recovery: "
        << report.ToString();
    auto tree = reopened->Materialize(v);
    ASSERT_TRUE(tree.ok()) << "acked version " << v << ": "
                           << tree.status().ToString() << "\n"
                           << report.ToString();
    auto expected = ParseSexpr(DocText(v), reopened->label_table());
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(Tree::Isomorphic(*tree, *expected))
        << "acked version " << v << " corrupted by recovery";
    ++totals->acked_verified;
  }

  totals->transient_faults += env.transient_faults();
  totals->rotations += rotations_seen;
  ++totals->seeds_served;

  // Corruption drill on a third of the seeds: flip a payload byte in a
  // delta that precedes the last checkpoint, then salvage again. Damage
  // must be bounded (suffix re-anchored on the checkpoint) and honest
  // (holes fail with kDataLoss/kUnavailable; surviving versions exact).
  if (seed % 3 != 0 || acked_copy.size() < 6) return;
  reopened = Status::Internal("released");  // Close before corrupting.
  auto file = mem.NewRandomAccessFile("c.log");
  ASSERT_TRUE(file.ok());
  auto scan = ScanLog(file->get());
  ASSERT_TRUE(scan.ok());
  int last_checkpoint = -1;
  int victim_delta = -1;
  for (size_t i = 0; i < scan->records.size(); ++i) {
    if (scan->records[i].type == LogRecordType::kCheckpoint) {
      last_checkpoint = static_cast<int>(i);
    }
  }
  for (int i = 1; i < last_checkpoint; ++i) {
    if (scan->records[static_cast<size_t>(i)].type == LogRecordType::kDelta) {
      victim_delta = i;  // Keep the last qualifying delta.
    }
  }
  if (last_checkpoint < 0 || victim_delta < 0) return;
  const auto& victim = scan->records[static_cast<size_t>(victim_delta)];
  ASSERT_TRUE(mem.CorruptByte("c.log",
                              victim.offset + kLogRecordHeaderSize + 1, 0x40)
                  .ok());

  RecoveryReport drill;
  auto salvaged = VersionStore::Open("c.log", {}, reopen_options, &drill);
  ASSERT_TRUE(salvaged.ok()) << salvaged.status().ToString();
  EXPECT_TRUE(drill.rotated) << drill.ToString();
  EXPECT_GE(drill.checksum_failures, 1u) << drill.ToString();
  int intact = 0;
  for (int v : acked_copy) {
    ASSERT_LT(v, salvaged->VersionCount()) << drill.ToString();
    auto tree = salvaged->Materialize(v);
    if (!tree.ok()) {
      EXPECT_TRUE(tree.status().code() == Code::kDataLoss ||
                  tree.status().code() == Code::kUnavailable)
          << tree.status().ToString();
      continue;
    }
    auto expected = ParseSexpr(DocText(v), salvaged->label_table());
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(Tree::Isomorphic(*tree, *expected))
        << "version " << v << " silently corrupted by salvage";
    ++intact;
  }
  // The checkpoint re-anchored the suffix: the newest acked version (which
  // is at or after the last checkpoint) must have survived the drill.
  auto newest = salvaged->Materialize(acked_copy.back());
  EXPECT_TRUE(newest.ok()) << "newest acked version lost: "
                           << newest.status().ToString() << "\n"
                           << drill.ToString();
  EXPECT_GT(intact, 0);
  ++totals->corruption_drills;
}

TEST(ChaosServiceTest, AckedCommitsSurviveEverySeed) {
  const int seeds = SeedCount();
  SweepTotals totals;
  for (int seed = 0; seed < seeds; ++seed) {
    RunSeed(static_cast<uint64_t>(seed), &totals);
    if (::testing::Test::HasFatalFailure()) return;
  }
  // The sweep must have actually exercised the machinery, not just passed
  // vacuously.
  EXPECT_EQ(totals.seeds_served, seeds);
  EXPECT_GT(totals.acked_verified, 0u);
  if (seeds >= 4) {
    EXPECT_GT(totals.transient_faults, 0u)
        << "no transient fault ever fired; plan probabilities too low?";
    EXPECT_GT(totals.corruption_drills, 0);
  }
}

}  // namespace
}  // namespace treediff
