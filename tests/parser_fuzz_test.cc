// Robustness ("fuzz-lite") tests: the parsers must never crash, hang, or
// produce invalid trees on adversarial input — random bytes, truncated
// markup, pathological nesting. Deterministic seeds keep failures
// reproducible.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/script_io.h"
#include "doc/html_parser.h"
#include "doc/latex_parser.h"
#include "doc/markdown_parser.h"
#include "doc/sentence.h"
#include "doc/xml.h"
#include "tree/builder.h"
#include "util/random.h"

namespace treediff {
namespace {

std::string RandomBytes(Rng* rng, size_t len, bool printable) {
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    if (printable) {
      out.push_back(static_cast<char>(32 + rng->Uniform(95)));
    } else {
      out.push_back(static_cast<char>(rng->Uniform(256)));
    }
  }
  return out;
}

std::string RandomMarkupSoup(Rng* rng, size_t tokens) {
  static const char* kPieces[] = {
      "\\section{", "}", "\\item ", "\\begin{itemize}", "\\end{itemize}",
      "\\begin{enumerate}", "\\end{document}", "%comment\n", "\n\n",
      "word ", "Sentence one. ", "<p>", "</p>", "<ul>", "<li>", "</ul>",
      "<h1>", "</h1>", "&amp;", "&#300;", "<!-- x -->", "<script>",
      "</script>", "\"", "\\", "{", "}", "<", ">", "e.g. ", "3.14 "};
  std::string out;
  for (size_t i = 0; i < tokens; ++i) {
    out += kPieces[rng->Uniform(std::size(kPieces))];
  }
  return out;
}

TEST(ParserFuzzTest, LatexSurvivesRandomPrintable) {
  Rng rng(101);
  for (int iter = 0; iter < 60; ++iter) {
    std::string input = RandomBytes(&rng, 64 + rng.Uniform(512), true);
    auto tree = ParseLatex(input);
    if (tree.ok()) {
      EXPECT_TRUE(tree->Validate().ok());
    }
  }
}

TEST(ParserFuzzTest, LatexSurvivesRandomBinary) {
  Rng rng(102);
  for (int iter = 0; iter < 60; ++iter) {
    std::string input = RandomBytes(&rng, 64 + rng.Uniform(512), false);
    auto tree = ParseLatex(input);
    if (tree.ok()) {
      EXPECT_TRUE(tree->Validate().ok());
    }
  }
}

TEST(ParserFuzzTest, LatexSurvivesMarkupSoup) {
  Rng rng(103);
  for (int iter = 0; iter < 80; ++iter) {
    std::string input = RandomMarkupSoup(&rng, 8 + rng.Uniform(60));
    auto tree = ParseLatex(input);
    if (tree.ok()) {
      EXPECT_TRUE(tree->Validate().ok());
    }
  }
}

TEST(ParserFuzzTest, HtmlSurvivesRandomAndSoup) {
  Rng rng(104);
  for (int iter = 0; iter < 60; ++iter) {
    auto t1 = ParseHtml(RandomBytes(&rng, 64 + rng.Uniform(512), false));
    if (t1.ok()) {
      EXPECT_TRUE(t1->Validate().ok());
    }
    auto t2 = ParseHtml(RandomMarkupSoup(&rng, 8 + rng.Uniform(60)));
    if (t2.ok()) {
      EXPECT_TRUE(t2->Validate().ok());
    }
  }
}

TEST(ParserFuzzTest, MarkdownSurvivesRandomAndSoup) {
  Rng rng(107);
  for (int iter = 0; iter < 60; ++iter) {
    auto t1 = ParseMarkdown(RandomBytes(&rng, 64 + rng.Uniform(512), false));
    if (t1.ok()) {
      EXPECT_TRUE(t1->Validate().ok());
    }
    auto t2 = ParseMarkdown(RandomMarkupSoup(&rng, 8 + rng.Uniform(60)));
    if (t2.ok()) {
      EXPECT_TRUE(t2->Validate().ok());
    }
  }
  // Markdown-specific pathologies: runaway emphasis, heading walls,
  // unterminated fences.
  auto hashes = ParseMarkdown(std::string(4000, '#'));
  if (hashes.ok()) {
    EXPECT_TRUE(hashes->Validate().ok());
  }
  auto stars = ParseMarkdown(std::string(4000, '*') + " text");
  if (stars.ok()) {
    EXPECT_TRUE(stars->Validate().ok());
  }
  auto fence = ParseMarkdown("```\ncode never closes\n# Not a heading\n");
  if (fence.ok()) {
    EXPECT_TRUE(fence->Validate().ok());
  }
}

TEST(ParserFuzzTest, XmlSurvivesRandomAndSoup) {
  Rng rng(108);
  for (int iter = 0; iter < 60; ++iter) {
    auto t1 = ParseXml(RandomBytes(&rng, 64 + rng.Uniform(512), false));
    if (t1.ok()) {
      EXPECT_TRUE(t1->Validate().ok());
    }
    auto t2 = ParseXml(RandomMarkupSoup(&rng, 8 + rng.Uniform(60)));
    if (t2.ok()) {
      EXPECT_TRUE(t2->Validate().ok());
    }
  }
  // Mismatched and never-closed tags, attribute garbage, CDATA edge.
  for (const char* evil :
       {"<a><b></a></b>", "<a x=\"1", "<a ", "<![CDATA[", "<?xml",
        "<a></a><b></b>", "<a>&#xZZ;</a>", "</close-only>"}) {
    auto tree = ParseXml(evil);
    if (tree.ok()) {
      EXPECT_TRUE(tree->Validate().ok());
    }
  }
  auto deep = ParseXml([] {
    std::string s;
    for (int i = 0; i < 3000; ++i) s += "<n>";
    return s;
  }());
  if (deep.ok()) {
    EXPECT_TRUE(deep->Validate().ok());
  }
}

TEST(ParserFuzzTest, SexprSurvivesRandomInput) {
  Rng rng(105);
  for (int iter = 0; iter < 100; ++iter) {
    std::string input = RandomBytes(&rng, 1 + rng.Uniform(128), true);
    auto tree = ParseSexpr(input);
    if (tree.ok()) {
      EXPECT_TRUE(tree->Validate().ok());
    }
  }
}

TEST(ParserFuzzTest, SentenceSplitterSurvivesAnything) {
  Rng rng(106);
  for (int iter = 0; iter < 100; ++iter) {
    auto sentences = SplitSentences(RandomBytes(&rng, rng.Uniform(256),
                                                false));
    for (const auto& s : sentences) EXPECT_FALSE(s.empty());
  }
}

TEST(ParserFuzzTest, EditScriptParserSurvivesRandomBytes) {
  // The script parser sits on the recovery path (deltas come off disk), so
  // arbitrary bytes must produce a Status, never a crash or a hang.
  Rng rng(109);
  for (int iter = 0; iter < 150; ++iter) {
    LabelTable labels;
    bool printable = iter % 2 == 0;
    auto script = ParseEditScript(
        RandomBytes(&rng, 1 + rng.Uniform(256), printable), &labels);
    if (!script.ok()) {
      EXPECT_EQ(script.status().code(), Code::kParseError);
    }
  }
  // Operation-shaped soup: right keywords, wrong everything else.
  static const char* kPieces[] = {
      "INS((", "DEL(",  "UPD(",  "MOV(",  "1",    "-1",  "999999999999999999",
      ",",     ")",     "(",     "\"",    "\\\"", "x",   "label",
      " ",     "\n",    "#c\n",  "),",    "\"v\"", "..",  "INS((1, a, \"b\"), 0, 1)\n"};
  for (int iter = 0; iter < 150; ++iter) {
    std::string input;
    size_t tokens = 2 + rng.Uniform(40);
    for (size_t i = 0; i < tokens; ++i) {
      input += kPieces[rng.Uniform(std::size(kPieces))];
    }
    LabelTable labels;
    auto script = ParseEditScript(input, &labels);
    if (!script.ok()) {
      EXPECT_EQ(script.status().code(), Code::kParseError);
    }
  }
}

TEST(ParserFuzzTest, EditScriptParserSurvivesMutatedValidScripts) {
  const std::string valid =
      "INS((7, section, \"intro\"), 0, 1)\n"
      "UPD(3, \"new \\\"quoted\\\" text\")\n"
      "MOV(5, 2, 4)\n"
      "DEL(6)\n"
      "# trailing comment\n";
  {
    LabelTable labels;
    ASSERT_TRUE(ParseEditScript(valid, &labels).ok());
  }
  Rng rng(110);
  for (int iter = 0; iter < 400; ++iter) {
    std::string mutated = valid;
    size_t mutations = 1 + rng.Uniform(4);
    for (size_t m = 0; m < mutations; ++m) {
      size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:  // Flip a byte.
          mutated[pos] = static_cast<char>(mutated[pos] ^
                                           (1u << rng.Uniform(8)));
          break;
        case 1:  // Delete a byte.
          mutated.erase(pos, 1);
          break;
        default:  // Duplicate a byte.
          mutated.insert(pos, 1, mutated[pos]);
          break;
      }
      if (mutated.empty()) break;
    }
    LabelTable labels;
    auto script = ParseEditScript(mutated, &labels);
    // Most mutations must be rejected; the property under test is that the
    // answer is always a clean Status (ok for benign mutations, kParseError
    // otherwise), never a crash, hang, or integer overflow.
    if (!script.ok()) {
      EXPECT_EQ(script.status().code(), Code::kParseError);
      EXPECT_FALSE(script.status().message().empty());
    }
  }
}

TEST(ParserFuzzTest, PathologicalInputs) {
  // Deep brace nesting, unterminated constructs, huge runs. Each call must
  // return (ok or error) without crashing or hanging.
  auto braces = ParseLatex(std::string(10000, '{'));
  if (braces.ok()) {
    EXPECT_TRUE(braces->Validate().ok());
  }
  auto deep = ParseLatex("\\section{" + std::string(5000, '{') +
                         std::string(5000, '}') + "}");
  if (deep.ok()) {
    EXPECT_TRUE(deep->Validate().ok());
  }

  auto many_items = ParseLatex([] {
    std::string s = "\\begin{itemize}";
    for (int i = 0; i < 2000; ++i) s += "\\item x" + std::to_string(i) + ". ";
    return s;  // Missing \end{itemize}: parser must tolerate.
  }());
  ASSERT_TRUE(many_items.ok());
  EXPECT_TRUE(many_items->Validate().ok());

  auto tags = ParseHtml(std::string(5000, '<'));
  if (tags.ok()) {
    EXPECT_TRUE(tags->Validate().ok());
  }

  auto empty_envs = ParseLatex(
      "\\begin{itemize}\\end{itemize}\\begin{enumerate}\\end{enumerate}");
  ASSERT_TRUE(empty_envs.ok());
  EXPECT_TRUE(empty_envs->Validate().ok());
}

}  // namespace
}  // namespace treediff
