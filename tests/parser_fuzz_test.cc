// Robustness ("fuzz-lite") tests: the parsers must never crash, hang, or
// produce invalid trees on adversarial input — random bytes, truncated
// markup, pathological nesting. Deterministic seeds keep failures
// reproducible.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "doc/html_parser.h"
#include "doc/latex_parser.h"
#include "doc/sentence.h"
#include "tree/builder.h"
#include "util/random.h"

namespace treediff {
namespace {

std::string RandomBytes(Rng* rng, size_t len, bool printable) {
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    if (printable) {
      out.push_back(static_cast<char>(32 + rng->Uniform(95)));
    } else {
      out.push_back(static_cast<char>(rng->Uniform(256)));
    }
  }
  return out;
}

std::string RandomMarkupSoup(Rng* rng, size_t tokens) {
  static const char* kPieces[] = {
      "\\section{", "}", "\\item ", "\\begin{itemize}", "\\end{itemize}",
      "\\begin{enumerate}", "\\end{document}", "%comment\n", "\n\n",
      "word ", "Sentence one. ", "<p>", "</p>", "<ul>", "<li>", "</ul>",
      "<h1>", "</h1>", "&amp;", "&#300;", "<!-- x -->", "<script>",
      "</script>", "\"", "\\", "{", "}", "<", ">", "e.g. ", "3.14 "};
  std::string out;
  for (size_t i = 0; i < tokens; ++i) {
    out += kPieces[rng->Uniform(std::size(kPieces))];
  }
  return out;
}

TEST(ParserFuzzTest, LatexSurvivesRandomPrintable) {
  Rng rng(101);
  for (int iter = 0; iter < 60; ++iter) {
    std::string input = RandomBytes(&rng, 64 + rng.Uniform(512), true);
    auto tree = ParseLatex(input);
    if (tree.ok()) {
      EXPECT_TRUE(tree->Validate().ok());
    }
  }
}

TEST(ParserFuzzTest, LatexSurvivesRandomBinary) {
  Rng rng(102);
  for (int iter = 0; iter < 60; ++iter) {
    std::string input = RandomBytes(&rng, 64 + rng.Uniform(512), false);
    auto tree = ParseLatex(input);
    if (tree.ok()) {
      EXPECT_TRUE(tree->Validate().ok());
    }
  }
}

TEST(ParserFuzzTest, LatexSurvivesMarkupSoup) {
  Rng rng(103);
  for (int iter = 0; iter < 80; ++iter) {
    std::string input = RandomMarkupSoup(&rng, 8 + rng.Uniform(60));
    auto tree = ParseLatex(input);
    if (tree.ok()) {
      EXPECT_TRUE(tree->Validate().ok());
    }
  }
}

TEST(ParserFuzzTest, HtmlSurvivesRandomAndSoup) {
  Rng rng(104);
  for (int iter = 0; iter < 60; ++iter) {
    auto t1 = ParseHtml(RandomBytes(&rng, 64 + rng.Uniform(512), false));
    if (t1.ok()) {
      EXPECT_TRUE(t1->Validate().ok());
    }
    auto t2 = ParseHtml(RandomMarkupSoup(&rng, 8 + rng.Uniform(60)));
    if (t2.ok()) {
      EXPECT_TRUE(t2->Validate().ok());
    }
  }
}

TEST(ParserFuzzTest, SexprSurvivesRandomInput) {
  Rng rng(105);
  for (int iter = 0; iter < 100; ++iter) {
    std::string input = RandomBytes(&rng, 1 + rng.Uniform(128), true);
    auto tree = ParseSexpr(input);
    if (tree.ok()) {
      EXPECT_TRUE(tree->Validate().ok());
    }
  }
}

TEST(ParserFuzzTest, SentenceSplitterSurvivesAnything) {
  Rng rng(106);
  for (int iter = 0; iter < 100; ++iter) {
    auto sentences = SplitSentences(RandomBytes(&rng, rng.Uniform(256),
                                                false));
    for (const auto& s : sentences) EXPECT_FALSE(s.empty());
  }
}

TEST(ParserFuzzTest, PathologicalInputs) {
  // Deep brace nesting, unterminated constructs, huge runs. Each call must
  // return (ok or error) without crashing or hanging.
  auto braces = ParseLatex(std::string(10000, '{'));
  if (braces.ok()) {
    EXPECT_TRUE(braces->Validate().ok());
  }
  auto deep = ParseLatex("\\section{" + std::string(5000, '{') +
                         std::string(5000, '}') + "}");
  if (deep.ok()) {
    EXPECT_TRUE(deep->Validate().ok());
  }

  auto many_items = ParseLatex([] {
    std::string s = "\\begin{itemize}";
    for (int i = 0; i < 2000; ++i) s += "\\item x" + std::to_string(i) + ". ";
    return s;  // Missing \end{itemize}: parser must tolerate.
  }());
  ASSERT_TRUE(many_items.ok());
  EXPECT_TRUE(many_items->Validate().ok());

  auto tags = ParseHtml(std::string(5000, '<'));
  if (tags.ok()) {
    EXPECT_TRUE(tags->Validate().ok());
  }

  auto empty_envs = ParseLatex(
      "\\begin{itemize}\\end{itemize}\\begin{enumerate}\\end{enumerate}");
  ASSERT_TRUE(empty_envs.ok());
  EXPECT_TRUE(empty_envs->Validate().ok());
}

}  // namespace
}  // namespace treediff
