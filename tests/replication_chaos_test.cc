// Replication chaos harness: concurrent commit/read traffic against a
// three-replica group whose primary is killed and failed over mid-commit,
// swept across seeds on flaky media. The invariants under test are the
// replication contract at full strength:
//
//  * **No quorum-acked commit is ever lost.** Every commit the group
//    acknowledged under AckMode::kQuorum materializes to exactly the
//    committed document after any number of fenced failovers. (A commit
//    that timed out its quorum wait made no such promise — a failover may
//    lose it, and its version slot may be reused under the new epoch.)
//  * **Stale-epoch writes never land.** A writer whose lease predates a
//    promotion gets kFailedPrecondition("fenced"), and the rejected commit
//    leaves no trace in any log.
//  * **Surviving replicas converge to byte-identical logs.** After the
//    storm, followers whose machines still run end up byte-for-byte equal
//    to the new primary's durable prefix.
//
// Seed count: TREEDIFF_CHAOS_SEEDS (default 8; the CI store-replication
// job runs 64, the weekly run 256). Labeled `concurrency` + `chaos`, so
// the TSan job sweeps it too.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "store/replication.h"
#include "store/version_store.h"
#include "tree/builder.h"
#include "util/fault_env.h"
#include "util/metrics.h"

namespace treediff {
namespace {

constexpr int kReplicas = 3;
constexpr int kWriterCommits = 20;
constexpr int kReaderThreads = 2;
constexpr int kReaderIterations = 60;

int SeedCount() {
  const char* env = std::getenv("TREEDIFF_CHAOS_SEEDS");
  if (env == nullptr) return 8;
  const int n = std::atoi(env);
  return n > 0 ? n : 8;
}

std::string DocText(int n) {
  std::string s = "(D";
  for (int p = 0; p <= n; ++p) {
    s += " (P (S \"storm" + std::to_string(p) + " para words here\"))";
  }
  s += ")";
  return s;
}

/// Follower media flake in seed-dependent ways; the primary's machine is
/// healthy until the promoter "kills" it (deposes it mid-traffic). Seed 0
/// is the fault-free control.
FaultPlan FollowerPlan(uint64_t seed, int replica) {
  FaultPlan plan;
  plan.seed = seed * 16 + static_cast<uint64_t>(replica);
  if (seed == 0) return plan;
  plan.torn_append_p = 0.03 * static_cast<double>(seed % 3);
  plan.transient_append_p = 0.02 * static_cast<double>((seed / 3) % 3);
  plan.transient_truncate_p = 0.02 * static_cast<double>(seed % 2);
  plan.op_delay_p = 0.05;
  plan.op_delay_seconds = 0.0002;
  return plan;
}

struct SweepTotals {
  uint64_t acked_verified = 0;
  uint64_t fenced_rejections = 0;
  uint64_t failovers = 0;
  uint64_t quorum_timeouts = 0;
  int seeds = 0;
};

void RunSeed(uint64_t seed, SweepTotals* totals) {
  SCOPED_TRACE("seed " + std::to_string(seed));

  MemEnv mems[kReplicas];
  std::vector<std::unique_ptr<FaultInjectingEnv>> envs;
  std::vector<ReplicaConfig> configs;
  for (int i = 0; i < kReplicas; ++i) {
    envs.push_back(std::make_unique<FaultInjectingEnv>(
        &mems[i], FollowerPlan(seed, i)));
    // Bootstrap quietly; the storm arms once the group is standing.
    envs.back()->DisableTransientFaults();
    configs.push_back({envs.back().get(),
                       "chaos" + std::to_string(i) + ".log"});
  }

  MetricsRegistry metrics;
  ReplicationOptions options;
  options.ack_mode = AckMode::kQuorum;
  options.ack_timeout_seconds = 0.25;
  options.poll_interval_seconds = 0.001;
  options.background_ship = true;
  options.metrics = &metrics;
  options.store_options.sleep = [](double) {};
  options.store_options.checkpoint_interval = 5;

  auto built = ReplicatedVersionStore::Create(configs, *ParseSexpr(DocText(0)),
                                              {}, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ReplicatedVersionStore* group = built->get();
  for (auto& env : envs) env->EnableTransientFaults();

  // acked[v] = the document the group quorum-acked as version v. Only the
  // writer thread mutates it; reads happen after joins.
  std::map<int, std::string> acked;
  acked[0] = DocText(0);
  std::atomic<uint64_t> fenced{0};
  std::atomic<bool> writer_done{false};

  // The writer holds its lease across commits — exactly the deposed-primary
  // pattern: a promotion mid-stream makes the next CommitWithLease bounce
  // off the fence, and the writer re-leases under the new epoch.
  std::thread writer([&] {
    CommitLease lease = group->lease();
    for (int n = 1; n <= kWriterCommits; ++n) {
      const std::string doc = DocText(n);
      auto tree = ParseSexpr(doc, group->label_table());
      ASSERT_TRUE(tree.ok());
      for (int attempt = 0; attempt < 64; ++attempt) {
        auto committed = group->CommitWithLease(*tree, lease);
        if (committed.ok()) {
          acked[*committed] = doc;  // Quorum-acked: must survive anything.
          break;
        }
        const Status& status = committed.status();
        if (status.code() == Code::kFailedPrecondition &&
            status.ToString().find("fenced") != std::string::npos) {
          fenced.fetch_add(1, std::memory_order_relaxed);
          lease = group->lease();  // Learn the new epoch; retry this doc.
          continue;
        }
        if (status.code() == Code::kUnavailable) {
          // Quorum timeout: durable on the primary but NOT acked — the
          // contract allows a failover to drop it, so it is not recorded.
          // The version slot may be reused; move on to the next doc.
          break;
        }
        // Poisoned primary mid-kill: wait for the promoter to fail over.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        lease = group->lease();
      }
    }
    writer_done.store(true, std::memory_order_release);
  });

  // Readers hammer Materialize across the version range while the topology
  // changes under them (errors are fine; crashes and races are not).
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaderThreads; ++r) {
    readers.emplace_back([&, r] {
      uint64_t x = seed * 977 + static_cast<uint64_t>(r) + 1;
      for (int i = 0; i < kReaderIterations; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        group->Materialize(static_cast<int>(x % (kWriterCommits + 1)))
            .status()
            .IgnoreError();
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  // The promoter kills the primary mid-traffic: an explicit fenced
  // failover (most-caught-up follower wins, epoch bumps), then the deposed
  // machine rejoins as a follower. Twice, on seeds that promote.
  const int promotions = seed % 3 == 0 ? 1 : 2;
  std::thread promoter([&] {
    for (int k = 0; k < promotions; ++k) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(3 + 5 * k + static_cast<int>(seed % 7)));
      if (writer_done.load(std::memory_order_acquire)) break;
      const int old_primary = group->primary_index();
      auto promoted = group->Promote();
      if (promoted.ok()) {
        group->Rejoin(old_primary).IgnoreError();
      }
    }
  });

  writer.join();
  promoter.join();
  for (std::thread& t : readers) t.join();

  // The storm is over: stop injecting, converge, and audit.
  for (auto& env : envs) env->DisableTransientFaults();
  for (int i = 0; i < 500; ++i) {
    group->PumpFollowers().IgnoreError();
    bool all = true;
    for (const ReplicaStatus& r : group->Replicas()) {
      if (r.role == ReplicaRole::kFollower && !r.caught_up) all = false;
    }
    if (all) break;
  }

  // Invariant 1: every quorum-acked commit materializes to what was acked,
  // no matter how many failovers happened in between.
  for (const auto& [version, doc] : acked) {
    auto tree = group->Materialize(version);
    ASSERT_TRUE(tree.ok()) << "acked version " << version << " lost: "
                           << tree.status().ToString();
    auto expected = ParseSexpr(doc, group->label_table());
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(Tree::Isomorphic(*tree, *expected))
        << "acked version " << version << " diverged";
    ++totals->acked_verified;
  }

  // Invariant 2: surviving caught-up replicas hold byte-identical logs —
  // each follower's file equals the primary's durable prefix exactly.
  const int primary_index = group->primary_index();
  auto primary_bytes =
      mems[primary_index].FileBytes(configs[static_cast<size_t>(primary_index)]
                                        .path);
  ASSERT_TRUE(primary_bytes.ok());
  for (const ReplicaStatus& r : group->Replicas()) {
    if (r.role != ReplicaRole::kFollower || !r.caught_up || r.cursor == 0) {
      continue;
    }
    auto follower_bytes =
        mems[r.index].FileBytes(configs[static_cast<size_t>(r.index)].path);
    ASSERT_TRUE(follower_bytes.ok());
    EXPECT_EQ(*follower_bytes, primary_bytes->substr(0, r.cursor))
        << "replica " << r.index << " diverged from the primary's log";
    EXPECT_EQ(follower_bytes->size(), r.cursor);
  }

  const ReplicationCounters counters = group->counters();
  totals->fenced_rejections += fenced.load(std::memory_order_relaxed);
  totals->failovers += counters.failovers;
  totals->quorum_timeouts += counters.quorum_timeouts;
  ++totals->seeds;

  // A promotion observed by the writer must have fenced at least its next
  // stale-lease commit — unless the writer finished before any promotion.
  if (counters.failovers > 0) {
    EXPECT_EQ(metrics.counter("replication_failovers_total")->Value(),
              counters.failovers);
  }
}

TEST(ReplicationChaosTest, KillAndPromoteMidCommitLosesNoAckedWrite) {
  SweepTotals totals;
  const int seeds = SeedCount();
  for (int seed = 0; seed < seeds; ++seed) {
    RunSeed(static_cast<uint64_t>(seed), &totals);
    if (::testing::Test::HasFatalFailure()) break;
  }
  EXPECT_EQ(totals.seeds, seeds);
  EXPECT_GT(totals.acked_verified, 0u);
  // Across the sweep, failovers actually happened and the fence actually
  // fired — the invariants above were tested against real storms, not a
  // quiet run.
  EXPECT_GT(totals.failovers, 0u);
  EXPECT_GT(totals.fenced_rejections, 0u);
  ::testing::Test::RecordProperty(
      "acked_verified", static_cast<int>(totals.acked_verified));
  ::testing::Test::RecordProperty(
      "fenced_rejections", static_cast<int>(totals.fenced_rejections));
  ::testing::Test::RecordProperty("failovers",
                                  static_cast<int>(totals.failovers));
}

}  // namespace
}  // namespace treediff
