#include "zs/zhang_shasha.h"

#include <gtest/gtest.h>

#include <memory>

#include "gen/doc_gen.h"
#include "gen/edit_sim.h"
#include "tree/builder.h"
#include "util/random.h"

namespace treediff {
namespace {

struct Fixture {
  std::shared_ptr<LabelTable> labels = std::make_shared<LabelTable>();

  Tree Parse(const std::string& s) { return *ParseSexpr(s, labels); }
};

TEST(ZhangShashaTest, IdenticalTreesDistanceZero) {
  Fixture f;
  Tree t1 = f.Parse("(D (P (S \"a\") (S \"b\")) (P (S \"c\")))");
  Tree t2 = f.Parse("(D (P (S \"a\") (S \"b\")) (P (S \"c\")))");
  EXPECT_DOUBLE_EQ(ZhangShashaDistance(t1, t2), 0.0);
  ZsResult r = ZhangShasha(t1, t2);
  EXPECT_EQ(r.mapping.size(), 6u);
}

TEST(ZhangShashaTest, SingleRelabel) {
  Fixture f;
  Tree t1 = f.Parse("(D (S \"old\"))");
  Tree t2 = f.Parse("(D (S \"new\"))");
  EXPECT_DOUBLE_EQ(ZhangShashaDistance(t1, t2), 1.0);  // One update.
}

TEST(ZhangShashaTest, SingleInsertAndDelete) {
  Fixture f;
  Tree t1 = f.Parse("(D (S \"a\"))");
  Tree t2 = f.Parse("(D (S \"a\") (S \"b\"))");
  EXPECT_DOUBLE_EQ(ZhangShashaDistance(t1, t2), 1.0);
  EXPECT_DOUBLE_EQ(ZhangShashaDistance(t2, t1), 1.0);  // Symmetric costs.
}

TEST(ZhangShashaTest, DeletePromotesChildren) {
  // ZS's delete makes the children of the deleted node children of its
  // parent (the Section 2 contrast with our leaf-only delete): collapsing
  // an interior node costs exactly 1.
  Fixture f;
  Tree t1 = f.Parse("(D (P (S \"a\") (S \"b\")))");
  Tree t2 = f.Parse("(D (S \"a\") (S \"b\"))");
  EXPECT_DOUBLE_EQ(ZhangShashaDistance(t1, t2), 1.0);
}

TEST(ZhangShashaTest, MoveCostsDeletePlusInsert) {
  // ZS has no move: relocating a leaf across parents costs 2 (del + ins)
  // where our model pays 1 (the Section 2 motivation for MOV).
  Fixture f;
  Tree t1 = f.Parse("(D (P (S \"x\") (S \"y\")) (P (S \"z\")))");
  Tree t2 = f.Parse("(D (P (S \"y\")) (P (S \"z\") (S \"x\")))");
  EXPECT_DOUBLE_EQ(ZhangShashaDistance(t1, t2), 2.0);
}

TEST(ZhangShashaTest, MappingIsValidAndOrderPreserving) {
  Fixture f;
  Tree t1 = f.Parse("(D (P (S \"a\") (S \"b\")) (P (S \"c\") (S \"d\")))");
  Tree t2 = f.Parse("(D (P (S \"a\") (S \"x\")) (P (S \"c\")))");
  ZsResult r = ZhangShasha(t1, t2);
  // 1:1 and ancestor-order preserving.
  std::vector<int> seen1(t1.id_bound(), 0), seen2(t2.id_bound(), 0);
  Tree::EulerIntervals e1 = t1.ComputeEuler();
  Tree::EulerIntervals e2 = t2.ComputeEuler();
  for (auto [x, y] : r.mapping) {
    EXPECT_EQ(++seen1[static_cast<size_t>(x)], 1);
    EXPECT_EQ(++seen2[static_cast<size_t>(y)], 1);
  }
  for (auto [x1, y1] : r.mapping) {
    for (auto [x2, y2] : r.mapping) {
      // Ancestry preserved in both directions.
      EXPECT_EQ(e1.Contains(x1, x2), e2.Contains(y1, y2));
    }
  }
}

TEST(ZhangShashaTest, MappingCostEqualsDistance) {
  Fixture f;
  Tree t1 = f.Parse("(D (P (S \"a\") (S \"b\")) (P (S \"c\") (S \"d\")))");
  Tree t2 = f.Parse("(D (P (S \"a\") (S \"q\")) (S \"c\"))");
  ZsOptions opts;
  ZsResult r = ZhangShasha(t1, t2, opts);
  double cost = 0.0;
  std::vector<int> mapped1(t1.id_bound(), 0), mapped2(t2.id_bound(), 0);
  for (auto [x, y] : r.mapping) {
    mapped1[static_cast<size_t>(x)] = 1;
    mapped2[static_cast<size_t>(y)] = 1;
    if (t1.label(x) != t2.label(y)) {
      cost += opts.relabel_cost;
    } else if (t1.value(x) != t2.value(y)) {
      cost += opts.update_cost;
    }
  }
  for (NodeId x : t1.PreOrder()) {
    if (!mapped1[static_cast<size_t>(x)]) cost += opts.delete_cost;
  }
  for (NodeId y : t2.PreOrder()) {
    if (!mapped2[static_cast<size_t>(y)]) cost += opts.insert_cost;
  }
  EXPECT_DOUBLE_EQ(cost, r.distance);
}

TEST(ZhangShashaTest, CustomCosts) {
  Fixture f;
  Tree t1 = f.Parse("(D (S \"a\"))");
  Tree t2 = f.Parse("(D (S \"a\") (S \"b\"))");
  ZsOptions opts;
  opts.insert_cost = 3.0;
  EXPECT_DOUBLE_EQ(ZhangShashaDistance(t1, t2, opts), 3.0);
}

TEST(ZhangShashaTest, CustomUpdateCost) {
  Fixture f;
  Tree t1 = f.Parse("(D (S \"old\"))");
  Tree t2 = f.Parse("(D (S \"new\"))");
  ZsOptions opts;
  opts.update_cost = 0.25;
  EXPECT_DOUBLE_EQ(ZhangShashaDistance(t1, t2, opts), 0.25);
  // When updates get pricier than delete+insert, ZS switches strategy.
  opts.update_cost = 5.0;
  EXPECT_DOUBLE_EQ(ZhangShashaDistance(t1, t2, opts), 2.0);
}

TEST(ZhangShashaTest, ComparatorPricedRelabel) {
  Fixture f;
  Tree t1 = f.Parse("(D (S \"one two three four\"))");
  Tree t2 = f.Parse("(D (S \"one two three zzz\"))");
  ZsOptions opts;
  WordLcsComparator cmp;
  opts.comparator = &cmp;
  EXPECT_DOUBLE_EQ(ZhangShashaDistance(t1, t2, opts), 0.5);
}

TEST(ZhangShashaTest, AgreesWithBruteForceOnHandCases) {
  Fixture f;
  const char* cases[][2] = {
      {"(A)", "(A)"},
      {"(A)", "(B)"},
      {"(A (B) (C))", "(A (C) (B))"},
      {"(A (B (C)))", "(A (C (B)))"},
      {"(A (B) (C) (D))", "(A (B (C (D))))"},
      {"(A (B \"1\") (C \"2\"))", "(A (B \"1\") (C \"3\") (D \"4\"))"},
  };
  for (const auto& c : cases) {
    Tree t1 = f.Parse(c[0]);
    Tree t2 = f.Parse(c[1]);
    EXPECT_DOUBLE_EQ(ZhangShashaDistance(t1, t2),
                     BruteForceEditDistance(t1, t2))
        << c[0] << " vs " << c[1];
  }
}

class ZsRandomAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ZsRandomAgreementTest, MatchesBruteForceOnRandomTinyTrees) {
  Rng rng(GetParam());
  auto labels = std::make_shared<LabelTable>();
  auto random_tree = [&](int max_nodes) {
    Tree t(labels);
    const char* names[] = {"A", "B", "C"};
    NodeId root = t.AddRoot(names[rng.Uniform(3)]);
    std::vector<NodeId> nodes = {root};
    const int extra = static_cast<int>(rng.Uniform(
        static_cast<uint64_t>(max_nodes)));
    for (int i = 0; i < extra; ++i) {
      NodeId parent = nodes[static_cast<size_t>(rng.Uniform(nodes.size()))];
      nodes.push_back(t.AddChild(parent, names[rng.Uniform(3)],
                                 std::string(1, static_cast<char>(
                                                    'a' + rng.Uniform(3)))));
    }
    return t;
  };
  for (int iter = 0; iter < 10; ++iter) {
    Tree t1 = random_tree(7);
    Tree t2 = random_tree(7);
    EXPECT_NEAR(ZhangShashaDistance(t1, t2),
                BruteForceEditDistance(t1, t2), 1e-9)
        << t1.ToDebugString() << " vs " << t2.ToDebugString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZsRandomAgreementTest,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                           6ull, 7ull, 8ull));

TEST(ZhangShashaTest, OptimalOnDocumentWorkload) {
  // ZS distance lower-bounds the op count of any del/ins/upd script; our
  // MOV-based scripts can beat it per op count but ZS must never exceed
  // delete-everything + insert-everything.
  Vocabulary vocab(50, 1.0);
  Rng rng(77);
  DocGenParams params;
  params.sections = 2;
  params.min_paragraphs_per_section = 1;
  params.max_paragraphs_per_section = 2;
  auto labels = std::make_shared<LabelTable>();
  Tree t1 = GenerateDocument(params, vocab, &rng, labels);
  SimulatedVersion v = SimulateNewVersion(t1, 3, {}, vocab, &rng);
  const double d = ZhangShashaDistance(t1, v.new_tree);
  EXPECT_GE(d, 0.0);
  EXPECT_LE(d, static_cast<double>(t1.size() + v.new_tree.size()));
}

}  // namespace
}  // namespace treediff
