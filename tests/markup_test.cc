#include "doc/markup.h"

#include <gtest/gtest.h>

#include <memory>

#include "doc/ladiff.h"

namespace treediff {
namespace {

/// Runs the LaDiff pipeline on two LaTeX sources and returns the delta.
LaDiffResult RunLaDiff(const std::string& old_text, const std::string& new_text,
                 MarkupFormat format) {
  LaDiffOptions options;
  options.format = format;
  auto result = DiffLatexDocuments(old_text, new_text, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(*result);
}

TEST(MarkupTest, InsertedSentenceBoldInLatex) {
  auto r = RunLaDiff("Kept sentence stays here.",
               "Kept sentence stays here. Brand new sentence appears.",
               MarkupFormat::kLatex);
  EXPECT_NE(r.markup.find("\\textbf{Brand new sentence appears.}"),
            std::string::npos);
}

TEST(MarkupTest, DeletedSentenceSmallInLatex) {
  auto r = RunLaDiff("Kept sentence stays here. Doomed words vanish now.",
               "Kept sentence stays here.", MarkupFormat::kLatex);
  EXPECT_NE(r.markup.find("{\\small Doomed words vanish now.}"),
            std::string::npos);
}

TEST(MarkupTest, UpdatedSentenceItalicInLatex) {
  auto r = RunLaDiff("The quick brown fox jumps high.",
               "The quick brown wolf jumps high.", MarkupFormat::kLatex);
  EXPECT_NE(r.markup.find("\\textit{The quick brown wolf jumps high.}"),
            std::string::npos);
}

TEST(MarkupTest, MovedSentenceLabeledAndFootnoted) {
  auto r = RunLaDiff(
      "Mover sentence goes elsewhere. Anchor one stays. Anchor two stays.\n\n"
      "Second para anchor a. Second para anchor b.",
      "Anchor one stays. Anchor two stays.\n\n"
      "Second para anchor a. Second para anchor b. "
      "Mover sentence goes elsewhere.",
      MarkupFormat::kLatex);
  // Old position: S1:[{\small ...}]; new position: footnote.
  EXPECT_NE(r.markup.find("S1:[{\\small Mover sentence goes elsewhere.}]"),
            std::string::npos);
  EXPECT_NE(r.markup.find("\\footnote{Moved from S1}"), std::string::npos);
}

TEST(MarkupTest, SectionHeadingAnnotations) {
  auto r = RunLaDiff(
      "\\section{Introduction}\nShared body sentence one. Shared two.",
      "\\section{Overview}\nShared body sentence one. Shared two.",
      MarkupFormat::kLatex);
  EXPECT_NE(r.markup.find("\\section{(upd) Overview}"), std::string::npos);
}

TEST(MarkupTest, InsertedSectionAnnotated) {
  auto r = RunLaDiff(
      "\\section{Old}\nKeep this sentence alive.",
      "\\section{Old}\nKeep this sentence alive.\n"
      "\\section{Fresh}\nTotally new material here.",
      MarkupFormat::kLatex);
  EXPECT_NE(r.markup.find("\\section{(ins) Fresh}"), std::string::npos);
}

TEST(MarkupTest, InsertedParagraphMarginNote) {
  auto r = RunLaDiff("Original paragraph sentence.",
               "Original paragraph sentence.\n\n"
               "Entirely new paragraph with words.",
               MarkupFormat::kLatex);
  EXPECT_NE(r.markup.find("\\marginpar{Inserted para}"), std::string::npos);
}

TEST(MarkupTest, HtmlInsertAndDeleteTags) {
  auto r = RunLaDiff("Kept sentence stays here. Doomed words vanish now.",
               "Kept sentence stays here. Brand new sentence appears.",
               MarkupFormat::kHtml);
  EXPECT_NE(r.markup.find("<ins>Brand new sentence appears.</ins>"),
            std::string::npos);
  EXPECT_NE(r.markup.find("<del>Doomed words vanish now.</del>"),
            std::string::npos);
  EXPECT_NE(r.markup.find("<!DOCTYPE html>"), std::string::npos);
}

TEST(MarkupTest, HtmlEscapesText) {
  auto r = RunLaDiff("Math a < b holds.", "Math a < b holds. New x > y too.",
               MarkupFormat::kHtml);
  EXPECT_NE(r.markup.find("a &lt; b"), std::string::npos);
  EXPECT_NE(r.markup.find("x &gt; y"), std::string::npos);
}

TEST(MarkupTest, TextFormatShowsAnnotations) {
  auto r = RunLaDiff("Kept sentence stays here.",
               "Kept sentence stays here. Brand new sentence appears.",
               MarkupFormat::kText);
  EXPECT_NE(r.markup.find("sentence[INS]: Brand new sentence appears."),
            std::string::npos);
  EXPECT_NE(r.markup.find("document"), std::string::npos);
}

TEST(MarkupTest, MoveLabelsNumberedPerKind) {
  // Two sentence moves get S1 and S2.
  // Both paragraphs keep enough common sentences (4/6 and 5/7 > 0.6) to
  // stay matched while two sentences move between them.
  auto r = RunLaDiff(
      "Mover alpha sentence one. Mover beta sentence two. Anchor a. Anchor "
      "b. Anchor c. Anchor d.\n\nTarget anchor one. Target anchor two. "
      "Target anchor three. Target anchor four. Target anchor five.",
      "Anchor a. Anchor b. Anchor c. Anchor d.\n\nTarget anchor one. Mover "
      "alpha sentence one. Target anchor two. Mover beta sentence two. "
      "Target anchor three. Target anchor four. Target anchor five.",
      MarkupFormat::kLatex);
  EXPECT_NE(r.markup.find("S1:["), std::string::npos);
  EXPECT_NE(r.markup.find("S2:["), std::string::npos);
}

TEST(MarkupTest, EmptyDeltaRendersNothingSpecial) {
  auto r = RunLaDiff("Same text here.", "Same text here.", MarkupFormat::kLatex);
  EXPECT_EQ(r.markup.find("\\textbf"), std::string::npos);
  EXPECT_EQ(r.markup.find("\\textit"), std::string::npos);
  EXPECT_EQ(r.markup.find("\\small"), std::string::npos);
  EXPECT_NE(r.markup.find("Same text here."), std::string::npos);
}

}  // namespace
}  // namespace treediff
