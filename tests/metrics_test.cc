#include "util/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

namespace treediff {
namespace {

TEST(CounterTest, CountsAcrossThreads) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), 80000u);
}

TEST(HistogramTest, CountSumMean) {
  Histogram h;
  h.Observe(1.0);
  h.Observe(2.0);
  h.Observe(3.0);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.Sum(), 6.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.0);
}

TEST(HistogramTest, QuantileIsBucketAccurate) {
  // 1000 observations spread uniformly over (0, 1]: the median must land
  // within a factor of 2 of 0.5 (bucket resolution), p99 within 2x of 0.99.
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Observe(i / 1000.0);
  const double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 0.25);
  EXPECT_LE(p50, 1.0);
  const double p99 = h.Quantile(0.99);
  EXPECT_GE(p99, 0.5);
  EXPECT_LE(p99, 2.0);
  // Quantiles are monotone in q.
  EXPECT_LE(h.Quantile(0.1), h.Quantile(0.5));
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.99));
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0.0);
}

TEST(HistogramTest, OverflowReportsTopBound) {
  Histogram h;
  h.Observe(1e12);  // Way past the last bucket.
  EXPECT_EQ(h.Quantile(0.5), Histogram::BucketBound(Histogram::kBuckets - 1));
  EXPECT_EQ(h.Count(), 1u);
}

TEST(HistogramTest, ConcurrentObserveLosesNothing) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 5000; ++i) h.Observe(0.001);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), 40000u);
  // The CAS-loop sum is exact for identical addends well inside the
  // double mantissa.
  EXPECT_NEAR(h.Sum(), 40.0, 1e-9);
}

TEST(MetricsRegistryTest, SameNameSameInstance) {
  MetricsRegistry registry;
  Counter* a = registry.counter("requests_total");
  Counter* b = registry.counter("requests_total");
  EXPECT_EQ(a, b);
  a->Increment(7);
  EXPECT_EQ(b->Value(), 7u);
  EXPECT_NE(static_cast<void*>(registry.histogram("x")),
            static_cast<void*>(registry.histogram("y")));
}

TEST(MetricsRegistryTest, TextExposition) {
  MetricsRegistry registry;
  registry.counter("b_total")->Increment(2);
  registry.counter("a_total")->Increment(1);
  Histogram* h = registry.histogram("lat_seconds");
  h->Observe(0.5);
  const std::string text = registry.TextExposition();
  // Counters in name order, histogram count/sum/quantiles present.
  EXPECT_NE(text.find("a_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("b_total 2\n"), std::string::npos);
  EXPECT_LT(text.find("a_total"), text.find("b_total"));
  EXPECT_NE(text.find("lat_seconds_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum 0.5\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds{quantile=\"0.99\"}"), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusCountersWithSharedHeaders) {
  MetricsRegistry registry;
  registry.counter("req_total{tenant=\"a\"}")->Increment(1);
  registry.counter("req_total{tenant=\"b\"}")->Increment(2);
  registry.counter("up_total")->Increment(5);
  const std::string text = registry.PrometheusExposition();

  // One # HELP / # TYPE pair per BASE name: the two labeled series share
  // a single header, emitted before the first of them.
  EXPECT_NE(text.find("# HELP req_total"), std::string::npos);
  const size_t first_type = text.find("# TYPE req_total counter");
  ASSERT_NE(first_type, std::string::npos);
  EXPECT_EQ(text.find("# TYPE req_total counter", first_type + 1),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE up_total counter"), std::string::npos);

  EXPECT_NE(text.find("req_total{tenant=\"a\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("req_total{tenant=\"b\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("up_total 5\n"), std::string::npos);
  EXPECT_LT(first_type, text.find("req_total{tenant=\"a\"}"));
}

TEST(MetricsRegistryTest, PrometheusHistogramCumulativeBuckets) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat_seconds");
  h->Observe(0.0005);
  h->Observe(0.5);
  h->Observe(0.5);
  const std::string text = registry.PrometheusExposition();

  EXPECT_NE(text.find("# TYPE lat_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum 1.0005\n"), std::string::npos);

  // Bucket counts must be CUMULATIVE and non-decreasing, ending at _count.
  uint64_t previous = 0;
  size_t buckets_seen = 0;
  size_t at = 0;
  const std::string prefix = "lat_seconds_bucket{le=\"";
  while ((at = text.find(prefix, at)) != std::string::npos) {
    const size_t space = text.find(' ', at);
    ASSERT_NE(space, std::string::npos);
    const uint64_t value = std::stoull(text.substr(space + 1));
    EXPECT_GE(value, previous);
    previous = value;
    ++buckets_seen;
    at = space;
  }
  EXPECT_EQ(buckets_seen, static_cast<size_t>(Histogram::kBuckets) + 1);
  EXPECT_EQ(previous, 3u);  // The +Inf bucket equals the total count.
}

TEST(MetricsRegistryTest, PrometheusEmptyHistogramIsWellFormed) {
  MetricsRegistry registry;
  registry.histogram("idle_seconds");
  const std::string text = registry.PrometheusExposition();
  EXPECT_NE(text.find("idle_seconds_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("idle_seconds_count 0\n"), std::string::npos);
  EXPECT_NE(text.find("idle_seconds_sum 0\n"), std::string::npos);
}

}  // namespace
}  // namespace treediff
