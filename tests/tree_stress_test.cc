// Scale and stress tests: large trees, long random edit sessions, deep
// chains — the invariants (Validate, traversal sizes, Euler consistency)
// must hold throughout.

#include <gtest/gtest.h>

#include <memory>

#include "core/diff.h"
#include "gen/doc_gen.h"
#include "gen/edit_sim.h"
#include "tree/tree.h"
#include "util/random.h"

namespace treediff {
namespace {

TEST(TreeStressTest, LargeWideTree) {
  auto labels = std::make_shared<LabelTable>();
  Tree t(labels);
  NodeId root = t.AddRoot("root");
  const LabelId mid_label = labels->Intern("mid");
  const LabelId leaf_label = labels->Intern("leaf");
  for (int i = 0; i < 200; ++i) {
    NodeId mid = t.AddChild(root, mid_label, "");
    for (int j = 0; j < 100; ++j) {
      t.AddChild(mid, leaf_label, "v" + std::to_string(i * 100 + j));
    }
  }
  EXPECT_EQ(t.size(), 1u + 200u + 20000u);
  EXPECT_EQ(t.BfsOrder().size(), t.size());
  EXPECT_EQ(t.PostOrder().size(), t.size());
  EXPECT_EQ(t.PreOrder().size(), t.size());
  EXPECT_EQ(t.Leaves().size(), 20000u);
  EXPECT_EQ(t.LeafCounts()[static_cast<size_t>(root)], 20000);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(TreeStressTest, DeepChain) {
  // Traversals are iterative; a 20000-deep chain must not overflow.
  auto labels = std::make_shared<LabelTable>();
  Tree t(labels);
  const LabelId label = labels->Intern("n");
  NodeId cur = t.AddRoot(label, "");
  for (int i = 0; i < 20000; ++i) cur = t.AddChild(cur, label, "");
  EXPECT_EQ(t.Height(), 20000);
  EXPECT_EQ(t.PostOrder().size(), 20001u);
  Tree::EulerIntervals e = t.ComputeEuler();
  EXPECT_TRUE(e.Contains(t.root(), cur));
  EXPECT_FALSE(e.Contains(cur, t.root()));
  EXPECT_TRUE(t.Validate().ok());
}

TEST(TreeStressTest, RandomEditSessionKeepsInvariants) {
  auto labels = std::make_shared<LabelTable>();
  Rng rng(1234);
  Tree t(labels);
  const LabelId label = labels->Intern("n");
  NodeId root = t.AddRoot(label, "root");
  std::vector<NodeId> live = {root};

  int inserts = 0, deletes = 0, moves = 0, updates = 0;
  for (int step = 0; step < 4000; ++step) {
    const uint64_t action = rng.Uniform(10);
    if (action < 5 || live.size() < 3) {
      // Insert under a random live node.
      NodeId parent = live[rng.Uniform(live.size())];
      const int k = static_cast<int>(rng.UniformInRange(
          1, static_cast<int64_t>(t.children(parent).size()) + 1));
      auto id = t.InsertLeaf(label, "v" + std::to_string(step), parent, k);
      ASSERT_TRUE(id.ok());
      live.push_back(*id);
      ++inserts;
    } else if (action < 7) {
      // Delete a random leaf (not the root).
      NodeId victim = live[rng.Uniform(live.size())];
      if (victim != root && t.IsLeaf(victim)) {
        ASSERT_TRUE(t.DeleteLeaf(victim).ok());
        live.erase(std::find(live.begin(), live.end(), victim));
        ++deletes;
      }
    } else if (action < 9) {
      // Move a random subtree somewhere legal.
      NodeId x = live[rng.Uniform(live.size())];
      NodeId target = live[rng.Uniform(live.size())];
      if (x != root && !t.IsAncestorOrSelf(x, target)) {
        const size_t base = t.children(target).size();
        const int k = static_cast<int>(rng.UniformInRange(
            1, static_cast<int64_t>(base) +
                   (t.parent(x) == target ? 0 : 1)));
        ASSERT_TRUE(t.MoveSubtree(x, target, std::max(1, k)).ok());
        ++moves;
      }
    } else {
      NodeId x = live[rng.Uniform(live.size())];
      ASSERT_TRUE(t.UpdateValue(x, "u" + std::to_string(step)).ok());
      ++updates;
    }
    if (step % 500 == 0) {
      ASSERT_TRUE(t.Validate().ok()) << "step " << step;
    }
  }
  EXPECT_TRUE(t.Validate().ok());
  EXPECT_EQ(t.size(), live.size());
  EXPECT_GT(inserts, 0);
  EXPECT_GT(deletes, 0);
  EXPECT_GT(moves, 0);
  EXPECT_GT(updates, 0);
}

TEST(TreeStressTest, DiffOnLargeDocuments) {
  // End-to-end on >12k-node documents: correct and comfortably fast.
  auto labels = std::make_shared<LabelTable>();
  Vocabulary vocab(10000, 0.7);
  Rng rng(555);
  DocGenParams params;
  params.sections = 300;
  params.min_paragraphs_per_section = 6;
  params.max_paragraphs_per_section = 10;
  Tree t1 = GenerateDocument(params, vocab, &rng, labels);
  ASSERT_GT(t1.size(), 12000u);
  SimulatedVersion v = SimulateNewVersion(t1, 30, {}, vocab, &rng);

  auto diff = DiffTrees(t1, v.new_tree);
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  Tree replay = t1.Clone();
  ASSERT_TRUE(diff->script.ApplyTo(&replay).ok());
  EXPECT_TRUE(Tree::Isomorphic(replay, v.new_tree));

  auto delta = BuildDeltaTree(t1, v.new_tree, *diff);
  ASSERT_TRUE(delta.ok());
  auto old_again = ReconstructOldVersion(*delta, labels);
  ASSERT_TRUE(old_again.ok());
  EXPECT_TRUE(Tree::Isomorphic(*old_again, t1));
}

TEST(TreeStressTest, ManySmallDiffsNoStateLeak) {
  // Repeated diffs over one label table must not interfere.
  auto labels = std::make_shared<LabelTable>();
  Vocabulary vocab(300, 1.0);
  Rng rng(777);
  DocGenParams params;
  params.sections = 2;
  for (int round = 0; round < 25; ++round) {
    Tree t1 = GenerateDocument(params, vocab, &rng, labels);
    SimulatedVersion v = SimulateNewVersion(t1, 5, {}, vocab, &rng);
    auto diff = DiffTrees(t1, v.new_tree);
    ASSERT_TRUE(diff.ok()) << "round " << round;
    Tree replay = t1.Clone();
    ASSERT_TRUE(diff->script.ApplyTo(&replay).ok()) << "round " << round;
    EXPECT_TRUE(Tree::Isomorphic(replay, v.new_tree)) << "round " << round;
  }
}

}  // namespace
}  // namespace treediff
