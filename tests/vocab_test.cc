#include "gen/vocab.h"

#include <gtest/gtest.h>

#include <cctype>
#include <set>

#include "util/tokenize.h"

namespace treediff {
namespace {

TEST(VocabularyTest, WordsAreUnique) {
  Vocabulary vocab(2000, 1.0);
  std::set<std::string> seen;
  for (size_t r = 0; r < vocab.size(); ++r) {
    EXPECT_TRUE(seen.insert(vocab.Word(r)).second)
        << "duplicate word " << vocab.Word(r) << " at rank " << r;
  }
}

TEST(VocabularyTest, WordsAreLowercaseAlpha) {
  Vocabulary vocab(500, 1.0);
  for (size_t r = 0; r < vocab.size(); ++r) {
    for (char c : vocab.Word(r)) {
      EXPECT_TRUE(std::islower(static_cast<unsigned char>(c)) != 0);
    }
    EXPECT_GE(vocab.Word(r).size(), 4u);
  }
}

TEST(VocabularyTest, DeterministicAcrossInstances) {
  Vocabulary a(100, 1.0), b(100, 0.5);
  for (size_t r = 0; r < 100; ++r) EXPECT_EQ(a.Word(r), b.Word(r));
}

TEST(VocabularyTest, SamplingFavorsLowRanks) {
  Vocabulary vocab(1000, 1.1);
  Rng rng(7);
  size_t low = 0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    const std::string& w = vocab.SampleWord(&rng);
    // Find whether it is among the first 20 ranks (cheap check by value).
    for (size_t r = 0; r < 20; ++r) {
      if (vocab.Word(r) == w) {
        ++low;
        break;
      }
    }
  }
  // Zipf(1.1) concentrates a large share of mass on the head.
  EXPECT_GT(low, static_cast<size_t>(trials / 4));
}

TEST(VocabularyTest, MakeSentenceShape) {
  Vocabulary vocab(100, 1.0);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    std::string s = vocab.MakeSentence(&rng, 4, 9);
    ASSERT_FALSE(s.empty());
    EXPECT_TRUE(std::isupper(static_cast<unsigned char>(s[0])) != 0);
    EXPECT_EQ(s.back(), '.');
    const size_t words = SplitWords(s).size();
    EXPECT_GE(words, 4u);
    EXPECT_LE(words, 9u);
  }
}

TEST(VocabularyTest, SentencesVary) {
  Vocabulary vocab(100, 1.0);
  Rng rng(5);
  std::set<std::string> sentences;
  for (int i = 0; i < 30; ++i) {
    sentences.insert(vocab.MakeSentence(&rng, 5, 10));
  }
  EXPECT_GT(sentences.size(), 25u);
}

}  // namespace
}  // namespace treediff
