#include "util/table.h"

#include <gtest/gtest.h>

#include <string>

namespace treediff {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "n"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "100"});
  const std::string out = table.ToString();
  EXPECT_EQ(out,
            "| name  | n   |\n"
            "|-------|-----|\n"
            "| alpha | 1   |\n"
            "| b     | 100 |\n");
}

TEST(TablePrinterTest, ShortRowsPadAndLongRowsTruncate) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1"});
  table.AddRow({"1", "2", "3"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| 1 |   |"), std::string::npos);
  EXPECT_EQ(out.find("3"), std::string::npos);
}

TEST(TablePrinterTest, FmtDouble) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 0), "3");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 1), "2.0");
}

TEST(TablePrinterTest, FmtIntegers) {
  EXPECT_EQ(TablePrinter::Fmt(static_cast<size_t>(42)), "42");
  EXPECT_EQ(TablePrinter::Fmt(static_cast<int64_t>(-7)), "-7");
}

TEST(TablePrinterTest, HeaderOnlyTable) {
  TablePrinter table({"x"});
  const std::string out = table.ToString();
  EXPECT_EQ(out, "| x |\n|---|\n");
}

}  // namespace
}  // namespace treediff
