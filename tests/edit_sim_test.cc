#include "gen/edit_sim.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "gen/doc_gen.h"
#include "tree/schema.h"

namespace treediff {
namespace {

class EditSimTest : public ::testing::Test {
 protected:
  EditSimTest() : vocab_(300, 1.0) {}

  Tree MakeDoc(uint64_t seed, int sections = 4) {
    Rng rng(seed);
    DocGenParams params;
    params.sections = sections;
    labels_ = std::make_shared<LabelTable>();
    return GenerateDocument(params, vocab_, &rng, labels_);
  }

  Vocabulary vocab_;
  std::shared_ptr<LabelTable> labels_;
};

TEST_F(EditSimTest, ZeroEditsIsIdentity) {
  Tree doc = MakeDoc(1);
  Rng rng(10);
  SimulatedVersion v = SimulateNewVersion(doc, 0, {}, vocab_, &rng);
  EXPECT_TRUE(Tree::Isomorphic(doc, v.new_tree));
  EXPECT_EQ(v.intended_ops, 0u);
  EXPECT_EQ(v.intended_weighted, 0u);
}

TEST_F(EditSimTest, OriginalIsUntouched) {
  Tree doc = MakeDoc(2);
  const std::string before = doc.ToDebugString();
  Rng rng(11);
  SimulateNewVersion(doc, 20, {}, vocab_, &rng);
  EXPECT_EQ(doc.ToDebugString(), before);
}

TEST_F(EditSimTest, NewTreeIsValidSchemaConforming) {
  Tree doc = MakeDoc(3);
  LabelSchema schema = MakeDocumentSchema(labels_.get());
  Rng rng(12);
  SimulatedVersion v = SimulateNewVersion(doc, 25, {}, vocab_, &rng);
  EXPECT_TRUE(v.new_tree.Validate().ok());
  EXPECT_TRUE(schema.CheckAcyclic(v.new_tree).ok());
  // Fresh dense ids, unrelated to the original's.
  EXPECT_EQ(v.new_tree.id_bound(), v.new_tree.size());
}

TEST_F(EditSimTest, GroundTruthAccounting) {
  Tree doc = MakeDoc(4);
  Rng rng(13);
  SimulatedVersion v = SimulateNewVersion(doc, 15, {}, vocab_, &rng);
  EXPECT_GT(v.intended_ops, 0u);
  // Every op except an update contributes weight >= 1, so e + updates >= d.
  EXPECT_GE(v.intended_weighted + v.sentence_updates, v.intended_ops);
  // Category counters sum to the requested edit count (each edit maps to
  // one category).
  const size_t edits = v.sentence_updates + v.sentence_inserts +
                       v.sentence_deletes + v.sentence_moves +
                       v.paragraph_moves + v.paragraph_inserts +
                       v.paragraph_deletes;
  EXPECT_EQ(edits, 15u);
}

TEST_F(EditSimTest, PureUpdateMixChangesOnlyValues) {
  Tree doc = MakeDoc(5);
  EditMix mix;
  mix.update_sentence = 1.0;
  mix.insert_sentence = mix.delete_sentence = mix.move_sentence = 0.0;
  mix.move_paragraph = mix.insert_paragraph = mix.delete_paragraph = 0.0;
  Rng rng(14);
  SimulatedVersion v = SimulateNewVersion(doc, 10, mix, vocab_, &rng);
  EXPECT_EQ(v.sentence_updates, 10u);
  EXPECT_EQ(v.intended_weighted, 0u);
  EXPECT_EQ(doc.size(), v.new_tree.size());  // Structure unchanged.
}

TEST_F(EditSimTest, PureMoveMixPreservesMultiset) {
  Tree doc = MakeDoc(6);
  EditMix mix;
  mix.update_sentence = 0.0;
  mix.insert_sentence = mix.delete_sentence = 0.0;
  mix.move_sentence = 1.0;
  mix.move_paragraph = mix.insert_paragraph = mix.delete_paragraph = 0.0;
  Rng rng(15);
  SimulatedVersion v = SimulateNewVersion(doc, 8, mix, vocab_, &rng);
  EXPECT_EQ(v.sentence_moves, 8u);
  // Same sentences, possibly different placement.
  std::multiset<std::string> before, after;
  for (NodeId s : doc.Leaves()) before.insert(doc.value(s));
  for (NodeId s : v.new_tree.Leaves()) after.insert(v.new_tree.value(s));
  EXPECT_EQ(before, after);
}

TEST_F(EditSimTest, DeterministicGivenSeed) {
  Tree doc = MakeDoc(7);
  Rng rng1(20), rng2(20);
  SimulatedVersion a = SimulateNewVersion(doc, 12, {}, vocab_, &rng1);
  SimulatedVersion b = SimulateNewVersion(doc, 12, {}, vocab_, &rng2);
  EXPECT_TRUE(Tree::Isomorphic(a.new_tree, b.new_tree));
  EXPECT_EQ(a.intended_ops, b.intended_ops);
}

TEST_F(EditSimTest, TinyDocumentDoesNotCrash) {
  auto labels = std::make_shared<LabelTable>();
  Tree doc(labels);
  NodeId d = doc.AddRoot("document");
  NodeId sec = doc.AddChild(d, "section", "h");
  NodeId p = doc.AddChild(sec, "paragraph");
  doc.AddChild(p, "sentence", "Only one here.");
  Rng rng(30);
  SimulatedVersion v = SimulateNewVersion(doc, 10, {}, vocab_, &rng);
  EXPECT_TRUE(v.new_tree.Validate().ok());
}

}  // namespace
}  // namespace treediff
