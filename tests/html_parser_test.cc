#include "doc/html_parser.h"

#include <gtest/gtest.h>

#include <memory>

#include "tree/schema.h"

namespace treediff {
namespace {

NodeId Child(const Tree& t, NodeId x, size_t i) { return t.children(x)[i]; }

TEST(HtmlParserTest, ParagraphsFromPTags) {
  auto tree = ParseHtml("<p>First one. Second one.</p><p>Next para.</p>");
  ASSERT_TRUE(tree.ok());
  NodeId doc = tree->root();
  EXPECT_EQ(tree->label_name(doc), "document");
  ASSERT_EQ(tree->children(doc).size(), 2u);
  NodeId p1 = Child(*tree, doc, 0);
  ASSERT_EQ(tree->children(p1).size(), 2u);
  EXPECT_EQ(tree->value(Child(*tree, p1, 0)), "First one.");
}

TEST(HtmlParserTest, HeadingsBecomeSections) {
  auto tree = ParseHtml(
      "<h1>Intro</h1><p>Text one.</p><h2>Details</h2><p>Text two.</p>");
  ASSERT_TRUE(tree.ok());
  NodeId sec = Child(*tree, tree->root(), 0);
  EXPECT_EQ(tree->label_name(sec), "section");
  EXPECT_EQ(tree->value(sec), "Intro");
  ASSERT_EQ(tree->children(sec).size(), 2u);
  NodeId sub = Child(*tree, sec, 1);
  EXPECT_EQ(tree->label_name(sub), "subsection");
  EXPECT_EQ(tree->value(sub), "Details");
}

TEST(HtmlParserTest, ListsAndItems) {
  auto tree = ParseHtml(
      "<ul><li>Alpha item.</li><li>Beta item.</li></ul>");
  ASSERT_TRUE(tree.ok());
  NodeId list = Child(*tree, tree->root(), 0);
  EXPECT_EQ(tree->label_name(list), "list");
  ASSERT_EQ(tree->children(list).size(), 2u);
  NodeId item = Child(*tree, list, 0);
  EXPECT_EQ(tree->label_name(item), "item");
  EXPECT_EQ(tree->value(Child(*tree, Child(*tree, item, 0), 0)),
            "Alpha item.");
}

TEST(HtmlParserTest, OlAndDlAlsoMapToList) {
  for (const char* html :
       {"<ol><li>One.</li></ol>", "<dl><dd>One.</dd></dl>"}) {
    auto tree = ParseHtml(html);
    ASSERT_TRUE(tree.ok()) << html;
    EXPECT_EQ(tree->label_name(Child(*tree, tree->root(), 0)), "list")
        << html;
  }
}

TEST(HtmlParserTest, InlineTagsStripped) {
  auto tree = ParseHtml("<p>Some <b>bold</b> and <a href='#'>link</a>.</p>");
  ASSERT_TRUE(tree.ok());
  NodeId para = Child(*tree, tree->root(), 0);
  EXPECT_EQ(tree->value(Child(*tree, para, 0)), "Some bold and link .");
}

TEST(HtmlParserTest, EntitiesDecoded) {
  auto tree = ParseHtml("<p>Tom &amp; Jerry &lt;3 &#65;.</p>");
  ASSERT_TRUE(tree.ok());
  NodeId para = Child(*tree, tree->root(), 0);
  EXPECT_EQ(tree->value(Child(*tree, para, 0)), "Tom & Jerry <3 A.");
}

TEST(HtmlParserTest, ScriptStyleHeadSkipped) {
  auto tree = ParseHtml(
      "<head><title>T</title></head><script>var x = 'Nope.';</script>"
      "<style>p { color: red; }</style><p>Visible.</p>");
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ(tree->children(tree->root()).size(), 1u);
  NodeId para = Child(*tree, tree->root(), 0);
  EXPECT_EQ(tree->value(Child(*tree, para, 0)), "Visible.");
}

TEST(HtmlParserTest, CommentsAndDoctypeSkipped) {
  auto tree = ParseHtml(
      "<!DOCTYPE html><!-- hidden. --><p>Shown here.</p>");
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ(tree->children(tree->root()).size(), 1u);
}

TEST(HtmlParserTest, BareTextFormsImplicitParagraph) {
  auto tree = ParseHtml("Loose text outside tags.");
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ(tree->children(tree->root()).size(), 1u);
  EXPECT_EQ(tree->label_name(Child(*tree, tree->root(), 0)), "paragraph");
}

TEST(HtmlParserTest, OutputSatisfiesDocumentSchema) {
  auto labels = std::make_shared<LabelTable>();
  auto tree = ParseHtml(
      "<h1>A</h1><p>One. Two.</p><ul><li>X.</li></ul><h2>B</h2><p>Three.</p>",
      labels);
  ASSERT_TRUE(tree.ok());
  LabelSchema schema = MakeDocumentSchema(labels.get());
  EXPECT_TRUE(schema.CheckAcyclic(*tree).ok());
  EXPECT_TRUE(tree->Validate().ok());
}

TEST(HtmlParserTest, UnclosedTagTolerated) {
  auto tree = ParseHtml("<p>Fine text here.");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->children(tree->root()).size(), 1u);
}

}  // namespace
}  // namespace treediff
