// Wire-protocol codec tests: encode/decode round trips for every opcode,
// incremental delivery (the decoder must assemble frames from arbitrary
// byte fragments), pipelined streams, and the two-tier error model — a
// malformed frame body is consumed per-frame with the stream staying in
// sync, while a broken outer length poisons the stream for good.

#include "net/wire.h"

#include <gtest/gtest.h>

#include <string>

namespace treediff {
namespace net {
namespace {

WireRequest SampleDiffRequest() {
  WireRequest request;
  request.opcode = Opcode::kDiff;
  request.format = kFormatXml;
  request.flags = kFlagNoScript;
  request.request_id = 0x1122334455667788ull;
  request.deadline_ms = 2500;
  request.tenant = "team-a";
  request.old_doc = "<doc><p>old</p></doc>";
  request.new_doc = "<doc><p>new</p></doc>";
  return request;
}

TEST(WireTest, DiffRequestRoundTrip) {
  const WireRequest in = SampleDiffRequest();
  FrameDecoder decoder;
  const std::string bytes = EncodeRequest(in);
  decoder.Append(bytes.data(), bytes.size());

  WireRequest out;
  Status error = Status::Ok();
  ASSERT_EQ(decoder.NextRequest(&out, &error), DecodeResult::kFrame);
  EXPECT_EQ(out.opcode, Opcode::kDiff);
  EXPECT_EQ(out.format, kFormatXml);
  EXPECT_EQ(out.flags, kFlagNoScript);
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.deadline_ms, in.deadline_ms);
  EXPECT_EQ(out.tenant, in.tenant);
  EXPECT_EQ(out.old_doc, in.old_doc);
  EXPECT_EQ(out.new_doc, in.new_doc);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  EXPECT_EQ(decoder.NextRequest(&out, &error), DecodeResult::kNeedMore);
}

TEST(WireTest, AllOpcodesRoundTrip) {
  FrameDecoder decoder;
  std::string stream;

  WireRequest ping;
  ping.opcode = Opcode::kPing;
  ping.request_id = 1;
  AppendRequest(ping, &stream);

  WireRequest vdiff;
  vdiff.opcode = Opcode::kVdiff;
  vdiff.request_id = 2;
  vdiff.doc_id = "doc-7";
  vdiff.from_version = 3;
  vdiff.to_version = -1;  // "latest" sentinel must survive the trip.
  AppendRequest(vdiff, &stream);

  WireRequest open;
  open.opcode = Opcode::kOpen;
  open.request_id = 3;
  open.doc_id = "doc-7";
  open.old_doc = "(D (P (S \"base\")))";
  AppendRequest(open, &stream);

  WireRequest commit;
  commit.opcode = Opcode::kCommit;
  commit.request_id = 4;
  commit.doc_id = "doc-7";
  commit.old_doc = "(D (P (S \"v1\")))";
  AppendRequest(commit, &stream);

  WireRequest metrics;
  metrics.opcode = Opcode::kMetrics;
  metrics.request_id = 5;
  AppendRequest(metrics, &stream);

  decoder.Append(stream.data(), stream.size());
  WireRequest out;
  Status error = Status::Ok();
  for (uint64_t id = 1; id <= 5; ++id) {
    ASSERT_EQ(decoder.NextRequest(&out, &error), DecodeResult::kFrame)
        << "frame " << id;
    EXPECT_EQ(out.request_id, id);
    if (id >= 2 && id <= 4) {
      EXPECT_EQ(out.doc_id, "doc-7");
    }
    if (id == 2) {
      EXPECT_EQ(out.to_version, -1);
    }
  }
  EXPECT_EQ(decoder.NextRequest(&out, &error), DecodeResult::kNeedMore);
  EXPECT_EQ(out.doc_id, "");  // The output struct is reset per frame.
}

TEST(WireTest, ByteAtATimeDelivery) {
  const WireRequest in = SampleDiffRequest();
  const std::string bytes = EncodeRequest(in);
  FrameDecoder decoder;
  WireRequest out;
  Status error = Status::Ok();
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.Append(bytes.data() + i, 1);
    ASSERT_EQ(decoder.NextRequest(&out, &error), DecodeResult::kNeedMore)
        << "at byte " << i;
  }
  decoder.Append(bytes.data() + bytes.size() - 1, 1);
  ASSERT_EQ(decoder.NextRequest(&out, &error), DecodeResult::kFrame);
  EXPECT_EQ(out.old_doc, in.old_doc);
}

TEST(WireTest, ResponseRoundTrip) {
  WireResponse in;
  in.opcode = Opcode::kDiff;
  in.status = 0;
  in.rung = 2;
  in.flags = kRespFlagDegraded | kRespFlagCacheNew;
  in.request_id = 99;
  in.value = 17;
  in.aux = 4;
  in.payload = "INS((3, P, \"\"), 0, 1)\n";

  FrameDecoder decoder;
  const std::string bytes = EncodeResponse(in);
  decoder.Append(bytes.data(), bytes.size());
  WireResponse out;
  Status error = Status::Ok();
  ASSERT_EQ(decoder.NextResponse(&out, &error), DecodeResult::kFrame);
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(out.rung, 2);
  EXPECT_EQ(out.flags, in.flags);
  EXPECT_EQ(out.request_id, 99u);
  EXPECT_EQ(out.value, 17u);
  EXPECT_EQ(out.aux, 4u);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(WireTest, BadOpcodeIsPerFrameErrorAndStreamStaysInSync) {
  std::string stream = EncodeRequest(SampleDiffRequest());
  // Corrupt the opcode byte (first payload byte, after the 4-byte length).
  stream[kLenPrefixBytes] = static_cast<char>(0x7F);
  // A healthy frame follows the corrupt one.
  WireRequest ping;
  ping.opcode = Opcode::kPing;
  ping.request_id = 42;
  AppendRequest(ping, &stream);

  FrameDecoder decoder;
  decoder.Append(stream.data(), stream.size());
  WireRequest out;
  Status error = Status::Ok();
  ASSERT_EQ(decoder.NextRequest(&out, &error), DecodeResult::kBadFrame);
  EXPECT_FALSE(error.ok());
  // The stream is still in sync: the next frame decodes normally.
  ASSERT_EQ(decoder.NextRequest(&out, &error), DecodeResult::kFrame);
  EXPECT_EQ(out.request_id, 42u);
}

TEST(WireTest, BadFrameKeepsCorrelationHeader) {
  // Inner lengths inconsistent with the frame: header decodes, body fails —
  // the server needs request_id/tenant to answer with an error response.
  WireRequest in = SampleDiffRequest();
  std::string stream = EncodeRequest(in);
  // old_len is the u32 right after the fixed header + tenant. Inflate it.
  const size_t old_len_at =
      kLenPrefixBytes + kRequestHeaderBytes + in.tenant.size();
  stream[old_len_at + 3] = static_cast<char>(0x7F);  // Huge old_len.

  FrameDecoder decoder;
  decoder.Append(stream.data(), stream.size());
  WireRequest out;
  Status error = Status::Ok();
  ASSERT_EQ(decoder.NextRequest(&out, &error), DecodeResult::kBadFrame);
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.tenant, in.tenant);
}

TEST(WireTest, TrailingBytesRejected) {
  WireRequest ping;
  ping.opcode = Opcode::kPing;
  std::string frame = EncodeRequest(ping);
  // Declare one extra byte and append it: the body no longer matches the
  // opcode's fixed shape.
  frame.push_back('X');
  frame[0] = static_cast<char>(static_cast<unsigned char>(frame[0]) + 1);

  FrameDecoder decoder;
  decoder.Append(frame.data(), frame.size());
  WireRequest out;
  Status error = Status::Ok();
  EXPECT_EQ(decoder.NextRequest(&out, &error), DecodeResult::kBadFrame);
}

TEST(WireTest, OversizedLengthIsFatalAndSticky) {
  FrameDecoder decoder(/*max_frame_bytes=*/1024);
  const uint32_t huge = 1 << 30;
  char prefix[4] = {static_cast<char>(huge & 0xFF),
                    static_cast<char>((huge >> 8) & 0xFF),
                    static_cast<char>((huge >> 16) & 0xFF),
                    static_cast<char>((huge >> 24) & 0xFF)};
  decoder.Append(prefix, sizeof prefix);

  WireRequest out;
  Status error = Status::Ok();
  ASSERT_EQ(decoder.NextRequest(&out, &error), DecodeResult::kError);
  EXPECT_FALSE(error.ok());
  // The poisoned buffer was released, and the state is sticky: even a
  // well-formed frame appended later is refused.
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  const std::string good = EncodeRequest(SampleDiffRequest());
  decoder.Append(good.data(), good.size());
  EXPECT_EQ(decoder.NextRequest(&out, &error), DecodeResult::kError);
}

TEST(WireTest, ZeroLengthIsFatal) {
  FrameDecoder decoder;
  const char zeros[4] = {0, 0, 0, 0};
  decoder.Append(zeros, sizeof zeros);
  WireRequest out;
  Status error = Status::Ok();
  EXPECT_EQ(decoder.NextRequest(&out, &error), DecodeResult::kError);
}

TEST(WireTest, TenantLongerThanCapIsClampedOnEncode) {
  WireRequest request;
  request.opcode = Opcode::kPing;
  request.tenant = std::string(200, 't');
  FrameDecoder decoder;
  const std::string bytes = EncodeRequest(request);
  decoder.Append(bytes.data(), bytes.size());
  WireRequest out;
  Status error = Status::Ok();
  ASSERT_EQ(decoder.NextRequest(&out, &error), DecodeResult::kFrame);
  EXPECT_EQ(out.tenant.size(), kMaxTenantLen);
}

TEST(WireTest, OversizedTenantOnTheWireIsBadFrame) {
  // A hand-built frame can still declare tenant_len > kMaxTenantLen (u8
  // holds up to 255); the decoder must reject it per-frame.
  WireRequest ping;
  ping.opcode = Opcode::kPing;
  std::string frame = EncodeRequest(ping);
  const size_t body = frame.size() - kLenPrefixBytes;
  // Patch tenant_len to 100 and supply the bytes.
  frame[kLenPrefixBytes + 3] = static_cast<char>(100);
  frame += std::string(100, 'q');
  const uint32_t new_len = static_cast<uint32_t>(body + 100);
  for (int i = 0; i < 4; ++i) {
    frame[i] = static_cast<char>((new_len >> (8 * i)) & 0xFF);
  }

  FrameDecoder decoder;
  decoder.Append(frame.data(), frame.size());
  WireRequest out;
  Status error = Status::Ok();
  EXPECT_EQ(decoder.NextRequest(&out, &error), DecodeResult::kBadFrame);
  // Stream still in sync for the next frame.
  const std::string good = EncodeRequest(ping);
  decoder.Append(good.data(), good.size());
  EXPECT_EQ(decoder.NextRequest(&out, &error), DecodeResult::kFrame);
}

TEST(WireTest, ErrorResponseStatusRoundTrip) {
  WireResponse in;
  in.opcode = Opcode::kDiff;
  in.status = static_cast<uint8_t>(Code::kResourceExhausted);
  in.request_id = 7;
  in.payload = "queue full";
  FrameDecoder decoder;
  const std::string bytes = EncodeResponse(in);
  decoder.Append(bytes.data(), bytes.size());
  WireResponse out;
  Status error = Status::Ok();
  ASSERT_EQ(decoder.NextResponse(&out, &error), DecodeResult::kFrame);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.code(), Code::kResourceExhausted);
  EXPECT_EQ(out.payload, "queue full");
}

}  // namespace
}  // namespace net
}  // namespace treediff
