// End-to-end tests of the epoll network front end: request/response over
// real loopback sockets, byte-identity with the direct DiffService::Submit
// path, pipelining with out-of-order completion, per-frame error handling
// vs fatal framing errors, connection fan-in, and the graceful-shutdown
// regression (no accepted request is dropped without an error response).

#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/client.h"
#include "net/wire.h"
#include "service/diff_service.h"

namespace treediff {
namespace net {
namespace {

void PreInternLabels(LabelTable& table) {
  table.Intern("D");
  table.Intern("P");
  table.Intern("S");
}

std::string OldDoc(int i) {
  return "(D (P (S \"alpha " + std::to_string(i) +
         " one two three\") (S \"beta common tail\")) "
         "(P (S \"gamma shared base\")))";
}

std::string NewDoc(int i) {
  return "(D (P (S \"alpha " + std::to_string(i) +
         " one two four\") (S \"beta common tail\")) "
         "(P (S \"gamma shared base\") (S \"epsilon new\")))";
}

struct ServerFixture {
  explicit ServerFixture(NetServerOptions net_options = {},
                         DiffServiceOptions service_options = {}) {
    service = std::make_unique<DiffService>(service_options);
    PreInternLabels(*service->label_table());
    server = std::make_unique<NetServer>(service.get(), net_options);
    const Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  std::unique_ptr<DiffService> service;
  std::unique_ptr<NetServer> server;
};

TEST(NetServerTest, PingAndDiff) {
  ServerFixture fx;
  SimpleClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.server->port()).ok());
  ASSERT_TRUE(client.Ping().ok());

  WireResponse response;
  ASSERT_TRUE(
      client.Diff(OldDoc(1), NewDoc(1), kFormatSexpr, &response).ok());
  ASSERT_TRUE(response.ok()) << response.payload;
  EXPECT_GT(response.value, 0u);          // Operations.
  EXPECT_FALSE(response.payload.empty());  // Script text.
}

TEST(NetServerTest, ResponsesByteIdenticalToDirectSubmit) {
  // A reference service (no network) and a served service, both freshly
  // constructed with the same options and label interning order, fed the
  // same requests in the same order: the wire response must carry exactly
  // the bytes the direct API returns.
  DiffServiceOptions service_options;
  DiffService reference(service_options);
  PreInternLabels(*reference.label_table());

  ServerFixture fx({}, service_options);
  SimpleClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.server->port()).ok());

  for (int i = 0; i < 16; ++i) {
    DiffRequest direct;
    direct.format = DiffRequest::Format::kSexpr;
    direct.old_doc = OldDoc(i);
    direct.new_doc = NewDoc(i);
    const DiffResponse expected = reference.SubmitSync(std::move(direct));
    ASSERT_TRUE(expected.status.ok());

    WireResponse got;
    ASSERT_TRUE(client.Diff(OldDoc(i), NewDoc(i), kFormatSexpr, &got).ok());
    ASSERT_TRUE(got.ok()) << got.payload;
    EXPECT_EQ(got.payload, expected.script) << "request " << i;
    EXPECT_EQ(got.value, static_cast<uint32_t>(expected.operations));
    EXPECT_EQ(got.rung, static_cast<uint8_t>(expected.rung));
    EXPECT_EQ(got.aux, static_cast<uint32_t>(expected.pruned_subtrees));
  }
}

TEST(NetServerTest, OpenCommitVdiffAndMetricsOpcodes) {
  ServerFixture fx;
  SimpleClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.server->port()).ok());

  WireResponse response;
  ASSERT_TRUE(client.Open("doc-1", OldDoc(0), kFormatSexpr, &response).ok());
  ASSERT_TRUE(response.ok()) << response.payload;

  ASSERT_TRUE(client.Commit("doc-1", NewDoc(0), kFormatSexpr, &response).ok());
  ASSERT_TRUE(response.ok()) << response.payload;
  EXPECT_EQ(response.value, 1u);  // The committed version number.

  ASSERT_TRUE(client.Vdiff("doc-1", 0, 1, &response).ok());
  ASSERT_TRUE(response.ok()) << response.payload;
  EXPECT_GT(response.value, 0u);

  // Unknown store: the error must come back as a response, not a hang.
  ASSERT_TRUE(client.Vdiff("no-such-doc", 0, 1, &response).ok());
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.code(), Code::kNotFound);

  std::string text;
  ASSERT_TRUE(client.Metrics(&text).ok());
  EXPECT_NE(text.find("net_frames_total"), std::string::npos);
  EXPECT_NE(text.find("# TYPE"), std::string::npos);
}

TEST(NetServerTest, MalformedFrameGetsErrorResponseStreamSurvives) {
  ServerFixture fx;
  SimpleClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.server->port()).ok());

  // Valid outer length, invalid opcode: the per-frame error tier.
  WireRequest bad;
  bad.opcode = Opcode::kPing;
  bad.request_id = 77;
  std::string bytes = EncodeRequest(bad);
  bytes[kLenPrefixBytes] = static_cast<char>(0x6E);
  ASSERT_TRUE(client.SendRaw(bytes).ok());

  WireResponse response;
  ASSERT_TRUE(client.Receive(&response).ok());
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.request_id, 77u);  // Correlation survived.

  // The connection is still healthy.
  EXPECT_TRUE(client.Ping().ok());
}

TEST(NetServerTest, OversizedFrameAnsweredThenClosed) {
  ServerFixture fx;
  SimpleClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.server->port()).ok());

  const uint32_t huge = 1u << 30;
  std::string prefix;
  for (int i = 0; i < 4; ++i) {
    prefix.push_back(static_cast<char>((huge >> (8 * i)) & 0xFF));
  }
  ASSERT_TRUE(client.SendRaw(prefix).ok());

  WireResponse response;
  ASSERT_TRUE(client.Receive(&response).ok());
  EXPECT_FALSE(response.ok());  // The fatal tier still answers once...
  const Status eof = client.Receive(&response);
  EXPECT_FALSE(eof.ok());  // ...then the stream is closed.
}

TEST(NetServerTest, PipelinedRequestsCorrelateByRequestId) {
  ServerFixture fx;
  SimpleClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.server->port()).ok());

  constexpr int kPipelined = 60;
  for (int i = 0; i < kPipelined; ++i) {
    WireRequest request;
    request.opcode = Opcode::kDiff;
    request.request_id = 1000 + static_cast<uint64_t>(i);
    request.old_doc = OldDoc(i % 7);
    request.new_doc = NewDoc(i % 7);
    ASSERT_TRUE(client.Send(request).ok());
  }
  std::unordered_map<uint64_t, bool> seen;
  for (int i = 0; i < kPipelined; ++i) {
    WireResponse response;
    ASSERT_TRUE(client.Receive(&response).ok());
    ASSERT_TRUE(response.ok()) << response.payload;
    EXPECT_FALSE(seen[response.request_id]) << "duplicate response";
    seen[response.request_id] = true;
  }
  for (int i = 0; i < kPipelined; ++i) {
    EXPECT_TRUE(seen[1000 + static_cast<uint64_t>(i)]) << "missing " << i;
  }
}

TEST(NetServerTest, ManyConcurrentConnections) {
  NetServerOptions net_options;
  net_options.num_event_threads = 2;
  ServerFixture fx(net_options);

  constexpr int kConns = 96;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int c = 0; c < kConns / 8; ++c) {
        SimpleClient client;
        if (!client.Connect("127.0.0.1", fx.server->port()).ok() ||
            !client.Ping().ok()) {
          ++failures;
          continue;
        }
        WireResponse response;
        if (!client.Diff(OldDoc(t), NewDoc(c), kFormatSexpr, &response).ok() ||
            !response.ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(NetServerTest, ConnectionCapRejectsExtras) {
  NetServerOptions net_options;
  net_options.max_connections = 4;
  ServerFixture fx(net_options);

  std::vector<SimpleClient> clients(4);
  for (auto& c : clients) {
    ASSERT_TRUE(c.Connect("127.0.0.1", fx.server->port()).ok());
    ASSERT_TRUE(c.Ping().ok());
  }
  // The 5th connects at TCP level (the backlog accepts) but the server
  // closes it instead of serving: a request must fail, and the rejection
  // counter must move.
  SimpleClient extra;
  ASSERT_TRUE(extra.Connect("127.0.0.1", fx.server->port()).ok());
  EXPECT_FALSE(extra.Ping().ok());
  EXPECT_GE(fx.service->metrics()
                .counter("net_connections_rejected_total")
                ->Value(),
            1u);
}

TEST(NetServerTest, GracefulShutdownAnswersEveryAcceptedRequest) {
  // The no-drop regression: requests the server has ACCEPTED (decoded off
  // the socket) must each get a response — a real one if it finished
  // inside the drain window, an error response otherwise. Silence is the
  // one forbidden outcome.
  ServerFixture fx;
  SimpleClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.server->port()).ok());

  constexpr uint64_t kRequests = 40;
  for (uint64_t i = 0; i < kRequests; ++i) {
    WireRequest request;
    request.opcode = Opcode::kDiff;
    request.request_id = i;
    request.old_doc = OldDoc(static_cast<int>(i));
    request.new_doc = NewDoc(static_cast<int>(i));
    ASSERT_TRUE(client.Send(request).ok());
  }
  // Wait until every frame is accepted (decoded), so the shutdown race is
  // exactly the one under test.
  Counter* frames = fx.service->metrics().counter("net_frames_total");
  while (frames->Value() < kRequests) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::thread shutdown([&] { fx.server->Shutdown(); });
  uint64_t answered = 0;
  for (uint64_t i = 0; i < kRequests; ++i) {
    WireResponse response;
    if (!client.Receive(&response).ok()) break;
    ++answered;  // OK or error — both are answers.
  }
  shutdown.join();
  EXPECT_EQ(answered, kRequests);
}

TEST(NetServerTest, DrainingConnectionsGetUnavailable) {
  ServerFixture fx;
  SimpleClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.server->port()).ok());
  ASSERT_TRUE(client.Ping().ok());

  std::thread shutdown([&] { fx.server->Shutdown(); });
  // Frames sent during the drain are answered with kUnavailable until the
  // connection closes; either outcome is correct depending on timing, but
  // a hang is not.
  WireRequest request;
  request.opcode = Opcode::kPing;
  request.request_id = 5;
  if (client.Send(request).ok()) {
    WireResponse response;
    const Status received = client.Receive(&response);
    if (received.ok() && !response.ok()) {
      EXPECT_EQ(response.code(), Code::kUnavailable);
    }
  }
  shutdown.join();
}

}  // namespace
}  // namespace net
}  // namespace treediff
