#include "core/script_io.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/diff.h"
#include "gen/doc_gen.h"
#include "gen/edit_sim.h"
#include "tree/builder.h"

namespace treediff {
namespace {

TEST(ScriptIoTest, FormatMatchesPaperNotation) {
  LabelTable labels;
  LabelId sec = labels.Intern("Sec");
  EditScript script;
  script.Append(EditOp::Insert(11, sec, "foo", 1, 4));
  script.Append(EditOp::Move(5, 11, 1));
  script.Append(EditOp::Delete(2));
  script.Append(EditOp::Update(9, "baz", 1.0));
  EXPECT_EQ(FormatEditScript(script, labels),
            "INS((11, Sec, \"foo\"), 1, 4)\n"
            "MOV(5, 11, 1)\n"
            "DEL(2)\n"
            "UPD(9, \"baz\")\n");
}

TEST(ScriptIoTest, ParseRoundTrip) {
  LabelTable labels;
  LabelId s = labels.Intern("sentence");
  EditScript script;
  script.Append(EditOp::Insert(7, s, "hello world", 3, 2));
  script.Append(EditOp::Update(4, "with \"quotes\" and \\slashes\\", 1.0));
  script.Append(EditOp::Move(2, 7, 1));
  script.Append(EditOp::Delete(5));

  const std::string text = FormatEditScript(script, labels);
  auto parsed = ParseEditScript(text, &labels);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 4u);
  const auto& ops = parsed->ops();
  EXPECT_EQ(ops[0].kind, EditOpKind::kInsert);
  EXPECT_EQ(ops[0].node, 7);
  EXPECT_EQ(ops[0].label, s);
  EXPECT_EQ(ops[0].value, "hello world");
  EXPECT_EQ(ops[0].parent, 3);
  EXPECT_EQ(ops[0].position, 2);
  EXPECT_EQ(ops[1].value, "with \"quotes\" and \\slashes\\");
  EXPECT_EQ(ops[2].kind, EditOpKind::kMove);
  EXPECT_EQ(ops[3].kind, EditOpKind::kDelete);
  EXPECT_EQ(ops[3].node, 5);
}

TEST(ScriptIoTest, CommentsAndBlankLinesSkipped) {
  LabelTable labels;
  auto parsed = ParseEditScript(
      "# delta shipped from source db\n"
      "\n"
      "DEL(3)\n"
      "   \n"
      "# trailing comment\n",
      &labels);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 1u);
}

TEST(ScriptIoTest, MalformedLinesRejected) {
  LabelTable labels;
  for (const char* bad :
       {"DEL()", "DEL(x)", "INS((1, S, \"v\"), 2)", "UPD(1)",
        "MOV(1, 2)", "NOP(1)", "DEL(1) extra", "UPD(1, \"unterminated)",
        "INS((1, , \"v\"), 2, 3)"}) {
    auto parsed = ParseEditScript(bad, &labels);
    EXPECT_EQ(parsed.status().code(), Code::kParseError) << bad;
  }
}

TEST(ScriptIoTest, SemanticallyMalformedScriptsRejected) {
  // Scripts that parse syntactically but can never apply cleanly: the
  // parser rejects them up front rather than letting apply fail confusingly.
  LabelTable labels;
  for (const char* bad :
       {"DEL(-1)", "UPD(-7, \"v\")", "INS((-1, S, \"v\"), 2, 3)",
        "INS((1, S, \"v\"), -2, 3)", "INS((4, S, \"v\"), 4, 1)",
        "INS((1, S, \"v\"), 2, 0)", "INS((1, S, \"v\"), 2, -3)",
        "MOV(-5, 2, 1)", "MOV(5, -2, 1)", "MOV(3, 3, 1)", "MOV(5, 2, 0)",
        "INS((9, S, \"a\"), 0, 1)\nINS((9, S, \"b\"), 0, 2)"}) {
    auto parsed = ParseEditScript(bad, &labels);
    EXPECT_EQ(parsed.status().code(), Code::kParseError) << bad;
  }
  // Overflowing integers are syntactic garbage, not a silent wrap (atoi UB).
  EXPECT_EQ(ParseEditScript("DEL(99999999999999999999)", &labels)
                .status()
                .code(),
            Code::kParseError);
  EXPECT_EQ(ParseEditScript("DEL(4294967296)", &labels).status().code(),
            Code::kParseError);
  // Re-inserting an id after other ops is still a duplicate.
  EXPECT_EQ(ParseEditScript("INS((2, S, \"a\"), 0, 1)\n"
                            "DEL(7)\n"
                            "INS((2, S, \"b\"), 0, 1)\n",
                            &labels)
                .status()
                .code(),
            Code::kParseError);
}

TEST(ScriptIoTest, ErrorsCarryLineNumbers) {
  LabelTable labels;
  // Line counting includes blank and comment lines, so the number points at
  // the offending line of the file as an editor shows it.
  auto bad_syntax = ParseEditScript(
      "# header\n"
      "DEL(1)\n"
      "\n"
      "MOV(2, 2, 1)\n",
      &labels);
  ASSERT_FALSE(bad_syntax.ok());
  EXPECT_NE(bad_syntax.status().message().find("line 4"), std::string::npos)
      << bad_syntax.status().ToString();
  EXPECT_NE(bad_syntax.status().message().find("itself as parent"),
            std::string::npos);

  auto dup = ParseEditScript(
      "INS((3, S, \"a\"), 0, 1)\n"
      "UPD(1, \"x\")\n"
      "INS((3, S, \"b\"), 0, 2)\n",
      &labels);
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().message().find("line 3"), std::string::npos)
      << dup.status().ToString();
  EXPECT_NE(dup.status().message().find("duplicate INS id 3"),
            std::string::npos);

  auto negative = ParseEditScript("UPD(3, \"ok\")\nDEL(-4)\n", &labels);
  ASSERT_FALSE(negative.ok());
  EXPECT_NE(negative.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(negative.status().message().find("negative node id"),
            std::string::npos);
}

TEST(ScriptIoTest, ParsedScriptAppliesToTree) {
  // The warehouse scenario: compute a delta, serialize, parse at the other
  // end, apply to the materialized copy.
  auto labels = std::make_shared<LabelTable>();
  Vocabulary vocab(200, 1.0);
  Rng rng(51);
  DocGenParams params;
  params.sections = 3;
  Tree t1 = GenerateDocument(params, vocab, &rng, labels);
  SimulatedVersion v = SimulateNewVersion(t1, 10, {}, vocab, &rng);

  auto diff = DiffTrees(t1, v.new_tree);
  ASSERT_TRUE(diff.ok());
  const std::string wire = FormatEditScript(diff->script, *labels);

  auto parsed = ParseEditScript(wire, labels.get());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Tree materialized = t1.Clone();
  ASSERT_TRUE(parsed->ApplyTo(&materialized).ok());
  EXPECT_TRUE(Tree::Isomorphic(materialized, v.new_tree));
}

TEST(ScriptIoTest, EmptyScript) {
  LabelTable labels;
  EditScript empty;
  EXPECT_EQ(FormatEditScript(empty, labels), "");
  auto parsed = ParseEditScript("", &labels);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

}  // namespace
}  // namespace treediff
