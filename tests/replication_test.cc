// ReplicatedVersionStore: log shipping, quorum acks, and fenced failover.
// Every test here is deterministic — background_ship is off and the test
// drives PumpFollowers() by hand, so each scenario (a follower mid-catch-up
// at promotion time, a zombie writer's stale-epoch record, a torn follower
// tail) is constructed exactly, not hoped for. The nondeterministic sweep
// lives in replication_chaos_test.cc.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/diff_service.h"
#include "store/log.h"
#include "store/replication.h"
#include "store/version_store.h"
#include "tree/builder.h"
#include "util/fault_env.h"
#include "util/metrics.h"

namespace treediff {
namespace {

std::string DocText(int v) {
  std::string s = "(D";
  for (int p = 0; p <= v; ++p) {
    s += " (P (S \"repl" + std::to_string(p) + " body words\"))";
  }
  s += ")";
  return s;
}

/// A three-replica group over independent MemEnvs (three "machines").
/// Optional per-replica fault wrapping is layered by the tests that need
/// it; everything shares one no-op sleep so retry backoff never waits.
struct Cluster {
  static constexpr int kN = 3;
  MemEnv mem[kN];
  std::vector<ReplicaConfig> configs;
  std::unique_ptr<ReplicatedVersionStore> group;

  Status Build(ReplicationOptions options = {},
               std::vector<Env*> envs = {}) {
    options.background_ship = false;
    options.store_options.sleep = [](double) {};
    configs.clear();
    for (int i = 0; i < kN; ++i) {
      ReplicaConfig config;
      Env* env =
          i < static_cast<int>(envs.size()) ? envs[static_cast<size_t>(i)]
                                            : nullptr;
      config.env = env != nullptr ? env : &mem[i];  // Null = plain MemEnv.
      config.path = "r" + std::to_string(i) + ".log";
      configs.push_back(config);
    }
    auto built = ReplicatedVersionStore::Create(
        configs, *ParseSexpr(DocText(0)), {}, options);
    if (!built.ok()) return built.status();
    group = std::move(*built);
    return Status::Ok();
  }

  Status Commit(int v) {
    auto tree = ParseSexpr(DocText(v), group->label_table());
    if (!tree.ok()) return tree.status();
    auto committed = group->Commit(*tree);
    if (!committed.ok()) return committed.status();
    if (*committed != v) {
      return Status::Internal("expected version " + std::to_string(v) +
                              ", got " + std::to_string(*committed));
    }
    return Status::Ok();
  }

  /// Pumps until every follower reports caught_up (or `rounds` runs out —
  /// fault tests converge through repeated rounds).
  bool PumpUntilCaughtUp(int rounds = 200) {
    for (int i = 0; i < rounds; ++i) {
      group->PumpFollowers().IgnoreError();
      bool all = true;
      for (const ReplicaStatus& r : group->Replicas()) {
        if (r.role == ReplicaRole::kFollower && !r.caught_up) all = false;
      }
      if (all) return true;
    }
    return false;
  }

  std::string Bytes(int i) {
    auto bytes = mem[i].FileBytes(configs[static_cast<size_t>(i)].path);
    return bytes.ok() ? *bytes : std::string();
  }
};

void ExpectAllVersionsServed(ReplicatedVersionStore* group, int last) {
  for (int v = 0; v <= last; ++v) {
    auto tree = group->Materialize(v);
    ASSERT_TRUE(tree.ok()) << "version " << v << ": "
                           << tree.status().ToString();
    auto expected = ParseSexpr(DocText(v), group->label_table());
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(Tree::Isomorphic(*tree, *expected)) << "version " << v;
  }
}

TEST(ReplicationTest, FollowersConvergeToByteIdenticalLogs) {
  Cluster c;
  ASSERT_TRUE(c.Build().ok());
  for (int v = 1; v <= 6; ++v) ASSERT_TRUE(c.Commit(v).ok());
  ASSERT_TRUE(c.PumpUntilCaughtUp());

  const std::string primary_bytes = c.Bytes(0);
  ASSERT_FALSE(primary_bytes.empty());
  EXPECT_EQ(c.Bytes(1), primary_bytes);
  EXPECT_EQ(c.Bytes(2), primary_bytes);

  const ReplicationCounters counters = c.group->counters();
  EXPECT_GT(counters.records_shipped, 0u);
  EXPECT_EQ(counters.bytes_shipped, 2 * primary_bytes.size());
  EXPECT_EQ(counters.failovers, 0u);
  EXPECT_EQ(counters.stale_epoch_rejects, 0u);
  ExpectAllVersionsServed(c.group.get(), 6);
}

TEST(ReplicationTest, QuorumCommitAcksOnceMajorityFsynced) {
  Cluster c;
  ReplicationOptions options;
  options.ack_mode = AckMode::kQuorum;
  MetricsRegistry metrics;
  options.metrics = &metrics;
  ASSERT_TRUE(c.Build(options).ok());

  // With no shipper thread, the quorum wait pumps inline — the commit only
  // returns once a majority (primary + at least one follower) has fsynced.
  for (int v = 1; v <= 4; ++v) ASSERT_TRUE(c.Commit(v).ok());

  const uint64_t durable = c.group->primary()->DurableOffset();
  int acked = 0;
  for (const ReplicaStatus& r : c.group->Replicas()) {
    if (r.role == ReplicaRole::kFollower && r.cursor >= durable) ++acked;
  }
  EXPECT_GE(acked + 1, 2) << "no majority at ack time";
  EXPECT_EQ(c.group->counters().quorum_timeouts, 0u);
  EXPECT_GT(metrics.histogram("replication_ack_seconds")->Count(), 0u);
}

TEST(ReplicationTest, QuorumTimeoutReportsUnavailableButStaysDurable) {
  Cluster c;
  FaultPlan dead;
  dead.transient_append_p = 1.0;  // Followers can never append.
  FaultInjectingEnv env1(&c.mem[1], dead);
  FaultInjectingEnv env2(&c.mem[2], dead);
  ReplicationOptions options;
  options.ack_mode = AckMode::kQuorum;
  options.ack_timeout_seconds = 0.05;
  ASSERT_TRUE(c.Build(options, {nullptr, &env1, &env2}).ok());

  auto tree = ParseSexpr(DocText(1), c.group->label_table());
  ASSERT_TRUE(tree.ok());
  auto committed = c.group->Commit(*tree);
  ASSERT_FALSE(committed.ok());
  EXPECT_EQ(committed.status().code(), Code::kUnavailable);
  EXPECT_EQ(c.group->counters().quorum_timeouts, 1u);

  // The contract: the commit IS durable on the primary — the error says
  // only that the replication guarantee was not met.
  EXPECT_EQ(c.group->primary()->VersionCount(), 2);
  ExpectAllVersionsServed(c.group.get(), 1);
}

TEST(ReplicationTest, StalenessBoundGovernsFollowerReads) {
  Cluster c;
  ReplicationOptions options;
  options.max_read_lag_bytes = 1u << 20;  // Any follower qualifies.
  ASSERT_TRUE(c.Build(options).ok());
  ASSERT_TRUE(c.Commit(1).ok());
  ASSERT_TRUE(c.PumpUntilCaughtUp());
  ASSERT_TRUE(c.Commit(2).ok());  // Not yet shipped: followers lag.

  bool lagging = false;
  for (const ReplicaStatus& r : c.group->Replicas()) {
    if (r.role == ReplicaRole::kFollower && r.lag_bytes > 0) lagging = true;
  }
  EXPECT_TRUE(lagging);

  // Version 1 is within every follower's prefix; version 2 only the
  // primary has (a follower read falls through on kOutOfRange). Repeat
  // reads exercise the cached-reader reopen path.
  ExpectAllVersionsServed(c.group.get(), 2);
  ExpectAllVersionsServed(c.group.get(), 2);

  // With a zero staleness bound the lagging followers are skipped and the
  // primary serves everything — same answers.
  Cluster strict;
  ASSERT_TRUE(strict.Build().ok());  // max_read_lag_bytes = 0.
  ASSERT_TRUE(strict.Commit(1).ok());
  ASSERT_TRUE(strict.Commit(2).ok());
  ExpectAllVersionsServed(strict.group.get(), 2);
}

TEST(ReplicationTest, StaleLeaseCommitFencedAfterPromotion) {
  Cluster c;
  ASSERT_TRUE(c.Build().ok());
  ASSERT_TRUE(c.Commit(1).ok());
  ASSERT_TRUE(c.PumpUntilCaughtUp());

  const CommitLease stale = c.group->lease();
  EXPECT_EQ(stale.epoch, 0u);

  auto promoted = c.group->Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_EQ(*promoted, 1);  // Most-caught-up follower, ties to the lowest.
  EXPECT_EQ(c.group->epoch(), 1u);
  EXPECT_EQ(c.group->primary_index(), 1);

  // The deposed primary's writer still holds the old lease: its commit is
  // rejected before touching any log.
  auto tree = ParseSexpr(DocText(2), c.group->label_table());
  ASSERT_TRUE(tree.ok());
  const int versions_before = c.group->primary()->VersionCount();
  auto fenced = c.group->CommitWithLease(*tree, stale);
  ASSERT_FALSE(fenced.ok());
  EXPECT_EQ(fenced.status().code(), Code::kFailedPrecondition);
  EXPECT_NE(fenced.status().ToString().find("fenced"), std::string::npos);
  EXPECT_EQ(c.group->primary()->VersionCount(), versions_before);

  // A fresh lease under the new epoch commits normally.
  ASSERT_TRUE(c.Commit(2).ok());
  ASSERT_TRUE(c.PumpUntilCaughtUp());
  ExpectAllVersionsServed(c.group.get(), 2);
}

TEST(ReplicationTest, PromotionDuringQuorumWaitNeverAcksADroppedCommit) {
  // The ack-wait race: a commit lands on the primary and blocks for
  // quorum; before any follower receives it, a promotion picks a follower
  // whose cursor is BELOW the commit's end offset. The record now exists
  // only on the deposed machine — the wait must fail the commit as
  // unacked, not count cursors that advance along the new primary's
  // (different) byte stream until they spuriously pass the target.
  //
  // Construction, fully deterministic: background shipping with an
  // hour-long poll (the shipper only wakes when a commit signals it),
  // dead follower appends so that one wake accomplishes nothing, then
  // heal follower 1 and promote it while the committer sits in the wait.
  MemEnv mems[3];
  FaultPlan dead;
  dead.transient_append_p = 1.0;
  FaultInjectingEnv env1(&mems[1], dead);
  FaultInjectingEnv env2(&mems[2], dead);
  env1.DisableTransientFaults();  // Quiet for bootstrap.
  env2.DisableTransientFaults();

  std::vector<ReplicaConfig> configs = {
      {&mems[0], "r0.log"}, {&env1, "r1.log"}, {&env2, "r2.log"}};
  ReplicationOptions options;
  options.ack_mode = AckMode::kQuorum;
  options.ack_timeout_seconds = 5.0;  // Fail via timeout only if detection breaks.
  options.poll_interval_seconds = 3600.0;
  options.background_ship = true;
  options.store_options.sleep = [](double) {};
  auto built = ReplicatedVersionStore::Create(configs, *ParseSexpr(DocText(0)),
                                              {}, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ReplicatedVersionStore* group = built->get();
  for (int i = 0; i < 200; ++i) {
    group->PumpFollowers().IgnoreError();
    bool all = true;
    for (const ReplicaStatus& r : group->Replicas()) {
      if (r.role == ReplicaRole::kFollower && !r.caught_up) all = false;
    }
    if (all) break;
  }
  env1.EnableTransientFaults();
  env2.EnableTransientFaults();

  auto tree = ParseSexpr(DocText(1), group->label_table());
  ASSERT_TRUE(tree.ok());
  StatusOr<int> committed = Status::Internal("not run");
  std::thread committer(
      [&] { committed = group->Commit(*tree); });

  // Let the committer reach the wait (its commit itself is instant), then
  // heal follower 1 and promote it. Its cursor still predates the commit:
  // the shipper's one wake hit dead appends and went back to sleep.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  env1.DisableTransientFaults();
  auto promoted = group->Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_EQ(*promoted, 1);
  committer.join();

  ASSERT_FALSE(committed.ok());
  EXPECT_EQ(committed.status().code(), Code::kUnavailable);
  EXPECT_NE(committed.status().ToString().find("failover during ack wait"),
            std::string::npos)
      << committed.status().ToString();

  // The new primary never saw the dropped commit; its version slot is
  // reused under the new epoch and the group serves consistently. (The
  // recommit's quorum needs shipping, and this test parked the shipper on
  // an hour-long poll — pump from here while the commit blocks.)
  env2.DisableTransientFaults();
  EXPECT_EQ(group->primary()->VersionCount(), 1);
  StatusOr<int> recommitted = Status::Internal("not run");
  std::thread recommitter([&] { recommitted = group->Commit(*tree); });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (group->primary()->VersionCount() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    group->PumpFollowers().IgnoreError();
  }
  while (std::chrono::steady_clock::now() < deadline) {
    group->PumpFollowers().IgnoreError();
    bool all = true;
    for (const ReplicaStatus& r : group->Replicas()) {
      if (r.role == ReplicaRole::kFollower && !r.caught_up) all = false;
    }
    if (all) break;
  }
  recommitter.join();
  ASSERT_TRUE(recommitted.ok()) << recommitted.status().ToString();
  EXPECT_EQ(*recommitted, 1);
  ExpectAllVersionsServed(group, 1);
}

TEST(ReplicationTest, PromoteWhileFollowerMidCatchUpThenHeal) {
  Cluster c;
  FaultPlan stuck;
  stuck.transient_append_p = 1.0;  // Replica 2 cannot append for now.
  FaultInjectingEnv env2(&c.mem[2], stuck);
  ASSERT_TRUE(c.Build({}, {nullptr, nullptr, &env2}).ok());

  for (int v = 1; v <= 5; ++v) ASSERT_TRUE(c.Commit(v).ok());
  c.group->PumpFollowers().IgnoreError();  // r1 catches up; r2 stays at 0.

  std::vector<ReplicaStatus> replicas = c.group->Replicas();
  EXPECT_TRUE(replicas[1].caught_up);
  EXPECT_EQ(replicas[2].cursor, 0u);

  // Promote picks the most-caught-up follower — r1, never the laggard.
  auto promoted = c.group->Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_EQ(*promoted, 1);
  EXPECT_EQ(c.group->epoch(), 1u);

  // No acked byte was lost: the new primary serves the full history and
  // accepts new commits under the new epoch.
  ExpectAllVersionsServed(c.group.get(), 5);
  ASSERT_TRUE(c.Commit(6).ok());

  // The mid-catch-up follower heals: its medium recovers, it resumes
  // shipping from the *new* primary (its empty log is trivially a prefix),
  // and the deposed r0 rejoins via a full resync. Everyone converges to
  // the new primary's bytes.
  env2.DisableTransientFaults();
  ASSERT_TRUE(c.group->Rejoin(0).ok());
  ASSERT_TRUE(c.PumpUntilCaughtUp());
  const std::string primary_bytes = c.Bytes(1);
  ASSERT_FALSE(primary_bytes.empty());
  EXPECT_EQ(c.Bytes(0), primary_bytes);
  EXPECT_EQ(c.Bytes(2), primary_bytes);
  EXPECT_GE(c.group->counters().resyncs, 1u);
  ExpectAllVersionsServed(c.group.get(), 6);
}

TEST(ReplicationTest, DoublePromotionRaceExactlyOneEpochWins) {
  Cluster c;
  ASSERT_TRUE(c.Build().ok());
  ASSERT_TRUE(c.Commit(1).ok());
  ASSERT_TRUE(c.PumpUntilCaughtUp());

  // Two failover initiators observed epoch 0 and each try to install their
  // own candidate. The compare-and-swap admits exactly one.
  auto first = c.group->PromoteIfEpoch(1, 0);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = c.group->PromoteIfEpoch(2, 0);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), Code::kFailedPrecondition);
  EXPECT_NE(second.status().ToString().find("lost promotion race"),
            std::string::npos);
  EXPECT_EQ(c.group->epoch(), 1u);
  EXPECT_EQ(c.group->primary_index(), 1);
  EXPECT_EQ(c.group->counters().failovers, 1u);
}

TEST(ReplicationTest, ConcurrentPromotionRaceIsSerialized) {
  Cluster c;
  ASSERT_TRUE(c.Build().ok());
  ASSERT_TRUE(c.Commit(1).ok());
  ASSERT_TRUE(c.PumpUntilCaughtUp());

  Status results[2];
  std::thread t1([&] { results[0] = c.group->PromoteIfEpoch(1, 0).status(); });
  std::thread t2([&] { results[1] = c.group->PromoteIfEpoch(2, 0).status(); });
  t1.join();
  t2.join();

  const int winners = (results[0].ok() ? 1 : 0) + (results[1].ok() ? 1 : 0);
  EXPECT_EQ(winners, 1) << results[0].ToString() << " / "
                        << results[1].ToString();
  EXPECT_EQ(c.group->epoch(), 1u);
  // The group still serves: commit under the winning epoch, converge.
  ASSERT_TRUE(c.Commit(2).ok());
  ASSERT_TRUE(c.PumpUntilCaughtUp());
  ExpectAllVersionsServed(c.group.get(), 2);
}

TEST(ReplicationTest, ZombieWriterStaleEpochRecordRejected) {
  Cluster c;
  ASSERT_TRUE(c.Build().ok());
  ASSERT_TRUE(c.Commit(1).ok());
  ASSERT_TRUE(c.PumpUntilCaughtUp());
  ASSERT_TRUE(c.group->Promote().ok());  // r1 leads at epoch 1.
  ASSERT_TRUE(c.PumpUntilCaughtUp());    // r2 ships the kEpoch record.

  // A zombie writer that never heard about the promotion appends a
  // well-framed epoch-0 record to the new primary's log medium. The CRC is
  // valid — only the fence can catch this.
  {
    auto out = c.mem[1].NewWritableFile(c.configs[1].path, /*truncate=*/false);
    ASSERT_TRUE(out.ok());
    const std::string zombie =
        EncodeLogRecordV2(LogRecordType::kRollback, std::string(1, '\0'),
                          /*epoch=*/0);
    ASSERT_TRUE((*out)->Append(zombie).ok());
    ASSERT_TRUE((*out)->Sync().ok());
  }
  // The real primary commits; its durable offset now covers the zombie's
  // bytes, so the next shipping round reads them.
  ASSERT_TRUE(c.Commit(2).ok());

  const std::string follower_before = c.Bytes(2);
  Status pumped = c.group->PumpFollowers();
  ASSERT_FALSE(pumped.ok());
  EXPECT_EQ(pumped.code(), Code::kFailedPrecondition);
  EXPECT_NE(pumped.ToString().find("stale"), std::string::npos);
  EXPECT_GE(c.group->counters().stale_epoch_rejects, 1u);
  // Rejected means rejected: not one zombie byte reached the follower.
  EXPECT_EQ(c.Bytes(2), follower_before);
}

TEST(ReplicationTest, ScrubCatchesFollowerDivergenceAndResyncs) {
  Cluster c;
  ASSERT_TRUE(c.Build().ok());
  for (int v = 1; v <= 4; ++v) ASSERT_TRUE(c.Commit(v).ok());
  ASSERT_TRUE(c.PumpUntilCaughtUp());

  // Bit rot inside follower 1's verified prefix: its bytes no longer match
  // the CRC chain it acked.
  ASSERT_TRUE(c.mem[1].CorruptByte(c.configs[1].path, kLogMagicSize + 3, 0x40)
                  .ok());
  ASSERT_TRUE(c.group->Scrub().ok());
  EXPECT_EQ(c.group->counters().divergence, 1u);
  EXPECT_GE(c.group->counters().resyncs, 1u);

  // The resync recopies from the primary; everyone converges again.
  ASSERT_TRUE(c.PumpUntilCaughtUp());
  EXPECT_EQ(c.Bytes(1), c.Bytes(0));
  EXPECT_EQ(c.Bytes(2), c.Bytes(0));
  ExpectAllVersionsServed(c.group.get(), 4);
}

TEST(ReplicationTest, PrimaryLogRewriteForcesFollowerResync) {
  Cluster c;
  ASSERT_TRUE(c.Build().ok());
  for (int v = 1; v <= 4; ++v) ASSERT_TRUE(c.Commit(v).ok());
  ASSERT_TRUE(c.PumpUntilCaughtUp());

  // Cold-log corruption on the primary: its own scrub repairs by rotation,
  // which rewrites the log — every follower byte offset is now meaningless
  // and the rotation counter says so.
  ASSERT_TRUE(c.mem[0].CorruptByte(c.configs[0].path, kLogMagicSize + 3, 0x10)
                  .ok());
  ASSERT_TRUE(c.group->Scrub().ok());
  EXPECT_GT(c.group->primary()->rotations(), 0u);

  ASSERT_TRUE(c.PumpUntilCaughtUp());
  EXPECT_GE(c.group->counters().resyncs, 2u);  // Both followers recopied.
  EXPECT_EQ(c.Bytes(1), c.Bytes(0));
  EXPECT_EQ(c.Bytes(2), c.Bytes(0));
  ExpectAllVersionsServed(c.group.get(), 4);
}

TEST(ReplicationTest, TornFollowerTailsHealByTruncateAndRetry) {
  Cluster c;
  FaultPlan flaky;
  flaky.seed = 7;
  flaky.torn_append_p = 0.35;       // Batches tear mid-append...
  flaky.transient_truncate_p = 0.25;  // ...and even the repair flakes.
  FaultInjectingEnv env1(&c.mem[1], flaky);
  FaultPlan flaky_reads;
  flaky_reads.seed = 11;
  flaky_reads.short_read_p = 0.2;  // Shipping reads return short.
  flaky_reads.transient_read_p = 0.1;
  FaultInjectingEnv env0(&c.mem[0], flaky_reads);
  ASSERT_TRUE(c.Build({}, {&env0, &env1}).ok());

  // Interleave commits and shipping rounds so the catch-up path performs
  // many small appends — each one a chance for the plan to tear it.
  for (int v = 1; v <= 8; ++v) {
    ASSERT_TRUE(c.Commit(v).ok());
    ASSERT_TRUE(c.PumpUntilCaughtUp(500));
  }

  EXPECT_GT(env1.transient_faults(), 0u);
  // Despite torn tails and short reads, the converged logs are
  // byte-identical — the truncate-repair discipline never let a garbage
  // prefix survive.
  EXPECT_EQ(c.Bytes(1), c.Bytes(0));
  EXPECT_EQ(c.Bytes(2), c.Bytes(0));
  ExpectAllVersionsServed(c.group.get(), 8);
}

TEST(ReplicationTest, MetricsRegistryMirrorsReplicationActivity) {
  Cluster c;
  MetricsRegistry metrics;
  ReplicationOptions options;
  options.metrics = &metrics;
  ASSERT_TRUE(c.Build(options).ok());
  for (int v = 1; v <= 3; ++v) ASSERT_TRUE(c.Commit(v).ok());
  ASSERT_TRUE(c.PumpUntilCaughtUp());
  ASSERT_TRUE(c.group->Promote().ok());

  EXPECT_GT(metrics.counter("replication_records_shipped_total")->Value(), 0u);
  EXPECT_GT(metrics.counter("replication_bytes_shipped_total")->Value(), 0u);
  EXPECT_EQ(metrics.counter("replication_failovers_total")->Value(), 1u);
  EXPECT_GT(metrics.histogram("replication_follower_lag_bytes")->Count(), 0u);
}

// ---------------------------------------------------------------------------
// DiffService integration: replicated stores behind the circuit breaker.

TEST(ReplicationServiceTest, ServiceRoutesReadsAndCommitsThroughGroup) {
  MemEnv mems[3];
  std::vector<ReplicaConfig> configs;
  for (int i = 0; i < 3; ++i) {
    configs.push_back({&mems[i], "svc" + std::to_string(i) + ".log"});
  }
  DiffServiceOptions options;
  options.num_threads = 2;
  options.sleep = [](double) {};
  DiffService service(options);
  ASSERT_TRUE(
      service.CreateReplicatedStore("doc", DocText(0), configs).ok());

  auto v1 = service.CommitVersion("doc", DocText(1));
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_EQ(*v1, 1);

  DiffRequest request;
  request.doc_id = "doc";
  request.from_version = 0;
  request.to_version = 1;
  DiffResponse response = service.SubmitSync(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_GT(response.operations, 0u);

  std::vector<DiffService::StoreStatus> statuses = service.StoreStatuses();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_TRUE(statuses[0].replicated);
  EXPECT_EQ(statuses[0].repl_epoch, 0u);
  EXPECT_EQ(statuses[0].repl_primary, 0);
  ASSERT_EQ(statuses[0].replicas.size(), 3u);
  EXPECT_EQ(statuses[0].replicas[0].role, ReplicaRole::kPrimary);

  // ScrubNow covers replicated entries (primary log + follower chains).
  EXPECT_EQ(service.ScrubNow(), 1);
}

TEST(ReplicationServiceTest, BreakerOpenPromotesFollowerAndResumesTraffic) {
  // Deterministic "primary dies mid-commit": dry-run the same sequence on
  // a clean env to learn which fsync the failing commit lands on, then arm
  // a terminal fault exactly there.
  uint64_t syncs_through_v1 = 0;
  {
    MemEnv probe_mem;
    FaultInjectingEnv probe(&probe_mem, {});
    MemEnv f1, f2;
    std::vector<ReplicaConfig> configs = {
        {&probe, "p.log"}, {&f1, "f1.log"}, {&f2, "f2.log"}};
    DiffServiceOptions options;
    options.sleep = [](double) {};
    DiffService service(options);
    ASSERT_TRUE(
        service.CreateReplicatedStore("doc", DocText(0), configs).ok());
    ASSERT_TRUE(service.CommitVersion("doc", DocText(1)).ok());
    syncs_through_v1 = probe.sync_calls();
  }
  ASSERT_GT(syncs_through_v1, 0u);

  MemEnv mems[3];
  FaultPlan lethal;
  lethal.crash_during_sync_at = syncs_through_v1 + 1;
  FaultInjectingEnv dying(&mems[0], lethal);
  std::vector<ReplicaConfig> configs = {
      {&dying, "p.log"}, {&mems[1], "f1.log"}, {&mems[2], "f2.log"}};

  DiffServiceOptions options;
  options.sleep = [](double) {};
  options.store_retry_attempts = 1;
  options.breaker_failure_threshold = 1;
  DiffService service(options);
  ASSERT_TRUE(service.CreateReplicatedStore("doc", DocText(0), configs).ok());
  ASSERT_TRUE(service.CommitVersion("doc", DocText(1)).ok());

  // Let the shipper catch the followers up before the primary dies, so the
  // promotion candidate holds every acked byte.
  for (int i = 0; i < 200; ++i) {
    std::vector<DiffService::StoreStatus> statuses = service.StoreStatuses();
    bool all = true;
    for (const ReplicaStatus& r : statuses[0].replicas) {
      if (r.role == ReplicaRole::kFollower && !r.caught_up) all = false;
    }
    if (all) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // This commit's fsync kills the primary's machine. The breaker sees the
  // failure, promotes the most-caught-up follower (fenced epoch bump), and
  // re-runs the same op on the new primary — the commit lands.
  auto v2 = service.CommitVersion("doc", DocText(2));
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ(*v2, 2);
  EXPECT_TRUE(dying.down());
  EXPECT_EQ(service.metrics().counter("store_failovers_total")->Value(), 1u);

  std::vector<DiffService::StoreStatus> statuses = service.StoreStatuses();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].repl_epoch, 1u);
  EXPECT_NE(statuses[0].repl_primary, 0);
  EXPECT_EQ(statuses[0].health, StoreHealth::kHealthy);

  // Traffic resumes under the new epoch: further commits and stored diffs.
  auto v3 = service.CommitVersion("doc", DocText(3));
  ASSERT_TRUE(v3.ok()) << v3.status().ToString();
  DiffRequest request;
  request.doc_id = "doc";
  request.from_version = 1;
  request.to_version = 3;
  DiffResponse response = service.SubmitSync(request);
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
}

}  // namespace
}  // namespace treediff
