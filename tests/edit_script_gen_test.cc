#include "core/edit_script_gen.h"

#include <gtest/gtest.h>

#include <memory>

#include "tree/builder.h"

namespace treediff {
namespace {

struct Fixture {
  std::shared_ptr<LabelTable> labels = std::make_shared<LabelTable>();

  Tree Parse(const std::string& s) { return *ParseSexpr(s, labels); }

  /// Matches nodes of t1/t2 pairwise by (label, value) uniqueness — a
  /// convenience for tests whose values are all distinct.
  Matching MatchByValue(const Tree& t1, const Tree& t2) {
    Matching m(t1.id_bound(), t2.id_bound());
    for (NodeId x : t1.PreOrder()) {
      for (NodeId y : t2.PreOrder()) {
        if (!m.HasT2(y) && t1.label(x) == t2.label(y) &&
            t1.value(x) == t2.value(y)) {
          m.Add(x, y);
          break;
        }
      }
    }
    return m;
  }
};

TEST(EditScriptGenTest, IdenticalTreesYieldEmptyScript) {
  Fixture f;
  Tree t1 = f.Parse("(D (P (S \"a\") (S \"b\")) (P (S \"c\")))");
  Tree t2 = f.Parse("(D (P (S \"a\") (S \"b\")) (P (S \"c\")))");
  auto result = GenerateEditScript(t1, t2, f.MatchByValue(t1, t2));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->script.empty());
  EXPECT_EQ(result->weighted_edit_distance, 0u);
  EXPECT_TRUE(Tree::Isomorphic(result->transformed, t2));
}

TEST(EditScriptGenTest, SingleUpdate) {
  Fixture f;
  Tree t1 = f.Parse("(D (S \"old\"))");
  Tree t2 = f.Parse("(D (S \"new\"))");
  Matching m(t1.id_bound(), t2.id_bound());
  m.Add(t1.root(), t2.root());
  m.Add(t1.children(t1.root())[0], t2.children(t2.root())[0]);
  auto result = GenerateEditScript(t1, t2, m);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->script.size(), 1u);
  EXPECT_EQ(result->script.ops()[0].kind, EditOpKind::kUpdate);
  EXPECT_EQ(result->script.ops()[0].value, "new");
  EXPECT_EQ(result->weighted_edit_distance, 0u);  // Updates weigh zero.
}

TEST(EditScriptGenTest, SingleInsertAtCorrectPosition) {
  Fixture f;
  Tree t1 = f.Parse("(D (S \"a\") (S \"c\"))");
  Tree t2 = f.Parse("(D (S \"a\") (S \"b\") (S \"c\"))");
  auto result = GenerateEditScript(t1, t2, f.MatchByValue(t1, t2));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->script.size(), 1u);
  const EditOp& op = result->script.ops()[0];
  EXPECT_EQ(op.kind, EditOpKind::kInsert);
  EXPECT_EQ(op.value, "b");
  EXPECT_EQ(op.position, 2);
  EXPECT_TRUE(Tree::Isomorphic(result->transformed, t2));
}

TEST(EditScriptGenTest, SingleDelete) {
  Fixture f;
  Tree t1 = f.Parse("(D (S \"a\") (S \"b\") (S \"c\"))");
  Tree t2 = f.Parse("(D (S \"a\") (S \"c\"))");
  auto result = GenerateEditScript(t1, t2, f.MatchByValue(t1, t2));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->script.size(), 1u);
  EXPECT_EQ(result->script.ops()[0].kind, EditOpKind::kDelete);
  EXPECT_TRUE(Tree::Isomorphic(result->transformed, t2));
}

TEST(EditScriptGenTest, DeletesAreBottomUp) {
  Fixture f;
  Tree t1 = f.Parse("(D (P (S \"a\") (S \"b\")) (S \"k\"))");
  Tree t2 = f.Parse("(D (S \"k\"))");
  auto result = GenerateEditScript(t1, t2, f.MatchByValue(t1, t2));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->script.num_deletes(), 3u);
  // Each delete must be a leaf at application time; ApplyTo re-verifies.
  Tree replay = t1.Clone();
  EXPECT_TRUE(result->script.ApplyTo(&replay).ok());
  EXPECT_TRUE(Tree::Isomorphic(replay, t2));
}

TEST(EditScriptGenTest, InterParentMove) {
  Fixture f;
  Tree t1 = f.Parse("(D (P (S \"x\") (S \"y\")) (P (S \"z\")))");
  Tree t2 = f.Parse("(D (P (S \"y\")) (P (S \"z\") (S \"x\")))");
  auto result = GenerateEditScript(t1, t2, f.MatchByValue(t1, t2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->script.num_moves(), 1u);
  EXPECT_EQ(result->inter_parent_moves, 1u);
  EXPECT_EQ(result->intra_parent_moves, 0u);
  EXPECT_EQ(result->weighted_edit_distance, 1u);
  EXPECT_TRUE(Tree::Isomorphic(result->transformed, t2));
}

TEST(EditScriptGenTest, Figure7AlignmentUsesMinimumMoves) {
  // Figure 7: children 2,3,4,5,6 matched to 13,15,12,16,14 respectively —
  // T2 order 12,13,14,15,16 corresponds to T1 children 4,2,6,3,5.
  // LCS keeps 3 nodes fixed; exactly 2 intra-parent moves are needed.
  Fixture f;
  Tree t1 = f.Parse(
      "(D (S \"n2\") (S \"n3\") (S \"n4\") (S \"n5\") (S \"n6\"))");
  Tree t2 = f.Parse(
      "(D (S \"n4\") (S \"n2\") (S \"n6\") (S \"n3\") (S \"n5\"))");
  auto result = GenerateEditScript(t1, t2, f.MatchByValue(t1, t2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->script.size(), result->script.num_moves());
  EXPECT_EQ(result->intra_parent_moves, 2u);
  EXPECT_TRUE(Tree::Isomorphic(result->transformed, t2));
}

TEST(EditScriptGenTest, ReversalNeedsNMinusOneMoves) {
  Fixture f;
  Tree t1 = f.Parse("(D (S \"1\") (S \"2\") (S \"3\") (S \"4\"))");
  Tree t2 = f.Parse("(D (S \"4\") (S \"3\") (S \"2\") (S \"1\"))");
  auto result = GenerateEditScript(t1, t2, f.MatchByValue(t1, t2));
  ASSERT_TRUE(result.ok());
  // LCS of a reversal has length 1: 3 moves.
  EXPECT_EQ(result->intra_parent_moves, 3u);
  EXPECT_TRUE(Tree::Isomorphic(result->transformed, t2));
}

TEST(EditScriptGenTest, MoveWeightIsSubtreeLeafCount) {
  Fixture f;
  Tree t1 = f.Parse(
      "(D (Sec (P (S \"a\") (S \"b\") (S \"c\"))) (Sec (S \"k\")))");
  Tree t2 = f.Parse(
      "(D (Sec) (Sec (S \"k\") (P (S \"a\") (S \"b\") (S \"c\"))))");
  auto result = GenerateEditScript(t1, t2, f.MatchByValue(t1, t2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->script.num_moves(), 1u);
  EXPECT_EQ(result->weighted_edit_distance, 3u);  // Three leaves moved.
  EXPECT_EQ(result->unweighted_edit_distance, 1u);
  EXPECT_TRUE(Tree::Isomorphic(result->transformed, t2));
}

TEST(EditScriptGenTest, MixedScriptConformsToMatching) {
  Fixture f;
  Tree t1 = f.Parse(
      "(D (P (S \"keep\") (S \"gone\")) (P (S \"move me\")) (S \"upd\"))");
  Tree t2 = f.Parse(
      "(D (P (S \"keep\") (S \"move me\") (S \"fresh\")) (P) "
      "(S \"updated!\"))");
  Matching m(t1.id_bound(), t2.id_bound());
  m.Add(t1.root(), t2.root());
  NodeId p1a = t1.children(t1.root())[0];
  NodeId p1b = t1.children(t1.root())[1];
  NodeId p2a = t2.children(t2.root())[0];
  NodeId p2b = t2.children(t2.root())[1];
  m.Add(p1a, p2a);
  m.Add(p1b, p2b);
  m.Add(t1.children(p1a)[0], t2.children(p2a)[0]);  // keep.
  m.Add(t1.children(p1b)[0], t2.children(p2a)[1]);  // move me -> moved.
  m.Add(t1.children(t1.root())[2], t2.children(t2.root())[2]);  // upd.
  auto result = GenerateEditScript(t1, t2, m);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Tree::Isomorphic(result->transformed, t2));
  EXPECT_EQ(result->script.num_inserts(), 1u);   // "fresh".
  EXPECT_EQ(result->script.num_deletes(), 1u);   // "gone".
  EXPECT_EQ(result->script.num_updates(), 1u);   // "upd" -> "updated!".
  EXPECT_EQ(result->script.num_moves(), 1u);     // "move me".
  // Conformance: matched nodes were never inserted or deleted.
  for (const EditOp& op : result->script.ops()) {
    if (op.kind == EditOpKind::kDelete) {
      EXPECT_FALSE(m.HasT1(op.node));
    }
  }
  // M' is total over the transformed tree and t2.
  EXPECT_EQ(result->total_matching.size(), result->transformed.size());
}

TEST(EditScriptGenTest, TheoremC2MinimalityCounts) {
  // Any conforming script contains exactly: one insert per unmatched T2
  // node, one delete per unmatched T1 node, one move per matched pair with
  // unmatched parents, plus minimal alignment moves.
  Fixture f;
  Tree t1 = f.Parse(
      "(D (P (S \"s1\") (S \"s2\")) (P (S \"s3\") (S \"s4\")))");
  Tree t2 = f.Parse(
      "(D (P (S \"s4\") (S \"s1\")) (P (S \"s3\") (S \"new1\") "
      "(S \"new2\")))");
  Matching m = f.MatchByValue(t1, t2);
  auto result = GenerateEditScript(t1, t2, m);
  ASSERT_TRUE(result.ok());

  size_t unmatched_t2 = 0;
  for (NodeId y : t2.PreOrder()) {
    if (!m.HasT2(y)) ++unmatched_t2;
  }
  size_t unmatched_t1 = 0;
  for (NodeId x : t1.PreOrder()) {
    if (!m.HasT1(x)) ++unmatched_t1;
  }
  size_t inter_moves = 0;
  for (auto [x, y] : m.Pairs()) {
    NodeId px = t1.parent(x), py = t2.parent(y);
    if (px == kInvalidNode || py == kInvalidNode) continue;
    if (m.PartnerOfT1(px) != py) ++inter_moves;
  }
  EXPECT_EQ(result->script.num_inserts(), unmatched_t2);
  EXPECT_EQ(result->script.num_deletes(), unmatched_t1);
  EXPECT_EQ(result->inter_parent_moves, inter_moves);
}

TEST(EditScriptGenTest, AutoMatchesRootsWithEqualLabels) {
  Fixture f;
  Tree t1 = f.Parse("(D (S \"a\"))");
  Tree t2 = f.Parse("(D (S \"b\"))");
  Matching empty(t1.id_bound(), t2.id_bound());
  auto result = GenerateEditScript(t1, t2, empty);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Tree::Isomorphic(result->transformed, t2));
}

TEST(EditScriptGenTest, RejectsUnmatchableRoots) {
  Fixture f;
  Tree t1 = f.Parse("(A (S \"a\"))");
  Tree t2 = f.Parse("(B (S \"a\"))");
  Matching empty(t1.id_bound(), t2.id_bound());
  auto result = GenerateEditScript(t1, t2, empty);
  EXPECT_EQ(result.status().code(), Code::kFailedPrecondition);
}

TEST(EditScriptGenTest, WrapRootDeviceHandlesUnmatchableRoots) {
  Fixture f;
  Tree t1 = f.Parse("(A (S \"a\"))");
  Tree t2 = f.Parse("(B (S \"a\"))");
  LabelId dummy = f.labels->Intern("__root__");
  t1.WrapRoot(dummy);
  t2.WrapRoot(dummy);
  Matching m(t1.id_bound(), t2.id_bound());
  // Match the S leaves so they survive the re-rooting.
  m.Add(1, 1);
  auto result = GenerateEditScript(t1, t2, m);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Tree::Isomorphic(result->transformed, t2));
  EXPECT_EQ(result->script.num_inserts(), 1u);  // New B root.
  EXPECT_EQ(result->script.num_deletes(), 1u);  // Old A root.
  EXPECT_EQ(result->script.num_moves(), 1u);    // S moved under B.
}

TEST(EditScriptGenTest, RejectsLabelMismatchedPairs) {
  Fixture f;
  Tree t1 = f.Parse("(D (A \"x\"))");
  Tree t2 = f.Parse("(D (B \"x\"))");
  Matching m(t1.id_bound(), t2.id_bound());
  m.Add(t1.root(), t2.root());
  m.Add(t1.children(t1.root())[0], t2.children(t2.root())[0]);
  auto result = GenerateEditScript(t1, t2, m);
  EXPECT_EQ(result.status().code(), Code::kFailedPrecondition);
}

TEST(EditScriptGenTest, RejectsEmptyTrees) {
  Fixture f;
  Tree t1 = f.Parse("(D)");
  Tree empty(f.labels);
  Matching m(1, 0);
  EXPECT_EQ(GenerateEditScript(t1, empty, m).status().code(),
            Code::kFailedPrecondition);
  EXPECT_EQ(GenerateEditScript(empty, t1, m).status().code(),
            Code::kFailedPrecondition);
}

TEST(EditScriptGenTest, UpdateCostUsesComparator) {
  Fixture f;
  Tree t1 = f.Parse("(D (S \"one two three four\"))");
  Tree t2 = f.Parse("(D (S \"one two three zzz\"))");
  Matching m = (Matching(t1.id_bound(), t2.id_bound()));
  m.Add(t1.root(), t2.root());
  m.Add(t1.children(t1.root())[0], t2.children(t2.root())[0]);
  WordLcsComparator cmp;
  auto result = GenerateEditScript(t1, t2, m, &cmp);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->script.size(), 1u);
  EXPECT_DOUBLE_EQ(result->script.ops()[0].cost, 0.5);
  EXPECT_DOUBLE_EQ(result->script.TotalCost(), 0.5);
}

TEST(EditScriptGenTest, ScriptReplaysOnFreshClone) {
  Fixture f;
  Tree t1 = f.Parse(
      "(D (P (S \"a\") (S \"b\") (S \"c\")) (P (S \"d\")) (P (S \"e\")))");
  Tree t2 = f.Parse(
      "(D (P (S \"d\") (S \"a2\")) (P (S \"c\") (S \"b\") (S \"x\")) "
      "(P (S \"e\")))");
  Matching m = f.MatchByValue(t1, t2);
  auto result = GenerateEditScript(t1, t2, m);
  ASSERT_TRUE(result.ok());
  Tree replay = t1.Clone();
  ASSERT_TRUE(result->script.ApplyTo(&replay).ok());
  EXPECT_TRUE(Tree::Isomorphic(replay, t2));
  EXPECT_TRUE(replay.Validate().ok());
}

}  // namespace
}  // namespace treediff
