// Flow-control and multi-tenant isolation tests over real loopback
// sockets: a slow reader must pause its own stream (never the event loop),
// every accepted request must eventually be answered even under shed
// bursts and expired deadlines, and a flooding tenant must not starve a
// well-behaved one.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/diff_service.h"

namespace treediff {
namespace net {
namespace {

std::string OldDoc(int i) {
  return "(D (P (S \"alpha " + std::to_string(i) +
         " one two three\") (S \"beta common tail\")) "
         "(P (S \"gamma shared base\")))";
}

std::string NewDoc(int i) {
  return "(D (P (S \"alpha " + std::to_string(i) +
         " one two four\") (S \"beta common tail\")) "
         "(P (S \"gamma shared base\") (S \"epsilon new\")))";
}

struct ServerFixture {
  explicit ServerFixture(NetServerOptions net_options = {},
                         DiffServiceOptions service_options = {}) {
    service = std::make_unique<DiffService>(service_options);
    server = std::make_unique<NetServer>(service.get(), net_options);
    const Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  uint64_t Count(const char* name) {
    return service->metrics().counter(name)->Value();
  }

  std::unique_ptr<DiffService> service;
  std::unique_ptr<NetServer> server;
};

TEST(NetBackpressureTest, SlowReaderPausesOnlyItself) {
  // A write-buffer cap larger than the socket's initial send buffer: once
  // the kernel stops taking bytes for the unread connection, responses
  // back up in the server and it must stop READING that connection
  // (net_flow_control_pauses_total moves) instead of buffering without
  // bound — and a second, well-behaved connection must keep being served
  // the whole time.
  NetServerOptions net_options;
  net_options.write_buffer_limit = 32u << 10;
  net_options.max_pipeline = 4096;
  net_options.admission.default_quota.max_queued = 8192;
  ServerFixture fx(net_options);

  SimpleClient slow;
  ASSERT_TRUE(slow.Connect("127.0.0.1", fx.server->port()).ok());

  // Metrics responses are several KB each and cheap to produce: high
  // response volume without diff compute.
  constexpr int kRequests = 400;
  std::thread sender([&] {
    for (int i = 0; i < kRequests; ++i) {
      WireRequest request;
      request.opcode = Opcode::kMetrics;
      request.request_id = static_cast<uint64_t>(i);
      if (!slow.Send(request).ok()) break;
    }
  });

  // The slow reader reads nothing until the pause is observed.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (fx.Count("net_flow_control_pauses_total") == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    // The healthy connection stays responsive while the slow one is
    // paused — the whole point of per-connection flow control.
    SimpleClient healthy;
    ASSERT_TRUE(healthy.Connect("127.0.0.1", fx.server->port()).ok());
    ASSERT_TRUE(healthy.Ping().ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(fx.Count("net_flow_control_pauses_total"), 0u);

  // Now drain: every request must still be answered, in order, none lost.
  int received = 0;
  for (int i = 0; i < kRequests; ++i) {
    WireResponse response;
    if (!slow.Receive(&response).ok()) break;
    ++received;
  }
  sender.join();
  EXPECT_EQ(received, kRequests);
}

TEST(NetBackpressureTest, ShedBurstAnswersEveryRequest) {
  // Quotas far below the burst: most requests are shed, but shed means an
  // error response, never silence — the client can always account for
  // every request it sent.
  NetServerOptions net_options;
  net_options.admission.max_dispatched = 2;
  net_options.admission.default_quota.max_queued = 8;
  ServerFixture fx(net_options);

  SimpleClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.server->port()).ok());

  constexpr int kBurst = 100;
  for (int i = 0; i < kBurst; ++i) {
    WireRequest request;
    request.opcode = Opcode::kDiff;
    request.request_id = static_cast<uint64_t>(i);
    request.old_doc = OldDoc(i);
    request.new_doc = NewDoc(i);
    ASSERT_TRUE(client.Send(request).ok());
  }
  int ok = 0;
  int shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    WireResponse response;
    ASSERT_TRUE(client.Receive(&response).ok()) << "lost response " << i;
    if (response.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(response.code(), Code::kResourceExhausted);
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0);
  EXPECT_GE(fx.Count("net_shed_tenant_quota_total"),
            static_cast<uint64_t>(shed));
}

TEST(NetBackpressureTest, ExpiredDeadlineStillAnswered) {
  ServerFixture fx;
  SimpleClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.server->port()).ok());

  // A 1ms deadline is gone before the worker starts. Whatever the service
  // decides (degrade or refuse), the wire contract is an answer, not a
  // hang.
  WireResponse response;
  ASSERT_TRUE(client.Diff(OldDoc(0), NewDoc(0), kFormatSexpr, &response, "",
                          /*deadline_ms=*/1)
                  .ok());
  // A follow-up request on the same connection still works.
  ASSERT_TRUE(client.Ping().ok());
}

TEST(NetBackpressureTest, FairShareIsolatesFloodingTenant) {
  // The acceptance scenario: one tenant floods far past its quota while a
  // sparse tenant sends polite sequential requests. Every victim request
  // must succeed; the flood is clipped at its quota with error responses.
  NetServerOptions net_options;
  net_options.admission.max_dispatched = 4;
  net_options.admission.tenants["flood"] = TenantQuota{1, 4, 2};
  net_options.admission.tenants["victim"] = TenantQuota{4, 64, 8};
  ServerFixture fx(net_options);

  std::atomic<bool> stop_flood{false};
  std::atomic<int> flood_sent{0};
  std::atomic<int> flood_answered{0};
  std::thread flooder([&] {
    SimpleClient client;
    if (!client.Connect("127.0.0.1", fx.server->port()).ok()) return;
    int inflight = 0;
    while (!stop_flood.load() || inflight > 0) {
      // Keep a deep pipeline of flood requests; drain when stopping.
      if (!stop_flood.load() && inflight < 64) {
        WireRequest request;
        request.opcode = Opcode::kDiff;
        request.request_id = static_cast<uint64_t>(flood_sent.load());
        request.tenant = "flood";
        request.old_doc = OldDoc(flood_sent.load() % 5);
        request.new_doc = NewDoc(flood_sent.load() % 5);
        if (!client.Send(request).ok()) break;
        ++flood_sent;
        ++inflight;
        continue;
      }
      WireResponse response;
      if (!client.Receive(&response).ok()) break;
      --inflight;
      ++flood_answered;
    }
  });

  // Let the flood actually back up before judging isolation: the storm is
  // only a storm once the shed counter moves.
  const auto ramp_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (fx.Count("net_shed_tenant_quota_total") == 0 &&
         std::chrono::steady_clock::now() < ramp_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GT(fx.Count("net_shed_tenant_quota_total"), 0u);

  // The victim runs sequentially through the storm: every request OK.
  SimpleClient victim;
  ASSERT_TRUE(victim.Connect("127.0.0.1", fx.server->port()).ok());
  int victim_ok = 0;
  for (int i = 0; i < 25; ++i) {
    WireResponse response;
    ASSERT_TRUE(victim
                    .Diff(OldDoc(i), NewDoc(i), kFormatSexpr, &response,
                          "victim")
                    .ok());
    if (response.ok()) ++victim_ok;
  }
  stop_flood.store(true);
  flooder.join();
  EXPECT_EQ(victim_ok, 25);
  // The flood was clipped at its quota: sheds happened, and every flood
  // frame got SOME answer (ok or shed) — accounted, not dropped.
  EXPECT_GT(fx.Count("net_shed_tenant_quota_total"), 0u);
  EXPECT_EQ(flood_answered.load(), flood_sent.load());
}

}  // namespace
}  // namespace net
}  // namespace treediff
