#include "doc/markdown_parser.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/diff.h"
#include "doc/markup.h"
#include "tree/schema.h"
#include "util/random.h"

namespace treediff {
namespace {

NodeId Child(const Tree& t, NodeId x, size_t i) { return t.children(x)[i]; }

TEST(MarkdownParserTest, HeadingsAndParagraphs) {
  auto tree = ParseMarkdown(
      "# Title\n\nFirst sentence. Second one.\n\n## Sub\n\nMore text here.");
  ASSERT_TRUE(tree.ok());
  NodeId doc = tree->root();
  ASSERT_EQ(tree->children(doc).size(), 1u);
  NodeId sec = Child(*tree, doc, 0);
  EXPECT_EQ(tree->label_name(sec), "section");
  EXPECT_EQ(tree->value(sec), "Title");
  ASSERT_EQ(tree->children(sec).size(), 2u);
  NodeId para = Child(*tree, sec, 0);
  EXPECT_EQ(tree->label_name(para), "paragraph");
  ASSERT_EQ(tree->children(para).size(), 2u);
  EXPECT_EQ(tree->value(Child(*tree, para, 0)), "First sentence.");
  NodeId sub = Child(*tree, sec, 1);
  EXPECT_EQ(tree->label_name(sub), "subsection");
  EXPECT_EQ(tree->value(sub), "Sub");
}

TEST(MarkdownParserTest, MultiLineParagraphJoins) {
  auto tree = ParseMarkdown("A sentence\nspread over lines. Second.");
  ASSERT_TRUE(tree.ok());
  NodeId para = Child(*tree, tree->root(), 0);
  ASSERT_EQ(tree->children(para).size(), 2u);
  EXPECT_EQ(tree->value(Child(*tree, para, 0)),
            "A sentence spread over lines.");
}

TEST(MarkdownParserTest, BulletKindsMergeIntoOneList) {
  auto tree = ParseMarkdown("- Alpha one.\n- Beta two.\n* Gamma three.");
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ(tree->children(tree->root()).size(), 1u);
  NodeId list = Child(*tree, tree->root(), 0);
  EXPECT_EQ(tree->label_name(list), "list");
  EXPECT_EQ(tree->children(list).size(), 3u);
  NodeId item = Child(*tree, list, 0);
  EXPECT_EQ(tree->label_name(item), "item");
  NodeId para = Child(*tree, item, 0);
  EXPECT_EQ(tree->value(Child(*tree, para, 0)), "Alpha one.");
}

TEST(MarkdownParserTest, OrderedListItems) {
  auto tree = ParseMarkdown("1. First one.\n2. Second one.\n10. Tenth one.");
  ASSERT_TRUE(tree.ok());
  NodeId list = Child(*tree, tree->root(), 0);
  EXPECT_EQ(tree->children(list).size(), 3u);
}

TEST(MarkdownParserTest, BlankLineEndsList) {
  auto tree = ParseMarkdown("- Item one.\n\nPlain paragraph after.");
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ(tree->children(tree->root()).size(), 2u);
  EXPECT_EQ(tree->label_name(Child(*tree, tree->root(), 0)), "list");
  EXPECT_EQ(tree->label_name(Child(*tree, tree->root(), 1)), "paragraph");
}

TEST(MarkdownParserTest, FencedCodeBlockIsOpaque) {
  auto tree = ParseMarkdown(
      "Before text.\n\n```\nint main() { return 0; }\n// Not. A. Sentence.\n"
      "```\n\nAfter text.");
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ(tree->children(tree->root()).size(), 3u);
  NodeId code = Child(*tree, tree->root(), 1);
  EXPECT_EQ(tree->label_name(code), "codeblock");
  EXPECT_EQ(tree->value(code),
            "int main() { return 0; }\n// Not. A. Sentence.\n");
  EXPECT_TRUE(tree->IsLeaf(code));
}

TEST(MarkdownParserTest, UnterminatedFenceTolerated) {
  auto tree = ParseMarkdown("```\ncode without closing fence\n");
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ(tree->children(tree->root()).size(), 1u);
  EXPECT_EQ(tree->label_name(Child(*tree, tree->root(), 0)), "codeblock");
}

TEST(MarkdownParserTest, BlockquotesDiffAsProse) {
  auto tree = ParseMarkdown("> Quoted sentence here.\n> And another one.");
  ASSERT_TRUE(tree.ok());
  NodeId para = Child(*tree, tree->root(), 0);
  EXPECT_EQ(tree->label_name(para), "paragraph");
  EXPECT_EQ(tree->children(para).size(), 2u);
  EXPECT_EQ(tree->value(Child(*tree, para, 0)), "Quoted sentence here.");
}

TEST(MarkdownParserTest, SchemaConformance) {
  auto labels = std::make_shared<LabelTable>();
  LabelSchema schema = MakeDocumentSchema(labels.get());
  auto tree = ParseMarkdown(
      "# A\n\nText one. Text two.\n\n- Item x.\n- Item y.\n\n```\ncode\n```\n",
      labels);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(schema.CheckAcyclic(*tree).ok());
  EXPECT_TRUE(tree->Validate().ok());
}

TEST(MarkdownDiffTest, EndToEndWithMarkdownMarkup) {
  auto labels = std::make_shared<LabelTable>();
  // The section keeps 4 of its 5 leaves (the code block's small edit stays
  // within the leaf threshold), so the heading renders unannotated.
  auto t1 = ParseMarkdown(
      "# Guide\n\nKeep this sentence. Drop this sentence.\n\n"
      "Also keep this one. And this other one.\n\n"
      "```\nsetup();\nconfigure();\nrun();\nold_code();\nteardown();\n```\n",
      labels);
  auto t2 = ParseMarkdown(
      "# Guide\n\nKeep this sentence. Add a brand new one.\n\n"
      "Also keep this one. And this other one.\n\n"
      "```\nsetup();\nconfigure();\nrun();\nnew_code();\nteardown();\n```\n",
      labels);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  auto diff = DiffTrees(*t1, *t2);
  ASSERT_TRUE(diff.ok());
  Tree replay = t1->Clone();
  ASSERT_TRUE(diff->script.ApplyTo(&replay).ok());
  EXPECT_TRUE(Tree::Isomorphic(replay, *t2));

  auto delta = BuildDeltaTree(*t1, *t2, *diff);
  ASSERT_TRUE(delta.ok());
  const std::string md =
      RenderMarkup(*delta, *labels, MarkupFormat::kMarkdown);
  EXPECT_NE(md.find("# Guide"), std::string::npos);
  EXPECT_NE(md.find("**Add a brand new one.**"), std::string::npos);
  EXPECT_NE(md.find("~~Drop this sentence.~~"), std::string::npos);
  EXPECT_NE(md.find("```"), std::string::npos);
}

TEST(MarkdownDiffTest, CodeChangeIsSingleUpdate) {
  auto labels = std::make_shared<LabelTable>();
  auto t1 = ParseMarkdown(
      "Intro sentence stays. Another stays too.\n\n"
      "```\nint x = 1;\nint y = 2;\n```\n",
      labels);
  auto t2 = ParseMarkdown(
      "Intro sentence stays. Another stays too.\n\n"
      "```\nint x = 1;\nint y = 3;\n```\n",
      labels);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  auto diff = DiffTrees(*t1, *t2);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->stats.updates, 1u);  // The whole block, as one unit.
  EXPECT_EQ(diff->stats.inserts, 0u);
  EXPECT_EQ(diff->stats.deletes, 0u);
}

TEST(MarkdownFuzzTest, SurvivesRandomInput) {
  Rng rng(131);
  static const char* kPieces[] = {"# H\n", "## S\n", "- item. ", "1. num. ",
                                  "text one. ", "\n\n", "```\n", "code\n",
                                  "> quote. ", "*", "#", "\n"};
  for (int iter = 0; iter < 80; ++iter) {
    std::string input;
    const size_t tokens = 2 + rng.Uniform(40);
    for (size_t i = 0; i < tokens; ++i) {
      input += kPieces[rng.Uniform(std::size(kPieces))];
    }
    auto tree = ParseMarkdown(input);
    ASSERT_TRUE(tree.ok());
    EXPECT_TRUE(tree->Validate().ok());
  }
}

}  // namespace
}  // namespace treediff
