#include "store/version_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "tree/builder.h"

namespace treediff {
namespace {

std::string SexprForVersion(int v) {
  std::string text;
  for (int i = 0; i <= v; ++i) {
    text += "(S \"word" + std::to_string(i) + " tail\") ";
  }
  return "(D (P " + text + "))";
}

// VersionStore methods are internally serialized (see version_store.h), so
// readers may race a committer without external locking. Run under TSan
// (this test carries the `concurrency` ctest label) this also proves the
// GUARDED_BY annotations describe the locking that actually happens.
TEST(StoreConcurrencyTest, ReadersRaceCommitsSafely) {
  auto labels = std::make_shared<LabelTable>();
  Tree base = *ParseSexpr(SexprForVersion(0), labels);
  VersionStore store(base.Clone());

  constexpr int kCommits = 12;
  std::atomic<bool> done{false};

  std::thread committer([&] {
    for (int v = 1; v <= kCommits; ++v) {
      Tree next = *ParseSexpr(SexprForVersion(v), labels);
      auto r = store.Commit(next);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(*r, v);
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  readers.reserve(3);
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!done.load()) {
        // VersionCount and a subsequent Materialize are two separate
        // critical sections; the count can only grow, so any version it
        // reports stays materializable.
        int count = store.VersionCount();
        ASSERT_GE(count, 1);
        auto tree = store.Materialize(count - 1);
        ASSERT_TRUE(tree.ok());
        EXPECT_GE(tree->size(), 1u);
        VersionStore::VersionInfo info = store.Info(count - 1);
        EXPECT_GT(info.nodes, 0u);
      }
    });
  }

  committer.join();
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(store.VersionCount(), kCommits + 1);
  auto final_tree = store.Materialize(kCommits);
  ASSERT_TRUE(final_tree.ok());
  Tree expected = *ParseSexpr(SexprForVersion(kCommits), labels);
  EXPECT_TRUE(Tree::Isomorphic(*final_tree, expected));
}

}  // namespace
}  // namespace treediff
