#include "gen/doc_gen.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "tree/schema.h"

namespace treediff {
namespace {

TEST(DocGenTest, GeneratesSchemaConformingDocuments) {
  Vocabulary vocab(300, 1.0);
  Rng rng(1);
  auto labels = std::make_shared<LabelTable>();
  LabelSchema schema = MakeDocumentSchema(labels.get());
  DocGenParams params;
  Tree doc = GenerateDocument(params, vocab, &rng, labels);
  EXPECT_TRUE(doc.Validate().ok());
  EXPECT_TRUE(schema.CheckAcyclic(doc).ok());
  EXPECT_EQ(doc.children(doc.root()).size(),
            static_cast<size_t>(params.sections));
}

TEST(DocGenTest, RespectsShapeBounds) {
  Vocabulary vocab(300, 1.0);
  Rng rng(2);
  DocGenParams params;
  params.sections = 3;
  params.min_paragraphs_per_section = 2;
  params.max_paragraphs_per_section = 4;
  params.min_sentences_per_paragraph = 1;
  params.max_sentences_per_paragraph = 2;
  params.list_probability = 0.0;
  auto labels = std::make_shared<LabelTable>();
  Tree doc = GenerateDocument(params, vocab, &rng, labels);
  LabelId para = labels->Find("paragraph");
  for (NodeId sec : doc.children(doc.root())) {
    const size_t paragraphs = doc.children(sec).size();
    EXPECT_GE(paragraphs, 2u);
    EXPECT_LE(paragraphs, 4u);
    for (NodeId p : doc.children(sec)) {
      ASSERT_EQ(doc.label(p), para);
      EXPECT_GE(doc.children(p).size(), 1u);
      EXPECT_LE(doc.children(p).size(), 2u);
    }
  }
}

TEST(DocGenTest, DeterministicGivenSeed) {
  Vocabulary vocab(200, 1.0);
  auto labels = std::make_shared<LabelTable>();
  Rng rng1(42), rng2(42);
  Tree a = GenerateDocument({}, vocab, &rng1, labels);
  Tree b = GenerateDocument({}, vocab, &rng2, labels);
  EXPECT_TRUE(Tree::Isomorphic(a, b));
}

TEST(DocGenTest, DuplicateKnobInjectsDuplicates) {
  Vocabulary vocab(500, 1.0);
  Rng rng(5);
  DocGenParams params;
  params.sections = 6;
  params.duplicate_sentence_probability = 0.3;
  auto labels = std::make_shared<LabelTable>();
  Tree doc = GenerateDocument(params, vocab, &rng, labels);
  std::map<std::string, int> counts;
  size_t leaves = 0;
  for (NodeId s : doc.Leaves()) {
    ++counts[doc.value(s)];
    ++leaves;
  }
  size_t duplicated = 0;
  for (const auto& [value, count] : counts) {
    if (count > 1) duplicated += static_cast<size_t>(count);
  }
  EXPECT_GT(duplicated, leaves / 10);  // Plenty of Criterion 3 violations.
}

TEST(DocGenTest, ZeroDuplicateKnobMostlyUnique) {
  Vocabulary vocab(2000, 0.8);
  Rng rng(6);
  DocGenParams params;
  params.duplicate_sentence_probability = 0.0;
  auto labels = std::make_shared<LabelTable>();
  Tree doc = GenerateDocument(params, vocab, &rng, labels);
  std::map<std::string, int> counts;
  for (NodeId s : doc.Leaves()) ++counts[doc.value(s)];
  size_t duplicated = 0;
  for (const auto& [value, count] : counts) {
    if (count > 1) ++duplicated;
  }
  EXPECT_LT(duplicated, counts.size() / 20);
}

TEST(RebuildFreshTest, PreservesStructureWithDenseIds) {
  Vocabulary vocab(100, 1.0);
  Rng rng(7);
  auto labels = std::make_shared<LabelTable>();
  Tree doc = GenerateDocument({}, vocab, &rng, labels);
  // Punch holes in the id space.
  NodeId victim = doc.Leaves()[0];
  ASSERT_TRUE(doc.DeleteLeaf(victim).ok());
  Tree fresh = RebuildFresh(doc);
  EXPECT_TRUE(Tree::Isomorphic(doc, fresh));
  EXPECT_EQ(fresh.id_bound(), fresh.size());  // Dense.
  EXPECT_EQ(fresh.label_table().get(), doc.label_table().get());
}

TEST(RebuildFreshTest, EmptyTree) {
  Tree empty;
  Tree fresh = RebuildFresh(empty);
  EXPECT_EQ(fresh.size(), 0u);
}

}  // namespace
}  // namespace treediff
