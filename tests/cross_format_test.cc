// Cross-format equivalence: the LaTeX, HTML, and Markdown front ends map
// onto one document schema, so equivalent sources must parse to isomorphic
// trees — which also means documents can be diffed ACROSS formats (e.g., a
// LaTeX original against its HTML rendering).

#include <gtest/gtest.h>

#include <memory>

#include "core/diff.h"
#include "doc/html_parser.h"
#include "doc/latex_parser.h"
#include "doc/markdown_parser.h"

namespace treediff {
namespace {

constexpr const char* kLatexDoc =
    "\\section{Intro}\n"
    "First sentence here. Second sentence sits here.\n\n"
    "Another paragraph now.\n"
    "\\begin{itemize}\n"
    "\\item Alpha item text.\n"
    "\\item Beta item text.\n"
    "\\end{itemize}\n"
    "\\section{Outro}\n"
    "Closing sentence here.\n";

constexpr const char* kHtmlDoc =
    "<h1>Intro</h1>"
    "<p>First sentence here. Second sentence sits here.</p>"
    "<p>Another paragraph now.</p>"
    "<ul><li>Alpha item text.</li><li>Beta item text.</li></ul>"
    "<h1>Outro</h1>"
    "<p>Closing sentence here.</p>";

constexpr const char* kMarkdownDoc =
    "# Intro\n\n"
    "First sentence here. Second sentence sits here.\n\n"
    "Another paragraph now.\n\n"
    "- Alpha item text.\n"
    "- Beta item text.\n\n"
    "# Outro\n\n"
    "Closing sentence here.\n";

TEST(CrossFormatTest, ThreeFrontEndsProduceIsomorphicTrees) {
  auto labels = std::make_shared<LabelTable>();
  auto latex = ParseLatex(kLatexDoc, labels);
  auto html = ParseHtml(kHtmlDoc, labels);
  auto markdown = ParseMarkdown(kMarkdownDoc, labels);
  ASSERT_TRUE(latex.ok());
  ASSERT_TRUE(html.ok());
  ASSERT_TRUE(markdown.ok());
  EXPECT_TRUE(Tree::Isomorphic(*latex, *html))
      << "latex: " << latex->ToDebugString() << "\nhtml:  "
      << html->ToDebugString();
  EXPECT_TRUE(Tree::Isomorphic(*latex, *markdown))
      << "latex:    " << latex->ToDebugString() << "\nmarkdown: "
      << markdown->ToDebugString();
}

TEST(CrossFormatTest, CrossFormatDiffIsEmptyForEquivalentDocs) {
  auto labels = std::make_shared<LabelTable>();
  auto latex = ParseLatex(kLatexDoc, labels);
  auto html = ParseHtml(kHtmlDoc, labels);
  ASSERT_TRUE(latex.ok());
  ASSERT_TRUE(html.ok());
  auto diff = DiffTrees(*latex, *html);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->script.empty())
      << diff->script.ToString(*labels);
}

TEST(CrossFormatTest, CrossFormatDiffFindsRealChanges) {
  // The HTML rendering drifted from the LaTeX source: one sentence edited,
  // one item added. Diffing across formats pinpoints exactly that.
  auto labels = std::make_shared<LabelTable>();
  auto latex = ParseLatex(kLatexDoc, labels);
  auto html = ParseHtml(
      "<h1>Intro</h1>"
      "<p>First sentence here. Second sentence sits CHANGED.</p>"
      "<p>Another paragraph now.</p>"
      "<ul><li>Alpha item text.</li><li>Beta item text.</li>"
      "<li>Gamma item text.</li></ul>"
      "<h1>Outro</h1>"
      "<p>Closing sentence here.</p>",
      labels);
  ASSERT_TRUE(latex.ok());
  ASSERT_TRUE(html.ok());
  auto diff = DiffTrees(*latex, *html);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->stats.updates, 1u);
  // The new item contributes its item + paragraph + sentence inserts.
  EXPECT_GE(diff->stats.inserts, 3u);
  EXPECT_EQ(diff->stats.deletes, 0u);
  Tree replay = latex->Clone();
  ASSERT_TRUE(diff->script.ApplyTo(&replay).ok());
  EXPECT_TRUE(Tree::Isomorphic(replay, *html));
}

}  // namespace
}  // namespace treediff
