// DiffService resilience around attached stores: transient-error retry,
// automatic Repair of a poisoned store, the per-store circuit breaker
// (degraded -> quarantined -> half-open probe -> healthy), and scrubbing
// through the service.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "service/diff_service.h"
#include "store/log.h"
#include "store/version_store.h"
#include "tree/builder.h"
#include "util/fault_env.h"

namespace treediff {
namespace {

std::string DocText(int v) {
  std::string s = "(D";
  for (int p = 0; p <= v; ++p) {
    s += " (P (S \"svc" + std::to_string(p) + " body words\"))";
  }
  s += ")";
  return s;
}

StoreOptions QuietStoreOptions(Env* env) {
  StoreOptions store_options;
  store_options.env = env;
  store_options.checkpoint_interval = 0;  // One sync per commit.
  store_options.sleep = [](double) {};
  return store_options;
}

DiffServiceOptions QuietServiceOptions() {
  DiffServiceOptions options;
  options.num_threads = 2;
  options.sleep = [](double) {};  // No real store-retry waits in tests.
  return options;
}

uint64_t CounterValue(DiffService* service, const std::string& name) {
  return service->metrics().counter(name)->Value();
}

TEST(ServiceResilienceTest, TransientStoreFaultsAreRetriedBehindTheApi) {
  MemEnv mem;
  FaultPlan plan;
  plan.seed = 3;
  plan.transient_append_p = 0.15;
  FaultInjectingEnv env(&mem, plan);

  // Give the store itself no retry budget so every transient fault
  // surfaces to the service as kUnavailable — the layer under test here.
  StoreOptions store_options = QuietStoreOptions(&env);
  store_options.retry.max_attempts = 1;
  StatusOr<VersionStore> store = Status::Internal("never tried");
  for (int i = 0; i < 64 && !store.ok(); ++i) {
    store = VersionStore::Create("svc.log", *ParseSexpr(DocText(0)), {},
                                 store_options);
  }
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  DiffServiceOptions options = QuietServiceOptions();
  options.store_retry_attempts = 6;
  DiffService service(options);
  ASSERT_TRUE(service.AttachStore("doc", &*store).ok());

  for (int v = 1; v <= 8; ++v) {
    StatusOr<int> version = service.CommitVersion("doc", DocText(v));
    ASSERT_TRUE(version.ok()) << "version " << v << ": "
                              << version.status().ToString();
    EXPECT_EQ(*version, v);
  }
  EXPECT_GT(env.transient_faults(), 0u);
  EXPECT_GT(CounterValue(&service, "store_retry_total"), 0u);

  std::vector<DiffService::StoreStatus> statuses = service.StoreStatuses();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].health, StoreHealth::kHealthy);
  EXPECT_EQ(statuses[0].consecutive_failures, 0);
  EXPECT_EQ(statuses[0].versions, 9);
  EXPECT_TRUE(statuses[0].durable);
  service.Shutdown();
}

TEST(ServiceResilienceTest, BreakerTripsFastFailsAndRecoversViaRepair) {
  MemEnv mem;
  FaultPlan plan;
  plan.fail_sync_at = 2;  // Create's fsync is #1; the first commit dies.
  FaultInjectingEnv env(&mem, plan);
  auto store = VersionStore::Create("svc.log", *ParseSexpr(DocText(0)), {},
                                    QuietStoreOptions(&env));
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  DiffServiceOptions options = QuietServiceOptions();
  options.store_retry_attempts = 2;
  options.breaker_failure_threshold = 2;
  options.breaker_cooldown_seconds = 0.05;
  DiffService service(options);
  ASSERT_TRUE(service.AttachStore("doc", &*store).ok());

  // Failure 1: the terminal sync fault fires; the env goes down and the
  // store poisons itself. Server-side error -> degraded.
  StatusOr<int> first = service.CommitVersion("doc", DocText(1));
  ASSERT_FALSE(first.ok());
  {
    auto statuses = service.StoreStatuses();
    ASSERT_EQ(statuses.size(), 1u);
    EXPECT_EQ(statuses[0].health, StoreHealth::kDegraded);
    EXPECT_EQ(statuses[0].consecutive_failures, 1);
  }

  // Failure 2: the service sees the poison (kFailedPrecondition), attempts
  // an automatic Repair, and the repair fails too — the medium is still
  // down. That trips the breaker.
  StatusOr<int> second = service.CommitVersion("doc", DocText(1));
  ASSERT_FALSE(second.ok());
  EXPECT_GE(CounterValue(&service, "store_repairs_total"), 1u);
  EXPECT_EQ(CounterValue(&service, "store_breaker_trips_total"), 1u);
  {
    auto statuses = service.StoreStatuses();
    EXPECT_EQ(statuses[0].health, StoreHealth::kQuarantined);
    EXPECT_STREQ(StoreHealthName(statuses[0].health), "quarantined");
  }

  // Quarantined: requests fast-fail without touching the store.
  StatusOr<int> shed = service.CommitVersion("doc", DocText(1));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), Code::kUnavailable);
  EXPECT_NE(shed.status().message().find("quarantined"), std::string::npos);
  EXPECT_GE(CounterValue(&service, "store_breaker_fast_fails_total"), 1u);

  // The medium comes back; after the cooldown the next request is let
  // through as a half-open probe. It finds the poison, Repair now
  // succeeds, and the retried commit lands.
  env.ClearFault();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  StatusOr<int> probe = service.CommitVersion("doc", DocText(1));
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_EQ(*probe, 1);
  {
    auto statuses = service.StoreStatuses();
    EXPECT_EQ(statuses[0].health, StoreHealth::kHealthy);
    EXPECT_EQ(statuses[0].consecutive_failures, 0);
    EXPECT_GT(statuses[0].faults.rotations, 0u);
  }

  // Back in business end to end: another commit and a stored-mode diff.
  ASSERT_TRUE(service.CommitVersion("doc", DocText(2)).ok());
  DiffRequest request;
  request.doc_id = "doc";
  request.from_version = 0;
  request.to_version = 2;
  DiffResponse response = service.SubmitSync(std::move(request));
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_GT(response.operations, 0u);
  service.Shutdown();
}

TEST(ServiceResilienceTest, ClientErrorsDoNotTripTheBreaker) {
  DiffServiceOptions options = QuietServiceOptions();
  options.breaker_failure_threshold = 2;
  DiffService service(options);
  ASSERT_TRUE(service.CreateStore("doc", DocText(0)).ok());

  for (int i = 0; i < 5; ++i) {
    DiffRequest request;
    request.doc_id = "doc";
    request.from_version = 0;
    request.to_version = 99;  // Out of range: the client's fault.
    DiffResponse response = service.SubmitSync(std::move(request));
    EXPECT_EQ(response.status.code(), Code::kOutOfRange);
  }
  auto statuses = service.StoreStatuses();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].health, StoreHealth::kHealthy);
  EXPECT_EQ(CounterValue(&service, "store_breaker_trips_total"), 0u);
  service.Shutdown();
}

TEST(ServiceResilienceTest, ScrubNowCoversDurableStoresAndFindsBitRot) {
  MemEnv env;
  auto store = VersionStore::Create("svc.log", *ParseSexpr(DocText(0)), {},
                                    QuietStoreOptions(&env));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  for (int v = 1; v <= 4; ++v) {
    ASSERT_TRUE(store->Commit(*ParseSexpr(DocText(v), store->label_table()))
                    .ok());
  }

  DiffService service(QuietServiceOptions());
  ASSERT_TRUE(service.AttachStore("durable", &*store).ok());
  ASSERT_TRUE(service.CreateStore("ephemeral", DocText(0)).ok());

  // Only the durable store is scrubbable.
  EXPECT_EQ(service.ScrubNow(), 1);
  EXPECT_EQ(CounterValue(&service, "store_scrub_runs_total"), 1u);
  EXPECT_EQ(CounterValue(&service, "store_scrub_corruption_total"), 0u);

  // Flip a cold byte; the next pass catches and repairs it.
  auto file = env.NewRandomAccessFile("svc.log");
  ASSERT_TRUE(file.ok());
  auto scan = ScanLog(file->get());
  ASSERT_TRUE(scan.ok());
  ASSERT_GE(scan->records.size(), 2u);
  ASSERT_TRUE(env.CorruptByte("svc.log",
                              scan->records[1].offset + kLogRecordHeaderSize,
                              0x10)
                  .ok());
  EXPECT_EQ(service.ScrubNow(), 1);
  EXPECT_EQ(CounterValue(&service, "store_scrub_corruption_total"), 1u);
  auto statuses = service.StoreStatuses();
  ASSERT_EQ(statuses.size(), 2u);  // Ordered by doc_id: durable first.
  EXPECT_EQ(statuses[0].doc_id, "durable");
  EXPECT_GT(statuses[0].faults.rotations, 0u);
  EXPECT_EQ(statuses[1].doc_id, "ephemeral");
  EXPECT_FALSE(statuses[1].durable);

  // Commits keep landing on the repaired log.
  StatusOr<int> version = service.CommitVersion("durable", DocText(5));
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  EXPECT_EQ(*version, 5);
  service.Shutdown();
}

TEST(ServiceResilienceTest, BackgroundScrubberRunsOnItsTimer) {
  MemEnv env;
  auto store = VersionStore::Create("svc.log", *ParseSexpr(DocText(0)), {},
                                    QuietStoreOptions(&env));
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  DiffServiceOptions options = QuietServiceOptions();
  options.scrub_interval_seconds = 0.01;
  DiffService service(options);
  ASSERT_TRUE(service.AttachStore("doc", &*store).ok());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (CounterValue(&service, "store_scrub_runs_total") == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(CounterValue(&service, "store_scrub_runs_total"), 0u);
  service.Shutdown();  // Must join the scrubber without hanging.
  EXPECT_EQ(store->fault_counters().scrub_corruption, 0u);
}

}  // namespace
}  // namespace treediff
