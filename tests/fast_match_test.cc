#include "core/fast_match.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/match.h"
#include "gen/doc_gen.h"
#include "gen/edit_sim.h"
#include "tree/builder.h"

namespace treediff {
namespace {

struct Fixture {
  std::shared_ptr<LabelTable> labels = std::make_shared<LabelTable>();
  WordLcsComparator cmp;

  Tree Parse(const std::string& s) { return *ParseSexpr(s, labels); }
};

TEST(FastMatchTest, IdenticalTreesMatchCompletely) {
  Fixture f;
  Tree t1 = f.Parse("(D (P (S \"a a\") (S \"b b\")) (P (S \"c c\")))");
  Tree t2 = f.Parse("(D (P (S \"a a\") (S \"b b\")) (P (S \"c c\")))");
  CriteriaEvaluator eval(t1, t2, &f.cmp, {});
  Matching m = ComputeFastMatch(t1, t2, eval);
  EXPECT_EQ(m.size(), 6u);
}

TEST(FastMatchTest, AgreesWithMatchOnIdenticalTrees) {
  Fixture f;
  const std::string doc =
      "(D (P (S \"aa bb cc\") (S \"dd ee ff\")) (P (S \"gg hh ii\")) "
      "(P (S \"jj kk ll\") (S \"mm nn oo\")))";
  Tree t1 = f.Parse(doc);
  Tree t2 = f.Parse(doc);
  CriteriaEvaluator eval1(t1, t2, &f.cmp, {});
  Matching fast = ComputeFastMatch(t1, t2, eval1);
  CriteriaEvaluator eval2(t1, t2, &f.cmp, {});
  Matching slow = ComputeMatch(t1, t2, eval2);
  EXPECT_EQ(fast.Pairs(), slow.Pairs());
}

TEST(FastMatchTest, OutOfOrderNodesStillMatchViaFallback) {
  Fixture f;
  Tree t1 = f.Parse(
      "(D (P (S \"sentence one here\") (S \"sentence two here\") "
      "(S \"sentence three here\")))");
  Tree t2 = f.Parse(
      "(D (P (S \"sentence three here\") (S \"sentence one here\") "
      "(S \"sentence two here\")))");
  CriteriaEvaluator eval(t1, t2, &f.cmp, {});
  Matching m = ComputeFastMatch(t1, t2, eval);
  EXPECT_EQ(m.size(), 5u);  // All sentences + paragraph + document.
}

TEST(FastMatchTest, UsesFewerComparisonsThanMatchWhenTreesAlike) {
  // The regime where Match degrades: every unmatched T2 leaf (an inserted
  // sentence) sits in the candidate chain and is re-compared by each later
  // T1 leaf, giving ~n*e comparisons; FastMatch's LCS pass skips them.
  Fixture f;
  Vocabulary vocab(500, 1.0);
  Rng rng(99);
  DocGenParams params;
  params.sections = 10;
  Tree t1 = GenerateDocument(params, vocab, &rng, f.labels);
  EditMix inserts_only;
  inserts_only.update_sentence = 0.0;
  inserts_only.insert_sentence = 1.0;
  inserts_only.delete_sentence = inserts_only.move_sentence = 0.0;
  inserts_only.move_paragraph = inserts_only.insert_paragraph = 0.0;
  inserts_only.delete_paragraph = 0.0;
  SimulatedVersion v = SimulateNewVersion(t1, 50, inserts_only, vocab, &rng);

  WordLcsComparator cmp_fast, cmp_slow;
  CriteriaEvaluator eval_fast(t1, v.new_tree, &cmp_fast, {});
  Matching fast = ComputeFastMatch(t1, v.new_tree, eval_fast);
  CriteriaEvaluator eval_slow(t1, v.new_tree, &cmp_slow, {});
  Matching slow = ComputeMatch(t1, v.new_tree, eval_slow);

  // Same quality (sizes should coincide on this easy workload)...
  EXPECT_EQ(fast.size(), slow.size());
  // ...with far fewer leaf comparisons (the Section 5.3 claim).
  EXPECT_LT(eval_fast.compare_calls() * 2, eval_slow.compare_calls());
}

TEST(FastMatchTest, SchemaOrderingIsDeterministicNoop) {
  Fixture f;
  LabelSchema schema = MakeDocumentSchema(f.labels.get());
  Tree t1 = f.Parse(
      "(document (section \"h\" (paragraph (sentence \"a b c\"))))");
  Tree t2 = f.Parse(
      "(document (section \"h\" (paragraph (sentence \"a b c\"))))");
  CriteriaEvaluator eval(t1, t2, &f.cmp, {});
  Matching with_schema = ComputeFastMatch(t1, t2, eval, &schema);
  CriteriaEvaluator eval2(t1, t2, &f.cmp, {});
  Matching without = ComputeFastMatch(t1, t2, eval2, nullptr);
  EXPECT_EQ(with_schema.Pairs(), without.Pairs());
}

TEST(FastMatchTest, LeafAndInternalKindsNeverCross) {
  Fixture f;
  // An empty paragraph is structurally a leaf; it must not match a
  // paragraph with children even though labels agree.
  Tree t1 = f.Parse("(D (P))");
  Tree t2 = f.Parse("(D (P (S \"text\")))");
  CriteriaEvaluator eval(t1, t2, &f.cmp, {});
  Matching m = ComputeFastMatch(t1, t2, eval);
  EXPECT_FALSE(m.HasT1(t1.children(t1.root())[0]));
}

TEST(FastMatchTest, PaperRunningExampleFigure1) {
  // Figure 1 / Example 5.1. T1 leaves: a,f | b,c,d | e. T2 leaves:
  // a | e | b,c,g,d. Expected matching: (5,15),(7,16),(8,18),(9,19),(10,17)
  // in paper ids; here we check by value and structure.
  Fixture f;
  Tree t1 = f.Parse(
      "(D (P (S \"a\") (S \"f\")) (P (S \"b\") (S \"c\") (S \"d\")) "
      "(P (S \"e\")))");
  Tree t2 = f.Parse(
      "(D (P (S \"a\")) (P (S \"e\")) (P (S \"b\") (S \"c\") (S \"g\") "
      "(S \"d\")))");
  // Note: P(a,f) vs P(a) has |common|/max = 1/2, so the strict "> t" of
  // Matching Criterion 2 needs t slightly below 1/2 for the paper's stated
  // matching of Example 5.1 (which pairs nodes 2 and 12) to come out.
  ExactComparator exact;
  CriteriaEvaluator eval(
      t1, t2, &exact,
      {.leaf_threshold_f = 0.0, .internal_threshold_t = 0.45});
  Matching m = ComputeFastMatch(t1, t2, eval);

  auto leaf_partner_value = [&](const char* v) -> std::string {
    for (NodeId s : t1.Leaves()) {
      if (t1.value(s) == v) {
        NodeId p = m.PartnerOfT1(s);
        return p == kInvalidNode ? "<none>" : t2.value(p);
      }
    }
    return "<missing>";
  };
  EXPECT_EQ(leaf_partner_value("a"), "a");
  EXPECT_EQ(leaf_partner_value("b"), "b");
  EXPECT_EQ(leaf_partner_value("c"), "c");
  EXPECT_EQ(leaf_partner_value("d"), "d");
  EXPECT_EQ(leaf_partner_value("e"), "e");
  EXPECT_EQ(leaf_partner_value("f"), "<none>");

  // Paragraph pairings: P(a,f)~P(a), P(b,c,d)~P(b,c,g,d), P(e)~P(e);
  // root pairs with root. Total pairs: 5 leaves + 3 P + 1 D = 9.
  EXPECT_EQ(m.size(), 9u);
  NodeId p_bcd = t1.children(t1.root())[1];
  NodeId p_bcgd = t2.children(t2.root())[2];
  EXPECT_EQ(m.PartnerOfT1(p_bcd), p_bcgd);
  NodeId p_af = t1.children(t1.root())[0];
  EXPECT_EQ(m.PartnerOfT1(p_af), t2.children(t2.root())[0]);
  NodeId p_e = t1.children(t1.root())[2];
  EXPECT_EQ(m.PartnerOfT1(p_e), t2.children(t2.root())[1]);
  EXPECT_EQ(m.PartnerOfT1(t1.root()), t2.root());
}

}  // namespace
}  // namespace treediff
