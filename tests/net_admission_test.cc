// TenantScheduler tests: weighted deficit-round-robin dispatch order,
// per-tenant queue and inflight quotas, the distinct-tenant cap that keeps
// a garbage-tenant flood from growing server state, drain/cancel shutdown
// semantics, and the inline-completion trampoline (a shed storm must drain
// at constant stack depth).

#include "net/admission.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/metrics.h"
#include "util/status.h"

namespace treediff {
namespace net {
namespace {

/// A job that records its tag and completes inline when dispatched.
TenantScheduler::Job Recording(std::vector<std::string>* order,
                               std::string tag) {
  return [order, tag = std::move(tag)](TenantScheduler::Done done) {
    order->push_back(tag);
    done();
  };
}

/// A job that parks its completion for the test to fire later.
TenantScheduler::Job Holding(std::vector<TenantScheduler::Done>* parked) {
  return [parked](TenantScheduler::Done done) {
    parked->push_back(std::move(done));
  };
}

std::function<void(const Status&)> NoCancel() {
  return [](const Status&) { ADD_FAILURE() << "unexpected cancel"; };
}

TEST(TenantSchedulerTest, WeightedDeficitRoundRobinOrder) {
  // Window of 1 serializes dispatch, so the DRR order is fully observable:
  // weight-3 tenant A must get exactly 3 dispatches per round to tenant
  // B's 1, even though the window forces one dispatch per pump.
  TenantSchedulerOptions options;
  options.max_dispatched = 1;
  options.tenants["A"] = TenantQuota{3, 256, 64};
  options.tenants["B"] = TenantQuota{1, 256, 64};
  TenantScheduler scheduler(options, nullptr);

  std::vector<TenantScheduler::Done> blocker;
  ASSERT_TRUE(scheduler.Enqueue("Z", Holding(&blocker), NoCancel()).ok());
  ASSERT_EQ(blocker.size(), 1u);  // Occupies the whole window.

  std::vector<std::string> order;
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(scheduler.Enqueue("A", Recording(&order, "A"), NoCancel()).ok());
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(scheduler.Enqueue("B", Recording(&order, "B"), NoCancel()).ok());
  }
  EXPECT_EQ(scheduler.queued(), 12u);
  EXPECT_TRUE(order.empty());

  blocker[0]();  // Release the window; the cascade drains everything.
  ASSERT_TRUE(scheduler.AwaitIdle(5.0));
  const std::vector<std::string> expected = {"A", "A", "A", "B", "A", "A",
                                             "A", "B", "A", "A", "A", "B"};
  EXPECT_EQ(order, expected);
}

TEST(TenantSchedulerTest, EqualWeightsAlternate) {
  TenantSchedulerOptions options;
  options.max_dispatched = 1;
  TenantScheduler scheduler(options, nullptr);

  std::vector<TenantScheduler::Done> blocker;
  ASSERT_TRUE(scheduler.Enqueue("Z", Holding(&blocker), NoCancel()).ok());
  std::vector<std::string> order;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(scheduler.Enqueue("x", Recording(&order, "x"), NoCancel()).ok());
    ASSERT_TRUE(scheduler.Enqueue("y", Recording(&order, "y"), NoCancel()).ok());
  }
  blocker[0]();
  ASSERT_TRUE(scheduler.AwaitIdle(5.0));
  const std::vector<std::string> expected = {"x", "y", "x", "y", "x", "y"};
  EXPECT_EQ(order, expected);
}

TEST(TenantSchedulerTest, QueueQuotaSheds) {
  MetricsRegistry metrics;
  TenantSchedulerOptions options;
  options.max_dispatched = 1;
  options.default_quota.max_queued = 2;
  TenantScheduler scheduler(options, &metrics);

  std::vector<TenantScheduler::Done> blocker;
  ASSERT_TRUE(scheduler.Enqueue("Z", Holding(&blocker), NoCancel()).ok());

  std::vector<std::string> order;
  ASSERT_TRUE(scheduler.Enqueue("t", Recording(&order, "1"), NoCancel()).ok());
  ASSERT_TRUE(scheduler.Enqueue("t", Recording(&order, "2"), NoCancel()).ok());
  const Status shed =
      scheduler.Enqueue("t", Recording(&order, "3"), [](const Status&) {});
  EXPECT_EQ(shed.code(), Code::kResourceExhausted);
  EXPECT_EQ(metrics.counter("net_shed_tenant_quota_total")->Value(), 1u);

  blocker[0]();
  ASSERT_TRUE(scheduler.AwaitIdle(5.0));
  const std::vector<std::string> expected = {"1", "2"};
  EXPECT_EQ(order, expected);  // The shed job never ran.
}

TEST(TenantSchedulerTest, InflightCapHoldsBacklogInOwnQueue) {
  TenantSchedulerOptions options;
  options.max_dispatched = 16;
  options.tenants["capped"] = TenantQuota{1, 256, 2};
  TenantScheduler scheduler(options, nullptr);

  std::vector<TenantScheduler::Done> parked;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(scheduler.Enqueue("capped", Holding(&parked), NoCancel()).ok());
  }
  // Only max_inflight jobs dispatched; the rest wait in the tenant queue
  // without consuming window slots another tenant could use.
  EXPECT_EQ(parked.size(), 2u);
  EXPECT_EQ(scheduler.queued(), 3u);
  EXPECT_EQ(scheduler.dispatched(), 2u);

  std::vector<std::string> other;
  ASSERT_TRUE(
      scheduler.Enqueue("other", Recording(&other, "o"), NoCancel()).ok());
  EXPECT_EQ(other.size(), 1u);  // Unrelated tenant sails through.

  parked[0]();  // One completion admits exactly one more.
  EXPECT_EQ(parked.size(), 3u);
  EXPECT_EQ(scheduler.queued(), 2u);
  // Fire the rest; the index loop tolerates `parked` growing as freed
  // slots admit queued jobs.
  for (size_t next = 1; next < parked.size(); ++next) parked[next]();
  EXPECT_EQ(parked.size(), 5u);
  EXPECT_TRUE(scheduler.AwaitIdle(1.0));
}

TEST(TenantSchedulerTest, DistinctTenantCapShedsNovelTenants) {
  MetricsRegistry metrics;
  TenantSchedulerOptions options;
  options.max_tenants = 2;
  options.tenants["vip"] = TenantQuota{2, 256, 64};
  TenantScheduler scheduler(options, &metrics);

  std::vector<std::string> order;
  ASSERT_TRUE(scheduler.Enqueue("g1", Recording(&order, "a"), NoCancel()).ok());
  ASSERT_TRUE(scheduler.Enqueue("g2", Recording(&order, "b"), NoCancel()).ok());
  // The table is full: a flood of novel tenant ids is shed, state stays put.
  for (int i = 0; i < 50; ++i) {
    const Status shed = scheduler.Enqueue("garbage-" + std::to_string(i),
                                          Recording(&order, "x"),
                                          [](const Status&) {});
    EXPECT_EQ(shed.code(), Code::kResourceExhausted);
  }
  EXPECT_EQ(metrics.counter("net_shed_tenant_cap_total")->Value(), 50u);
  // A configured tenant is admitted past the cap — the operator named it.
  EXPECT_TRUE(scheduler.Enqueue("vip", Recording(&order, "v"), NoCancel()).ok());
  ASSERT_TRUE(scheduler.AwaitIdle(5.0));
  const std::vector<std::string> expected = {"a", "b", "v"};
  EXPECT_EQ(order, expected);
}

TEST(TenantSchedulerTest, DrainRefusesNewWork) {
  TenantScheduler scheduler(TenantSchedulerOptions{}, nullptr);
  scheduler.Drain();
  std::vector<std::string> order;
  const Status refused =
      scheduler.Enqueue("t", Recording(&order, "x"), [](const Status&) {});
  EXPECT_EQ(refused.code(), Code::kUnavailable);
  EXPECT_TRUE(order.empty());
}

TEST(TenantSchedulerTest, CancelQueuedRunsCancelNotRun) {
  MetricsRegistry metrics;
  TenantSchedulerOptions options;
  options.max_dispatched = 1;
  TenantScheduler scheduler(options, &metrics);

  std::vector<TenantScheduler::Done> blocker;
  ASSERT_TRUE(scheduler.Enqueue("Z", Holding(&blocker), NoCancel()).ok());

  std::vector<Status> cancelled;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(scheduler
                    .Enqueue(
                        "t",
                        [](TenantScheduler::Done) {
                          ADD_FAILURE() << "cancelled job must not run";
                        },
                        [&cancelled](const Status& s) {
                          cancelled.push_back(s);
                        })
                    .ok());
  }
  scheduler.Drain();
  EXPECT_EQ(scheduler.CancelQueued(Status::Unavailable("shutting down")), 4u);
  ASSERT_EQ(cancelled.size(), 4u);
  for (const Status& s : cancelled) {
    EXPECT_EQ(s.code(), Code::kUnavailable);
  }
  EXPECT_EQ(metrics.counter("net_jobs_cancelled_total")->Value(), 4u);
  EXPECT_EQ(scheduler.queued(), 0u);

  blocker[0]();  // The dispatched blocker still completes normally.
  EXPECT_TRUE(scheduler.AwaitIdle(5.0));
}

TEST(TenantSchedulerTest, AwaitIdleTimesOutWhileJobHeld) {
  TenantScheduler scheduler(TenantSchedulerOptions{}, nullptr);
  std::vector<TenantScheduler::Done> parked;
  ASSERT_TRUE(scheduler.Enqueue("t", Holding(&parked), NoCancel()).ok());
  EXPECT_FALSE(scheduler.AwaitIdle(0.05));
  parked[0]();
  EXPECT_TRUE(scheduler.AwaitIdle(5.0));
}

TEST(TenantSchedulerTest, InlineCompletionStormStaysFlat) {
  // Every job completes inline on the enqueueing thread — the regression
  // shape for the trampoline: without it, Enqueue -> run -> done -> pump
  // -> run recurses once per queued job and a deep backlog overflows the
  // stack.
  TenantSchedulerOptions options;
  options.max_dispatched = 2;
  options.default_quota.max_queued = 100000;
  TenantScheduler scheduler(options, nullptr);

  std::vector<TenantScheduler::Done> blocker;
  ASSERT_TRUE(scheduler.Enqueue("Z", Holding(&blocker), NoCancel()).ok());
  ASSERT_TRUE(scheduler.Enqueue("Z", Holding(&blocker), NoCancel()).ok());

  int completed = 0;
  for (int i = 0; i < 50000; ++i) {
    ASSERT_TRUE(scheduler
                    .Enqueue(
                        "storm",
                        [&completed](TenantScheduler::Done done) {
                          ++completed;
                          done();
                        },
                        NoCancel())
                    .ok());
  }
  blocker[0]();  // One release drains the entire backlog iteratively.
  EXPECT_EQ(completed, 50000);
  blocker[1]();
  EXPECT_TRUE(scheduler.AwaitIdle(5.0));
}

}  // namespace
}  // namespace net
}  // namespace treediff
