file(REMOVE_RECURSE
  "CMakeFiles/vs_zhang_shasha.dir/vs_zhang_shasha.cc.o"
  "CMakeFiles/vs_zhang_shasha.dir/vs_zhang_shasha.cc.o.d"
  "vs_zhang_shasha"
  "vs_zhang_shasha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_zhang_shasha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
