# Empty dependencies file for vs_zhang_shasha.
# This may be replaced when dependencies are built.
