file(REMOVE_RECURSE
  "CMakeFiles/ablation_quality.dir/ablation_quality.cc.o"
  "CMakeFiles/ablation_quality.dir/ablation_quality.cc.o.d"
  "ablation_quality"
  "ablation_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
