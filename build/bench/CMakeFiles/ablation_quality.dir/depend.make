# Empty dependencies file for ablation_quality.
# This may be replaced when dependencies are built.
