# Empty dependencies file for fig13a_e_vs_d.
# This may be replaced when dependencies are built.
