file(REMOVE_RECURSE
  "CMakeFiles/fig13a_e_vs_d.dir/fig13a_e_vs_d.cc.o"
  "CMakeFiles/fig13a_e_vs_d.dir/fig13a_e_vs_d.cc.o.d"
  "fig13a_e_vs_d"
  "fig13a_e_vs_d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13a_e_vs_d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
