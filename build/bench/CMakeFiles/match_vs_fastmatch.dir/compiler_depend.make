# Empty compiler generated dependencies file for match_vs_fastmatch.
# This may be replaced when dependencies are built.
