file(REMOVE_RECURSE
  "CMakeFiles/match_vs_fastmatch.dir/match_vs_fastmatch.cc.o"
  "CMakeFiles/match_vs_fastmatch.dir/match_vs_fastmatch.cc.o.d"
  "match_vs_fastmatch"
  "match_vs_fastmatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_vs_fastmatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
