# Empty compiler generated dependencies file for table1_mismatch.
# This may be replaced when dependencies are built.
