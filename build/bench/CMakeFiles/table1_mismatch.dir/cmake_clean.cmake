file(REMOVE_RECURSE
  "CMakeFiles/table1_mismatch.dir/table1_mismatch.cc.o"
  "CMakeFiles/table1_mismatch.dir/table1_mismatch.cc.o.d"
  "table1_mismatch"
  "table1_mismatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_mismatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
