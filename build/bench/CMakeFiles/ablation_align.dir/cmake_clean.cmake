file(REMOVE_RECURSE
  "CMakeFiles/ablation_align.dir/ablation_align.cc.o"
  "CMakeFiles/ablation_align.dir/ablation_align.cc.o.d"
  "ablation_align"
  "ablation_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
