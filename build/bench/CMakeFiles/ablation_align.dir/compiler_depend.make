# Empty compiler generated dependencies file for ablation_align.
# This may be replaced when dependencies are built.
