file(REMOVE_RECURSE
  "CMakeFiles/table2_appendix_a.dir/table2_appendix_a.cc.o"
  "CMakeFiles/table2_appendix_a.dir/table2_appendix_a.cc.o.d"
  "table2_appendix_a"
  "table2_appendix_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_appendix_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
