# Empty dependencies file for table2_appendix_a.
# This may be replaced when dependencies are built.
