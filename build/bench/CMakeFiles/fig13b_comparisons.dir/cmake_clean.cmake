file(REMOVE_RECURSE
  "CMakeFiles/fig13b_comparisons.dir/fig13b_comparisons.cc.o"
  "CMakeFiles/fig13b_comparisons.dir/fig13b_comparisons.cc.o.d"
  "fig13b_comparisons"
  "fig13b_comparisons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13b_comparisons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
