# Empty compiler generated dependencies file for fig13b_comparisons.
# This may be replaced when dependencies are built.
