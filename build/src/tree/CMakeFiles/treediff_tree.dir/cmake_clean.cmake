file(REMOVE_RECURSE
  "CMakeFiles/treediff_tree.dir/builder.cc.o"
  "CMakeFiles/treediff_tree.dir/builder.cc.o.d"
  "CMakeFiles/treediff_tree.dir/label.cc.o"
  "CMakeFiles/treediff_tree.dir/label.cc.o.d"
  "CMakeFiles/treediff_tree.dir/schema.cc.o"
  "CMakeFiles/treediff_tree.dir/schema.cc.o.d"
  "CMakeFiles/treediff_tree.dir/tree.cc.o"
  "CMakeFiles/treediff_tree.dir/tree.cc.o.d"
  "libtreediff_tree.a"
  "libtreediff_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treediff_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
