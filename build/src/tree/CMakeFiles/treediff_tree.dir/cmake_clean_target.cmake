file(REMOVE_RECURSE
  "libtreediff_tree.a"
)
