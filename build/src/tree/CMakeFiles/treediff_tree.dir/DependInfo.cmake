
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tree/builder.cc" "src/tree/CMakeFiles/treediff_tree.dir/builder.cc.o" "gcc" "src/tree/CMakeFiles/treediff_tree.dir/builder.cc.o.d"
  "/root/repo/src/tree/label.cc" "src/tree/CMakeFiles/treediff_tree.dir/label.cc.o" "gcc" "src/tree/CMakeFiles/treediff_tree.dir/label.cc.o.d"
  "/root/repo/src/tree/schema.cc" "src/tree/CMakeFiles/treediff_tree.dir/schema.cc.o" "gcc" "src/tree/CMakeFiles/treediff_tree.dir/schema.cc.o.d"
  "/root/repo/src/tree/tree.cc" "src/tree/CMakeFiles/treediff_tree.dir/tree.cc.o" "gcc" "src/tree/CMakeFiles/treediff_tree.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/treediff_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
