# Empty dependencies file for treediff_tree.
# This may be replaced when dependencies are built.
