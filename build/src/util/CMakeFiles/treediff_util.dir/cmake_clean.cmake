file(REMOVE_RECURSE
  "CMakeFiles/treediff_util.dir/random.cc.o"
  "CMakeFiles/treediff_util.dir/random.cc.o.d"
  "CMakeFiles/treediff_util.dir/stats.cc.o"
  "CMakeFiles/treediff_util.dir/stats.cc.o.d"
  "CMakeFiles/treediff_util.dir/status.cc.o"
  "CMakeFiles/treediff_util.dir/status.cc.o.d"
  "CMakeFiles/treediff_util.dir/table.cc.o"
  "CMakeFiles/treediff_util.dir/table.cc.o.d"
  "CMakeFiles/treediff_util.dir/tokenize.cc.o"
  "CMakeFiles/treediff_util.dir/tokenize.cc.o.d"
  "libtreediff_util.a"
  "libtreediff_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treediff_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
