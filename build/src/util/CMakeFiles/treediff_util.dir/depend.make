# Empty dependencies file for treediff_util.
# This may be replaced when dependencies are built.
