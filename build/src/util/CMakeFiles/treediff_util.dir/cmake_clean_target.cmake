file(REMOVE_RECURSE
  "libtreediff_util.a"
)
