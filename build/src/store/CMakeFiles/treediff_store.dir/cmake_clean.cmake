file(REMOVE_RECURSE
  "CMakeFiles/treediff_store.dir/three_way.cc.o"
  "CMakeFiles/treediff_store.dir/three_way.cc.o.d"
  "CMakeFiles/treediff_store.dir/version_store.cc.o"
  "CMakeFiles/treediff_store.dir/version_store.cc.o.d"
  "libtreediff_store.a"
  "libtreediff_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treediff_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
