file(REMOVE_RECURSE
  "libtreediff_store.a"
)
