# Empty compiler generated dependencies file for treediff_store.
# This may be replaced when dependencies are built.
