# Empty dependencies file for treediff_store.
# This may be replaced when dependencies are built.
