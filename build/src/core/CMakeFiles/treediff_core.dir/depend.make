# Empty dependencies file for treediff_core.
# This may be replaced when dependencies are built.
