file(REMOVE_RECURSE
  "CMakeFiles/treediff_core.dir/compare.cc.o"
  "CMakeFiles/treediff_core.dir/compare.cc.o.d"
  "CMakeFiles/treediff_core.dir/cost_model.cc.o"
  "CMakeFiles/treediff_core.dir/cost_model.cc.o.d"
  "CMakeFiles/treediff_core.dir/criteria.cc.o"
  "CMakeFiles/treediff_core.dir/criteria.cc.o.d"
  "CMakeFiles/treediff_core.dir/delta_query.cc.o"
  "CMakeFiles/treediff_core.dir/delta_query.cc.o.d"
  "CMakeFiles/treediff_core.dir/delta_tree.cc.o"
  "CMakeFiles/treediff_core.dir/delta_tree.cc.o.d"
  "CMakeFiles/treediff_core.dir/diff.cc.o"
  "CMakeFiles/treediff_core.dir/diff.cc.o.d"
  "CMakeFiles/treediff_core.dir/edit_script.cc.o"
  "CMakeFiles/treediff_core.dir/edit_script.cc.o.d"
  "CMakeFiles/treediff_core.dir/edit_script_gen.cc.o"
  "CMakeFiles/treediff_core.dir/edit_script_gen.cc.o.d"
  "CMakeFiles/treediff_core.dir/fast_match.cc.o"
  "CMakeFiles/treediff_core.dir/fast_match.cc.o.d"
  "CMakeFiles/treediff_core.dir/keyed_match.cc.o"
  "CMakeFiles/treediff_core.dir/keyed_match.cc.o.d"
  "CMakeFiles/treediff_core.dir/match.cc.o"
  "CMakeFiles/treediff_core.dir/match.cc.o.d"
  "CMakeFiles/treediff_core.dir/matching.cc.o"
  "CMakeFiles/treediff_core.dir/matching.cc.o.d"
  "CMakeFiles/treediff_core.dir/post_process.cc.o"
  "CMakeFiles/treediff_core.dir/post_process.cc.o.d"
  "CMakeFiles/treediff_core.dir/script_io.cc.o"
  "CMakeFiles/treediff_core.dir/script_io.cc.o.d"
  "libtreediff_core.a"
  "libtreediff_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treediff_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
