
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/compare.cc" "src/core/CMakeFiles/treediff_core.dir/compare.cc.o" "gcc" "src/core/CMakeFiles/treediff_core.dir/compare.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/treediff_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/treediff_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/criteria.cc" "src/core/CMakeFiles/treediff_core.dir/criteria.cc.o" "gcc" "src/core/CMakeFiles/treediff_core.dir/criteria.cc.o.d"
  "/root/repo/src/core/delta_query.cc" "src/core/CMakeFiles/treediff_core.dir/delta_query.cc.o" "gcc" "src/core/CMakeFiles/treediff_core.dir/delta_query.cc.o.d"
  "/root/repo/src/core/delta_tree.cc" "src/core/CMakeFiles/treediff_core.dir/delta_tree.cc.o" "gcc" "src/core/CMakeFiles/treediff_core.dir/delta_tree.cc.o.d"
  "/root/repo/src/core/diff.cc" "src/core/CMakeFiles/treediff_core.dir/diff.cc.o" "gcc" "src/core/CMakeFiles/treediff_core.dir/diff.cc.o.d"
  "/root/repo/src/core/edit_script.cc" "src/core/CMakeFiles/treediff_core.dir/edit_script.cc.o" "gcc" "src/core/CMakeFiles/treediff_core.dir/edit_script.cc.o.d"
  "/root/repo/src/core/edit_script_gen.cc" "src/core/CMakeFiles/treediff_core.dir/edit_script_gen.cc.o" "gcc" "src/core/CMakeFiles/treediff_core.dir/edit_script_gen.cc.o.d"
  "/root/repo/src/core/fast_match.cc" "src/core/CMakeFiles/treediff_core.dir/fast_match.cc.o" "gcc" "src/core/CMakeFiles/treediff_core.dir/fast_match.cc.o.d"
  "/root/repo/src/core/keyed_match.cc" "src/core/CMakeFiles/treediff_core.dir/keyed_match.cc.o" "gcc" "src/core/CMakeFiles/treediff_core.dir/keyed_match.cc.o.d"
  "/root/repo/src/core/match.cc" "src/core/CMakeFiles/treediff_core.dir/match.cc.o" "gcc" "src/core/CMakeFiles/treediff_core.dir/match.cc.o.d"
  "/root/repo/src/core/matching.cc" "src/core/CMakeFiles/treediff_core.dir/matching.cc.o" "gcc" "src/core/CMakeFiles/treediff_core.dir/matching.cc.o.d"
  "/root/repo/src/core/post_process.cc" "src/core/CMakeFiles/treediff_core.dir/post_process.cc.o" "gcc" "src/core/CMakeFiles/treediff_core.dir/post_process.cc.o.d"
  "/root/repo/src/core/script_io.cc" "src/core/CMakeFiles/treediff_core.dir/script_io.cc.o" "gcc" "src/core/CMakeFiles/treediff_core.dir/script_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tree/CMakeFiles/treediff_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/treediff_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
