file(REMOVE_RECURSE
  "libtreediff_core.a"
)
