file(REMOVE_RECURSE
  "libtreediff_zs.a"
)
