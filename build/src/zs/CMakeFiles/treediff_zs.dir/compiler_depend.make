# Empty compiler generated dependencies file for treediff_zs.
# This may be replaced when dependencies are built.
