file(REMOVE_RECURSE
  "CMakeFiles/treediff_zs.dir/zhang_shasha.cc.o"
  "CMakeFiles/treediff_zs.dir/zhang_shasha.cc.o.d"
  "libtreediff_zs.a"
  "libtreediff_zs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treediff_zs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
