file(REMOVE_RECURSE
  "CMakeFiles/treediff_doc.dir/html_parser.cc.o"
  "CMakeFiles/treediff_doc.dir/html_parser.cc.o.d"
  "CMakeFiles/treediff_doc.dir/ladiff.cc.o"
  "CMakeFiles/treediff_doc.dir/ladiff.cc.o.d"
  "CMakeFiles/treediff_doc.dir/latex_parser.cc.o"
  "CMakeFiles/treediff_doc.dir/latex_parser.cc.o.d"
  "CMakeFiles/treediff_doc.dir/markdown_parser.cc.o"
  "CMakeFiles/treediff_doc.dir/markdown_parser.cc.o.d"
  "CMakeFiles/treediff_doc.dir/markup.cc.o"
  "CMakeFiles/treediff_doc.dir/markup.cc.o.d"
  "CMakeFiles/treediff_doc.dir/sentence.cc.o"
  "CMakeFiles/treediff_doc.dir/sentence.cc.o.d"
  "CMakeFiles/treediff_doc.dir/xml.cc.o"
  "CMakeFiles/treediff_doc.dir/xml.cc.o.d"
  "libtreediff_doc.a"
  "libtreediff_doc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treediff_doc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
