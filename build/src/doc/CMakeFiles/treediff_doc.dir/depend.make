# Empty dependencies file for treediff_doc.
# This may be replaced when dependencies are built.
