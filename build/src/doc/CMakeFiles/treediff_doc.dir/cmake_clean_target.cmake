file(REMOVE_RECURSE
  "libtreediff_doc.a"
)
