# Empty compiler generated dependencies file for treediff_doc.
# This may be replaced when dependencies are built.
