
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/doc/html_parser.cc" "src/doc/CMakeFiles/treediff_doc.dir/html_parser.cc.o" "gcc" "src/doc/CMakeFiles/treediff_doc.dir/html_parser.cc.o.d"
  "/root/repo/src/doc/ladiff.cc" "src/doc/CMakeFiles/treediff_doc.dir/ladiff.cc.o" "gcc" "src/doc/CMakeFiles/treediff_doc.dir/ladiff.cc.o.d"
  "/root/repo/src/doc/latex_parser.cc" "src/doc/CMakeFiles/treediff_doc.dir/latex_parser.cc.o" "gcc" "src/doc/CMakeFiles/treediff_doc.dir/latex_parser.cc.o.d"
  "/root/repo/src/doc/markdown_parser.cc" "src/doc/CMakeFiles/treediff_doc.dir/markdown_parser.cc.o" "gcc" "src/doc/CMakeFiles/treediff_doc.dir/markdown_parser.cc.o.d"
  "/root/repo/src/doc/markup.cc" "src/doc/CMakeFiles/treediff_doc.dir/markup.cc.o" "gcc" "src/doc/CMakeFiles/treediff_doc.dir/markup.cc.o.d"
  "/root/repo/src/doc/sentence.cc" "src/doc/CMakeFiles/treediff_doc.dir/sentence.cc.o" "gcc" "src/doc/CMakeFiles/treediff_doc.dir/sentence.cc.o.d"
  "/root/repo/src/doc/xml.cc" "src/doc/CMakeFiles/treediff_doc.dir/xml.cc.o" "gcc" "src/doc/CMakeFiles/treediff_doc.dir/xml.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/treediff_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/treediff_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/treediff_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
