file(REMOVE_RECURSE
  "CMakeFiles/treediff_gen.dir/doc_gen.cc.o"
  "CMakeFiles/treediff_gen.dir/doc_gen.cc.o.d"
  "CMakeFiles/treediff_gen.dir/edit_sim.cc.o"
  "CMakeFiles/treediff_gen.dir/edit_sim.cc.o.d"
  "CMakeFiles/treediff_gen.dir/vocab.cc.o"
  "CMakeFiles/treediff_gen.dir/vocab.cc.o.d"
  "libtreediff_gen.a"
  "libtreediff_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treediff_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
