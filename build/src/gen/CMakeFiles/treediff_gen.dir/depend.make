# Empty dependencies file for treediff_gen.
# This may be replaced when dependencies are built.
