file(REMOVE_RECURSE
  "libtreediff_gen.a"
)
