
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/doc_gen.cc" "src/gen/CMakeFiles/treediff_gen.dir/doc_gen.cc.o" "gcc" "src/gen/CMakeFiles/treediff_gen.dir/doc_gen.cc.o.d"
  "/root/repo/src/gen/edit_sim.cc" "src/gen/CMakeFiles/treediff_gen.dir/edit_sim.cc.o" "gcc" "src/gen/CMakeFiles/treediff_gen.dir/edit_sim.cc.o.d"
  "/root/repo/src/gen/vocab.cc" "src/gen/CMakeFiles/treediff_gen.dir/vocab.cc.o" "gcc" "src/gen/CMakeFiles/treediff_gen.dir/vocab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tree/CMakeFiles/treediff_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/treediff_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
