file(REMOVE_RECURSE
  "CMakeFiles/diff_more_test.dir/diff_more_test.cc.o"
  "CMakeFiles/diff_more_test.dir/diff_more_test.cc.o.d"
  "diff_more_test"
  "diff_more_test.pdb"
  "diff_more_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diff_more_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
