# Empty dependencies file for diff_more_test.
# This may be replaced when dependencies are built.
