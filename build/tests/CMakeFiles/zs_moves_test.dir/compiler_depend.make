# Empty compiler generated dependencies file for zs_moves_test.
# This may be replaced when dependencies are built.
