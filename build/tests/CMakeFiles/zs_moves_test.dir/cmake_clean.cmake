file(REMOVE_RECURSE
  "CMakeFiles/zs_moves_test.dir/zs_moves_test.cc.o"
  "CMakeFiles/zs_moves_test.dir/zs_moves_test.cc.o.d"
  "zs_moves_test"
  "zs_moves_test.pdb"
  "zs_moves_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_moves_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
