file(REMOVE_RECURSE
  "CMakeFiles/delta_reconstruct_test.dir/delta_reconstruct_test.cc.o"
  "CMakeFiles/delta_reconstruct_test.dir/delta_reconstruct_test.cc.o.d"
  "delta_reconstruct_test"
  "delta_reconstruct_test.pdb"
  "delta_reconstruct_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_reconstruct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
