# Empty dependencies file for delta_reconstruct_test.
# This may be replaced when dependencies are built.
