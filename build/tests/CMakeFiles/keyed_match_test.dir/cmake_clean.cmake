file(REMOVE_RECURSE
  "CMakeFiles/keyed_match_test.dir/keyed_match_test.cc.o"
  "CMakeFiles/keyed_match_test.dir/keyed_match_test.cc.o.d"
  "keyed_match_test"
  "keyed_match_test.pdb"
  "keyed_match_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyed_match_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
