# Empty dependencies file for keyed_match_test.
# This may be replaced when dependencies are built.
