file(REMOVE_RECURSE
  "CMakeFiles/ladiff_test.dir/ladiff_test.cc.o"
  "CMakeFiles/ladiff_test.dir/ladiff_test.cc.o.d"
  "ladiff_test"
  "ladiff_test.pdb"
  "ladiff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ladiff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
