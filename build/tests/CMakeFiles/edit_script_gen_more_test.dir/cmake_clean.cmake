file(REMOVE_RECURSE
  "CMakeFiles/edit_script_gen_more_test.dir/edit_script_gen_more_test.cc.o"
  "CMakeFiles/edit_script_gen_more_test.dir/edit_script_gen_more_test.cc.o.d"
  "edit_script_gen_more_test"
  "edit_script_gen_more_test.pdb"
  "edit_script_gen_more_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edit_script_gen_more_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
