# Empty compiler generated dependencies file for edit_script_gen_more_test.
# This may be replaced when dependencies are built.
