file(REMOVE_RECURSE
  "CMakeFiles/invert_test.dir/invert_test.cc.o"
  "CMakeFiles/invert_test.dir/invert_test.cc.o.d"
  "invert_test"
  "invert_test.pdb"
  "invert_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
