file(REMOVE_RECURSE
  "CMakeFiles/align_ablation_test.dir/align_ablation_test.cc.o"
  "CMakeFiles/align_ablation_test.dir/align_ablation_test.cc.o.d"
  "align_ablation_test"
  "align_ablation_test.pdb"
  "align_ablation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/align_ablation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
