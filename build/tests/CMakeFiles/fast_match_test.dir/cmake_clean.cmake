file(REMOVE_RECURSE
  "CMakeFiles/fast_match_test.dir/fast_match_test.cc.o"
  "CMakeFiles/fast_match_test.dir/fast_match_test.cc.o.d"
  "fast_match_test"
  "fast_match_test.pdb"
  "fast_match_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_match_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
