# Empty compiler generated dependencies file for fast_match_test.
# This may be replaced when dependencies are built.
