# Empty compiler generated dependencies file for edit_script_property_test.
# This may be replaced when dependencies are built.
