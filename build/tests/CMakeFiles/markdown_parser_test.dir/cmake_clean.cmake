file(REMOVE_RECURSE
  "CMakeFiles/markdown_parser_test.dir/markdown_parser_test.cc.o"
  "CMakeFiles/markdown_parser_test.dir/markdown_parser_test.cc.o.d"
  "markdown_parser_test"
  "markdown_parser_test.pdb"
  "markdown_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markdown_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
