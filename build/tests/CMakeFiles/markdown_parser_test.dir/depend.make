# Empty dependencies file for markdown_parser_test.
# This may be replaced when dependencies are built.
