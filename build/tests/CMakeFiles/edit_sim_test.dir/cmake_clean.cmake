file(REMOVE_RECURSE
  "CMakeFiles/edit_sim_test.dir/edit_sim_test.cc.o"
  "CMakeFiles/edit_sim_test.dir/edit_sim_test.cc.o.d"
  "edit_sim_test"
  "edit_sim_test.pdb"
  "edit_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edit_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
