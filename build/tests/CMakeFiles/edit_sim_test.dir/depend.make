# Empty dependencies file for edit_sim_test.
# This may be replaced when dependencies are built.
