# Empty dependencies file for delta_query_test.
# This may be replaced when dependencies are built.
