file(REMOVE_RECURSE
  "CMakeFiles/delta_query_test.dir/delta_query_test.cc.o"
  "CMakeFiles/delta_query_test.dir/delta_query_test.cc.o.d"
  "delta_query_test"
  "delta_query_test.pdb"
  "delta_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
