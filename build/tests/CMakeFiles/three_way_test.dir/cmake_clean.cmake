file(REMOVE_RECURSE
  "CMakeFiles/three_way_test.dir/three_way_test.cc.o"
  "CMakeFiles/three_way_test.dir/three_way_test.cc.o.d"
  "three_way_test"
  "three_way_test.pdb"
  "three_way_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_way_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
