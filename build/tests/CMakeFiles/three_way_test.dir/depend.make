# Empty dependencies file for three_way_test.
# This may be replaced when dependencies are built.
