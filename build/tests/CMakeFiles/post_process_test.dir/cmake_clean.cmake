file(REMOVE_RECURSE
  "CMakeFiles/post_process_test.dir/post_process_test.cc.o"
  "CMakeFiles/post_process_test.dir/post_process_test.cc.o.d"
  "post_process_test"
  "post_process_test.pdb"
  "post_process_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/post_process_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
