# Empty dependencies file for post_process_test.
# This may be replaced when dependencies are built.
