# Empty compiler generated dependencies file for markup_more_test.
# This may be replaced when dependencies are built.
