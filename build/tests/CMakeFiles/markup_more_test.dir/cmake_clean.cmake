file(REMOVE_RECURSE
  "CMakeFiles/markup_more_test.dir/markup_more_test.cc.o"
  "CMakeFiles/markup_more_test.dir/markup_more_test.cc.o.d"
  "markup_more_test"
  "markup_more_test.pdb"
  "markup_more_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markup_more_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
