# Empty dependencies file for tree_stress_test.
# This may be replaced when dependencies are built.
