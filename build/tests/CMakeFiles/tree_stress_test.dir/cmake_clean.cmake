file(REMOVE_RECURSE
  "CMakeFiles/tree_stress_test.dir/tree_stress_test.cc.o"
  "CMakeFiles/tree_stress_test.dir/tree_stress_test.cc.o.d"
  "tree_stress_test"
  "tree_stress_test.pdb"
  "tree_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
