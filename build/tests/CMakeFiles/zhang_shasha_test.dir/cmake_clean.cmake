file(REMOVE_RECURSE
  "CMakeFiles/zhang_shasha_test.dir/zhang_shasha_test.cc.o"
  "CMakeFiles/zhang_shasha_test.dir/zhang_shasha_test.cc.o.d"
  "zhang_shasha_test"
  "zhang_shasha_test.pdb"
  "zhang_shasha_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zhang_shasha_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
