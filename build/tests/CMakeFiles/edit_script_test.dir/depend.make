# Empty dependencies file for edit_script_test.
# This may be replaced when dependencies are built.
