# Empty dependencies file for delta_tree_test.
# This may be replaced when dependencies are built.
