file(REMOVE_RECURSE
  "CMakeFiles/delta_tree_test.dir/delta_tree_test.cc.o"
  "CMakeFiles/delta_tree_test.dir/delta_tree_test.cc.o.d"
  "delta_tree_test"
  "delta_tree_test.pdb"
  "delta_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
