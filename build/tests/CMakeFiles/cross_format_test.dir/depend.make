# Empty dependencies file for cross_format_test.
# This may be replaced when dependencies are built.
