file(REMOVE_RECURSE
  "CMakeFiles/cross_format_test.dir/cross_format_test.cc.o"
  "CMakeFiles/cross_format_test.dir/cross_format_test.cc.o.d"
  "cross_format_test"
  "cross_format_test.pdb"
  "cross_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
