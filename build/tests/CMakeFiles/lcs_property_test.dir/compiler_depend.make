# Empty compiler generated dependencies file for lcs_property_test.
# This may be replaced when dependencies are built.
