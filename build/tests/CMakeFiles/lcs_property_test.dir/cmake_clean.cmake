file(REMOVE_RECURSE
  "CMakeFiles/lcs_property_test.dir/lcs_property_test.cc.o"
  "CMakeFiles/lcs_property_test.dir/lcs_property_test.cc.o.d"
  "lcs_property_test"
  "lcs_property_test.pdb"
  "lcs_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcs_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
