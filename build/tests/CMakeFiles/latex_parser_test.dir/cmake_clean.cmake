file(REMOVE_RECURSE
  "CMakeFiles/latex_parser_test.dir/latex_parser_test.cc.o"
  "CMakeFiles/latex_parser_test.dir/latex_parser_test.cc.o.d"
  "latex_parser_test"
  "latex_parser_test.pdb"
  "latex_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latex_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
