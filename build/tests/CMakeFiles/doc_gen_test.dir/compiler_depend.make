# Empty compiler generated dependencies file for doc_gen_test.
# This may be replaced when dependencies are built.
