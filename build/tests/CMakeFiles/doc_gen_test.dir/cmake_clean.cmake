file(REMOVE_RECURSE
  "CMakeFiles/doc_gen_test.dir/doc_gen_test.cc.o"
  "CMakeFiles/doc_gen_test.dir/doc_gen_test.cc.o.d"
  "doc_gen_test"
  "doc_gen_test.pdb"
  "doc_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doc_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
