file(REMOVE_RECURSE
  "CMakeFiles/fallback_limit_test.dir/fallback_limit_test.cc.o"
  "CMakeFiles/fallback_limit_test.dir/fallback_limit_test.cc.o.d"
  "fallback_limit_test"
  "fallback_limit_test.pdb"
  "fallback_limit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fallback_limit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
