# Empty dependencies file for fallback_limit_test.
# This may be replaced when dependencies are built.
