
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/matching_test.cc" "tests/CMakeFiles/matching_test.dir/matching_test.cc.o" "gcc" "tests/CMakeFiles/matching_test.dir/matching_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/treediff_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/treediff_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/treediff_util.dir/DependInfo.cmake"
  "/root/repo/build/src/zs/CMakeFiles/treediff_zs.dir/DependInfo.cmake"
  "/root/repo/build/src/doc/CMakeFiles/treediff_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/treediff_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/treediff_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
