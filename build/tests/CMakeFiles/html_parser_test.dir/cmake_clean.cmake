file(REMOVE_RECURSE
  "CMakeFiles/html_parser_test.dir/html_parser_test.cc.o"
  "CMakeFiles/html_parser_test.dir/html_parser_test.cc.o.d"
  "html_parser_test"
  "html_parser_test.pdb"
  "html_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/html_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
