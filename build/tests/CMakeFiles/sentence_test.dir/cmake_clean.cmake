file(REMOVE_RECURSE
  "CMakeFiles/sentence_test.dir/sentence_test.cc.o"
  "CMakeFiles/sentence_test.dir/sentence_test.cc.o.d"
  "sentence_test"
  "sentence_test.pdb"
  "sentence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
