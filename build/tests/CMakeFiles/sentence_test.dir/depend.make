# Empty dependencies file for sentence_test.
# This may be replaced when dependencies are built.
