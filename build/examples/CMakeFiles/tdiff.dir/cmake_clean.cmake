file(REMOVE_RECURSE
  "CMakeFiles/tdiff.dir/tdiff.cpp.o"
  "CMakeFiles/tdiff.dir/tdiff.cpp.o.d"
  "tdiff"
  "tdiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
