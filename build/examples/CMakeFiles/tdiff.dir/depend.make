# Empty dependencies file for tdiff.
# This may be replaced when dependencies are built.
