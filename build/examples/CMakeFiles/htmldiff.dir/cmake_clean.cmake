file(REMOVE_RECURSE
  "CMakeFiles/htmldiff.dir/htmldiff.cpp.o"
  "CMakeFiles/htmldiff.dir/htmldiff.cpp.o.d"
  "htmldiff"
  "htmldiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htmldiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
