# Empty dependencies file for htmldiff.
# This may be replaced when dependencies are built.
