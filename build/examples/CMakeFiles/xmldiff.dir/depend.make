# Empty dependencies file for xmldiff.
# This may be replaced when dependencies are built.
