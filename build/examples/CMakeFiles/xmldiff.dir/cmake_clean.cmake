file(REMOVE_RECURSE
  "CMakeFiles/xmldiff.dir/xmldiff.cpp.o"
  "CMakeFiles/xmldiff.dir/xmldiff.cpp.o.d"
  "xmldiff"
  "xmldiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmldiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
