# Empty compiler generated dependencies file for merge_configs.
# This may be replaced when dependencies are built.
