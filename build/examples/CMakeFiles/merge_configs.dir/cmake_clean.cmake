file(REMOVE_RECURSE
  "CMakeFiles/merge_configs.dir/merge_configs.cpp.o"
  "CMakeFiles/merge_configs.dir/merge_configs.cpp.o.d"
  "merge_configs"
  "merge_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
