file(REMOVE_RECURSE
  "CMakeFiles/keyed_records.dir/keyed_records.cpp.o"
  "CMakeFiles/keyed_records.dir/keyed_records.cpp.o.d"
  "keyed_records"
  "keyed_records.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyed_records.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
