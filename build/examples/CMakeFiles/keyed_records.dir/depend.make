# Empty dependencies file for keyed_records.
# This may be replaced when dependencies are built.
