file(REMOVE_RECURSE
  "CMakeFiles/ladiff.dir/ladiff.cpp.o"
  "CMakeFiles/ladiff.dir/ladiff.cpp.o.d"
  "ladiff"
  "ladiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ladiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
