# Empty compiler generated dependencies file for ladiff.
# This may be replaced when dependencies are built.
