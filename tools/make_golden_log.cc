// Emits a frozen commit-log fixture in the CURRENT format generation
// (TDIFLOG2 since the epoch field landed); GoldenLogTest recovers the
// committed .hex files on every run.
//
// The frozen images are append-only history, one per generation:
//   golden_v1_log.hex — written by the TDIFLOG1 build; NEVER regenerate.
//   golden_v2_log.hex — written by this tool at the TDIFLOG2 freeze.
// If the format changes on purpose, bump the generation (new magic /
// version), keep Open able to read every older one, run this tool into a
// NEW golden_vN_log.hex, and add a FrozenVNLogRecoversExactly test — do
// not overwrite an existing fixture.
//
// Usage: make_golden_log <output-file>
//
// The content mirrors tests/salvage_recovery_test.cc's DocText: versions
// 0..4, one new paragraph per version, checkpoint every 2 commits.

#include <cstdio>
#include <string>

#include "store/version_store.h"
#include "tree/builder.h"
#include "util/fault_env.h"

namespace {

std::string DocText(int v) {
  std::string s = "(D";
  for (int p = 0; p <= v; ++p) {
    s += " (P (S \"para" + std::to_string(p) + " body words\"))";
  }
  s += ")";
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_golden_log <output-file>\n");
    return 2;
  }
  using treediff::MemEnv;
  using treediff::ParseSexpr;
  using treediff::StoreOptions;
  using treediff::VersionStore;

  MemEnv env;
  StoreOptions store_options;
  store_options.env = &env;
  store_options.checkpoint_interval = 2;
  auto store = VersionStore::Create("golden.log", *ParseSexpr(DocText(0)),
                                    {}, store_options);
  if (!store.ok()) {
    std::fprintf(stderr, "create: %s\n", store.status().ToString().c_str());
    return 1;
  }
  for (int v = 1; v <= 4; ++v) {
    auto tree = ParseSexpr(DocText(v), store->label_table());
    if (!tree.ok() || !store->Commit(*tree).ok()) {
      std::fprintf(stderr, "commit %d failed\n", v);
      return 1;
    }
  }
  auto bytes = env.FileBytes("golden.log");
  if (!bytes.ok()) {
    std::fprintf(stderr, "read: %s\n", bytes.status().ToString().c_str());
    return 1;
  }

  std::FILE* out = std::fopen(argv[1], "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }
  for (size_t i = 0; i < bytes->size(); ++i) {
    std::fprintf(out, "%02x%s", static_cast<unsigned char>((*bytes)[i]),
                 (i + 1) % 32 == 0 ? "\n" : "");
  }
  if (bytes->size() % 32 != 0) std::fprintf(out, "\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote %zu bytes (%s)\n", bytes->size(), argv[1]);
  return 0;
}
