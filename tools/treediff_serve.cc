// treediff_serve: the DiffService behind a newline-delimited request
// protocol on stdin/stdout, so any process that can spawn a child and write
// lines can use the concurrent diff service (and so the CI can drive it
// from a shell script).
//
// Requests are one line each, fields separated by tabs. Documents travel
// inline in a field, which works because both front ends accept single-line
// input (s-expressions are single-line by construction; XML documents must
// simply contain no literal newline or tab — whitespace inside text content
// is collapsed by the parser anyway).
//
//   DIFF <format> <old_doc> <new_doc>   diff two inline documents
//   OPEN <doc_id> <format> <base_doc>   create an in-memory version store
//   OPENR <doc_id> <format> <n> <base_doc>
//                                       create a replicated store with n
//                                       replicas (log files under
//                                       --store-dir); commits ship to the
//                                       followers, and a failing primary
//                                       fails over behind the breaker
//   COMMIT <doc_id> <format> <doc>      commit the next version -> OK <v>
//   VDIFF <doc_id> <from> <to>          diff two stored versions
//   STATUS                              per-store health, one line each
//                                       (replicated stores add a REPL line:
//                                       role, epoch, per-follower lag),
//                                       terminated by "."
//   METRICS                             dump the metrics registry
//   QUIT                                exit (EOF works too)
//
// <format> is "sexpr" or "xml". Responses:
//
//   OK [<field>...]      success; DIFF/VDIFF append rung=<name> ops=<n>
//                        degraded=<0|1> cache=<0|1><0|1> pruned=<n>
//                        mcache=<0|1> chain=<0|1>, then the edit script,
//                        one operation per line, terminated by "."
//   ERR <Code> <message> failure (one line)
//
// Usage: treediff_serve [--threads N] [--queue N] [--deadline SECONDS]
//                        [--incremental on|off] [--store-dir DIR]
//
// --incremental (default on) turns on incremental serving: the share-map
// pre-pass prunes unchanged subtrees out of every diff, repeated diffs of
// the same document pair reuse the cached phase-1 matching, and adjacent
// VDIFFs are answered straight from the store's commit log. STATUS gains a
// PRUNE line with the cumulative counters.

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "service/diff_service.h"

namespace {

using treediff::DiffRequest;
using treediff::DiffResponse;
using treediff::DiffRungName;
using treediff::DiffService;
using treediff::DiffServiceOptions;

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  for (;;) {
    const size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

/// Strict base-10 integer parse. std::atoi silently maps garbage to 0,
/// which on the wire turned "VDIFF doc x y" into a perfectly plausible
/// diff of version 0 against itself — an error path dropped before the
/// [[nodiscard]] discipline made such swallowing a policy violation.
bool ParseInt(const std::string& text, int* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  if (v < INT_MIN || v > INT_MAX) return false;
  *out = static_cast<int>(v);
  return true;
}

bool ParseFormat(const std::string& name, DiffRequest::Format* format) {
  if (name == "sexpr") {
    *format = DiffRequest::Format::kSexpr;
    return true;
  }
  if (name == "xml") {
    *format = DiffRequest::Format::kXml;
    return true;
  }
  return false;
}

void PrintError(const treediff::Status& status) {
  std::cout << "ERR " << treediff::CodeName(status.code()) << " "
            << status.message() << "\n";
}

void PrintDiffResponse(const DiffResponse& response) {
  if (!response.status.ok()) {
    PrintError(response.status);
    return;
  }
  std::cout << "OK rung=" << DiffRungName(response.rung)
            << " ops=" << response.operations
            << " degraded=" << (response.degraded ? 1 : 0) << " cache="
            << (response.cache_hit_old ? 1 : 0)
            << (response.cache_hit_new ? 1 : 0)
            << " pruned=" << response.pruned_subtrees
            << " mcache=" << (response.matching_cache_hit ? 1 : 0)
            << " chain=" << (response.chain_log_hit ? 1 : 0) << "\n";
  std::cout << response.script;
  std::cout << ".\n";
}

}  // namespace

int main(int argc, char** argv) {
  DiffServiceOptions options;
  options.incremental = true;  // The serving tool defaults to incremental.
  double default_deadline = 0.0;
  std::string store_dir = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr || !ParseInt(v, &options.num_threads)) {
        std::fprintf(stderr, "treediff_serve: --threads wants an integer\n");
        return 2;
      }
    } else if (arg == "--queue") {
      const char* v = next();
      int queue = 0;
      if (v == nullptr || !ParseInt(v, &queue) || queue < 1) {
        std::fprintf(stderr,
                     "treediff_serve: --queue wants a positive integer\n");
        return 2;
      }
      options.queue_capacity = static_cast<size_t>(queue);
    } else if (arg == "--deadline") {
      const char* v = next();
      char* end = nullptr;
      default_deadline = v != nullptr ? std::strtod(v, &end) : 0.0;
      if (v == nullptr || end != v + std::strlen(v) || default_deadline < 0) {
        std::fprintf(stderr,
                     "treediff_serve: --deadline wants seconds (>= 0)\n");
        return 2;
      }
    } else if (arg == "--store-dir") {
      const char* v = next();
      if (v == nullptr || *v == '\0') {
        std::fprintf(stderr, "treediff_serve: --store-dir wants a path\n");
        return 2;
      }
      store_dir = v;
    } else if (arg == "--incremental") {
      const char* v = next();
      if (v != nullptr && std::strcmp(v, "on") == 0) {
        options.incremental = true;
      } else if (v != nullptr && std::strcmp(v, "off") == 0) {
        options.incremental = false;
      } else {
        std::fprintf(stderr,
                     "treediff_serve: --incremental wants on|off\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: treediff_serve [--threads N] [--queue N] "
                   "[--deadline SECONDS] [--incremental on|off] "
                   "[--store-dir DIR]\n");
      return 2;
    }
  }
  options.default_deadline_seconds = default_deadline;

  DiffService service(options);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> f = SplitTabs(line);
    const std::string& cmd = f[0];

    if (cmd == "QUIT") break;

    if (cmd == "STATUS") {
      treediff::MetricsRegistry& m = service.metrics();
      std::cout << "PRUNE subtrees="
                << m.counter("diff_prune_subtrees_total")->Value()
                << " nodes=" << m.counter("diff_prune_nodes_total")->Value()
                << " collisions="
                << m.counter("diff_prune_collisions_total")->Value()
                << " mcache_hits="
                << m.counter("diff_match_cache_hits_total")->Value()
                << " chain_hits="
                << m.counter("diff_chain_log_hits_total")->Value() << "\n";
      for (const DiffService::StoreStatus& s : service.StoreStatuses()) {
        std::cout << "store=" << s.doc_id << " versions=" << s.versions
                  << " durable=" << (s.durable ? 1 : 0)
                  << " health=" << treediff::StoreHealthName(s.health)
                  << " failures=" << s.consecutive_failures
                  << " retries=" << s.faults.transient_retries
                  << " rotations=" << s.faults.rotations
                  << " scrubs=" << s.faults.scrubs << "\n";
        if (s.replicated) {
          std::cout << "REPL doc=" << s.doc_id << " epoch=" << s.repl_epoch
                    << " primary=" << s.repl_primary;
          for (const treediff::ReplicaStatus& r : s.replicas) {
            std::cout << " r" << r.index << "="
                      << treediff::ReplicaRoleName(r.role)
                      << ":lag=" << r.lag_bytes;
          }
          std::cout << "\n";
        }
      }
      std::cout << ".\n";
      std::cout.flush();
      continue;
    }

    if (cmd == "METRICS") {
      std::cout << service.metrics().TextExposition() << ".\n";
      std::cout.flush();
      continue;
    }

    if (cmd == "DIFF" && f.size() == 4) {
      DiffRequest request;
      if (!ParseFormat(f[1], &request.format)) {
        PrintError(treediff::Status::InvalidArgument(
            "unknown format \"" + f[1] + "\" (want sexpr|xml)"));
        std::cout.flush();
        continue;
      }
      request.old_doc = f[2];
      request.new_doc = f[3];
      PrintDiffResponse(service.SubmitSync(std::move(request)));
      std::cout.flush();
      continue;
    }

    if (cmd == "OPEN" && f.size() == 4) {
      DiffRequest::Format format;
      if (!ParseFormat(f[2], &format)) {
        PrintError(treediff::Status::InvalidArgument(
            "unknown format \"" + f[2] + "\" (want sexpr|xml)"));
        std::cout.flush();
        continue;
      }
      const treediff::Status status = service.CreateStore(f[1], f[3], format);
      if (status.ok()) {
        std::cout << "OK doc=" << f[1] << " version=0\n";
      } else {
        PrintError(status);
      }
      std::cout.flush();
      continue;
    }

    if (cmd == "OPENR" && f.size() == 5) {
      DiffRequest::Format format;
      int replicas = 0;
      if (!ParseFormat(f[2], &format)) {
        PrintError(treediff::Status::InvalidArgument(
            "unknown format \"" + f[2] + "\" (want sexpr|xml)"));
        std::cout.flush();
        continue;
      }
      if (!ParseInt(f[3], &replicas) || replicas < 1) {
        PrintError(treediff::Status::InvalidArgument(
            "bad replica count \"" + f[3] + "\" (want a positive integer)"));
        std::cout.flush();
        continue;
      }
      std::vector<treediff::ReplicaConfig> configs;
      for (int i = 0; i < replicas; ++i) {
        treediff::ReplicaConfig config;
        config.path =
            store_dir + "/" + f[1] + ".r" + std::to_string(i) + ".log";
        configs.push_back(std::move(config));
      }
      const treediff::Status status = service.CreateReplicatedStore(
          f[1], f[4], std::move(configs), treediff::AckMode::kLeaderOnly,
          format);
      if (status.ok()) {
        std::cout << "OK doc=" << f[1] << " version=0 replicas=" << replicas
                  << "\n";
      } else {
        PrintError(status);
      }
      std::cout.flush();
      continue;
    }

    if (cmd == "COMMIT" && f.size() == 4) {
      DiffRequest::Format format;
      if (!ParseFormat(f[2], &format)) {
        PrintError(treediff::Status::InvalidArgument(
            "unknown format \"" + f[2] + "\" (want sexpr|xml)"));
        std::cout.flush();
        continue;
      }
      const treediff::StatusOr<int> version =
          service.CommitVersion(f[1], f[3], format);
      if (version.ok()) {
        std::cout << "OK version=" << *version << "\n";
      } else {
        PrintError(version.status());
      }
      std::cout.flush();
      continue;
    }

    if (cmd == "VDIFF" && f.size() == 4) {
      DiffRequest request;
      request.doc_id = f[1];
      if (!ParseInt(f[2], &request.from_version) ||
          !ParseInt(f[3], &request.to_version)) {
        PrintError(treediff::Status::InvalidArgument(
            "bad version number \"" + f[2] + "\"/\"" + f[3] +
            "\" (want base-10 integers)"));
        std::cout.flush();
        continue;
      }
      PrintDiffResponse(service.SubmitSync(std::move(request)));
      std::cout.flush();
      continue;
    }

    PrintError(treediff::Status::InvalidArgument(
        "bad request \"" + cmd + "\" (or wrong field count); commands: "
        "DIFF OPEN OPENR COMMIT VDIFF STATUS METRICS QUIT"));
    std::cout.flush();
  }
  service.Shutdown();
  // A response the peer never received is an error path, not a success:
  // surface write failures (closed pipe, full disk behind a redirect)
  // instead of exiting 0 with responses silently dropped on the wire.
  std::cout.flush();
  if (!std::cout) {
    std::fprintf(stderr, "treediff_serve: error writing responses to stdout\n");
    return 1;
  }
  return 0;
}
