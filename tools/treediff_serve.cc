// treediff_serve: the DiffService behind two serving surfaces.
//
// The primary surface is the binary-protocol TCP server (src/net): pass
// --port (0 = ephemeral; the bound ports are printed to stderr) and clients
// speak the length-prefixed protocol of docs/network.md, with pipelining,
// multi-tenant fair-share admission, and a Prometheus /metrics endpoint on
// --metrics-port. SIGTERM (or SIGINT) triggers a graceful shutdown: the
// acceptor stops, in-flight requests drain up to --drain seconds, whatever
// is still queued is answered with an error response, then the process
// exits.
//
// The newline-delimited stdin/stdout protocol below is kept as a *compat
// shim* for shell scripts and the CI: the line commands are decoded into
// the same wire-request structs and executed by the same net::Frontend the
// TCP server uses, so the two surfaces cannot drift apart. New clients
// should prefer the binary protocol.
//
// Requests are one line each, fields separated by tabs. Documents travel
// inline in a field, which works because both front ends accept single-line
// input (s-expressions are single-line by construction; XML documents must
// simply contain no literal newline or tab — whitespace inside text content
// is collapsed by the parser anyway).
//
//   DIFF <format> <old_doc> <new_doc>   diff two inline documents
//   OPEN <doc_id> <format> <base_doc>   create an in-memory version store
//   OPENR <doc_id> <format> <n> <base_doc>
//                                       create a replicated store with n
//                                       replicas (log files under
//                                       --store-dir); commits ship to the
//                                       followers, and a failing primary
//                                       fails over behind the breaker
//   COMMIT <doc_id> <format> <doc>      commit the next version -> OK <v>
//   VDIFF <doc_id> <from> <to>          diff two stored versions
//   STATUS                              per-store health, one line each
//                                       (replicated stores add a REPL line:
//                                       role, epoch, per-follower lag),
//                                       terminated by "."
//   METRICS                             dump the metrics registry
//   QUIT                                exit (EOF works too)
//
// OPENR and STATUS are line-only: replicated-store setup and health
// inspection are operator actions, not request traffic. (The TCP surface
// exposes metrics at GET /metrics in Prometheus text format instead of the
// METRICS dump.)
//
// <format> is "sexpr" or "xml". Responses:
//
//   OK [<field>...]      success; DIFF/VDIFF append rung=<name> ops=<n>
//                        degraded=<0|1> cache=<0|1><0|1> pruned=<n>
//                        mcache=<0|1> chain=<0|1>, then the edit script,
//                        one operation per line, terminated by "."
//   ERR <Code> <message> failure (one line)
//
// Usage: treediff_serve [--threads N] [--queue N] [--deadline SECONDS]
//                        [--incremental on|off] [--store-dir DIR]
//                        [--port N] [--metrics-port N] [--net-threads N]
//                        [--drain SECONDS] [--no-stdin]
//
// --incremental (default on) turns on incremental serving: the share-map
// pre-pass prunes unchanged subtrees out of every diff, repeated diffs of
// the same document pair reuse the cached phase-1 matching, and adjacent
// VDIFFs are answered straight from the store's commit log. STATUS gains a
// PRUNE line with the cumulative counters.

#include <atomic>
#include <cerrno>
#include <climits>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/diff_context.h"
#include "net/frontend.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/diff_service.h"
#include "util/thread_pool.h"

namespace {

using treediff::DiffRequest;
using treediff::DiffRung;
using treediff::DiffRungName;
using treediff::DiffService;
using treediff::DiffServiceOptions;
using treediff::net::Frontend;
using treediff::net::NetServer;
using treediff::net::NetServerOptions;
using treediff::net::Opcode;
using treediff::net::WireRequest;
using treediff::net::WireResponse;

std::atomic<bool> g_shutdown{false};

void OnSignal(int) { g_shutdown.store(true, std::memory_order_relaxed); }

/// SIGTERM/SIGINT set the flag and — installed without SA_RESTART — make
/// the blocking stdin read fail with EINTR, so the line loop falls out and
/// the main thread runs the graceful drain.
void InstallSignalHandlers() {
  struct sigaction action{};
  action.sa_handler = OnSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // Deliberately no SA_RESTART.
  (void)sigaction(SIGTERM, &action, nullptr);
  (void)sigaction(SIGINT, &action, nullptr);
}

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  for (;;) {
    const size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

/// Strict base-10 integer parse. std::atoi silently maps garbage to 0,
/// which on the wire turned "VDIFF doc x y" into a perfectly plausible
/// diff of version 0 against itself — an error path dropped before the
/// [[nodiscard]] discipline made such swallowing a policy violation.
bool ParseInt(const std::string& text, int* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  if (v < INT_MIN || v > INT_MAX) return false;
  *out = static_cast<int>(v);
  return true;
}

bool ParseWireFormat(const std::string& name, uint8_t* format) {
  if (name == "sexpr") {
    *format = treediff::net::kFormatSexpr;
    return true;
  }
  if (name == "xml") {
    *format = treediff::net::kFormatXml;
    return true;
  }
  return false;
}

void PrintError(const treediff::Status& status) {
  std::cout << "ERR " << treediff::CodeName(status.code()) << " "
            << status.message() << "\n";
}

void PrintWireError(const WireResponse& response) {
  std::cout << "ERR " << treediff::CodeName(response.code()) << " "
            << response.payload << "\n";
}

/// Runs one wire request through the shared frontend, synchronously — the
/// line protocol is strictly request/response.
WireResponse CallFrontend(Frontend& frontend, WireRequest request) {
  std::promise<WireResponse> promise;
  std::future<WireResponse> future = promise.get_future();
  frontend.Execute(std::move(request), [&promise](WireResponse response) {
    promise.set_value(std::move(response));
  });
  return future.get();
}

void PrintDiffResponse(const WireResponse& response) {
  if (!response.ok()) {
    PrintWireError(response);
    return;
  }
  using treediff::net::kRespFlagCacheNew;
  using treediff::net::kRespFlagCacheOld;
  using treediff::net::kRespFlagChainLog;
  using treediff::net::kRespFlagDegraded;
  using treediff::net::kRespFlagMatchCache;
  std::cout << "OK rung=" << DiffRungName(static_cast<DiffRung>(response.rung))
            << " ops=" << response.value
            << " degraded=" << ((response.flags & kRespFlagDegraded) ? 1 : 0)
            << " cache=" << ((response.flags & kRespFlagCacheOld) ? 1 : 0)
            << ((response.flags & kRespFlagCacheNew) ? 1 : 0)
            << " pruned=" << response.aux
            << " mcache=" << ((response.flags & kRespFlagMatchCache) ? 1 : 0)
            << " chain=" << ((response.flags & kRespFlagChainLog) ? 1 : 0)
            << "\n";
  std::cout << response.payload;
  std::cout << ".\n";
}

}  // namespace

int main(int argc, char** argv) {
  DiffServiceOptions options;
  options.incremental = true;  // The serving tool defaults to incremental.
  double default_deadline = 0.0;
  std::string store_dir = ".";
  bool net_enabled = false;
  bool stdin_enabled = true;
  NetServerOptions net_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr || !ParseInt(v, &options.num_threads)) {
        std::fprintf(stderr, "treediff_serve: --threads wants an integer\n");
        return 2;
      }
    } else if (arg == "--queue") {
      const char* v = next();
      int queue = 0;
      if (v == nullptr || !ParseInt(v, &queue) || queue < 1) {
        std::fprintf(stderr,
                     "treediff_serve: --queue wants a positive integer\n");
        return 2;
      }
      options.queue_capacity = static_cast<size_t>(queue);
    } else if (arg == "--deadline") {
      const char* v = next();
      char* end = nullptr;
      default_deadline = v != nullptr ? std::strtod(v, &end) : 0.0;
      if (v == nullptr || end != v + std::strlen(v) || default_deadline < 0) {
        std::fprintf(stderr,
                     "treediff_serve: --deadline wants seconds (>= 0)\n");
        return 2;
      }
    } else if (arg == "--store-dir") {
      const char* v = next();
      if (v == nullptr || *v == '\0') {
        std::fprintf(stderr, "treediff_serve: --store-dir wants a path\n");
        return 2;
      }
      store_dir = v;
    } else if (arg == "--incremental") {
      const char* v = next();
      if (v != nullptr && std::strcmp(v, "on") == 0) {
        options.incremental = true;
      } else if (v != nullptr && std::strcmp(v, "off") == 0) {
        options.incremental = false;
      } else {
        std::fprintf(stderr,
                     "treediff_serve: --incremental wants on|off\n");
        return 2;
      }
    } else if (arg == "--port") {
      const char* v = next();
      int port = 0;
      if (v == nullptr || !ParseInt(v, &port) || port < 0 || port > 65535) {
        std::fprintf(stderr, "treediff_serve: --port wants 0..65535\n");
        return 2;
      }
      net_enabled = true;
      net_options.port = static_cast<uint16_t>(port);
    } else if (arg == "--metrics-port") {
      const char* v = next();
      int port = 0;
      if (v == nullptr || !ParseInt(v, &port) || port < 0 || port > 65535) {
        std::fprintf(stderr,
                     "treediff_serve: --metrics-port wants 0..65535\n");
        return 2;
      }
      net_options.metrics_port = static_cast<uint16_t>(port);
    } else if (arg == "--net-threads") {
      const char* v = next();
      if (v == nullptr || !ParseInt(v, &net_options.num_event_threads) ||
          net_options.num_event_threads < 1) {
        std::fprintf(stderr,
                     "treediff_serve: --net-threads wants a positive "
                     "integer\n");
        return 2;
      }
    } else if (arg == "--drain") {
      const char* v = next();
      char* end = nullptr;
      const double drain = v != nullptr ? std::strtod(v, &end) : -1;
      if (v == nullptr || end != v + std::strlen(v) || drain < 0) {
        std::fprintf(stderr, "treediff_serve: --drain wants seconds (>= 0)\n");
        return 2;
      }
      net_options.drain_deadline_seconds = drain;
    } else if (arg == "--no-stdin") {
      stdin_enabled = false;
    } else {
      std::fprintf(stderr,
                   "usage: treediff_serve [--threads N] [--queue N] "
                   "[--deadline SECONDS] [--incremental on|off] "
                   "[--store-dir DIR] [--port N] [--metrics-port N] "
                   "[--net-threads N] [--drain SECONDS] [--no-stdin]\n");
      return 2;
    }
  }
  options.default_deadline_seconds = default_deadline;

  InstallSignalHandlers();

  DiffService service(options);

  // The line protocol's executor: the same Frontend class the TCP server
  // wraps, over the same service. One control thread is plenty for a
  // synchronous line loop.
  treediff::ThreadPool control_pool(treediff::ThreadPool::Options{1, 16});
  Frontend frontend(&service, &control_pool);

  std::unique_ptr<NetServer> net_server;
  if (net_enabled) {
    net_server = std::make_unique<NetServer>(&service, net_options);
    const treediff::Status started = net_server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "treediff_serve: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "treediff_serve: listening on %s:%u (metrics :%u)\n",
                 net_options.host.c_str(), net_server->port(),
                 net_server->metrics_port());
  }

  std::string line;
  while (stdin_enabled && !g_shutdown.load(std::memory_order_relaxed) &&
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> f = SplitTabs(line);
    const std::string& cmd = f[0];

    if (cmd == "QUIT") break;

    if (cmd == "STATUS") {
      treediff::MetricsRegistry& m = service.metrics();
      std::cout << "PRUNE subtrees="
                << m.counter("diff_prune_subtrees_total")->Value()
                << " nodes=" << m.counter("diff_prune_nodes_total")->Value()
                << " collisions="
                << m.counter("diff_prune_collisions_total")->Value()
                << " mcache_hits="
                << m.counter("diff_match_cache_hits_total")->Value()
                << " chain_hits="
                << m.counter("diff_chain_log_hits_total")->Value() << "\n";
      for (const DiffService::StoreStatus& s : service.StoreStatuses()) {
        std::cout << "store=" << s.doc_id << " versions=" << s.versions
                  << " durable=" << (s.durable ? 1 : 0)
                  << " health=" << treediff::StoreHealthName(s.health)
                  << " failures=" << s.consecutive_failures
                  << " retries=" << s.faults.transient_retries
                  << " rotations=" << s.faults.rotations
                  << " scrubs=" << s.faults.scrubs << "\n";
        if (s.replicated) {
          std::cout << "REPL doc=" << s.doc_id << " epoch=" << s.repl_epoch
                    << " primary=" << s.repl_primary;
          for (const treediff::ReplicaStatus& r : s.replicas) {
            std::cout << " r" << r.index << "="
                      << treediff::ReplicaRoleName(r.role)
                      << ":lag=" << r.lag_bytes;
          }
          std::cout << "\n";
        }
      }
      std::cout << ".\n";
      std::cout.flush();
      continue;
    }

    if (cmd == "METRICS") {
      // Line-only legacy dump; the TCP surface serves Prometheus text at
      // GET /metrics instead.
      std::cout << service.metrics().TextExposition() << ".\n";
      std::cout.flush();
      continue;
    }

    if (cmd == "DIFF" && f.size() == 4) {
      WireRequest request;
      request.opcode = Opcode::kDiff;
      if (!ParseWireFormat(f[1], &request.format)) {
        PrintError(treediff::Status::InvalidArgument(
            "unknown format \"" + f[1] + "\" (want sexpr|xml)"));
        std::cout.flush();
        continue;
      }
      request.old_doc = f[2];
      request.new_doc = f[3];
      PrintDiffResponse(CallFrontend(frontend, std::move(request)));
      std::cout.flush();
      continue;
    }

    if (cmd == "OPEN" && f.size() == 4) {
      WireRequest request;
      request.opcode = Opcode::kOpen;
      if (!ParseWireFormat(f[2], &request.format)) {
        PrintError(treediff::Status::InvalidArgument(
            "unknown format \"" + f[2] + "\" (want sexpr|xml)"));
        std::cout.flush();
        continue;
      }
      request.doc_id = f[1];
      request.old_doc = f[3];
      const WireResponse response = CallFrontend(frontend, std::move(request));
      if (response.ok()) {
        std::cout << "OK doc=" << f[1] << " version=0\n";
      } else {
        PrintWireError(response);
      }
      std::cout.flush();
      continue;
    }

    if (cmd == "OPENR" && f.size() == 5) {
      // Line-only: replicated-store creation is an operator action with
      // host-local file paths, not request traffic for the wire protocol.
      DiffRequest::Format format;
      uint8_t wire_format = 0;
      int replicas = 0;
      if (!ParseWireFormat(f[2], &wire_format)) {
        PrintError(treediff::Status::InvalidArgument(
            "unknown format \"" + f[2] + "\" (want sexpr|xml)"));
        std::cout.flush();
        continue;
      }
      format = Frontend::ToFormat(wire_format);
      if (!ParseInt(f[3], &replicas) || replicas < 1) {
        PrintError(treediff::Status::InvalidArgument(
            "bad replica count \"" + f[3] + "\" (want a positive integer)"));
        std::cout.flush();
        continue;
      }
      std::vector<treediff::ReplicaConfig> configs;
      for (int r = 0; r < replicas; ++r) {
        treediff::ReplicaConfig config;
        config.path =
            store_dir + "/" + f[1] + ".r" + std::to_string(r) + ".log";
        configs.push_back(std::move(config));
      }
      const treediff::Status status = service.CreateReplicatedStore(
          f[1], f[4], std::move(configs), treediff::AckMode::kLeaderOnly,
          format);
      if (status.ok()) {
        std::cout << "OK doc=" << f[1] << " version=0 replicas=" << replicas
                  << "\n";
      } else {
        PrintError(status);
      }
      std::cout.flush();
      continue;
    }

    if (cmd == "COMMIT" && f.size() == 4) {
      WireRequest request;
      request.opcode = Opcode::kCommit;
      if (!ParseWireFormat(f[2], &request.format)) {
        PrintError(treediff::Status::InvalidArgument(
            "unknown format \"" + f[2] + "\" (want sexpr|xml)"));
        std::cout.flush();
        continue;
      }
      request.doc_id = f[1];
      request.old_doc = f[3];
      const WireResponse response = CallFrontend(frontend, std::move(request));
      if (response.ok()) {
        std::cout << "OK version=" << response.value << "\n";
      } else {
        PrintWireError(response);
      }
      std::cout.flush();
      continue;
    }

    if (cmd == "VDIFF" && f.size() == 4) {
      WireRequest request;
      request.opcode = Opcode::kVdiff;
      request.doc_id = f[1];
      int from = 0;
      int to = 0;
      if (!ParseInt(f[2], &from) || !ParseInt(f[3], &to)) {
        PrintError(treediff::Status::InvalidArgument(
            "bad version number \"" + f[2] + "\"/\"" + f[3] +
            "\" (want base-10 integers)"));
        std::cout.flush();
        continue;
      }
      request.from_version = from;
      request.to_version = to;
      PrintDiffResponse(CallFrontend(frontend, std::move(request)));
      std::cout.flush();
      continue;
    }

    PrintError(treediff::Status::InvalidArgument(
        "bad request \"" + cmd + "\" (or wrong field count); commands: "
        "DIFF OPEN OPENR COMMIT VDIFF STATUS METRICS QUIT"));
    std::cout.flush();
  }

  // No stdin loop (--no-stdin): park until a signal asks for shutdown.
  while (!stdin_enabled && net_server != nullptr &&
         !g_shutdown.load(std::memory_order_relaxed)) {
    pause();  // Any handled signal (SIGTERM/SIGINT) wakes this.
  }

  // Graceful shutdown: stop accepting, drain in-flight network requests up
  // to the drain deadline (late ones get error responses, not silence),
  // then stop the service pool.
  if (net_server != nullptr) {
    std::fprintf(stderr, "treediff_serve: draining\n");
    net_server->Shutdown();
  }
  service.Shutdown();
  // A response the peer never received is an error path, not a success:
  // surface write failures (closed pipe, full disk behind a redirect)
  // instead of exiting 0 with responses silently dropped on the wire.
  std::cout.flush();
  if (!std::cout) {
    std::fprintf(stderr, "treediff_serve: error writing responses to stdout\n");
    return 1;
  }
  return 0;
}
