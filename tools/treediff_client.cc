// treediff_client: command-line client and load generator for the binary
// protocol served by treediff_serve --port (docs/network.md).
//
// One-shot commands (connect, one request, print, exit):
//
//   treediff_client --port P ping
//   treediff_client --port P diff <sexpr|xml> <old_doc> <new_doc>
//   treediff_client --port P metrics
//
// Load generation (the interesting mode):
//
//   treediff_client --port P load [--connections N] [--pipeline D]
//       [--requests N] [--rps R] [--tenant NAME] [--format sexpr|xml]
//       [--old DOC] [--new DOC] [--json]
//
// With --rps 0 (default) the generator runs CLOSED loop: every connection
// keeps D requests in flight and a completion immediately triggers the next
// send — this measures server capacity. With --rps > 0 it runs OPEN loop:
// requests are issued on a fixed aggregate schedule regardless of
// completions — this measures latency under a fixed offered load without
// the coordinated-omission blind spot of closed-loop drivers.
//
// --tenant stamps every request with a tenant id, which the server's
// fair-share admission uses for isolation; run two clients with different
// tenants to watch the weighted-deficit scheduler arbitrate.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/client.h"
#include "net/loadgen.h"
#include "net/wire.h"

namespace {

using treediff::net::kFormatSexpr;
using treediff::net::kFormatXml;
using treediff::net::LoadGenOptions;
using treediff::net::LoadGenResult;
using treediff::net::Opcode;
using treediff::net::SimpleClient;
using treediff::net::WireRequest;
using treediff::net::WireResponse;

int Usage() {
  std::fprintf(
      stderr,
      "usage: treediff_client [--host H] --port P <command>\n"
      "  ping\n"
      "  diff <sexpr|xml> <old_doc> <new_doc>\n"
      "  metrics\n"
      "  load [--connections N] [--pipeline D] [--requests N] [--rps R]\n"
      "       [--tenant NAME] [--format sexpr|xml] [--old DOC] [--new DOC]\n"
      "       [--json]\n");
  return 2;
}

bool ParseFormat(const std::string& name, uint8_t* format) {
  if (name == "sexpr") {
    *format = kFormatSexpr;
    return true;
  }
  if (name == "xml") {
    *format = kFormatXml;
    return true;
  }
  return false;
}

void PrintResult(const LoadGenResult& r, bool json) {
  if (json) {
    std::printf(
        "{\"sent\": %llu, \"completed\": %llu, \"ok\": %llu, "
        "\"errors\": %llu, \"connections_lost\": %llu, "
        "\"elapsed_seconds\": %.3f, \"throughput_rps\": %.1f, "
        "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"max_ms\": %.3f, \"bytes_written\": %llu, \"bytes_read\": %llu}\n",
        static_cast<unsigned long long>(r.sent),
        static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.ok),
        static_cast<unsigned long long>(r.completed - r.ok),
        static_cast<unsigned long long>(r.connections_lost),
        r.elapsed_seconds, r.throughput_rps, r.p50_ms, r.p95_ms, r.p99_ms,
        r.max_ms, static_cast<unsigned long long>(r.bytes_written),
        static_cast<unsigned long long>(r.bytes_read));
    return;
  }
  std::printf("sent %llu, completed %llu (%llu ok) in %.3fs = %.1f req/s\n",
              static_cast<unsigned long long>(r.sent),
              static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.ok), r.elapsed_seconds,
              r.throughput_rps);
  std::printf("latency ms: p50 %.3f  p95 %.3f  p99 %.3f  max %.3f\n",
              r.p50_ms, r.p95_ms, r.p99_ms, r.max_ms);
  for (const auto& [code, count] : r.errors) {
    std::printf("errors %s: %llu\n",
                treediff::CodeName(static_cast<treediff::Code>(code)),
                static_cast<unsigned long long>(count));
  }
  if (r.connections_lost > 0) {
    std::printf("connections lost: %llu\n",
                static_cast<unsigned long long>(r.connections_lost));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = -1;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else {
      break;
    }
  }
  if (port <= 0 || port > 65535 || i >= argc) return Usage();
  const std::string command = argv[i++];

  if (command == "ping" || command == "metrics" || command == "diff") {
    SimpleClient client;
    const treediff::Status connected =
        client.Connect(host, static_cast<uint16_t>(port));
    if (!connected.ok()) {
      std::fprintf(stderr, "treediff_client: %s\n",
                   connected.ToString().c_str());
      return 1;
    }
    if (command == "ping") {
      const treediff::Status status = client.Ping();
      if (!status.ok()) {
        std::fprintf(stderr, "treediff_client: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::printf("PONG\n");
      return 0;
    }
    if (command == "metrics") {
      std::string text;
      const treediff::Status status = client.Metrics(&text);
      if (!status.ok()) {
        std::fprintf(stderr, "treediff_client: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::fputs(text.c_str(), stdout);
      return 0;
    }
    // diff <format> <old> <new>
    if (argc - i < 3) return Usage();
    uint8_t format = kFormatSexpr;
    if (!ParseFormat(argv[i], &format)) return Usage();
    WireResponse response;
    const treediff::Status status =
        client.Diff(argv[i + 1], argv[i + 2], format, &response);
    if (!status.ok()) {
      std::fprintf(stderr, "treediff_client: %s\n", status.ToString().c_str());
      return 1;
    }
    if (!response.ok()) {
      std::fprintf(stderr, "treediff_client: ERR %s %s\n",
                   treediff::CodeName(response.code()),
                   response.payload.c_str());
      return 1;
    }
    std::printf("ops=%u pruned=%u flags=0x%02x\n%s",
                response.value, response.aux, response.flags,
                response.payload.c_str());
    return 0;
  }

  if (command != "load") return Usage();

  LoadGenOptions options;
  options.host = host;
  options.port = static_cast<uint16_t>(port);
  std::string tenant;
  uint8_t format = kFormatSexpr;
  std::string old_doc =
      "(D (P (S \"alpha beta gamma\") (S \"delta epsilon\")))";
  std::string new_doc =
      "(D (P (S \"alpha beta zeta\") (S \"delta epsilon\") (S \"theta\")))";
  bool json = false;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--connections") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.connections = static_cast<size_t>(std::atol(v));
    } else if (arg == "--pipeline") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.pipeline = static_cast<size_t>(std::atol(v));
    } else if (arg == "--requests") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.total_requests = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--rps") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.open_loop_rps = std::atof(v);
    } else if (arg == "--tenant") {
      const char* v = next();
      if (v == nullptr) return Usage();
      tenant = v;
    } else if (arg == "--format") {
      const char* v = next();
      if (v == nullptr || !ParseFormat(v, &format)) return Usage();
    } else if (arg == "--old") {
      const char* v = next();
      if (v == nullptr) return Usage();
      old_doc = v;
    } else if (arg == "--new") {
      const char* v = next();
      if (v == nullptr) return Usage();
      new_doc = v;
    } else if (arg == "--json") {
      json = true;
    } else {
      return Usage();
    }
  }

  options.make_request = [&](uint64_t) {
    WireRequest request;
    request.opcode = Opcode::kDiff;
    request.format = format;
    request.tenant = tenant;
    request.flags = treediff::net::kFlagNoScript;
    request.old_doc = old_doc;
    request.new_doc = new_doc;
    return request;
  };

  const treediff::StatusOr<LoadGenResult> result =
      treediff::net::RunLoadGen(options);
  if (!result.ok()) {
    std::fprintf(stderr, "treediff_client: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  PrintResult(*result, json);
  return 0;
}
