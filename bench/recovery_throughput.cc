// Recovery throughput of VersionStore::Open as the commit log grows: the
// default truncate-mode scan on a clean log, the salvage-mode scan on the
// same clean log (what the resilient posture costs when nothing is wrong),
// and a salvage recovery through mid-log corruption (resync + checkpoint
// re-anchor + quarantine rotation — the worst case).
//
// Runs on MemEnv so the numbers measure the scan/replay/rotation CPU work,
// not disk latency, and so a byte can be flipped deterministically.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "gen/doc_gen.h"
#include "gen/edit_sim.h"
#include "store/log.h"
#include "store/version_store.h"
#include "tree/tree.h"
#include "util/fault_env.h"
#include "util/random.h"
#include "util/table.h"

int main() {
  using namespace treediff;
  using Clock = std::chrono::steady_clock;

  std::printf(
      "VersionStore recovery throughput (MemEnv, checkpoint every 16)\n"
      "Workload: Section 8 synthetic documents, 4 random edits per commit\n"
      "salv-hit corrupts one byte in a delta near the log's middle\n\n");

  TablePrinter table({"commits", "log KiB", "clean ms", "salv-clean ms",
                      "salv-hit ms", "lost"});

  Rng rng(4242);
  Vocabulary vocab(800, 1.0);
  for (int commits : {32, 128, 512}) {
    MemEnv env;
    StoreOptions store_options;
    store_options.env = &env;
    store_options.checkpoint_interval = 16;

    auto labels = std::make_shared<LabelTable>();
    DocGenParams params;
    params.sections = 4;
    Tree base = GenerateDocument(params, vocab, &rng, labels);
    Tree current = base.Clone();
    auto store = VersionStore::Create("r.log", base.Clone(), {},
                                      store_options);
    if (!store.ok()) {
      std::printf("Create failed: %s\n", store.status().ToString().c_str());
      return 1;
    }
    for (int i = 0; i < commits; ++i) {
      SimulatedVersion next = SimulateNewVersion(current, 4, {}, vocab, &rng);
      auto v = store->Commit(next.new_tree);
      if (!v.ok()) {
        std::printf("Commit failed: %s\n", v.status().ToString().c_str());
        return 1;
      }
      current = std::move(next.new_tree);
    }
    store = Status::Internal("closed");  // Release the writer.
    const uint64_t log_bytes = env.FileBytes("r.log")->size();

    auto time_open = [&](RecoveryMode mode, RecoveryReport* report) {
      StoreOptions open_options = store_options;
      open_options.recovery = mode;
      const auto t0 = Clock::now();
      auto opened = VersionStore::Open("r.log", {}, open_options, report);
      const auto t1 = Clock::now();
      if (!opened.ok()) {
        std::printf("Open failed: %s\n",
                    opened.status().ToString().c_str());
        std::exit(1);
      }
      return std::chrono::duration<double, std::milli>(t1 - t0).count();
    };

    RecoveryReport clean_report;
    const double clean_ms = time_open(RecoveryMode::kTruncate, &clean_report);
    RecoveryReport salvage_clean_report;
    const double salvage_clean_ms =
        time_open(RecoveryMode::kSalvage, &salvage_clean_report);

    // Flip one payload byte in the delta record nearest the log's middle;
    // salvage must resync, re-anchor on the next checkpoint, and rotate.
    {
      auto file = env.NewRandomAccessFile("r.log");
      auto scan = ScanLog(file->get());
      if (!scan.ok()) {
        std::printf("scan failed\n");
        return 1;
      }
      // A delta right before a checkpoint is a free loss (the checkpoint
      // re-anchors its own version), so pick one followed by another delta:
      // the hole is real and the re-anchor does work.
      uint64_t victim = 0;
      for (size_t i = 0; i + 1 < scan->records.size(); ++i) {
        const LogScanRecord& r = scan->records[i];
        if (r.type == LogRecordType::kDelta &&
            scan->records[i + 1].type == LogRecordType::kDelta &&
            r.offset < log_bytes / 2) {
          victim = r.offset;
        }
      }
      if (!env.CorruptByte("r.log", victim + kLogRecordHeaderSize, 0x40)
               .ok()) {
        std::printf("corrupt failed\n");
        return 1;
      }
    }
    RecoveryReport salvage_hit_report;
    const double salvage_hit_ms =
        time_open(RecoveryMode::kSalvage, &salvage_hit_report);

    table.AddRow({std::to_string(commits),
                  std::to_string(log_bytes / 1024),
                  TablePrinter::Fmt(clean_ms, 2),
                  TablePrinter::Fmt(salvage_clean_ms, 2),
                  TablePrinter::Fmt(salvage_hit_ms, 2),
                  std::to_string(salvage_hit_report.versions_lost)});
  }
  table.Print();
  return 0;
}
