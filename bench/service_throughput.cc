// Throughput and tail latency of the concurrent DiffService: requests/s
// and p50/p99 end-to-end latency versus worker-thread count, on two
// workloads over the Section 8 synthetic documents:
//
//  * unique    — every request diffs a never-seen-before document pair, so
//                every resolve is a parse + index (cache miss).
//  * hot-pairs — requests cycle over a small set of version pairs, the
//                warehouse pattern of diffing the same hot base against a
//                stream of revisions; after first touch everything is a
//                cache hit and the pipeline runs on borrowed warm indexes.
//
// NOTE when reading the numbers: thread scaling can only show on a machine
// with that many cores. On a single-core container every thread count
// measures roughly the same req/s (the workers time-slice one core); run on
// a multi-core host to see the scaling itself.
//
// Usage: service_throughput [--json] [--requests N] [--edits N]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "gen/doc_gen.h"
#include "gen/edit_sim.h"
#include "service/diff_service.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace treediff;
  using Clock = std::chrono::steady_clock;

  bool json = false;
  int requests = 400;
  int edits_per_version = 6;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--edits") == 0 && i + 1 < argc) {
      edits_per_version = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: service_throughput [--json] [--requests N] "
                   "[--edits N]\n");
      return 2;
    }
  }

  // Pre-generate every document as serialized s-expression text, exactly
  // what a service client would send: the measured path includes parsing
  // (on misses), indexing, matching, and script generation.
  auto labels = std::make_shared<LabelTable>();
  Vocabulary vocab(800, 1.0);
  Rng rng(20260806);
  DocGenParams params;
  params.sections = 4;

  struct Pair {
    std::string old_doc, new_doc;
  };
  std::vector<Pair> unique_pairs;
  for (int i = 0; i < requests; ++i) {
    Tree base = GenerateDocument(params, vocab, &rng, labels);
    SimulatedVersion version = SimulateNewVersion(
        base, edits_per_version, bench::PaperEditMix(), vocab, &rng);
    unique_pairs.push_back(
        {base.ToDebugString(), version.new_tree.ToDebugString()});
  }
  // The hot set is a prefix of the unique set, so the two scenarios differ
  // only in reuse, not in document content.
  constexpr int kHotPairs = 10;
  const std::vector<Pair> hot_pairs(
      unique_pairs.begin(),
      unique_pairs.begin() + std::min<size_t>(kHotPairs, unique_pairs.size()));
  const size_t doc_nodes = GenerateDocument(params, vocab, &rng, labels).size();

  struct Row {
    const char* scenario;
    int threads;
    int requests;
    double wall_seconds;
    double rps;
    double p50_ms;
    double p99_ms;
    double hit_ratio;
    uint64_t shed;
  };
  std::vector<Row> rows;

  auto run = [&](const char* scenario, const std::vector<Pair>& pairs,
                 int threads) {
    DiffServiceOptions options;
    options.num_threads = threads;
    options.queue_capacity = static_cast<size_t>(requests) + 16;
    DiffService service(options);

    std::vector<std::future<DiffResponse>> futures;
    futures.reserve(static_cast<size_t>(requests));
    const auto t0 = Clock::now();
    for (int i = 0; i < requests; ++i) {
      const Pair& pair = pairs[static_cast<size_t>(i) % pairs.size()];
      DiffRequest request;
      request.old_doc = pair.old_doc;
      request.new_doc = pair.new_doc;
      request.want_script_text = false;  // Measure the pipeline, not I/O.
      futures.push_back(service.Submit(std::move(request)));
    }
    uint64_t shed = 0;
    for (auto& f : futures) {
      if (!f.get().status.ok()) ++shed;
    }
    const double wall =
        std::chrono::duration<double>(Clock::now() - t0).count();

    const TreeCache::Stats stats = service.cache_stats();
    Histogram* e2e = service.metrics().histogram("diff_e2e_seconds");
    rows.push_back({scenario, threads, requests, wall,
                    static_cast<double>(requests) / wall,
                    e2e->Quantile(0.5) * 1e3, e2e->Quantile(0.99) * 1e3,
                    static_cast<double>(stats.hits) /
                        static_cast<double>(stats.hits + stats.misses),
                    shed});
  };

  for (int threads : {1, 2, 4, 8}) {
    run("unique", unique_pairs, threads);
    run("hot-pairs", hot_pairs, threads);
  }

  if (json) {
    std::printf("[\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::printf(
          "  {\"scenario\": \"%s\", \"threads\": %d, \"requests\": %d, "
          "\"wall_seconds\": %.6f, \"requests_per_second\": %.1f, "
          "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"cache_hit_ratio\": %.4f, "
          "\"shed\": %llu}%s\n",
          r.scenario, r.threads, r.requests, r.wall_seconds, r.rps, r.p50_ms,
          r.p99_ms, r.hit_ratio, static_cast<unsigned long long>(r.shed),
          i + 1 < rows.size() ? "," : "");
    }
    std::printf("]\n");
    return 0;
  }

  std::printf(
      "DiffService throughput (%d requests/run, ~%zu nodes/doc, %d edits "
      "per version)\n"
      "hardware threads available: %u\n\n",
      requests, doc_nodes, edits_per_version,
      std::thread::hardware_concurrency());
  TablePrinter table({"scenario", "threads", "req/s", "p50 ms", "p99 ms",
                      "cache hit", "shed"});
  char buf[64];
  for (const Row& r : rows) {
    std::vector<std::string> cells;
    cells.emplace_back(r.scenario);
    cells.emplace_back(std::to_string(r.threads));
    std::snprintf(buf, sizeof buf, "%.1f", r.rps);
    cells.emplace_back(buf);
    std::snprintf(buf, sizeof buf, "%.3f", r.p50_ms);
    cells.emplace_back(buf);
    std::snprintf(buf, sizeof buf, "%.3f", r.p99_ms);
    cells.emplace_back(buf);
    std::snprintf(buf, sizeof buf, "%.1f%%", r.hit_ratio * 100.0);
    cells.emplace_back(buf);
    cells.emplace_back(std::to_string(r.shed));
    table.AddRow(cells);
  }
  table.Print();
  return 0;
}
