// Incremental ablation: pruned (ShareMode::kIndexed) against unpruned
// (ShareMode::kOff) diffing over version chains — v0 -> v1 -> ... -> vN,
// each version derived from the previous one at a fixed edit rate (1%, 5%,
// 20% of leaves touched). This is the O(changed) claim: with the share-map
// pre-pass, matching and generation cost should track the edit rate rather
// than the document size, so the 1%-chain speedup is the headline number.
//
// The byte-identity discipline rides along: for every chain link the
// kReference pre-pass (document-order scan, no fingerprint index) and the
// kIndexed pre-pass must produce byte-identical edit scripts, or the run
// exits 1. This is the same invariant tests/prune_identity_test.cc pins
// down, re-checked here on the benchmark's larger documents, so the CI
// smoke step catches divergence at scale.
//
// Usage: incremental_ablation [--json] [--tiny]
//   --json   machine-readable rows (EXPERIMENTS.md / CI parsing)
//   --tiny   small documents and short chains (CI smoke: identity checking
//            matters, timings do not)

#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/diff.h"
#include "core/script_io.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace treediff;

struct Chain {
  std::string name;
  double edit_rate = 0.0;
  int leaves = 0;
  int edits_per_version = 0;
  std::vector<Tree> versions;  // versions[0] is the base.
};

std::vector<Chain> MakeChains(bool tiny, std::shared_ptr<LabelTable> labels) {
  Vocabulary vocab(3000, 1.0);
  Rng rng(20260808);
  const EditMix mix = bench::PaperEditMix();
  const int chain_length = tiny ? 3 : 8;

  DocGenParams params;
  params.sections = tiny ? 4 : 64;
  params.min_paragraphs_per_section = 4;
  params.max_paragraphs_per_section = 8;
  // A few duplicate sentences keep the share-map honest (near-collision
  // labels and values), matching the adversarial property-test workload.
  params.duplicate_sentence_probability = 0.1;
  Tree base = GenerateDocument(params, vocab, &rng, labels);
  const int leaves = static_cast<int>(base.Leaves().size());

  std::vector<Chain> chains;
  for (double rate : {0.01, 0.05, 0.20}) {
    Chain chain;
    chain.name = std::to_string(static_cast<int>(rate * 100)) + "% edits";
    chain.edit_rate = rate;
    chain.leaves = leaves;
    chain.edits_per_version =
        std::max(1, static_cast<int>(rate * static_cast<double>(leaves)));
    chain.versions.push_back(base.Clone());
    for (int v = 0; v < chain_length; ++v) {
      SimulatedVersion next =
          SimulateNewVersion(chain.versions.back(), chain.edits_per_version,
                             mix, vocab, &rng);
      chain.versions.push_back(std::move(next.new_tree));
    }
    chains.push_back(std::move(chain));
  }
  return chains;
}

/// Mean milliseconds per chain link for one ShareMode, plus the scripts so
/// the caller can assert identity across modes.
struct ModeRun {
  double total_ms = 0.0;
  size_t total_ops = 0;
  size_t settled_subtrees = 0;
  std::vector<std::string> scripts;
};

ModeRun RunChain(const Chain& chain, ShareMode mode, int reps) {
  ModeRun run;
  const LabelTable& labels = *chain.versions.front().label_table();
  for (size_t v = 0; v + 1 < chain.versions.size(); ++v) {
    const Tree& t1 = chain.versions[v];
    const Tree& t2 = chain.versions[v + 1];
    DiffOptions options;
    options.share_mode = mode;
    std::optional<DiffResult> result;
    WallTimer timer;
    for (int r = 0; r < reps; ++r) {
      auto attempt = DiffTrees(t1, t2, options);
      if (!attempt.ok()) {
        std::fprintf(stderr, "DiffTrees failed (%s): %s\n", chain.name.c_str(),
                     attempt.status().ToString().c_str());
        std::exit(1);
      }
      result.emplace(std::move(*attempt));
    }
    run.total_ms += timer.ElapsedMicros() / 1e3 / reps;
    run.total_ops += result->script.size();
    run.settled_subtrees += result->report.prune_settled_subtrees;
    run.scripts.push_back(FormatEditScript(result->script, labels));
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--tiny") == 0) {
      tiny = true;
    } else {
      std::fprintf(stderr, "usage: incremental_ablation [--json] [--tiny]\n");
      return 2;
    }
  }

  auto labels = std::make_shared<LabelTable>();
  std::vector<Chain> chains = MakeChains(tiny, labels);
  const int reps = tiny ? 1 : 5;

  struct Row {
    std::string name;
    int leaves, edits, links;
    double off_ms, idx_ms, speedup;
    size_t ops, settled;
  };
  std::vector<Row> rows;
  bool all_identical = true;

  for (const Chain& chain : chains) {
    const ModeRun off = RunChain(chain, ShareMode::kOff, reps);
    const ModeRun ref = RunChain(chain, ShareMode::kReference, /*reps=*/1);
    const ModeRun idx = RunChain(chain, ShareMode::kIndexed, reps);

    // The pruned-vs-unpruned identity discipline: reference and indexed
    // pre-passes must serve byte-identical scripts on every chain link.
    for (size_t v = 0; v < idx.scripts.size(); ++v) {
      if (ref.scripts[v] != idx.scripts[v]) {
        std::fprintf(stderr,
                     "IDENTITY FAILURE: %s link v%zu->v%zu: kReference and "
                     "kIndexed scripts diverge\n",
                     chain.name.c_str(), v, v + 1);
        all_identical = false;
      }
    }

    Row row;
    row.name = chain.name;
    row.leaves = chain.leaves;
    row.edits = chain.edits_per_version;
    row.links = static_cast<int>(chain.versions.size()) - 1;
    row.off_ms = off.total_ms;
    row.idx_ms = idx.total_ms;
    row.speedup = idx.total_ms > 0 ? off.total_ms / idx.total_ms : 0.0;
    row.ops = idx.total_ops;
    row.settled = idx.settled_subtrees;
    rows.push_back(std::move(row));
  }

  if (!all_identical) {
    std::fprintf(stderr, "incremental_ablation: FAILED (script divergence)\n");
    return 1;
  }

  if (json) {
    std::printf("[\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::printf(
          "  {\"chain\": \"%s\", \"leaves\": %d, \"edits_per_version\": %d, "
          "\"links\": %d, \"unpruned_ms\": %.3f, \"pruned_ms\": %.3f, "
          "\"speedup\": %.2f, \"ops\": %zu, \"settled_subtrees\": %zu, "
          "\"identical\": true}%s\n",
          r.name.c_str(), r.leaves, r.edits, r.links, r.off_ms, r.idx_ms,
          r.speedup, r.ops, r.settled, i + 1 < rows.size() ? "," : "");
    }
    std::printf("]\n");
    return 0;
  }

  std::printf("Incremental ablation: pruned (share-map) vs unpruned diffing "
              "over version chains\n");
  std::printf("(%d leaves/doc, %d links per chain, scripts byte-identical "
              "reference vs indexed)\n\n",
              rows.empty() ? 0 : rows.front().leaves,
              rows.empty() ? 0 : rows.front().links);
  TablePrinter table({"chain", "edits/v", "unpruned ms", "pruned ms",
                      "speedup", "ops", "settled"});
  for (const Row& r : rows) {
    table.AddRow({r.name, TablePrinter::Fmt(static_cast<int64_t>(r.edits)),
                  TablePrinter::Fmt(r.off_ms, 2),
                  TablePrinter::Fmt(r.idx_ms, 2),
                  TablePrinter::Fmt(r.speedup, 2) + "x",
                  TablePrinter::Fmt(r.ops), TablePrinter::Fmt(r.settled)});
  }
  table.Print();
  std::printf("\nAll chain links byte-identical across pre-pass "
              "implementations.\n");
  return 0;
}
