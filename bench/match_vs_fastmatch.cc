// Ablation (Sections 5.2 vs 5.3): Algorithm Match — O(n^2 c + mn) — against
// Algorithm FastMatch — O((ne + e^2)c + 2lne) — on nearly-alike trees. The
// claim: FastMatch does dramatically fewer leaf comparisons (and less wall
// time) when e << n, while producing the same matching.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/criteria.h"
#include "core/fast_match.h"
#include "core/match.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace treediff;

  Vocabulary vocab(3000, 1.0);
  auto labels = std::make_shared<LabelTable>();
  const EditMix mix = bench::SentenceEditMix();
  Rng rng(19);

  std::printf(
      "Match vs FastMatch (fixed 12 sentence-level edits, growing n)\n\n");

  TablePrinter table({"n (leaves)", "match cmp", "fast cmp", "cmp ratio",
                      "match ms", "fast ms", "same pairs"});

  for (int sections : {4, 8, 16, 32, 64}) {
    DocGenParams params;
    params.sections = sections;
    Tree base = GenerateDocument(params, vocab, &rng, labels);
    SimulatedVersion v = SimulateNewVersion(base, 12, mix, vocab, &rng);

    WordLcsComparator cmp_slow;
    CriteriaEvaluator eval_slow(base, v.new_tree, &cmp_slow, {});
    WallTimer timer;
    Matching slow = ComputeMatch(base, v.new_tree, eval_slow);
    const double slow_ms = timer.ElapsedMicros() / 1e3;

    WordLcsComparator cmp_fast;
    CriteriaEvaluator eval_fast(base, v.new_tree, &cmp_fast, {});
    timer.Restart();
    Matching fast = ComputeFastMatch(base, v.new_tree, eval_fast);
    const double fast_ms = timer.ElapsedMicros() / 1e3;

    const double ratio =
        eval_fast.compare_calls() > 0
            ? static_cast<double>(eval_slow.compare_calls()) /
                  static_cast<double>(eval_fast.compare_calls())
            : 0.0;
    table.AddRow(
        {TablePrinter::Fmt(base.Leaves().size()),
         TablePrinter::Fmt(eval_slow.compare_calls()),
         TablePrinter::Fmt(eval_fast.compare_calls()),
         TablePrinter::Fmt(ratio, 1), TablePrinter::Fmt(slow_ms, 2),
         TablePrinter::Fmt(fast_ms, 2),
         slow.Pairs() == fast.Pairs() ? "yes" : "no"});
  }

  table.Print();
  std::printf(
      "\n[expected: the comparison ratio grows with n — Match is quadratic "
      "in n while FastMatch scales with e; matchings agree on this "
      "duplicate-free workload]\n");
  return 0;
}
