// Commit and recovery throughput of the durable VersionStore over the
// Section 8 synthetic workload: a generated document evolved by random edit
// batches, committed through the checksummed commit log, then recovered
// with VersionStore::Open. The store runs against the real POSIX Env — the
// fault-injection machinery lives in a test-only library and is not linked
// here, so these numbers are the release path.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "gen/doc_gen.h"
#include "gen/edit_sim.h"
#include "store/version_store.h"
#include "tree/tree.h"
#include "util/random.h"
#include "util/table.h"

int main() {
  using namespace treediff;
  namespace fs = std::filesystem;
  using Clock = std::chrono::steady_clock;

  const fs::path dir = fs::temp_directory_path() / "treediff_store_bench";
  fs::remove_all(dir);
  fs::create_directories(dir);

  std::printf(
      "Durable VersionStore throughput (POSIX env, fsync per commit)\n"
      "Workload: Section 8 synthetic documents, 4 random edits per commit\n\n");

  TablePrinter table({"doc nodes", "commits", "ckpt every", "commit/s",
                      "log KiB", "recover ms", "replayed"});

  Rng rng(4242);
  Vocabulary vocab(800, 1.0);
  int run = 0;
  for (int sections : {3, 8}) {
    for (int checkpoint_interval : {0, 8}) {
      auto labels = std::make_shared<LabelTable>();
      DocGenParams params;
      params.sections = sections;
      Tree base = GenerateDocument(params, vocab, &rng, labels);
      const size_t doc_nodes = base.size();

      const std::string path =
          (dir / ("store" + std::to_string(run++) + ".log")).string();
      StoreOptions store_options;
      store_options.checkpoint_interval = checkpoint_interval;

      const int kCommits = 64;
      Tree current = base.Clone();
      auto t0 = Clock::now();
      auto store =
          VersionStore::Create(path, base.Clone(), {}, store_options);
      if (!store.ok()) {
        std::printf("Create failed: %s\n", store.status().ToString().c_str());
        return 1;
      }
      for (int i = 0; i < kCommits; ++i) {
        SimulatedVersion next =
            SimulateNewVersion(current, 4, {}, vocab, &rng);
        auto v = store->Commit(next.new_tree);
        if (!v.ok()) {
          std::printf("Commit failed: %s\n", v.status().ToString().c_str());
          return 1;
        }
        current = std::move(next.new_tree);
      }
      auto t1 = Clock::now();
      const double commit_s =
          std::chrono::duration<double>(t1 - t0).count();

      const auto log_bytes = fs::file_size(path);

      // Recovery: average of a few reopens (the log is cold only once).
      RecoveryReport report;
      const int kReopens = 5;
      auto t2 = Clock::now();
      for (int i = 0; i < kReopens; ++i) {
        auto reopened = VersionStore::Open(path, {}, store_options, &report);
        if (!reopened.ok()) {
          std::printf("Open failed: %s\n",
                      reopened.status().ToString().c_str());
          return 1;
        }
        if (reopened->VersionCount() != kCommits + 1) {
          std::printf("recovered %d versions, expected %d\n",
                      reopened->VersionCount(), kCommits + 1);
          return 1;
        }
      }
      auto t3 = Clock::now();
      const double recover_ms =
          std::chrono::duration<double, std::milli>(t3 - t2).count() /
          kReopens;

      char commit_rate[32], log_kib[32], rec[32];
      std::snprintf(commit_rate, sizeof commit_rate, "%.0f",
                    kCommits / commit_s);
      std::snprintf(log_kib, sizeof log_kib, "%.1f",
                    static_cast<double>(log_bytes) / 1024.0);
      std::snprintf(rec, sizeof rec, "%.2f", recover_ms);
      table.AddRow({std::to_string(doc_nodes), std::to_string(kCommits),
                    checkpoint_interval == 0
                        ? "off"
                        : std::to_string(checkpoint_interval),
                    commit_rate, log_kib, rec,
                    std::to_string(report.deltas_replayed)});
    }
  }
  table.Print();
  std::printf(
      "\n'replayed' = deltas applied on Open to rebuild the head;\n"
      "checkpoints bound it at the cost of snapshot records in the log.\n");

  fs::remove_all(dir);
  return 0;
}
