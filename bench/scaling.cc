// Section 4 complexity: Algorithm EditScript runs in O(ND) — linear in the
// total number of nodes N for a fixed number of misaligned nodes D. This
// bench grows n with the edit count fixed and verifies the end-to-end
// pipeline time grows near-linearly (R^2 of a linear fit close to 1), the
// core efficiency claim against the O(n^2 log^2 n) baseline.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/diff.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace treediff;

  Vocabulary vocab(20000, 0.5);
  auto labels = std::make_shared<LabelTable>();
  const EditMix mix = bench::SentenceEditMix();
  Rng rng(31);

  std::printf("Pipeline scaling: fixed 12 edits, growing n\n\n");

  TablePrinter table({"n (nodes)", "leaves", "e", "comparisons",
                      "match ms", "script ms", "total ms"});
  std::vector<double> ns, ts, cmps;

  for (int sections : {4, 8, 16, 32, 64, 96}) {
    DocGenParams params;
    params.sections = sections;
    // Paragraphs of at least 4 sentences: a single sentence edit leaves at
    // least 3/4 of a paragraph intact, so paragraphs stay matched and the
    // misalignment D is governed by the edit count, not paragraph size
    // (this is what keeps the workload in the fixed-D regime the O(ND)
    // claim is about).
    params.min_sentences_per_paragraph = 4;
    params.max_sentences_per_paragraph = 6;
    Tree base = GenerateDocument(params, vocab, &rng, labels);

    // Average over several version pairs: comparison counts vary with where
    // the edits land (the "high variance" the paper itself reports for
    // Figure 13(b)), and wall times are noisy at the sub-ms scale.
    const int kPairs = 15;
    double sum_cmp = 0.0, sum_e = 0.0, sum_match = 0.0, sum_script = 0.0;
    double best_total = 1e100;
    for (int pair = 0; pair < kPairs; ++pair) {
      SimulatedVersion v = SimulateNewVersion(base, 12, mix, vocab, &rng);
      WallTimer timer;
      auto diff = DiffTrees(base, v.new_tree);
      const double total = timer.ElapsedSeconds();
      if (!diff.ok()) {
        std::fprintf(stderr, "diff failed: %s\n",
                     diff.status().ToString().c_str());
        return 1;
      }
      sum_cmp += static_cast<double>(diff->stats.compare_calls +
                                     diff->stats.partner_checks);
      sum_e += static_cast<double>(diff->stats.weighted_edit_distance);
      sum_match += diff->stats.match_seconds;
      sum_script += diff->stats.script_seconds;
      if (total < best_total) best_total = total;
    }

    const double n = static_cast<double>(base.size()) * 2.0;
    const double comparisons = sum_cmp / kPairs;
    ns.push_back(n);
    ts.push_back(best_total * 1e3);
    cmps.push_back(comparisons);
    table.AddRow({TablePrinter::Fmt(n, 0),
                  TablePrinter::Fmt(base.Leaves().size()),
                  TablePrinter::Fmt(sum_e / kPairs, 0),
                  TablePrinter::Fmt(comparisons, 0),
                  TablePrinter::Fmt(sum_match / kPairs * 1e3, 2),
                  TablePrinter::Fmt(sum_script / kPairs * 1e3, 2),
                  TablePrinter::Fmt(best_total * 1e3, 2)});
  }

  table.Print();
  // Comparisons are deterministic; wall time is reported but noisy at the
  // sub-millisecond scale.
  LinearFit work = FitLine(ns, cmps);
  LinearFit time = FitLine(ns, ts);
  std::printf(
      "\nlinear fit of comparisons vs n: %.1f per node, R^2 = %.3f "
      "[expected: close to 1 — work is near-linear in n for fixed e, "
      "matching the O(ne + e^2) analysis]\n"
      "linear fit of time vs n: %.4f ms per 1000 nodes, R^2 = %.3f\n",
      work.slope, work.r_squared, time.slope * 1000.0, time.r_squared);
  return 0;
}
