// Index ablation: the shared-TreeIndex pipeline against a seed-style
// pipeline in which every stage recomputes its own traversal precompute
// (orders, Euler intervals, leaf counts, per-(tree, node) tokenization; no
// hash fast paths, no pair memo). The baseline below is a faithful copy of
// the pre-index match phase — subtree-walk CommonLeaves, string-token LCS,
// per-node token cache — driving the shared script generator, so the two
// pipelines are compared end-to-end on identical semantics and the resulting
// edit scripts can be checked for byte identity.
//
// Workload: the Section 8 synthetic document sets under the paper's edit
// mix (~5% churn), the regime the ISSUE's acceptance criterion targets.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/diff.h"
#include "core/edit_script_gen.h"
#include "core/script_io.h"
#include "lcs/lcs.h"
#include "util/table.h"
#include "util/timer.h"
#include "util/tokenize.h"

namespace {

using namespace treediff;

// ---------------------------------------------------------------------------
// Seed-style baseline (pre-TreeIndex pipeline, copied from the seed sources).
// ---------------------------------------------------------------------------

/// The seed WordLcsComparator: tokenizes once per (tree, node) — identical
/// sentences at different nodes tokenize repeatedly — runs the LCS over
/// strings, and has no hash fast path and no pair memo.
class SeedWordLcsComparator : public ValueComparator {
 protected:
  double CompareImpl(const Tree& t1, NodeId x, const Tree& t2,
                     NodeId y) const override {
    if (t1.value(x) == t2.value(y)) return 0.0;
    const std::vector<std::string>& a = Tokens(t1, x);
    const std::vector<std::string>& b = Tokens(t2, y);
    if (a.empty() && b.empty()) return 0.0;
    const size_t common = LcsLength(a, b);
    const double total_off = static_cast<double>(a.size() + b.size()) -
                             2.0 * static_cast<double>(common);
    return total_off / static_cast<double>(std::max(a.size(), b.size()));
  }

 private:
  struct Key {
    const Tree* tree;
    NodeId node;
    bool operator==(const Key& o) const {
      return tree == o.tree && node == o.node;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<const void*>()(k.tree) * 31 +
             std::hash<NodeId>()(k.node);
    }
  };

  const std::vector<std::string>& Tokens(const Tree& t, NodeId x) const {
    auto it = cache_.find(Key{&t, x});
    if (it != cache_.end()) return it->second;
    return cache_
        .emplace(Key{&t, x}, SplitWords(t.value(x), /*normalize=*/false))
        .first->second;
  }

  mutable std::unordered_map<Key, std::vector<std::string>, KeyHash> cache_;
};

/// The seed CriteriaEvaluator: per-call Euler tour + leaf-count vectors, and
/// CommonLeaves as a full subtree walk (every internal node of x's subtree is
/// visited to find the leaves).
class SeedCriteriaEvaluator {
 public:
  SeedCriteriaEvaluator(const Tree& t1, const Tree& t2,
                        const ValueComparator* comparator, MatchOptions options)
      : t1_(t1),
        t2_(t2),
        comparator_(comparator),
        options_(options),
        euler2_(t2.ComputeEuler()),
        leaf_counts1_(t1.LeafCounts()),
        leaf_counts2_(t2.LeafCounts()) {}

  bool LeafEqual(NodeId x, NodeId y) const {
    if (t1_.label(x) != t2_.label(y)) return false;
    return comparator_->Compare(t1_, x, t2_, y) <= options_.leaf_threshold_f;
  }

  int CommonLeaves(NodeId x, NodeId y, const Matching& m) const {
    int common = 0;
    std::vector<NodeId> stack = {x};
    while (!stack.empty()) {
      NodeId w = stack.back();
      stack.pop_back();
      const auto& kids = t1_.children(w);
      if (kids.empty()) {
        NodeId z = m.PartnerOfT1(w);
        ++partner_checks_;
        if (z != kInvalidNode && euler2_.Contains(y, z)) ++common;
      } else {
        for (NodeId c : kids) stack.push_back(c);
      }
    }
    return common;
  }

  bool InternalEqual(NodeId x, NodeId y, const Matching& m) const {
    if (t1_.label(x) != t2_.label(y)) return false;
    const int max_size =
        std::max(leaf_counts1_[static_cast<size_t>(x)],
                 leaf_counts2_[static_cast<size_t>(y)]);
    if (max_size == 0) return true;
    return static_cast<double>(CommonLeaves(x, y, m)) >
           options_.internal_threshold_t * static_cast<double>(max_size);
  }

  size_t partner_checks() const { return partner_checks_; }

 private:
  const Tree& t1_;
  const Tree& t2_;
  const ValueComparator* comparator_;
  MatchOptions options_;
  Tree::EulerIntervals euler2_;
  std::vector<int> leaf_counts1_;
  std::vector<int> leaf_counts2_;
  mutable size_t partner_checks_ = 0;
};

/// Steps 2a-2e of Figure 11 on one label chain (seed fast_match.cc).
void SeedMatchChain(const std::vector<NodeId>& s1,
                    const std::vector<NodeId>& s2, bool leaves,
                    const SeedCriteriaEvaluator& eval, Matching* m) {
  auto equal = [&](NodeId x, NodeId y) {
    return leaves ? eval.LeafEqual(x, y) : eval.InternalEqual(x, y, *m);
  };
  std::vector<LcsPair> lcs =
      Lcs(static_cast<int>(s1.size()), static_cast<int>(s2.size()),
          [&](int i, int j) {
            return equal(s1[static_cast<size_t>(i)],
                         s2[static_cast<size_t>(j)]);
          });
  for (const LcsPair& p : lcs) {
    m->Add(s1[static_cast<size_t>(p.a_index)],
           s2[static_cast<size_t>(p.b_index)]);
  }
  for (NodeId x : s1) {
    if (m->HasT1(x)) continue;
    for (NodeId y : s2) {
      if (m->HasT2(y)) continue;
      if (equal(x, y)) {
        m->Add(x, y);
        break;
      }
    }
  }
}

/// Algorithm FastMatch with per-call chain construction via fresh preorder
/// traversals (seed fast_match.cc, schema-less path).
Matching SeedFastMatch(const Tree& t1, const Tree& t2,
                       const SeedCriteriaEvaluator& eval) {
  Matching m(t1.id_bound(), t2.id_bound());
  struct Chain {
    std::vector<NodeId> t1_nodes;
    std::vector<NodeId> t2_nodes;
  };
  std::map<LabelId, Chain> leaf_chains;
  std::map<LabelId, Chain> internal_chains;
  for (NodeId x : t1.PreOrder()) {
    auto& chains = t1.IsLeaf(x) ? leaf_chains : internal_chains;
    chains[t1.label(x)].t1_nodes.push_back(x);
  }
  for (NodeId y : t2.PreOrder()) {
    auto& chains = t2.IsLeaf(y) ? leaf_chains : internal_chains;
    chains[t2.label(y)].t2_nodes.push_back(y);
  }
  for (const auto& [label, chain] : leaf_chains) {
    SeedMatchChain(chain.t1_nodes, chain.t2_nodes, /*leaves=*/true, eval, &m);
  }
  for (const auto& [label, chain] : internal_chains) {
    SeedMatchChain(chain.t1_nodes, chain.t2_nodes, /*leaves=*/false, eval, &m);
  }
  return m;
}

/// The Section 8 repair pass (seed post_process.cc).
size_t SeedPostProcess(const Tree& t1, const Tree& t2,
                       const SeedCriteriaEvaluator& eval, Matching* matching) {
  auto equal = [&](NodeId c, NodeId cc, const Matching& m) {
    if (t1.label(c) != t2.label(cc)) return false;
    if (t1.IsLeaf(c) != t2.IsLeaf(cc)) return false;
    return t1.IsLeaf(c) ? eval.LeafEqual(c, cc)
                        : eval.InternalEqual(c, cc, m);
  };
  size_t rematched = 0;
  for (NodeId x : t1.PreOrder()) {
    const NodeId y = matching->PartnerOfT1(x);
    if (y == kInvalidNode) continue;
    for (NodeId c : t1.children(x)) {
      const NodeId c_partner = matching->PartnerOfT1(c);
      if (c_partner == kInvalidNode || t2.parent(c_partner) == y) continue;
      for (NodeId cc : t2.children(y)) {
        const NodeId cc_partner = matching->PartnerOfT2(cc);
        if (cc_partner == c) continue;
        if (!equal(c, cc, *matching)) continue;
        if (cc_partner == kInvalidNode) {
          matching->Remove(c, c_partner);
          matching->Add(c, cc);
          ++rematched;
          break;
        }
        if (t2.parent(c_partner) != y &&
            equal(cc_partner, c_partner, *matching)) {
          matching->Remove(c, c_partner);
          matching->Remove(cc_partner, cc);
          matching->Add(c, cc);
          matching->Add(cc_partner, c_partner);
          ++rematched;
          break;
        }
      }
    }
  }
  return rematched;
}

struct SeedDiffResult {
  EditScript script;
  size_t compare_calls = 0;
};

/// The seed kFastMatch pipeline end-to-end: fresh comparator and evaluator
/// per call (as seed DiffTrees constructed them), FastMatch, explicit root
/// pairing, post-process, then the shared script generator.
SeedDiffResult SeedStyleDiff(const Tree& t1, const Tree& t2) {
  SeedWordLcsComparator comparator;
  SeedCriteriaEvaluator eval(t1, t2, &comparator, MatchOptions{});
  Matching m = SeedFastMatch(t1, t2, eval);
  if (m.PartnerOfT2(t2.root()) != t1.root() && !m.HasT1(t1.root()) &&
      !m.HasT2(t2.root()) && t1.label(t1.root()) == t2.label(t2.root())) {
    m.Add(t1.root(), t2.root());
  }
  SeedPostProcess(t1, t2, eval, &m);
  auto gen = GenerateEditScript(t1, t2, m, &comparator);
  if (!gen.ok()) {
    std::fprintf(stderr, "seed-style generation failed: %s\n",
                 gen.status().ToString().c_str());
    std::exit(1);
  }
  return SeedDiffResult{std::move(gen->script), comparator.calls()};
}

// ---------------------------------------------------------------------------
// Workloads and measurement.
// ---------------------------------------------------------------------------

struct Workload {
  std::string name;
  Tree base;
  Tree version;
  int leaves = 0;
  int edits = 0;
};

std::vector<Workload> MakeWorkloads() {
  Vocabulary vocab(3000, 1.0);
  auto labels = std::make_shared<LabelTable>();
  const EditMix mix = bench::PaperEditMix();
  Rng rng(4242);
  std::vector<Workload> workloads;
  for (bench::DocumentSet& set : bench::MakeDocumentSets(vocab, labels)) {
    Workload w;
    w.name = set.name;
    w.leaves = set.leaves;
    w.edits = std::max(8, set.leaves / 20);  // ~5% churn.
    SimulatedVersion v =
        SimulateNewVersion(set.base, w.edits, mix, vocab, &rng);
    w.base = std::move(set.base);
    w.version = std::move(v.new_tree);
    workloads.push_back(std::move(w));
  }
  return workloads;
}

/// Times `reps` runs of `fn` and returns mean milliseconds.
template <typename Fn>
double TimeMs(int reps, Fn&& fn) {
  WallTimer timer;
  for (int r = 0; r < reps; ++r) fn();
  return timer.ElapsedMicros() / 1e3 / reps;
}

}  // namespace

int main() {
  std::printf("Index ablation: shared TreeIndex vs per-stage recompute\n");
  std::printf("(Section 8 synthetic sets, paper edit mix, ~5%% churn; "
              "seed-style = pre-index match phase)\n\n");

  std::vector<Workload> workloads = MakeWorkloads();
  const int kReps = 20;
  bool all_identical = true;
  double speedup_product = 1.0;

  TablePrinter table({"set", "leaves", "seed ms", "indexed ms", "speedup",
                      "seed cmp", "idx cmp", "script"});
  for (const Workload& w : workloads) {
    std::optional<SeedDiffResult> seed;
    const double seed_ms = TimeMs(
        kReps, [&] { seed.emplace(SeedStyleDiff(w.base, w.version)); });

    DiffOptions options;
    std::optional<DiffResult> indexed;
    const double indexed_ms = TimeMs(kReps, [&] {
      auto result = DiffTrees(w.base, w.version, options);
      if (!result.ok()) {
        std::fprintf(stderr, "DiffTrees failed: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
      indexed.emplace(std::move(*result));
    });

    const LabelTable& labels = *w.base.label_table();
    const bool identical = FormatEditScript(seed->script, labels) ==
                           FormatEditScript(indexed->script, labels);
    all_identical = all_identical && identical;
    const double speedup = seed_ms / indexed_ms;
    speedup_product *= speedup;

    table.AddRow({w.name, TablePrinter::Fmt(static_cast<int64_t>(w.leaves)),
                  TablePrinter::Fmt(seed_ms, 2),
                  TablePrinter::Fmt(indexed_ms, 2),
                  TablePrinter::Fmt(speedup, 2) + "x",
                  TablePrinter::Fmt(seed->compare_calls),
                  TablePrinter::Fmt(indexed->stats.compare_calls),
                  identical ? "identical" : "DIFFERS"});
  }
  table.Print();

  const double geomean =
      std::pow(speedup_product, 1.0 / static_cast<double>(workloads.size()));
  std::printf("\ngeomean speedup: %.2fx\n", geomean);
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: indexed pipeline's edit script differs from the "
                 "seed-style pipeline's\n");
    return 1;
  }
  std::printf("edit scripts: byte-identical across all sets\n");
  return 0;
}
