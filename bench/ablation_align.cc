// Ablation for Lemma C.1: the LCS-based AlignChildren versus a greedy
// increasing-chain baseline. Both produce correct scripts; the LCS produces
// the provably minimal number of intra-parent moves. The gap widens with
// how shuffled the sibling order is.

#include <cstdio>
#include <string>
#include <vector>

#include "core/edit_script_gen.h"
#include "core/matching.h"
#include "tree/tree.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace treediff;

  std::printf(
      "AlignChildren ablation: LCS (Lemma C.1) vs greedy chain\n"
      "(random sibling permutations; moves averaged over 40 trials)\n\n");

  TablePrinter table({"children", "shuffle", "LCS moves", "greedy moves",
                      "greedy/LCS"});

  auto labels = std::make_shared<LabelTable>();
  Rng rng(123);

  for (int n : {8, 16, 32, 64}) {
    for (double shuffle : {0.1, 0.3, 1.0}) {
      StatAccumulator lcs_moves, greedy_moves;
      for (int trial = 0; trial < 40; ++trial) {
        // A flat parent with n matched children; permute a fraction.
        std::vector<int> order(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
        const int swaps =
            std::max(1, static_cast<int>(shuffle * n / 2.0));
        for (int s = 0; s < swaps; ++s) {
          size_t i = rng.Uniform(order.size());
          size_t j = rng.Uniform(order.size());
          std::swap(order[i], order[j]);
        }

        Tree t1(labels), t2(labels);
        NodeId r1 = t1.AddRoot("D");
        NodeId r2 = t2.AddRoot("D");
        std::vector<NodeId> kids1;
        for (int i = 0; i < n; ++i) {
          kids1.push_back(t1.AddChild(r1, "S", "v" + std::to_string(i)));
        }
        std::vector<NodeId> kids2(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) {
          kids2[static_cast<size_t>(i)] = t2.AddChild(
              r2, "S", "v" + std::to_string(order[static_cast<size_t>(i)]));
        }
        Matching m(t1.id_bound(), t2.id_bound());
        m.Add(r1, r2);
        for (int i = 0; i < n; ++i) {
          // kids1[v] pairs with the kids2 slot holding value v.
          for (int j = 0; j < n; ++j) {
            if (order[static_cast<size_t>(j)] == i) {
              m.Add(kids1[static_cast<size_t>(i)],
                    kids2[static_cast<size_t>(j)]);
            }
          }
        }

        auto lcs = GenerateEditScript(t1, t2, m, nullptr, true);
        auto greedy = GenerateEditScript(t1, t2, m, nullptr, false);
        if (!lcs.ok() || !greedy.ok()) {
          std::fprintf(stderr, "generation failed\n");
          return 1;
        }
        lcs_moves.Add(static_cast<double>(lcs->intra_parent_moves));
        greedy_moves.Add(static_cast<double>(greedy->intra_parent_moves));
      }
      table.AddRow(
          {TablePrinter::Fmt(static_cast<size_t>(n)),
           TablePrinter::Fmt(shuffle, 1),
           TablePrinter::Fmt(lcs_moves.Mean(), 1),
           TablePrinter::Fmt(greedy_moves.Mean(), 1),
           TablePrinter::Fmt(lcs_moves.Mean() > 0
                                 ? greedy_moves.Mean() / lcs_moves.Mean()
                                 : 1.0,
                             2)});
    }
  }

  table.Print();
  std::printf(
      "\n[expected: LCS <= greedy everywhere (Lemma C.1 minimality); the "
      "gap grows with shuffle intensity — on near-reversals the greedy "
      "chain keeps almost nothing fixed]\n");
  return 0;
}
