// Table 1: upper bound on the percentage of mismatched paragraphs as a
// function of the match threshold t. The paper's necessary (not sufficient)
// condition: a paragraph can only be mismatched if more than a certain
// number of its sentences violate Matching Criterion 3 (i.e., have more
// than one close counterpart in the other tree), where that number depends
// on t. We flag a paragraph as potentially mismatched when its ambiguous
// sentences could tip a wrong pairing over the threshold:
//
//     #ambiguous(x) > (1 - t) * |x|.
//
// Paper values: t = 0.5..1.0 -> 0, 1, 3, 7, 9, 10 percent. The shape to
// reproduce: the bound is small and rises monotonically with t.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/compare.h"
#include "core/criteria.h"
#include "tree/schema.h"
#include "util/table.h"

namespace {

using namespace treediff;

/// Counts T1 leaves violating Matching Criterion 3: more than one T2 leaf
/// within compare() distance 1.
std::vector<bool> AmbiguousLeaves(const Tree& t1, const Tree& t2,
                                  const ValueComparator& cmp) {
  std::vector<bool> ambiguous(t1.id_bound(), false);
  std::vector<NodeId> leaves2 = t2.Leaves();
  for (NodeId x : t1.Leaves()) {
    int close = 0;
    for (NodeId y : leaves2) {
      if (t1.label(x) != t2.label(y)) continue;
      if (cmp.Compare(t1, x, t2, y) <= 1.0 && ++close > 1) break;
    }
    ambiguous[static_cast<size_t>(x)] = close > 1;
  }
  return ambiguous;
}

}  // namespace

int main() {
  Vocabulary vocab(8000, 0.6);
  auto labels = std::make_shared<LabelTable>();
  const LabelId paragraph = labels->Intern(doc_labels::kParagraph);

  // Documents with a small rate of duplicated sentences — the Criterion 3
  // violations real documents (legal boilerplate, repeated phrases) show.
  DocGenParams params;
  params.sections = 10;
  params.min_words_per_sentence = 8;
  params.max_words_per_sentence = 20;
  params.duplicate_sentence_probability = 0.015;

  std::printf(
      "Table 1: upper bound on mismatched paragraphs (%%) vs match "
      "threshold t\n(documents with ~1.5%% duplicated sentences; averaged "
      "over versions)\n\n");

  const double thresholds[] = {0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
  double sums[6] = {0};
  int rounds = 0;

  Rng rng(11);
  const EditMix mix = bench::PaperEditMix();
  for (int round = 0; round < 6; ++round) {
    Tree base = GenerateDocument(params, vocab, &rng, labels);
    SimulatedVersion v = SimulateNewVersion(base, 12, mix, vocab, &rng);
    WordLcsComparator cmp;
    std::vector<bool> ambiguous = AmbiguousLeaves(base, v.new_tree, cmp);

    // Per threshold: fraction of paragraphs whose ambiguous-children count
    // satisfies the necessary mismatch condition.
    size_t paragraphs = 0;
    std::vector<size_t> flagged(6, 0);
    for (NodeId p : base.PreOrder()) {
      if (base.label(p) != paragraph || base.IsLeaf(p)) continue;
      ++paragraphs;
      int amb = 0, total = 0;
      for (NodeId s : base.children(p)) {
        ++total;
        if (ambiguous[static_cast<size_t>(s)]) ++amb;
      }
      for (int i = 0; i < 6; ++i) {
        if (amb > (1.0 - thresholds[i]) * total) ++flagged[i];
      }
    }
    if (paragraphs == 0) continue;
    for (int i = 0; i < 6; ++i) {
      sums[i] += 100.0 * static_cast<double>(flagged[i]) /
                 static_cast<double>(paragraphs);
    }
    ++rounds;
  }

  TablePrinter table({"Match threshold (t)", "0.5", "0.6", "0.7", "0.8",
                      "0.9", "1.0"});
  std::vector<std::string> row = {"Upper bound on mismatches (%)"};
  for (int i = 0; i < 6; ++i) {
    row.push_back(TablePrinter::Fmt(sums[i] / rounds, 1));
  }
  table.AddRow(row);
  table.Print();

  std::printf(
      "\n[paper: 0, 1, 3, 7, 9, 10 — small and monotonically increasing in "
      "t]\nNote: this is the paper's weak necessary condition; actual "
      "mismatches are far rarer, and a non-optimal matching affects only "
      "script length, never correctness (Section 8).\n");

  bool monotone = true;
  for (int i = 1; i < 6; ++i) {
    if (sums[i] + 1e-9 < sums[i - 1]) monotone = false;
  }
  std::printf("monotone in t: %s\n", monotone ? "yes" : "NO");
  return 0;
}
