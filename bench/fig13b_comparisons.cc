// Figure 13(b): the running time of FastMatch — measured as the number of
// comparisons it makes (r1 leaf compare() calls, each costing c, plus r2
// partner checks) — versus the weighted edit distance e. The paper reports
// (i) an approximately linear relationship with high variance, and (ii)
// measured comparison counts on average ~20x below the analytical bound
// (ne + e^2)c + 2lne of Appendix B.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/criteria.h"
#include "core/diff.h"
#include "core/fast_match.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace treediff;
  using bench::DocumentSet;

  Vocabulary vocab(3000, 1.0);
  auto labels = std::make_shared<LabelTable>();
  std::vector<DocumentSet> sets = bench::MakeDocumentSets(vocab, labels);
  const EditMix mix = bench::PaperEditMix();

  // l = number of internal node labels in the document schema actually used
  // (document, section, paragraph, list, item).
  const double l = 5.0;

  std::printf(
      "Figure 13(b): FastMatch comparisons vs weighted edit distance e\n\n");

  TablePrinter table({"set", "n", "e", "r1 (compares)", "r2 (partner)",
                      "total", "analytical bound", "bound/total"});
  StatAccumulator ratios;
  std::vector<double> es, totals;
  Rng rng(7);

  for (DocumentSet& set : sets) {
    const double n = static_cast<double>(set.leaves);
    for (int edits = 2; edits <= 40; edits += 2) {
      SimulatedVersion v =
          SimulateNewVersion(set.base, edits, mix, vocab, &rng);

      WordLcsComparator cmp;
      CriteriaEvaluator eval(set.base, v.new_tree, &cmp, {});
      Matching m = ComputeFastMatch(set.base, v.new_tree, eval);
      const double r1 = static_cast<double>(eval.compare_calls());
      const double r2 = static_cast<double>(eval.partner_checks());
      const double total = r1 + r2;

      // e measured from the script for this matching.
      auto gen = GenerateEditScript(set.base, v.new_tree, [&] {
        Matching fixed = m;
        if (fixed.PartnerOfT2(v.new_tree.root()) != set.base.root()) {
          if (fixed.HasT1(set.base.root())) {
            fixed.Remove(set.base.root(),
                         fixed.PartnerOfT1(set.base.root()));
          }
          if (fixed.HasT2(v.new_tree.root())) {
            fixed.Remove(fixed.PartnerOfT2(v.new_tree.root()),
                         v.new_tree.root());
          }
          fixed.Add(set.base.root(), v.new_tree.root());
        }
        return fixed;
      }());
      if (!gen.ok()) {
        std::fprintf(stderr, "script failed: %s\n",
                     gen.status().ToString().c_str());
        return 1;
      }
      const double e =
          static_cast<double>(gen->weighted_edit_distance);

      // Appendix B bound: (ne + e^2) compare-equivalents + 2lne partner
      // checks, all counted as comparisons.
      const double bound = (n * e + e * e) + 2.0 * l * n * e;
      if (total > 0 && e > 0) {
        es.push_back(e);
        totals.push_back(total);
        // The looseness statistic is only meaningful for substantive deltas
        // (tiny e makes the bound's ne term degenerate while FastMatch
        // still pays its O(n) chain setup).
        if (e >= 10) ratios.Add(bound / total);
      }
      table.AddRow({set.name, TablePrinter::Fmt(size_t(set.leaves)),
                    TablePrinter::Fmt(e, 0), TablePrinter::Fmt(r1, 0),
                    TablePrinter::Fmt(r2, 0), TablePrinter::Fmt(total, 0),
                    TablePrinter::Fmt(bound, 0),
                    TablePrinter::Fmt(total > 0 ? bound / total : 0.0, 1)});
    }
  }

  table.Print();
  LinearFit fit = FitLine(es, totals);
  std::printf(
      "\ncomparisons vs e: slope %.0f per unit e, R^2 = %.3f "
      "[paper: approximately linear, high variance]\n"
      "analytical bound looseness: mean %.1fx, min %.1fx, max %.1fx "
      "[paper: ~20x fewer comparisons than the bound]\n",
      fit.slope, fit.r_squared, ratios.Mean(), ratios.Min(), ratios.Max());
  return 0;
}
