// Figure 13(a): weighted edit distance e versus unweighted edit distance d,
// for version pairs drawn from three document sets. The paper reports an
// approximately linear relationship, low variance across document sets (so
// e/d is insensitive to document size n), and an average e/d of 3.4 — far
// below the analytical log(n) bound.
//
// Workload substitution (see DESIGN.md): the authors' private sets of
// conference-paper versions are replaced by synthetic documents with a
// realistic edit mix; d and e are measured from the scripts produced by the
// full FastMatch + EditScript pipeline.

#include <cstdio>
#include <cmath>

#include "bench/bench_common.h"
#include "core/diff.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace treediff;
  using bench::DocumentSet;

  Vocabulary vocab(3000, 1.0);
  auto labels = std::make_shared<LabelTable>();
  std::vector<DocumentSet> sets = bench::MakeDocumentSets(vocab, labels);
  const EditMix mix = bench::PaperEditMix();

  std::printf(
      "Figure 13(a): weighted edit distance e vs unweighted distance d\n"
      "(three document sets; n = number of sentences)\n\n");

  TablePrinter table({"set", "n", "edits", "d", "e", "e/d"});
  StatAccumulator ratio_all;
  Rng rng(42);

  for (DocumentSet& set : sets) {
    std::vector<double> xs, ys;
    StatAccumulator ratio_set;
    for (int edits = 2; edits <= 40; edits += 2) {
      SimulatedVersion v =
          SimulateNewVersion(set.base, edits, mix, vocab, &rng);
      auto diff = DiffTrees(set.base, v.new_tree);
      if (!diff.ok()) {
        std::fprintf(stderr, "diff failed: %s\n",
                     diff.status().ToString().c_str());
        return 1;
      }
      const double d =
          static_cast<double>(diff->stats.unweighted_edit_distance);
      const double e =
          static_cast<double>(diff->stats.weighted_edit_distance);
      if (d > 0) {
        ratio_set.Add(e / d);
        ratio_all.Add(e / d);
      }
      xs.push_back(d);
      ys.push_back(e);
      table.AddRow({set.name, TablePrinter::Fmt(size_t(set.leaves)),
                    TablePrinter::Fmt(size_t(edits)),
                    TablePrinter::Fmt(d, 0), TablePrinter::Fmt(e, 0),
                    d > 0 ? TablePrinter::Fmt(e / d, 2) : "-"});
    }
    LinearFit fit = FitLine(xs, ys);
    std::printf("%s: n=%d, e = %.2f*d %+.1f (R^2 = %.3f), mean e/d = %.2f\n",
                set.name.c_str(), set.leaves, fit.slope, fit.intercept,
                fit.r_squared, ratio_set.Mean());
  }

  std::printf("\n");
  table.Print();

  const double n_max = static_cast<double>(sets.back().leaves);
  std::printf(
      "\nsummary: mean e/d = %.2f (stddev %.2f) across all sets "
      "[paper: ~3.4, near-linear, size-insensitive]\n"
      "analytical bound: e/d <= log n = %.1f for the largest set — the "
      "measured ratio is far below it, as the paper conjectures.\n",
      ratio_all.Mean(), ratio_all.StdDev(), std::log2(n_max));
  return 0;
}
