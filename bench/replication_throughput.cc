// Commit latency and throughput of the replicated VersionStore under the
// two ack modes, over the Section 8 synthetic workload:
//
//  * leader-only — Commit returns once the primary's fsync lands; followers
//                  catch up asynchronously (the shipped bytes drain after
//                  the commit loop, reported as `drain ms`).
//  * quorum      — Commit blocks until a majority of replicas have the
//                  record fsynced, so every commit pays at least one full
//                  ship + follower fsync round trip.
//
// The gap between the two columns is the price of the stronger guarantee:
// a quorum-acked commit survives primary failover (see
// tests/replication_chaos_test.cc), a leader-acked one may not. Replicas
// run on in-memory envs, so the numbers isolate the replication protocol
// (framing, CRC re-verification, chain updates, ack waits) from disk
// physics — the relative cost is the signal, not the absolute rate.
//
// Usage: replication_throughput [--json] [--commits N] [--edits N]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "gen/doc_gen.h"
#include "gen/edit_sim.h"
#include "store/replication.h"
#include "util/fault_env.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace treediff;
  using Clock = std::chrono::steady_clock;

  bool json = false;
  int commits = 96;
  int edits_per_version = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--commits") == 0 && i + 1 < argc) {
      commits = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--edits") == 0 && i + 1 < argc) {
      edits_per_version = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: replication_throughput [--json] [--commits N] "
                   "[--edits N]\n");
      return 2;
    }
  }

  constexpr int kReplicas = 3;

  struct Row {
    const char* mode;
    int commits;
    double wall_seconds;
    double commits_per_second;
    double p50_ms;
    double p99_ms;
    double shipped_kib;
    double drain_ms;
  };
  std::vector<Row> rows;
  size_t doc_nodes = 0;

  auto run = [&](const char* name, AckMode mode) {
    // Fresh workload per mode, same seed: both modes commit identical trees.
    Vocabulary vocab(800, 1.0);
    Rng rng(987654);
    DocGenParams params;
    params.sections = 4;
    auto labels = std::make_shared<LabelTable>();
    Tree base = GenerateDocument(params, vocab, &rng, labels);
    doc_nodes = base.size();

    std::vector<MemEnv> mems(kReplicas);
    std::vector<ReplicaConfig> configs;
    for (int i = 0; i < kReplicas; ++i) {
      configs.push_back({&mems[static_cast<size_t>(i)],
                         "bench" + std::to_string(i) + ".log"});
    }
    ReplicationOptions options;
    options.ack_mode = mode;
    options.poll_interval_seconds = 0.0005;
    options.background_ship = true;
    auto group = ReplicatedVersionStore::Create(configs, base.Clone(), {},
                                                options);
    if (!group.ok()) {
      std::fprintf(stderr, "create: %s\n",
                   group.status().ToString().c_str());
      std::exit(1);
    }

    Tree current = base.Clone();
    std::vector<double> latencies_ms;
    latencies_ms.reserve(static_cast<size_t>(commits));
    const auto t0 = Clock::now();
    for (int i = 0; i < commits; ++i) {
      SimulatedVersion next = SimulateNewVersion(
          current, edits_per_version, bench::PaperEditMix(), vocab, &rng);
      const auto c0 = Clock::now();
      auto v = (*group)->Commit(next.new_tree);
      const auto c1 = Clock::now();
      if (!v.ok()) {
        std::fprintf(stderr, "commit: %s\n", v.status().ToString().c_str());
        std::exit(1);
      }
      latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(c1 - c0).count());
      current = std::move(next.new_tree);
    }
    const double wall =
        std::chrono::duration<double>(Clock::now() - t0).count();

    // Drain: how long until every follower holds the full log. Under
    // quorum this is near zero (the loop already waited); under
    // leader-only it is the backlog the weaker ack left behind.
    const auto d0 = Clock::now();
    for (int i = 0; i < 100000; ++i) {
      (*group)->PumpFollowers().IgnoreError();
      bool all = true;
      for (const ReplicaStatus& r : (*group)->Replicas()) {
        if (r.role == ReplicaRole::kFollower && !r.caught_up) all = false;
      }
      if (all) break;
    }
    const double drain_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - d0).count();

    std::sort(latencies_ms.begin(), latencies_ms.end());
    auto quantile = [&](double q) {
      const size_t i = static_cast<size_t>(
          q * static_cast<double>(latencies_ms.size() - 1));
      return latencies_ms[i];
    };
    const ReplicationCounters counters = (*group)->counters();
    rows.push_back({name, commits, wall,
                    static_cast<double>(commits) / wall, quantile(0.5),
                    quantile(0.99),
                    static_cast<double>(counters.bytes_shipped) / 1024.0,
                    drain_ms});
  };

  run("leader-only", AckMode::kLeaderOnly);
  run("quorum", AckMode::kQuorum);

  if (json) {
    std::printf("[\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::printf(
          "  {\"mode\": \"%s\", \"replicas\": %d, \"commits\": %d, "
          "\"wall_seconds\": %.6f, \"commits_per_second\": %.1f, "
          "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"shipped_kib\": %.1f, "
          "\"drain_ms\": %.3f}%s\n",
          r.mode, kReplicas, r.commits, r.wall_seconds, r.commits_per_second,
          r.p50_ms, r.p99_ms, r.shipped_kib,
          r.drain_ms, i + 1 < rows.size() ? "," : "");
    }
    std::printf("]\n");
    return 0;
  }

  std::printf(
      "Replicated VersionStore commit latency (%d replicas, in-memory "
      "envs)\nWorkload: Section 8 synthetic documents (~%zu nodes), %d "
      "edits per version\n\n",
      kReplicas, doc_nodes, edits_per_version);
  TablePrinter table({"ack mode", "commits", "commit/s", "p50 ms", "p99 ms",
                      "shipped KiB", "drain ms"});
  char buf[64];
  for (const Row& r : rows) {
    std::vector<std::string> cells;
    cells.emplace_back(r.mode);
    cells.emplace_back(std::to_string(r.commits));
    std::snprintf(buf, sizeof buf, "%.1f", r.commits_per_second);
    cells.emplace_back(buf);
    std::snprintf(buf, sizeof buf, "%.3f", r.p50_ms);
    cells.emplace_back(buf);
    std::snprintf(buf, sizeof buf, "%.3f", r.p99_ms);
    cells.emplace_back(buf);
    std::snprintf(buf, sizeof buf, "%.1f", r.shipped_kib);
    cells.emplace_back(buf);
    std::snprintf(buf, sizeof buf, "%.2f", r.drain_ms);
    cells.emplace_back(buf);
    table.AddRow(cells);
  }
  table.Print();
  std::printf(
      "\nquorum blocks each commit on a majority fsync (ship + follower "
      "CRC re-verify + fsync);\nleader-only acks after the local fsync and "
      "drains the follower backlog afterwards.\n");
  return 0;
}
