// Loopback throughput and tail latency of the network front end: an
// in-process NetServer and the net/loadgen driver, sweeping connection
// count (toward the 1k-connection acceptance point) and event-loop thread
// count, closed-loop with pipelining. Before any measurement the harness
// proves the wire path is honest: responses served over TCP must be
// byte-identical to what DiffService::SubmitSync returns directly.
//
// NOTE when reading the numbers: event-loop thread scaling can only show
// on a machine with that many cores. On a single-core container every
// thread count measures roughly the same req/s (the loops time-slice one
// core); connection scaling is still meaningful — it exercises epoll
// fan-in, per-connection buffers, and the admission path at width.
//
// Usage: net_throughput [--json] [--tiny] [--requests N] [--pipeline N]
//   --tiny   CI smoke: identity check + one small sweep point, seconds.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "gen/doc_gen.h"
#include "gen/edit_sim.h"
#include "net/client.h"
#include "net/loadgen.h"
#include "net/server.h"
#include "service/diff_service.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace treediff;
  using namespace treediff::net;

  bool json = false;
  bool tiny = false;
  uint64_t requests = 4000;
  size_t pipeline = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--tiny") == 0) {
      tiny = true;
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--pipeline") == 0 && i + 1 < argc) {
      pipeline = static_cast<size_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: net_throughput [--json] [--tiny] [--requests N] "
                   "[--pipeline N]\n");
      return 2;
    }
  }
  if (tiny) requests = std::min<uint64_t>(requests, 400);

  // Workload: Section 8 synthetic documents with the paper's edit mix,
  // serialized to the wire format clients actually send.
  auto labels = std::make_shared<LabelTable>();
  Vocabulary vocab(800, 1.0);
  Rng rng(20260808);
  DocGenParams params;
  params.sections = 2;

  struct Pair {
    std::string old_doc, new_doc;
  };
  std::vector<Pair> pairs;
  const int kPairs = tiny ? 8 : 32;
  for (int i = 0; i < kPairs; ++i) {
    Tree base = GenerateDocument(params, vocab, &rng, labels);
    SimulatedVersion version = SimulateNewVersion(
        base, 6, bench::PaperEditMix(), vocab, &rng);
    pairs.push_back({base.ToDebugString(), version.new_tree.ToDebugString()});
  }

  auto server_options = [&] {
    NetServerOptions o;
    // A throughput rig must not shed: deep tenant queue, wide inflight,
    // and a dispatch window below the service queue capacity.
    o.admission.default_quota.max_queued = 1u << 20;
    o.admission.default_quota.max_inflight = 4096;
    o.admission.max_dispatched = 32;
    o.enable_metrics_endpoint = false;
    return o;
  };

  // ---- Byte-identity gate -------------------------------------------------
  // Two fresh services with identical label interning; every response that
  // crosses the wire must match the direct Submit path byte for byte.
  {
    DiffServiceOptions so;
    DiffService reference(so);
    DiffService served(so);
    NetServer server(&served, server_options());
    if (!server.Start().ok()) {
      std::fprintf(stderr, "net_throughput: server start failed\n");
      return 1;
    }
    SimpleClient client;
    if (!client.Connect("127.0.0.1", server.port()).ok()) {
      std::fprintf(stderr, "net_throughput: connect failed\n");
      return 1;
    }
    for (const Pair& p : pairs) {
      DiffRequest direct;
      direct.old_doc = p.old_doc;
      direct.new_doc = p.new_doc;
      const DiffResponse expected = reference.SubmitSync(std::move(direct));
      WireResponse got;
      if (!client.Diff(p.old_doc, p.new_doc, kFormatSexpr, &got).ok() ||
          !got.ok() || got.payload != expected.script ||
          got.value != static_cast<uint32_t>(expected.operations)) {
        std::fprintf(stderr,
                     "net_throughput: BYTE-IDENTITY FAILURE — wire response "
                     "differs from direct SubmitSync\n");
        return 1;
      }
    }
    server.Shutdown();
    if (!json) {
      std::printf("byte-identity: %d/%d wire responses identical to direct "
                  "SubmitSync\n",
                  kPairs, kPairs);
    }
  }

  // ---- Scaling sweep ------------------------------------------------------
  struct Row {
    int event_threads;
    size_t connections;
    size_t pipeline;
    uint64_t completed;
    uint64_t errors;
    double rps;
    double p50_ms;
    double p95_ms;
    double p99_ms;
  };
  std::vector<Row> rows;
  bool all_ok = true;

  auto sweep_point = [&](int event_threads, size_t connections) {
    DiffService service{DiffServiceOptions{}};
    NetServerOptions o = server_options();
    o.num_event_threads = event_threads;
    NetServer server(&service, o);
    if (!server.Start().ok()) {
      std::fprintf(stderr, "net_throughput: server start failed\n");
      all_ok = false;
      return;
    }
    LoadGenOptions lg;
    lg.port = server.port();
    lg.connections = connections;
    lg.pipeline = pipeline;
    // Every connection gets at least a few turns, whatever `requests` is.
    lg.total_requests =
        std::max<uint64_t>(requests, connections * pipeline * 2);
    lg.make_request = [&pairs](uint64_t seq) {
      const Pair& p = pairs[seq % pairs.size()];
      WireRequest r;
      r.opcode = Opcode::kDiff;
      r.flags = kFlagNoScript;  // Measure the pipeline, not script I/O.
      r.old_doc = p.old_doc;
      r.new_doc = p.new_doc;
      return r;
    };
    lg.max_run_seconds = tiny ? 60 : 300;
    StatusOr<LoadGenResult> result = RunLoadGen(lg);
    server.Shutdown();
    if (!result.ok()) {
      std::fprintf(stderr, "net_throughput: loadgen failed: %s\n",
                   result.status().ToString().c_str());
      all_ok = false;
      return;
    }
    const LoadGenResult& r = *result;
    uint64_t errors = 0;
    for (const auto& [code, n] : r.errors) errors += n;
    if (r.completed != r.sent || errors != 0 || r.connections_lost != 0) {
      all_ok = false;  // A bench run must account for every request.
    }
    rows.push_back({event_threads, connections, pipeline, r.completed,
                    errors, r.throughput_rps, r.p50_ms, r.p95_ms, r.p99_ms});
  };

  if (tiny) {
    sweep_point(2, 8);
  } else {
    // Connection scaling at 2 event threads, through the 1k acceptance
    // point; then event-thread scaling at a fixed moderate width.
    for (size_t connections : {1u, 8u, 64u, 256u, 1024u}) {
      sweep_point(2, connections);
    }
    for (int threads : {1, 4}) {
      sweep_point(threads, 256);
    }
  }

  if (json) {
    std::printf("[\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::printf(
          "  {\"event_threads\": %d, \"connections\": %zu, "
          "\"pipeline\": %zu, \"completed\": %llu, \"errors\": %llu, "
          "\"requests_per_second\": %.1f, \"p50_ms\": %.3f, "
          "\"p95_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
          r.event_threads, r.connections, r.pipeline,
          static_cast<unsigned long long>(r.completed),
          static_cast<unsigned long long>(r.errors), r.rps, r.p50_ms,
          r.p95_ms, r.p99_ms, i + 1 < rows.size() ? "," : "");
    }
    std::printf("]\n");
  } else {
    std::printf(
        "\nnet_throughput: loopback, closed loop, pipeline=%zu, "
        "hardware threads: %u\n\n",
        pipeline, std::thread::hardware_concurrency());
    TablePrinter table({"loops", "conns", "completed", "errors", "req/s",
                        "p50 ms", "p95 ms", "p99 ms"});
    char buf[64];
    for (const Row& r : rows) {
      std::vector<std::string> cells;
      cells.emplace_back(std::to_string(r.event_threads));
      cells.emplace_back(std::to_string(r.connections));
      cells.emplace_back(std::to_string(r.completed));
      cells.emplace_back(std::to_string(r.errors));
      std::snprintf(buf, sizeof buf, "%.1f", r.rps);
      cells.emplace_back(buf);
      std::snprintf(buf, sizeof buf, "%.3f", r.p50_ms);
      cells.emplace_back(buf);
      std::snprintf(buf, sizeof buf, "%.3f", r.p95_ms);
      cells.emplace_back(buf);
      std::snprintf(buf, sizeof buf, "%.3f", r.p99_ms);
      cells.emplace_back(buf);
      table.AddRow(cells);
    }
    table.Print();
  }
  if (!all_ok) {
    std::fprintf(stderr,
                 "net_throughput: FAILURE — requests shed, lost, or "
                 "unanswered during the sweep\n");
    return 1;
  }
  return 0;
}
