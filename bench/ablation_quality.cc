// Quality ablations on duplicate-rich workloads (Matching Criterion 3
// violations, the Section 8 discussion):
//
//  (1) the post-processing repair pass: script cost with and without it;
//  (2) the A(k) fallback window (Section 9 future work): comparisons vs
//      script cost as k shrinks.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/diff.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace treediff;

  Vocabulary vocab(2000, 1.0);
  auto labels = std::make_shared<LabelTable>();
  DocGenParams params;
  params.sections = 8;
  params.duplicate_sentence_probability = 0.06;  // Criterion 3 violations.
  const EditMix mix = bench::PaperEditMix();
  Rng rng(321);

  std::printf(
      "Ablation 1: Section 8 post-processing repair "
      "(documents with ~6%% duplicated sentences)\n\n");
  {
    TablePrinter table({"trial", "cost w/o repair", "cost w/ repair",
                        "repaired pairs", "moves w/o", "moves w/"});
    StatAccumulator gain;
    for (int trial = 0; trial < 8; ++trial) {
      Tree base = GenerateDocument(params, vocab, &rng, labels);
      SimulatedVersion v = SimulateNewVersion(base, 20, mix, vocab, &rng);

      DiffOptions off;
      off.post_process = false;
      auto without = DiffTrees(base, v.new_tree, off);
      DiffOptions on;
      on.post_process = true;
      auto with = DiffTrees(base, v.new_tree, on);
      if (!without.ok() || !with.ok()) {
        std::fprintf(stderr, "diff failed\n");
        return 1;
      }
      gain.Add(without->stats.script_cost - with->stats.script_cost);
      table.AddRow({TablePrinter::Fmt(static_cast<size_t>(trial)),
                    TablePrinter::Fmt(without->stats.script_cost, 1),
                    TablePrinter::Fmt(with->stats.script_cost, 1),
                    TablePrinter::Fmt(with->stats.post_process_rematched),
                    TablePrinter::Fmt(without->stats.moves),
                    TablePrinter::Fmt(with->stats.moves)});
    }
    table.Print();
    std::printf(
        "\nmean cost reduction from repair: %.2f "
        "[expected: >= 0 — the repair removes spurious cross-parent moves "
        "caused by near-duplicate leaves]\n\n",
        gain.Mean());
  }

  std::printf("Ablation 2: the A(k) fallback window\n\n");
  {
    Tree base = GenerateDocument(params, vocab, &rng, labels);
    SimulatedVersion v = SimulateNewVersion(base, 25, mix, vocab, &rng);
    TablePrinter table({"k", "compare calls", "script cost", "script ops"});
    for (int k : {1, 2, 4, 16, 64, 0}) {
      DiffOptions options;
      options.fallback_limit_k = k;
      auto diff = DiffTrees(base, v.new_tree, options);
      if (!diff.ok()) {
        std::fprintf(stderr, "diff failed\n");
        return 1;
      }
      table.AddRow({k == 0 ? "inf" : TablePrinter::Fmt(static_cast<size_t>(k)),
                    TablePrinter::Fmt(diff->stats.compare_calls),
                    TablePrinter::Fmt(diff->stats.script_cost, 1),
                    TablePrinter::Fmt(diff->stats.unweighted_edit_distance)});
    }
    table.Print();
    std::printf(
        "\n[expected: comparisons grow and script cost shrinks toward the "
        "unlimited window — the optimality/efficiency dial of Section 9]\n");
  }
  return 0;
}
