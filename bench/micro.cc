// Google-benchmark microbenchmarks for the hot paths: LCS (Myers vs DP),
// sentence comparison, parsing, matching, script generation, and the
// end-to-end pipeline. Run in Release mode for meaningful numbers.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "core/diff.h"
#include "core/fast_match.h"
#include "core/keyed_match.h"
#include "core/script_io.h"
#include "doc/latex_parser.h"
#include "doc/markdown_parser.h"
#include "doc/xml.h"
#include "store/version_store.h"
#include "gen/doc_gen.h"
#include "gen/edit_sim.h"
#include "lcs/lcs.h"
#include "zs/zhang_shasha.h"

namespace {

using namespace treediff;

std::vector<int> NearIdenticalSeq(int n, int changes, uint64_t seed) {
  Rng rng(seed);
  std::vector<int> v(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<size_t>(i)] = i;
  for (int c = 0; c < changes; ++c) {
    v[rng.Uniform(v.size())] = -static_cast<int>(rng.Uniform(1000)) - 1;
  }
  return v;
}

void BM_MyersLcsNearIdentical(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<int> a = NearIdenticalSeq(n, 0, 1);
  std::vector<int> b = NearIdenticalSeq(n, 10, 2);
  for (auto _ : state) {
    auto pairs = MyersLcs(n, n, [&](int i, int j) {
      return a[static_cast<size_t>(i)] == b[static_cast<size_t>(j)];
    });
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MyersLcsNearIdentical)->Arg(256)->Arg(1024)->Arg(4096);

void BM_DpLcs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<int> a = NearIdenticalSeq(n, 0, 1);
  std::vector<int> b = NearIdenticalSeq(n, 10, 2);
  for (auto _ : state) {
    auto pairs = DpLcs(n, n, [&](int i, int j) {
      return a[static_cast<size_t>(i)] == b[static_cast<size_t>(j)];
    });
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DpLcs)->Arg(256)->Arg(1024);

void BM_WordLcsCompare(benchmark::State& state) {
  auto labels = std::make_shared<LabelTable>();
  Tree t(labels);
  NodeId root = t.AddRoot("D");
  NodeId a = t.AddChild(root, "S",
                        "the quick brown fox jumps over the lazy dog again");
  NodeId b = t.AddChild(root, "S",
                        "the quick brown wolf jumps over a lazy dog again");
  for (auto _ : state) {
    WordLcsComparator cmp;  // Fresh cache: measures tokenize + LCS.
    benchmark::DoNotOptimize(cmp.Compare(t, a, t, b));
  }
}
BENCHMARK(BM_WordLcsCompare);

void BM_WordLcsCompareCached(benchmark::State& state) {
  auto labels = std::make_shared<LabelTable>();
  Tree t(labels);
  NodeId root = t.AddRoot("D");
  NodeId a = t.AddChild(root, "S",
                        "the quick brown fox jumps over the lazy dog again");
  NodeId b = t.AddChild(root, "S",
                        "the quick brown wolf jumps over a lazy dog again");
  WordLcsComparator cmp;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cmp.Compare(t, a, t, b));
  }
}
BENCHMARK(BM_WordLcsCompareCached);

struct Workload {
  std::shared_ptr<LabelTable> labels;
  Tree old_tree;
  Tree new_tree;
};

Workload MakeWorkload(int sections, int edits) {
  static Vocabulary vocab(3000, 1.0);
  Workload w{std::make_shared<LabelTable>(), Tree(nullptr), Tree(nullptr)};
  Rng rng(static_cast<uint64_t>(sections) * 100 +
          static_cast<uint64_t>(edits));
  DocGenParams params;
  params.sections = sections;
  w.old_tree = GenerateDocument(params, vocab, &rng, w.labels);
  SimulatedVersion v =
      SimulateNewVersion(w.old_tree, edits, {}, vocab, &rng);
  w.new_tree = std::move(v.new_tree);
  return w;
}

void BM_FastMatch(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<int>(state.range(0)), 10);
  for (auto _ : state) {
    WordLcsComparator cmp;
    CriteriaEvaluator eval(w.old_tree, w.new_tree, &cmp, {});
    Matching m = ComputeFastMatch(w.old_tree, w.new_tree, eval);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.old_tree.size()));
}
BENCHMARK(BM_FastMatch)->Arg(4)->Arg(16)->Arg(48);

void BM_EndToEndDiff(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<int>(state.range(0)), 10);
  for (auto _ : state) {
    auto diff = DiffTrees(w.old_tree, w.new_tree);
    benchmark::DoNotOptimize(diff);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.old_tree.size()));
}
BENCHMARK(BM_EndToEndDiff)->Arg(4)->Arg(16)->Arg(48);

// Same workload as BM_EndToEndDiff but with an (unlimited) budget attached:
// the delta against BM_EndToEndDiff is the pure probe overhead of the
// resource-budget plumbing on the Figure 13 path. Should stay under ~1%.
void BM_EndToEndDiffBudgeted(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<int>(state.range(0)), 10);
  for (auto _ : state) {
    Budget budget;  // No caps: every probe runs, nothing ever trips.
    DiffOptions options;
    options.budget = &budget;
    auto diff = DiffTrees(w.old_tree, w.new_tree, options);
    benchmark::DoNotOptimize(diff);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.old_tree.size()));
}
BENCHMARK(BM_EndToEndDiffBudgeted)->Arg(4)->Arg(16)->Arg(48);

void BM_ZhangShasha(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<int>(state.range(0)), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ZhangShashaDistance(w.old_tree, w.new_tree));
  }
}
BENCHMARK(BM_ZhangShasha)->Arg(2)->Arg(4)->Arg(8);

void BM_ParseLatex(benchmark::State& state) {
  // Build a LaTeX source from a generated document, then time the parser.
  Workload w = MakeWorkload(8, 0);
  std::string text;
  for (NodeId sec : w.old_tree.children(w.old_tree.root())) {
    text += "\\section{" + w.old_tree.value(sec) + "}\n";
    for (NodeId p : w.old_tree.children(sec)) {
      for (NodeId s : w.old_tree.children(p)) {
        if (w.old_tree.IsLeaf(s)) {
          text += w.old_tree.value(s) + " ";
        } else {
          for (NodeId q : w.old_tree.children(s)) {
            text += w.old_tree.value(q) + " ";
          }
        }
      }
      text += "\n\n";
    }
  }
  for (auto _ : state) {
    auto tree = ParseLatex(text);
    benchmark::DoNotOptimize(tree);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ParseLatex);

void BM_ApplyScript(benchmark::State& state) {
  Workload w = MakeWorkload(16, 20);
  auto diff = DiffTrees(w.old_tree, w.new_tree);
  if (!diff.ok()) {
    state.SkipWithError("diff failed");
    return;
  }
  for (auto _ : state) {
    Tree replay = w.old_tree.Clone();
    benchmark::DoNotOptimize(diff->script.ApplyTo(&replay));
  }
}
BENCHMARK(BM_ApplyScript);

void BM_ParseXml(benchmark::State& state) {
  // A data-bearing catalog with 200 records.
  std::string text = "<catalog>";
  for (int i = 0; i < 200; ++i) {
    text += "<item id=\"" + std::to_string(i) + "\"><name>item name " +
            std::to_string(i) + "</name><qty>" + std::to_string(i * 3) +
            "</qty></item>";
  }
  text += "</catalog>";
  for (auto _ : state) {
    auto tree = ParseXml(text);
    benchmark::DoNotOptimize(tree);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ParseXml);

void BM_ParseMarkdown(benchmark::State& state) {
  std::string text;
  for (int s = 0; s < 10; ++s) {
    text += "# Section " + std::to_string(s) + "\n\n";
    for (int p = 0; p < 5; ++p) {
      text += "A sentence about things. Another one follows here. ";
      text += "And a third to round out the paragraph.\n\n";
    }
    text += "- First bullet point.\n- Second bullet point.\n\n";
  }
  for (auto _ : state) {
    auto tree = ParseMarkdown(text);
    benchmark::DoNotOptimize(tree);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ParseMarkdown);

void BM_KeyedMatch(benchmark::State& state) {
  auto labels = std::make_shared<LabelTable>();
  Tree t1(labels), t2(labels);
  NodeId r1 = t1.AddRoot("db");
  NodeId r2 = t2.AddRoot("db");
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    t1.AddChild(r1, "rec", "key=k" + std::to_string(i) + " value a");
    // Reversed order in t2: keys still pair in O(n).
    t2.AddChild(r2, "rec", "key=k" + std::to_string(n - 1 - i) + " value b");
  }
  for (auto _ : state) {
    Matching m = ComputeKeyedMatch(t1, t2, ValuePrefixKey);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KeyedMatch)->Arg(256)->Arg(2048);

void BM_InvertScript(benchmark::State& state) {
  Workload w = MakeWorkload(8, 15);
  auto diff = DiffTrees(w.old_tree, w.new_tree);
  if (!diff.ok()) {
    state.SkipWithError("diff failed");
    return;
  }
  for (auto _ : state) {
    auto inverse = InvertScript(diff->script, w.old_tree);
    benchmark::DoNotOptimize(inverse);
  }
}
BENCHMARK(BM_InvertScript);

void BM_ScriptWireRoundTrip(benchmark::State& state) {
  Workload w = MakeWorkload(8, 15);
  auto diff = DiffTrees(w.old_tree, w.new_tree);
  if (!diff.ok()) {
    state.SkipWithError("diff failed");
    return;
  }
  for (auto _ : state) {
    std::string wire = FormatEditScript(diff->script, *w.labels);
    auto parsed = ParseEditScript(wire, w.labels.get());
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_ScriptWireRoundTrip);

void BM_VersionStoreCommit(benchmark::State& state) {
  static Vocabulary vocab(2000, 1.0);
  auto labels = std::make_shared<LabelTable>();
  Rng rng(999);
  DocGenParams params;
  params.sections = 8;
  Tree base = GenerateDocument(params, vocab, &rng, labels);
  SimulatedVersion next = SimulateNewVersion(base, 10, {}, vocab, &rng);
  for (auto _ : state) {
    VersionStore store(base.Clone());
    benchmark::DoNotOptimize(store.Commit(next.new_tree));
  }
}
BENCHMARK(BM_VersionStoreCommit);

}  // namespace
