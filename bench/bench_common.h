#ifndef TREEDIFF_BENCH_BENCH_COMMON_H_
#define TREEDIFF_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "gen/doc_gen.h"
#include "gen/edit_sim.h"
#include "tree/tree.h"
#include "util/random.h"

namespace treediff {
namespace bench {

/// A synthetic "document set" standing in for one of the paper's three sets
/// of conference-paper versions (Section 8): a base document plus the knobs
/// used to derive versions from it.
struct DocumentSet {
  std::string name;
  Tree base;
  int leaves = 0;
};

/// The edit mix used by the Section 8 experiments: mostly sentence rewrites,
/// some structural churn, and occasional section-level restructuring (whose
/// large subtree moves are what make the weighted distance e exceed the op
/// count d in Figure 13(a)).
inline EditMix PaperEditMix() {
  EditMix mix;
  mix.update_sentence = 0.32;
  mix.insert_sentence = 0.13;
  mix.delete_sentence = 0.13;
  mix.move_sentence = 0.08;
  mix.move_paragraph = 0.14;
  mix.insert_paragraph = 0.04;
  mix.delete_paragraph = 0.04;
  mix.move_section = 0.12;
  return mix;
}

/// A sentence-level-only mix (no subtree moves): the regime where e stays
/// small and proportional to the edit count, used by the scaling and
/// Match-vs-FastMatch benches to isolate the O(ne) behaviour from the
/// chain-shuffling that large subtree moves cause.
inline EditMix SentenceEditMix() {
  EditMix mix;
  mix.update_sentence = 0.40;
  mix.insert_sentence = 0.25;
  mix.delete_sentence = 0.25;
  mix.move_sentence = 0.10;
  mix.move_paragraph = 0.0;
  mix.insert_paragraph = 0.0;
  mix.delete_paragraph = 0.0;
  mix.move_section = 0.0;
  return mix;
}

/// Builds the three document sets (small/medium/large), all sharing one
/// label table so versions can be diffed.
inline std::vector<DocumentSet> MakeDocumentSets(
    const Vocabulary& vocab, std::shared_ptr<LabelTable> labels) {
  std::vector<DocumentSet> sets;
  struct Shape {
    const char* name;
    int sections;
    int min_paras, max_paras;
  };
  // Section shapes are identical across sets (only the section count
  // differs), so the per-edit weight distribution — and hence e/d — should
  // be insensitive to document size, the property Figure 13(a) reports.
  const Shape shapes[] = {{"set-1 (small)", 4, 4, 8},
                          {"set-2 (medium)", 10, 4, 8},
                          {"set-3 (large)", 20, 4, 8}};
  uint64_t seed = 1000;
  for (const Shape& shape : shapes) {
    Rng rng(seed++);
    DocGenParams params;
    params.sections = shape.sections;
    params.min_paragraphs_per_section = shape.min_paras;
    params.max_paragraphs_per_section = shape.max_paras;
    DocumentSet set;
    set.name = shape.name;
    set.base = GenerateDocument(params, vocab, &rng, labels);
    set.leaves = static_cast<int>(set.base.Leaves().size());
    sets.push_back(std::move(set));
  }
  return sets;
}

}  // namespace bench
}  // namespace treediff

#endif  // TREEDIFF_BENCH_BENCH_COMMON_H_
