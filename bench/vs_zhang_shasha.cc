// Section 2 comparison: our FastMatch + EditScript pipeline — O(ne + e^2) —
// versus the optimal Zhang-Shasha tree edit distance [ZS89] — O(n^2 log^2 n)
// for balanced trees. The paper's claim: for large structures with few
// changes, our algorithm is dramatically faster while producing scripts of
// comparable (usually equal or better) cost, because the MOV operation
// captures reorganizations ZS must pay delete+insert for.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/diff.h"
#include "util/table.h"
#include "util/timer.h"
#include "zs/zhang_shasha.h"

int main() {
  using namespace treediff;

  Vocabulary vocab(2000, 1.0);
  auto labels = std::make_shared<LabelTable>();
  const EditMix mix = bench::PaperEditMix();
  Rng rng(23);

  std::printf(
      "FastMatch+EditScript vs Zhang-Shasha [ZS89] (8 edits per pair)\n\n");

  TablePrinter table({"nodes", "ours ms", "ZS ms", "speedup", "ours ops",
                      "ours cost", "ZS cost", "ZS+moves cost"});

  for (int sections : {1, 2, 4, 8, 12}) {
    DocGenParams params;
    params.sections = sections;
    params.min_paragraphs_per_section = 2;
    params.max_paragraphs_per_section = 5;
    Tree base = GenerateDocument(params, vocab, &rng, labels);
    SimulatedVersion v = SimulateNewVersion(base, 8, mix, vocab, &rng);

    WallTimer timer;
    auto ours = DiffTrees(base, v.new_tree);
    const double ours_ms = timer.ElapsedMicros() / 1e3;
    if (!ours.ok()) {
      std::fprintf(stderr, "diff failed: %s\n",
                   ours.status().ToString().c_str());
      return 1;
    }

    // ZS with the same update pricing; relabels are effectively forbidden
    // (cost 2 = delete+insert) to mirror our operation set.
    WordLcsComparator cmp;
    ZsOptions zs_options;
    zs_options.comparator = &cmp;
    timer.Restart();
    const double zs_cost = ZhangShashaDistance(base, v.new_tree, zs_options);
    const double zs_ms = timer.ElapsedMicros() / 1e3;
    // The [WZS95] move-recovery post-processing narrows ZS's cost gap
    // (relocated subtrees re-priced as single moves) but not its runtime.
    const ZsWithMovesResult zs_moves =
        ZhangShashaWithMoves(base, v.new_tree, zs_options);

    table.AddRow({TablePrinter::Fmt(base.size() + v.new_tree.size()),
                  TablePrinter::Fmt(ours_ms, 2), TablePrinter::Fmt(zs_ms, 2),
                  TablePrinter::Fmt(ours_ms > 0 ? zs_ms / ours_ms : 0.0, 1),
                  TablePrinter::Fmt(ours->script.size()),
                  TablePrinter::Fmt(ours->stats.script_cost, 2),
                  TablePrinter::Fmt(zs_cost, 2),
                  TablePrinter::Fmt(zs_moves.distance_with_moves, 2)});
  }

  table.Print();
  std::printf(
      "\n[expected: the speedup grows superlinearly with tree size — ZS is "
      "at least quadratic while ours scales with n*e. Script costs are "
      "comparable; where the delta contains moves, ours can be cheaper "
      "than ZS's delete+insert pairs.]\n");
  return 0;
}
