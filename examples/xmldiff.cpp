// Generic XML change detection: diff two XML documents and emit the new
// version annotated with td:status attributes, plus a browsable change
// report — the Section 9 SGML/XML direction.
//
// Usage:
//   xmldiff old.xml new.xml          # annotated XML on stdout
//   xmldiff --report old.xml new.xml # change report instead
//   xmldiff --demo                   # built-in product-catalog example

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/delta_query.h"
#include "core/diff.h"
#include "doc/xml.h"

namespace {

constexpr const char* kDemoOld = R"XML(
<catalog>
  <product sku="100"><name>Espresso machine</name><price>320</price>
    <stock>12</stock></product>
  <product sku="101"><name>Grinder</name><price>90</price>
    <stock>40</stock></product>
  <product sku="102"><name>Kettle</name><price>35</price>
    <stock>7</stock></product>
  <notes>Prices include tax. Shipping is extra.</notes>
</catalog>
)XML";

constexpr const char* kDemoNew = R"XML(
<catalog>
  <product sku="101"><name>Grinder</name><price>95</price>
    <stock>38</stock></product>
  <product sku="100"><name>Espresso machine</name><price>320</price>
    <stock>10</stock></product>
  <product sku="103"><name>Milk frother</name><price>25</price>
    <stock>60</stock></product>
  <notes>Prices include tax. Shipping is extra.</notes>
</catalog>
)XML";

bool ReadFile(const char* path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace treediff;

  bool report = false;
  std::string old_text, new_text;
  const char* old_path = nullptr;
  const char* new_path = nullptr;
  bool demo = argc <= 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--report") == 0) {
      report = true;
    } else if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else if (old_path == nullptr) {
      old_path = argv[i];
    } else {
      new_path = argv[i];
    }
  }
  if (demo || old_path == nullptr || new_path == nullptr) {
    old_text = kDemoOld;
    new_text = kDemoNew;
    std::fprintf(stderr, "[xmldiff] using the built-in demo catalog\n");
  } else if (!ReadFile(old_path, &old_text) ||
             !ReadFile(new_path, &new_text)) {
    std::fprintf(stderr, "cannot read input files\n");
    return 1;
  }

  auto labels = std::make_shared<LabelTable>();
  XmlParseOptions parse_options;
  parse_options.split_sentences = true;
  auto t1 = ParseXml(old_text, labels, parse_options);
  if (!t1.ok()) {
    std::fprintf(stderr, "old: %s\n", t1.status().ToString().c_str());
    return 1;
  }
  auto t2 = ParseXml(new_text, labels, parse_options);
  if (!t2.ok()) {
    std::fprintf(stderr, "new: %s\n", t2.status().ToString().c_str());
    return 1;
  }

  DiffOptions diff_options;
  // Data-bearing XML: short values never pass the leaf criterion, so let
  // the context-completion pass turn residual delete+insert pairs into
  // updates, and relax the internal threshold for small elements.
  diff_options.complete_context = true;
  diff_options.internal_threshold_t = 0.5;
  auto diff = DiffTrees(*t1, *t2, diff_options);
  if (!diff.ok()) {
    std::fprintf(stderr, "diff: %s\n", diff.status().ToString().c_str());
    return 1;
  }
  auto delta = BuildDeltaTree(*t1, *t2, *diff);
  if (!delta.ok()) {
    std::fprintf(stderr, "delta: %s\n", delta.status().ToString().c_str());
    return 1;
  }

  if (report) {
    std::fputs(RenderChangeReport(*delta, *labels).c_str(), stdout);
  } else {
    std::fputs(RenderXmlMarkup(*delta, *labels).c_str(), stdout);
  }
  std::fprintf(stderr,
               "[xmldiff] %zu inserts, %zu deletes, %zu updates, %zu moves "
               "(cost %.2f)\n",
               diff->stats.inserts, diff->stats.deletes,
               diff->stats.updates, diff->stats.moves,
               diff->stats.script_cost);
  return 0;
}
