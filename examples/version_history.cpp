// Version and configuration management (the [HKG+94] scenario of the
// paper's introduction): keep a document's history as delta-compressed
// versions, browse per-version change summaries, and materialize any
// historical configuration on demand.

#include <cstdio>
#include <memory>

#include "gen/doc_gen.h"
#include "gen/edit_sim.h"
#include "store/version_store.h"

int main() {
  using namespace treediff;

  Vocabulary vocab(800, 1.0);
  Rng rng(7771);
  auto labels = std::make_shared<LabelTable>();
  DocGenParams params;
  params.sections = 6;

  Tree draft = GenerateDocument(params, vocab, &rng, labels);
  VersionStore store(draft.Clone());
  std::printf("version 0: %zu nodes (stored in full)\n", draft.size());

  // Simulate an editing history: light touch-ups, then a restructuring
  // pass, then more touch-ups.
  const int churn[] = {3, 5, 2, 18, 4, 3};
  for (int round = 0; round < 6; ++round) {
    EditMix mix;
    if (churn[round] > 10) mix.move_section = 0.4;  // The restructure.
    SimulatedVersion next =
        SimulateNewVersion(draft, churn[round], mix, vocab, &rng);
    StatusOr<int> v = store.Commit(next.new_tree);
    if (!v.ok()) {
      std::fprintf(stderr, "commit failed: %s\n",
                   v.status().ToString().c_str());
      return 1;
    }
    const VersionStore::VersionInfo& info = store.Info(*v);
    std::printf(
        "version %d: %zu nodes | ins=%zu del=%zu upd=%zu mov=%zu "
        "(cost %.1f)\n",
        *v, info.nodes, info.inserts, info.deletes, info.updates, info.moves,
        info.cost);
    draft = std::move(next.new_tree);
  }

  // Materialize a historical configuration and verify it round-trips.
  StatusOr<Tree> v3 = store.Materialize(3);
  if (!v3.ok()) {
    std::fprintf(stderr, "materialize failed: %s\n",
                 v3.status().ToString().c_str());
    return 1;
  }
  std::printf("materialized version 3: %zu nodes\n", v3->size());

  // Editorial regret: undo the last two versions via inverse scripts.
  StatusOr<int> rolled = store.RollbackHead();
  if (rolled.ok()) rolled = store.RollbackHead();
  if (!rolled.ok()) {
    std::fprintf(stderr, "rollback failed: %s\n",
                 rolled.status().ToString().c_str());
    return 1;
  }
  std::printf("rolled back to version %d (%d versions remain)\n", *rolled,
              store.VersionCount());

  VersionStore::StorageStats storage = store.Storage();
  std::printf(
      "storage: %zu delta bytes vs %zu full-copy bytes -> %.1fx "
      "compression from shipping edit scripts\n",
      storage.delta_bytes, storage.full_copy_bytes,
      storage.CompressionRatio());
  return 0;
}
