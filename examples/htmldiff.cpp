// The web-document scenario from the paper's introduction: a user revisits
// an HTML page and wants the changes highlighted — "a paragraph that has
// moved could be marked with a tombstone in its old position and be
// highlighted in its new position."
//
// Usage:
//   htmldiff old.html new.html > marked.html
//   htmldiff --demo             # built-in example pages

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "doc/ladiff.h"

namespace {

constexpr const char* kDemoOld = R"HTML(
<html><head><title>Movie Night</title></head><body>
<h1>This Week's Screenings</h1>
<p>Monday brings a classic noir double bill. Tickets are five dollars.
Doors open at seven.</p>
<p>Wednesday is documentary night. We are showing a film about deep sea
creatures. Bring a friend for free.</p>
<h1>Membership</h1>
<p>Members get free popcorn. Annual membership costs twenty dollars.</p>
<ul>
<li>Students get a half price discount.</li>
<li>Seniors enter free on Sundays.</li>
</ul>
</body></html>
)HTML";

constexpr const char* kDemoNew = R"HTML(
<html><head><title>Movie Night</title></head><body>
<h1>This Week's Screenings</h1>
<p>Monday brings a classic noir double bill. Tickets are six dollars.
Doors open at seven.</p>
<h1>Membership</h1>
<p>Members get free popcorn. Annual membership costs twenty dollars.
Memberships make great gifts.</p>
<ul>
<li>Students get a half price discount.</li>
<li>Seniors enter free on Sundays.</li>
</ul>
<p>Wednesday is documentary night. We are showing a film about deep sea
creatures. Bring a friend for free.</p>
</body></html>
)HTML";

bool ReadFile(const char* path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace treediff;

  std::string old_text, new_text;
  if (argc >= 3 && std::strcmp(argv[1], "--demo") != 0) {
    if (!ReadFile(argv[1], &old_text) || !ReadFile(argv[2], &new_text)) {
      std::fprintf(stderr, "cannot read input files\n");
      return 1;
    }
  } else {
    old_text = kDemoOld;
    new_text = kDemoNew;
    std::fprintf(stderr, "[htmldiff] using the built-in demo pages\n");
  }

  LaDiffOptions options;
  options.format = MarkupFormat::kHtml;
  StatusOr<LaDiffResult> result =
      DiffHtmlDocuments(old_text, new_text, options);
  if (!result.ok()) {
    std::fprintf(stderr, "htmldiff failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::fputs(result->markup.c_str(), stdout);
  std::fprintf(stderr,
               "[htmldiff] %zu inserts, %zu deletes, %zu updates, %zu moves\n",
               result->diff.stats.inserts, result->diff.stats.deletes,
               result->diff.stats.updates, result->diff.stats.moves);
  return 0;
}
