// The data-warehousing scenario of the paper's introduction: an
// "uncooperative" source only hands out periodic snapshots (dumps) of its
// hierarchical data, and the warehouse derives deltas by diffing consecutive
// snapshots. This example simulates a source evolving over several epochs
// and, per epoch:
//
//  1. diffs the two snapshots (FastMatch + EditScript);
//  2. serializes the edit script to its wire format, "ships" it, parses it
//     back, and applies it to the warehouse's materialized copy;
//  3. evaluates active rules over the delta tree (the trigger scenario) and
//     prints the browsable change report.
//
// Each epoch's diff runs under a wall-clock deadline (a warehouse ingest
// window): if the budget trips, the pipeline degrades down the DiffRung
// ladder and reports the rung it landed on instead of blowing the window.

#include <cstdio>
#include <memory>

#include "core/delta_query.h"
#include "core/diff.h"
#include "core/script_io.h"
#include "gen/doc_gen.h"
#include "gen/edit_sim.h"
#include "tree/schema.h"

int main() {
  using namespace treediff;

  const int kEpochs = 6;
  Vocabulary vocab(500, 1.0);
  Rng rng(2026);
  auto labels = std::make_shared<LabelTable>();

  DocGenParams params;
  params.sections = 5;
  Tree snapshot = GenerateDocument(params, vocab, &rng, labels);
  Tree warehouse = snapshot.Clone();  // The materialized copy.
  std::printf("epoch 0: initial snapshot with %zu nodes\n", snapshot.size());

  // Active rules the warehouse registers once: alert on any section-level
  // change and on deletions of long sentences.
  const LabelId section = labels->Intern(doc_labels::kSection);
  const LabelId sentence = labels->Intern(doc_labels::kSentence);
  std::vector<ActiveRule> rules;
  rules.push_back({"section-structure-change",
                   MaskOf(DeltaAnnotation::kInserted) |
                       MaskOf(DeltaAnnotation::kDeleted) |
                       MaskOf(DeltaAnnotation::kMoveMarker),
                   section, nullptr});
  rules.push_back({"long-sentence-deleted", MaskOf(DeltaAnnotation::kDeleted),
                   sentence,
                   [](const DeltaNode& n) { return n.value.size() > 80; }});

  size_t total_ops = 0, total_firings = 0;
  for (int epoch = 1; epoch <= kEpochs; ++epoch) {
    // The source mutates; the warehouse only sees the new dump (fresh node
    // ids — no keys survive across snapshots).
    const int churn = 2 + epoch * 2;
    SimulatedVersion next = SimulateNewVersion(snapshot, churn, {}, vocab,
                                               &rng);

    // The ingest window: 50 ms of wall clock per snapshot diff. Plenty for
    // these documents; on an oversized dump the diff would degrade to a
    // cheaper rung rather than stall the pipeline.
    Budget budget = Budget::Deadline(0.050);
    DiffOptions diff_options;
    diff_options.budget = &budget;
    StatusOr<DiffResult> diff =
        DiffTrees(snapshot, next.new_tree, diff_options);
    if (!diff.ok()) {
      std::fprintf(stderr, "diff failed at epoch %d: %s\n", epoch,
                   diff.status().ToString().c_str());
      return 1;
    }

    // Ship the delta: serialize, parse, apply at the warehouse.
    const std::string wire = FormatEditScript(diff->script, *labels);
    StatusOr<EditScript> received = ParseEditScript(wire, labels.get());
    if (!received.ok()) {
      std::fprintf(stderr, "wire parse failed: %s\n",
                   received.status().ToString().c_str());
      return 1;
    }
    Status applied = received->ApplyTo(&warehouse);
    if (!applied.ok() || !Tree::Isomorphic(warehouse, next.new_tree)) {
      std::fprintf(stderr, "epoch %d: warehouse replay mismatch!\n", epoch);
      return 1;
    }
    // Re-densify the materialized copy so its node ids coincide with the
    // source's next dump (both sides number nodes in pre-order; scripts
    // address nodes by those positional ids).
    warehouse = RebuildFresh(warehouse);

    // Trigger evaluation over the delta tree.
    StatusOr<DeltaTree> delta =
        BuildDeltaTree(snapshot, next.new_tree, *diff);
    if (!delta.ok()) {
      std::fprintf(stderr, "delta failed: %s\n",
                   delta.status().ToString().c_str());
      return 1;
    }
    std::vector<RuleFiring> firings = EvaluateRules(*delta, *labels, rules);

    std::printf(
        "epoch %d: %3zu nodes | intended %2zu edits -> "
        "ins=%zu del=%zu upd=%zu mov=%zu (cost %.1f, e=%zu) | "
        "%zu bytes on the wire | %zu rule firings\n",
        epoch, next.new_tree.size(), next.intended_ops, diff->stats.inserts,
        diff->stats.deletes, diff->stats.updates, diff->stats.moves,
        diff->stats.script_cost, diff->stats.weighted_edit_distance,
        wire.size(), firings.size());
    if (diff->report.degraded) {
      std::printf("    (budget degraded the diff to the %s rung: %s)\n",
                  DiffRungName(diff->report.rung),
                  diff->report.exhaustion_detail.c_str());
    }
    for (const RuleFiring& f : firings) {
      std::printf("    [%s] %s\n", f.rule->name.c_str(), f.hit.path.c_str());
    }

    total_ops += diff->script.size();
    total_firings += firings.size();
    snapshot = std::move(next.new_tree);
  }

  std::printf(
      "ingested %zu edit operations across %d epochs; %zu rule firings\n",
      total_ops, kEpochs, total_firings);
  return 0;
}
