// The LaDiff program (Section 7): compares two versions of a LaTeX document
// and writes the new version with the changes marked per Table 2.
//
// Usage:
//   ladiff [--format=latex|html|text] [--t=0.6] [--f=0.5] old.tex new.tex
//   ladiff --demo            # runs on the paper's Appendix A documents
//
// With --demo (or no arguments) the embedded Figures 14/15 documents are
// used, regenerating the Figure 16 sample run.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "doc/appendix_a_data.h"
#include "doc/ladiff.h"

namespace {

bool ReadFile(const char* path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace treediff;

  LaDiffOptions options;
  std::string old_text, new_text;
  bool demo = argc <= 1;
  const char* old_path = nullptr;
  const char* new_path = nullptr;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--demo") == 0) {
      demo = true;
    } else if (std::strncmp(arg, "--format=", 9) == 0) {
      const char* fmt = arg + 9;
      if (std::strcmp(fmt, "latex") == 0) {
        options.format = MarkupFormat::kLatex;
      } else if (std::strcmp(fmt, "html") == 0) {
        options.format = MarkupFormat::kHtml;
      } else if (std::strcmp(fmt, "text") == 0) {
        options.format = MarkupFormat::kText;
      } else {
        std::fprintf(stderr, "unknown format '%s'\n", fmt);
        return 2;
      }
    } else if (std::strncmp(arg, "--t=", 4) == 0) {
      options.diff.internal_threshold_t = std::atof(arg + 4);
    } else if (std::strncmp(arg, "--f=", 4) == 0) {
      options.diff.leaf_threshold_f = std::atof(arg + 4);
    } else if (old_path == nullptr) {
      old_path = arg;
    } else if (new_path == nullptr) {
      new_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n", arg);
      return 2;
    }
  }

  if (demo || old_path == nullptr || new_path == nullptr) {
    old_text = kAppendixAOldDocument;
    new_text = kAppendixANewDocument;
    std::fprintf(stderr,
                 "[ladiff] running on the embedded Appendix A documents "
                 "(Figures 14-15 of the paper)\n");
  } else {
    if (!ReadFile(old_path, &old_text)) {
      std::fprintf(stderr, "cannot read %s\n", old_path);
      return 1;
    }
    if (!ReadFile(new_path, &new_text)) {
      std::fprintf(stderr, "cannot read %s\n", new_path);
      return 1;
    }
  }

  StatusOr<LaDiffResult> result =
      DiffLatexDocuments(old_text, new_text, options);
  if (!result.ok()) {
    std::fprintf(stderr, "ladiff failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::fputs(result->markup.c_str(), stdout);
  std::fprintf(stderr,
               "[ladiff] %zu inserts, %zu deletes, %zu updates, %zu moves "
               "(cost %.2f; %zu leaf comparisons)\n",
               result->diff.stats.inserts, result->diff.stats.deletes,
               result->diff.stats.updates, result->diff.stats.moves,
               result->diff.stats.script_cost,
               result->diff.stats.compare_calls);
  return 0;
}
