// The configuration-management scenario of the paper's introduction: an
// architect's database and an electrician's database describe the same
// building and are updated independently; periodic consistent
// configurations must be produced by computing deltas against the last
// configuration and highlighting conflicts.
//
// Records here carry keys ("key=<id> ..."), but — exactly as the paper
// warns — ids are NOT stable across versions for every object (the pillar
// that was 778899 may come back as 12345). The hybrid matcher uses keys
// where they exist and are stable, and falls back to value/structure
// matching for the rest.

#include <cstdio>
#include <memory>

#include "core/delta_query.h"
#include "core/diff.h"
#include "core/keyed_match.h"
#include "tree/builder.h"

int main() {
  using namespace treediff;

  auto labels = std::make_shared<LabelTable>();

  // Last agreed configuration.
  StatusOr<Tree> base = ParseSexpr(
      "(building"
      " (floor (room"
      "   (record \"key=p1 pillar at 3 4 height 300\")"
      "   (record \"key=w1 wall north length 500\")"
      "   (record \"pillar at 9 9 height 250\"))"  // Keyless legacy record.
      " (room"
      "   (record \"key=c1 conduit 220v along east wall\")))"
      " (floor (room"
      "   (record \"key=p2 pillar at 5 5 height 300\"))))",
      labels);

  // The architect's new version: p1's height changed, the keyless pillar
  // re-entered with a key, a wall was added, and p2's room moved floors.
  StatusOr<Tree> architect = ParseSexpr(
      "(building"
      " (floor (room"
      "   (record \"key=p1 pillar at 3 4 height 320\")"
      "   (record \"key=w1 wall north length 500\")"
      "   (record \"key=p9 pillar at 9 9 height 250\")"
      "   (record \"key=w2 wall south length 480\"))"
      " (room"
      "   (record \"key=c1 conduit 220v along east wall\")"
      "   (record \"key=p2 pillar at 5 5 height 300\"))))",
      labels);
  if (!base.ok() || !architect.ok()) {
    std::fprintf(stderr, "parse error\n");
    return 1;
  }

  // Hybrid matching: keys first (p1, w1, c1 pair instantly, however much
  // their values changed), values and structure for the rest (the renamed
  // pillar matches by content despite the new key).
  WordLcsComparator cmp;
  CriteriaEvaluator eval(*base, *architect, &cmp, {});
  Matching matching =
      ComputeHybridMatch(*base, *architect, ValuePrefixKey, eval);

  StatusOr<EditScriptResult> script =
      GenerateEditScript(*base, *architect, matching, &cmp);
  if (!script.ok()) {
    std::fprintf(stderr, "script failed: %s\n",
                 script.status().ToString().c_str());
    return 1;
  }

  std::printf("== Edit script (configuration delta) ==\n%s\n",
              script->script.ToString(*labels).c_str());

  StatusOr<DeltaTree> delta =
      BuildDeltaTree(*base, *architect, matching, script->script);
  if (!delta.ok()) {
    std::fprintf(stderr, "delta failed: %s\n",
                 delta.status().ToString().c_str());
    return 1;
  }

  std::printf("== Change report ==\n%s\n",
              RenderChangeReport(*delta, *labels).c_str());

  // Conflict highlighting: fire a rule on every updated record so the
  // electrician can review geometry changes that may affect conduits.
  std::vector<ActiveRule> rules;
  rules.push_back({"review-updated-record",
                   MaskOf(DeltaAnnotation::kUpdated), labels->Find("record"),
                   nullptr});
  std::printf("== Records needing review ==\n");
  for (const RuleFiring& f : EvaluateRules(*delta, *labels, rules)) {
    const DeltaNode& n = delta->node(f.hit.node);
    std::printf("  %s\n    was: %s\n    now: %s\n", f.hit.path.c_str(),
                n.old_value.c_str(), n.value.c_str());
  }

  std::printf("\nstats: %zu matched pairs, %zu compare calls (keys matched "
              "the rest for free)\n",
              matching.size(), cmp.calls());
  return 0;
}
