// The full configuration-management loop from the paper's introduction: the
// architect's and the electrician's databases evolve independently from the
// last agreed configuration; a new consistent configuration is produced by
// merging both deltas and highlighting the conflicts for human review.

#include <cstdio>
#include <memory>

#include "store/three_way.h"
#include "tree/builder.h"

int main() {
  using namespace treediff;

  auto labels = std::make_shared<LabelTable>();

  StatusOr<Tree> base = ParseSexpr(
      "(building"
      " (floor (room"
      "   (record \"pillar p1 at 3 4 height 300\")"
      "   (record \"wall north length 500 material brick\")"
      "   (record \"outlet o1 on north wall\"))"
      "  (room"
      "   (record \"pillar p2 at 8 8 height 300\")"
      "   (record \"conduit c1 along east wall\"))))",
      labels);

  // The architect: raises pillar p1, re-materials the wall, adds a door.
  StatusOr<Tree> architect = ParseSexpr(
      "(building"
      " (floor (room"
      "   (record \"pillar p1 at 3 4 height 320\")"
      "   (record \"wall north length 500 material concrete\")"
      "   (record \"outlet o1 on north wall\")"
      "   (record \"door d1 in south wall\"))"
      "  (room"
      "   (record \"pillar p2 at 8 8 height 300\")"
      "   (record \"conduit c1 along east wall\"))))",
      labels);

  // The electrician: moves outlet o1 to the second room, re-materials the
  // SAME wall differently (conflict!), adds a breaker panel.
  StatusOr<Tree> electrician = ParseSexpr(
      "(building"
      " (floor (room"
      "   (record \"pillar p1 at 3 4 height 300\")"
      "   (record \"wall north length 500 material drywall\"))"
      "  (room"
      "   (record \"pillar p2 at 8 8 height 300\")"
      "   (record \"conduit c1 along east wall\")"
      "   (record \"outlet o1 on north wall\")"
      "   (record \"panel b1 beside the door\"))))",
      labels);

  if (!base.ok() || !architect.ok() || !electrician.ok()) {
    std::fprintf(stderr, "parse error\n");
    return 1;
  }

  DiffOptions options;
  options.internal_threshold_t = 0.5;
  StatusOr<ThreeWayResult> merge =
      ThreeWayMerge(*base, *architect, *electrician, options);
  if (!merge.ok()) {
    std::fprintf(stderr, "merge failed: %s\n",
                 merge.status().ToString().c_str());
    return 1;
  }

  std::printf("== Merged configuration ==\n%s\n\n",
              merge->merged.ToDebugString().c_str());

  std::printf("== Conflicts requiring review ==\n");
  if (merge->conflicts.empty()) std::printf("  (none)\n");
  for (const MergeConflict& c : merge->conflicts) {
    std::printf("  [%s] base record: \"%s\"\n      %s\n",
                ConflictKindName(c.kind),
                c.base_node != kInvalidNode && base->Alive(c.base_node)
                    ? base->value(c.base_node).c_str()
                    : "<structure>",
                c.description.c_str());
  }

  std::printf(
      "\napplied %zu architect ops + %zu electrician ops "
      "(%zu skipped as conflicting/duplicate)\n",
      merge->ops_from_ours, merge->ops_from_theirs, merge->skipped_theirs);
  return 0;
}
