// Quickstart: build two small document trees, diff them, and print the
// matching, the minimum-cost edit script, the delta tree, and the marked-up
// rendering — the full pipeline of the paper in ~60 lines.

#include <cstdio>
#include <memory>

#include "core/diff.h"
#include "doc/markup.h"
#include "tree/builder.h"

int main() {
  using namespace treediff;

  // Both versions share one label table (labels are interned ids).
  auto labels = std::make_shared<LabelTable>();

  // The paper's running example (Figure 1), as document trees.
  StatusOr<Tree> t1 = ParseSexpr(
      "(document"
      " (paragraph (sentence \"The old first sentence.\")"
      "            (sentence \"A doomed sentence.\"))"
      " (paragraph (sentence \"Body text stays put.\")"
      "            (sentence \"Another body sentence.\")"
      "            (sentence \"The closing thought.\"))"
      " (paragraph (sentence \"A lonely paragraph.\")))",
      labels);
  StatusOr<Tree> t2 = ParseSexpr(
      "(document"
      " (paragraph (sentence \"The old first sentence.\"))"
      " (paragraph (sentence \"A lonely paragraph.\"))"
      " (paragraph (sentence \"Body text stays put.\")"
      "            (sentence \"Another body sentence.\")"
      "            (sentence \"A brand new insertion.\")"
      "            (sentence \"The closing thought.\")))",
      labels);
  if (!t1.ok() || !t2.ok()) {
    std::fprintf(stderr, "parse error\n");
    return 1;
  }

  // Phase 1 + 2: good matching (FastMatch) and minimum conforming edit
  // script (EditScript).
  StatusOr<DiffResult> diff = DiffTrees(*t1, *t2);
  if (!diff.ok()) {
    std::fprintf(stderr, "diff failed: %s\n",
                 diff.status().ToString().c_str());
    return 1;
  }

  std::printf("== Old tree ==\n%s\n\n", t1->ToDebugString().c_str());
  std::printf("== New tree ==\n%s\n\n", t2->ToDebugString().c_str());

  std::printf("== Matching (%zu pairs) ==\n", diff->matching.size());
  for (auto [x, y] : diff->matching.Pairs()) {
    std::printf("  %d <-> %d  (%s)\n", x, y, t1->label_name(x).c_str());
  }

  std::printf("\n== Edit script (cost %.1f) ==\n%s",
              diff->script.TotalCost(),
              diff->script.ToString(*labels).c_str());

  // The delta tree superimposes old and new (Section 6).
  StatusOr<DeltaTree> delta = BuildDeltaTree(*t1, *t2, *diff);
  if (!delta.ok()) {
    std::fprintf(stderr, "delta failed: %s\n",
                 delta.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== Delta tree ==\n%s\n", delta->ToDebugString(*labels).c_str());

  std::printf("\n== Marked-up rendering ==\n%s",
              RenderMarkup(*delta, *labels, MarkupFormat::kText).c_str());

  std::printf("\nstats: %zu compares, %zu partner checks, d=%zu, e=%zu\n",
              diff->stats.compare_calls, diff->stats.partner_checks,
              diff->stats.unweighted_edit_distance,
              diff->stats.weighted_edit_distance);
  return 0;
}
