// tdiff — the general-purpose change detector: diff two hierarchical files
// of any supported format and choose how to view the delta.
//
// Usage:
//   tdiff [options] old-file new-file
//
// Options:
//   --format=auto|latex|html|xml|markdown|sexpr   input format (auto by
//                                        extension, falling back to sexpr)
//   --output=markup|script|report|delta|stats   what to print (default:
//                                        markup; "script" prints the wire
//                                        format that tdiff --apply accepts)
//   --f=<0..1>      leaf match threshold (Matching Criterion 1, default 0.5)
//   --t=<0.5..1>    internal match threshold (Criterion 2, default 0.6)
//   --k=<n>         A(k) fallback window (0 = exhaustive)
//   --slow-match    use Algorithm Match instead of FastMatch
//   --complete      enable the context-completion pass (data-bearing XML)
//
// Exit status: 0 = identical, 1 = differences found, 2 = error (like diff).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/delta_query.h"
#include "core/diff.h"
#include "core/script_io.h"
#include "doc/html_parser.h"
#include "doc/latex_parser.h"
#include "doc/markdown_parser.h"
#include "doc/markup.h"
#include "doc/xml.h"
#include "tree/builder.h"

namespace {

using namespace treediff;

enum class Format { kAuto, kLatex, kHtml, kXml, kMarkdown, kSexpr };

Format FormatByExtension(const std::string& path) {
  auto ends_with = [&](const char* suffix) {
    const size_t n = std::strlen(suffix);
    return path.size() >= n && path.compare(path.size() - n, n, suffix) == 0;
  };
  if (ends_with(".tex") || ends_with(".latex")) return Format::kLatex;
  if (ends_with(".html") || ends_with(".htm")) return Format::kHtml;
  if (ends_with(".xml") || ends_with(".svg")) return Format::kXml;
  if (ends_with(".md") || ends_with(".markdown")) return Format::kMarkdown;
  return Format::kSexpr;
}

StatusOr<Tree> ParseAs(Format format, const std::string& text,
                       std::shared_ptr<LabelTable> labels) {
  switch (format) {
    case Format::kLatex:
      return ParseLatex(text, std::move(labels));
    case Format::kHtml:
      return ParseHtml(text, std::move(labels));
    case Format::kXml: {
      XmlParseOptions options;
      options.split_sentences = true;
      return ParseXml(text, std::move(labels), options);
    }
    case Format::kMarkdown:
      return ParseMarkdown(text, std::move(labels));
    case Format::kSexpr:
    case Format::kAuto:
      return ParseSexpr(text, std::move(labels));
  }
  return Status::Internal("unreachable");
}

bool ReadFile(const char* path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Format format = Format::kAuto;
  std::string output = "markup";
  DiffOptions options;
  const char* old_path = nullptr;
  const char* new_path = nullptr;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--format=", 9) == 0) {
      const char* f = arg + 9;
      if (std::strcmp(f, "auto") == 0) {
        format = Format::kAuto;
      } else if (std::strcmp(f, "latex") == 0) {
        format = Format::kLatex;
      } else if (std::strcmp(f, "html") == 0) {
        format = Format::kHtml;
      } else if (std::strcmp(f, "xml") == 0) {
        format = Format::kXml;
      } else if (std::strcmp(f, "markdown") == 0 ||
                 std::strcmp(f, "md") == 0) {
        format = Format::kMarkdown;
      } else if (std::strcmp(f, "sexpr") == 0) {
        format = Format::kSexpr;
      } else {
        std::fprintf(stderr, "tdiff: unknown format '%s'\n", f);
        return 2;
      }
    } else if (std::strncmp(arg, "--output=", 9) == 0) {
      output = arg + 9;
    } else if (std::strncmp(arg, "--f=", 4) == 0) {
      options.leaf_threshold_f = std::atof(arg + 4);
    } else if (std::strncmp(arg, "--t=", 4) == 0) {
      options.internal_threshold_t = std::atof(arg + 4);
    } else if (std::strncmp(arg, "--k=", 4) == 0) {
      options.fallback_limit_k = std::atoi(arg + 4);
    } else if (std::strcmp(arg, "--slow-match") == 0) {
      options.use_fast_match = false;
    } else if (std::strcmp(arg, "--complete") == 0) {
      options.complete_context = true;
    } else if (old_path == nullptr) {
      old_path = arg;
    } else if (new_path == nullptr) {
      new_path = arg;
    } else {
      std::fprintf(stderr, "tdiff: unexpected argument '%s'\n", arg);
      return 2;
    }
  }
  if (old_path == nullptr || new_path == nullptr) {
    std::fprintf(stderr,
                 "usage: tdiff [--format=...] [--output=markup|script|"
                 "report|delta|stats] old new\n");
    return 2;
  }

  std::string old_text, new_text;
  if (!ReadFile(old_path, &old_text)) {
    std::fprintf(stderr, "tdiff: cannot read %s\n", old_path);
    return 2;
  }
  if (!ReadFile(new_path, &new_text)) {
    std::fprintf(stderr, "tdiff: cannot read %s\n", new_path);
    return 2;
  }

  Format old_format =
      format == Format::kAuto ? FormatByExtension(old_path) : format;
  Format new_format =
      format == Format::kAuto ? FormatByExtension(new_path) : format;

  auto labels = std::make_shared<LabelTable>();
  auto t1 = ParseAs(old_format, old_text, labels);
  if (!t1.ok()) {
    std::fprintf(stderr, "tdiff: %s: %s\n", old_path,
                 t1.status().ToString().c_str());
    return 2;
  }
  auto t2 = ParseAs(new_format, new_text, labels);
  if (!t2.ok()) {
    std::fprintf(stderr, "tdiff: %s: %s\n", new_path,
                 t2.status().ToString().c_str());
    return 2;
  }

  auto diff = DiffTrees(*t1, *t2, options);
  if (!diff.ok()) {
    std::fprintf(stderr, "tdiff: %s\n", diff.status().ToString().c_str());
    return 2;
  }

  auto delta = BuildDeltaTree(*t1, *t2, *diff);
  if (!delta.ok()) {
    std::fprintf(stderr, "tdiff: %s\n", delta.status().ToString().c_str());
    return 2;
  }

  if (output == "script") {
    std::fputs(FormatEditScript(diff->script, *labels).c_str(), stdout);
  } else if (output == "report") {
    std::fputs(RenderChangeReport(*delta, *labels).c_str(), stdout);
  } else if (output == "delta") {
    std::printf("%s\n", delta->ToDebugString(*labels).c_str());
  } else if (output == "stats") {
    const DiffStats& s = diff->stats;
    std::printf(
        "nodes: %zu -> %zu\nmatched pairs: %zu\n"
        "inserts: %zu\ndeletes: %zu\nupdates: %zu\nmoves: %zu "
        "(%zu intra-parent, %zu inter-parent)\n"
        "script cost: %.2f\nunweighted distance d: %zu\n"
        "weighted distance e: %zu\ncompare calls: %zu\npartner checks: %zu\n"
        "match time: %.3f ms\nscript time: %.3f ms\n",
        t1->size(), t2->size(), diff->matching.size(), s.inserts, s.deletes,
        s.updates, s.moves, s.intra_parent_moves, s.inter_parent_moves,
        s.script_cost, s.unweighted_edit_distance, s.weighted_edit_distance,
        s.compare_calls, s.partner_checks, s.match_seconds * 1e3,
        s.script_seconds * 1e3);
  } else if (output == "markup") {
    switch (new_format) {
      case Format::kLatex:
        std::fputs(RenderMarkup(*delta, *labels, MarkupFormat::kLatex).c_str(),
                   stdout);
        break;
      case Format::kHtml:
        std::fputs(RenderMarkup(*delta, *labels, MarkupFormat::kHtml).c_str(),
                   stdout);
        break;
      case Format::kXml:
        std::fputs(RenderXmlMarkup(*delta, *labels).c_str(), stdout);
        break;
      case Format::kMarkdown:
        std::fputs(
            RenderMarkup(*delta, *labels, MarkupFormat::kMarkdown).c_str(),
            stdout);
        break;
      default:
        std::fputs(RenderMarkup(*delta, *labels, MarkupFormat::kText).c_str(),
                   stdout);
        break;
    }
  } else {
    std::fprintf(stderr, "tdiff: unknown output '%s'\n", output.c_str());
    return 2;
  }

  return diff->script.empty() ? 0 : 1;
}
