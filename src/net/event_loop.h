#ifndef TREEDIFF_NET_EVENT_LOOP_H_
#define TREEDIFF_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "util/mutex.h"
#include "util/socket.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace treediff {
namespace net {

/// One edge-triggered epoll event loop, the per-thread reactor of the
/// network front end. A loop owns a set of registered fds and dispatches
/// their readiness events to handlers on its own thread; other threads talk
/// to it only through Post(), which enqueues a task and wakes the loop via
/// an eventfd.
///
/// Everything except Post() and Stop() must be called on the loop thread
/// (or before Run() starts). Handlers run on the loop thread; because
/// registration is edge-triggered (EPOLLET is always added), a handler must
/// drain its fd to EAGAIN before returning or it will not be called again
/// for the data it left behind.
class EventLoop {
 public:
  using Handler = std::function<void(uint32_t epoll_events)>;

  EventLoop() = default;
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll instance and the wakeup eventfd.
  Status Init();

  /// Runs until Stop(). Call from the thread that will own the loop.
  void Run();

  /// Asks the loop to exit after the current dispatch round. Thread-safe.
  void Stop();

  /// Enqueues `task` to run on the loop thread and wakes the loop.
  /// Thread-safe; tasks run in Post order, after the current epoll batch.
  void Post(std::function<void()> task);

  /// Registers `fd` with `events` (EPOLLET is added implicitly). The
  /// handler is invoked with the ready-event mask. Loop thread only.
  Status Add(int fd, uint32_t events, Handler handler);

  /// Changes the interest set of a registered fd. Loop thread only.
  Status Mod(int fd, uint32_t events);

  /// Deregisters `fd` (does not close it). Safe against events for the fd
  /// still sitting in the current dispatch batch. Loop thread only.
  void Del(int fd);

  /// Whether the calling thread is the one inside Run(). For assertions.
  bool OnLoopThread() const;

 private:
  void DrainWakeup();

  OwnedFd epoll_fd_;
  OwnedFd wakeup_fd_;

  Mutex mu_;
  std::vector<std::function<void()>> pending_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;

  /// Loop-thread only. shared_ptr so a handler that deregisters (even its
  /// own fd) cannot free a handler the current batch still references.
  std::unordered_map<int, std::shared_ptr<Handler>> handlers_;

  std::atomic<uint64_t> loop_thread_id_{0};
};

}  // namespace net
}  // namespace treediff

#endif  // TREEDIFF_NET_EVENT_LOOP_H_
