#ifndef TREEDIFF_NET_SERVER_H_
#define TREEDIFF_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/admission.h"
#include "net/event_loop.h"
#include "net/frontend.h"
#include "net/http_metrics.h"
#include "net/wire.h"
#include "service/diff_service.h"
#include "util/mutex.h"
#include "util/socket.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace treediff {
namespace net {

struct NetServerOptions {
  std::string host = "127.0.0.1";

  /// Binary-protocol port; 0 binds an ephemeral port (read it back with
  /// port()).
  uint16_t port = 0;

  /// HTTP /metrics text endpoint on its own port (0 = ephemeral).
  bool enable_metrics_endpoint = true;
  uint16_t metrics_port = 0;

  /// Event-loop (reactor) threads. Connections are assigned round-robin
  /// at accept and stay on their loop for life.
  int num_event_threads = 2;

  /// Ceiling on one request frame's payload; a larger declared length is
  /// a fatal protocol error before any payload is buffered.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Per-connection write-buffer flow control: once this many encoded
  /// response bytes are waiting on a connection, the server stops reading
  /// (and decoding) from it until the client drains below half the cap.
  /// A slow reader throttles itself, never the event loop or other
  /// connections.
  size_t write_buffer_limit = 4u << 20;

  /// Most decoded-but-unanswered requests per connection; at the cap the
  /// connection's stream pauses (frames stay in the kernel buffer) until
  /// responses complete. Pipelining depth, bounded.
  size_t max_pipeline = 128;

  /// Most simultaneous connections; beyond it new accepts are closed
  /// immediately.
  size_t max_connections = 8192;

  /// Graceful shutdown budget: how long Shutdown() lets admitted requests
  /// finish before cancelling whatever is still queued (each cancelled
  /// request gets an error response, not silence).
  double drain_deadline_seconds = 5.0;

  /// Control-operation pool (open/commit/metrics): threads and queue.
  int control_threads = 1;
  size_t control_queue = 64;

  /// Multi-tenant admission (quotas + DRR fair share) ahead of the
  /// DiffService pool. `max_dispatched` should stay at or below the
  /// service's queue capacity so admitted work is never shed by the pool.
  TenantSchedulerOptions admission;
};

/// The network front end: an edge-triggered epoll TCP server speaking the
/// length-prefixed binary protocol (net/wire.h) with request pipelining,
/// per-connection write-buffer flow control, weighted-fair multi-tenant
/// admission, and an HTTP /metrics exposition endpoint — the serving skin
/// over an existing DiffService.
///
/// Wiring: one listener socket on loop 0, N event-loop threads owning
/// connections round-robin; decoded frames pass the TenantScheduler
/// (quotas + deficit-round-robin fair share) and ride the DiffService's
/// async Submit path; completions post the encoded response back to the
/// connection's loop, which writes it out under flow control.
///
/// Counters land in the DiffService's MetricsRegistry under net_*.
class NetServer {
 public:
  /// `service` is borrowed and must outlive the server.
  NetServer(DiffService* service, NetServerOptions options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, registers the listener, spawns event threads and the metrics
  /// endpoint. Call once.
  Status Start();

  /// Bound binary-protocol / metrics ports (valid after Start).
  uint16_t port() const { return port_; }
  uint16_t metrics_port() const { return metrics_port_; }

  /// Graceful shutdown: stops the acceptor, rejects frames that arrive
  /// while draining (with kUnavailable error responses), lets admitted
  /// requests finish for up to drain_deadline_seconds, cancels the rest
  /// with error responses, flushes what the sockets will take, then
  /// closes. Idempotent; also run by the destructor.
  void Shutdown();

  /// Connections currently open. For tests and status surfaces.
  size_t active_connections() const EXCLUDES(conns_mu_);

 private:
  struct Connection;

  void AcceptReady();
  void SetupConnection(int fd);  // Runs on the owning loop.
  void HandleConnEvent(const std::shared_ptr<Connection>& conn,
                       uint32_t events);
  void ReadReady(const std::shared_ptr<Connection>& conn);
  void ProcessFrames(const std::shared_ptr<Connection>& conn);
  void HandleFrame(const std::shared_ptr<Connection>& conn,
                   WireRequest request);
  void QueueResponse(const std::shared_ptr<Connection>& conn,
                     const WireResponse& response);
  void FlushWrites(const std::shared_ptr<Connection>& conn);
  void MaybeResume(const std::shared_ptr<Connection>& conn);
  void CloseConnection(const std::shared_ptr<Connection>& conn);

  /// Posts the encoded response to the connection's loop; drops it (with a
  /// counter) if the connection died first.
  void CompleteRequest(const std::weak_ptr<Connection>& weak,
                       WireResponse response);

  DiffService* service_;
  NetServerOptions options_;

  ThreadPool control_pool_;
  std::unique_ptr<TenantScheduler> scheduler_;
  std::unique_ptr<Frontend> frontend_;
  std::unique_ptr<MetricsHttpServer> metrics_http_;

  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<std::thread> loop_threads_;
  std::atomic<size_t> next_loop_{0};

  OwnedFd listener_;
  uint16_t port_ = 0;
  uint16_t metrics_port_ = 0;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> shut_down_{false};

  /// Connections with responses still waiting in their write buffer —
  /// read by Shutdown's flush wait from outside the loop threads.
  std::atomic<size_t> conns_with_pending_writes_{0};

  mutable Mutex conns_mu_;
  std::map<int, std::shared_ptr<Connection>> conns_ GUARDED_BY(conns_mu_);

  // Hot-path metric handles (service registry; recording is atomics).
  Counter* accepted_ = nullptr;
  Counter* closed_ = nullptr;
  Counter* rejected_ = nullptr;
  Counter* frames_ = nullptr;
  Counter* protocol_errors_ = nullptr;
  Counter* responses_ = nullptr;
  Counter* responses_dropped_ = nullptr;
  Counter* flow_pauses_ = nullptr;
  Counter* pipeline_pauses_ = nullptr;
  Counter* drain_rejects_ = nullptr;
  Histogram* request_seconds_ = nullptr;
};

}  // namespace net
}  // namespace treediff

#endif  // TREEDIFF_NET_SERVER_H_
