#ifndef TREEDIFF_NET_HTTP_METRICS_H_
#define TREEDIFF_NET_HTTP_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "util/metrics.h"
#include "util/socket.h"
#include "util/status.h"

namespace treediff {
namespace net {

/// A deliberately minimal HTTP/1.0 endpoint serving the metrics registry
/// in Prometheus text exposition format — just enough protocol for
/// `curl`/Prometheus to scrape `GET /metrics`. One thread, one request per
/// connection, no keep-alive: scraping is a once-per-interval operation,
/// not a throughput surface. Everything else 404s.
class MetricsHttpServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;  // 0 = ephemeral.
  };

  /// `registry` is borrowed and must outlive the server.
  MetricsHttpServer(const MetricsRegistry* registry, Options options)
      : registry_(registry), options_(std::move(options)) {}
  ~MetricsHttpServer() { Stop(); }

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds and spawns the serving thread.
  Status Start();

  /// Closes the listener and joins the thread. Idempotent.
  void Stop();

  uint16_t port() const { return port_; }

 private:
  void Serve();
  void HandleOne(int fd);

  const MetricsRegistry* registry_;
  Options options_;
  OwnedFd listener_;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace net
}  // namespace treediff

#endif  // TREEDIFF_NET_HTTP_METRICS_H_
