#ifndef TREEDIFF_NET_FRONTEND_H_
#define TREEDIFF_NET_FRONTEND_H_

#include <functional>

#include "net/wire.h"
#include "service/diff_service.h"
#include "util/thread_pool.h"

namespace treediff {
namespace net {

/// Executes decoded wire requests against a DiffService — the one place
/// opcode semantics live, shared by the epoll server and the line-protocol
/// compat adapter in treediff_serve (which is why the two surfaces cannot
/// drift apart).
///
/// Diff work rides the service's own async Submit path (its worker pool);
/// control operations (open/commit/metrics) run on the small control pool
/// passed in, so a slow store commit never blocks an event-loop thread.
/// `done` is invoked exactly once per Execute, on a service worker, a
/// control-pool thread, or inline (ping; shed at admission; pool rejected).
class Frontend {
 public:
  using Done = std::function<void(WireResponse)>;

  /// Both pointers are borrowed and must outlive the frontend.
  Frontend(DiffService* service, ThreadPool* control_pool)
      : service_(service), control_pool_(control_pool) {}

  void Execute(WireRequest request, Done done);

  /// Maps a wire format byte (already validated by the decoder) to the
  /// service's enum.
  static DiffRequest::Format ToFormat(uint8_t wire_format);

  /// Builds the response for a finished diff (also used to shape error
  /// responses uniformly).
  static WireResponse FromDiffResponse(const WireRequest& request,
                                       const DiffResponse& response);

  /// An error response echoing the request's correlation fields.
  static WireResponse ErrorResponse(const WireRequest& request,
                                    const Status& status);

 private:
  void ExecuteControl(WireRequest request, Done done);

  DiffService* service_;
  ThreadPool* control_pool_;
};

}  // namespace net
}  // namespace treediff

#endif  // TREEDIFF_NET_FRONTEND_H_
