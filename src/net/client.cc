#include "net/client.h"

#include <unistd.h>
#include <utility>

namespace treediff {
namespace net {

Status SimpleClient::Connect(const std::string& host, uint16_t port) {
  StatusOr<OwnedFd> fd = ConnectTcp(host, port);
  if (!fd.ok()) return fd.status();
  fd_ = std::move(*fd);
  decoder_ = FrameDecoder();
  return SetNoDelay(fd_.get());
}

Status SimpleClient::Call(const WireRequest& request, WireResponse* response) {
  TREEDIFF_RETURN_IF_ERROR(Send(request));
  return Receive(response);
}

Status SimpleClient::Send(const WireRequest& request) {
  if (!fd_.valid()) return Status::FailedPrecondition("client not connected");
  const std::string encoded = EncodeRequest(request);
  return WriteAll(fd_.get(), encoded.data(), encoded.size());
}

Status SimpleClient::SendRaw(const std::string& bytes) {
  if (!fd_.valid()) return Status::FailedPrecondition("client not connected");
  return WriteAll(fd_.get(), bytes.data(), bytes.size());
}

Status SimpleClient::Receive(WireResponse* response) {
  if (!fd_.valid()) return Status::FailedPrecondition("client not connected");
  for (;;) {
    Status error = Status::Ok();
    const DecodeResult result = decoder_.NextResponse(response, &error);
    if (result == DecodeResult::kFrame) return Status::Ok();
    if (result != DecodeResult::kNeedMore) return error;

    char buf[16 * 1024];
    const ssize_t n = ::read(fd_.get(), buf, sizeof buf);
    if (n > 0) {
      decoder_.Append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::Unavailable("connection closed while awaiting response");
    }
    if (errno == EINTR) continue;
    return Status::Unavailable("read failed while awaiting response");
  }
}

Status SimpleClient::Ping() {
  WireRequest request;
  request.opcode = Opcode::kPing;
  request.request_id = next_request_id_++;
  WireResponse response;
  TREEDIFF_RETURN_IF_ERROR(Call(request, &response));
  if (!response.ok()) return Status(response.code(), response.payload);
  return Status::Ok();
}

Status SimpleClient::Diff(const std::string& old_doc,
                          const std::string& new_doc, uint8_t format,
                          WireResponse* response, const std::string& tenant,
                          uint32_t deadline_ms) {
  WireRequest request;
  request.opcode = Opcode::kDiff;
  request.format = format;
  request.request_id = next_request_id_++;
  request.deadline_ms = deadline_ms;
  request.tenant = tenant;
  request.old_doc = old_doc;
  request.new_doc = new_doc;
  return Call(request, response);
}

Status SimpleClient::Open(const std::string& doc_id, const std::string& doc,
                          uint8_t format, WireResponse* response) {
  WireRequest request;
  request.opcode = Opcode::kOpen;
  request.format = format;
  request.request_id = next_request_id_++;
  request.doc_id = doc_id;
  request.old_doc = doc;
  return Call(request, response);
}

Status SimpleClient::Commit(const std::string& doc_id, const std::string& doc,
                            uint8_t format, WireResponse* response) {
  WireRequest request;
  request.opcode = Opcode::kCommit;
  request.format = format;
  request.request_id = next_request_id_++;
  request.doc_id = doc_id;
  request.old_doc = doc;
  return Call(request, response);
}

Status SimpleClient::Vdiff(const std::string& doc_id, int32_t from_version,
                           int32_t to_version, WireResponse* response,
                           const std::string& tenant) {
  WireRequest request;
  request.opcode = Opcode::kVdiff;
  request.request_id = next_request_id_++;
  request.tenant = tenant;
  request.doc_id = doc_id;
  request.from_version = from_version;
  request.to_version = to_version;
  return Call(request, response);
}

Status SimpleClient::Metrics(std::string* text) {
  WireRequest request;
  request.opcode = Opcode::kMetrics;
  request.request_id = next_request_id_++;
  WireResponse response;
  TREEDIFF_RETURN_IF_ERROR(Call(request, &response));
  if (!response.ok()) return Status(response.code(), response.payload);
  *text = std::move(response.payload);
  return Status::Ok();
}

}  // namespace net
}  // namespace treediff
