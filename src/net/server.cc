#include "net/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <utility>
#include <vector>

namespace treediff {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace

/// Per-connection state. Owned by exactly one event loop; every field is
/// touched only on that loop's thread (completions cross threads as posted
/// tasks, never as direct field access).
struct NetServer::Connection
    : public std::enable_shared_from_this<Connection> {
  int fd = -1;
  EventLoop* loop = nullptr;

  FrameDecoder decoder;
  std::string out;       // Encoded responses waiting for the socket.
  size_t out_pos = 0;    // Bytes of `out` already written.
  size_t inflight = 0;   // Decoded frames without a queued response yet.

  bool want_write = false;     // EPOLLOUT armed.
  bool write_paused = false;   // Flow control: output backlog over cap.
  bool pipeline_paused = false;  // Pipelining depth at cap.
  bool peer_closed = false;    // Read EOF; close once drained.
  bool close_after_flush = false;  // Fatal protocol error pending.
  bool counted_pending = false;    // In conns_with_pending_writes_.
  bool closed = false;

  Connection(int fd_in, EventLoop* loop_in, size_t max_frame)
      : fd(fd_in), loop(loop_in), decoder(max_frame) {}

  bool CanProcess() const {
    return !closed && !write_paused && !pipeline_paused &&
           !close_after_flush;
  }
};

NetServer::NetServer(DiffService* service, NetServerOptions options)
    : service_(service),
      options_(std::move(options)),
      control_pool_(ThreadPool::Options{
          std::max(options_.control_threads, 1),
          std::max<size_t>(options_.control_queue, 1)}) {
  scheduler_ = std::make_unique<TenantScheduler>(options_.admission,
                                                 &service_->metrics());
  frontend_ = std::make_unique<Frontend>(service_, &control_pool_);

  MetricsRegistry& m = service_->metrics();
  accepted_ = m.counter("net_connections_accepted_total");
  closed_ = m.counter("net_connections_closed_total");
  rejected_ = m.counter("net_connections_rejected_total");
  frames_ = m.counter("net_frames_total");
  protocol_errors_ = m.counter("net_protocol_errors_total");
  responses_ = m.counter("net_responses_total");
  responses_dropped_ = m.counter("net_responses_dropped_total");
  flow_pauses_ = m.counter("net_flow_control_pauses_total");
  pipeline_pauses_ = m.counter("net_pipeline_pauses_total");
  drain_rejects_ = m.counter("net_drain_rejected_total");
  request_seconds_ = m.histogram("net_request_seconds");
}

NetServer::~NetServer() { Shutdown(); }

Status NetServer::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("NetServer::Start called twice");
  }

  StatusOr<OwnedFd> listener = ListenTcp(options_.host, options_.port, 512);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  Status nonblocking = SetNonBlocking(listener_.get());
  if (!nonblocking.ok()) return nonblocking;
  StatusOr<uint16_t> port = LocalPort(listener_.get());
  if (!port.ok()) return port.status();
  port_ = *port;

  const int n = std::max(options_.num_event_threads, 1);
  loops_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto loop = std::make_unique<EventLoop>();
    Status init = loop->Init();
    if (!init.ok()) return init;
    loops_.push_back(std::move(loop));
  }

  // The listener lives on loop 0. Registering before the threads spawn is
  // safe: epoll_ctl is thread-independent, and no event fires until Run().
  Status add = loops_[0]->Add(listener_.get(), EPOLLIN,
                              [this](uint32_t) { AcceptReady(); });
  if (!add.ok()) return add;

  for (auto& loop : loops_) {
    loop_threads_.emplace_back([raw = loop.get()] { raw->Run(); });
  }

  if (options_.enable_metrics_endpoint) {
    metrics_http_ = std::make_unique<MetricsHttpServer>(
        &service_->metrics(),
        MetricsHttpServer::Options{options_.host, options_.metrics_port});
    Status started = metrics_http_->Start();
    if (!started.ok()) return started;
    metrics_port_ = metrics_http_->port();
  }
  return Status::Ok();
}

void NetServer::AcceptReady() {
  // Edge-triggered: accept until EAGAIN or the listener is gone.
  for (;;) {
    const int fd =
        ::accept4(listener_.get(), nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or the listener closed under drain.
    }
    if (draining_.load(std::memory_order_relaxed) ||
        active_connections() >= options_.max_connections) {
      rejected_->Increment();
      (void)::close(fd);
      continue;
    }
    SetNoDelay(fd).IgnoreError();
    accepted_->Increment();
    EventLoop* target =
        loops_[next_loop_.fetch_add(1, std::memory_order_relaxed) %
               loops_.size()]
            .get();
    target->Post([this, fd] { SetupConnection(fd); });
  }
}

void NetServer::SetupConnection(int fd) {
  EventLoop* loop = nullptr;
  for (auto& candidate : loops_) {
    if (candidate->OnLoopThread()) {
      loop = candidate.get();
      break;
    }
  }
  auto conn = std::make_shared<Connection>(fd, loop, options_.max_frame_bytes);
  {
    MutexLock lock(&conns_mu_);
    conns_[fd] = conn;
  }
  std::weak_ptr<Connection> weak = conn;
  const Status added =
      conn->loop->Add(fd, EPOLLIN, [this, weak](uint32_t events) {
        if (std::shared_ptr<Connection> c = weak.lock()) {
          HandleConnEvent(c, events);
        }
      });
  if (!added.ok()) CloseConnection(conn);
}

void NetServer::HandleConnEvent(const std::shared_ptr<Connection>& conn,
                                uint32_t events) {
  if (conn->closed) return;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    CloseConnection(conn);
    return;
  }
  if ((events & EPOLLOUT) != 0) FlushWrites(conn);
  if ((events & EPOLLIN) != 0) ReadReady(conn);
}

void NetServer::ReadReady(const std::shared_ptr<Connection>& conn) {
  if (conn->closed) return;
  // Flow control: while paused the socket is left unread, so the kernel
  // buffer fills and TCP backpressure reaches the client. MaybeResume
  // re-runs this read when the pause lifts (the edge was consumed here).
  if (conn->write_paused || conn->pipeline_paused) return;

  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof buf);
    if (n > 0) {
      conn->decoder.Append(buf, static_cast<size_t>(n));
      // Decode between reads: a pause tripped mid-buffer must stop the
      // socket drain too, and answering early overlaps compute with I/O.
      ProcessFrames(conn);
      if (conn->closed || conn->write_paused || conn->pipeline_paused) {
        return;
      }
      continue;
    }
    if (n == 0) {
      // FIN. Serve what was pipelined, then close once drained.
      conn->peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(conn);
    return;
  }
  ProcessFrames(conn);
  if (!conn->closed && conn->peer_closed && conn->inflight == 0 &&
      conn->out_pos == conn->out.size()) {
    CloseConnection(conn);
  }
}

void NetServer::ProcessFrames(const std::shared_ptr<Connection>& conn) {
  while (conn->CanProcess()) {
    WireRequest request;
    Status error = Status::Ok();
    const DecodeResult result = conn->decoder.NextRequest(&request, &error);
    if (result == DecodeResult::kNeedMore) return;
    if (result == DecodeResult::kFrame) {
      frames_->Increment();
      HandleFrame(conn, std::move(request));
      continue;
    }
    protocol_errors_->Increment();
    // Both error tiers answer with an error frame; only a broken outer
    // framing (kError) poisons the stream and closes the connection.
    QueueResponse(conn, Frontend::ErrorResponse(request, error));
    if (result == DecodeResult::kError) {
      conn->close_after_flush = true;
      FlushWrites(conn);
      return;
    }
  }
}

void NetServer::HandleFrame(const std::shared_ptr<Connection>& conn,
                            WireRequest request) {
  if (draining_.load(std::memory_order_relaxed)) {
    drain_rejects_->Increment();
    QueueResponse(conn,
                  Frontend::ErrorResponse(
                      request, Status::Unavailable(
                                   "server draining: request rejected")));
    return;
  }

  // Correlation header the completion paths need after `request` moves.
  WireRequest header;
  header.opcode = request.opcode;
  header.request_id = request.request_id;
  const std::string tenant = request.tenant;

  ++conn->inflight;
  if (conn->inflight >= options_.max_pipeline && !conn->pipeline_paused) {
    conn->pipeline_paused = true;
    pipeline_pauses_->Increment();
  }

  std::weak_ptr<Connection> weak = conn;
  const Clock::time_point started = Clock::now();

  auto run = [this, weak, started, request = std::move(request)](
                 TenantScheduler::Done done) mutable {
    frontend_->Execute(
        std::move(request),
        [this, weak, started, done = std::move(done)](WireResponse response) {
          request_seconds_->Observe(Seconds(Clock::now() - started));
          CompleteRequest(weak, std::move(response));
          done();
        });
  };
  auto cancel = [this, weak, header](const Status& reason) {
    CompleteRequest(weak, Frontend::ErrorResponse(header, reason));
  };

  const Status admitted =
      scheduler_->Enqueue(tenant, std::move(run), std::move(cancel));
  if (!admitted.ok()) {
    // Shed at admission: answer inline (we are on the loop thread).
    --conn->inflight;
    MaybeResume(conn);
    QueueResponse(conn, Frontend::ErrorResponse(header, admitted));
  }
}

void NetServer::CompleteRequest(const std::weak_ptr<Connection>& weak,
                                WireResponse response) {
  // Encode off the loop thread (we may be on a worker): the loop task
  // just splices bytes and flushes.
  std::string encoded = EncodeResponse(response);
  std::shared_ptr<Connection> conn = weak.lock();
  if (conn == nullptr) {
    responses_dropped_->Increment();
    return;
  }
  EventLoop* loop = conn->loop;
  conn.reset();  // The task owns liveness; don't pin from here.
  loop->Post([this, weak, encoded = std::move(encoded)]() mutable {
    std::shared_ptr<Connection> c = weak.lock();
    if (c == nullptr || c->closed) {
      responses_dropped_->Increment();
      return;
    }
    --c->inflight;
    responses_->Increment();
    c->out += encoded;
    FlushWrites(c);
    if (c->closed) return;
    const size_t pending = c->out.size() - c->out_pos;
    if (pending > options_.write_buffer_limit && !c->write_paused) {
      c->write_paused = true;
      flow_pauses_->Increment();
    }
    MaybeResume(c);
    if (c->peer_closed && c->inflight == 0 &&
        c->out_pos == c->out.size()) {
      CloseConnection(c);
    }
  });
}

void NetServer::QueueResponse(const std::shared_ptr<Connection>& conn,
                              const WireResponse& response) {
  if (conn->closed) {
    responses_dropped_->Increment();
    return;
  }
  responses_->Increment();
  AppendResponse(response, &conn->out);
  FlushWrites(conn);
  if (conn->closed) return;
  const size_t pending = conn->out.size() - conn->out_pos;
  if (pending > options_.write_buffer_limit && !conn->write_paused) {
    conn->write_paused = true;
    flow_pauses_->Increment();
  }
}

void NetServer::FlushWrites(const std::shared_ptr<Connection>& conn) {
  if (conn->closed) return;
  while (conn->out_pos < conn->out.size()) {
    const ssize_t n = ::write(conn->fd, conn->out.data() + conn->out_pos,
                              conn->out.size() - conn->out_pos);
    if (n > 0) {
      conn->out_pos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        conn->loop->Mod(conn->fd, EPOLLIN | EPOLLOUT).IgnoreError();
      }
      break;
    }
    CloseConnection(conn);  // EPIPE/ECONNRESET and friends.
    return;
  }

  const size_t pending = conn->out.size() - conn->out_pos;
  if (pending == 0) {
    conn->out.clear();
    conn->out_pos = 0;
    if (conn->want_write) {
      conn->want_write = false;
      conn->loop->Mod(conn->fd, EPOLLIN).IgnoreError();
    }
    if (conn->close_after_flush) {
      CloseConnection(conn);
      return;
    }
  } else if (conn->out_pos > (1u << 20) &&
             conn->out_pos * 2 > conn->out.size()) {
    // Reclaim the written prefix once it dominates the buffer.
    conn->out.erase(0, conn->out_pos);
    conn->out_pos = 0;
  }

  // Track "has unflushed bytes" for Shutdown's flush wait.
  const bool has_pending = conn->out_pos < conn->out.size();
  if (has_pending != conn->counted_pending) {
    conn->counted_pending = has_pending;
    if (has_pending) {
      conns_with_pending_writes_.fetch_add(1, std::memory_order_relaxed);
    } else {
      conns_with_pending_writes_.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  // Flow-control resume at the low watermark (half the cap), so resume
  // doesn't flap on every write.
  if (conn->write_paused && pending < options_.write_buffer_limit / 2) {
    conn->write_paused = false;
    MaybeResume(conn);
  }
}

void NetServer::MaybeResume(const std::shared_ptr<Connection>& conn) {
  if (conn->closed) return;
  if (conn->pipeline_paused &&
      conn->inflight < options_.max_pipeline) {
    conn->pipeline_paused = false;
  }
  if (!conn->CanProcess()) return;
  // Frames already buffered first, then the socket: the read edge that
  // arrived while paused was consumed without a read, so poll the fd once.
  ProcessFrames(conn);
  if (conn->CanProcess()) ReadReady(conn);
}

void NetServer::CloseConnection(const std::shared_ptr<Connection>& conn) {
  if (conn->closed) return;
  conn->closed = true;
  if (conn->counted_pending) {
    conn->counted_pending = false;
    conns_with_pending_writes_.fetch_sub(1, std::memory_order_relaxed);
  }
  conn->loop->Del(conn->fd);
  (void)::close(conn->fd);
  closed_->Increment();
  {
    MutexLock lock(&conns_mu_);
    conns_.erase(conn->fd);
  }
}

size_t NetServer::active_connections() const {
  MutexLock lock(&conns_mu_);
  return conns_.size();
}

void NetServer::Shutdown() {
  if (!started_.load(std::memory_order_relaxed)) return;
  if (shut_down_.exchange(true)) return;

  const Clock::time_point deadline =
      Clock::now() +
      std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(
          std::max(options_.drain_deadline_seconds, 0.0)));

  // 1. Stop the acceptor: no new connections, and frames arriving on
  //    existing connections are now answered with kUnavailable errors.
  draining_.store(true, std::memory_order_relaxed);
  {
    // Deregister + close the listener on its loop so the acceptor handler
    // can never race the close.
    std::promise<void> done;
    loops_[0]->Post([this, &done] {
      loops_[0]->Del(listener_.get());
      listener_.Reset();
      done.set_value();
    });
    done.get_future().wait();
  }

  // 2. Let admitted requests finish, up to the deadline.
  scheduler_->Drain();
  const double wait = Seconds(deadline - Clock::now());
  if (!scheduler_->AwaitIdle(std::max(wait, 0.0))) {
    // 3. Deadline hit: everything still *queued* is cancelled — each job's
    //    cancel path emits an error response, so no admitted request goes
    //    dark. Already-dispatched requests are on service workers and
    //    bounded by per-request budgets; give them a short grace.
    scheduler_->CancelQueued(
        Status::Unavailable("server shutting down: request cancelled"));
    (void)scheduler_->AwaitIdle(2.0);
  }

  // 4. Flush what the sockets will take (responses queued by step 2/3 are
  //    posted tasks; loops are still running and execute them in order).
  const Clock::time_point flush_until =
      std::max(deadline, Clock::now() + std::chrono::milliseconds(200));
  while (conns_with_pending_writes_.load(std::memory_order_relaxed) > 0 &&
         Clock::now() < flush_until) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // 5. Close every connection on its own loop, then stop the loops.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    MutexLock lock(&conns_mu_);
    for (auto& [fd, conn] : conns_) conns.push_back(conn);
  }
  for (auto& conn : conns) {
    std::promise<void> done;
    conn->loop->Post([this, conn, &done] {
      CloseConnection(conn);
      done.set_value();
    });
    done.get_future().wait();
  }
  for (auto& loop : loops_) loop->Stop();
  for (auto& thread : loop_threads_) {
    if (thread.joinable()) thread.join();
  }

  if (metrics_http_ != nullptr) metrics_http_->Stop();
  control_pool_.Shutdown();
}

}  // namespace net
}  // namespace treediff
