#include "net/event_loop.h"

#include <cerrno>
#include <cstring>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <thread>
#include <unistd.h>
#include <utility>

namespace treediff {
namespace net {

namespace {

uint64_t ThisThreadId() {
  return static_cast<uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

}  // namespace

EventLoop::~EventLoop() = default;

Status EventLoop::Init() {
  epoll_fd_ = OwnedFd(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd_.valid()) {
    return Status::Internal(std::string("epoll_create1: ") +
                            std::strerror(errno));
  }
  wakeup_fd_ = OwnedFd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!wakeup_fd_.valid()) {
    return Status::Internal(std::string("eventfd: ") + std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.fd = wakeup_fd_.get();
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wakeup_fd_.get(), &ev) !=
      0) {
    return Status::Internal(std::string("epoll_ctl(wakeup): ") +
                            std::strerror(errno));
  }
  return Status::Ok();
}

void EventLoop::DrainWakeup() {
  uint64_t count = 0;
  // Nonblocking eventfd: one read clears the counter; EAGAIN means the
  // wakeup was already consumed.
  while (::read(wakeup_fd_.get(), &count, sizeof count) > 0) {
  }
}

void EventLoop::Run() {
  loop_thread_id_.store(ThisThreadId(), std::memory_order_relaxed);
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];

  for (;;) {
    const int n = ::epoll_wait(epoll_fd_.get(), events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // A broken epoll fd is unrecoverable; exit the loop.
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wakeup_fd_.get()) {
        DrainWakeup();
        continue;
      }
      // The lookup (not a stored pointer) makes events for an fd that an
      // earlier handler in this batch deregistered dissolve harmlessly,
      // and the shared_ptr copy keeps the handler alive through its own
      // self-deregistration.
      const auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      const std::shared_ptr<Handler> handler = it->second;
      (*handler)(events[i].events);
    }

    // Posted tasks run after the epoll batch, in post order.
    std::vector<std::function<void()>> tasks;
    bool stop = false;
    {
      MutexLock lock(&mu_);
      tasks.swap(pending_);
      stop = stop_;
    }
    for (auto& task : tasks) task();
    if (stop) break;
  }
  loop_thread_id_.store(0, std::memory_order_relaxed);
}

void EventLoop::Stop() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  const uint64_t one = 1;
  // Best-effort: if the write fails the loop still exits on next wake.
  (void)!::write(wakeup_fd_.get(), &one, sizeof one);
}

void EventLoop::Post(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    pending_.push_back(std::move(task));
  }
  const uint64_t one = 1;
  (void)!::write(wakeup_fd_.get(), &one, sizeof one);
}

Status EventLoop::Add(int fd, uint32_t events, Handler handler) {
  epoll_event ev{};
  ev.events = events | EPOLLET;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(ADD): ") +
                            std::strerror(errno));
  }
  handlers_[fd] = std::make_shared<Handler>(std::move(handler));
  return Status::Ok();
}

Status EventLoop::Mod(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events | EPOLLET;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(MOD): ") +
                            std::strerror(errno));
  }
  return Status::Ok();
}

void EventLoop::Del(int fd) {
  // Deregistration failure (already-closed fd) has no recovery path.
  (void)::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

bool EventLoop::OnLoopThread() const {
  return loop_thread_id_.load(std::memory_order_relaxed) == ThisThreadId();
}

}  // namespace net
}  // namespace treediff
