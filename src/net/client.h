#ifndef TREEDIFF_NET_CLIENT_H_
#define TREEDIFF_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "net/wire.h"
#include "util/socket.h"
#include "util/status.h"

namespace treediff {
namespace net {

/// A small blocking client for the binary protocol — the reference
/// implementation tests and tools are written against. One connection,
/// synchronous Call() or explicit Send()/Receive() for pipelining. The
/// high-concurrency path is net/loadgen.h; this class optimizes for being
/// obviously correct.
class SimpleClient {
 public:
  SimpleClient() = default;

  /// Connects (blocking). Any previous connection is dropped.
  Status Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }
  void Close() { fd_.Reset(); }

  /// One request, one response. The response is matched by arrival, not
  /// request_id — with no pipelining they coincide.
  Status Call(const WireRequest& request, WireResponse* response);

  /// Writes one request frame (no wait). Pair with Receive() to pipeline.
  Status Send(const WireRequest& request);

  /// Writes pre-encoded bytes verbatim — lets tests send malformed frames.
  Status SendRaw(const std::string& bytes);

  /// Blocks until the next response frame arrives.
  Status Receive(WireResponse* response);

  // Convenience wrappers for the common opcodes.

  Status Ping();
  Status Diff(const std::string& old_doc, const std::string& new_doc,
              uint8_t format, WireResponse* response,
              const std::string& tenant = "", uint32_t deadline_ms = 0);
  Status Open(const std::string& doc_id, const std::string& doc,
              uint8_t format, WireResponse* response);
  Status Commit(const std::string& doc_id, const std::string& doc,
                uint8_t format, WireResponse* response);
  Status Vdiff(const std::string& doc_id, int32_t from_version,
               int32_t to_version, WireResponse* response,
               const std::string& tenant = "");
  Status Metrics(std::string* text);

 private:
  OwnedFd fd_;
  FrameDecoder decoder_;
  uint64_t next_request_id_ = 1;
};

}  // namespace net
}  // namespace treediff

#endif  // TREEDIFF_NET_CLIENT_H_
