#ifndef TREEDIFF_NET_WIRE_H_
#define TREEDIFF_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace treediff {
namespace net {

/// The binary wire protocol of the network front end (docs/network.md).
///
/// Every frame — request or response — is length-prefixed:
///
///   u32 len      byte length of everything after this field (little-endian,
///                like every integer on the wire)
///   payload      len bytes
///
/// Request payload:
///
///   u8  opcode       Opcode below
///   u8  format       0 = sexpr, 1 = xml
///   u8  flags        bit 0: kFlagNoScript (skip script text in response)
///   u8  tenant_len   length of the tenant id, <= kMaxTenantLen
///   u64 request_id   opaque; echoed verbatim in the response, so a client
///                    may pipeline requests and correlate responses
///   u32 deadline_ms  end-to-end deadline; 0 = server default
///   ... tenant_len bytes of tenant id
///   ... opcode-specific body:
///
///   kPing / kMetrics   (empty)
///   kDiff              u32 old_len | u32 new_len | old bytes | new bytes
///   kVdiff             u32 id_len | i32 from | i32 to | id bytes
///   kOpen / kCommit    u32 id_len | u32 doc_len | id bytes | doc bytes
///
/// Response payload:
///
///   u8  opcode       echo of the request opcode
///   u8  status       treediff::Code as u8 (0 = OK)
///   u8  rung         DiffRung served on, or kNoRung for non-diff ops
///   u8  flags        kRespFlag* bits below
///   u64 request_id   echo
///   u32 value        diff: operation count; commit: new version; else 0
///   u32 aux          diff: share-map pruned subtrees; else 0
///   u32 payload_len  bytes following
///   ... payload      edit script text (OK diff), error message (non-OK),
///                    metrics text (kMetrics), else empty
///
/// Framing errors are two-tier. A frame whose *outer* length field is
/// absurd (zero, or beyond the decoder's max) means the stream can no
/// longer be trusted and the connection must close. A frame whose outer
/// length is fine but whose *inner* structure is malformed (bad opcode,
/// inconsistent inner lengths, oversized tenant) is consumed and reported
/// per-frame — the stream stays in sync, the server answers with an error
/// response and keeps the connection.
enum class Opcode : uint8_t {
  kPing = 1,     // Liveness probe; empty OK response.
  kDiff = 2,     // Diff two inline documents.
  kVdiff = 3,    // Diff two stored versions.
  kOpen = 4,     // Create an in-memory version store.
  kCommit = 5,   // Commit the next version of a store.
  kMetrics = 6,  // Prometheus text exposition of the server registry.
};

/// True for a byte that names a real opcode.
bool ValidOpcode(uint8_t op);

inline constexpr uint8_t kFormatSexpr = 0;
inline constexpr uint8_t kFormatXml = 1;

inline constexpr uint8_t kFlagNoScript = 1u << 0;

inline constexpr uint8_t kRespFlagDegraded = 1u << 0;
inline constexpr uint8_t kRespFlagShedDegraded = 1u << 1;
inline constexpr uint8_t kRespFlagCacheOld = 1u << 2;
inline constexpr uint8_t kRespFlagCacheNew = 1u << 3;
inline constexpr uint8_t kRespFlagMatchCache = 1u << 4;
inline constexpr uint8_t kRespFlagChainLog = 1u << 5;

/// `rung` byte for responses that did not run the diff ladder.
inline constexpr uint8_t kNoRung = 0xFF;

inline constexpr size_t kMaxTenantLen = 64;
inline constexpr size_t kLenPrefixBytes = 4;
inline constexpr size_t kRequestHeaderBytes = 16;   // After the length.
inline constexpr size_t kResponseHeaderBytes = 20;  // After the length.

/// Default ceiling on one frame's payload. A decoder rejects a larger
/// declared length the moment the 4-byte prefix arrives — before buffering
/// a single payload byte — so a hostile length field cannot make the
/// server allocate.
inline constexpr size_t kDefaultMaxFrameBytes = 16u << 20;

/// One decoded request frame.
struct WireRequest {
  Opcode opcode = Opcode::kPing;
  uint8_t format = kFormatSexpr;
  uint8_t flags = 0;
  uint64_t request_id = 0;
  uint32_t deadline_ms = 0;
  std::string tenant;

  std::string doc_id;   // kVdiff / kOpen / kCommit.
  std::string old_doc;  // kDiff old document; kOpen/kCommit document.
  std::string new_doc;  // kDiff new document.
  int32_t from_version = -1;  // kVdiff.
  int32_t to_version = -1;    // kVdiff.
};

/// One decoded response frame.
struct WireResponse {
  Opcode opcode = Opcode::kPing;
  uint8_t status = 0;  // treediff::Code as u8.
  uint8_t rung = kNoRung;
  uint8_t flags = 0;
  uint64_t request_id = 0;
  uint32_t value = 0;
  uint32_t aux = 0;
  std::string payload;

  bool ok() const { return status == 0; }
  Code code() const { return static_cast<Code>(status); }
};

/// Serializes a frame (length prefix included) onto `out`.
void AppendRequest(const WireRequest& request, std::string* out);
void AppendResponse(const WireResponse& response, std::string* out);

std::string EncodeRequest(const WireRequest& request);
std::string EncodeResponse(const WireResponse& response);

/// What one Next() call on a decoder produced.
enum class DecodeResult {
  kFrame,     // A complete, well-formed frame was decoded.
  kNeedMore,  // The buffer holds no complete frame; feed more bytes.
  kBadFrame,  // A complete frame was consumed but its body is malformed;
              // the stream is still in sync. `error` says what was wrong,
              // and for requests the partially decoded header (request_id,
              // tenant) is available for the error response.
  kError,     // The outer framing is broken; close the connection. Sticky:
              // every later Next() repeats the error.
};

/// Incremental decoder over a byte stream of frames. Append() buffers
/// whatever the socket produced; Next() extracts complete frames one at a
/// time. The internal buffer never grows beyond the bytes actually
/// received, and a declared frame length above `max_frame_bytes` is
/// rejected before any payload is buffered.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Append(const void* data, size_t len);

  /// Bytes buffered and not yet consumed by Next() — bounded by
  /// kLenPrefixBytes + max_frame_bytes + one read's worth of trailing
  /// partial frame (the transport reads in bounded chunks).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

  /// Decodes the next request frame. See DecodeResult.
  DecodeResult NextRequest(WireRequest* out, Status* error);

  /// Decodes the next response frame (the client side of the stream).
  DecodeResult NextResponse(WireResponse* out, Status* error);

 private:
  /// Pulls the next complete payload into [*begin, *begin + *len).
  /// Consumes it from the buffer (the span stays valid until the next
  /// Append/Next call).
  DecodeResult NextPayload(const char** begin, size_t* len, Status* error);

  size_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;
  bool broken_ = false;
  std::string broken_message_;
};

}  // namespace net
}  // namespace treediff

#endif  // TREEDIFF_NET_WIRE_H_
