#ifndef TREEDIFF_NET_LOADGEN_H_
#define TREEDIFF_NET_LOADGEN_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "net/wire.h"
#include "util/status.h"

namespace treediff {
namespace net {

/// Multi-connection load generator for the binary protocol, shared by
/// tools/treediff_client and bench/net_throughput. One thread drives all
/// connections with a (level-triggered) epoll loop and non-blocking
/// sockets — plenty to saturate a loopback server, and the single-threaded
/// design keeps the latency bookkeeping trivial.
///
/// Two driving modes:
///  - closed loop (open_loop_rps == 0): every connection keeps `pipeline`
///    requests in flight; a completion immediately triggers the next send.
///    Measures capacity — how fast the server can go.
///  - open loop (open_loop_rps > 0): requests are issued on a fixed
///    aggregate schedule regardless of completions, round-robin across
///    connections. Measures behavior under a fixed offered load, including
///    the queueing that a closed loop hides (coordinated omission).
struct LoadGenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  size_t connections = 64;

  /// Closed-loop: in-flight requests per connection.
  size_t pipeline = 8;

  /// Total requests to issue. In open-loop mode the run also ends when the
  /// schedule (duration at open_loop_rps) completes, whichever is smaller.
  uint64_t total_requests = 10000;

  /// Open-loop aggregate send rate; 0 selects closed loop.
  double open_loop_rps = 0;

  /// Builds the i-th request. The request_id is overwritten by the driver
  /// (it encodes the connection and sequence for latency matching).
  std::function<WireRequest(uint64_t seq)> make_request;

  /// Abort switch: give up if the run exceeds this wall-clock budget.
  double max_run_seconds = 120;
};

struct LoadGenResult {
  uint64_t sent = 0;
  uint64_t completed = 0;
  uint64_t ok = 0;
  std::map<uint8_t, uint64_t> errors;  // status byte -> count
  uint64_t connections_lost = 0;

  double elapsed_seconds = 0;
  double throughput_rps = 0;

  // Completion latency (send to response decode), milliseconds.
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;

  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
};

/// Runs one load-generation pass. Fails (rather than fabricating numbers)
/// if connections cannot be established or the run exceeds its budget with
/// requests still unanswered.
StatusOr<LoadGenResult> RunLoadGen(const LoadGenOptions& options);

}  // namespace net
}  // namespace treediff

#endif  // TREEDIFF_NET_LOADGEN_H_
