#include "net/http_metrics.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

namespace treediff {
namespace net {

Status MetricsHttpServer::Start() {
  StatusOr<OwnedFd> listener = ListenTcp(options_.host, options_.port, 16);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  StatusOr<uint16_t> port = LocalPort(listener_.get());
  if (!port.ok()) return port.status();
  port_ = *port;
  thread_ = std::thread([this] { Serve(); });
  return Status::Ok();
}

void MetricsHttpServer::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  listener_.Reset();
}

void MetricsHttpServer::Serve() {
  // Polling accept with a short timeout instead of a blocking accept:
  // Stop() only has to flip a flag, never races a close against a thread
  // blocked in accept().
  pollfd pfd{};
  pfd.fd = listener_.get();
  pfd.events = POLLIN;
  while (!stop_.load(std::memory_order_relaxed)) {
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // Timeout, EINTR, or transient error.
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) continue;
    HandleOne(fd);
    (void)::close(fd);
  }
}

void MetricsHttpServer::HandleOne(int fd) {
  // A scraper's request line fits in one segment; a peer that trickles
  // can stall this for at most the receive timeout.
  timeval timeout{};
  timeout.tv_sec = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);

  char buf[4096];
  const ssize_t n = ::recv(fd, buf, sizeof buf - 1, 0);
  if (n <= 0) return;
  buf[n] = '\0';

  // "GET <path> ..." — anything else is a 404/405.
  std::string head(buf);
  std::string body;
  std::string status_line;
  const size_t sp1 = head.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : head.find(' ', sp1 + 1);
  const std::string method =
      sp1 == std::string::npos ? "" : head.substr(0, sp1);
  const std::string path = sp2 == std::string::npos
                               ? ""
                               : head.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    status_line = "HTTP/1.0 405 Method Not Allowed\r\n";
    body = "method not allowed\n";
  } else if (path == "/metrics") {
    status_line = "HTTP/1.0 200 OK\r\n";
    body = registry_->PrometheusExposition();
  } else {
    status_line = "HTTP/1.0 404 Not Found\r\n";
    body = "not found; try /metrics\n";
  }

  std::string response = status_line;
  response +=
      "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      "Content-Length: " +
      std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n";
  response += body;
  // Best-effort: a scraper that hung up mid-response loses nothing.
  WriteAll(fd, response.data(), response.size()).IgnoreError();
}

}  // namespace net
}  // namespace treediff
