#include "net/wire.h"

#include <algorithm>
#include <cstring>

namespace treediff {
namespace net {

namespace {

/// Little-endian integer plumbing. memcpy keeps it alignment-safe and
/// optimizes to single loads/stores on every target we build for.
void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xFF);
  b[1] = static_cast<char>((v >> 8) & 0xFF);
  b[2] = static_cast<char>((v >> 16) & 0xFF);
  b[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

/// Cursor over one frame's payload; every Read checks remaining bytes
/// first, so a malformed inner length can never read past the frame.
class Reader {
 public:
  Reader(const char* data, size_t len) : p_(data), remaining_(len) {}

  size_t remaining() const { return remaining_; }

  bool ReadU8(uint8_t* v) {
    if (remaining_ < 1) return false;
    *v = static_cast<uint8_t>(*p_);
    ++p_;
    --remaining_;
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (remaining_ < 4) return false;
    const unsigned char* u = reinterpret_cast<const unsigned char*>(p_);
    *v = static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
    p_ += 4;
    remaining_ -= 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    uint32_t lo = 0;
    uint32_t hi = 0;
    if (!ReadU32(&lo) || !ReadU32(&hi)) return false;
    *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return true;
  }

  bool ReadI32(int32_t* v) {
    uint32_t u = 0;
    if (!ReadU32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }

  /// Copies `len` bytes out; the length was necessarily validated against
  /// `remaining()` to get here, so the allocation is bounded by the frame.
  bool ReadBytes(size_t len, std::string* out) {
    if (remaining_ < len) return false;
    out->assign(p_, len);
    p_ += len;
    remaining_ -= len;
    return true;
  }

 private:
  const char* p_;
  size_t remaining_;
};

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("malformed frame: " + what);
}

}  // namespace

bool ValidOpcode(uint8_t op) {
  return op >= static_cast<uint8_t>(Opcode::kPing) &&
         op <= static_cast<uint8_t>(Opcode::kMetrics);
}

void AppendRequest(const WireRequest& request, std::string* out) {
  const size_t len_at = out->size();
  PutU32(out, 0);  // Patched below.

  // A tenant id is an identifier, not a payload: encode at most
  // kMaxTenantLen bytes (the decoder rejects more anyway).
  const size_t tenant_len = std::min(request.tenant.size(), kMaxTenantLen);
  PutU8(out, static_cast<uint8_t>(request.opcode));
  PutU8(out, request.format);
  PutU8(out, request.flags);
  PutU8(out, static_cast<uint8_t>(tenant_len));
  PutU64(out, request.request_id);
  PutU32(out, request.deadline_ms);
  out->append(request.tenant.data(), tenant_len);

  switch (request.opcode) {
    case Opcode::kPing:
    case Opcode::kMetrics:
      break;
    case Opcode::kDiff:
      PutU32(out, static_cast<uint32_t>(request.old_doc.size()));
      PutU32(out, static_cast<uint32_t>(request.new_doc.size()));
      out->append(request.old_doc);
      out->append(request.new_doc);
      break;
    case Opcode::kVdiff:
      PutU32(out, static_cast<uint32_t>(request.doc_id.size()));
      PutI32(out, request.from_version);
      PutI32(out, request.to_version);
      out->append(request.doc_id);
      break;
    case Opcode::kOpen:
    case Opcode::kCommit:
      PutU32(out, static_cast<uint32_t>(request.doc_id.size()));
      PutU32(out, static_cast<uint32_t>(request.old_doc.size()));
      out->append(request.doc_id);
      out->append(request.old_doc);
      break;
  }

  const uint32_t payload =
      static_cast<uint32_t>(out->size() - len_at - kLenPrefixBytes);
  std::string len;
  PutU32(&len, payload);
  std::memcpy(out->data() + len_at, len.data(), kLenPrefixBytes);
}

void AppendResponse(const WireResponse& response, std::string* out) {
  const size_t len_at = out->size();
  PutU32(out, 0);  // Patched below.

  PutU8(out, static_cast<uint8_t>(response.opcode));
  PutU8(out, response.status);
  PutU8(out, response.rung);
  PutU8(out, response.flags);
  PutU64(out, response.request_id);
  PutU32(out, response.value);
  PutU32(out, response.aux);
  PutU32(out, static_cast<uint32_t>(response.payload.size()));
  out->append(response.payload);

  const uint32_t payload =
      static_cast<uint32_t>(out->size() - len_at - kLenPrefixBytes);
  std::string len;
  PutU32(&len, payload);
  std::memcpy(out->data() + len_at, len.data(), kLenPrefixBytes);
}

std::string EncodeRequest(const WireRequest& request) {
  std::string out;
  AppendRequest(request, &out);
  return out;
}

std::string EncodeResponse(const WireResponse& response) {
  std::string out;
  AppendResponse(response, &out);
  return out;
}

void FrameDecoder::Append(const void* data, size_t len) {
  if (broken_) return;  // The stream is dead; don't hoard its bytes.
  buffer_.append(static_cast<const char*>(data), len);
}

DecodeResult FrameDecoder::NextPayload(const char** begin, size_t* len,
                                       Status* error) {
  if (broken_) {
    *error = Status::InvalidArgument(broken_message_);
    return DecodeResult::kError;
  }

  // Reclaim consumed prefix once it dominates the buffer, so a long-lived
  // connection's buffer tracks its live data, not its history.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }

  const size_t available = buffer_.size() - consumed_;
  if (available < kLenPrefixBytes) return DecodeResult::kNeedMore;

  const unsigned char* u =
      reinterpret_cast<const unsigned char*>(buffer_.data() + consumed_);
  const uint32_t declared = static_cast<uint32_t>(u[0]) |
                            (static_cast<uint32_t>(u[1]) << 8) |
                            (static_cast<uint32_t>(u[2]) << 16) |
                            (static_cast<uint32_t>(u[3]) << 24);

  // Outer-framing sanity: an absurd length means the stream is not a frame
  // stream (or an attack); nothing after this point can be trusted.
  if (declared == 0 || declared > max_frame_bytes_) {
    broken_ = true;
    broken_message_ = "frame length " + std::to_string(declared) +
                      " outside (0, " + std::to_string(max_frame_bytes_) +
                      "]";
    buffer_.clear();
    consumed_ = 0;
    *error = Status::InvalidArgument(broken_message_);
    return DecodeResult::kError;
  }

  if (available < kLenPrefixBytes + declared) return DecodeResult::kNeedMore;

  *begin = buffer_.data() + consumed_ + kLenPrefixBytes;
  *len = declared;
  consumed_ += kLenPrefixBytes + declared;
  return DecodeResult::kFrame;
}

DecodeResult FrameDecoder::NextRequest(WireRequest* out, Status* error) {
  const char* payload = nullptr;
  size_t len = 0;
  const DecodeResult pulled = NextPayload(&payload, &len, error);
  if (pulled != DecodeResult::kFrame) return pulled;

  *out = WireRequest();
  Reader r(payload, len);
  uint8_t opcode = 0;
  uint8_t tenant_len = 0;
  if (!r.ReadU8(&opcode) || !r.ReadU8(&out->format) ||
      !r.ReadU8(&out->flags) || !r.ReadU8(&tenant_len) ||
      !r.ReadU64(&out->request_id) || !r.ReadU32(&out->deadline_ms)) {
    *error = Malformed("request header truncated");
    return DecodeResult::kBadFrame;
  }
  if (!ValidOpcode(opcode)) {
    *error = Malformed("unknown opcode " + std::to_string(opcode));
    return DecodeResult::kBadFrame;
  }
  out->opcode = static_cast<Opcode>(opcode);
  if (out->format > kFormatXml) {
    *error = Malformed("unknown format " + std::to_string(out->format));
    return DecodeResult::kBadFrame;
  }
  if (tenant_len > kMaxTenantLen) {
    *error = Malformed("tenant id longer than " +
                       std::to_string(kMaxTenantLen));
    return DecodeResult::kBadFrame;
  }
  if (!r.ReadBytes(tenant_len, &out->tenant)) {
    *error = Malformed("tenant id truncated");
    return DecodeResult::kBadFrame;
  }

  switch (out->opcode) {
    case Opcode::kPing:
    case Opcode::kMetrics:
      break;
    case Opcode::kDiff: {
      uint32_t old_len = 0;
      uint32_t new_len = 0;
      if (!r.ReadU32(&old_len) || !r.ReadU32(&new_len) ||
          old_len > r.remaining() ||
          new_len > r.remaining() - old_len ||
          !r.ReadBytes(old_len, &out->old_doc) ||
          !r.ReadBytes(new_len, &out->new_doc)) {
        *error = Malformed("diff body lengths inconsistent with frame");
        return DecodeResult::kBadFrame;
      }
      break;
    }
    case Opcode::kVdiff: {
      uint32_t id_len = 0;
      if (!r.ReadU32(&id_len) || !r.ReadI32(&out->from_version) ||
          !r.ReadI32(&out->to_version) ||
          !r.ReadBytes(id_len, &out->doc_id)) {
        *error = Malformed("vdiff body lengths inconsistent with frame");
        return DecodeResult::kBadFrame;
      }
      break;
    }
    case Opcode::kOpen:
    case Opcode::kCommit: {
      uint32_t id_len = 0;
      uint32_t doc_len = 0;
      if (!r.ReadU32(&id_len) || !r.ReadU32(&doc_len) ||
          id_len > r.remaining() || doc_len > r.remaining() - id_len ||
          !r.ReadBytes(id_len, &out->doc_id) ||
          !r.ReadBytes(doc_len, &out->old_doc)) {
        *error = Malformed("open/commit body lengths inconsistent");
        return DecodeResult::kBadFrame;
      }
      break;
    }
  }

  if (r.remaining() != 0) {
    *error = Malformed(std::to_string(r.remaining()) +
                       " trailing bytes after request body");
    return DecodeResult::kBadFrame;
  }
  return DecodeResult::kFrame;
}

DecodeResult FrameDecoder::NextResponse(WireResponse* out, Status* error) {
  const char* payload = nullptr;
  size_t len = 0;
  const DecodeResult pulled = NextPayload(&payload, &len, error);
  if (pulled != DecodeResult::kFrame) return pulled;

  *out = WireResponse();
  Reader r(payload, len);
  uint8_t opcode = 0;
  uint32_t payload_len = 0;
  if (!r.ReadU8(&opcode) || !r.ReadU8(&out->status) || !r.ReadU8(&out->rung) ||
      !r.ReadU8(&out->flags) || !r.ReadU64(&out->request_id) ||
      !r.ReadU32(&out->value) || !r.ReadU32(&out->aux) ||
      !r.ReadU32(&payload_len) || !r.ReadBytes(payload_len, &out->payload)) {
    *error = Malformed("response header or payload truncated");
    return DecodeResult::kBadFrame;
  }
  if (!ValidOpcode(opcode)) {
    *error = Malformed("unknown response opcode " + std::to_string(opcode));
    return DecodeResult::kBadFrame;
  }
  out->opcode = static_cast<Opcode>(opcode);
  if (out->status > static_cast<uint8_t>(Code::kDataLoss)) {
    *error = Malformed("unknown status code " + std::to_string(out->status));
    return DecodeResult::kBadFrame;
  }
  if (r.remaining() != 0) {
    *error = Malformed("trailing bytes after response payload");
    return DecodeResult::kBadFrame;
  }
  return DecodeResult::kFrame;
}

}  // namespace net
}  // namespace treediff
