#include "net/loadgen.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <sys/epoll.h>
#include <unistd.h>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/socket.h"

namespace treediff {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

struct Conn {
  OwnedFd fd;
  FrameDecoder decoder;
  std::string out;
  size_t out_pos = 0;
  bool want_write = false;
  bool dead = false;
  /// request_id -> send timestamp, for latency matching under pipelining
  /// (responses complete out of order across the server's workers).
  std::unordered_map<uint64_t, Clock::time_point> inflight;
};

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t index = static_cast<size_t>(
      std::min<double>(static_cast<double>(sorted.size()) - 1,
                       p * static_cast<double>(sorted.size())));
  return sorted[index];
}

}  // namespace

StatusOr<LoadGenResult> RunLoadGen(const LoadGenOptions& options) {
  if (!options.make_request) {
    return Status::InvalidArgument("LoadGenOptions.make_request is required");
  }
  const size_t num_conns = std::max<size_t>(options.connections, 1);
  const size_t pipeline = std::max<size_t>(options.pipeline, 1);
  const uint64_t total = std::max<uint64_t>(options.total_requests, 1);
  const bool open_loop = options.open_loop_rps > 0;

  OwnedFd epoll_fd(::epoll_create1(0));
  if (!epoll_fd.valid()) {
    return Status::Internal("epoll_create1 failed");
  }

  std::vector<Conn> conns(num_conns);
  for (size_t i = 0; i < num_conns; ++i) {
    StatusOr<OwnedFd> fd = ConnectTcp(options.host, options.port);
    if (!fd.ok()) return fd.status();
    conns[i].fd = std::move(*fd);
    TREEDIFF_RETURN_IF_ERROR(SetNonBlocking(conns[i].fd.get()));
    SetNoDelay(conns[i].fd.get()).IgnoreError();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = i;
    if (::epoll_ctl(epoll_fd.get(), EPOLL_CTL_ADD, conns[i].fd.get(), &ev) !=
        0) {
      return Status::Internal("epoll_ctl ADD failed");
    }
  }

  LoadGenResult result;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(std::min<uint64_t>(total, 1u << 22));

  const Clock::time_point start = Clock::now();
  const Clock::time_point give_up =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.max_run_seconds));

  auto update_interest = [&](size_t i) {
    Conn& c = conns[i];
    const bool pending = c.out_pos < c.out.size();
    if (pending == c.want_write || c.dead) return;
    c.want_write = pending;
    epoll_event ev{};
    ev.events = EPOLLIN | (pending ? EPOLLOUT : 0u);
    ev.data.u64 = i;
    (void)::epoll_ctl(epoll_fd.get(), EPOLL_CTL_MOD, c.fd.get(), &ev);
  };

  auto kill_conn = [&](size_t i) {
    Conn& c = conns[i];
    if (c.dead) return;
    c.dead = true;
    ++result.connections_lost;
    // In-flight requests on a dead connection will never complete; count
    // them as transport errors so the run can still terminate.
    result.completed += c.inflight.size();
    result.errors[static_cast<uint8_t>(Code::kUnavailable)] +=
        c.inflight.size();
    c.inflight.clear();
    (void)::epoll_ctl(epoll_fd.get(), EPOLL_CTL_DEL, c.fd.get(), nullptr);
    c.fd.Reset();
  };

  auto flush = [&](size_t i) {
    Conn& c = conns[i];
    while (!c.dead && c.out_pos < c.out.size()) {
      const ssize_t n = ::write(c.fd.get(), c.out.data() + c.out_pos,
                                c.out.size() - c.out_pos);
      if (n > 0) {
        c.out_pos += static_cast<size_t>(n);
        result.bytes_written += static_cast<uint64_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      kill_conn(i);
      return;
    }
    if (c.out_pos == c.out.size()) {
      c.out.clear();
      c.out_pos = 0;
    }
    update_interest(i);
  };

  auto send_one = [&](size_t i) {
    Conn& c = conns[i];
    if (c.dead) return;
    WireRequest request = options.make_request(result.sent);
    request.request_id = result.sent + 1;  // Unique per request.
    c.inflight.emplace(request.request_id, Clock::now());
    AppendRequest(request, &c.out);
    ++result.sent;
    flush(i);
  };

  auto read_ready = [&](size_t i) {
    Conn& c = conns[i];
    char buf[64 * 1024];
    while (!c.dead) {
      const ssize_t n = ::read(c.fd.get(), buf, sizeof buf);
      if (n > 0) {
        result.bytes_read += static_cast<uint64_t>(n);
        c.decoder.Append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      kill_conn(i);  // EOF or hard error.
      return;
    }
    for (;;) {
      WireResponse response;
      Status error = Status::Ok();
      const DecodeResult r = c.decoder.NextResponse(&response, &error);
      if (r == DecodeResult::kNeedMore) break;
      if (r != DecodeResult::kFrame) {
        kill_conn(i);
        return;
      }
      ++result.completed;
      if (response.ok()) {
        ++result.ok;
      } else {
        ++result.errors[response.status];
      }
      auto it = c.inflight.find(response.request_id);
      if (it != c.inflight.end()) {
        latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      it->second)
                .count());
        c.inflight.erase(it);
      }
      if (!open_loop && result.sent < total) send_one(i);
    }
  };

  // Closed loop: prime every connection to its pipeline depth.
  if (!open_loop) {
    for (size_t i = 0; i < num_conns && result.sent < total; ++i) {
      for (size_t d = 0; d < pipeline && result.sent < total; ++d) {
        send_one(i);
      }
    }
  }

  size_t rr = 0;  // Open-loop round-robin cursor.
  std::vector<epoll_event> events(256);
  while (result.completed < total) {
    if (Clock::now() > give_up) {
      return Status::DeadlineExceeded(
          "load generation exceeded max_run_seconds with " +
          std::to_string(total - result.completed) +
          " requests unanswered");
    }
    size_t live = 0;
    for (const Conn& c : conns) {
      if (!c.dead) ++live;
    }
    if (live == 0) {
      return Status::Unavailable("all load-generator connections died");
    }

    // Open loop: issue everything the schedule says is due, regardless of
    // completions.
    if (open_loop && result.sent < total) {
      const double elapsed =
          std::chrono::duration<double>(Clock::now() - start).count();
      const uint64_t due = std::min<uint64_t>(
          total,
          static_cast<uint64_t>(elapsed * options.open_loop_rps));
      while (result.sent < due) {
        for (size_t tries = 0; tries < num_conns; ++tries) {
          const size_t i = rr++ % num_conns;
          if (!conns[i].dead) {
            send_one(i);
            break;
          }
        }
      }
    }

    const int timeout_ms = open_loop ? 1 : 100;
    const int n = ::epoll_wait(epoll_fd.get(), events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    for (int e = 0; e < n; ++e) {
      const size_t i = static_cast<size_t>(events[e].data.u64);
      if (conns[i].dead) continue;
      if ((events[e].events & (EPOLLERR | EPOLLHUP)) != 0) {
        kill_conn(i);
        continue;
      }
      if ((events[e].events & EPOLLOUT) != 0) flush(i);
      if ((events[e].events & EPOLLIN) != 0) read_ready(i);
    }
  }

  result.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.throughput_rps =
      result.elapsed_seconds > 0
          ? static_cast<double>(result.completed) / result.elapsed_seconds
          : 0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.p50_ms = Percentile(latencies_ms, 0.50);
  result.p95_ms = Percentile(latencies_ms, 0.95);
  result.p99_ms = Percentile(latencies_ms, 0.99);
  result.max_ms = latencies_ms.empty() ? 0 : latencies_ms.back();
  return result;
}

}  // namespace net
}  // namespace treediff
