#include "net/frontend.h"

#include <memory>
#include <utility>

namespace treediff {
namespace net {

DiffRequest::Format Frontend::ToFormat(uint8_t wire_format) {
  return wire_format == kFormatXml ? DiffRequest::Format::kXml
                                   : DiffRequest::Format::kSexpr;
}

WireResponse Frontend::ErrorResponse(const WireRequest& request,
                                     const Status& status) {
  WireResponse response;
  response.opcode = request.opcode;
  response.request_id = request.request_id;
  response.status = static_cast<uint8_t>(status.code());
  response.payload = status.message();
  return response;
}

WireResponse Frontend::FromDiffResponse(const WireRequest& request,
                                        const DiffResponse& diff) {
  if (!diff.status.ok()) return ErrorResponse(request, diff.status);
  WireResponse response;
  response.opcode = request.opcode;
  response.request_id = request.request_id;
  response.rung = static_cast<uint8_t>(diff.rung);
  response.value = static_cast<uint32_t>(diff.operations);
  response.aux = static_cast<uint32_t>(diff.pruned_subtrees);
  if (diff.degraded) response.flags |= kRespFlagDegraded;
  if (diff.shed_degraded) response.flags |= kRespFlagShedDegraded;
  if (diff.cache_hit_old) response.flags |= kRespFlagCacheOld;
  if (diff.cache_hit_new) response.flags |= kRespFlagCacheNew;
  if (diff.matching_cache_hit) response.flags |= kRespFlagMatchCache;
  if (diff.chain_log_hit) response.flags |= kRespFlagChainLog;
  response.payload = diff.script;
  return response;
}

void Frontend::Execute(WireRequest request, Done done) {
  switch (request.opcode) {
    case Opcode::kPing: {
      WireResponse response;
      response.opcode = Opcode::kPing;
      response.request_id = request.request_id;
      done(std::move(response));
      return;
    }

    case Opcode::kDiff:
    case Opcode::kVdiff: {
      DiffRequest diff;
      diff.format = ToFormat(request.format);
      if (request.opcode == Opcode::kDiff) {
        diff.old_doc = std::move(request.old_doc);
        diff.new_doc = std::move(request.new_doc);
      } else {
        diff.doc_id = std::move(request.doc_id);
        diff.from_version = request.from_version;
        diff.to_version = request.to_version;
      }
      diff.deadline_seconds =
          static_cast<double>(request.deadline_ms) / 1000.0;
      diff.want_script_text = (request.flags & kFlagNoScript) == 0;
      // The correlation fields the completion needs; the documents were
      // moved out above and are not copied again.
      WireRequest header;
      header.opcode = request.opcode;
      header.request_id = request.request_id;
      auto done_ptr = std::make_shared<Done>(std::move(done));
      service_->Submit(std::move(diff),
                       [header, done_ptr](DiffResponse response) {
                         (*done_ptr)(FromDiffResponse(header, response));
                       });
      return;
    }

    case Opcode::kOpen:
    case Opcode::kCommit:
    case Opcode::kMetrics:
      ExecuteControl(std::move(request), std::move(done));
      return;
  }
  // Unreachable: the decoder validated the opcode.
  done(ErrorResponse(request, Status::Internal("unhandled opcode")));
}

void Frontend::ExecuteControl(WireRequest req, Done done_fn) {
  // Shared, not moved into the closure: if TrySubmit declines, the shed
  // path below still needs both the request (for correlation fields) and
  // the callback (which must fire exactly once).
  auto state = std::make_shared<std::pair<WireRequest, Done>>(
      std::move(req), std::move(done_fn));
  auto task = [this, state]() {
    WireRequest& request = state->first;
    Done& done = state->second;
    switch (request.opcode) {
      case Opcode::kOpen: {
        const Status status = service_->CreateStore(
            request.doc_id, request.old_doc, ToFormat(request.format));
        if (!status.ok()) {
          done(ErrorResponse(request, status));
          return;
        }
        WireResponse response;
        response.opcode = Opcode::kOpen;
        response.request_id = request.request_id;
        done(std::move(response));
        return;
      }
      case Opcode::kCommit: {
        const StatusOr<int> version = service_->CommitVersion(
            request.doc_id, request.old_doc, ToFormat(request.format));
        if (!version.ok()) {
          done(ErrorResponse(request, version.status()));
          return;
        }
        WireResponse response;
        response.opcode = Opcode::kCommit;
        response.request_id = request.request_id;
        response.value = static_cast<uint32_t>(*version);
        done(std::move(response));
        return;
      }
      case Opcode::kMetrics: {
        WireResponse response;
        response.opcode = Opcode::kMetrics;
        response.request_id = request.request_id;
        response.payload = service_->metrics().PrometheusExposition();
        done(std::move(response));
        return;
      }
      default:
        done(ErrorResponse(request,
                           Status::Internal("bad control opcode")));
        return;
    }
  };
  if (!control_pool_->TrySubmit(std::move(task))) {
    (state->second)(ErrorResponse(
        state->first,
        Status::ResourceExhausted("control queue full: request shed")));
  }
}

}  // namespace net
}  // namespace treediff
