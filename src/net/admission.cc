#include "net/admission.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace treediff {
namespace net {

namespace {

TenantQuota Clamped(TenantQuota quota) {
  quota.weight = std::max<uint32_t>(quota.weight, 1);
  quota.max_queued = std::max<size_t>(quota.max_queued, 1);
  quota.max_inflight = std::max<size_t>(quota.max_inflight, 1);
  return quota;
}

}  // namespace

TenantScheduler::TenantScheduler(TenantSchedulerOptions options,
                                 MetricsRegistry* registry)
    : options_(std::move(options)) {
  if (registry != nullptr) {
    enqueued_ = registry->counter("net_tenant_enqueued_total");
    shed_queue_ = registry->counter("net_shed_tenant_quota_total");
    shed_tenants_ = registry->counter("net_shed_tenant_cap_total");
    cancelled_ = registry->counter("net_jobs_cancelled_total");
    dispatched_total_ = registry->counter("net_jobs_dispatched_total");
  }
}

TenantScheduler::~TenantScheduler() {
  // Callers own shutdown ordering (Drain + AwaitIdle / CancelQueued); by
  // destruction time nothing may still be queued or dispatched.
}

TenantScheduler::Tenant* TenantScheduler::FindOrCreateTenant(
    const std::string& name) {
  auto it = tenants_.find(name);
  if (it != tenants_.end()) return it->second.get();

  const auto config = options_.tenants.find(name);
  const bool configured = config != options_.tenants.end();
  if (!configured &&
      tenants_.size() >= std::max<size_t>(options_.max_tenants, 1)) {
    return nullptr;  // A flood of novel tenant ids must not grow state.
  }
  auto tenant = std::make_unique<Tenant>();
  tenant->name = name;
  tenant->quota =
      Clamped(configured ? config->second : options_.default_quota);
  Tenant* raw = tenant.get();
  tenants_.emplace(name, std::move(tenant));
  return raw;
}

Status TenantScheduler::Enqueue(const std::string& tenant_name, Job run,
                                std::function<void(const Status&)> cancel) {
  std::vector<std::pair<Tenant*, Job>> batch;
  {
    MutexLock lock(&mu_);
    if (draining_) {
      return Status::Unavailable("server draining: request not admitted");
    }
    Tenant* tenant = FindOrCreateTenant(tenant_name);
    if (tenant == nullptr) {
      if (shed_tenants_ != nullptr) shed_tenants_->Increment();
      return Status::ResourceExhausted(
          "tenant table full: unknown tenant \"" + tenant_name +
          "\" not admitted");
    }
    if (tenant->queue.size() >= tenant->quota.max_queued) {
      if (shed_queue_ != nullptr) shed_queue_->Increment();
      return Status::ResourceExhausted("tenant \"" + tenant_name +
                                       "\" queue quota exceeded");
    }
    if (enqueued_ != nullptr) enqueued_->Increment();
    tenant->queue.push_back(
        Tenant::Pending{std::move(run), std::move(cancel)});
    ++queued_;
    if (!tenant->in_active_ring) {
      tenant->in_active_ring = true;
      active_.push_back(tenant);
    }
    PumpLocked(&batch);
  }
  RunBatch(std::move(batch));
  return Status::Ok();
}

void TenantScheduler::PumpLocked(
    std::vector<std::pair<Tenant*, Job>>* batch) {
  const size_t max_dispatched = std::max<size_t>(options_.max_dispatched, 1);
  // Each iteration dispatches at least one job (bounded by the window),
  // retires a tenant from the ring (bounded by the ring), or breaks, so
  // the loop terminates.
  while (dispatched_ < max_dispatched && !active_.empty()) {
    Tenant* tenant = active_.front();
    if (tenant->inflight >= tenant->quota.max_inflight) {
      // Out of the ring until a completion frees an inflight unit; its
      // backlog waits in its own queue, not in front of other tenants.
      active_.pop_front();
      tenant->in_active_ring = false;
      continue;
    }
    // One quantum per round: the deficit is topped up only once it is
    // exhausted, and the tenant holds the ring front until then. If the
    // dispatch window closes mid-quantum, the tenant resumes its burst on
    // the next pump WITHOUT a fresh top-up — otherwise a tight window
    // would hand every tenant one dispatch per rotation and erase the
    // weights entirely.
    if (tenant->deficit < 1) tenant->deficit += tenant->quota.weight;
    while (tenant->deficit >= 1 && !tenant->queue.empty() &&
           tenant->inflight < tenant->quota.max_inflight &&
           dispatched_ < max_dispatched) {
      batch->emplace_back(tenant, std::move(tenant->queue.front().run));
      tenant->queue.pop_front();
      --queued_;
      tenant->deficit -= 1;
      ++tenant->inflight;
      ++dispatched_;
      if (dispatched_total_ != nullptr) dispatched_total_->Increment();
    }
    if (tenant->queue.empty()) {
      // An idle tenant starts its next busy period from zero credit —
      // deficit must not accumulate across idle time.
      tenant->deficit = 0;
      active_.pop_front();
      tenant->in_active_ring = false;
    } else if (tenant->inflight >= tenant->quota.max_inflight) {
      active_.pop_front();
      tenant->in_active_ring = false;
    } else if (tenant->deficit < 1) {
      // Quantum spent: yield the front to the next tenant in the ring.
      active_.pop_front();
      active_.push_back(tenant);
    } else {
      break;  // Window closed mid-quantum; resume here next pump.
    }
  }
}

void TenantScheduler::RunBatch(std::vector<std::pair<Tenant*, Job>> batch) {
  // A job may complete inline (the DiffService sheds at admission on the
  // caller's thread), which re-enters OnDone -> Pump -> RunBatch on this
  // same stack. Trampoline instead of recursing: the outermost RunBatch on
  // each thread owns a work list, nested calls append to it, and a shed
  // storm drains iteratively at constant stack depth.
  struct Deferred {
    TenantScheduler* self;
    Tenant* tenant;
    Job job;
  };
  thread_local std::vector<Deferred>* running = nullptr;
  if (running != nullptr) {
    for (auto& [tenant, job] : batch) {
      running->push_back(Deferred{this, tenant, std::move(job)});
    }
    return;
  }
  std::vector<Deferred> work;
  work.reserve(batch.size());
  for (auto& [tenant, job] : batch) {
    work.push_back(Deferred{this, tenant, std::move(job)});
  }
  running = &work;
  for (size_t i = 0; i < work.size(); ++i) {  // `work` may grow mid-loop.
    TenantScheduler* self = work[i].self;
    Tenant* tenant = work[i].tenant;
    Job job = std::move(work[i].job);
    job([self, tenant]() { self->OnDone(tenant); });
  }
  running = nullptr;
}

void TenantScheduler::OnDone(Tenant* tenant) {
  std::vector<std::pair<Tenant*, Job>> batch;
  {
    MutexLock lock(&mu_);
    --dispatched_;
    --tenant->inflight;
    if (!tenant->queue.empty() && !tenant->in_active_ring) {
      tenant->in_active_ring = true;
      active_.push_back(tenant);
    }
    PumpLocked(&batch);
    if (queued_ == 0 && dispatched_ == 0) idle_cv_.SignalAll();
  }
  RunBatch(std::move(batch));
}

void TenantScheduler::Drain() {
  MutexLock lock(&mu_);
  draining_ = true;
}

bool TenantScheduler::AwaitIdle(double timeout_seconds) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_seconds));
  MutexLock lock(&mu_);
  while (queued_ != 0 || dispatched_ != 0) {
    const double remaining =
        std::chrono::duration<double>(deadline - Clock::now()).count();
    if (remaining <= 0.0) return false;
    idle_cv_.WaitFor(&mu_, remaining);
  }
  return true;
}

size_t TenantScheduler::CancelQueued(const Status& reason) {
  std::vector<std::function<void(const Status&)>> cancels;
  {
    MutexLock lock(&mu_);
    for (auto& [name, tenant] : tenants_) {
      while (!tenant->queue.empty()) {
        cancels.push_back(std::move(tenant->queue.front().cancel));
        tenant->queue.pop_front();
        --queued_;
      }
      tenant->deficit = 0;
      tenant->in_active_ring = false;
    }
    active_.clear();
    if (queued_ == 0 && dispatched_ == 0) idle_cv_.SignalAll();
  }
  for (auto& cancel : cancels) {
    if (cancelled_ != nullptr) cancelled_->Increment();
    if (cancel) cancel(reason);
  }
  return cancels.size();
}

size_t TenantScheduler::queued() const {
  MutexLock lock(&mu_);
  return queued_;
}

size_t TenantScheduler::dispatched() const {
  MutexLock lock(&mu_);
  return dispatched_;
}

}  // namespace net
}  // namespace treediff
