#ifndef TREEDIFF_NET_ADMISSION_H_
#define TREEDIFF_NET_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace treediff {
namespace net {

/// Per-tenant admission limits and fair-share weight.
struct TenantQuota {
  /// Fair-share weight: the deficit quantum a tenant earns per scheduling
  /// round. A weight-3 tenant dispatches ~3x the requests of a weight-1
  /// tenant when both have backlog. Clamped to >= 1.
  uint32_t weight = 1;

  /// Most requests a tenant may have waiting in its queue; an enqueue
  /// beyond this is shed with kResourceExhausted. Clamped to >= 1.
  size_t max_queued = 256;

  /// Most requests a tenant may have dispatched-but-unfinished at once.
  /// A tenant at this cap keeps its backlog queued while others dispatch —
  /// the quota half of multi-tenant isolation. Clamped to >= 1.
  size_t max_inflight = 64;
};

struct TenantSchedulerOptions {
  /// Quota for tenants with no explicit entry (including the anonymous
  /// empty-string tenant).
  TenantQuota default_quota;

  /// Named per-tenant overrides.
  std::map<std::string, TenantQuota> tenants;

  /// Total dispatched-but-unfinished requests across all tenants. This is
  /// the scheduler's concurrency window into the DiffService pool: small
  /// enough that the pool queue never sheds what the scheduler admitted,
  /// large enough to keep every worker busy. Clamped to >= 1.
  size_t max_dispatched = 16;

  /// Most distinct tenants tracked at once. A frame naming a brand-new
  /// tenant beyond this is shed — a garbage-tenant flood must not grow
  /// server state without bound. Tenants named in `tenants` are always
  /// admitted. Clamped to >= 1.
  size_t max_tenants = 1024;
};

/// Weighted deficit-round-robin fair-share scheduler — the multi-tenant
/// admission stage between the network front end's decoded frames and the
/// DiffService thread pool.
///
/// Each tenant owns a FIFO of jobs and a deficit counter. Dispatch visits
/// tenants with backlog round-robin; a visit tops the tenant's deficit up
/// by its weight and dispatches one job per deficit unit until the deficit,
/// the tenant's backlog, its inflight cap, or the global dispatch window
/// runs out. The result is the classic DRR guarantee: over any busy
/// interval, tenants with backlog receive service proportional to their
/// weights, and one tenant flooding its queue cannot starve the others —
/// its surplus waits in its own queue (and is shed at its own quota), not
/// in front of everyone else's traffic.
///
/// A job is an opaque closure `run(done)`: the scheduler calls `run` when
/// the job is dispatched, and the job must call `done()` exactly once when
/// it has fully finished (for the network server: when the response has
/// been handed back, not merely when the request was forwarded). `done` is
/// what returns the dispatch slot and the tenant's inflight unit.
///
/// Thread-safety: every method may be called from any thread. Jobs run
/// outside the scheduler lock, on whichever thread called Enqueue or
/// `done` — the scheduler adds no threads of its own.
class TenantScheduler {
 public:
  using Done = std::function<void()>;
  using Job = std::function<void(Done done)>;

  /// `registry` (optional) receives the scheduler's counters.
  TenantScheduler(TenantSchedulerOptions options, MetricsRegistry* registry);
  ~TenantScheduler();

  TenantScheduler(const TenantScheduler&) = delete;
  TenantScheduler& operator=(const TenantScheduler&) = delete;

  /// Admits one job for `tenant`, or rejects it (tenant queue full,
  /// distinct-tenant cap, or draining) — the caller answers a rejection
  /// with an error response. `cancel` is invoked instead of `run` if the
  /// job is cancelled while still queued (shutdown past its deadline);
  /// exactly one of run/cancel is eventually invoked for an admitted job.
  Status Enqueue(const std::string& tenant, Job run,
                 std::function<void(const Status&)> cancel) EXCLUDES(mu_);

  /// Stops admitting; every later Enqueue fails with kUnavailable.
  void Drain() EXCLUDES(mu_);

  /// Blocks until no job is queued or dispatched, or `timeout_seconds`
  /// elapses. Returns whether the scheduler went idle.
  bool AwaitIdle(double timeout_seconds) EXCLUDES(mu_);

  /// Cancels every still-queued job: each job's `cancel` runs (outside the
  /// lock) with `reason`. Dispatched jobs are untouched — they finish on
  /// their own. Returns how many were cancelled.
  size_t CancelQueued(const Status& reason) EXCLUDES(mu_);

  size_t queued() const EXCLUDES(mu_);
  size_t dispatched() const EXCLUDES(mu_);

 private:
  struct Tenant {
    std::string name;
    TenantQuota quota;
    uint64_t deficit = 0;
    size_t inflight = 0;
    bool in_active_ring = false;
    struct Pending {
      Job run;
      std::function<void(const Status&)> cancel;
    };
    std::deque<Pending> queue;
  };

  /// The tenant record, created on demand (subject to max_tenants; null
  /// when the cap rejects a new tenant).
  Tenant* FindOrCreateTenant(const std::string& name) REQUIRES(mu_);

  /// Moves dispatchable jobs from tenant queues into `batch`, DRR order.
  void PumpLocked(std::vector<std::pair<Tenant*, Job>>* batch) REQUIRES(mu_);

  /// Runs a dispatched batch outside the lock.
  void RunBatch(std::vector<std::pair<Tenant*, Job>> batch) EXCLUDES(mu_);

  /// Job-completion bookkeeping: frees the slot, reactivates the tenant,
  /// pumps again.
  void OnDone(Tenant* tenant) EXCLUDES(mu_);

  const TenantSchedulerOptions options_;

  mutable Mutex mu_;
  CondVar idle_cv_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_ GUARDED_BY(mu_);
  std::deque<Tenant*> active_ GUARDED_BY(mu_);  // Tenants with backlog.
  size_t queued_ GUARDED_BY(mu_) = 0;
  size_t dispatched_ GUARDED_BY(mu_) = 0;
  bool draining_ GUARDED_BY(mu_) = false;

  // Registered once; null-checked so the scheduler works registry-free.
  Counter* enqueued_ = nullptr;
  Counter* shed_queue_ = nullptr;
  Counter* shed_tenants_ = nullptr;
  Counter* cancelled_ = nullptr;
  Counter* dispatched_total_ = nullptr;
};

}  // namespace net
}  // namespace treediff

#endif  // TREEDIFF_NET_ADMISSION_H_
