#include "store/replication.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include "store/codec.h"
#include "store/log.h"
#include "util/crc32c.h"
#include "util/retry.h"

namespace treediff {
namespace {

/// Verification of one shipped byte range before it touches a follower's
/// log. The batch is parsed with the same framing rules recovery uses: a
/// follower never appends a byte it has not independently checksummed, so a
/// primary-side read error (or a rotation racing the copy) is caught here
/// instead of being replayed into every downstream open.
struct BatchCheck {
  bool valid = false;          // Framing and every CRC verified.
  bool stale = false;          // Some record violates the epoch fence.
  size_t records = 0;
  uint64_t top_epoch = 0;      // Highest epoch stamped in the batch.
  uint64_t top_epoch_offset = 0;  // Absolute offset of that record.
};

BatchCheck CheckBatch(std::string_view batch, uint64_t base_offset,
                      LogFormat format, uint64_t fence_epoch,
                      uint64_t fence_cursor) {
  BatchCheck out;
  size_t pos = 0;
  if (base_offset == 0) {
    const char* magic = format == LogFormat::kV1 ? kLogMagic : kLogMagicV2;
    if (batch.size() < kLogMagicSize ||
        std::memcmp(batch.data(), magic, kLogMagicSize) != 0) {
      return out;
    }
    pos = kLogMagicSize;
  }
  const size_t header = LogRecordHeaderSize(format);
  const uint8_t max_type = format == LogFormat::kV1
                               ? static_cast<uint8_t>(LogRecordType::kRollback)
                               : static_cast<uint8_t>(LogRecordType::kEpoch);
  while (pos < batch.size()) {
    if (batch.size() - pos < header) return out;
    const char* p = batch.data() + pos;
    const uint32_t len = DecodeFixed32(p);
    if (len > kLogMaxRecordSize || batch.size() - pos - header < len) {
      return out;
    }
    const uint8_t type = static_cast<uint8_t>(p[8]);
    if (type < 1 || type > max_type) return out;
    // The CRC covers [type, epoch?, payload] — contiguous from the type
    // byte through the end of the payload.
    const uint32_t stored = Crc32cUnmask(DecodeFixed32(p + 4));
    if (Crc32c(p + 8, header - 8 + len) != stored) return out;
    const uint64_t epoch =
        format == LogFormat::kV2 ? DecodeFixed32(p + kLogRecordHeaderSize) : 0;
    const uint64_t abs = base_offset + pos;
    if (epoch < fence_epoch && abs >= fence_cursor) out.stale = true;
    if (epoch > out.top_epoch) {
      out.top_epoch = epoch;
      out.top_epoch_offset = abs;
    }
    ++out.records;
    pos += header + len;
  }
  out.valid = true;
  return out;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

const char* ReplicaRoleName(ReplicaRole role) {
  switch (role) {
    case ReplicaRole::kPrimary:
      return "primary";
    case ReplicaRole::kFollower:
      return "follower";
    case ReplicaRole::kDeposed:
      return "deposed";
  }
  return "unknown";
}

StatusOr<std::unique_ptr<ReplicatedVersionStore>> ReplicatedVersionStore::
    Create(std::vector<ReplicaConfig> replicas, Tree base,
           DiffOptions diff_options, ReplicationOptions options) {
  if (replicas.empty()) {
    return Status::InvalidArgument("replication: at least one replica");
  }
  for (ReplicaConfig& r : replicas) {
    if (r.env == nullptr) r.env = Env::Default();
    if (r.path.empty()) {
      return Status::InvalidArgument("replication: replica path is empty");
    }
  }

  auto group =
      std::unique_ptr<ReplicatedVersionStore>(new ReplicatedVersionStore());
  group->diff_options_ = diff_options;
  group->options_ = std::move(options);
  group->labels_ = base.label_table();

  StoreOptions so = group->options_.store_options;
  so.env = replicas[0].env;
  so.labels = group->labels_;
  auto primary = VersionStore::Create(replicas[0].path, std::move(base),
                                      diff_options, so);
  if (!primary.ok()) return primary.status();
  auto primary_store = std::make_shared<VersionStore>(std::move(*primary));

  for (size_t i = 0; i < replicas.size(); ++i) {
    auto state = std::make_unique<ReplicaState>();
    state->config = replicas[i];
    MutexLock lock(&state->mu);
    if (i == 0) {
      state->role = ReplicaRole::kPrimary;
      state->store = primary_store;
    } else {
      state->role = ReplicaRole::kFollower;
      state->primary_rotations = primary_store->rotations();
    }
    group->states_.push_back(std::move(state));
  }

  if (group->options_.background_ship) {
    ReplicatedVersionStore* raw = group.get();
    group->shipper_ = std::thread([raw] { raw->ShipLoop(); });
  }
  return group;
}

ReplicatedVersionStore::~ReplicatedVersionStore() {
  {
    MutexLock lock(&ship_mu_);
    stop_ = true;
  }
  ship_cv_.SignalAll();
  if (shipper_.joinable()) shipper_.join();
}

void ReplicatedVersionStore::ShipLoop() {
  for (;;) {
    {
      MutexLock lock(&ship_mu_);
      if (stop_) return;
      ship_cv_.WaitFor(&ship_mu_, options_.poll_interval_seconds);
      if (stop_) return;
    }
    PumpFollowers().IgnoreError();
  }
}

std::shared_ptr<VersionStore> ReplicatedVersionStore::PrimarySnapshot() const {
  MutexLock lock(&mu_);
  ReplicaState* state = states_[static_cast<size_t>(primary_index_)].get();
  MutexLock state_lock(&state->mu);
  return state->store;
}

CommitLease ReplicatedVersionStore::lease() const {
  MutexLock lock(&mu_);
  return CommitLease{epoch_};
}

uint64_t ReplicatedVersionStore::epoch() const {
  MutexLock lock(&mu_);
  return epoch_;
}

int ReplicatedVersionStore::primary_index() const {
  MutexLock lock(&mu_);
  return primary_index_;
}

std::shared_ptr<VersionStore> ReplicatedVersionStore::primary() const {
  return PrimarySnapshot();
}

StatusOr<int> ReplicatedVersionStore::Commit(const Tree& new_version) {
  return CommitWithLease(new_version, lease());
}

StatusOr<int> ReplicatedVersionStore::CommitWithLease(
    const Tree& new_version, const CommitLease& commit_lease) {
  std::shared_ptr<VersionStore> primary;
  uint64_t target = 0;
  int version = 0;
  {
    // The lease check and the primary append are atomic with respect to
    // promotions (which also hold commit_mu_): a deposed primary cannot
    // slip a write in between losing the check and reaching the log.
    MutexLock commit_lock(&commit_mu_);
    {
      MutexLock lock(&mu_);
      if (commit_lease.epoch != epoch_) {
        return Status::FailedPrecondition(
            "fenced: commit lease is from epoch " +
            std::to_string(commit_lease.epoch) + ", group is at epoch " +
            std::to_string(epoch_));
      }
      ReplicaState* state = states_[static_cast<size_t>(primary_index_)].get();
      MutexLock state_lock(&state->mu);
      primary = state->store;
    }
    auto committed = primary->Commit(new_version);
    if (!committed.ok()) return committed.status();
    version = *committed;
    target = primary->DurableOffset();
  }
  ship_cv_.Signal();  // Wake the shipper for the new bytes.

  if (options_.ack_mode == AckMode::kLeaderOnly) return version;

  // Quorum wait: block until a majority of the non-deposed replica set has
  // fsynced up to `target`. The primary's own fsync already happened inside
  // Commit, so it votes immediately. A promotion mid-wait is fine ONLY if
  // every promotion since our append kept a cursor at or past `target` —
  // then the record sits inside the byte prefix all streams share and
  // cursor comparisons stay meaningful. A promotion that cut below
  // `target` replaced our record's bytes with the new primary's stream;
  // counting cursors against that stream would ack a commit that no
  // surviving replica holds, so the wait fails as unacked instead.
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    {
      MutexLock lock(&mu_);
      if (epoch_ != commit_lease.epoch) {
        // Every promotion bumps the epoch by one and appends to the
        // history, so the promotions since our append are exactly the
        // entries with epoch > commit_lease.epoch — provided none were
        // evicted (front() must reach back to our epoch + 1).
        bool survived = !promotion_history_.empty() &&
                        promotion_history_.front().first <=
                            commit_lease.epoch + 1;
        for (const auto& [promo_epoch, promo_cursor] : promotion_history_) {
          if (promo_epoch > commit_lease.epoch && promo_cursor < target) {
            survived = false;
          }
        }
        if (!survived) {
          quorum_timeouts_.fetch_add(1, std::memory_order_relaxed);
          BumpMetric("replication_quorum_timeouts_total");
          return Status::Unavailable(
              "failover during ack wait: commit " + std::to_string(version) +
              " was never quorum-acked and the promoted follower's log does "
              "not contain it");
        }
      }
    }
    int votes = 0;
    int voters = 0;
    for (const auto& state_ptr : states_) {
      ReplicaState* state = state_ptr.get();
      MutexLock lock(&state->mu);
      if (state->role == ReplicaRole::kDeposed) continue;
      ++voters;
      if (state->role == ReplicaRole::kPrimary) {
        if (state->store && state->store->DurableOffset() >= target) ++votes;
      } else if (state->cursor >= target) {
        ++votes;
      }
    }
    const double elapsed = SecondsSince(start);
    if (votes * 2 > voters) {
      ObserveMetric("replication_ack_seconds", elapsed);
      return version;
    }
    if (elapsed >= options_.ack_timeout_seconds) {
      quorum_timeouts_.fetch_add(1, std::memory_order_relaxed);
      BumpMetric("replication_quorum_timeouts_total");
      return Status::Unavailable(
          "quorum timeout: commit " + std::to_string(version) +
          " is durable on the primary but only " + std::to_string(votes) +
          "/" + std::to_string(voters) +
          " replicas acked; a failover may lose it");
    }
    if (!options_.background_ship) {
      // Deterministic mode: the committing thread does the shipping work
      // itself instead of waiting for a thread that does not exist.
      PumpFollowers().IgnoreError();
    } else {
      MutexLock lock(&ack_mu_);
      ack_cv_.WaitFor(&ack_mu_,
                      std::min(0.005, options_.ack_timeout_seconds - elapsed));
    }
  }
}

Status ReplicatedVersionStore::PumpFollowers() {
  Status first;
  for (const auto& state : states_) {
    Status st = PumpOne(state.get());
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

Status ReplicatedVersionStore::PumpOne(ReplicaState* state) {
  std::shared_ptr<VersionStore> primary = PrimarySnapshot();
  if (!primary) {
    return Status::FailedPrecondition("replication: group has no primary");
  }

  MutexLock lock(&state->mu);
  if (state->role != ReplicaRole::kFollower) return Status::Ok();

  // A rewritten primary log (rotation: self-heal, scrub repair, salvage)
  // invalidates byte offsets wholesale — the cursor means nothing against
  // the new layout, so the follower recopies from scratch.
  if (state->primary_rotations != primary->rotations() ||
      primary->DurableOffset() < state->cursor) {
    Status st = ResyncLocked(state, primary);
    if (!st.ok()) return st;
  }

  const LogFormat format = primary->log_format();
  const uint64_t target = primary->DurableOffset();
  if (target <= state->cursor) {
    ObserveMetric("replication_follower_lag_bytes", 0.0);
    return Status::Ok();
  }

  auto file = primary->env()->NewRandomAccessFile(primary->log_path());
  if (!file.ok()) return file.status();
  auto batch = (*file)->Read(state->cursor,
                             static_cast<size_t>(target - state->cursor));
  if (!batch.ok()) return batch.status();
  if (batch->size() != target - state->cursor) {
    return Status::Unavailable("replication: short read of primary log");
  }

  const BatchCheck check = CheckBatch(*batch, state->cursor, format,
                                      state->fence_epoch, state->fence_cursor);
  // The fence verdict outranks a torn tail: `stale` is only ever set for a
  // record whose CRC verified, so a zombie writer's well-formed stale
  // record is rejected as such even when the bytes after it are garbage.
  if (check.stale) {
    stale_epoch_rejects_.fetch_add(1, std::memory_order_relaxed);
    BumpMetric("replication_stale_epoch_rejects_total");
    return Status::FailedPrecondition(
        "replication: rejected batch carrying a fenced (stale) epoch");
  }
  if (!check.valid) {
    // Garbage can be benign (a rotation racing the read); the next round
    // re-detects and resyncs. It is never appended.
    return Status::Unavailable(
        "replication: shipped batch failed CRC verification");
  }

  Status st = AppendBatchLocked(state, *batch);
  if (!st.ok()) return st;

  state->chain = Crc32cExtend(state->chain, batch->data(), batch->size());
  state->cursor = target;
  state->records += check.records;
  if (check.top_epoch > state->fence_epoch) {
    state->fence_epoch = check.top_epoch;
    state->fence_cursor = check.top_epoch_offset;
  }
  records_shipped_.fetch_add(check.records, std::memory_order_relaxed);
  bytes_shipped_.fetch_add(batch->size(), std::memory_order_relaxed);
  BumpMetric("replication_records_shipped_total", check.records);
  BumpMetric("replication_bytes_shipped_total", batch->size());
  ObserveMetric("replication_follower_lag_bytes",
                static_cast<double>(primary->DurableOffset() - target));
  ack_cv_.SignalAll();
  return Status::Ok();
}

Status ReplicatedVersionStore::ResyncLocked(
    ReplicaState* state, const std::shared_ptr<VersionStore>& primary) {
  resyncs_.fetch_add(1, std::memory_order_relaxed);
  BumpMetric("replication_resyncs_total");
  state->out.reset();
  state->reader.reset();
  state->reader_cursor = 0;
  state->cursor = 0;
  state->chain = 0;
  state->records = 0;
  state->dirty = false;
  // The recopy comes from the current primary's (rewritten) log, which is
  // trusted in full; the fence re-arms from the kEpoch record the rewrite
  // preserved. Offsets in the old layout no longer mean anything.
  state->fence_epoch = 0;
  state->fence_cursor = 0;
  state->primary_rotations = primary->rotations();
  state->config.env->DeleteFile(state->config.path).IgnoreError();
  return Status::Ok();
}

Status ReplicatedVersionStore::AppendBatchLocked(ReplicaState* state,
                                                 std::string_view batch) {
  Env* env = state->config.env;
  const std::string& path = state->config.path;
  Retryer retryer(options_.store_options.retry, options_.store_options.sleep);
  const int attempts = std::max(1, options_.store_options.retry.max_attempts);
  Status last;
  for (int k = 0; k < attempts; ++k) {
    if (k > 0) {
      const double backoff = retryer.BackoffSeconds(k);
      if (options_.store_options.sleep) {
        options_.store_options.sleep(backoff);
      } else {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      }
    }
    // Repair a torn local tail first: a failed append may have persisted a
    // prefix of the batch, and appending after garbage corrupts everything
    // downstream of it. Truncating back to the cursor restores the
    // last-known-good state.
    if (state->dirty) {
      last = env->TruncateFile(path, state->cursor);
      if (!last.ok()) {
        if (IsTransientError(last)) continue;
        return last;
      }
      state->dirty = false;
    }
    if (!state->out) {
      auto out = env->NewWritableFile(path, /*truncate=*/state->cursor == 0);
      if (!out.ok()) {
        last = out.status();
        if (IsTransientError(last)) continue;
        return last;
      }
      state->out = std::move(*out);
    }
    last = state->out->Append(batch);
    if (!last.ok()) {
      state->dirty = true;  // A prefix may have landed (torn append).
      if (IsTransientError(last)) continue;
      return last;
    }
    last = state->out->Sync();
    if (!last.ok()) {
      // Never re-issue an fsync over the same bytes and trust the second
      // OK (the fsyncgate lesson, same as the store's rotation policy):
      // discard the suspect suffix and rewrite it through a fresh handle.
      state->dirty = true;
      state->out.reset();
      if (IsTransientError(last)) continue;
      return last;
    }
    return Status::Ok();
  }
  return last;
}

StatusOr<Tree> ReplicatedVersionStore::Materialize(int v) {
  std::shared_ptr<VersionStore> primary = PrimarySnapshot();
  if (!primary) {
    return Status::FailedPrecondition("replication: group has no primary");
  }
  const uint64_t durable = primary->DurableOffset();

  for (const auto& state_ptr : states_) {
    ReplicaState* state = state_ptr.get();
    MutexLock lock(&state->mu);
    if (state->role != ReplicaRole::kFollower) continue;
    if (state->dirty || state->cursor == 0) continue;
    if (state->cursor > durable) continue;  // Mid-failover; skip.
    if (durable - state->cursor > options_.max_read_lag_bytes) continue;
    if (!state->reader || state->reader_cursor != state->cursor) {
      StoreOptions so = options_.store_options;
      so.env = state->config.env;
      so.labels = labels_;
      so.metrics = nullptr;  // Reader reopens are not store activity.
      so.recovery = RecoveryMode::kTruncate;
      auto opened = VersionStore::Open(state->config.path, diff_options_, so);
      if (!opened.ok()) continue;
      state->reader = std::make_shared<VersionStore>(std::move(*opened));
      state->reader_cursor = state->cursor;
    }
    auto tree = state->reader->Materialize(v);
    if (tree.ok()) return tree;
    // kOutOfRange: the version is newer than this follower's prefix —
    // fall through to a fresher replica or the primary.
  }
  return primary->Materialize(v);
}

StatusOr<int> ReplicatedVersionStore::Promote(int follower_index) {
  return PromoteInternal(follower_index, nullptr);
}

StatusOr<int> ReplicatedVersionStore::PromoteIfEpoch(int follower_index,
                                                     uint64_t expected_epoch) {
  return PromoteInternal(follower_index, &expected_epoch);
}

StatusOr<int> ReplicatedVersionStore::PromoteInternal(
    int follower_index, const uint64_t* expected_epoch) {
  MutexLock commit_lock(&commit_mu_);
  MutexLock lock(&mu_);
  if (expected_epoch != nullptr && *expected_epoch != epoch_) {
    return Status::FailedPrecondition(
        "lost promotion race: expected epoch " +
        std::to_string(*expected_epoch) + ", group is at epoch " +
        std::to_string(epoch_));
  }

  // Pick the most-caught-up follower unless the caller named one. Maximal
  // cursor is what makes quorum acks durable across the failover: the
  // longest follower log contains every byte any majority fsynced.
  int candidate = -1;
  uint64_t candidate_cursor = 0;
  if (follower_index >= 0) {
    if (follower_index >= static_cast<int>(states_.size())) {
      return Status::OutOfRange("replication: no replica " +
                                std::to_string(follower_index));
    }
    ReplicaState* state = states_[static_cast<size_t>(follower_index)].get();
    MutexLock state_lock(&state->mu);
    if (state->role != ReplicaRole::kFollower) {
      return Status::FailedPrecondition(
          "replication: replica " + std::to_string(follower_index) + " is " +
          ReplicaRoleName(state->role) + ", not a follower");
    }
    candidate = follower_index;
    candidate_cursor = state->cursor;
  } else {
    for (size_t i = 0; i < states_.size(); ++i) {
      ReplicaState* state = states_[i].get();
      MutexLock state_lock(&state->mu);
      if (state->role != ReplicaRole::kFollower) continue;
      if (candidate < 0 || state->cursor > candidate_cursor) {
        candidate = static_cast<int>(i);
        candidate_cursor = state->cursor;
      }
    }
    if (candidate < 0) {
      return Status::FailedPrecondition(
          "replication: no follower available to promote");
    }
  }

  ReplicaState* cand = states_[static_cast<size_t>(candidate)].get();
  const uint64_t new_epoch = epoch_ + 1;

  // Claim the candidate (so a concurrent pump stops appending to it) and
  // drop any unverified local tail before opening it as a store.
  {
    MutexLock cand_lock(&cand->mu);
    if (cand->dirty) {
      Status st = cand->config.env->TruncateFile(cand->config.path,
                                                 cand->cursor);
      if (!st.ok()) return st;  // Promotion aborted; state unchanged.
      cand->dirty = false;
    }
    cand->role = ReplicaRole::kPrimary;
    cand->out.reset();
    cand->reader.reset();
    cand->reader_cursor = 0;
  }

  StoreOptions so = options_.store_options;
  so.env = cand->config.env;
  so.labels = labels_;
  auto opened = VersionStore::Open(cand->config.path, diff_options_, so);
  Status bump = opened.ok() ? opened->BumpEpoch(new_epoch) : opened.status();
  if (!bump.ok()) {
    MutexLock cand_lock(&cand->mu);
    cand->role = ReplicaRole::kFollower;  // Roll the claim back.
    return bump;
  }
  auto new_primary = std::make_shared<VersionStore>(std::move(*opened));

  // Point of no return: depose the old primary and flip the group view.
  ReplicaState* old = states_[static_cast<size_t>(primary_index_)].get();
  {
    MutexLock old_lock(&old->mu);
    old->role = ReplicaRole::kDeposed;
    // old->store stays alive: raw pointers handed out while it led remain
    // valid (and poisoned-or-fenced) until Rejoin discards it.
  }
  {
    MutexLock cand_lock(&cand->mu);
    cand->store = new_primary;
  }
  primary_index_ = candidate;
  epoch_ = new_epoch;
  promotion_history_.emplace_back(new_epoch, candidate_cursor);
  if (promotion_history_.size() > 64) {
    promotion_history_.erase(promotion_history_.begin());
  }

  // Re-point the surviving followers. Their logs are byte prefixes of the
  // old primary's stream; a follower at or behind the candidate's cursor
  // is therefore a byte prefix of the new primary's log and keeps its
  // cursor/chain. A follower *ahead* of the candidate (possible only with
  // an explicitly named, non-maximal candidate) holds bytes the new
  // primary replaced with its kEpoch record — it diverged and must resync.
  for (size_t i = 0; i < states_.size(); ++i) {
    if (static_cast<int>(i) == candidate) continue;
    ReplicaState* state = states_[i].get();
    MutexLock state_lock(&state->mu);
    if (state->role != ReplicaRole::kFollower) continue;
    if (state->cursor > candidate_cursor) {
      ResyncLocked(state, new_primary).IgnoreError();
      continue;
    }
    state->fence_epoch = new_epoch;
    state->fence_cursor = candidate_cursor;
    state->primary_rotations = new_primary->rotations();
  }

  failovers_.fetch_add(1, std::memory_order_relaxed);
  BumpMetric("replication_failovers_total");
  ack_cv_.SignalAll();
  ship_cv_.Signal();
  return candidate;
}

Status ReplicatedVersionStore::Rejoin(int index) {
  MutexLock commit_lock(&commit_mu_);
  std::shared_ptr<VersionStore> primary;
  {
    MutexLock lock(&mu_);
    if (index < 0 || index >= static_cast<int>(states_.size())) {
      return Status::OutOfRange("replication: no replica " +
                                std::to_string(index));
    }
    if (index == primary_index_) {
      return Status::FailedPrecondition(
          "replication: replica " + std::to_string(index) +
          " is the current primary");
    }
    ReplicaState* pstate = states_[static_cast<size_t>(primary_index_)].get();
    MutexLock pstate_lock(&pstate->mu);
    primary = pstate->store;
  }
  ReplicaState* state = states_[static_cast<size_t>(index)].get();
  MutexLock state_lock(&state->mu);
  if (state->role != ReplicaRole::kDeposed) {
    return Status::FailedPrecondition(
        "replication: replica " + std::to_string(index) + " is " +
        ReplicaRoleName(state->role) + ", not deposed");
  }
  // The deposed log may hold a divergent stale-epoch suffix (writes taken
  // after quorum was lost); resync discards it wholesale.
  state->role = ReplicaRole::kFollower;
  state->store.reset();
  Status st = ResyncLocked(state, primary);
  if (!st.ok()) return st;
  ship_cv_.Signal();
  return Status::Ok();
}

Status ReplicatedVersionStore::Scrub() {
  std::shared_ptr<VersionStore> primary = PrimarySnapshot();
  Status first;
  if (primary) {
    auto report = primary->Scrub();
    if (!report.ok()) first = report.status();
  }
  for (const auto& state_ptr : states_) {
    ReplicaState* state = state_ptr.get();
    MutexLock lock(&state->mu);
    if (state->role != ReplicaRole::kFollower) continue;
    if (state->cursor == 0) continue;
    auto file = state->config.env->NewRandomAccessFile(state->config.path);
    if (!file.ok()) {
      if (first.ok()) first = file.status();
      continue;
    }
    auto bytes = (*file)->Read(0, static_cast<size_t>(state->cursor));
    if (!bytes.ok() || bytes->size() != state->cursor) {
      if (first.ok()) {
        first = bytes.ok() ? Status::Unavailable(
                                 "replication: short read scrubbing follower")
                           : bytes.status();
      }
      continue;
    }
    if (Crc32c(*bytes) != state->chain) {
      // Local rot or divergence: the follower's bytes no longer match what
      // it verified and acked. Discard and recopy from the primary.
      divergence_.fetch_add(1, std::memory_order_relaxed);
      BumpMetric("replication_divergence_total");
      if (primary) ResyncLocked(state, primary).IgnoreError();
    }
  }
  return first;
}

std::vector<ReplicaStatus> ReplicatedVersionStore::Replicas() const {
  std::shared_ptr<VersionStore> primary = PrimarySnapshot();
  const uint64_t durable = primary ? primary->DurableOffset() : 0;
  std::vector<ReplicaStatus> out;
  out.reserve(states_.size());
  for (size_t i = 0; i < states_.size(); ++i) {
    ReplicaState* state = states_[i].get();
    MutexLock lock(&state->mu);
    ReplicaStatus rs;
    rs.index = static_cast<int>(i);
    rs.role = state->role;
    rs.cursor = state->cursor;
    rs.records = state->records;
    rs.chain = state->chain;
    if (state->role == ReplicaRole::kFollower) {
      rs.lag_bytes = durable > state->cursor ? durable - state->cursor : 0;
      rs.caught_up = rs.lag_bytes == 0;
    } else if (state->role == ReplicaRole::kPrimary) {
      rs.caught_up = true;
    }
    out.push_back(rs);
  }
  return out;
}

ReplicationCounters ReplicatedVersionStore::counters() const {
  ReplicationCounters c;
  c.records_shipped = records_shipped_.load(std::memory_order_relaxed);
  c.bytes_shipped = bytes_shipped_.load(std::memory_order_relaxed);
  c.failovers = failovers_.load(std::memory_order_relaxed);
  c.stale_epoch_rejects =
      stale_epoch_rejects_.load(std::memory_order_relaxed);
  c.resyncs = resyncs_.load(std::memory_order_relaxed);
  c.quorum_timeouts = quorum_timeouts_.load(std::memory_order_relaxed);
  c.divergence = divergence_.load(std::memory_order_relaxed);
  return c;
}

void ReplicatedVersionStore::BumpMetric(const char* name, uint64_t n) {
  if (options_.metrics != nullptr) options_.metrics->counter(name)->Increment(n);
}

void ReplicatedVersionStore::ObserveMetric(const char* name, double value) {
  if (options_.metrics != nullptr) options_.metrics->histogram(name)->Observe(value);
}

}  // namespace treediff
