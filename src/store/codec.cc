#include "store/codec.h"

#include <utility>
#include <vector>

namespace treediff {

// ---------------------------------------------------------------------------
// Coding helpers

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4] = {static_cast<char>(v & 0xFF), static_cast<char>((v >> 8) & 0xFF),
                 static_cast<char>((v >> 16) & 0xFF),
                 static_cast<char>((v >> 24) & 0xFF)};
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  PutFixed32(dst, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutFixed32(dst, static_cast<uint32_t>(v >> 32));
}

uint32_t DecodeFixed32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

uint64_t DecodeFixed64(const char* p) {
  return static_cast<uint64_t>(DecodeFixed32(p)) |
         (static_cast<uint64_t>(DecodeFixed32(p + 4)) << 32);
}

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

bool GetVarint64(std::string_view* input, uint64_t* v) {
  uint64_t result = 0;
  for (unsigned shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    uint8_t byte = static_cast<uint8_t>(input->front());
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    } else {
      result |= static_cast<uint64_t>(byte) << shift;
      *v = result;
      return true;
    }
  }
  return false;  // Truncated or overlong.
}

void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutVarint64(dst, s.size());
  dst->append(s);
}

bool GetLengthPrefixed(std::string_view* input, std::string_view* out) {
  uint64_t len = 0;
  if (!GetVarint64(input, &len)) return false;
  if (len > input->size()) return false;
  *out = input->substr(0, static_cast<size_t>(len));
  input->remove_prefix(static_cast<size_t>(len));
  return true;
}

// ---------------------------------------------------------------------------
// Tree codec

/// Friend shim: installs a fully decoded arena into a Tree. The codec is
/// the only caller; everything it installs has been validated first.
class TreeCodecAccess {
 public:
  using NodeRec = Tree::NodeRec;

  static const std::vector<NodeRec>& Nodes(const Tree& t) { return t.nodes_; }

  static Tree Build(std::shared_ptr<LabelTable> labels, NodeId root,
                    std::vector<NodeRec> nodes, size_t live_count) {
    Tree t(std::move(labels));
    t.nodes_ = std::move(nodes);
    t.root_ = root;
    t.live_count_ = live_count;
    return t;
  }
};

namespace {

constexpr uint8_t kCodecVersion = 1;
constexpr uint8_t kFlagAlive = 0x01;

Status CodecError(const std::string& what) {
  return Status::ParseError("tree codec: " + what);
}

}  // namespace

std::string EncodeTree(const Tree& tree) {
  const auto& nodes = TreeCodecAccess::Nodes(tree);
  std::string out;
  out.push_back(static_cast<char>(kCodecVersion));
  PutVarint64(&out, nodes.size());
  PutVarint64(&out, static_cast<uint64_t>(tree.root() + 1));

  // Local label table: referenced labels in order of first appearance.
  std::vector<LabelId> local_of_global;  // global id -> local id + 1 (0 = none)
  std::vector<LabelId> globals;          // local id -> global id
  for (const auto& rec : nodes) {
    if (rec.label < 0) continue;
    if (static_cast<size_t>(rec.label) >= local_of_global.size()) {
      local_of_global.resize(static_cast<size_t>(rec.label) + 1, 0);
    }
    if (local_of_global[static_cast<size_t>(rec.label)] == 0) {
      globals.push_back(rec.label);
      local_of_global[static_cast<size_t>(rec.label)] =
          static_cast<LabelId>(globals.size());
    }
  }
  PutVarint64(&out, globals.size());
  for (LabelId g : globals) PutLengthPrefixed(&out, tree.labels().Name(g));

  for (const auto& rec : nodes) {
    out.push_back(static_cast<char>(rec.alive ? kFlagAlive : 0));
    uint64_t local =
        rec.label < 0 ? 0
                      : static_cast<uint64_t>(
                            local_of_global[static_cast<size_t>(rec.label)]);
    PutVarint64(&out, local);  // 0 = no label (never produced in practice).
    PutLengthPrefixed(&out, rec.value);
    PutVarint64(&out, static_cast<uint64_t>(rec.parent + 1));
    if (rec.alive) {
      PutVarint64(&out, rec.children.size());
      for (NodeId c : rec.children) {
        PutVarint64(&out, static_cast<uint64_t>(c));
      }
    }
  }
  return out;
}

StatusOr<Tree> DecodeTree(std::string_view data,
                          std::shared_ptr<LabelTable> labels) {
  std::string_view in = data;
  if (in.empty()) return CodecError("empty input");
  uint8_t version = static_cast<uint8_t>(in.front());
  in.remove_prefix(1);
  if (version != kCodecVersion) {
    return CodecError("unsupported version " + std::to_string(version));
  }

  uint64_t id_bound = 0, root_plus1 = 0, label_count = 0;
  if (!GetVarint64(&in, &id_bound) || !GetVarint64(&in, &root_plus1)) {
    return CodecError("truncated header");
  }
  // Each node costs at least 4 encoded bytes; a bound past that is a
  // corrupt length, not a huge tree — reject before allocating.
  if (id_bound > data.size()) return CodecError("implausible id bound");
  if (root_plus1 > id_bound) return CodecError("root out of range");

  if (!GetVarint64(&in, &label_count)) return CodecError("truncated labels");
  if (label_count > data.size()) return CodecError("implausible label count");
  if (!labels) labels = std::make_shared<LabelTable>();
  std::vector<LabelId> globals;
  globals.reserve(static_cast<size_t>(label_count));
  for (uint64_t i = 0; i < label_count; ++i) {
    std::string_view name;
    if (!GetLengthPrefixed(&in, &name) || name.empty()) {
      return CodecError("bad label name");
    }
    globals.push_back(labels->Intern(name));
  }

  std::vector<TreeCodecAccess::NodeRec> nodes(static_cast<size_t>(id_bound));
  size_t live = 0;
  for (uint64_t i = 0; i < id_bound; ++i) {
    auto& rec = nodes[static_cast<size_t>(i)];
    if (in.empty()) return CodecError("truncated node");
    uint8_t flags = static_cast<uint8_t>(in.front());
    in.remove_prefix(1);
    if (flags & ~kFlagAlive) return CodecError("unknown node flags");
    rec.alive = (flags & kFlagAlive) != 0;
    if (rec.alive) ++live;

    uint64_t local = 0;
    if (!GetVarint64(&in, &local)) return CodecError("truncated label ref");
    if (local == 0 || local > globals.size()) {
      return CodecError("label ref out of range");
    }
    rec.label = globals[static_cast<size_t>(local - 1)];

    std::string_view value;
    if (!GetLengthPrefixed(&in, &value)) return CodecError("truncated value");
    rec.value.assign(value);

    uint64_t parent_plus1 = 0;
    if (!GetVarint64(&in, &parent_plus1)) return CodecError("truncated parent");
    if (parent_plus1 > id_bound) return CodecError("parent out of range");
    rec.parent = static_cast<NodeId>(parent_plus1) - 1;
    if (!rec.alive && rec.parent != kInvalidNode) {
      return CodecError("dead slot with a parent");
    }

    if (rec.alive) {
      uint64_t nchildren = 0;
      if (!GetVarint64(&in, &nchildren)) {
        return CodecError("truncated child count");
      }
      if (nchildren > id_bound) return CodecError("implausible child count");
      rec.children.reserve(static_cast<size_t>(nchildren));
      for (uint64_t c = 0; c < nchildren; ++c) {
        uint64_t child = 0;
        if (!GetVarint64(&in, &child)) return CodecError("truncated child id");
        if (child >= id_bound) return CodecError("child out of range");
        rec.children.push_back(static_cast<NodeId>(child));
      }
    }
  }
  if (!in.empty()) return CodecError("trailing bytes");

  NodeId root = static_cast<NodeId>(root_plus1) - 1;
  if (root == kInvalidNode && live != 0) {
    return CodecError("live nodes but no root");
  }
  if (root != kInvalidNode && !nodes[static_cast<size_t>(root)].alive) {
    return CodecError("root is not a live node");
  }

  Tree tree = TreeCodecAccess::Build(std::move(labels), root, std::move(nodes),
                                     live);
  // Full structural validation (parent/child symmetry, acyclicity,
  // reachability): corrupt bytes that survived the per-field checks — e.g.
  // a child list naming a dead node, or a cycle — are caught here rather
  // than poisoning the store.
  Status valid = tree.Validate();
  if (!valid.ok()) return CodecError("invalid structure: " + valid.message());
  return tree;
}

}  // namespace treediff
