#ifndef TREEDIFF_STORE_REPLICATION_H_
#define TREEDIFF_STORE_REPLICATION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "store/version_store.h"
#include "util/io.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace treediff {

/// Replicated VersionStore: one primary, N followers, each backed by its
/// own Env + log file. The unit of replication is the commit log itself —
/// followers *tail the primary's log bytes* from a cursor, re-verify every
/// record's CRC32C before appending it locally, and fsync before
/// acknowledging, so a follower's log is at all times a verified,
/// byte-identical prefix of the primary's. Materializing any version on
/// any caught-up replica therefore yields the same tree the primary
/// serves, with no separate state-transfer protocol to get wrong.
///
/// **Ack modes.** kLeaderOnly returns once the primary's fsync completes
/// (the pre-replication durability contract). kQuorum additionally blocks
/// the commit until a majority of the replica set has fsynced the record;
/// a quorum-acked commit then survives the permanent loss of any minority
/// of replicas, because the promotion rule below always picks a replica
/// that has it.
///
/// **Failover is explicit and fenced.** Every format-2 log record carries
/// the epoch it was written under. Promote() picks the most-caught-up
/// follower, reopens it as the primary, and durably bumps the epoch
/// (VersionStore::BumpEpoch appends a kEpoch record); the old primary is
/// deposed. Two fences then reject the deposed primary's leftovers:
///  * Commits carry a CommitLease (an epoch-stamped token). A lease minted
///    before the promotion no longer matches and the commit fails with
///    kFailedPrecondition instead of silently interleaving — the
///    fencing-token pattern.
///  * A follower rejects any shipped record that claims an epoch older
///    than the fence it learned at promotion, so a stale in-flight batch
///    (or a zombie writer appending to the shared medium) cannot extend a
///    follower's log past the new epoch's history.
///
/// **Divergence is detected, not assumed away.** Each follower maintains a
/// running CRC32C chain over its local log bytes; Scrub() re-reads the
/// follower logs and recomputes the chain, and any mismatch (local rot) or
/// primary log rewrite (rotation, detected by the primary's rotation
/// counter) triggers a full resync instead of silent drift.
///
/// Thread-safety: all public methods are safe to call concurrently. The
/// background shipper (ReplicationOptions::background_ship) is optional —
/// deterministic tests disable it and drive PumpFollowers() by hand.
class ReplicatedVersionStore;

/// When a group Commit acknowledges.
enum class AckMode {
  kLeaderOnly,  // Durable on the primary.
  kQuorum,      // Durable on a majority of the replica set.
};

/// Role of one replica inside the group.
enum class ReplicaRole {
  kPrimary,
  kFollower,
  kDeposed,  // A demoted primary; rejects writes until Rejoin().
};

const char* ReplicaRoleName(ReplicaRole role);

/// A fencing token: commits performed under a lease are rejected once a
/// promotion has bumped the group past the lease's epoch. Obtain via
/// ReplicatedVersionStore::lease() before a batch of writes; the stale
/// token is how a deposed primary's writer discovers it lost leadership.
struct CommitLease {
  uint64_t epoch = 0;
};

/// Placement of one replica: its file system and log path. Replicas may
/// share an Env (distinct paths) or use one Env each; the chaos harness
/// gives every replica its own FaultInjectingEnv so machines fail
/// independently.
struct ReplicaConfig {
  Env* env = nullptr;  // Null means Env::Default().
  std::string path;
};

/// Group-level knobs.
struct ReplicationOptions {
  AckMode ack_mode = AckMode::kLeaderOnly;

  /// How long a kQuorum commit waits for follower fsyncs before giving up
  /// with kUnavailable. The commit is durable on the primary either way —
  /// the error tells the caller the *replication* guarantee was not met.
  double ack_timeout_seconds = 5.0;

  /// Background shipper cadence (also woken by every commit).
  double poll_interval_seconds = 0.010;

  /// False disables the shipper thread; tests drive PumpFollowers()
  /// explicitly for deterministic schedules. kQuorum commits then pump
  /// inline while they wait, so single-threaded tests still converge.
  bool background_ship = true;

  /// A follower may serve reads while its log trails the primary's by at
  /// most this many bytes; 0 restricts follower reads to fully caught-up
  /// replicas. Reads fall back to the primary when no follower qualifies.
  uint64_t max_read_lag_bytes = 0;

  /// Registry for replication counters/histograms (see docs/replication.md
  /// for the names). Null disables. Must outlive the group.
  MetricsRegistry* metrics = nullptr;

  /// Per-replica store knobs (env/labels are overridden per replica; the
  /// retry budget and sleep hook apply to follower catch-up I/O too).
  StoreOptions store_options;
};

/// Point-in-time view of one replica, for STATUS lines and tests.
struct ReplicaStatus {
  int index = 0;
  ReplicaRole role = ReplicaRole::kFollower;
  uint64_t cursor = 0;      // Local log bytes (verified + fsync'd).
  uint64_t lag_bytes = 0;   // Primary durable offset minus cursor.
  uint64_t records = 0;     // Records appended locally by shipping.
  uint32_t chain = 0;       // CRC32C chain over the local log bytes.
  bool caught_up = false;
};

/// Cumulative replication activity (mirrored into the metrics registry).
struct ReplicationCounters {
  uint64_t records_shipped = 0;
  uint64_t bytes_shipped = 0;
  uint64_t failovers = 0;
  uint64_t stale_epoch_rejects = 0;  // Batches rejected by the epoch fence.
  uint64_t resyncs = 0;              // Full recopies (rotation/divergence).
  uint64_t quorum_timeouts = 0;
  uint64_t divergence = 0;           // Chain mismatches caught by Scrub.
};

class ReplicatedVersionStore {
 public:
  /// Creates the group: replicas[0] becomes the initial primary (a fresh
  /// durable VersionStore with version 0 = `base`); the rest start as
  /// empty followers and catch up by shipping. All replicas share the base
  /// tree's LabelTable so trees materialized anywhere stay
  /// diff-compatible across failovers.
  static StatusOr<std::unique_ptr<ReplicatedVersionStore>> Create(
      std::vector<ReplicaConfig> replicas, Tree base,
      DiffOptions diff_options = {}, ReplicationOptions options = {});

  ~ReplicatedVersionStore();
  ReplicatedVersionStore(const ReplicatedVersionStore&) = delete;
  ReplicatedVersionStore& operator=(const ReplicatedVersionStore&) = delete;

  /// The current fencing token. Mint one, then commit under it; a
  /// promotion in between invalidates it.
  CommitLease lease() const EXCLUDES(mu_);

  /// Commit under the current lease (the common single-writer path).
  StatusOr<int> Commit(const Tree& new_version);

  /// Commit under an explicit lease. Fails with kFailedPrecondition
  /// ("fenced") without touching any log when the lease's epoch is not the
  /// group's current epoch — the stale-primary write rejection.
  /// Under AckMode::kQuorum, blocks until a majority of the replica set
  /// has fsynced the record or ack_timeout expires (kUnavailable; the
  /// commit is durable on the primary but was NOT quorum-acked, and a
  /// subsequent failover may lose it).
  StatusOr<int> CommitWithLease(const Tree& new_version,
                                const CommitLease& lease);

  /// One synchronous shipping round: every follower catches up to the
  /// primary's current durable offset (verifying CRCs, enforcing the epoch
  /// fence, fsyncing). The background shipper calls this in a loop;
  /// deterministic tests call it directly.
  Status PumpFollowers();

  /// Serves version `v`, preferring a follower within the configured
  /// staleness bound (spreading read load off the primary); falls back to
  /// the primary.
  StatusOr<Tree> Materialize(int v);

  /// Promotes `follower_index` (or, if -1, the most-caught-up follower) to
  /// primary: bumps the epoch durably, deposes the old primary, and
  /// re-points the surviving followers (their logs are byte prefixes of
  /// the new primary's, so their cursors remain valid). Returns the new
  /// primary's replica index.
  StatusOr<int> Promote(int follower_index = -1) EXCLUDES(mu_);

  /// Promote, but only if the group is still at `expected_epoch` — the
  /// compare-and-swap two racing failover initiators use so exactly one
  /// epoch wins. The loser gets kFailedPrecondition("lost promotion race").
  StatusOr<int> PromoteIfEpoch(int follower_index, uint64_t expected_epoch)
      EXCLUDES(mu_);

  /// Re-admits a deposed replica as a follower. Its divergent stale-epoch
  /// suffix (commits the old primary took after losing quorum) is
  /// discarded by a full resync from the current primary.
  Status Rejoin(int index) EXCLUDES(mu_);

  /// Scrubs the primary (VersionStore::Scrub) and re-verifies every
  /// follower's CRC chain; a diverged or rotten follower is resynced.
  Status Scrub();

  // --- Introspection (delegating reads go to the current primary) ---

  uint64_t epoch() const EXCLUDES(mu_);
  int primary_index() const EXCLUDES(mu_);
  int replica_count() const { return static_cast<int>(states_.size()); }

  /// The current primary store (stable until the next promotion). The
  /// service layer uses it for label-table access and delta queries; do
  /// not Commit on it directly — that would bypass the lease fence.
  std::shared_ptr<VersionStore> primary() const EXCLUDES(mu_);

  const std::shared_ptr<LabelTable>& label_table() const { return labels_; }

  std::vector<ReplicaStatus> Replicas() const EXCLUDES(mu_);
  ReplicationCounters counters() const;

 private:
  /// Per-replica mutable state. Every replica has one, including the
  /// primary (whose shipping fields are dormant while it leads).
  struct ReplicaState {
    ReplicaConfig config;

    mutable Mutex mu;
    ReplicaRole role GUARDED_BY(mu) = ReplicaRole::kFollower;

    /// Open VersionStore while this replica is (or last was) the primary;
    /// kept alive after deposal so raw pointers handed to the service
    /// layer stay valid until Rejoin discards it.
    std::shared_ptr<VersionStore> store GUARDED_BY(mu);

    // Shipping state (follower role).
    std::unique_ptr<WritableFile> out GUARDED_BY(mu);  // Local log append.
    uint64_t cursor GUARDED_BY(mu) = 0;  // Verified + fsync'd local bytes.
    uint32_t chain GUARDED_BY(mu) = 0;   // CRC32C over bytes [0, cursor).
    uint64_t records GUARDED_BY(mu) = 0;
    bool dirty GUARDED_BY(mu) = false;  // Unverified tail past the cursor.
    uint64_t primary_rotations GUARDED_BY(mu) = 0;  // For rewrite detection.

    // Epoch fence: records at/after fence_cursor must carry an epoch
    // >= fence_epoch. Offsets before it are accepted history (they
    // legitimately carry older epochs).
    uint64_t fence_epoch GUARDED_BY(mu) = 0;
    uint64_t fence_cursor GUARDED_BY(mu) = 0;

    // Read cache: a store opened from the local log at reader_cursor.
    std::shared_ptr<VersionStore> reader GUARDED_BY(mu);
    uint64_t reader_cursor GUARDED_BY(mu) = 0;
  };

  ReplicatedVersionStore() = default;

  /// Ships one batch to `state` from the current primary. Returns OK when
  /// the follower is caught up (or the round made progress); transient
  /// errors leave the cursor unchanged for the next round.
  Status PumpOne(ReplicaState* state) EXCLUDES(state->mu);

  /// Full recopy of the primary log into `state` (rotation, divergence,
  /// rejoin). Caller holds the state lock.
  Status ResyncLocked(ReplicaState* state,
                      const std::shared_ptr<VersionStore>& primary)
      REQUIRES(state->mu);

  /// Appends `batch` to the follower's local log and fsyncs, repairing a
  /// torn local tail (truncate back to the cursor) between attempts.
  Status AppendBatchLocked(ReplicaState* state, std::string_view batch)
      REQUIRES(state->mu);

  StatusOr<int> PromoteInternal(int follower_index,
                                const uint64_t* expected_epoch)
      EXCLUDES(mu_, commit_mu_);

  std::shared_ptr<VersionStore> PrimarySnapshot() const EXCLUDES(mu_);

  void BumpMetric(const char* name, uint64_t n = 1);
  void ObserveMetric(const char* name, double value);

  void ShipLoop();

  DiffOptions diff_options_;
  ReplicationOptions options_;
  std::shared_ptr<LabelTable> labels_;

  /// Serializes commits and promotions against each other so a commit
  /// checks its lease and lands on the primary atomically with respect to
  /// any failover. Never held during quorum waits or shipping.
  Mutex commit_mu_ ACQUIRED_BEFORE(mu_);

  /// Guards the group view (who leads, what epoch).
  mutable Mutex mu_;
  int primary_index_ GUARDED_BY(mu_) = 0;
  uint64_t epoch_ GUARDED_BY(mu_) = 0;

  /// {epoch, candidate cursor} of recent promotions, newest last. A quorum
  /// waiter whose commit predates a promotion consults this: if any
  /// promotion since its epoch cut below the commit's end offset, the
  /// record no longer exists on the surviving stream and the wait must
  /// fail rather than count votes against a different byte sequence.
  /// Bounded (failovers are rare events); a waiter whose epoch has been
  /// evicted fails conservatively.
  std::vector<std::pair<uint64_t, uint64_t>> promotion_history_
      GUARDED_BY(mu_);

  /// Fixed at Create; ReplicaState addresses are stable (unique_ptr).
  std::vector<std::unique_ptr<ReplicaState>> states_;

  // Ack signaling: followers advancing their cursor wake quorum waiters.
  Mutex ack_mu_;
  CondVar ack_cv_;

  // Shipper thread.
  Mutex ship_mu_;
  CondVar ship_cv_;
  bool stop_ GUARDED_BY(ship_mu_) = false;
  std::thread shipper_;

  // Counters (atomics: pumps may run concurrently with inline quorum
  // pumping, and readers must not need a lock).
  std::atomic<uint64_t> records_shipped_{0};
  std::atomic<uint64_t> bytes_shipped_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> stale_epoch_rejects_{0};
  std::atomic<uint64_t> resyncs_{0};
  std::atomic<uint64_t> quorum_timeouts_{0};
  std::atomic<uint64_t> divergence_{0};
};

}  // namespace treediff

#endif  // TREEDIFF_STORE_REPLICATION_H_
