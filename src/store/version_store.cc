#include "store/version_store.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "core/script_io.h"
#include "store/codec.h"

namespace treediff {

namespace {

/// Delta record payload: a small stats header, then the script text.
/// Storing nodes/full_size/cost in the header lets recovery rebuild
/// VersionInfo and StorageStats without materializing every version (the
/// script text alone cannot: update costs are not serialized).
///
///   varint   nodes        (tree size after the delta)
///   varint   full_size    (s-expression bytes of the full snapshot)
///   fixed64  cost bits    (IEEE double, TotalCost of the original script)
///   bytes    script text  (FormatEditScript)
std::string EncodeDeltaPayload(const VersionStore::VersionInfo& info,
                               size_t full_size,
                               const std::string& script_text) {
  std::string payload;
  PutVarint64(&payload, info.nodes);
  PutVarint64(&payload, full_size);
  PutFixed64(&payload, std::bit_cast<uint64_t>(info.cost));
  payload.append(script_text);
  return payload;
}

bool DecodeDeltaHeader(std::string_view* payload, uint64_t* nodes,
                       uint64_t* full_size, double* cost) {
  if (!GetVarint64(payload, nodes) || !GetVarint64(payload, full_size)) {
    return false;
  }
  if (payload->size() < 8) return false;
  *cost = std::bit_cast<double>(DecodeFixed64(payload->data()));
  payload->remove_prefix(8);
  return true;
}

}  // namespace

std::string RecoveryReport::ToString() const {
  std::string out = "recovered " + std::to_string(versions_recovered) +
                    " version(s) from " + std::to_string(records_scanned) +
                    " record(s), " + std::to_string(bytes_total) + " byte(s)";
  if (checkpoint_version >= 0) {
    out += ", head from checkpoint v" + std::to_string(checkpoint_version) +
           " + " + std::to_string(deltas_replayed) + " delta(s)";
  } else {
    out += ", head replayed from base (" + std::to_string(deltas_replayed) +
           " delta(s))";
  }
  if (bytes_truncated > 0) {
    out += "; truncated " + std::to_string(bytes_truncated) + " byte(s) (" +
           (checksum_failures > 0 ? "checksum failure" : "torn tail") + ")";
  }
  if (!salvage_ranges.empty()) {
    out += "; salvaged past " + std::to_string(salvage_ranges.size()) +
           " damaged range(s) [";
    for (size_t i = 0; i < salvage_ranges.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(salvage_ranges[i].begin) + "-" +
             std::to_string(salvage_ranges[i].end);
    }
    out += ")";
  }
  if (records_skipped > 0) {
    out += "; skipped " + std::to_string(records_skipped) + " record(s)";
  }
  if (versions_lost > 0) {
    out += "; lost " + std::to_string(versions_lost) + " version(s)";
  }
  if (rotated) {
    out += "; log rewritten (original quarantined)";
  }
  return out;
}

VersionStore::VersionStore(Tree base, DiffOptions options)
    : base_(base.Clone()), options_(options), head_(std::move(base)) {
  Segment seg;
  seg.first = 0;
  seg.anchor = base_.Clone();
  seg.anchor_full_size = base_.ToDebugString().size();
  segments_.push_back(std::move(seg));
}

// Moves transfer everything but the mutex. The analysis is disabled here
// (see the header): the moved-from object is not shared, so its guarded
// members are read without its lock by design.
VersionStore::VersionStore(VersionStore&& other)
    : base_(std::move(other.base_)),
      options_(other.options_),
      head_(std::move(other.head_)),
      segments_(std::move(other.segments_)),
      durable_(other.durable_),
      writer_(std::move(other.writer_)),
      env_(other.env_),
      path_(std::move(other.path_)),
      store_options_(std::move(other.store_options_)),
      io_status_(std::move(other.io_status_)),
      commits_since_checkpoint_(other.commits_since_checkpoint_),
      faults_(other.faults_),
      log_format_(other.log_format_),
      epoch_(other.epoch_) {}

VersionStore& VersionStore::operator=(VersionStore&& other) {
  if (this == &other) return *this;
  base_ = std::move(other.base_);
  options_ = other.options_;
  head_ = std::move(other.head_);
  segments_ = std::move(other.segments_);
  durable_ = other.durable_;
  writer_ = std::move(other.writer_);
  env_ = other.env_;
  path_ = std::move(other.path_);
  store_options_ = std::move(other.store_options_);
  io_status_ = std::move(other.io_status_);
  commits_since_checkpoint_ = other.commits_since_checkpoint_;
  faults_ = other.faults_;
  log_format_ = other.log_format_;
  epoch_ = other.epoch_;
  return *this;
}

void VersionStore::BumpCounter(const char* name, uint64_t n) {
  if (store_options_.metrics) {
    store_options_.metrics->counter(name)->Increment(n);
  }
}

Status VersionStore::AppendOnce(LogRecordType type, std::string_view payload) {
  TREEDIFF_RETURN_IF_ERROR(writer_->AppendRecord(type, payload));
  return writer_->Sync();
}

Status VersionStore::AppendDurable(LogRecordType type,
                                   std::string_view payload) {
  // Transient faults are retried under the store's budget, but never by
  // naively re-running append+sync on the same file: the failed attempt may
  // have left a torn record, and a sync that reported failure may have
  // dropped its dirty pages — re-issuing it and trusting the second OK is
  // the fsyncgate mistake. Instead each retry first *rotates*: the full
  // in-memory state (which the failed record is not yet part of) is written
  // to a fresh log and atomically swapped in, so the retry appends to a
  // tail whose every byte is known good.
  Retryer backoff(store_options_.retry, store_options_.sleep);
  const int max_attempts = std::max(store_options_.retry.max_attempts, 1);
  bool need_rotation = false;
  Status last;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (need_rotation) {
      last = RotateLocked();
      if (last.ok()) {
        need_rotation = false;
        last = AppendOnce(type, payload);
      }
    } else {
      last = AppendOnce(type, payload);
    }
    if (last.ok()) return last;
    if (!IsTransientError(last)) break;
    need_rotation = true;
    if (attempt < max_attempts) {
      ++faults_.transient_retries;
      BumpCounter("store_retries_total", 1);
      const double seconds = backoff.BackoffSeconds(attempt);
      if (store_options_.sleep) {
        store_options_.sleep(seconds);
      } else if (seconds > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
      }
    }
  }
  // The log tail is now in an unknown state; poison the store so no
  // further mutation can commit on top of it. Reads stay available, and
  // Repair() or reopening restores service.
  io_status_ = last;
  return last;
}

void VersionStore::MaybeCheckpoint() {
  if (store_options_.checkpoint_interval <= 0) return;
  if (++commits_since_checkpoint_ < store_options_.checkpoint_interval) return;
  std::string payload;
  PutVarint64(&payload, static_cast<uint64_t>(VersionCountLocked() - 1));
  payload.append(EncodeTree(head_));
  // Best-effort: the commit this rides on is already durable. A failure
  // poisons the store (the tail may hold a torn checkpoint record), which
  // recovery simply truncates.
  if (AppendDurable(LogRecordType::kCheckpoint, payload).ok()) {
    commits_since_checkpoint_ = 0;
  }
}

StatusOr<int> VersionStore::Commit(const Tree& new_version) {
  MutexLock lock(&mu_);
  if (!io_status_.ok()) {
    return Status::FailedPrecondition(
        "store is poisoned by an earlier I/O error: " + io_status_.message());
  }
  if (new_version.label_table().get() != base_.label_table().get()) {
    return Status::InvalidArgument(
        "committed versions must share the store's LabelTable");
  }
  StatusOr<DiffResult> diff = DiffTrees(head_, new_version, options_);
  if (!diff.ok()) return diff.status();

  // Apply the delta to the head; the head's id space (not the snapshot's)
  // is what subsequent scripts address, so replay from the anchor stays
  // deterministic.
  Tree next = head_.Clone();
  TREEDIFF_RETURN_IF_ERROR(diff->script.ApplyTo(&next));
  if (!Tree::Isomorphic(next, new_version)) {
    return Status::Internal("delta replay does not reproduce the snapshot");
  }

  VersionInfo info;
  info.inserts = diff->script.num_inserts();
  info.deletes = diff->script.num_deletes();
  info.updates = diff->script.num_updates();
  info.moves = diff->script.num_moves();
  info.cost = diff->script.TotalCost();
  info.nodes = next.size();

  size_t full_size = new_version.ToDebugString().size();
  if (durable()) {
    // Write-ahead: the record must be on disk before the head advances. A
    // failed append leaves the in-memory store exactly as it was.
    std::string payload = EncodeDeltaPayload(
        info, full_size, FormatEditScript(diff->script, base_.labels()));
    TREEDIFF_RETURN_IF_ERROR(AppendDurable(LogRecordType::kDelta, payload));
  }

  head_ = std::move(next);
  Segment& last = segments_.back();
  last.scripts.push_back(std::move(diff->script));
  last.infos.push_back(info);
  last.full_sizes.push_back(full_size);
  if (durable()) MaybeCheckpoint();
  return VersionCountLocked() - 1;
}

const VersionStore::Segment* VersionStore::FindSegment(int v) const {
  if (v < 0 || v >= VersionCountLocked()) return nullptr;
  // Few segments (one unless salvage re-anchored); scan from the back.
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
    if (it->first <= v) {
      return v <= it->first + static_cast<int>(it->scripts.size()) ? &*it
                                                                   : nullptr;
    }
  }
  return nullptr;
}

bool VersionStore::VersionAvailable(int v) const {
  MutexLock lock(&mu_);
  return FindSegment(v) != nullptr;
}

StatusOr<Tree> VersionStore::Materialize(int v) const {
  MutexLock lock(&mu_);
  return MaterializeLocked(v);
}

StatusOr<Tree> VersionStore::MaterializeLocked(int v) const {
  if (v < 0 || v >= VersionCountLocked()) {
    return Status::OutOfRange("no such version: " + std::to_string(v));
  }
  const Segment* seg = FindSegment(v);
  if (!seg) {
    return Status::DataLoss("version " + std::to_string(v) +
                            " was lost to log corruption (salvage hole)");
  }
  Tree tree = seg->anchor.Clone();
  for (int i = 0; i < v - seg->first; ++i) {
    TREEDIFF_RETURN_IF_ERROR(
        seg->scripts[static_cast<size_t>(i)].ApplyTo(&tree));
  }
  return tree;
}

StatusOr<int> VersionStore::RollbackHead() {
  MutexLock lock(&mu_);
  if (!io_status_.ok()) {
    return Status::FailedPrecondition(
        "store is poisoned by an earlier I/O error: " + io_status_.message());
  }
  Segment& last = segments_.back();
  if (last.scripts.empty()) {
    if (segments_.size() > 1) {
      // The head is a salvage anchor: the delta beneath it was lost with
      // the damaged range, so there is nothing to invert.
      return Status::FailedPrecondition(
          "cannot roll back across a salvage hole");
    }
    return Status::FailedPrecondition("cannot roll back the base version");
  }
  // The inverse must be computed against the pre-state of the last delta,
  // which replaying the chain up to the previous version reproduces with
  // the exact node ids the head evolved from.
  StatusOr<Tree> prev = MaterializeLocked(VersionCountLocked() - 2);
  if (!prev.ok()) return prev.status();
  StatusOr<EditScript> inverse = InvertScript(last.scripts.back(), *prev);
  if (!inverse.ok()) return inverse.status();
  // Verify on a scratch copy so the member state stays untouched until the
  // rollback is durable.
  Tree check = head_.Clone();
  TREEDIFF_RETURN_IF_ERROR(inverse->ApplyTo(&check));
  if (!Tree::Isomorphic(check, *prev)) {
    return Status::Internal("inverse delta did not restore the head");
  }
  if (durable()) {
    std::string payload;
    PutVarint64(&payload, static_cast<uint64_t>(VersionCountLocked() - 1));
    TREEDIFF_RETURN_IF_ERROR(AppendDurable(LogRecordType::kRollback, payload));
  }
  // Adopt the replayed tree (not the undone head): the id space must match
  // what future commits' scripts will see when materialized from the base.
  head_ = std::move(*prev);
  last.scripts.pop_back();
  last.infos.pop_back();
  last.full_sizes.pop_back();
  return VersionCountLocked() - 1;
}

const EditScript* VersionStore::DeltaFor(int v) const {
  MutexLock lock(&mu_);
  const Segment* seg = FindSegment(v);
  if (!seg || v <= seg->first) return nullptr;  // Anchor or base: no delta.
  return &seg->scripts[static_cast<size_t>(v - seg->first - 1)];
}

VersionStore::VersionInfo VersionStore::Info(int v) const {
  MutexLock lock(&mu_);
  const Segment* seg = FindSegment(v);
  if (!seg || v <= seg->first) return {};
  return seg->infos[static_cast<size_t>(v - seg->first - 1)];
}

VersionStore::StorageStats VersionStore::Storage() const {
  MutexLock lock(&mu_);
  StorageStats stats;
  const LabelTable& labels = base_.labels();
  for (const Segment& seg : segments_) {
    for (const EditScript& script : seg.scripts) {
      stats.delta_bytes += FormatEditScript(script, labels).size();
    }
    // The base is stored in full either way; count every other version,
    // including salvage anchors (which really are stored in full).
    if (seg.first != 0) stats.full_copy_bytes += seg.anchor_full_size;
    for (size_t size : seg.full_sizes) stats.full_copy_bytes += size;
  }
  return stats;
}

std::string VersionStore::EncodeStateLocked() const {
  // Rotation always rewrites in format 2 (every record stamped with the
  // current epoch): the rewrite happens under this writer's authority, and
  // upgrading here is what migrates pre-replication logs without a separate
  // conversion pass. A follower tailing the old bytes detects the rotation
  // via rotations() and resyncs.
  std::string out(kLogMagicV2, kLogMagicSize);
  auto put = [&](LogRecordType type, std::string_view payload) {
    out += EncodeLogRecordV2(type, payload, epoch_);
  };
  put(LogRecordType::kSnapshot, EncodeTree(base_));
  if (epoch_ > 0) {
    // Re-announce the fencing epoch explicitly so even a log whose later
    // records are truncated by a crash still recovers the right epoch.
    std::string payload;
    PutVarint64(&payload, epoch_);
    put(LogRecordType::kEpoch, payload);
  }
  const LabelTable& labels = base_.labels();
  for (const Segment& seg : segments_) {
    if (seg.first != 0) {
      // Re-anchoring checkpoint: recovery reads the version jump and
      // resumes the chain here (the versions before it that fall in a gap
      // stay lost, by design).
      std::string payload;
      PutVarint64(&payload, static_cast<uint64_t>(seg.first));
      payload.append(EncodeTree(seg.anchor));
      put(LogRecordType::kCheckpoint, payload);
    }
    for (size_t i = 0; i < seg.scripts.size(); ++i) {
      put(LogRecordType::kDelta,
          EncodeDeltaPayload(seg.infos[i], seg.full_sizes[i],
                             FormatEditScript(seg.scripts[i], labels)));
    }
  }
  return out;
}

Status VersionStore::RotateLocked() {
  // 1. Build the replacement under a tmp name and make it durable.
  const std::string tmp = path_ + ".tmp";
  const std::string bytes = EncodeStateLocked();
  auto file = env_->NewWritableFile(tmp, /*truncate=*/true);
  if (!file.ok()) return file.status();
  TREEDIFF_RETURN_IF_ERROR((*file)->Append(bytes));
  TREEDIFF_RETURN_IF_ERROR((*file)->Sync());
  TREEDIFF_RETURN_IF_ERROR((*file)->Close());

  // 2. Quarantine the current log by *copying* it to path.N — never by
  // renaming it away, which would leave a moment with no store at `path`.
  // Best-effort: keeping the forensic copy is worth less than restoring
  // service, so a copy failure does not abort the rotation.
  if (env_->FileExists(path_)) {
    std::string quarantine;
    for (int n = 1;; ++n) {
      quarantine = path_ + "." + std::to_string(n);
      if (!env_->FileExists(quarantine)) break;
    }
    auto old_file = env_->NewRandomAccessFile(path_);
    if (old_file.ok()) {
      auto size = (*old_file)->Size();
      StatusOr<std::string> old_bytes =
          size.ok() ? (*old_file)->Read(0, static_cast<size_t>(*size))
                    : StatusOr<std::string>(size.status());
      if (old_bytes.ok()) {
        auto qfile = env_->NewWritableFile(quarantine, /*truncate=*/true);
        if (qfile.ok()) {
          (*qfile)->Append(*old_bytes).IgnoreError();
          (*qfile)->Sync().IgnoreError();
          (*qfile)->Close().IgnoreError();
        }
      }
    }
  }

  // 3. Atomic swap: `path` is at every instant either the old log (still
  // recoverable, possibly via salvage) or the complete new one.
  if (writer_) writer_->Close().IgnoreError();
  writer_.reset();
  TREEDIFF_RETURN_IF_ERROR(env_->RenameFile(tmp, path_));
  auto append = env_->NewWritableFile(path_, /*truncate=*/false);
  if (!append.ok()) return append.status();
  log_format_ = LogFormat::kV2;
  writer_ = std::make_unique<LogWriter>(std::move(*append), bytes.size(),
                                        LogFormat::kV2, epoch_);
  // Replay cost of the fresh log equals the last segment's delta count.
  commits_since_checkpoint_ =
      static_cast<int>(segments_.back().scripts.size());
  io_status_ = Status::Ok();  // The new log is trustworthy end to end.
  ++faults_.rotations;
  BumpCounter("store_rotations_total", 1);
  return Status::Ok();
}

Status VersionStore::Repair() {
  MutexLock lock(&mu_);
  if (!durable()) {
    return Status::FailedPrecondition("repair of a non-durable store");
  }
  return RotateLocked();
}

StatusOr<ScrubReport> VersionStore::Scrub() {
  uint64_t cold_limit = 0;
  {
    MutexLock lock(&mu_);
    if (!durable()) {
      return Status::FailedPrecondition("scrub of a non-durable store");
    }
    if (!writer_) {
      return Status::FailedPrecondition("scrub of a store without a log");
    }
    cold_limit = writer_->offset();
  }

  // Scan outside the lock: scrubbing must not stall commits. Bytes at or
  // beyond `cold_limit` may legitimately be mid-append, so only damage
  // strictly before it counts. Transient read faults are retried.
  StatusOr<LogScanResult> scan = Status::Internal("scan never ran");
  Retryer retryer(store_options_.retry, store_options_.sleep);
  Status scanned = retryer.Run([&]() {
    auto file = env_->NewRandomAccessFile(path_);
    if (!file.ok()) {
      scan = file.status();
      return file.status();
    }
    scan = ScanLog(file->get());
    return scan.status();
  });
  if (!scanned.ok()) return scanned;

  ScrubReport report;
  report.bytes_verified = std::min(scan->durable_prefix, cold_limit);
  report.records_verified = scan->records.size();
  report.corruption_found = scan->durable_prefix < cold_limit;

  MutexLock lock(&mu_);
  ++faults_.scrubs;
  BumpCounter("store_scrubs_total", 1);
  if (report.corruption_found) {
    // Bit rot in bytes that were once verified durable. The in-memory
    // state is still the acknowledged truth, so a rotation rewrites a
    // fully valid log from it — detection *and* repair in one pass.
    ++faults_.scrub_corruption;
    BumpCounter("store_scrub_corruption_total", 1);
    report.repaired = RotateLocked().ok();
  }
  return report;
}

VersionStore::FaultCounters VersionStore::fault_counters() const {
  MutexLock lock(&mu_);
  return faults_;
}

LogFormat VersionStore::log_format() const {
  MutexLock lock(&mu_);
  return log_format_;
}

uint64_t VersionStore::DurableOffset() const {
  MutexLock lock(&mu_);
  return writer_ ? writer_->offset() : 0;
}

uint64_t VersionStore::rotations() const {
  MutexLock lock(&mu_);
  return faults_.rotations;
}

uint64_t VersionStore::epoch() const {
  MutexLock lock(&mu_);
  return epoch_;
}

Status VersionStore::BumpEpoch(uint64_t new_epoch) {
  MutexLock lock(&mu_);
  if (!durable()) {
    return Status::FailedPrecondition("epoch bump on a non-durable store");
  }
  if (!io_status_.ok()) {
    return Status::FailedPrecondition(
        "store is poisoned by an earlier I/O error: " + io_status_.message());
  }
  if (new_epoch <= epoch_) {
    return Status::InvalidArgument(
        "epoch must advance: " + std::to_string(new_epoch) + " <= " +
        std::to_string(epoch_));
  }
  if (log_format_ == LogFormat::kV1) {
    // Format-1 records have no epoch field to stamp; upgrade by rotation
    // (which rewrites in format 2) before announcing the bump.
    TREEDIFF_RETURN_IF_ERROR(RotateLocked());
  }
  // Stamp first so the kEpoch record itself — and any rotation a retry
  // performs — already carries the new epoch.
  epoch_ = new_epoch;
  writer_->set_epoch(new_epoch);
  std::string payload;
  PutVarint64(&payload, new_epoch);
  return AppendDurable(LogRecordType::kEpoch, payload);
}

StatusOr<VersionStore> VersionStore::Create(const std::string& path, Tree base,
                                            DiffOptions options,
                                            StoreOptions store_options) {
  Env* env = store_options.env ? store_options.env : Env::Default();
  if (env->FileExists(path)) {
    return Status::FailedPrecondition("store already exists: " + path);
  }
  // Build the initial log under a tmp name, sync it, then atomically rename
  // into place: a crash anywhere before the rename leaves no (possibly
  // half-written) store at `path`.
  const std::string tmp = path + ".tmp";
  auto file = env->NewWritableFile(tmp, /*truncate=*/true);
  if (!file.ok()) return file.status();
  TREEDIFF_RETURN_IF_ERROR(
      (*file)->Append(std::string_view(kLogMagicV2, kLogMagicSize)));
  LogWriter bootstrap(std::move(*file), kLogMagicSize, LogFormat::kV2);
  TREEDIFF_RETURN_IF_ERROR(
      bootstrap.AppendRecord(LogRecordType::kSnapshot, EncodeTree(base)));
  TREEDIFF_RETURN_IF_ERROR(bootstrap.Sync());
  TREEDIFF_RETURN_IF_ERROR(bootstrap.Close());
  TREEDIFF_RETURN_IF_ERROR(env->RenameFile(tmp, path));

  auto append = env->NewWritableFile(path, /*truncate=*/false);
  if (!append.ok()) return append.status();

  VersionStore store;
  store.base_ = base.Clone();
  store.options_ = options;
  store.durable_ = true;
  store.writer_ = std::make_unique<LogWriter>(
      std::move(*append), bootstrap.offset(), LogFormat::kV2);
  store.env_ = env;
  store.path_ = path;
  store.store_options_ = store_options;
  {
    MutexLock lock(&store.mu_);  // Satisfies the analysis; no contention yet.
    store.head_ = std::move(base);
    Segment seg;
    seg.first = 0;
    seg.anchor = store.base_.Clone();
    seg.anchor_full_size = store.base_.ToDebugString().size();
    store.segments_.push_back(std::move(seg));
  }
  return store;
}

StatusOr<VersionStore> VersionStore::Open(const std::string& path,
                                          DiffOptions options,
                                          StoreOptions store_options,
                                          RecoveryReport* report) {
  Env* env = store_options.env ? store_options.env : Env::Default();
  const bool salvage = store_options.recovery == RecoveryMode::kSalvage;

  auto file = env->NewRandomAccessFile(path);
  if (!file.ok()) return file.status();  // NotFound / InvalidArgument(dir).
  {
    auto size = (*file)->Size();
    if (size.ok() && *size == 0) {
      return Status::DataLoss("store log is empty (zero-length file): " +
                              path);
    }
  }

  // Scan with a retry budget: a transient short read must not be mistaken
  // for a torn tail (ScanLog fails such reads with kUnavailable).
  LogScanOptions scan_options;
  scan_options.salvage = salvage;
  StatusOr<LogScanResult> scan = Status::Internal("scan never ran");
  Retryer retryer(store_options.retry, store_options.sleep);
  Status scanned = retryer.Run([&]() {
    scan = ScanLog(file->get(), scan_options);
    return scan.status();
  });
  if (!scanned.ok()) {
    if (scanned.code() == Code::kParseError) {
      // Bad or truncated magic: the file is not (or no longer) a log.
      return Status::DataLoss("unrecoverable store " + path + ": " +
                              scanned.message());
    }
    return scanned;
  }

  if (scan->records.empty() ||
      scan->records[0].type != LogRecordType::kSnapshot ||
      scan->records[0].resynced) {
    return Status::DataLoss(
        "unrecoverable store: the base snapshot record is missing or "
        "corrupt: " + path);
  }
  std::shared_ptr<LabelTable> labels =
      store_options.labels ? store_options.labels
                           : std::make_shared<LabelTable>();
  StatusOr<Tree> base = DecodeTree(scan->records[0].payload, labels);
  if (!base.ok()) {
    return Status::DataLoss("unrecoverable store: base snapshot of " + path +
                            ": " + base.status().message());
  }

  // Replay the record sequence into the logical state (a segment chain —
  // one segment for a healthy log; salvage adds one per re-anchoring
  // checkpoint). Under kTruncate a record that passes its checksum but
  // fails payload-level validation is treated exactly like a corrupt tail:
  // accept the prefix before it, truncate it and everything after
  // (`accepted_end` tracks the truncation point). Under kSalvage it is
  // skipped and the chain stays broken (`in_hole`) until the next
  // re-anchoring checkpoint.
  std::vector<Segment> segments(1);
  segments[0].first = 0;
  segments[0].anchor = base->Clone();
  segments[0].anchor_full_size = base->ToDebugString().size();
  struct InnerCheckpoint {
    int version;
    std::string payload;  // Codec bytes (payload minus the version varint).
  };
  std::optional<InnerCheckpoint> checkpoint;  // Replay bound, last segment.
  const size_t header_size = LogRecordHeaderSize(scan->format);
  uint64_t accepted_end =
      scan->records[0].offset + header_size + scan->records[0].payload.size();
  size_t accepted_records = 1;
  size_t records_skipped = 0;
  std::vector<SkippedRange> payload_holes;
  bool invalid_record = false;
  bool in_hole = false;
  // The recovered fencing epoch: the max over every accepted record's
  // header stamp and every kEpoch announcement. Headers alone would do for
  // an intact log; the explicit records make the value survive rewrites.
  uint64_t epoch_seen = scan->records[0].epoch;

  auto head_version = [&segments]() {
    return segments.back().first +
           static_cast<int>(segments.back().scripts.size());
  };
  auto record_end = [header_size](const LogScanRecord& r) {
    return r.offset + header_size + r.payload.size();
  };

  for (size_t i = 1; i < scan->records.size() && !invalid_record; ++i) {
    const LogScanRecord& record = scan->records[i];
    if (record.resynced) in_hole = true;  // A damaged range precedes it.
    std::string_view payload = record.payload;
    bool used = true;
    // Skips this record; under salvage with `break_chain` the versions the
    // rest of the log describes can no longer be derived, so replay stays
    // in the hole until a checkpoint re-anchors it.
    auto skip = [&](bool break_chain) {
      used = false;
      ++records_skipped;
      payload_holes.push_back({record.offset, record_end(record)});
      if (break_chain) in_hole = true;
    };
    switch (record.type) {
      case LogRecordType::kDelta: {
        if (in_hole) {
          // Deltas carry no version number; after a gap there is no way to
          // know which version this one produces.
          skip(true);
          break;
        }
        uint64_t nodes = 0, full_size = 0;
        double cost = 0.0;
        StatusOr<EditScript> script = Status::ParseError("bad delta header");
        if (DecodeDeltaHeader(&payload, &nodes, &full_size, &cost)) {
          script = ParseEditScript(payload, labels.get());
        }
        if (!script.ok()) {
          if (!salvage) {
            invalid_record = true;
          } else {
            skip(true);
          }
          break;
        }
        VersionInfo info;
        info.inserts = script->num_inserts();
        info.deletes = script->num_deletes();
        info.updates = script->num_updates();
        info.moves = script->num_moves();
        info.cost = cost;
        info.nodes = static_cast<size_t>(nodes);
        Segment& last = segments.back();
        last.scripts.push_back(std::move(*script));
        last.infos.push_back(info);
        last.full_sizes.push_back(static_cast<size_t>(full_size));
        break;
      }
      case LogRecordType::kCheckpoint: {
        uint64_t version64 = 0;
        if (!GetVarint64(&payload, &version64)) {
          if (!salvage) {
            invalid_record = true;
          } else {
            skip(true);
          }
          break;
        }
        const int version = static_cast<int>(version64);
        const int head = head_version();
        if (version == head && !in_hole) {
          // The normal interval checkpoint: a replay bound for rebuilding
          // the head without touching the chain.
          checkpoint = InnerCheckpoint{version, std::string(payload)};
          break;
        }
        if (version > head || (in_hole && version >= segments.back().first)) {
          // A re-anchoring checkpoint: either a version jump written by a
          // salvage rewrite, or the first trustworthy state after a
          // damaged range. The checkpoint is self-describing (version +
          // full tree), so the chain resumes here.
          StatusOr<Tree> anchor = DecodeTree(payload, labels);
          if (!anchor.ok()) {
            if (!salvage) {
              invalid_record = true;
            } else {
              skip(true);
            }
            break;
          }
          Segment& last = segments.back();
          // Drop any scripts the new anchor shadows (possible only when
          // re-anchoring inside a hole at the current head version, e.g.
          // the gap swallowed a rollback+recommit pair): the checkpoint,
          // being later in the log, is authoritative for its version.
          while (!last.scripts.empty() &&
                 last.first + static_cast<int>(last.scripts.size()) >=
                     version) {
            last.scripts.pop_back();
            last.infos.pop_back();
            last.full_sizes.pop_back();
          }
          if (last.first == version && last.scripts.empty() &&
              segments.size() > 1) {
            last.anchor = std::move(*anchor);
            last.anchor_full_size = last.anchor.ToDebugString().size();
          } else {
            Segment seg;
            seg.first = version;
            seg.anchor = std::move(*anchor);
            seg.anchor_full_size = seg.anchor.ToDebugString().size();
            segments.push_back(std::move(seg));
          }
          checkpoint.reset();
          in_hole = false;
          break;
        }
        // A checkpoint of an older version (stale after rollbacks, or
        // scrambled): useless but harmless — the chain is unaffected.
        if (!salvage) {
          invalid_record = true;
        } else {
          skip(false);
        }
        break;
      }
      case LogRecordType::kRollback: {
        if (in_hole) {
          skip(true);
          break;
        }
        uint64_t dropped = 0;
        Segment& last = segments.back();
        if (!GetVarint64(&payload, &dropped) || last.scripts.empty() ||
            static_cast<int>(dropped) != head_version()) {
          if (!salvage) {
            invalid_record = true;
          } else {
            skip(true);
          }
          break;
        }
        last.scripts.pop_back();
        last.infos.pop_back();
        last.full_sizes.pop_back();
        // A checkpoint of a version the rollback discarded no longer
        // describes any surviving state.
        if (checkpoint && checkpoint->version > head_version()) {
          checkpoint.reset();
        }
        break;
      }
      case LogRecordType::kEpoch: {
        // A fencing bump. Self-describing (the payload repeats the epoch),
        // so it is trusted even inside a salvage hole — it affects only the
        // epoch high-water mark, never the version chain.
        uint64_t announced = 0;
        if (!GetVarint64(&payload, &announced)) {
          if (!salvage) {
            invalid_record = true;
          } else {
            skip(false);
          }
          break;
        }
        epoch_seen = std::max(epoch_seen, announced);
        break;
      }
      case LogRecordType::kSnapshot:
        // Only the first record may be a snapshot.
        if (!salvage) {
          invalid_record = true;
        } else {
          skip(true);
        }
        break;
      default:
        // Unknown type from a future version.
        if (!salvage) {
          invalid_record = true;
        } else {
          skip(true);
        }
        break;
    }
    if (invalid_record) break;
    // Salvage keeps scanning past skipped records; truncation mode only
    // reaches here for records it accepted.
    accepted_end = record_end(record);
    if (used) {
      ++accepted_records;
      epoch_seen = std::max(epoch_seen, record.epoch);
    }
  }
  if (invalid_record) {
    // accepted_end already marks the end of the last good record; the
    // scan-level prefix extends further and is rejected wholesale.
  }

  // Rebuild the head: the last segment's anchor (or the newest surviving
  // in-segment checkpoint, bounding replay cost) plus its deltas.
  const Segment& tail_segment = segments.back();
  Tree head;
  size_t replay_from = 0;  // Index into tail_segment.scripts.
  int checkpoint_version = -1;
  if (checkpoint) {
    StatusOr<Tree> decoded = DecodeTree(checkpoint->payload, labels);
    if (decoded.ok()) {
      head = std::move(*decoded);
      replay_from =
          static_cast<size_t>(checkpoint->version - tail_segment.first);
      checkpoint_version = checkpoint->version;
    }
  }
  if (checkpoint_version < 0) {
    head = tail_segment.anchor.Clone();
    if (tail_segment.first > 0) checkpoint_version = tail_segment.first;
  }
  for (size_t i = replay_from; i < tail_segment.scripts.size(); ++i) {
    Status applied = tail_segment.scripts[i].ApplyTo(&head);
    if (!applied.ok()) {
      return Status::Internal(
          "recovery replay failed at delta " +
          std::to_string(tail_segment.first + static_cast<int>(i) + 1) +
          ": " + applied.message());
    }
  }
  const size_t deltas_replayed = tail_segment.scripts.size() - replay_from;

  size_t versions_lost = 0;
  for (size_t k = 0; k + 1 < segments.size(); ++k) {
    versions_lost += static_cast<size_t>(
        segments[k + 1].first - segments[k].first -
        static_cast<int>(segments[k].scripts.size()) - 1);
  }
  size_t versions_recovered = 0;
  for (const Segment& seg : segments) {
    versions_recovered += seg.scripts.size() + 1;
  }

  VersionStore store;
  store.base_ = std::move(*base);
  store.options_ = options;
  store.durable_ = true;
  store.env_ = env;
  store.path_ = path;
  store.store_options_ = store_options;
  {
    MutexLock lock(&store.mu_);  // Satisfies the analysis; no contention yet.
    store.head_ = std::move(head);
    store.segments_ = std::move(segments);
    store.commits_since_checkpoint_ = static_cast<int>(
        store.segments_.back().scripts.size() - replay_from);
    store.faults_.salvage_skipped = records_skipped;
    store.log_format_ = scan->format;
    store.epoch_ = epoch_seen;
  }
  if (records_skipped > 0) {
    MutexLock lock(&store.mu_);
    store.BumpCounter("store_salvage_records_skipped_total", records_skipped);
  }

  const bool damaged_interior = !scan->skipped.empty() || records_skipped > 0;
  bool rotated = false;
  if (salvage && damaged_interior) {
    // Interior damage cannot be truncated away. Rewrite the log compactly
    // from the recovered state (re-anchoring checkpoints bridge the holes)
    // and quarantine the damaged original — crash-safe because `path` is
    // swapped atomically and the old log stays salvageable until then.
    // Retried inline (not via Retryer) so the analysis sees the lock held
    // across RotateLocked.
    MutexLock lock(&store.mu_);
    Retryer rotate_backoff(store_options.retry, store_options.sleep);
    const int max_attempts = std::max(store_options.retry.max_attempts, 1);
    Status st;
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      st = store.RotateLocked();
      if (st.ok() || !IsTransientError(st)) break;
      if (attempt < max_attempts) {
        const double seconds = rotate_backoff.BackoffSeconds(attempt);
        if (store_options.sleep) {
          store_options.sleep(seconds);
        } else if (seconds > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
        }
      }
    }
    TREEDIFF_RETURN_IF_ERROR(st);
    rotated = true;
  } else {
    // Tail-only damage (or none): physically drop the rejected tail so the
    // next commit appends to a log whose every byte is valid.
    if (accepted_end < scan->file_size) {
      TREEDIFF_RETURN_IF_ERROR(env->TruncateFile(path, accepted_end));
    }
    auto append = env->NewWritableFile(path, /*truncate=*/false);
    if (!append.ok()) return append.status();
    MutexLock lock(&store.mu_);
    // Appends continue in the format the log already uses: a clean open of
    // a pre-replication (format-1) log leaves its bytes untouched.
    store.writer_ = std::make_unique<LogWriter>(
        std::move(*append), accepted_end, scan->format, epoch_seen);
  }

  if (report) {
    report->bytes_total = scan->file_size;
    report->bytes_truncated = rotated ? 0 : scan->file_size - accepted_end;
    report->records_scanned = accepted_records;
    report->checksum_failures = scan->checksum_failures;
    report->torn_tail = scan->torn_tail;
    report->versions_recovered = versions_recovered;
    report->deltas_replayed = deltas_replayed;
    report->checkpoint_version = checkpoint_version;
    report->records_skipped = records_skipped;
    report->versions_lost = versions_lost;
    report->rotated = rotated;
    report->salvage_ranges = scan->skipped;
    report->salvage_ranges.insert(report->salvage_ranges.end(),
                                  payload_holes.begin(), payload_holes.end());
    std::sort(report->salvage_ranges.begin(), report->salvage_ranges.end(),
              [](const SkippedRange& a, const SkippedRange& b) {
                return a.begin < b.begin;
              });
  }
  return store;
}

}  // namespace treediff
