#include "store/version_store.h"

#include <bit>
#include <optional>
#include <utility>

#include "core/script_io.h"
#include "store/codec.h"

namespace treediff {

namespace {

/// Delta record payload: a small stats header, then the script text.
/// Storing nodes/full_size/cost in the header lets recovery rebuild
/// VersionInfo and StorageStats without materializing every version (the
/// script text alone cannot: update costs are not serialized).
///
///   varint   nodes        (tree size after the delta)
///   varint   full_size    (s-expression bytes of the full snapshot)
///   fixed64  cost bits    (IEEE double, TotalCost of the original script)
///   bytes    script text  (FormatEditScript)
std::string EncodeDeltaPayload(const VersionStore::VersionInfo& info,
                               size_t full_size,
                               const std::string& script_text) {
  std::string payload;
  PutVarint64(&payload, info.nodes);
  PutVarint64(&payload, full_size);
  PutFixed64(&payload, std::bit_cast<uint64_t>(info.cost));
  payload.append(script_text);
  return payload;
}

bool DecodeDeltaHeader(std::string_view* payload, uint64_t* nodes,
                       uint64_t* full_size, double* cost) {
  if (!GetVarint64(payload, nodes) || !GetVarint64(payload, full_size)) {
    return false;
  }
  if (payload->size() < 8) return false;
  *cost = std::bit_cast<double>(DecodeFixed64(payload->data()));
  payload->remove_prefix(8);
  return true;
}

}  // namespace

std::string RecoveryReport::ToString() const {
  std::string out = "recovered " + std::to_string(versions_recovered) +
                    " version(s) from " + std::to_string(records_scanned) +
                    " record(s), " + std::to_string(bytes_total) + " byte(s)";
  if (checkpoint_version >= 0) {
    out += ", head from checkpoint v" + std::to_string(checkpoint_version) +
           " + " + std::to_string(deltas_replayed) + " delta(s)";
  } else {
    out += ", head replayed from base (" + std::to_string(deltas_replayed) +
           " delta(s))";
  }
  if (bytes_truncated > 0) {
    out += "; truncated " + std::to_string(bytes_truncated) + " byte(s) (" +
           (checksum_failures > 0 ? "checksum failure" : "torn tail") + ")";
  }
  return out;
}

VersionStore::VersionStore(Tree base, DiffOptions options)
    : base_(base.Clone()), options_(options), head_(std::move(base)) {
  full_sizes_.push_back(base_.ToDebugString().size());
}

// Moves transfer everything but the mutex. The analysis is disabled here
// (see the header): the moved-from object is not shared, so its guarded
// members are read without its lock by design.
VersionStore::VersionStore(VersionStore&& other)
    : base_(std::move(other.base_)),
      options_(other.options_),
      head_(std::move(other.head_)),
      scripts_(std::move(other.scripts_)),
      infos_(std::move(other.infos_)),
      full_sizes_(std::move(other.full_sizes_)),
      writer_(std::move(other.writer_)),
      env_(other.env_),
      path_(std::move(other.path_)),
      store_options_(other.store_options_),
      io_status_(std::move(other.io_status_)),
      commits_since_checkpoint_(other.commits_since_checkpoint_) {}

VersionStore& VersionStore::operator=(VersionStore&& other) {
  if (this == &other) return *this;
  base_ = std::move(other.base_);
  options_ = other.options_;
  head_ = std::move(other.head_);
  scripts_ = std::move(other.scripts_);
  infos_ = std::move(other.infos_);
  full_sizes_ = std::move(other.full_sizes_);
  writer_ = std::move(other.writer_);
  env_ = other.env_;
  path_ = std::move(other.path_);
  store_options_ = other.store_options_;
  io_status_ = std::move(other.io_status_);
  commits_since_checkpoint_ = other.commits_since_checkpoint_;
  return *this;
}

Status VersionStore::AppendDurable(LogRecordType type,
                                   std::string_view payload) {
  Status st = writer_->AppendRecord(type, payload);
  if (st.ok()) st = writer_->Sync();
  if (!st.ok()) {
    // The log tail is now in an unknown state; poison the store so no
    // further mutation can commit on top of it. Reads stay available and
    // Open() recovers the durable prefix.
    io_status_ = st;
  }
  return st;
}

void VersionStore::MaybeCheckpoint() {
  if (store_options_.checkpoint_interval <= 0) return;
  if (++commits_since_checkpoint_ < store_options_.checkpoint_interval) return;
  std::string payload;
  PutVarint64(&payload, static_cast<uint64_t>(VersionCountLocked() - 1));
  payload.append(EncodeTree(head_));
  // Best-effort: the commit this rides on is already durable. A failure
  // poisons the store (the tail may hold a torn checkpoint record), which
  // recovery simply truncates.
  if (AppendDurable(LogRecordType::kCheckpoint, payload).ok()) {
    commits_since_checkpoint_ = 0;
  }
}

StatusOr<int> VersionStore::Commit(const Tree& new_version) {
  MutexLock lock(&mu_);
  if (!io_status_.ok()) {
    return Status::FailedPrecondition(
        "store is poisoned by an earlier I/O error: " + io_status_.message());
  }
  if (new_version.label_table().get() != base_.label_table().get()) {
    return Status::InvalidArgument(
        "committed versions must share the store's LabelTable");
  }
  StatusOr<DiffResult> diff = DiffTrees(head_, new_version, options_);
  if (!diff.ok()) return diff.status();

  // Apply the delta to the head; the head's id space (not the snapshot's)
  // is what subsequent scripts address, so replay from the base stays
  // deterministic.
  Tree next = head_.Clone();
  TREEDIFF_RETURN_IF_ERROR(diff->script.ApplyTo(&next));
  if (!Tree::Isomorphic(next, new_version)) {
    return Status::Internal("delta replay does not reproduce the snapshot");
  }

  VersionInfo info;
  info.inserts = diff->script.num_inserts();
  info.deletes = diff->script.num_deletes();
  info.updates = diff->script.num_updates();
  info.moves = diff->script.num_moves();
  info.cost = diff->script.TotalCost();
  info.nodes = next.size();

  size_t full_size = new_version.ToDebugString().size();
  if (durable()) {
    // Write-ahead: the record must be on disk before the head advances. A
    // failed append leaves the in-memory store exactly as it was.
    std::string payload = EncodeDeltaPayload(
        info, full_size, FormatEditScript(diff->script, base_.labels()));
    TREEDIFF_RETURN_IF_ERROR(AppendDurable(LogRecordType::kDelta, payload));
  }

  head_ = std::move(next);
  scripts_.push_back(std::move(diff->script));
  infos_.push_back(info);
  full_sizes_.push_back(full_size);
  if (durable()) MaybeCheckpoint();
  return VersionCountLocked() - 1;
}

StatusOr<Tree> VersionStore::Materialize(int v) const {
  MutexLock lock(&mu_);
  return MaterializeLocked(v);
}

StatusOr<Tree> VersionStore::MaterializeLocked(int v) const {
  if (v < 0 || v >= VersionCountLocked()) {
    return Status::OutOfRange("no such version: " + std::to_string(v));
  }
  Tree tree = base_.Clone();
  for (int i = 0; i < v; ++i) {
    TREEDIFF_RETURN_IF_ERROR(scripts_[static_cast<size_t>(i)].ApplyTo(&tree));
  }
  return tree;
}

StatusOr<int> VersionStore::RollbackHead() {
  MutexLock lock(&mu_);
  if (!io_status_.ok()) {
    return Status::FailedPrecondition(
        "store is poisoned by an earlier I/O error: " + io_status_.message());
  }
  if (scripts_.empty()) {
    return Status::FailedPrecondition("cannot roll back the base version");
  }
  // The inverse must be computed against the pre-state of the last delta,
  // which replaying the chain up to the previous version reproduces with
  // the exact node ids the head evolved from.
  StatusOr<Tree> prev = MaterializeLocked(VersionCountLocked() - 2);
  if (!prev.ok()) return prev.status();
  StatusOr<EditScript> inverse = InvertScript(scripts_.back(), *prev);
  if (!inverse.ok()) return inverse.status();
  // Verify on a scratch copy so the member state stays untouched until the
  // rollback is durable.
  Tree check = head_.Clone();
  TREEDIFF_RETURN_IF_ERROR(inverse->ApplyTo(&check));
  if (!Tree::Isomorphic(check, *prev)) {
    return Status::Internal("inverse delta did not restore the head");
  }
  if (durable()) {
    std::string payload;
    PutVarint64(&payload, static_cast<uint64_t>(VersionCountLocked() - 1));
    TREEDIFF_RETURN_IF_ERROR(AppendDurable(LogRecordType::kRollback, payload));
  }
  // Adopt the replayed tree (not the undone head): the id space must match
  // what future commits' scripts will see when materialized from the base.
  head_ = std::move(*prev);
  scripts_.pop_back();
  infos_.pop_back();
  full_sizes_.pop_back();
  return VersionCountLocked() - 1;
}

const EditScript* VersionStore::DeltaFor(int v) const {
  MutexLock lock(&mu_);
  if (v < 1 || v >= VersionCountLocked()) return nullptr;
  return &scripts_[static_cast<size_t>(v - 1)];
}

VersionStore::StorageStats VersionStore::Storage() const {
  MutexLock lock(&mu_);
  StorageStats stats;
  const LabelTable& labels = base_.labels();
  for (const EditScript& script : scripts_) {
    stats.delta_bytes += FormatEditScript(script, labels).size();
  }
  // The base is stored in full either way; count the subsequent versions.
  for (size_t i = 1; i < full_sizes_.size(); ++i) {
    stats.full_copy_bytes += full_sizes_[i];
  }
  return stats;
}

StatusOr<VersionStore> VersionStore::Create(const std::string& path, Tree base,
                                            DiffOptions options,
                                            StoreOptions store_options) {
  Env* env = store_options.env ? store_options.env : Env::Default();
  if (env->FileExists(path)) {
    return Status::FailedPrecondition("store already exists: " + path);
  }
  // Build the initial log under a tmp name, sync it, then atomically rename
  // into place: a crash anywhere before the rename leaves no (possibly
  // half-written) store at `path`.
  const std::string tmp = path + ".tmp";
  auto file = env->NewWritableFile(tmp, /*truncate=*/true);
  if (!file.ok()) return file.status();
  TREEDIFF_RETURN_IF_ERROR(
      (*file)->Append(std::string_view(kLogMagic, kLogMagicSize)));
  LogWriter bootstrap(std::move(*file), kLogMagicSize);
  TREEDIFF_RETURN_IF_ERROR(
      bootstrap.AppendRecord(LogRecordType::kSnapshot, EncodeTree(base)));
  TREEDIFF_RETURN_IF_ERROR(bootstrap.Sync());
  TREEDIFF_RETURN_IF_ERROR(bootstrap.Close());
  TREEDIFF_RETURN_IF_ERROR(env->RenameFile(tmp, path));

  auto append = env->NewWritableFile(path, /*truncate=*/false);
  if (!append.ok()) return append.status();

  VersionStore store;
  store.base_ = base.Clone();
  store.options_ = options;
  store.writer_ =
      std::make_unique<LogWriter>(std::move(*append), bootstrap.offset());
  store.env_ = env;
  store.path_ = path;
  store.store_options_ = store_options;
  {
    MutexLock lock(&store.mu_);  // Satisfies the analysis; no contention yet.
    store.head_ = std::move(base);
    store.full_sizes_.push_back(store.base_.ToDebugString().size());
  }
  return store;
}

StatusOr<VersionStore> VersionStore::Open(const std::string& path,
                                          DiffOptions options,
                                          StoreOptions store_options,
                                          RecoveryReport* report) {
  Env* env = store_options.env ? store_options.env : Env::Default();
  auto file = env->NewRandomAccessFile(path);
  if (!file.ok()) return file.status();
  StatusOr<LogScanResult> scan = ScanLog(file->get());
  if (!scan.ok()) return scan.status();

  if (scan->records.empty() ||
      scan->records[0].type != LogRecordType::kSnapshot) {
    return Status::ParseError(
        "unrecoverable store: the base snapshot record is missing or "
        "corrupt: " + path);
  }
  auto labels = std::make_shared<LabelTable>();
  StatusOr<Tree> base = DecodeTree(scan->records[0].payload, labels);
  if (!base.ok()) {
    return Status::ParseError("unrecoverable store: base snapshot: " +
                              base.status().message());
  }

  // Replay the record sequence into the logical state. A record that passes
  // its checksum but fails payload-level validation is treated exactly like
  // a corrupt tail: accept the prefix before it, truncate it and everything
  // after. `accepted_end` tracks the truncation point.
  std::vector<EditScript> scripts;
  std::vector<VersionInfo> infos;
  std::vector<size_t> full_sizes;
  full_sizes.push_back(base->ToDebugString().size());
  struct Checkpoint {
    size_t version;
    std::string payload;  // Codec bytes (payload minus the version varint).
  };
  std::optional<Checkpoint> checkpoint;
  uint64_t accepted_end = scan->durable_prefix;
  size_t accepted_records = 1;
  bool invalid_record = false;

  for (size_t i = 1; i < scan->records.size() && !invalid_record; ++i) {
    const LogScanRecord& record = scan->records[i];
    std::string_view payload = record.payload;
    switch (record.type) {
      case LogRecordType::kDelta: {
        uint64_t nodes = 0, full_size = 0;
        double cost = 0.0;
        StatusOr<EditScript> script = Status::ParseError("bad delta header");
        if (DecodeDeltaHeader(&payload, &nodes, &full_size, &cost)) {
          script = ParseEditScript(payload, labels.get());
        }
        if (!script.ok()) {
          invalid_record = true;
          break;
        }
        VersionInfo info;
        info.inserts = script->num_inserts();
        info.deletes = script->num_deletes();
        info.updates = script->num_updates();
        info.moves = script->num_moves();
        info.cost = cost;
        info.nodes = static_cast<size_t>(nodes);
        scripts.push_back(std::move(*script));
        infos.push_back(info);
        full_sizes.push_back(static_cast<size_t>(full_size));
        break;
      }
      case LogRecordType::kCheckpoint: {
        uint64_t version = 0;
        if (!GetVarint64(&payload, &version) || version != scripts.size()) {
          invalid_record = true;
          break;
        }
        checkpoint = Checkpoint{static_cast<size_t>(version),
                                std::string(payload)};
        break;
      }
      case LogRecordType::kRollback: {
        uint64_t dropped = 0;
        if (!GetVarint64(&payload, &dropped) || scripts.empty() ||
            dropped != scripts.size()) {
          invalid_record = true;
          break;
        }
        scripts.pop_back();
        infos.pop_back();
        full_sizes.pop_back();
        // A checkpoint of a version the rollback discarded no longer
        // describes any surviving state.
        if (checkpoint && checkpoint->version > scripts.size()) {
          checkpoint.reset();
        }
        break;
      }
      case LogRecordType::kSnapshot:
        invalid_record = true;  // Only the first record may be a snapshot.
        break;
      default:
        invalid_record = true;  // Unknown type from a future version.
        break;
    }
    if (!invalid_record) {
      accepted_end = record.offset + kLogRecordHeaderSize +
                     record.payload.size();
      ++accepted_records;
    }
  }
  if (invalid_record) {
    // Recompute the truncation point as the end of the last accepted
    // record (the scan-level prefix extends further).
    accepted_end = accepted_records == scan->records.size()
                       ? scan->durable_prefix
                       : scan->records[accepted_records].offset;
  }

  // Rebuild the head: from the newest surviving checkpoint when one
  // exists (bounding replay cost), from the base otherwise.
  Tree head;
  size_t replay_from = 0;
  int checkpoint_version = -1;
  if (checkpoint) {
    StatusOr<Tree> decoded = DecodeTree(checkpoint->payload, labels);
    if (decoded.ok()) {
      head = std::move(*decoded);
      replay_from = checkpoint->version;
      checkpoint_version = static_cast<int>(checkpoint->version);
    }
  }
  if (checkpoint_version < 0) head = base->Clone();
  for (size_t i = replay_from; i < scripts.size(); ++i) {
    Status applied = scripts[i].ApplyTo(&head);
    if (!applied.ok()) {
      return Status::Internal("recovery replay failed at delta " +
                              std::to_string(i + 1) + ": " +
                              applied.message());
    }
  }

  // Physically drop the rejected tail so the next commit appends to a log
  // whose every byte is valid.
  if (accepted_end < scan->file_size) {
    TREEDIFF_RETURN_IF_ERROR(env->TruncateFile(path, accepted_end));
  }
  auto append = env->NewWritableFile(path, /*truncate=*/false);
  if (!append.ok()) return append.status();

  if (report) {
    report->bytes_total = scan->file_size;
    report->bytes_truncated = scan->file_size - accepted_end;
    report->records_scanned = accepted_records;
    report->checksum_failures = scan->checksum_failures;
    report->torn_tail = scan->torn_tail;
    report->versions_recovered = scripts.size() + 1;
    report->deltas_replayed = scripts.size() - replay_from;
    report->checkpoint_version = checkpoint_version;
  }

  VersionStore store;
  store.base_ = std::move(*base);
  store.options_ = options;
  store.writer_ = std::make_unique<LogWriter>(std::move(*append), accepted_end);
  store.env_ = env;
  store.path_ = path;
  store.store_options_ = store_options;
  {
    MutexLock lock(&store.mu_);  // Satisfies the analysis; no contention yet.
    store.head_ = std::move(head);
    store.scripts_ = std::move(scripts);
    store.infos_ = std::move(infos);
    store.full_sizes_ = std::move(full_sizes);
    store.commits_since_checkpoint_ =
        static_cast<int>(store.scripts_.size() - replay_from);
  }
  return store;
}

}  // namespace treediff
